package memes

import (
	"context"
	"errors"
	"image"
	"io"
	"sync"

	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/phash"
	"github.com/memes-pipeline/memes/internal/pipeline"
)

// Engine is the build-once / query-many form of the pipeline. NewEngine runs
// the expensive offline phase (Steps 2-5: cluster the fringe communities,
// materialise medoids, annotate them against the KYM site, and index the
// annotated medoids) exactly once; the Engine then keeps that output
// resident and serves any number of cheap Step 6 queries against it:
//
//   - Associate matches an arbitrary post batch — the posts need not be part
//     of the original dataset — to the annotated clusters.
//   - Match / MatchImage answer single-image lookups, the primitive a
//     serving front-end needs.
//   - Result materialises the legacy one-shot *Result (associating the full
//     build dataset), so NewReport and EstimateInfluence keep working.
//
// All query methods are goroutine-safe: the underlying cluster list and
// medoid index are immutable after NewEngine returns. Queries accept a
// context.Context and stop promptly on cancellation.
type Engine struct {
	build  *pipeline.BuildResult
	once   sync.Once
	res    *Result
	resErr error
}

// StageEvent reports the start or completion of a pipeline stage; see
// WithProgress.
type StageEvent = pipeline.StageEvent

// ProgressFunc observes stage events during the build and during Result
// materialisation.
type ProgressFunc = pipeline.ProgressFunc

// RunStats records per-stage wall time, throughput, and output counts; it is
// derived from the StageEvent stream.
type RunStats = pipeline.RunStats

// StageStats records the wall-clock cost of one pipeline stage.
type StageStats = pipeline.StageStats

// Post is a single post on a Web community.
type Post = dataset.Post

// Association links one post (by index into the associated batch) to an
// annotated cluster.
type Association = pipeline.Association

// Match is the outcome of a single-hash lookup: the winning annotated
// cluster and its Hamming distance from the query.
type Match = pipeline.Match

// Option configures NewEngine and LoadEngine.
type Option func(*engineConfig)

type engineConfig struct {
	cfg      PipelineConfig
	progress ProgressFunc
	ds       *Dataset    // LoadEngine only: dataset bound for Result materialisation
	deltas   []io.Reader // LoadEngine only: delta journals replayed over the base
}

// WithConfig replaces the engine's entire pipeline configuration. It is
// applied in option order, so thresholds set by earlier options are
// overwritten; pass it first when combining with the field-level options.
func WithConfig(cfg PipelineConfig) Option {
	return func(o *engineConfig) { o.cfg = cfg }
}

// WithWorkers bounds the number of concurrent workers used by every build
// stage and by Associate; zero means GOMAXPROCS. The engine's output is
// identical for any worker count.
func WithWorkers(n int) Option {
	return func(o *engineConfig) { o.cfg.Workers = n }
}

// WithEps sets the DBSCAN clustering radius (Steps 2-3); the paper uses 8.
func WithEps(eps int) Option {
	return func(o *engineConfig) { o.cfg.Clustering.Eps = eps }
}

// WithMinPts sets the DBSCAN core-point density (Steps 2-3); the paper
// uses 5.
func WithMinPts(minPts int) Option {
	return func(o *engineConfig) { o.cfg.Clustering.MinPts = minPts }
}

// WithAnnotationThreshold sets θ for matching cluster medoids against KYM
// gallery images (Step 5).
func WithAnnotationThreshold(theta int) Option {
	return func(o *engineConfig) { o.cfg.AnnotationThreshold = theta }
}

// WithAssociationThreshold sets θ for matching posts against annotated
// cluster medoids (Step 6).
func WithAssociationThreshold(theta int) Option {
	return func(o *engineConfig) { o.cfg.AssociationThreshold = theta }
}

// WithIndex selects the medoid-index strategy the engine's Step 6 serve
// path queries: IndexBKTree (the default), IndexMultiIndex, or IndexSharded
// — see IndexStrategies for the full registered set. Every strategy serves
// bitwise-identical Associate/Match/Result output; the choice only shapes
// the cost profile (single-tree pruning vs banded lookups vs parallel
// sharded fan-out). Applies to both NewEngine and LoadEngine — snapshots
// never persist the index itself, so a snapshot written under one strategy
// loads under any other.
func WithIndex(s IndexStrategy) Option {
	return func(o *engineConfig) { o.cfg.Index = s }
}

// WithDataset binds a corpus to an engine loaded from a snapshot so
// Engine.Result can materialise the legacy full-corpus result. It applies
// to LoadEngine only; NewEngine already receives its dataset positionally
// and rejects this option.
func WithDataset(ds *Dataset) Option {
	return func(o *engineConfig) { o.ds = ds }
}

// WithDeltas layers streaming-ingest delta journals over a loaded base
// snapshot: every frame of every reader is read, spliced into one
// contiguous post stream (tolerating the overlaps a crashed compaction
// leaves behind), and absorbed through the same incremental re-cluster path
// a live Ingestor uses. The resulting engine is bitwise-identical to a
// from-scratch build over the bound dataset plus the delta posts in journal
// order.
//
// Applies to LoadEngine only and requires WithDataset (the base corpus the
// snapshot was built from — the deltas extend it). The snapshot supplies
// the configuration echo; an empty journal loads the snapshot as-is.
func WithDeltas(rs ...io.Reader) Option {
	return func(o *engineConfig) { o.deltas = append(o.deltas, rs...) }
}

// WithProgress registers an observer for per-stage progress events. The
// function is called synchronously, in stage order, from the goroutine
// driving the stage; it must not block for long.
func WithProgress(fn func(StageEvent)) Option {
	return func(o *engineConfig) { o.progress = fn }
}

// NewEngine runs the build phase (Steps 2-5) over a dataset and an
// annotation site and returns an Engine serving queries against the result.
// Use ds.Site(true) for a site with screenshots already filtered (Step 4).
// The build stops promptly with ctx's error when ctx is cancelled.
func NewEngine(ctx context.Context, ds *Dataset, site *AnnotationSite, opts ...Option) (*Engine, error) {
	ec := engineConfig{cfg: DefaultPipelineConfig()}
	for _, opt := range opts {
		opt(&ec)
	}
	if ec.ds != nil {
		return nil, errors.New("memes: WithDataset applies only to LoadEngine; NewEngine receives its dataset positionally")
	}
	if len(ec.deltas) > 0 {
		return nil, errors.New("memes: WithDeltas applies only to LoadEngine; NewEngine builds from its dataset directly")
	}
	b, err := pipeline.Build(ctx, ds, site, ec.cfg, ec.progress)
	if err != nil {
		return nil, err
	}
	return &Engine{build: b}, nil
}

// Save writes a versioned binary snapshot of the engine's build phase
// (Steps 2-5 output: config echo, per-community clusterings, cluster
// metadata, medoid hashes) to w. LoadEngine reconstitutes a serving engine
// from the snapshot without re-running the build — build once on a big box,
// ship the snapshot, serve anywhere. The medoid index is rebuilt from the
// persisted medoids on load, so snapshots are index-strategy-agnostic; the
// dataset and the annotation site are likewise not persisted (the site is
// re-bound at load, a dataset optionally so).
func (e *Engine) Save(w io.Writer) error { return e.build.Save(w) }

// Snapshot format versions accepted by Engine.SaveVersion. Save always
// writes SnapshotLatest; LoadEngine and LoadEngineFile read every version.
const (
	// SnapshotV1 is the original streaming varint format. The medoid index
	// is rebuilt from the persisted medoids at load.
	SnapshotV1 = pipeline.SnapshotV1
	// SnapshotV2 is the flat offset-based format: fixed-width tables, one
	// string arena, and the sealed medoid BK-tree serialized in array form,
	// so LoadEngineFile can mmap the file and serve directly from the
	// mapped bytes without rebuilding anything.
	SnapshotV2 = pipeline.SnapshotV2
	// SnapshotLatest is the version Engine.Save writes.
	SnapshotLatest = pipeline.SnapshotLatest
)

// SaveVersion writes a snapshot in an explicit format version: SnapshotV1
// for compatibility with readers predating the flat format, SnapshotV2 for
// the mmap-ready layout Save defaults to. Both versions reconstitute
// bitwise-identical engines.
func (e *Engine) SaveVersion(w io.Writer, version uint32) error {
	return e.build.SaveVersion(w, version)
}

// Close releases the snapshot memory mapping backing an engine returned by
// LoadEngineFile, after which the engine must not serve further queries.
// Closing is optional — an unclosed mapping is released by the garbage
// collector once the engine is unreachable — and deliberately NOT wired
// into the hot-swap path: an old generation may still be pinned by
// in-flight requests when a new one activates, so HotEngine lets the
// collector retire it. Close is for callers that churn through many loaded
// engines and want the address space back deterministically. It is
// idempotent, and a no-op for engines not backed by a mapping.
func (e *Engine) Close() error { return e.build.Close() }

// LoadEngine reads a snapshot written by Engine.Save and returns an Engine
// serving queries against it, skipping the entire Steps 2-5 build. The
// annotation site must carry the entries the snapshot references (use the
// same filtered site the build used); a mismatch fails loudly.
//
// The build-phase configuration (clustering thresholds) is restored from
// the snapshot and is an echo only — the clusters are already built.
// Serving options do take effect: WithWorkers and WithIndex override the
// snapshot's worker count and index strategy, WithDataset binds a corpus so
// Engine.Result can materialise the legacy full-corpus result, and
// WithProgress observes the single "load" stage event pair (the observable
// proof that Steps 2-5 never ran).
func LoadEngine(r io.Reader, site *AnnotationSite, opts ...Option) (*Engine, error) {
	ec := engineConfig{cfg: DefaultPipelineConfig()}
	for _, opt := range opts {
		opt(&ec)
	}
	b, err := pipeline.LoadBuild(r, site, ec.ds, func(cfg *PipelineConfig) {
		// Re-apply the options over the decoded snapshot configuration, so
		// explicit overrides win and everything else keeps the build-time
		// echo.
		over := engineConfig{cfg: *cfg}
		for _, opt := range opts {
			opt(&over)
		}
		*cfg = over.cfg
	}, ec.progress)
	if err != nil {
		return nil, err
	}
	if len(ec.deltas) > 0 {
		b, err = replayDeltas(b, site, ec)
		if err != nil {
			return nil, err
		}
	}
	return &Engine{build: b}, nil
}

// LoadEngineFile is LoadEngine for a snapshot on disk. For a SnapshotV2
// file it memory-maps the flat layout (falling back to a single read where
// mmap is unavailable) and serves directly from the mapped bytes — the
// medoid index is loaded, not rebuilt, so time-to-first-query is dominated
// by the page cache rather than by tree construction. Older snapshot
// versions are read through the same path LoadEngine uses. All LoadEngine
// options apply, including WithDataset and WithDeltas.
func LoadEngineFile(path string, site *AnnotationSite, opts ...Option) (*Engine, error) {
	ec := engineConfig{cfg: DefaultPipelineConfig()}
	for _, opt := range opts {
		opt(&ec)
	}
	b, err := pipeline.LoadBuildFile(path, site, ec.ds, func(cfg *PipelineConfig) {
		over := engineConfig{cfg: *cfg}
		for _, opt := range opts {
			opt(&over)
		}
		*cfg = over.cfg
	}, ec.progress)
	if err != nil {
		return nil, err
	}
	if len(ec.deltas) > 0 {
		b, err = replayDeltas(b, site, ec)
		if err != nil {
			return nil, err
		}
	}
	return &Engine{build: b}, nil
}

// replayDeltas folds delta journals into a freshly loaded base build; see
// WithDeltas.
func replayDeltas(b *pipeline.BuildResult, site *AnnotationSite, ec engineConfig) (*pipeline.BuildResult, error) {
	if ec.ds == nil {
		return nil, errors.New("memes: WithDeltas requires WithDataset (the base corpus the deltas extend)")
	}
	var frames []pipeline.Delta
	for _, r := range ec.deltas {
		fs, err := pipeline.ReadDeltas(r)
		if err != nil {
			return nil, err
		}
		frames = append(frames, fs...)
	}
	posts, _, err := pipeline.SpliceDeltas(frames, 0)
	if err != nil {
		return nil, err
	}
	if len(posts) == 0 {
		return b, nil
	}
	inc, err := pipeline.NewIncremental(ec.ds, site, b.Config)
	if err != nil {
		return nil, err
	}
	inc.AddPosts(posts)
	return inc.RebuildCtx(context.Background(), ec.progress)
}

// Associate runs Step 6 over an arbitrary batch of posts: every image post
// is matched against the annotated-cluster medoids, the nearest medoid
// within the association threshold winning (ties broken by lowest cluster
// ID). PostIndex in the returned associations indexes into posts, which come
// out sorted by that index. Goroutine-safe; stops promptly on cancellation.
func (e *Engine) Associate(ctx context.Context, posts []Post) ([]Association, error) {
	return e.build.Associate(ctx, posts)
}

// AssociateAppend is Associate for callers that own the result buffer: it
// appends the batch's associations to out and returns the extended slice,
// allocating nothing in steady state when out has capacity (pass a slice
// recycled with out[:0]). The associations are identical to Associate's for
// the same batch. Goroutine-safe; stops promptly on cancellation.
//
//memes:noalloc
func (e *Engine) AssociateAppend(ctx context.Context, posts []Post, out []Association) ([]Association, error) {
	return e.build.AssociateAppend(ctx, posts, out)
}

// Match looks a single perceptual hash up against the annotated clusters.
// The boolean is false when no annotated medoid lies within the association
// threshold. Goroutine-safe; index strategies with internal query fan-out
// honour cancellation mid-query.
func (e *Engine) Match(ctx context.Context, h Hash) (Match, bool, error) {
	return e.build.MatchCtx(ctx, h)
}

// MatchImage hashes an image (Step 1) and looks it up with Match.
func (e *Engine) MatchImage(ctx context.Context, img image.Image) (Match, bool, error) {
	if err := ctx.Err(); err != nil {
		return Match{}, false, err
	}
	h, err := phash.FromImage(img)
	if err != nil {
		return Match{}, false, err
	}
	return e.Match(ctx, h)
}

// Clusters returns every cluster of the build (Steps 2-5 output), indexed by
// ID. The slice is shared with the engine; treat it as read-only.
func (e *Engine) Clusters() []ClusterInfo { return e.build.Clusters }

// Communities returns the fringe communities the build clustered, in the
// fixed Communities order used everywhere else.
func (e *Engine) Communities() []Community { return e.build.Communities() }

// BuildStats returns the timing of the build phase (cluster and annotate
// stages).
func (e *Engine) BuildStats() RunStats { return e.build.Stats() }

// Result materialises the legacy one-shot *Result by associating every post
// of the build dataset (Step 6) and merging the build stats. The result is
// computed once and cached; subsequent calls return the same pointer.
// Goroutine-safe. Clusters, associations, and summaries are identical to
// what Run produces for the same dataset and configuration. An engine
// loaded from a snapshot must have a corpus bound (LoadEngine with
// WithDataset) or Result panics; Associate and Match never need one.
func (e *Engine) Result() *Result {
	res, err := e.result()
	if err != nil {
		// Reachable when the engine was loaded from a snapshot without
		// WithDataset — Result needs the build corpus to associate. Fail
		// loudly with the fix in the message rather than handing callers
		// a nil.
		panic("memes: Engine.Result materialisation failed: " + err.Error())
	}
	return res
}

// TryResult is Result for callers that can handle the failure mode: it
// returns the materialisation error instead of panicking when the engine
// was loaded without a bound dataset. The serving layer uses it to answer
// analysis endpoints with 503 rather than crashing the process.
func (e *Engine) TryResult() (*Result, error) { return e.result() }

// ResultFor materialises a Result over an arbitrary post slice instead of
// the build corpus: the posts are associated against the resident clusters
// and wrapped with the bound dataset's corpus window and ground-truth
// tables. This is the replay primitive behind `memereport -replay` —
// posts recovered from a served decision log regenerate the paper's tables
// from real traffic. Requires a bound dataset, like Result.
func (e *Engine) ResultFor(ctx context.Context, posts []Post) (*Result, error) {
	return e.build.ResultFor(ctx, posts)
}

// SnapshotVersion reports the MEMESNAP format version the engine was loaded
// from (1 or 2), or 0 for an engine built in memory by NewEngine. Exposed
// as the memes_snapshot_version gauge on /v1/metrics.
func (e *Engine) SnapshotVersion() uint32 { return e.build.SnapshotVersion() }

// result materialises and caches the legacy Result, keeping the error for
// callers (Run) that can propagate it.
func (e *Engine) result() (*Result, error) {
	e.once.Do(func() {
		e.res, e.resErr = e.build.Result(context.Background())
	})
	return e.res, e.resErr
}
