// Command pickhash prepares a corpus for the streaming-ingest smoke test.
//
// The synthetic corpus draws every post hash directly from a KYM entry's
// variant gallery, so no naturally occurring hash is both novel (far from
// every resident cluster) and annotatable (near a KYM entry) — the two
// properties the ingest scenario needs at once. pickhash manufactures one:
// it finds a hash at Hamming distance > 16 from every image-post hash and
// every gallery hash in the corpus, appends a synthetic KYM entry whose
// gallery is exactly that hash, saves the corpus back in place, and prints
// the hash in decimal (the posts.jsonl wire form).
//
// Posts carrying the printed hash ingested into a memeserve built from the
// mutated corpus form a fresh cluster that annotates against the planted
// entry — servable only after an ingest-triggered re-cluster, never by
// matching a resident medoid.
//
// Usage:
//
//	pickhash -in ./corpus
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/phash"
)

func main() {
	in := flag.String("in", "corpus", "corpus directory (written by memegen) to mutate in place")
	flag.Parse()

	ds, err := dataset.Load(*in)
	if err != nil {
		log.Fatalf("pickhash: loading corpus: %v", err)
	}
	var existing []phash.Hash
	for i := range ds.Posts {
		if ds.Posts[i].HasImage {
			existing = append(existing, ds.Posts[i].PHash())
		}
	}
	for _, e := range ds.KYMEntries {
		for _, g := range e.Gallery {
			existing = append(existing, phash.Hash(g))
		}
	}

	// Deterministic golden-ratio walk over the hash space: the same corpus
	// always yields the same planted hash.
	for k := uint64(1); k < 1<<20; k++ {
		h := phash.Hash(k * 0x9E3779B97F4A7C15)
		far := true
		for _, x := range existing {
			if phash.Distance(h, x) <= 16 {
				far = false
				break
			}
		}
		if !far {
			continue
		}
		ds.KYMEntries = append(ds.KYMEntries, dataset.KYMEntry{
			Name:            "synthetic-novel-meme",
			Title:           "Synthetic Novel Meme",
			Category:        "memes",
			Gallery:         []uint64{uint64(h)},
			ScreenshotFlags: []bool{false},
		})
		if err := ds.Save(*in); err != nil {
			log.Fatalf("pickhash: saving corpus: %v", err)
		}
		fmt.Println(uint64(h))
		return
	}
	log.Fatal("pickhash: no hash is far from the whole corpus")
}
