#!/usr/bin/env bash
# End-to-end serve-path smoke test, run by the CI `smoke` job and runnable
# locally: build a corpus, build + persist an engine snapshot, boot memeserve
# on it, and prove the full query path over HTTP — healthz, a single-hash
# /v1/match, a full-corpus /v1/associate asserted against the memepipeline
# -format json summary, a hot reload via the admin endpoint and via SIGHUP,
# and a graceful SIGTERM shutdown.
#
# Requires: go, curl, jq. Association request bodies are assembled from
# posts.jsonl with paste (never re-encoded by jq), so 64-bit pHash integers
# survive verbatim; hashes cross the wire as hex strings.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  # An if, not `[ ... ] && kill || true`: the A && B || C form would run C
  # whenever the kill itself fails, masking nothing here but tripping
  # shellcheck SC2015's correct observation that it is not if-then-else.
  if [ -n "$server_pid" ]; then
    kill "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

step() { echo "== $*"; }

step "building binaries"
mkdir -p "$workdir/bin"
go build -o "$workdir/bin/" ./cmd/memegen ./cmd/memepipeline ./cmd/memeserve

step "generating corpus"
"$workdir/bin/memegen" -out "$workdir/corpus" -profile small >/dev/null

step "building engine, saving snapshot, capturing the reference summary"
"$workdir/bin/memepipeline" -in "$workdir/corpus" -save "$workdir/engine.snap" \
  -format json >"$workdir/pipeline.json"
expected_assoc=$(jq -r '.associations' "$workdir/pipeline.json")
[ "$expected_assoc" -gt 0 ] || { echo "FAIL: pipeline summary reports no associations"; exit 1; }

addr=127.0.0.1:18080
step "booting memeserve on $addr"
"$workdir/bin/memeserve" -addr "$addr" -load "$workdir/engine.snap" -in "$workdir/corpus" &
server_pid=$!

step "waiting for /v1/healthz"
up=""
for _ in $(seq 1 100); do
  if curl -fsS "http://$addr/v1/healthz" >"$workdir/health.json" 2>/dev/null; then
    up=1
    break
  fi
  kill -0 "$server_pid" 2>/dev/null || { echo "FAIL: memeserve exited before becoming healthy"; exit 1; }
  sleep 0.2
done
[ -n "$up" ] || { echo "FAIL: /v1/healthz never came up"; exit 1; }
jq -e '.status == "ok" and .clusters > 0 and .annotated_clusters > 0' "$workdir/health.json" >/dev/null

step "single-hash /v1/match on an annotated medoid"
curl -fsS "http://$addr/v1/clusters" >"$workdir/clusters.json"
medoid=$(jq -r '[.clusters[] | select(.annotated)][0].medoid_hash' "$workdir/clusters.json")
curl -fsS -X POST -d "{\"hash\":\"$medoid\"}" "http://$addr/v1/match" >"$workdir/match.json"
jq -e '.matched == true and .distance == 0' "$workdir/match.json" >/dev/null
# The winning cluster's medoid must be the queried hash (ties between
# identical medoids resolve to the lowest cluster ID, but the hash is the
# same either way).
winner=$(jq -r '.cluster_id' "$workdir/match.json")
jq -e --argjson id "$winner" --arg h "$medoid" \
  '.clusters[$id].medoid_hash == $h' "$workdir/clusters.json" >/dev/null

step "full-corpus /v1/associate matches the memepipeline summary"
{ printf '{"posts":['; paste -sd, "$workdir/corpus/posts.jsonl"; printf ']}'; } >"$workdir/assoc_req.json"
curl -fsS -X POST --data-binary @"$workdir/assoc_req.json" \
  "http://$addr/v1/associate" >"$workdir/assoc.json"
got_assoc=$(jq -r '.matched' "$workdir/assoc.json")
got_len=$(jq -r '.associations | length' "$workdir/assoc.json")
if [ "$got_assoc" != "$expected_assoc" ] || [ "$got_len" != "$expected_assoc" ]; then
  echo "FAIL: /v1/associate matched $got_assoc ($got_len rows), memepipeline summary says $expected_assoc"
  exit 1
fi

step "hot reload via /v1/admin/reload"
curl -fsS -X POST "http://$addr/v1/admin/reload" >"$workdir/reload.json"
jq -e '.generation == 2 and .clusters > 0' "$workdir/reload.json" >/dev/null

step "hot reload via SIGHUP"
kill -HUP "$server_pid"
gen=""
for _ in $(seq 1 50); do
  gen=$(curl -fsS "http://$addr/v1/healthz" | jq -r '.generation')
  [ "$gen" = "3" ] && break
  sleep 0.2
done
[ "$gen" = "3" ] || { echo "FAIL: generation after SIGHUP = $gen, want 3"; exit 1; }

step "association results identical after both reloads"
curl -fsS -X POST --data-binary @"$workdir/assoc_req.json" \
  "http://$addr/v1/associate" >"$workdir/assoc_after.json"
if ! diff <(jq -S 'del(.generation)' "$workdir/assoc.json") \
          <(jq -S 'del(.generation)' "$workdir/assoc_after.json") >/dev/null; then
  echo "FAIL: /v1/associate output changed across hot reloads"
  exit 1
fi

step "statsz sanity"
curl -fsS "http://$addr/v1/statsz" >"$workdir/stats.json"
jq -e '.requests.errors == 0 and .reloads == 2 and .requests.associate == 2' "$workdir/stats.json" >/dev/null

step "graceful shutdown on SIGTERM"
kill -TERM "$server_pid"
if ! wait "$server_pid"; then
  echo "FAIL: memeserve exited non-zero on SIGTERM"
  exit 1
fi
server_pid=""

echo "SMOKE PASSED: healthz, match, associate ($expected_assoc associations), 2 hot reloads, graceful shutdown"
