#!/usr/bin/env bash
# End-to-end serve-path smoke test, run by the CI `smoke` job and runnable
# locally: build a corpus, build + persist an engine snapshot, boot memeserve
# on it, and prove the full query path over HTTP — healthz, a single-hash
# /v1/match, a full-corpus /v1/associate asserted against the memepipeline
# -format json summary, a hot reload via the admin endpoint and via SIGHUP,
# streaming ingest (POST /v1/ingest absorbs novel posts, re-clusters, and
# serves them without a restart; the delta journal replays them across one),
# and a graceful SIGTERM shutdown. The observability layer is exercised on
# the way: /v1/influence and /v1/report answer over the live engine, the
# /v1/metrics Prometheus scrape must agree with /v1/statsz counter for
# counter, and the -decision-log NDJSON stream captured during the run is
# replayed through memereport after shutdown.
#
# ci/pickhash plants a synthetic KYM entry into the corpus before the build:
# the generated corpus draws post hashes from entry galleries, so only a
# planted entry gives the ingest scenario a hash that is both novel to the
# resident clusters and annotatable after a re-cluster.
#
# Requires: go, curl, jq. Association request bodies are assembled from
# posts.jsonl with paste (never re-encoded by jq), so 64-bit pHash integers
# survive verbatim; hashes cross the wire as hex strings.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  # An if, not `[ ... ] && kill || true`: the A && B || C form would run C
  # whenever the kill itself fails, masking nothing here but tripping
  # shellcheck SC2015's correct observation that it is not if-then-else.
  if [ -n "$server_pid" ]; then
    kill "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

step() { echo "== $*"; }

step "building binaries"
mkdir -p "$workdir/bin"
go build -o "$workdir/bin/" ./cmd/memegen ./cmd/memepipeline ./cmd/memeserve ./cmd/memereport ./ci/pickhash

step "generating corpus"
"$workdir/bin/memegen" -out "$workdir/corpus" -profile small >/dev/null

step "planting a novel annotatable hash for the ingest scenario"
novel_hash=$("$workdir/bin/pickhash" -in "$workdir/corpus")
[ -n "$novel_hash" ] || { echo "FAIL: pickhash printed no hash"; exit 1; }

step "building engine, saving snapshot, capturing the reference summary"
"$workdir/bin/memepipeline" -in "$workdir/corpus" -save "$workdir/engine.snap" \
  -format json >"$workdir/pipeline.json"
expected_assoc=$(jq -r '.associations' "$workdir/pipeline.json")
[ "$expected_assoc" -gt 0 ] || { echo "FAIL: pipeline summary reports no associations"; exit 1; }

step "saved snapshot is MEMESNAP v2 (flat, mmap-servable)"
magic=$(head -c 8 "$workdir/engine.snap")
[ "$magic" = "MEMESNAP" ] || { echo "FAIL: snapshot magic is '$magic', want MEMESNAP"; exit 1; }
snap_version=$(od -An -tu4 -j8 -N4 "$workdir/engine.snap" | tr -d ' ')
[ "$snap_version" = "2" ] || { echo "FAIL: snapshot version is $snap_version, want 2"; exit 1; }

addr=127.0.0.1:18080
step "booting memeserve on $addr"
"$workdir/bin/memeserve" -addr "$addr" -load "$workdir/engine.snap" -in "$workdir/corpus" \
  -ingest-threshold 5 -delta-dir "$workdir/deltas" -compact-after 1 \
  -decision-log "$workdir/decisions.ndjson" -decision-flush 100ms -decision-buffer 65536 &
server_pid=$!

step "waiting for /v1/healthz"
up=""
for _ in $(seq 1 100); do
  if curl -fsS "http://$addr/v1/healthz" >"$workdir/health.json" 2>/dev/null; then
    up=1
    break
  fi
  kill -0 "$server_pid" 2>/dev/null || { echo "FAIL: memeserve exited before becoming healthy"; exit 1; }
  sleep 0.2
done
[ -n "$up" ] || { echo "FAIL: /v1/healthz never came up"; exit 1; }
jq -e '.status == "ok" and .clusters > 0 and .annotated_clusters > 0' "$workdir/health.json" >/dev/null

step "readyz reports the node ready for traffic"
curl -fsS "http://$addr/v1/readyz" >"$workdir/ready.json"
jq -e '.ready == true' "$workdir/ready.json" >/dev/null

step "single-hash /v1/match on an annotated medoid"
curl -fsS "http://$addr/v1/clusters" >"$workdir/clusters.json"
medoid=$(jq -r '[.clusters[] | select(.annotated)][0].medoid_hash' "$workdir/clusters.json")
curl -fsS -X POST -d "{\"hash\":\"$medoid\"}" "http://$addr/v1/match" >"$workdir/match.json"
jq -e '.matched == true and .distance == 0' "$workdir/match.json" >/dev/null
# The winning cluster's medoid must be the queried hash (ties between
# identical medoids resolve to the lowest cluster ID, but the hash is the
# same either way).
winner=$(jq -r '.cluster_id' "$workdir/match.json")
jq -e --argjson id "$winner" --arg h "$medoid" \
  '.clusters[$id].medoid_hash == $h' "$workdir/clusters.json" >/dev/null

step "full-corpus /v1/associate matches the memepipeline summary"
{ printf '{"posts":['; paste -sd, "$workdir/corpus/posts.jsonl"; printf ']}'; } >"$workdir/assoc_req.json"
curl -fsS -X POST --data-binary @"$workdir/assoc_req.json" \
  "http://$addr/v1/associate" >"$workdir/assoc.json"
got_assoc=$(jq -r '.matched' "$workdir/assoc.json")
got_len=$(jq -r '.associations | length' "$workdir/assoc.json")
if [ "$got_assoc" != "$expected_assoc" ] || [ "$got_len" != "$expected_assoc" ]; then
  echo "FAIL: /v1/associate matched $got_assoc ($got_len rows), memepipeline summary says $expected_assoc"
  exit 1
fi

step "hot reload via /v1/admin/reload"
curl -fsS -X POST "http://$addr/v1/admin/reload" >"$workdir/reload.json"
jq -e '.generation == 2 and .clusters > 0' "$workdir/reload.json" >/dev/null

step "hot reload via SIGHUP"
kill -HUP "$server_pid"
gen=""
for _ in $(seq 1 50); do
  gen=$(curl -fsS "http://$addr/v1/healthz" | jq -r '.generation')
  [ "$gen" = "3" ] && break
  sleep 0.2
done
[ "$gen" = "3" ] || { echo "FAIL: generation after SIGHUP = $gen, want 3"; exit 1; }

step "association results identical after both reloads"
curl -fsS -X POST --data-binary @"$workdir/assoc_req.json" \
  "http://$addr/v1/associate" >"$workdir/assoc_after.json"
if ! diff <(jq -S 'del(.generation)' "$workdir/assoc.json") \
          <(jq -S 'del(.generation)' "$workdir/assoc_after.json") >/dev/null; then
  echo "FAIL: /v1/associate output changed across hot reloads"
  exit 1
fi

step "statsz sanity"
curl -fsS "http://$addr/v1/statsz" >"$workdir/stats.json"
jq -e '.requests.errors == 0 and .reloads == 2 and .requests.associate == 2' "$workdir/stats.json" >/dev/null

step "live /v1/influence answers the Section 5 matrices"
curl -fsS -X POST -d '{"group":"all"}' "http://$addr/v1/influence" >"$workdir/influence.json"
jq -e '.group == "all" and (.communities | length) == 5 and (.raw | length) == 5
       and (.total | length) == 5' "$workdir/influence.json" >/dev/null

step "live /v1/report renders the full document"
curl -fsS "http://$addr/v1/report" >"$workdir/report.json"
jq -e '(.sections | length) > 0 and .generation == 3' "$workdir/report.json" >/dev/null

step "/v1/metrics scrape agrees with /v1/statsz"
# statsz first, then the scrape: the scrape bumps only its own counter, so
# every counter asserted below is identical in both views by construction.
curl -fsS "http://$addr/v1/statsz" >"$workdir/stats_pre_scrape.json"
curl -fsS "http://$addr/v1/metrics" >"$workdir/metrics.txt"
grep -q '^# TYPE memes_requests_total counter' "$workdir/metrics.txt" \
  || { echo "FAIL: scrape is not Prometheus text format"; exit 1; }
metric() { awk -v m="$1" '$1 == m {print $2}' "$workdir/metrics.txt"; }
for pair in \
  'memes_requests_total{endpoint="associate"} .requests.associate' \
  'memes_requests_total{endpoint="match"} .requests.match' \
  'memes_requests_total{endpoint="influence"} .requests.influence' \
  'memes_requests_total{endpoint="report"} .requests.report' \
  'memes_errors_total .requests.errors' \
  'memes_match_total{outcome="matched"} .match.matched' \
  'memes_match_total{outcome="missed"} .match.missed' \
  'memes_associate_posts_total .associate.posts' \
  'memes_associations_total .associate.associations' \
  'memes_reloads_total .reloads' \
  'memes_engine_generation .generation' \
  'memes_clusters .clusters' \
  'memes_decision_log_dropped_total .decision_log.dropped'; do
  name=${pair% *}
  field=${pair#* }
  got=$(metric "$name")
  want=$(jq -r "$field" "$workdir/stats_pre_scrape.json")
  if [ "$got" != "$want" ]; then
    echo "FAIL: $name = $got, statsz $field = $want"
    exit 1
  fi
done
# The latency histogram saw the traffic: the match endpoint's +Inf bucket
# equals its request counter.
hist=$(metric 'memes_request_duration_seconds_bucket{endpoint="match",le="+Inf"}')
want=$(jq -r '.requests.match' "$workdir/stats_pre_scrape.json")
[ "$hist" = "$want" ] || { echo "FAIL: match histogram count $hist, want $want"; exit 1; }
jq -e '.decision_log.enabled == true and .decision_log.logged > 0 and .decision_log.dropped == 0' \
  "$workdir/stats_pre_scrape.json" >/dev/null \
  || { echo "FAIL: decision log lost entries: $(jq -c '.decision_log' "$workdir/stats_pre_scrape.json")"; exit 1; }

step "streaming ingest: novel hash is unmatched before ingest"
printf '{"hash":%s}' "$novel_hash" >"$workdir/novel_match_req.json"
curl -fsS -X POST --data-binary @"$workdir/novel_match_req.json" \
  "http://$addr/v1/match" >"$workdir/novel_before.json"
jq -e '.matched == false' "$workdir/novel_before.json" >/dev/null

step "POST /v1/ingest: 5 novel posts cross the re-cluster threshold"
# Bodies are assembled with printf, same as the associate path: the 64-bit
# decimal pHash must never pass through jq's float arithmetic.
posts=""
for i in 0 1 2 3 4; do
  posts="$posts{\"id\":$((9000000 + i)),\"community\":0,\"timestamp\":\"2026-01-01T00:00:00Z\",\"has_image\":true,\"phash\":$novel_hash,\"truth_meme\":-1,\"truth_root\":-1},"
done
printf '{"posts":[%s]}' "${posts%,}" >"$workdir/ingest_req.json"
curl -fsS -X POST --data-binary @"$workdir/ingest_req.json" \
  "http://$addr/v1/ingest" >"$workdir/ingest.json"
jq -e '.accepted == 5 and .assigned == 0 and .pending == 5 and .triggered == true' \
  "$workdir/ingest.json" >/dev/null

step "ingested hash becomes servable without a restart"
matched=""
for _ in $(seq 1 150); do
  curl -fsS -X POST --data-binary @"$workdir/novel_match_req.json" \
    "http://$addr/v1/match" >"$workdir/novel_after.json"
  if jq -e '.matched == true and .entry == "synthetic-novel-meme"' \
    "$workdir/novel_after.json" >/dev/null; then
    matched=1
    break
  fi
  sleep 0.2
done
[ -n "$matched" ] || { echo "FAIL: ingested hash never became matchable"; exit 1; }

step "statsz ingest counters moved"
curl -fsS "http://$addr/v1/statsz" >"$workdir/stats_ingest.json"
jq -e '.ingest.enabled == true and .ingest.ingested == 5 and .ingest.reclusters >= 1
       and .ingest.pending == 0 and .ingest.seq == 5
       and .requests.ingest == 1 and .requests.errors == 0' \
  "$workdir/stats_ingest.json" >/dev/null

step "ingest compaction emits a v2 base snapshot"
base=""
for _ in $(seq 1 150); do
  base=$(ls "$workdir/deltas"/base-*.snap 2>/dev/null | tail -n1)
  [ -n "$base" ] && break
  sleep 0.2
done
[ -n "$base" ] || { echo "FAIL: compaction never wrote a base snapshot"; exit 1; }
base_version=$(od -An -tu4 -j8 -N4 "$base" | tr -d ' ')
[ "$base_version" = "2" ] || { echo "FAIL: compacted base $base is version $base_version, want 2"; exit 1; }
curl -fsS "http://$addr/v1/statsz" >"$workdir/stats_compact.json"
jq -e '.ingest.compactions >= 1' "$workdir/stats_compact.json" >/dev/null

step "restart: the compacted base + journal replay the ingested posts"
kill -TERM "$server_pid"
if ! wait "$server_pid"; then
  echo "FAIL: memeserve exited non-zero on SIGTERM before restart"
  exit 1
fi
server_pid=""

step "decision log: the captured stream replays through memereport"
# The drained server flushed every decision: the two full-corpus associate
# runs must be in the file, one decision per post per request.
post_count=$(wc -l <"$workdir/corpus/posts.jsonl")
assoc_decisions=$(jq -s '[.[] | select(.endpoint == "associate")] | length' "$workdir/decisions.ndjson")
if [ "$assoc_decisions" != "$((2 * post_count))" ]; then
  echo "FAIL: decision log holds $assoc_decisions associate decisions, want $((2 * post_count))"
  exit 1
fi
jq -s -e '[.[] | select(.endpoint == "match")] | length > 0' "$workdir/decisions.ndjson" >/dev/null
"$workdir/bin/memereport" -in "$workdir/corpus" -replay "$workdir/decisions.ndjson" \
  -format timeseries >"$workdir/replay.txt" 2>"$workdir/replay.log"
grep -q 'Per-day meme activity' "$workdir/replay.txt" \
  || { echo "FAIL: replayed memereport produced no timeseries table"; exit 1; }
grep -q 'replay: ' "$workdir/replay.log" \
  || { echo "FAIL: memereport -replay reported no replay summary"; exit 1; }

"$workdir/bin/memeserve" -addr "$addr" -load "$workdir/engine.snap" -in "$workdir/corpus" \
  -ingest-threshold 5 -delta-dir "$workdir/deltas" -compact-after 1 &
server_pid=$!
up=""
for _ in $(seq 1 150); do
  if curl -fsS "http://$addr/v1/healthz" >/dev/null 2>&1; then
    up=1
    break
  fi
  kill -0 "$server_pid" 2>/dev/null || { echo "FAIL: restarted memeserve exited before becoming healthy"; exit 1; }
  sleep 0.2
done
[ -n "$up" ] || { echo "FAIL: restarted memeserve never came up"; exit 1; }
curl -fsS -X POST --data-binary @"$workdir/novel_match_req.json" \
  "http://$addr/v1/match" >"$workdir/novel_replayed.json"
jq -e '.matched == true and .entry == "synthetic-novel-meme"' "$workdir/novel_replayed.json" >/dev/null
curl -fsS "http://$addr/v1/statsz" >"$workdir/stats_replayed.json"
jq -e '.ingest.enabled == true and .ingest.seq == 5' "$workdir/stats_replayed.json" >/dev/null

step "graceful shutdown on SIGTERM"
kill -TERM "$server_pid"
if ! wait "$server_pid"; then
  echo "FAIL: memeserve exited non-zero on SIGTERM"
  exit 1
fi
server_pid=""

# --- degraded-journal scenario (chaos build) ---------------------------------
# A -tags faults build arms an injected journal failure whose budget equals
# exactly one append's retry budget: the first ingest exhausts it and flips
# the node into read-only degraded mode (503 journal_degraded + Retry-After,
# readyz drains it, queries keep answering), and the next ingest finds the
# journal healthy again and clears the flag — recovery without a restart.

step "chaos build: booting memeserve -tags faults with an armed journal fault"
go build -tags faults -o "$workdir/bin/memeserve-faults" ./cmd/memeserve
"$workdir/bin/memeserve-faults" -addr "$addr" -load "$workdir/engine.snap" -in "$workdir/corpus" \
  -ingest-threshold 1000000 -delta-dir "$workdir/deltas-degraded" \
  -faults 'journal.append.write=error,times=3' &
server_pid=$!
up=""
for _ in $(seq 1 150); do
  if curl -fsS "http://$addr/v1/healthz" >/dev/null 2>&1; then
    up=1
    break
  fi
  kill -0 "$server_pid" 2>/dev/null || { echo "FAIL: chaos memeserve exited before becoming healthy"; exit 1; }
  sleep 0.2
done
[ -n "$up" ] || { echo "FAIL: chaos memeserve never came up"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/v1/readyz")
[ "$code" = "200" ] || { echo "FAIL: readyz before the fault = $code, want 200"; exit 1; }

step "ingest exhausts the journal retry budget: clean 503 + Retry-After + reason"
code=$(curl -s -D "$workdir/degraded_hdrs" -o "$workdir/ingest_degraded.json" -w '%{http_code}' \
  -X POST --data-binary @"$workdir/ingest_req.json" "http://$addr/v1/ingest")
[ "$code" = "503" ] || { echo "FAIL: ingest during fault = $code, want 503"; exit 1; }
grep -qi '^retry-after: 1' "$workdir/degraded_hdrs" \
  || { echo "FAIL: degraded 503 carries no Retry-After"; exit 1; }
jq -e '.reason == "journal_degraded"' "$workdir/ingest_degraded.json" >/dev/null

step "degraded node: readyz drains it, healthz and queries keep answering"
code=$(curl -s -o "$workdir/ready_degraded.json" -w '%{http_code}' "http://$addr/v1/readyz")
[ "$code" = "503" ] || { echo "FAIL: readyz while degraded = $code, want 503"; exit 1; }
jq -e '.ready == false and .reason == "journal_degraded"' "$workdir/ready_degraded.json" >/dev/null
curl -fsS "http://$addr/v1/healthz" >/dev/null
curl -fsS -X POST -d "{\"hash\":\"$medoid\"}" "http://$addr/v1/match" >"$workdir/match_degraded.json"
jq -e '.matched == true' "$workdir/match_degraded.json" >/dev/null
curl -fsS "http://$addr/v1/statsz" >"$workdir/stats_degraded.json"
jq -e '.degraded == true and .ingest.degraded == true
       and .ingest.journal_retries == 2 and .ingest.journal_failures == 1' \
  "$workdir/stats_degraded.json" >/dev/null

step "journal heals: the next ingest succeeds and readiness recovers"
curl -fsS -X POST --data-binary @"$workdir/ingest_req.json" \
  "http://$addr/v1/ingest" >"$workdir/ingest_healed.json"
jq -e '.accepted == 5 and .seq == 5' "$workdir/ingest_healed.json" >/dev/null
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/v1/readyz")
[ "$code" = "200" ] || { echo "FAIL: readyz after heal = $code, want 200"; exit 1; }
curl -fsS "http://$addr/v1/statsz" >"$workdir/stats_healed.json"
jq -e '.degraded == false and .ingest.degraded == false' "$workdir/stats_healed.json" >/dev/null

step "chaos build: graceful shutdown"
kill -TERM "$server_pid"
if ! wait "$server_pid"; then
  echo "FAIL: chaos memeserve exited non-zero on SIGTERM"
  exit 1
fi
server_pid=""

echo "SMOKE PASSED: healthz, readyz, match, associate ($expected_assoc associations), influence + report + metrics/statsz agreement, 2 hot reloads, ingest + v2 compaction + journal replay, decision-log capture + memereport replay, degraded-journal read-only mode + self-heal, graceful shutdown"
