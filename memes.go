// Package memes is the public API of the meme-tracking pipeline described in
// "On the Origins of Memes by Means of Fringe Web Communities" (IMC 2018).
//
// The package wraps the internal building blocks into a small, stable
// surface built around a build-once / query-many split that mirrors the
// paper's cost structure — an expensive offline build (Steps 2-5) and a
// cheap repeatable query phase (Step 6, the stage the paper runs over 160M
// images):
//
//   - GenerateDataset / LoadDataset build or load a synthetic multi-community
//     corpus with a Know Your Meme-style annotation site (the stand-in for
//     the paper's 160M crawled images — see DESIGN.md for the substitution
//     rationale).
//   - NewEngine runs the build phase once (pHash clustering of the fringe
//     communities, screenshot filtering, KYM annotation) and keeps the
//     annotated-cluster index resident; Engine.Associate, Engine.Match, and
//     Engine.MatchImage then serve goroutine-safe, context-cancellable
//     queries against it, and Engine.Result materialises the full legacy
//     result.
//   - NewReport regenerates every table and figure of the paper's evaluation
//     from a pipeline result.
//   - HashImage, NewMetric, FitHawkes, and TrainScreenshotClassifier expose
//     the individual algorithmic components for standalone use.
//
// See the examples directory for runnable end-to-end programs.
package memes

import (
	"context"
	"image"

	"github.com/memes-pipeline/memes/internal/analysis"
	"github.com/memes-pipeline/memes/internal/annotate"
	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/distance"
	"github.com/memes-pipeline/memes/internal/hawkes"
	"github.com/memes-pipeline/memes/internal/index"
	"github.com/memes-pipeline/memes/internal/phash"
	"github.com/memes-pipeline/memes/internal/pipeline"
	"github.com/memes-pipeline/memes/internal/screenshot"
)

// Hash is a 64-bit DCT perceptual hash of an image.
type Hash = phash.Hash

// HashImage computes the perceptual hash of an image (Step 1 of the
// pipeline).
func HashImage(img image.Image) (Hash, error) { return phash.FromImage(img) }

// HashDistance returns the Hamming distance between two perceptual hashes.
func HashDistance(a, b Hash) int { return phash.Distance(a, b) }

// Community identifies one of the five Web communities of the study.
type Community = dataset.Community

// The five communities, in Hawkes process-index order.
const (
	Pol       = dataset.Pol
	Reddit    = dataset.Reddit
	Twitter   = dataset.Twitter
	Gab       = dataset.Gab
	TheDonald = dataset.TheDonald
)

// Dataset is a generated or loaded corpus of posts plus its annotation site.
type Dataset = dataset.Dataset

// DatasetConfig controls synthetic corpus generation.
type DatasetConfig = dataset.Config

// DefaultDatasetConfig returns the paper-profile corpus configuration.
func DefaultDatasetConfig() DatasetConfig { return dataset.DefaultConfig() }

// SmallDatasetConfig returns a miniature corpus configuration that runs in
// well under a second; useful for tests and demos.
func SmallDatasetConfig() DatasetConfig { return dataset.SmallConfig() }

// GenerateDataset synthesises a corpus.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) { return dataset.Generate(cfg) }

// LoadDataset loads a corpus previously written with (*Dataset).Save.
func LoadDataset(dir string) (*Dataset, error) { return dataset.Load(dir) }

// AnnotationSite is a Know Your Meme-style annotation site.
type AnnotationSite = annotate.Site

// KYMEntry is a single annotation-site entry.
type KYMEntry = annotate.Entry

// IndexStrategy names a medoid-index implementation for the Step 6 serve
// path; select one with WithIndex. All strategies produce bitwise-identical
// pipeline output — they differ only in cost profile.
type IndexStrategy = index.Strategy

// The built-in index strategies.
const (
	// IndexBKTree is a single Burkhard-Keller metric tree (the default).
	IndexBKTree = index.BKTree
	// IndexMultiIndex is multi-index hashing: banded exact-match tables
	// with band probing, the classic fast Hamming-space lookup.
	IndexMultiIndex = index.MultiIndex
	// IndexSharded partitions medoids across per-shard BK-trees and fans
	// each query out across the shards in parallel.
	IndexSharded = index.Sharded
)

// IndexStrategies lists every registered index strategy in sorted order.
func IndexStrategies() []IndexStrategy { return index.Strategies() }

// PipelineConfig holds the pipeline's tunable thresholds.
type PipelineConfig = pipeline.Config

// DefaultPipelineConfig returns the paper's thresholds (DBSCAN eps=8,
// minPts=5, annotation/association threshold 8).
func DefaultPipelineConfig() PipelineConfig { return pipeline.DefaultConfig() }

// Result is the output of the pipeline: per-community clusterings, annotated
// clusters, and post-to-cluster associations.
type Result = pipeline.Result

// ClusterInfo describes one cluster: its fringe community, medoid, size, and
// KYM annotation.
type ClusterInfo = pipeline.ClusterInfo

// Run executes the processing pipeline over a dataset and an annotation
// site. Use ds.Site(true) for a site with screenshots already filtered, or
// FilterSiteWithClassifier to run the learned screenshot filter.
//
// Deprecated: Run rebuilds the entire Steps 2-5 index on every call and
// cannot be cancelled. Build the index once with NewEngine and query it with
// Engine.Associate / Engine.Match; Engine.Result produces exactly the
// *Result Run returns. Run remains as a thin wrapper (NewEngine + Result)
// so existing call sites keep working.
func Run(ds *Dataset, site *AnnotationSite, cfg PipelineConfig) (*Result, error) {
	eng, err := NewEngine(context.Background(), ds, site, WithConfig(cfg))
	if err != nil {
		return nil, err
	}
	return eng.result()
}

// Metric is the custom inter-cluster distance metric of Section 2.3.
type Metric = distance.Metric

// ClusterFeatures is the per-cluster feature set the metric consumes.
type ClusterFeatures = distance.ClusterFeatures

// NewMetric builds the custom distance metric with the paper's defaults
// (tau=25, full-mode weights 0.4/0.4/0.1/0.1).
func NewMetric() (*Metric, error) { return distance.New() }

// PerceptualSimilarity evaluates the exponential-decay perceptual similarity
// (Eq. 2) for a Hamming distance d and smoother tau.
func PerceptualSimilarity(d int, tau float64) float64 {
	return distance.PerceptualSimilarity(d, tau)
}

// Report regenerates the paper's tables and figures from a pipeline result.
type Report = analysis.Report

// ReportSection is one rendered report section (a paper table or figure);
// see Report.Sections.
type ReportSection = analysis.Section

// NewReport builds a report generator.
func NewReport(res *Result) (*Report, error) { return analysis.NewReport(res) }

// MemeGroup selects a subset of memes (all, racist, political, ...).
type MemeGroup = analysis.MemeGroup

// Meme groups accepted by the influence and temporal analyses.
const (
	AllMemes          = analysis.AllMemes
	RacistMemes       = analysis.RacistMemes
	NonRacistMemes    = analysis.NonRacistMemes
	PoliticalMemes    = analysis.PoliticalMemes
	NonPoliticalMemes = analysis.NonPoliticalMemes
)

// InfluenceResult holds the raw and normalized influence matrices of
// Figures 11-16.
type InfluenceResult = analysis.InfluenceResult

// EstimateInfluence fits per-meme Hawkes models and aggregates them into the
// community-to-community influence matrices for the given meme group.
func EstimateInfluence(res *Result, group MemeGroup) (*InfluenceResult, error) {
	return analysis.EstimateInfluence(res, group, analysis.DefaultInfluenceConfig())
}

// HawkesModel is a multivariate Hawkes process with exponential kernels.
type HawkesModel = hawkes.Model

// HawkesEvent is a single event of a multivariate Hawkes process.
type HawkesEvent = hawkes.Event

// FitHawkes estimates a multivariate Hawkes model from events observed on k
// processes over the window [0, horizon).
func FitHawkes(events []HawkesEvent, k int, horizon float64) (*hawkes.FitResult, error) {
	return hawkes.Fit(events, hawkes.DefaultFitConfig(k, horizon))
}

// AttributeRootCauses computes, for every event of a fitted model, the
// probability distribution over the processes that are its root cause.
func AttributeRootCauses(fit *hawkes.FitResult) (*hawkes.Attribution, error) {
	return hawkes.Attribute(fit)
}

// ScreenshotClassifier is the learned filter that removes social-network
// screenshots from annotation-site galleries (Step 4).
type ScreenshotClassifier = screenshot.Classifier

// TrainScreenshotClassifier trains the screenshot classifier on a synthetic
// corpus and returns it together with its held-out evaluation (Figure 19).
func TrainScreenshotClassifier() (*screenshot.ExperimentResult, error) {
	return screenshot.RunExperiment(screenshot.DefaultCorpusConfig(), screenshot.DefaultTrainConfig())
}

// IsScreenshot reports whether the classifier judges the image to be a
// social-network screenshot.
func IsScreenshot(clf *ScreenshotClassifier, img image.Image) bool {
	return clf.Predict(screenshot.Features(img))
}
