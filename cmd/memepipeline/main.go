// Command memepipeline runs the processing pipeline (Steps 1-6) over a
// corpus written by memegen and prints the clustering and association
// summary.
//
// Usage:
//
//	memepipeline -in ./corpus [-eps 8] [-theta 8] [-workers N] [-index bktree|multiindex|sharded]
//	             [-save engine.snap] [-load engine.snap] [-format text|json] [-graph graph.json]
//
// With -format text (the default) the summary goes to stdout and the timing
// to stderr, so stdout stays a reproducible report. With -format json one
// JSON document carrying the full clustering/association summary plus the
// run stats is written to stdout.
//
// -save writes the built engine (Steps 2-5 output) as a versioned binary
// snapshot; -load reconstitutes the engine from such a snapshot instead of
// building, so only Step 6 runs — build once on a big box, serve the
// snapshot anywhere. With -load the clustering flags (-eps, -theta) are
// ignored: the snapshot's build configuration is authoritative.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/memes-pipeline/memes"
	"github.com/memes-pipeline/memes/internal/analysis"
	"github.com/memes-pipeline/memes/internal/cli"
	"github.com/memes-pipeline/memes/internal/distance"
)

func main() {
	in := flag.String("in", "corpus", "input corpus directory (written by memegen)")
	eps := flag.Int("eps", 8, "DBSCAN clustering threshold")
	theta := flag.Int("theta", 8, "annotation/association Hamming threshold")
	workers := flag.Int("workers", 0, "worker pool size for every pipeline stage (0 = GOMAXPROCS)")
	indexStrategy := flag.String("index", "", "medoid index strategy (empty = default): "+strategyList())
	savePath := flag.String("save", "", "write the built engine snapshot to this file")
	loadPath := flag.String("load", "", "load the engine from this snapshot instead of building (skips Steps 2-5)")
	format := flag.String("format", "text", "output format: text or json")
	graphOut := flag.String("graph", "", "optional path to write the Figure 7 cluster graph as JSON")
	flag.Parse()
	if *format != "text" && *format != "json" {
		log.Fatalf("unknown -format %q (want text or json)", *format)
	}
	if *savePath != "" && *loadPath != "" {
		log.Fatal("-save and -load are mutually exclusive (a loaded engine would re-save the same snapshot)")
	}

	ds, err := memes.LoadDataset(*in)
	if err != nil {
		log.Fatalf("loading corpus: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		log.Fatalf("building annotation site: %v", err)
	}

	var eng *memes.Engine
	if *loadPath != "" {
		opts := []memes.Option{memes.WithDataset(ds), memes.WithWorkers(*workers)}
		if *indexStrategy != "" {
			opts = append(opts, memes.WithIndex(memes.IndexStrategy(*indexStrategy)))
		}
		f, err := os.Open(*loadPath)
		if err != nil {
			log.Fatalf("opening snapshot: %v", err)
		}
		eng, err = memes.LoadEngine(f, site, opts...)
		f.Close()
		if err != nil {
			log.Fatalf("loading engine snapshot: %v", err)
		}
		fmt.Fprintf(os.Stderr, "loaded engine from %s (%d clusters) — Steps 2-5 skipped\n",
			*loadPath, len(eng.Clusters()))
	} else {
		eng, err = memes.NewEngine(context.Background(), ds, site,
			memes.WithEps(*eps),
			memes.WithAnnotationThreshold(*theta),
			memes.WithAssociationThreshold(*theta),
			memes.WithWorkers(*workers),
			memes.WithIndex(memes.IndexStrategy(*indexStrategy)))
		if err != nil {
			log.Fatalf("building engine: %v", err)
		}
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			log.Fatalf("creating snapshot file: %v", err)
		}
		if err := eng.Save(f); err != nil {
			log.Fatalf("writing snapshot: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("closing snapshot file: %v", err)
		}
		if st, err := os.Stat(*savePath); err == nil {
			fmt.Fprintf(os.Stderr, "wrote engine snapshot (%d bytes) to %s\n", st.Size(), *savePath)
		}
	}
	res := eng.Result()

	switch *format {
	case "json":
		if err := json.NewEncoder(os.Stdout).Encode(summaryDoc(res)); err != nil {
			log.Fatalf("encoding summary: %v", err)
		}
	case "text":
		// Timing goes to stderr so stdout stays a reproducible summary.
		fmt.Fprintln(os.Stderr, res.Stats)
		fmt.Println("Clustering (Table 2):")
		for _, row := range analysis.ClusteringStats(res) {
			fmt.Printf("  %-12s images=%-7d noise=%.0f%% clusters=%-5d annotated=%d (%.0f%%)\n",
				row.Community, row.Images, row.NoisePercent, row.Clusters, row.Annotated, row.AnnotatedPerc)
		}
		fmt.Printf("Associations (Step 6): %d posts matched to annotated clusters\n", len(res.Associations))
		for _, row := range analysis.EventCounts(res) {
			fmt.Printf("  %-12s %d\n", row.Community, row.Events)
		}
	}

	if *graphOut != "" {
		metric, err := distance.New()
		if err != nil {
			log.Fatalf("building metric: %v", err)
		}
		g, err := analysis.BuildClusterGraph(res, metric, analysis.DefaultClusterGraphConfig())
		if err != nil {
			log.Fatalf("building cluster graph: %v", err)
		}
		data, err := g.JSON()
		if err != nil {
			log.Fatalf("encoding graph: %v", err)
		}
		if err := os.WriteFile(*graphOut, data, 0o644); err != nil {
			log.Fatalf("writing graph: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote cluster graph (%d nodes, %d edges) to %s\n",
			len(g.Nodes), len(g.Edges), *graphOut)
	}
}

// strategyList renders the registered index strategies for the -index flag
// help text.
func strategyList() string {
	var names []string
	for _, s := range memes.IndexStrategies() {
		names = append(names, string(s))
	}
	return strings.Join(names, ", ")
}

// The JSON document mirrors the text summary (clustering rows, association
// counts) and adds the run stats, so one machine-readable object carries
// everything a CI pipeline or dashboard needs.

type clusteringJSON struct {
	Community        string  `json:"community"`
	Images           int     `json:"images"`
	NoisePercent     float64 `json:"noise_percent"`
	Clusters         int     `json:"clusters"`
	Annotated        int     `json:"annotated"`
	AnnotatedPercent float64 `json:"annotated_percent"`
}

type eventsJSON struct {
	Community string `json:"community"`
	Events    int    `json:"events"`
}

type summaryJSON struct {
	Clustering   []clusteringJSON `json:"clustering"`
	Associations int              `json:"associations"`
	Events       []eventsJSON     `json:"events"`
	Stats        cli.StatsJSON    `json:"stats"`
}

func summaryDoc(res *memes.Result) summaryJSON {
	// Slice fields start non-nil so the JSON contract is always an array,
	// never null, even on corpora that produce no rows.
	doc := summaryJSON{
		Clustering:   []clusteringJSON{},
		Events:       []eventsJSON{},
		Associations: len(res.Associations),
	}
	for _, row := range analysis.ClusteringStats(res) {
		doc.Clustering = append(doc.Clustering, clusteringJSON{
			Community:        row.Community,
			Images:           row.Images,
			NoisePercent:     row.NoisePercent,
			Clusters:         row.Clusters,
			Annotated:        row.Annotated,
			AnnotatedPercent: row.AnnotatedPerc,
		})
	}
	for _, row := range analysis.EventCounts(res) {
		doc.Events = append(doc.Events, eventsJSON{Community: row.Community, Events: row.Events})
	}
	doc.Stats = cli.StatsDoc(res.Stats)
	return doc
}
