// Command memepipeline runs the processing pipeline (Steps 1-6) over a
// corpus written by memegen and prints the clustering and association
// summary.
//
// Usage:
//
//	memepipeline -in ./corpus [-eps 8] [-theta 8] [-workers N] [-graph graph.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/memes-pipeline/memes/internal/analysis"
	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/distance"
	"github.com/memes-pipeline/memes/internal/pipeline"
)

func main() {
	in := flag.String("in", "corpus", "input corpus directory (written by memegen)")
	eps := flag.Int("eps", 8, "DBSCAN clustering threshold")
	theta := flag.Int("theta", 8, "annotation/association Hamming threshold")
	workers := flag.Int("workers", 0, "worker pool size for every pipeline stage (0 = GOMAXPROCS)")
	graphOut := flag.String("graph", "", "optional path to write the Figure 7 cluster graph as JSON")
	flag.Parse()

	ds, err := dataset.Load(*in)
	if err != nil {
		log.Fatalf("loading corpus: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		log.Fatalf("building annotation site: %v", err)
	}
	cfg := pipeline.DefaultConfig()
	cfg.Clustering.Eps = *eps
	cfg.AnnotationThreshold = *theta
	cfg.AssociationThreshold = *theta
	cfg.Workers = *workers

	res, err := pipeline.Run(ds, site, cfg)
	if err != nil {
		log.Fatalf("running pipeline: %v", err)
	}

	// Timing goes to stderr so stdout stays a reproducible summary.
	fmt.Fprintln(os.Stderr, res.Stats)
	fmt.Println("Clustering (Table 2):")
	for _, row := range analysis.ClusteringStats(res) {
		fmt.Printf("  %-12s images=%-7d noise=%.0f%% clusters=%-5d annotated=%d (%.0f%%)\n",
			row.Community, row.Images, row.NoisePercent, row.Clusters, row.Annotated, row.AnnotatedPerc)
	}
	fmt.Printf("Associations (Step 6): %d posts matched to annotated clusters\n", len(res.Associations))
	for _, row := range analysis.EventCounts(res) {
		fmt.Printf("  %-12s %d\n", row.Community, row.Events)
	}

	if *graphOut != "" {
		metric, err := distance.New()
		if err != nil {
			log.Fatalf("building metric: %v", err)
		}
		g, err := analysis.BuildClusterGraph(res, metric, analysis.DefaultClusterGraphConfig())
		if err != nil {
			log.Fatalf("building cluster graph: %v", err)
		}
		data, err := g.JSON()
		if err != nil {
			log.Fatalf("encoding graph: %v", err)
		}
		if err := os.WriteFile(*graphOut, data, 0o644); err != nil {
			log.Fatalf("writing graph: %v", err)
		}
		fmt.Printf("wrote cluster graph (%d nodes, %d edges) to %s\n", len(g.Nodes), len(g.Edges), *graphOut)
	}
}
