package main

import "testing"

// TestValidateLabel pins the fix for the unvalidated -label interpolation:
// a label lands verbatim in the BENCH_<label>.json output path, so anything
// that could traverse directories must be rejected.
func TestValidateLabel(t *testing.T) {
	for _, label := range []string{"ci", "pr4", "local", "run-2026.07", "a_b"} {
		if err := validateLabel(label); err != nil {
			t.Errorf("validateLabel(%q) = %v, want nil", label, err)
		}
	}
	for _, label := range []string{
		"",
		"../escape",
		"..",
		"a/b",
		`a\b`,
		"/etc/passwd",
		"nested/../../up",
		"sp ace",
		"tab\tlabel",
		"new\nline",
	} {
		if err := validateLabel(label); err == nil {
			t.Errorf("validateLabel(%q) accepted, want error", label)
		}
	}
}
