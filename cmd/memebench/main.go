// Command memebench executes the repo's named performance benchmark set —
// the build path (BenchmarkPipelineRun), the clustering phase
// (BenchmarkDBSCAN), the serve path per index strategy
// (BenchmarkEngineAssociate), the zero-alloc steady-state serve paths
// (EngineAssociateSteady, EngineMatchSteady), Step 1 hashing
// (BenchmarkPhashExtraction), the streaming ingest fast path (Ingest,
// posts/sec through Ingestor.Ingest), and snapshot load-to-first-query per
// format version (EngineSnapshotLoad) — and writes one BENCH_<label>.json
// document with ns/op, allocs/op, and the custom throughput metrics, using
// the same machine-readable conventions as the CLIs' -format json stats.
// The emitted file is one point of the repo's performance trajectory: CI
// uploads BENCH_ci.json on every run, and curated points are committed at
// the repo root.
//
// Usage:
//
//	memebench [-label ci] [-out BENCH_ci.json] [-benchtime 1x] [-workers N]
//
// The corpus matches the bench_test.go benchmark corpus, so numbers are
// comparable with `go test -bench`. -benchtime accepts everything the
// testing flag does ("1x", "100ms", ...); the default is the testing
// package's 1s target.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"github.com/memes-pipeline/memes"
	"github.com/memes-pipeline/memes/internal/benchcorpus"
	"github.com/memes-pipeline/memes/internal/cli"
	"github.com/memes-pipeline/memes/internal/cluster"
	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/imaging"
	"github.com/memes-pipeline/memes/internal/pipeline"
)

func main() {
	label := flag.String("label", "local", "trajectory point label; also names the default output file")
	out := flag.String("out", "", "output path (default BENCH_<label>.json)")
	benchtime := flag.String("benchtime", "", "benchmark time target, as accepted by -test.benchtime (e.g. 1x, 2s)")
	workers := flag.Int("workers", 0, "full worker-pool size for the parallel variants (0 = GOMAXPROCS)")
	baseline := flag.String("baseline", "", "committed BENCH_<label>.json to gate this run against; exits non-zero on regression")
	regress := flag.Float64("regress", 0.30, "tolerated fractional images/sec drop vs -baseline before the gate fails")
	testing.Init()
	flag.Parse()
	if err := validateLabel(*label); err != nil {
		log.Fatalf("invalid -label %q: %v", *label, err)
	}
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			log.Fatalf("invalid -benchtime %q: %v", *benchtime, err)
		}
	}
	path := *out
	if path == "" {
		path = "BENCH_" + *label + ".json"
	}

	st, err := newBenchState()
	if err != nil {
		log.Fatalf("building benchmark corpus: %v", err)
	}
	full := *workers
	if full <= 0 {
		full = runtime.GOMAXPROCS(0)
	}

	doc := cli.NewBenchDoc(*label)
	run := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		if r.N == 0 {
			// testing.Benchmark reports a failed fn (b.Fatal) only as a
			// zero result; a zero point would silently corrupt the
			// trajectory, so fail the run instead.
			log.Fatalf("benchmark %s failed (zero iterations)", name)
		}
		doc.Add(name, r)
		fmt.Fprintf(os.Stderr, "%-40s %12d ns/op %8d allocs/op", name, r.NsPerOp(), r.AllocsPerOp())
		for k, v := range r.Extra {
			fmt.Fprintf(os.Stderr, "  %.0f %s", v, k)
		}
		fmt.Fprintln(os.Stderr)
	}

	workerCounts := []int{1}
	if full > 1 {
		workerCounts = append(workerCounts, full)
	}
	for _, w := range workerCounts {
		w := w
		run(fmt.Sprintf("PipelineRun/workers_%d", w), func(b *testing.B) { st.benchPipelineRun(b, w) })
	}
	for _, w := range workerCounts {
		w := w
		run(fmt.Sprintf("DBSCAN/workers_%d", w), func(b *testing.B) { st.benchDBSCAN(b, w) })
	}
	for _, strategy := range memes.IndexStrategies() {
		strategy := strategy
		run("EngineAssociate/"+string(strategy), func(b *testing.B) { st.benchEngineAssociate(b, strategy) })
	}
	for _, strategy := range steadyStrategies() {
		strategy := strategy
		run("EngineAssociateSteady/"+string(strategy), func(b *testing.B) { st.benchEngineAssociateSteady(b, strategy) })
	}
	for _, strategy := range steadyStrategies() {
		strategy := strategy
		run("EngineMatchSteady/"+string(strategy), func(b *testing.B) { st.benchEngineMatchSteady(b, strategy) })
	}
	// Load-to-first-query runs before the heap-heavy Ingest benchmark so a
	// GC cycle over ingest garbage cannot land inside the short timed loop.
	for _, v := range []struct {
		name    string
		version uint32
	}{{"v1", memes.SnapshotV1}, {"v2", memes.SnapshotV2}} {
		v := v
		run("EngineSnapshotLoad/"+v.name, func(b *testing.B) { st.benchEngineSnapshotLoad(b, v.version) })
	}
	run("PhashExtraction", func(b *testing.B) { benchPhashExtraction(b) })
	run("Ingest", func(b *testing.B) { st.benchIngest(b) })

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("encoding %s: %v", path, err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatalf("writing %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d benchmark results to %s\n", len(doc.Benchmarks), path)

	// The trajectory gate: the fresh point must not fall off a cliff
	// relative to the committed baseline on the two images/sec headlines —
	// the full build path and the Step 6 serve path. The tolerance absorbs
	// runner noise; order-of-magnitude regressions fail the run.
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			log.Fatalf("reading baseline: %v", err)
		}
		var base cli.BenchDoc
		if err := json.Unmarshal(raw, &base); err != nil {
			log.Fatalf("decoding baseline %s: %v", *baseline, err)
		}
		violations := cli.CompareBench(&base, &doc, gatedPrefixes, "images_per_sec", *regress)
		// Allocation counts are gated as a ceiling: the steady-state serve
		// paths are pinned at their baseline allocs/op, so a baseline of 0
		// means 0 forever — no tolerance loosens a zero-alloc invariant.
		violations = append(violations, cli.CompareBenchAllocs(&base, &doc, allocGatedPrefixes, *regress)...)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "REGRESSION: "+v)
		}
		if len(violations) > 0 {
			log.Fatalf("%d regression(s) vs %s", len(violations), *baseline)
		}
		fmt.Fprintf(os.Stderr, "no regression vs %s (tolerance %.0f%%)\n", *baseline, 100**regress)
	}
}

// gatedPrefixes names the benchmark families the -baseline gate covers: the
// end-to-end build path and the per-strategy serve path.
var gatedPrefixes = []string{"PipelineRun/", "EngineAssociate/"}

// allocGatedPrefixes names the families whose allocs/op is a hard ceiling:
// the zero-alloc steady-state serve paths and Step 1 hashing.
var allocGatedPrefixes = []string{"EngineAssociateSteady/", "EngineMatchSteady/", "PhashExtraction"}

// steadyStrategies lists the index strategies whose steady-state serve path
// is pinned to zero allocations (the flat BK-tree forms).
func steadyStrategies() []memes.IndexStrategy {
	return []memes.IndexStrategy{memes.IndexBKTree, memes.IndexSharded}
}

// validateLabel rejects labels that would escape the working directory when
// interpolated into the BENCH_<label>.json output filename.
func validateLabel(label string) error {
	if label == "" {
		return errors.New("label is empty")
	}
	if strings.ContainsAny(label, `/\`) || strings.Contains(label, "..") {
		return errors.New("label must not contain path separators or ..")
	}
	for _, r := range label {
		if r <= 0x20 || r == 0x7f {
			return fmt.Errorf("label contains control or space character %q", r)
		}
	}
	return nil
}

// benchState is the shared corpus — benchcorpus.Config, the same corpus
// bench_test.go generates — so memebench numbers are comparable with
// `go test -bench` output.
type benchState struct {
	ds   *dataset.Dataset
	site *memes.AnnotationSite
}

func newBenchState() (*benchState, error) {
	ds, err := dataset.Generate(benchcorpus.Config())
	if err != nil {
		return nil, fmt.Errorf("generating corpus: %w", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		return nil, fmt.Errorf("building site: %w", err)
	}
	return &benchState{ds: ds, site: site}, nil
}

func (st *benchState) benchPipelineRun(b *testing.B, workers int) {
	cfg := pipeline.DefaultConfig()
	cfg.Workers = workers
	b.ReportAllocs()
	var res *pipeline.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = pipeline.Run(st.ds, st.site, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Stats.ImagesPerSec(), "images_per_sec")
	if st, ok := res.Stats.Stage(pipeline.StageNeighbours); ok {
		b.ReportMetric(st.Throughput(), "neighbour_points_per_sec")
	}
}

func (st *benchState) benchDBSCAN(b *testing.B, workers int) {
	hashes, counts, _ := st.ds.FringeImageHashes()
	if len(hashes) == 0 {
		b.Fatal("no fringe hashes")
	}
	cfg := cluster.DefaultDBSCANConfig()
	cfg.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	var res cluster.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = cluster.DBSCAN(hashes, counts, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Neighbourhoods.PointsPerSec(), "neighbour_points_per_sec")
}

func (st *benchState) benchEngineAssociate(b *testing.B, strategy memes.IndexStrategy) {
	ctx := context.Background()
	eng, err := memes.NewEngine(ctx, st.ds, st.site, memes.WithIndex(strategy))
	if err != nil {
		b.Fatal(err)
	}
	imagePosts := 0
	for i := range st.ds.Posts {
		if st.ds.Posts[i].HasImage {
			imagePosts++
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Associate(ctx, st.ds.Posts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(imagePosts)*float64(b.N)/secs, "images_per_sec")
	}
}

// benchEngineAssociateSteady measures the serve path the way a resident
// server runs it: AssociateAppend into a recycled caller-owned buffer, after
// one warm-up pass has grown the buffer and seeded the query scratch pool.
// Allocs/op is the gated quantity; throughput is informational.
func (st *benchState) benchEngineAssociateSteady(b *testing.B, strategy memes.IndexStrategy) {
	ctx := context.Background()
	eng, err := memes.NewEngine(ctx, st.ds, st.site, memes.WithIndex(strategy))
	if err != nil {
		b.Fatal(err)
	}
	imagePosts := 0
	for i := range st.ds.Posts {
		if st.ds.Posts[i].HasImage {
			imagePosts++
		}
	}
	out, err := eng.AssociateAppend(ctx, st.ds.Posts, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err = eng.AssociateAppend(ctx, st.ds.Posts, out[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(imagePosts)*float64(b.N)/secs, "images_per_sec")
	}
}

// benchEngineMatchSteady measures single-hash Match against annotated
// medoids after one warm-up query has seeded the scratch pool; the steady
// state must report zero allocs/op.
func (st *benchState) benchEngineMatchSteady(b *testing.B, strategy memes.IndexStrategy) {
	ctx := context.Background()
	eng, err := memes.NewEngine(ctx, st.ds, st.site, memes.WithIndex(strategy))
	if err != nil {
		b.Fatal(err)
	}
	var queries []memes.Hash
	for _, c := range eng.Clusters() {
		if c.Annotated() {
			queries = append(queries, c.MedoidHash)
		}
	}
	if len(queries) == 0 {
		b.Fatal("no annotated clusters in bench corpus")
	}
	// Warm every query once: the pooled scratch grows to the largest result
	// set before counting, so one-time growth never shows up as allocs/op.
	for _, q := range queries {
		if _, _, err := eng.Match(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Match(ctx, queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngineSnapshotLoad measures load-to-first-query: LoadEngineFile on a
// saved snapshot of the given format version followed by one Match. The v2
// point is the headline the flat format exists for.
func (st *benchState) benchEngineSnapshotLoad(b *testing.B, version uint32) {
	ctx := context.Background()
	eng, err := memes.NewEngine(ctx, st.ds, st.site)
	if err != nil {
		b.Fatal(err)
	}
	var query memes.Hash
	found := false
	for _, c := range eng.Clusters() {
		if c.Annotated() {
			query, found = c.MedoidHash, true
			break
		}
	}
	if !found {
		b.Fatal("no annotated clusters in bench corpus")
	}
	dir, err := os.MkdirTemp("", "memebench-snap-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, fmt.Sprintf("v%d.snap", version))
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.SaveVersion(f, version); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	// Drain garbage from the build and earlier benchmarks (and any mapped
	// snapshots awaiting finalizers) so the timed loop measures the load,
	// not a GC cycle over the whole process heap.
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loaded, err := memes.LoadEngineFile(path, st.site)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := loaded.Match(ctx, query); err != nil {
			b.Fatal(err)
		}
		if err := loaded.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIngest measures the streaming-ingest fast path: every post in the
// corpus is fed through Ingestor.Ingest against a resident engine, so the
// rate is dominated by the probe-and-assign step (posts matching annotated
// medoids are servable immediately). The threshold is set out of reach so
// no background re-cluster runs inside the timed loop, and the journal is
// disabled — this is the pure in-memory absorption rate.
func (st *benchState) benchIngest(b *testing.B) {
	ctx := context.Background()
	eng, err := memes.NewEngine(ctx, st.ds, st.site)
	if err != nil {
		b.Fatal(err)
	}
	hot := memes.NewHotEngine(eng)
	g, err := memes.NewIngestor(hot, st.ds, st.site, memes.IngestConfig{Threshold: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	batch := st.ds.Posts
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Ingest(ctx, batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(len(batch))*float64(b.N)/secs, "posts_per_sec")
	}
}

func benchPhashExtraction(b *testing.B) {
	tmpl := imaging.Template(1)
	if _, err := memes.HashImage(tmpl); err != nil { // warm the hasher pool
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := memes.HashImage(tmpl); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 && b.Elapsed() > 0 {
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "images_per_sec")
	}
}
