// Command memegen synthesises a multi-community meme corpus and writes it to
// disk for later pipeline runs.
//
// Usage:
//
//	memegen -out ./corpus [-profile paper|small] [-seed 42] [-memes 200]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/memes-pipeline/memes/internal/dataset"
)

func main() {
	out := flag.String("out", "corpus", "output directory")
	profile := flag.String("profile", "paper", "dataset profile: paper or small")
	seed := flag.Int64("seed", 0, "override the generation seed (0 keeps the profile default)")
	memesCount := flag.Int("memes", 0, "override the number of planted memes (0 keeps the profile default)")
	flag.Parse()

	var cfg dataset.Config
	switch *profile {
	case "paper":
		cfg = dataset.DefaultConfig()
	case "small":
		cfg = dataset.SmallConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q (want paper or small)\n", *profile)
		os.Exit(2)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *memesCount > 0 {
		cfg.NumMemes = *memesCount
	}

	ds, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatalf("generating dataset: %v", err)
	}
	if err := ds.Save(*out); err != nil {
		log.Fatalf("saving dataset: %v", err)
	}
	fmt.Printf("wrote %d posts, %d memes, %d KYM entries to %s\n",
		len(ds.Posts), len(ds.Memes), len(ds.KYMEntries), *out)
	for _, s := range ds.PlatformStats() {
		fmt.Printf("  %-8s posts=%d images=%d unique pHashes=%d\n",
			s.Platform, s.Posts, s.Images, s.UniquePHashes)
	}
}
