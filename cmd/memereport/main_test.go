package main

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/memes-pipeline/memes"
	"github.com/memes-pipeline/memes/internal/cli"
	"github.com/memes-pipeline/memes/internal/declog"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// golden compares got against testdata/<name>, rewriting the file under
// -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run `go test ./cmd/memereport -update` to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s: output diverges from golden file (run `go test ./cmd/memereport -update` after intentional changes)", name)
	}
}

// reportFixture builds the small-profile engine once for both format tests.
func reportFixture(t *testing.T) (*memes.Report, *memes.Result) {
	t.Helper()
	ds, err := memes.GenerateDataset(memes.SmallDatasetConfig())
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	eng, err := memes.NewEngine(context.Background(), ds, site)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res := eng.Result()
	rep, err := memes.NewReport(res)
	if err != nil {
		t.Fatalf("NewReport: %v", err)
	}
	return rep, res
}

// TestReportTextGolden pins the full text report for the small profile: the
// corpus generator, the pipeline, and every analysis are seeded, so the
// rendered document is reproducible byte for byte.
func TestReportTextGolden(t *testing.T) {
	rep, _ := reportFixture(t)
	text, err := rep.RenderAll()
	if err != nil {
		t.Fatalf("RenderAll: %v", err)
	}
	golden(t, "report_small.txt", []byte(text))
}

// TestReportJSONGolden pins the -format json document. The stats block is
// the one run-varying part, so it is zeroed before comparison — the golden
// covers the document shape and every section body.
func TestReportJSONGolden(t *testing.T) {
	rep, res := reportFixture(t)
	doc, err := reportDoc(rep, res)
	if err != nil {
		t.Fatalf("reportDoc: %v", err)
	}
	if len(doc.Stats.Stages) == 0 || doc.Stats.TotalMS <= 0 {
		t.Fatal("stats block not populated")
	}
	doc.Stats = cli.StatsJSON{Stages: []cli.StageJSON{}}
	got, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got = append(got, '\n')
	golden(t, "report_small.json", got)

	// The document must round-trip: a consumer can decode what we emit.
	var back reportJSON
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if len(back.Sections) != len(doc.Sections) {
		t.Fatalf("round-trip lost sections: %d vs %d", len(back.Sections), len(doc.Sections))
	}
}

// TestTimeSeriesGolden pins the -format timeseries table for the small
// profile, for the full meme set and one restricted group.
func TestTimeSeriesGolden(t *testing.T) {
	_, res := reportFixture(t)
	golden(t, "timeseries_small_all.txt", renderTimeSeries(res, memes.AllMemes))
	golden(t, "timeseries_small_racist.txt", renderTimeSeries(res, memes.RacistMemes))
}

// TestReplayRoundTrip writes a decision log holding every associate
// decision of the corpus (plus noise the replay must skip: match decisions
// and an out-of-window post) and asserts the replayed result equals the
// direct build — the decision stream carries enough to regenerate the
// tables exactly.
func TestReplayRoundTrip(t *testing.T) {
	ds, err := memes.GenerateDataset(memes.SmallDatasetConfig())
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	eng, err := memes.NewEngine(context.Background(), ds, site)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	want := eng.Result()

	// The log a memeserve run over this corpus would produce: one associate
	// decision per post, plus entries the replay must skip.
	path := filepath.Join(t.TempDir(), "decisions.ndjson")
	sink, err := declog.NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	var decisions []declog.Decision
	decisions = append(decisions, declog.Decision{Endpoint: "match",
		Post: memes.Post{HasImage: true, Hash: 1, TruthMeme: -1, TruthRoot: -1}})
	for _, p := range ds.Posts {
		decisions = append(decisions, declog.Decision{Endpoint: "associate", Post: p})
	}
	outside := ds.Posts[0]
	outside.Timestamp = ds.End.Add(48 * time.Hour)
	decisions = append(decisions, declog.Decision{Endpoint: "associate", Post: outside})
	if err := sink.Upload(context.Background(), decisions); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := replayDecisions(context.Background(), eng, ds, path)
	if err != nil {
		t.Fatalf("replayDecisions: %v", err)
	}
	if len(got.Dataset.Posts) != len(ds.Posts) {
		t.Fatalf("replay kept %d posts, want %d (skipping the match and out-of-window entries)",
			len(got.Dataset.Posts), len(ds.Posts))
	}
	if len(got.Associations) != len(want.Associations) {
		t.Fatalf("replay produced %d associations, want %d", len(got.Associations), len(want.Associations))
	}
	for i := range want.Associations {
		if got.Associations[i] != want.Associations[i] {
			t.Fatalf("association %d: %+v, want %+v", i, got.Associations[i], want.Associations[i])
		}
	}
	// The replayed result renders the same timeseries table — the artifact
	// the replay exists to regenerate.
	if string(renderTimeSeries(got, memes.AllMemes)) != string(renderTimeSeries(want, memes.AllMemes)) {
		t.Error("replayed timeseries diverges from the direct build")
	}
}
