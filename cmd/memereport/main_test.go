package main

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/memes-pipeline/memes"
	"github.com/memes-pipeline/memes/internal/cli"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// golden compares got against testdata/<name>, rewriting the file under
// -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run `go test ./cmd/memereport -update` to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s: output diverges from golden file (run `go test ./cmd/memereport -update` after intentional changes)", name)
	}
}

// reportFixture builds the small-profile engine once for both format tests.
func reportFixture(t *testing.T) (*memes.Report, *memes.Result) {
	t.Helper()
	ds, err := memes.GenerateDataset(memes.SmallDatasetConfig())
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	eng, err := memes.NewEngine(context.Background(), ds, site)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res := eng.Result()
	rep, err := memes.NewReport(res)
	if err != nil {
		t.Fatalf("NewReport: %v", err)
	}
	return rep, res
}

// TestReportTextGolden pins the full text report for the small profile: the
// corpus generator, the pipeline, and every analysis are seeded, so the
// rendered document is reproducible byte for byte.
func TestReportTextGolden(t *testing.T) {
	rep, _ := reportFixture(t)
	text, err := rep.RenderAll()
	if err != nil {
		t.Fatalf("RenderAll: %v", err)
	}
	golden(t, "report_small.txt", []byte(text))
}

// TestReportJSONGolden pins the -format json document. The stats block is
// the one run-varying part, so it is zeroed before comparison — the golden
// covers the document shape and every section body.
func TestReportJSONGolden(t *testing.T) {
	rep, res := reportFixture(t)
	doc, err := reportDoc(rep, res)
	if err != nil {
		t.Fatalf("reportDoc: %v", err)
	}
	if len(doc.Stats.Stages) == 0 || doc.Stats.TotalMS <= 0 {
		t.Fatal("stats block not populated")
	}
	doc.Stats = cli.StatsJSON{Stages: []cli.StageJSON{}}
	got, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got = append(got, '\n')
	golden(t, "report_small.json", got)

	// The document must round-trip: a consumer can decode what we emit.
	var back reportJSON
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if len(back.Sections) != len(doc.Sections) {
		t.Fatalf("round-trip lost sections: %d vs %d", len(back.Sections), len(doc.Sections))
	}
}
