// Command memereport regenerates every table and figure of the paper's
// evaluation from a corpus: it generates (or loads) a dataset, builds the
// pipeline engine, and prints the full report.
//
// Usage:
//
//	memereport [-in ./corpus] [-profile paper|small] [-workers N]
//	           [-format text|json|timeseries] [-group all|racist|...]
//	           [-replay decisions.ndjson] [-out report.txt]
//
// When -in is given the corpus is loaded from disk; otherwise one is
// generated in memory with the selected profile. With -format text (the
// default) the sections render as one plain-text document; with -format
// json a single JSON document carries every section plus the run stats —
// the same machine-readable contract cmd/memepipeline's JSON mode follows.
// -format timeseries emits the per-day per-community meme activity table
// (posts, meme posts, meme share) for the -group meme group.
//
// -replay FILE swaps the corpus posts for the associate decisions of a
// memeserve decision log (NDJSON, written by memeserve -decision-log): the
// report then describes real served traffic instead of the stored corpus —
// the paper's tables regenerated from production decisions. Match decisions
// (hash-only, no timestamp) and posts outside the corpus observation window
// are skipped and counted on stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"github.com/memes-pipeline/memes"
	"github.com/memes-pipeline/memes/internal/analysis"
	"github.com/memes-pipeline/memes/internal/cli"
	"github.com/memes-pipeline/memes/internal/declog"
)

func main() {
	in := flag.String("in", "", "corpus directory written by memegen (empty: generate in memory)")
	profile := flag.String("profile", "paper", "dataset profile when generating: paper or small")
	workers := flag.Int("workers", 0, "worker pool size for every pipeline stage (0 = GOMAXPROCS)")
	format := flag.String("format", "text", "output format: text, json, or timeseries")
	group := flag.String("group", "all", "meme group for -format timeseries: all, racist, non-racist, politics, or non-politics")
	replay := flag.String("replay", "", "decision-log NDJSON file (memeserve -decision-log) whose associate decisions replace the corpus posts")
	out := flag.String("out", "", "write the report to this file instead of stdout")
	flag.Parse()
	if *format != "text" && *format != "json" && *format != "timeseries" {
		log.Fatalf("unknown -format %q (want text, json, or timeseries)", *format)
	}
	memeGroup, err := analysis.ParseMemeGroup(*group)
	if err != nil {
		log.Fatalf("bad -group: %v", err)
	}

	var ds *memes.Dataset
	if *in != "" {
		ds, err = memes.LoadDataset(*in)
	} else {
		cfg := memes.DefaultDatasetConfig()
		if *profile == "small" {
			cfg = memes.SmallDatasetConfig()
		}
		ds, err = memes.GenerateDataset(cfg)
	}
	if err != nil {
		log.Fatalf("obtaining corpus: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		log.Fatalf("building annotation site: %v", err)
	}
	eng, err := memes.NewEngine(context.Background(), ds, site, memes.WithWorkers(*workers))
	if err != nil {
		log.Fatalf("building engine: %v", err)
	}
	res := eng.Result()
	// Timing goes to stderr so -out / stdout stay a clean report.
	fmt.Fprintln(os.Stderr, res.Stats)

	if *replay != "" {
		res, err = replayDecisions(context.Background(), eng, ds, *replay)
		if err != nil {
			log.Fatalf("replaying decision log: %v", err)
		}
	}

	var rendered []byte
	switch *format {
	case "json":
		rep, err := memes.NewReport(res)
		if err != nil {
			log.Fatalf("building report: %v", err)
		}
		doc, err := reportDoc(rep, res)
		if err != nil {
			log.Fatalf("rendering report: %v", err)
		}
		rendered, err = json.Marshal(doc)
		if err != nil {
			log.Fatalf("encoding report: %v", err)
		}
		rendered = append(rendered, '\n')
	case "text":
		rep, err := memes.NewReport(res)
		if err != nil {
			log.Fatalf("building report: %v", err)
		}
		text, err := rep.RenderAll()
		if err != nil {
			log.Fatalf("rendering report: %v", err)
		}
		rendered = []byte(text)
	case "timeseries":
		rendered = renderTimeSeries(res, memeGroup)
	}

	if *out == "" {
		os.Stdout.Write(rendered)
		return
	}
	if err := os.WriteFile(*out, rendered, 0o644); err != nil {
		log.Fatalf("writing report: %v", err)
	}
	fmt.Printf("wrote report to %s\n", *out)
}

// The JSON document: every report section in paper order, plus the run
// stats of the pipeline execution that produced them. Sections carry the
// rendered text bodies — the structured data behind each one remains
// available through the library API.

type reportJSON struct {
	Sections []memes.ReportSection `json:"sections"`
	Stats    cli.StatsJSON         `json:"stats"`
}

// reportDoc assembles the single JSON document for -format json.
func reportDoc(rep *memes.Report, res *memes.Result) (reportJSON, error) {
	sections, err := rep.Sections()
	if err != nil {
		return reportJSON{}, err
	}
	return reportJSON{Sections: sections, Stats: cli.StatsDoc(res.Stats)}, nil
}

// renderTimeSeries formats the per-day per-community activity table for
// -format timeseries: one row per day × community, aligned columns, a
// trailing percent with one decimal — the same palette as the report's
// text tables.
func renderTimeSeries(res *memes.Result, group memes.MemeGroup) []byte {
	rows := analysis.TimeSeries(res, group)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Per-day meme activity by community (group: %s)\n\n", group)
	w := tabwriter.NewWriter(&sb, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "DAY\tCOMMUNITY\tPOSTS\tMEME POSTS\tMEME %")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.1f\n", r.Day, r.Community, r.Posts, r.MemePosts, r.Percent)
	}
	w.Flush()
	return []byte(sb.String())
}

// replayDecisions rebuilds the pipeline result from the associate decisions
// of a memeserve decision log: the corpus posts are swapped for the posts
// the server actually saw, and Step 6 association re-runs against the same
// resident clusters. Match decisions carry only a hash (no community or
// timestamp), and posts outside the corpus observation window would violate
// the Hawkes horizon — both are skipped and counted on stderr.
func replayDecisions(ctx context.Context, eng *memes.Engine, ds *memes.Dataset, path string) (*memes.Result, error) {
	decisions, err := declog.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var posts []memes.Post
	var matchSkipped, windowSkipped int
	for _, d := range decisions {
		if d.Endpoint != "associate" {
			matchSkipped++
			continue
		}
		if d.Post.Timestamp.Before(ds.Start) || d.Post.Timestamp.After(ds.End) {
			windowSkipped++
			continue
		}
		posts = append(posts, d.Post)
	}
	if len(posts) == 0 {
		return nil, fmt.Errorf("%s holds no replayable associate decisions", path)
	}
	fmt.Fprintf(os.Stderr, "replay: %d posts from %d decisions (%d non-associate skipped, %d outside observation window)\n",
		len(posts), len(decisions), matchSkipped, windowSkipped)
	return eng.ResultFor(ctx, posts)
}
