// Command memereport regenerates every table and figure of the paper's
// evaluation from a corpus: it generates (or loads) a dataset, builds the
// pipeline engine, and prints the full report.
//
// Usage:
//
//	memereport [-in ./corpus] [-profile paper|small] [-workers N] [-format text|json] [-out report.txt]
//
// When -in is given the corpus is loaded from disk; otherwise one is
// generated in memory with the selected profile. With -format text (the
// default) the sections render as one plain-text document; with -format
// json a single JSON document carries every section plus the run stats —
// the same machine-readable contract cmd/memepipeline's JSON mode follows.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/memes-pipeline/memes"
	"github.com/memes-pipeline/memes/internal/cli"
)

func main() {
	in := flag.String("in", "", "corpus directory written by memegen (empty: generate in memory)")
	profile := flag.String("profile", "paper", "dataset profile when generating: paper or small")
	workers := flag.Int("workers", 0, "worker pool size for every pipeline stage (0 = GOMAXPROCS)")
	format := flag.String("format", "text", "output format: text or json")
	out := flag.String("out", "", "write the report to this file instead of stdout")
	flag.Parse()
	if *format != "text" && *format != "json" {
		log.Fatalf("unknown -format %q (want text or json)", *format)
	}

	var (
		ds  *memes.Dataset
		err error
	)
	if *in != "" {
		ds, err = memes.LoadDataset(*in)
	} else {
		cfg := memes.DefaultDatasetConfig()
		if *profile == "small" {
			cfg = memes.SmallDatasetConfig()
		}
		ds, err = memes.GenerateDataset(cfg)
	}
	if err != nil {
		log.Fatalf("obtaining corpus: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		log.Fatalf("building annotation site: %v", err)
	}
	eng, err := memes.NewEngine(context.Background(), ds, site, memes.WithWorkers(*workers))
	if err != nil {
		log.Fatalf("building engine: %v", err)
	}
	res := eng.Result()
	// Timing goes to stderr so -out / stdout stay a clean report.
	fmt.Fprintln(os.Stderr, res.Stats)
	rep, err := memes.NewReport(res)
	if err != nil {
		log.Fatalf("building report: %v", err)
	}

	var rendered []byte
	switch *format {
	case "json":
		doc, err := reportDoc(rep, res)
		if err != nil {
			log.Fatalf("rendering report: %v", err)
		}
		rendered, err = json.Marshal(doc)
		if err != nil {
			log.Fatalf("encoding report: %v", err)
		}
		rendered = append(rendered, '\n')
	case "text":
		text, err := rep.RenderAll()
		if err != nil {
			log.Fatalf("rendering report: %v", err)
		}
		rendered = []byte(text)
	}

	if *out == "" {
		os.Stdout.Write(rendered)
		return
	}
	if err := os.WriteFile(*out, rendered, 0o644); err != nil {
		log.Fatalf("writing report: %v", err)
	}
	fmt.Printf("wrote report to %s\n", *out)
}

// The JSON document: every report section in paper order, plus the run
// stats of the pipeline execution that produced them. Sections carry the
// rendered text bodies — the structured data behind each one remains
// available through the library API.

type reportJSON struct {
	Sections []memes.ReportSection `json:"sections"`
	Stats    cli.StatsJSON         `json:"stats"`
}

// reportDoc assembles the single JSON document for -format json.
func reportDoc(rep *memes.Report, res *memes.Result) (reportJSON, error) {
	sections, err := rep.Sections()
	if err != nil {
		return reportJSON{}, err
	}
	return reportJSON{Sections: sections, Stats: cli.StatsDoc(res.Stats)}, nil
}
