// Command memereport regenerates every table and figure of the paper's
// evaluation from a corpus: it generates (or loads) a dataset, builds the
// pipeline engine, and prints the full report.
//
// Usage:
//
//	memereport [-in ./corpus] [-profile paper|small] [-workers N] [-out report.txt]
//
// When -in is given the corpus is loaded from disk; otherwise one is
// generated in memory with the selected profile.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/memes-pipeline/memes"
)

func main() {
	in := flag.String("in", "", "corpus directory written by memegen (empty: generate in memory)")
	profile := flag.String("profile", "paper", "dataset profile when generating: paper or small")
	workers := flag.Int("workers", 0, "worker pool size for every pipeline stage (0 = GOMAXPROCS)")
	out := flag.String("out", "", "write the report to this file instead of stdout")
	flag.Parse()

	var (
		ds  *memes.Dataset
		err error
	)
	if *in != "" {
		ds, err = memes.LoadDataset(*in)
	} else {
		cfg := memes.DefaultDatasetConfig()
		if *profile == "small" {
			cfg = memes.SmallDatasetConfig()
		}
		ds, err = memes.GenerateDataset(cfg)
	}
	if err != nil {
		log.Fatalf("obtaining corpus: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		log.Fatalf("building annotation site: %v", err)
	}
	eng, err := memes.NewEngine(context.Background(), ds, site, memes.WithWorkers(*workers))
	if err != nil {
		log.Fatalf("building engine: %v", err)
	}
	res := eng.Result()
	// Timing goes to stderr so -out / stdout stay a clean report.
	fmt.Fprintln(os.Stderr, res.Stats)
	rep, err := memes.NewReport(res)
	if err != nil {
		log.Fatalf("building report: %v", err)
	}
	text, err := rep.RenderAll()
	if err != nil {
		log.Fatalf("rendering report: %v", err)
	}
	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		log.Fatalf("writing report: %v", err)
	}
	fmt.Printf("wrote report to %s\n", *out)
}
