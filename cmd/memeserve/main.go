// Command memeserve serves a built engine snapshot over HTTP: the
// production front of the build-once / query-many split. memepipeline -save
// (or Engine.Save) produces the MEMESNAP artifact on a build box; memeserve
// loads it — skipping Steps 2-5 entirely — and answers Step 6 association
// traffic from the resident engine, the regime the paper operates in when
// it runs association over 160M images against a fixed set of annotated
// clusters.
//
// Usage:
//
//	memeserve -load engine.snap -in ./corpus [-addr :8080] [-index bktree|multiindex|sharded]
//	          [-workers N] [-max-batch 256] [-drain 10s]
//	          [-ingest-threshold N] [-delta-dir ./deltas] [-compact-after N]
//	          [-read-header-timeout 5s] [-read-timeout 60s] [-write-timeout 60s]
//	          [-idle-timeout 120s] [-request-timeout 30s] [-max-inflight 1024]
//	          [-decision-log decisions.ndjson] [-decision-flush 1s]
//	          [-decision-buffer 4096] [-metrics=true]
//
// -in names the corpus directory (written by memegen) whose annotation site
// the snapshot's entries are resolved against — the same site the build
// used.
//
// The server hot-reloads: SIGHUP or POST /v1/admin/reload re-reads the
// snapshot file and atomically swaps the fresh engine in with zero dropped
// requests, so a rebuilt artifact can be rolled out by overwriting the file
// and signalling the process. SIGTERM/SIGINT drain connections gracefully
// (bounded by -drain) before exiting.
//
// -ingest-threshold N (N > 0) enables streaming ingest: POST /v1/ingest
// absorbs new posts at runtime, re-clustering incrementally once N pending
// posts accumulate and hot-swapping the fresh engine in. With -delta-dir,
// accepted batches are journaled as MEMEDELT delta snapshots and compacted
// into base snapshots in the background; on boot, memeserve prefers the
// newest compacted base over -load and replays the journal tail, so
// ingested posts survive a restart.
//
// Serving is hardened by default: per-request deadlines, panic recovery,
// and bounded in-flight admission control that sheds excess load with 503 +
// Retry-After. GET /v1/readyz reports readiness (engine resident and journal
// writable) as distinct from /v1/healthz liveness; a degraded journal flips
// the node read-only — ingests 503, queries keep serving.
//
// -decision-log FILE streams every served association and match decision to
// an NDJSON file in batched, bounded-buffer fashion (OPA decision-log style:
// the serve path never blocks on the sink; overflow is dropped and counted).
// The file replays through memereport -replay to regenerate the paper's
// tables from real served traffic. -decision-flush and -decision-buffer tune
// the flush interval and buffer capacity; -metrics=false hides GET
// /v1/metrics on replicas that must not be scraped.
//
// API: POST /v1/associate, /v1/match, /v1/match/image, /v1/ingest,
// /v1/influence; GET /v1/healthz, /v1/readyz, /v1/statsz, /v1/metrics,
// /v1/report, /v1/clusters; POST /v1/admin/reload — see internal/server.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/memes-pipeline/memes"
	"github.com/memes-pipeline/memes/internal/declog"
	"github.com/memes-pipeline/memes/internal/faults"
	"github.com/memes-pipeline/memes/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	load := flag.String("load", "", "engine snapshot to serve (written by memepipeline -save); required")
	in := flag.String("in", "corpus", "corpus directory providing the annotation site the snapshot was built against")
	indexStrategy := flag.String("index", "", "medoid index strategy (empty = default): "+strategyList())
	workers := flag.Int("workers", 0, "worker pool bound for query fan-out (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", server.DefaultMaxBatch, "max concurrent /v1/match lookups coalesced into one fan-out")
	drain := flag.Duration("drain", 10*time.Second, "connection-draining timeout on SIGTERM")
	ingestThreshold := flag.Int("ingest-threshold", 0, "pending posts that trigger an incremental re-cluster; 0 disables POST /v1/ingest")
	deltaDir := flag.String("delta-dir", "", "delta-journal directory for ingest persistence (empty = in-memory only)")
	compactAfter := flag.Int("compact-after", 0, "sealed delta segments that trigger background compaction into a base snapshot (0 = default)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "http.Server.ReadHeaderTimeout: slowloris guard on request headers")
	readTimeout := flag.Duration("read-timeout", 60*time.Second, "http.Server.ReadTimeout: whole-request read deadline")
	writeTimeout := flag.Duration("write-timeout", 60*time.Second, "http.Server.WriteTimeout: whole-response write deadline")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second, "http.Server.IdleTimeout: keep-alive connection reaper")
	requestTimeout := flag.Duration("request-timeout", server.DefaultRequestTimeout, "per-request handler deadline (queries and ingest); negative disables")
	maxInFlight := flag.Int("max-inflight", server.DefaultMaxInFlight, "max concurrently served requests before shedding with 503; negative disables")
	decisionLog := flag.String("decision-log", "", "NDJSON file receiving the decision-log stream; empty disables capture")
	decisionFlush := flag.Duration("decision-flush", time.Second, "decision-log flush interval")
	decisionBuffer := flag.Int("decision-buffer", 0, "decision-log buffer capacity; overflow is dropped and counted (0 = default)")
	metricsOn := flag.Bool("metrics", true, "expose GET /v1/metrics (Prometheus text format)")
	faultSpec := flag.String("faults", "", "fault-injection spec (chaos builds only; see internal/faults)")
	flag.Parse()
	if *load == "" {
		log.Fatal("memeserve: -load is required (build a snapshot with memepipeline -save)")
	}
	// In a release binary Arm rejects any non-empty spec, so arming faults
	// against a build that compiled them out fails loudly instead of
	// silently testing nothing.
	if err := faults.Arm(*faultSpec); err != nil {
		log.Fatalf("memeserve: %v", err)
	}

	// The annotation site is rebuilt once from the corpus and shared by
	// every (re)load: snapshot entries are resolved by name against it, so
	// serving the wrong corpus's site fails loudly at load time.
	ds, err := memes.LoadDataset(*in)
	if err != nil {
		log.Fatalf("memeserve: loading corpus: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		log.Fatalf("memeserve: building annotation site: %v", err)
	}

	// With a delta journal on disk, the newest compacted base snapshot is a
	// later state of the same corpus than -load: boot from it and replay
	// only the journal tail beyond its fold point.
	snapPath := *load
	var baseSeq uint64
	if *ingestThreshold > 0 && *deltaDir != "" {
		path, seq, ok, err := memes.LatestDeltaBase(*deltaDir)
		if err != nil {
			log.Fatalf("memeserve: scanning delta dir: %v", err)
		}
		if ok {
			snapPath, baseSeq = path, seq
			log.Printf("memeserve: booting from compacted base %s (seq %d)", path, seq)
		}
	}

	// LoadEngineFile mmaps flat (v2) snapshots and serves straight from the
	// mapped bytes — the medoid index is loaded, not rebuilt, so reloads are
	// page-cache-bound; v1 artifacts go through the streaming decoder.
	// WithDataset binds the serving corpus to the engine so the analysis
	// endpoints (/v1/influence, /v1/report) can materialise the full
	// pipeline result; without it they would answer 503/analysis_disabled.
	loader := func() (*memes.Engine, error) {
		opts := []memes.Option{memes.WithWorkers(*workers), memes.WithDataset(ds)}
		if *indexStrategy != "" {
			opts = append(opts, memes.WithIndex(memes.IndexStrategy(*indexStrategy)))
		}
		return memes.LoadEngineFile(snapPath, site, opts...)
	}

	cfg := server.Config{
		Loader:         loader,
		MaxBatch:       *maxBatch,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *requestTimeout,
		DisableMetrics: !*metricsOn,
	}

	// The decision log outlives the server: it is closed (final flush) only
	// after the http.Server has drained, so every captured decision of every
	// completed request reaches the sink.
	var decSink *declog.FileSink
	var decLogger *declog.Logger
	if *decisionLog != "" {
		var err error
		decSink, err = declog.NewFileSink(*decisionLog)
		if err != nil {
			log.Fatalf("memeserve: opening decision log: %v", err)
		}
		decLogger, err = declog.New(declog.Config{
			BufferSize:    *decisionBuffer,
			FlushInterval: *decisionFlush,
			Sink:          decSink,
		})
		if err != nil {
			log.Fatalf("memeserve: decision log: %v", err)
		}
		cfg.DecisionLog = decLogger
		log.Printf("memeserve: decision log streaming to %s (flush %v)", *decisionLog, *decisionFlush)
	}
	if *ingestThreshold > 0 {
		cfg.Ingest = func(hot *memes.HotEngine) (*memes.Ingestor, error) {
			return memes.NewIngestor(hot, ds, site, memes.IngestConfig{
				Threshold:    *ingestThreshold,
				DeltaDir:     *deltaDir,
				CompactAfter: *compactAfter,
			})
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatalf("memeserve: %v", err)
	}
	defer srv.Close()
	if g := srv.Ingestor(); g != nil {
		n, err := g.Replay(context.Background(), baseSeq)
		if err != nil {
			log.Fatalf("memeserve: replaying delta journal: %v", err)
		}
		if *deltaDir != "" {
			log.Printf("memeserve: streaming ingest enabled (threshold %d): replayed %d journaled posts from %s",
				*ingestThreshold, n, *deltaDir)
		} else {
			log.Printf("memeserve: streaming ingest enabled (threshold %d, journal disabled)", *ingestThreshold)
		}
	}
	eng := srv.Engine()
	log.Printf("memeserve: loaded %s (%d clusters) — serving on %s", snapPath, len(eng.Clusters()), *addr)

	// All four transport timeouts are set so no client behaviour — slow
	// headers, trickled bodies, abandoned keep-alives — can pin a connection
	// (and its goroutine) forever.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	// SIGHUP: hot-swap a freshly built snapshot under live traffic.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			st, err := srv.Reload()
			if err != nil {
				log.Printf("memeserve: SIGHUP reload failed (old engine keeps serving): %v", err)
				continue
			}
			log.Printf("memeserve: reloaded %s: generation %d, %d clusters in %.1fms",
				*load, st.Generation, st.Clusters, st.LoadMS)
		}
	}()

	// SIGTERM/SIGINT: stop accepting, drain in-flight connections, exit 0.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatalf("memeserve: serve: %v", err)
	case <-ctx.Done():
	}
	log.Printf("memeserve: shutting down (draining up to %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		// Draining failed — force-close the remaining connections and exit
		// non-zero: requests were dropped, and the exit code must say so.
		httpSrv.Close()
		closeDecisionLog(decLogger, decSink)
		log.Fatalf("memeserve: drain did not complete, connections force-closed: %v", err)
	}
	closeDecisionLog(decLogger, decSink)
	log.Print("memeserve: drained, bye")
}

// closeDecisionLog flushes and closes the decision stream after the server
// has stopped serving; nil-safe for the disabled case.
func closeDecisionLog(l *declog.Logger, s *declog.FileSink) {
	if l != nil {
		l.Close()
	}
	if s != nil {
		if err := s.Close(); err != nil {
			log.Printf("memeserve: closing decision log: %v", err)
		}
	}
}

// strategyList renders the registered index strategies for the -index flag
// help text.
func strategyList() string {
	var names []string
	for _, s := range memes.IndexStrategies() {
		names = append(names, string(s))
	}
	return strings.Join(names, ", ")
}
