package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"github.com/memes-pipeline/memes/internal/lint"
)

var testDiags = []lint.Diagnostic{
	{
		Analyzer: "detorder",
		Pos:      token.Position{Filename: "internal/pipeline/build.go", Line: 42, Column: 3},
		Message:  "range over map fringe: iteration order may leak into output",
	},
	{
		Analyzer: "ctxflow",
		Pos:      token.Position{Filename: "internal/server/batcher.go", Line: 7, Column: 1},
		Message:  "naked go statement outside internal/parallel",
	},
}

func TestEmitJSON(t *testing.T) {
	var buf bytes.Buffer
	emit(&buf, "json", testDiags)

	var report jsonReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if report.Version != version {
		t.Errorf("version = %q, want %q", report.Version, version)
	}
	if len(report.Findings) != len(testDiags) {
		t.Fatalf("got %d findings, want %d", len(report.Findings), len(testDiags))
	}
	first := report.Findings[0]
	if first.Analyzer != "detorder" || first.File != "internal/pipeline/build.go" || first.Line != 42 || first.Column != 3 {
		t.Errorf("first finding = %+v, want detorder at internal/pipeline/build.go:42:3", first)
	}
	if !strings.Contains(first.Message, "iteration order") {
		t.Errorf("first finding message = %q, want the analyzer message preserved", first.Message)
	}
	// The wire uses stable snake_case keys CI consumers can rely on.
	for _, key := range []string{`"analyzer"`, `"file"`, `"line"`, `"column"`, `"message"`, `"findings"`, `"version"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("JSON output missing key %s:\n%s", key, buf.String())
		}
	}
}

func TestEmitJSONNoFindings(t *testing.T) {
	var buf bytes.Buffer
	emit(&buf, "json", nil)

	var report jsonReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if report.Findings == nil || len(report.Findings) != 0 {
		t.Errorf("findings = %#v, want present-but-empty array", report.Findings)
	}
	if !strings.Contains(buf.String(), `"findings": []`) {
		t.Errorf("empty report must serialize findings as [], not null:\n%s", buf.String())
	}
}

func TestEmitText(t *testing.T) {
	var buf bytes.Buffer
	emit(&buf, "text", testDiags)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	want := "internal/pipeline/build.go:42:3: detorder: range over map fringe: iteration order may leak into output"
	if lines[0] != want {
		t.Errorf("line 1 = %q, want %q", lines[0], want)
	}
}
