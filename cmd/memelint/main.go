// Command memelint runs the custom analyzer suite of internal/lint — the
// mechanical enforcement of the engine's determinism, cancellation, and
// zero-alloc invariants plus the JSON wire-format pin.
//
// Standalone (findings to stdout, exit 1 when any are reported):
//
//	memelint ./...
//	memelint -format json ./... > findings.json
//
// As a vet tool (findings relayed by go vet, exit 2 per the protocol):
//
//	go vet -vettool=$(which memelint) ./...
//
// Both modes analyze the same way: imports are resolved from compiled
// export data (the build cache in standalone mode, go vet's unit-checker
// config in vettool mode) and the target package is type-checked from
// source, so no network access and no dependency outside the standard
// library is needed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"github.com/memes-pipeline/memes/internal/lint"
)

// version participates in go vet's tool fingerprint (-V=full); bump it when
// analyzer semantics change so vet cache entries from older semantics are
// invalidated.
const version = "memelint version 1.0.0"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("memelint", flag.ContinueOnError)
	format := fs.String("format", "text", "output format: text or json")
	vFlag := fs.String("V", "", "print version and exit (go vet protocol; use -V=full)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags in JSON and exit (go vet protocol)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: memelint [-format text|json] packages...\n       go vet -vettool=memelint packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *vFlag != "" {
		// go vet probes tools with -V=full and mixes the reply into its
		// action cache key.
		fmt.Println(version)
		return 0
	}
	if *flagsFlag {
		// go vet asks tools which flags they accept; memelint's own flags
		// are not meaningful through vet, so advertise none.
		fmt.Println("[]")
		return 0
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "memelint: unknown format %q (want text or json)\n", *format)
		return 2
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVet(rest[0])
	}
	if len(rest) == 0 {
		fs.Usage()
		return 2
	}
	return runStandalone(*format, rest)
}

// runStandalone lints the packages matched by the patterns in the current
// directory's module context.
func runStandalone(format string, patterns []string) int {
	targets, exports, err := lint.GoListExports(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fset := token.NewFileSet()
	resolver := lint.NewResolver(fset, exports, nil, nil)
	var all []lint.Diagnostic
	for _, t := range targets {
		cp, err := lint.Check(fset, t.ImportPath, t.Dir, t.GoFiles, resolver)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		diags, err := cp.Analyze(lint.Analyzers())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		all = append(all, diags...)
	}
	emit(os.Stdout, format, all)
	if len(all) > 0 {
		return 1
	}
	return 0
}

// jsonFinding is the CI-consumable shape of one diagnostic.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// jsonReport is the top-level -format json document.
type jsonReport struct {
	Version  string        `json:"version"`
	Findings []jsonFinding `json:"findings"`
}

// emit writes the findings in the requested format.
func emit(w io.Writer, format string, diags []lint.Diagnostic) {
	if format == "json" {
		report := jsonReport{Version: version, Findings: []jsonFinding{}}
		for _, d := range diags {
			report.Findings = append(report.Findings, jsonFinding{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "memelint:", err)
		}
		return
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
}

// vetConfig is the unit-checker configuration go vet passes to -vettool
// binaries as a trailing .cfg argument (see cmd/go's vet action and
// x/tools' unitchecker protocol, re-implemented here on the standard
// library).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet executes one unit-checker invocation: analyze the single package
// described by the config, print findings in the file:line:col form go vet
// relays, write the (empty) facts file the protocol requires, and exit 2
// when there are findings.
func runVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memelint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "memelint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// memelint records no cross-package facts, but the protocol requires
	// the output file to exist before the driver caches the action.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "memelint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// The invariants memelint enforces apply to production code; go vet also
	// feeds test variants (_test.go files included, import path suffixed with
	// " [pkg.test]"), so filter tests out and analyze what remains under the
	// real import path. Standalone mode gets the same view from go list.
	goFiles := cfg.GoFiles[:0:0]
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 {
		return 0 // external test package: nothing in scope
	}
	importPath, _, _ := strings.Cut(cfg.ImportPath, " ")
	fset := token.NewFileSet()
	resolver := lint.NewResolver(fset, lint.ExportSet(cfg.PackageFile), cfg.ImportMap, nil)
	cp, err := lint.Check(fset, importPath, cfg.Dir, goFiles, resolver)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := cp.Analyze(lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
