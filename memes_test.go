package memes

import (
	"testing"

	"github.com/memes-pipeline/memes/internal/imaging"
)

// TestPublicAPIEndToEnd exercises the public facade the way a downstream
// user would: generate a corpus, run the pipeline, regenerate a few
// headline results.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := SmallDatasetConfig()
	cfg.NumMemes = 10
	cfg.NoiseImages = map[Community]int{Pol: 100, Twitter: 100}
	cfg.PostsWithoutImages = map[Community]int{Pol: 200}
	ds, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	res, err := Run(ds, site, DefaultPipelineConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Clusters) == 0 || len(res.Associations) == 0 {
		t.Fatal("pipeline produced no clusters or associations")
	}
	inf, err := EstimateInfluence(res, AllMemes)
	if err != nil {
		t.Fatalf("EstimateInfluence: %v", err)
	}
	if len(inf.Raw) != 5 {
		t.Fatalf("expected a 5x5 influence matrix, got %d rows", len(inf.Raw))
	}
	rep, err := NewReport(res)
	if err != nil {
		t.Fatalf("NewReport: %v", err)
	}
	if text, err := rep.RenderTable2(); err != nil || text == "" {
		t.Fatalf("RenderTable2: %v", err)
	}
}

func TestPublicHashingAndMetric(t *testing.T) {
	img := imaging.Template(1)
	h1, err := HashImage(img)
	if err != nil {
		t.Fatalf("HashImage: %v", err)
	}
	variant := imaging.Variant(img, 5, 0.2)
	h2, err := HashImage(variant)
	if err != nil {
		t.Fatalf("HashImage variant: %v", err)
	}
	if d := HashDistance(h1, h2); d > 12 {
		t.Errorf("variant hash distance %d unexpectedly large", d)
	}
	m, err := NewMetric()
	if err != nil {
		t.Fatalf("NewMetric: %v", err)
	}
	a := ClusterFeatures{MedoidHash: h1, Memes: []string{"pepe"}, Annotated: true}
	b := ClusterFeatures{MedoidHash: h2, Memes: []string{"pepe"}, Annotated: true}
	if d := m.Distance(a, b); d > 0.3 {
		t.Errorf("same-meme near-identical clusters have distance %v", d)
	}
	if s := PerceptualSimilarity(0, 25); s != 1 {
		t.Errorf("PerceptualSimilarity(0) = %v", s)
	}
}

func TestPublicHawkes(t *testing.T) {
	// A tiny hand-built event sequence: process 0 events regularly, process 1
	// follows shortly after each.
	var events []HawkesEvent
	for i := 0; i < 40; i++ {
		t0 := float64(i) * 5
		events = append(events, HawkesEvent{Time: t0, Process: 0})
		events = append(events, HawkesEvent{Time: t0 + 0.3, Process: 1})
	}
	fit, err := FitHawkes(events, 2, 210)
	if err != nil {
		t.Fatalf("FitHawkes: %v", err)
	}
	att, err := AttributeRootCauses(fit)
	if err != nil {
		t.Fatalf("AttributeRootCauses: %v", err)
	}
	raw := att.InfluenceMatrix()
	if raw[0][1] <= raw[1][0] {
		t.Errorf("expected process 0 to influence process 1: %v", raw)
	}
}

func TestPublicScreenshotClassifier(t *testing.T) {
	if testing.Short() {
		t.Skip("classifier training skipped in -short mode")
	}
	exp, err := TrainScreenshotClassifier()
	if err != nil {
		t.Fatalf("TrainScreenshotClassifier: %v", err)
	}
	if exp.Evaluation.AUC < 0.85 {
		t.Errorf("classifier AUC %v too low", exp.Evaluation.AUC)
	}
	shot := imaging.Screenshot(1, 96, 160)
	meme := imaging.Template(2)
	shotPred := IsScreenshot(exp.Classifier, shot)
	memePred := IsScreenshot(exp.Classifier, meme)
	if !shotPred && memePred {
		t.Errorf("classifier confuses screenshots and memes: shot=%v meme=%v", shotPred, memePred)
	}
}
