package memes

// This file is the benchmark harness of the reproduction: one benchmark per
// table and figure of the paper's evaluation (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured values). Each
// benchmark regenerates the corresponding rows or series from a shared
// pipeline run over the synthetic corpus and reports the headline quantity
// as a benchmark metric, so `go test -bench=.` reproduces the entire
// evaluation in one command.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"github.com/memes-pipeline/memes/internal/analysis"
	"github.com/memes-pipeline/memes/internal/benchcorpus"
	"github.com/memes-pipeline/memes/internal/cluster"
	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/distance"
	"github.com/memes-pipeline/memes/internal/imaging"
	"github.com/memes-pipeline/memes/internal/phash"
	"github.com/memes-pipeline/memes/internal/pipeline"
	"github.com/memes-pipeline/memes/internal/screenshot"
)

// benchState is the shared corpus + pipeline run used by all benchmarks. It
// is built once; individual benchmarks re-run only the analysis under test.
type benchState struct {
	ds  *dataset.Dataset
	res *pipeline.Result
	met *distance.Metric
}

var (
	benchOnce sync.Once
	bench     benchState
	benchErr  error
)

// benchConfig is the shared benchmark corpus; cmd/memebench generates the
// same one (see internal/benchcorpus), so trajectory points and `go test
// -bench` numbers are comparable by construction.
func benchConfig() dataset.Config {
	return benchcorpus.Config()
}

func getBench(b *testing.B) *benchState {
	b.Helper()
	benchOnce.Do(func() {
		ds, err := dataset.Generate(benchConfig())
		if err != nil {
			benchErr = fmt.Errorf("generating corpus: %w", err)
			return
		}
		site, err := ds.Site(true)
		if err != nil {
			benchErr = fmt.Errorf("building site: %w", err)
			return
		}
		res, err := pipeline.Run(ds, site, pipeline.DefaultConfig())
		if err != nil {
			benchErr = fmt.Errorf("running pipeline: %w", err)
			return
		}
		met, err := distance.New()
		if err != nil {
			benchErr = fmt.Errorf("building metric: %w", err)
			return
		}
		bench = benchState{ds: ds, res: res, met: met}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return &bench
}

// --- Tables -----------------------------------------------------------------

func BenchmarkTable1_DatasetOverview(b *testing.B) {
	st := getBench(b)
	var rows []analysis.Table1Row
	for i := 0; i < b.N; i++ {
		rows = analysis.DatasetOverview(st.ds)
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.UniquePHashes), "uniq_phash_"+sanitize(r.Platform))
	}
}

func BenchmarkTable2_ClusteringStats(b *testing.B) {
	st := getBench(b)
	cfg := pipeline.DefaultConfig()
	site, err := st.ds.Site(true)
	if err != nil {
		b.Fatal(err)
	}
	var res *pipeline.Result
	for i := 0; i < b.N; i++ {
		res, err = pipeline.Run(st.ds, site, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range analysis.ClusteringStats(res) {
		b.ReportMetric(float64(row.Clusters), "clusters_"+sanitize(row.Community))
		b.ReportMetric(row.NoisePercent, "noise_pct_"+sanitize(row.Community))
	}
}

func BenchmarkTable3_TopKYMEntries(b *testing.B) {
	st := getBench(b)
	var top map[string][]analysis.EntryCount
	for i := 0; i < b.N; i++ {
		top = analysis.TopEntriesByClusters(st.res, 20)
	}
	if rows := top["/pol/"]; len(rows) > 0 {
		b.ReportMetric(rows[0].Percent, "top_entry_pct_pol")
	}
}

func BenchmarkTable4_TopMemesByPosts(b *testing.B) {
	st := getBench(b)
	var top map[string][]analysis.EntryCount
	for i := 0; i < b.N; i++ {
		top = analysis.TopMemesByPosts(st.res, 20)
	}
	if rows := top["/pol/"]; len(rows) > 0 {
		b.ReportMetric(rows[0].Percent, "top_meme_pct_pol")
	}
}

func BenchmarkTable5_TopPeople(b *testing.B) {
	st := getBench(b)
	var top map[string][]analysis.EntryCount
	for i := 0; i < b.N; i++ {
		top = analysis.TopPeopleByPosts(st.res, 15)
	}
	total := 0
	for _, rows := range top {
		total += len(rows)
	}
	b.ReportMetric(float64(total), "people_rows")
}

func BenchmarkTable6_TopSubreddits(b *testing.B) {
	st := getBench(b)
	var groups analysis.SubredditGroups
	for i := 0; i < b.N; i++ {
		groups = analysis.TopSubreddits(st.res, 10)
	}
	if len(groups.All) > 0 {
		b.ReportMetric(groups.All[0].Percent, "top_subreddit_pct")
	}
}

func BenchmarkTable7_EventCounts(b *testing.B) {
	st := getBench(b)
	var rows []analysis.EventCount
	for i := 0; i < b.N; i++ {
		rows = analysis.EventCounts(st.res)
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Events), "events_"+sanitize(r.Community))
	}
}

func BenchmarkTable8_ClusteringSweep(b *testing.B) {
	st := getBench(b)
	var rows []analysis.SweepRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = analysis.ClusterSweep(st.ds, []int{2, 4, 6, 8, 10})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.NoisePercent, fmt.Sprintf("noise_pct_eps%d", r.Eps))
	}
}

func BenchmarkTable9_ScreenshotDataset(b *testing.B) {
	var rows []analysis.Table9Row
	for i := 0; i < b.N; i++ {
		rows = analysis.ScreenshotDataset(screenshot.PaperCounts())
	}
	total := 0
	for _, r := range rows {
		total += r.Images
	}
	b.ReportMetric(float64(total), "corpus_images")
}

// --- Figures ----------------------------------------------------------------

func BenchmarkFigure3_PerceptualDecay(b *testing.B) {
	var series []analysis.Series
	for i := 0; i < b.N; i++ {
		series = analysis.PerceptualDecay([]float64{1, 25, 64})
	}
	// Report r(8) for tau=25, the operating point discussed in §2.3.
	b.ReportMetric(series[1].Y[8], "r_perceptual_d8_tau25")
}

func BenchmarkFigure4_KYMStats(b *testing.B) {
	st := getBench(b)
	var stats analysis.KYMStats
	var err error
	for i := 0; i < b.N; i++ {
		stats, err = analysis.ComputeKYMStats(st.res.Site)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.CategoryPercent["memes"], "memes_category_pct")
}

func BenchmarkFigure5_AnnotationCDFs(b *testing.B) {
	st := getBench(b)
	var cdfs analysis.AnnotationCDFs
	var err error
	for i := 0; i < b.N; i++ {
		cdfs, err = analysis.ComputeAnnotationCDFs(st.res)
		if err != nil {
			b.Fatal(err)
		}
	}
	if s, ok := cdfs.EntriesPerCluster["/pol/"]; ok && len(s.Y) > 0 {
		b.ReportMetric(s.Y[0], "frac_single_entry_pol")
	}
}

func BenchmarkFigure6_FrogDendrogram(b *testing.B) {
	st := getBench(b)
	var dend *analysis.DendrogramResult
	var err error
	for i := 0; i < b.N; i++ {
		dend, err = analysis.MemeFamilyDendrogram(st.res, st.met, []string{"frog", "pepe", "apu"})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(dend.Dendrogram.NumLeaves()), "frog_clusters")
}

func BenchmarkFigure7_ClusterGraph(b *testing.B) {
	st := getBench(b)
	cfg := analysis.DefaultClusterGraphConfig()
	cfg.Layout = false // layout timing is covered by the ablation below
	var purity float64
	for i := 0; i < b.N; i++ {
		g, err := analysis.BuildClusterGraph(st.res, st.met, cfg)
		if err != nil {
			b.Fatal(err)
		}
		ps := g.ComponentPurity()
		purity = 0
		for _, p := range ps {
			purity += p
		}
		if len(ps) > 0 {
			purity /= float64(len(ps))
		}
	}
	b.ReportMetric(purity, "mean_component_purity")
}

func BenchmarkFigure8_Temporal(b *testing.B) {
	st := getBench(b)
	var series map[string]analysis.Series
	for i := 0; i < b.N; i++ {
		series = analysis.TemporalSeries(st.res, analysis.AllMemes)
		_ = analysis.TemporalSeries(st.res, analysis.RacistMemes)
		_ = analysis.TemporalSeries(st.res, analysis.PoliticalMemes)
	}
	if s, ok := series["/pol/"]; ok {
		b.ReportMetric(mean(s.Y), "pol_daily_meme_pct")
	}
}

func BenchmarkFigure9_ScoreCDFs(b *testing.B) {
	st := getBench(b)
	var cdfs analysis.ScoreCDFs
	var err error
	for i := 0; i < b.N; i++ {
		cdfs, err = analysis.ComputeScoreCDFs(st.res)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cdfs.Means["Reddit"]["politics"], "reddit_politics_mean_score")
	b.ReportMetric(cdfs.Means["Reddit"]["non-politics"], "reddit_nonpolitics_mean_score")
}

func BenchmarkFigure10_AttributionToy(b *testing.B) {
	var toy *analysis.AttributionToy
	var err error
	for i := 0; i < b.N; i++ {
		toy, err = analysis.RunAttributionToy(7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(toy.Raw[1][0]*100, "pct_A_rooted_in_B")
}

func BenchmarkFigure11_RawInfluence(b *testing.B) {
	st := getBench(b)
	var inf *analysis.InfluenceResult
	var err error
	for i := 0; i < b.N; i++ {
		inf, err = analysis.EstimateInfluence(st.res, analysis.AllMemes, analysis.DefaultInfluenceConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(inf.Raw[int(dataset.Pol)][int(dataset.Reddit)]*100, "pct_reddit_events_from_pol")
	b.ReportMetric(inf.Raw[int(dataset.Pol)][int(dataset.Twitter)]*100, "pct_twitter_events_from_pol")
}

func BenchmarkFigure12_NormalizedInfluence(b *testing.B) {
	st := getBench(b)
	var inf *analysis.InfluenceResult
	var err error
	for i := 0; i < b.N; i++ {
		inf, err = analysis.EstimateInfluence(st.res, analysis.AllMemes, analysis.DefaultInfluenceConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(inf.TotalExternal[int(dataset.TheDonald)]*100, "ext_pct_thedonald")
	b.ReportMetric(inf.TotalExternal[int(dataset.Pol)]*100, "ext_pct_pol")
}

func BenchmarkFigure13_RacistInfluence(b *testing.B) {
	benchComparison(b, analysis.RacistMemes, analysis.NonRacistMemes, false)
}

func BenchmarkFigure14_PoliticalInfluence(b *testing.B) {
	benchComparison(b, analysis.PoliticalMemes, analysis.NonPoliticalMemes, false)
}

func BenchmarkFigure15_RacistNormalized(b *testing.B) {
	benchComparison(b, analysis.RacistMemes, analysis.NonRacistMemes, true)
}

func BenchmarkFigure16_PoliticalNormalized(b *testing.B) {
	benchComparison(b, analysis.PoliticalMemes, analysis.NonPoliticalMemes, true)
}

func benchComparison(b *testing.B, group, complement analysis.MemeGroup, normalized bool) {
	st := getBench(b)
	cfg := analysis.DefaultInfluenceConfig()
	var cmp *analysis.GroupComparison
	var err error
	for i := 0; i < b.N; i++ {
		cmp, err = analysis.CompareGroups(st.res, group, complement, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	pol := int(dataset.Pol)
	if normalized {
		b.ReportMetric(cmp.Group.TotalExternal[pol]*100, "group_ext_pct_pol")
		b.ReportMetric(cmp.Complement.TotalExternal[pol]*100, "complement_ext_pct_pol")
	} else {
		b.ReportMetric(cmp.Group.Raw[pol][int(dataset.Reddit)]*100, "group_pct_reddit_from_pol")
		b.ReportMetric(cmp.Complement.Raw[pol][int(dataset.Reddit)]*100, "complement_pct_reddit_from_pol")
	}
	sig := 0
	for _, row := range cmp.Significant {
		for _, s := range row {
			if s {
				sig++
			}
		}
	}
	b.ReportMetric(float64(sig), "significant_cells")
}

func BenchmarkFigure17_ClusterFalsePositives(b *testing.B) {
	st := getBench(b)
	var rows []analysis.FalsePositiveRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = analysis.ClusterFalsePositives(st.ds, []int{6, 8, 10})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MeanFraction, fmt.Sprintf("mean_fp_eps%d", r.Eps))
	}
}

func BenchmarkFigure19_ScreenshotROC(b *testing.B) {
	var exp *screenshot.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		exp, err = screenshot.RunExperiment(screenshot.DefaultCorpusConfig(), screenshot.DefaultTrainConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(exp.Evaluation.AUC, "auc")
	b.ReportMetric(exp.Evaluation.Accuracy, "accuracy")
	b.ReportMetric(exp.Evaluation.F1, "f1")
}

func BenchmarkAppendixB_AnnotationQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pr, err := analysis.AnnotationQuality()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(pr.Kappa, "fleiss_kappa")
			b.ReportMetric(pr.MajorityAccuracy, "majority_accuracy")
		}
	}
}

// --- Performance and ablations ----------------------------------------------

// BenchmarkPipelineRun measures the full Steps 2-6 engine at one worker
// versus the machine's full worker pool; the ratio of the two is the
// parallel speedup tracked in the perf trajectory. Both variants produce
// bitwise-identical results (see pipeline's determinism test).
func BenchmarkPipelineRun(b *testing.B) {
	st := getBench(b)
	site, err := st.ds.Site(true)
	if err != nil {
		b.Fatal(err)
	}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			cfg := pipeline.DefaultConfig()
			cfg.Workers = workers
			var res *pipeline.Result
			for i := 0; i < b.N; i++ {
				res, err = pipeline.Run(st.ds, site, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Stats.ImagesPerSec(), "images_per_sec")
			b.ReportMetric(float64(len(res.Clusters)), "clusters")
		})
	}
}

// BenchmarkEngineAssociate measures the serve-path throughput in isolation:
// the Steps 2-5 index is built once outside the timed loop, then repeated
// post batches stream through Engine.Associate. images_per_sec here is the
// paper's §7 headline metric (~73 images/sec on two Titan Xp GPUs for
// Step 6), tracked separately from the build cost BenchmarkPipelineRun pays
// on every iteration. One sub-benchmark per registered index strategy makes
// this the serve-path shoot-out the CI perf trajectory records: every
// strategy returns bitwise-identical associations (see the engine and
// internal/index equivalence tests), so the deltas are pure cost.
func BenchmarkEngineAssociate(b *testing.B) {
	st := getBench(b)
	site, err := st.ds.Site(true)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	imagePosts := 0
	for i := range st.ds.Posts {
		if st.ds.Posts[i].HasImage {
			imagePosts++
		}
	}
	for _, strategy := range IndexStrategies() {
		b.Run(string(strategy), func(b *testing.B) {
			eng, err := NewEngine(ctx, st.ds, site, WithIndex(strategy))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Associate(ctx, st.ds.Posts); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(imagePosts)*float64(b.N)/secs, "images_per_sec")
			}
		})
	}
}

// BenchmarkEngineMatch measures single-hash lookup latency per strategy —
// the primitive a serving front-end pays per image — using the annotated
// medoids themselves as queries.
func BenchmarkEngineMatch(b *testing.B) {
	st := getBench(b)
	site, err := st.ds.Site(true)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, strategy := range IndexStrategies() {
		b.Run(string(strategy), func(b *testing.B) {
			eng, err := NewEngine(ctx, st.ds, site, WithIndex(strategy))
			if err != nil {
				b.Fatal(err)
			}
			var queries []Hash
			for _, c := range eng.Clusters() {
				if c.Annotated() {
					queries = append(queries, c.MedoidHash)
				}
			}
			if len(queries) == 0 {
				b.Skip("no annotated clusters")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.Match(ctx, queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineSnapshot measures the persistence path: Save cost, Load
// cost, and snapshot size — the price of skipping Steps 2-5 on restart.
func BenchmarkEngineSnapshot(b *testing.B) {
	st := getBench(b)
	site, err := st.ds.Site(true)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	eng, err := NewEngine(ctx, st.ds, site)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		b.Fatal(err)
	}
	snap := buf.Bytes()
	b.Run("save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			w.Grow(len(snap))
			if err := eng.Save(&w); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(snap)), "snapshot_bytes")
	})
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := LoadEngine(bytes.NewReader(snap), site); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// steadyStrategies are the index strategies whose sealed query path is
// allocation-free in steady state: both compile to the flat BK-tree array
// form and answer RadiusScratch from pooled scratch. CI pins their steady
// benchmarks to 0 allocs/op, the same contract PhashExtraction carries.
func steadyStrategies() []IndexStrategy { return []IndexStrategy{IndexBKTree, IndexSharded} }

// BenchmarkEngineAssociateSteady measures the serve path the way a resident
// server actually runs it: AssociateAppend into a recycled caller-owned
// buffer, after one warm-up pass has grown the buffer and filled the query
// scratch pool. The steady state must not allocate — allocs/op is the gated
// quantity, throughput is informational.
func BenchmarkEngineAssociateSteady(b *testing.B) {
	st := getBench(b)
	site, err := st.ds.Site(true)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	imagePosts := 0
	for i := range st.ds.Posts {
		if st.ds.Posts[i].HasImage {
			imagePosts++
		}
	}
	for _, strategy := range steadyStrategies() {
		b.Run(string(strategy), func(b *testing.B) {
			eng, err := NewEngine(ctx, st.ds, site, WithIndex(strategy))
			if err != nil {
				b.Fatal(err)
			}
			// Warm: grow the output buffer to capacity and seed the pool.
			out, err := eng.AssociateAppend(ctx, st.ds.Posts, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err = eng.AssociateAppend(ctx, st.ds.Posts, out[:0])
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(imagePosts)*float64(b.N)/secs, "images_per_sec")
			}
		})
	}
}

// BenchmarkEngineMatchSteady measures single-hash lookup in steady state:
// the sealed flat index answers from pooled scratch, so the per-lookup
// allocation count must be 0.
func BenchmarkEngineMatchSteady(b *testing.B) {
	st := getBench(b)
	site, err := st.ds.Site(true)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, strategy := range steadyStrategies() {
		b.Run(string(strategy), func(b *testing.B) {
			eng, err := NewEngine(ctx, st.ds, site, WithIndex(strategy))
			if err != nil {
				b.Fatal(err)
			}
			var queries []Hash
			for _, c := range eng.Clusters() {
				if c.Annotated() {
					queries = append(queries, c.MedoidHash)
				}
			}
			if len(queries) == 0 {
				b.Skip("no annotated clusters")
			}
			// Warm every query once: the pooled scratch grows to the
			// largest result set before counting, so one-time growth
			// never shows up as allocs/op.
			for _, q := range queries {
				if _, _, err := eng.Match(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.Match(ctx, queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineSnapshotLoad measures load-to-first-query per snapshot
// version from an on-disk file — the restart cost a serving box pays. v1
// streams varints and rebuilds the medoid index; v2 mmaps the flat layout
// and serves from the mapped bytes, so the index is loaded, not rebuilt.
func BenchmarkEngineSnapshotLoad(b *testing.B) {
	st := getBench(b)
	site, err := st.ds.Site(true)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	eng, err := NewEngine(ctx, st.ds, site)
	if err != nil {
		b.Fatal(err)
	}
	var query Hash
	found := false
	for _, c := range eng.Clusters() {
		if c.Annotated() {
			query, found = c.MedoidHash, true
			break
		}
	}
	if !found {
		b.Skip("no annotated clusters")
	}
	dir := b.TempDir()
	for _, v := range []struct {
		name    string
		version uint32
	}{{"v1", SnapshotV1}, {"v2", SnapshotV2}} {
		path := filepath.Join(dir, v.name+".snap")
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.SaveVersion(f, v.version); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		b.Run(v.name, func(b *testing.B) {
			// Drain garbage (and mapped snapshots awaiting finalizers) so
			// the loop measures the load, not a GC over the corpus heap.
			runtime.GC()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loaded, err := LoadEngineFile(path, site)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := loaded.Match(ctx, query); err != nil {
					b.Fatal(err)
				}
				if err := loaded.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPerf_AssociationThroughput measures the Step 6 association rate
// (images per second), the quantity the paper reports as ~73 images/sec on
// two Titan Xp GPUs (§7 Performance).
func BenchmarkPerf_AssociationThroughput(b *testing.B) {
	st := getBench(b)
	site, err := st.ds.Site(true)
	if err != nil {
		b.Fatal(err)
	}
	cfg := pipeline.DefaultConfig()
	imagePosts := 0
	for _, p := range st.ds.Posts {
		if p.HasImage {
			imagePosts++
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Run(st.ds, site, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(imagePosts), "images_per_op")
}

// BenchmarkAblation_IndexVsBrute compares the BK-tree/multi-index
// neighbourhood search against a brute-force scan, the design choice that
// replaces the paper's GPU pairwise engine.
func BenchmarkAblation_IndexVsBrute(b *testing.B) {
	st := getBench(b)
	hashes, _, _ := st.ds.FringeImageHashes()
	if len(hashes) == 0 {
		b.Skip("no fringe hashes")
	}
	query := hashes[0]
	b.Run("multiindex", func(b *testing.B) {
		mi := phash.NewMultiIndex()
		for i, h := range hashes {
			mi.Insert(h, int64(i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mi.Radius(query, 8)
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, h := range hashes {
				if phash.Distance(query, h) <= 8 {
					n++
				}
			}
			_ = n
		}
	})
}

// BenchmarkAblation_MetricWeights compares the full-mode weights against a
// perceptual-only metric by measuring Figure 7 component purity under each.
func BenchmarkAblation_MetricWeights(b *testing.B) {
	st := getBench(b)
	run := func(b *testing.B, m *distance.Metric) {
		cfg := analysis.DefaultClusterGraphConfig()
		cfg.Layout = false
		var purity float64
		for i := 0; i < b.N; i++ {
			g, err := analysis.BuildClusterGraph(st.res, m, cfg)
			if err != nil {
				b.Fatal(err)
			}
			ps := g.ComponentPurity()
			purity = 0
			for _, p := range ps {
				purity += p
			}
			if len(ps) > 0 {
				purity /= float64(len(ps))
			}
		}
		b.ReportMetric(purity, "mean_component_purity")
	}
	b.Run("full_mode", func(b *testing.B) { run(b, st.met) })
	b.Run("perceptual_only", func(b *testing.B) {
		m, err := distance.New(distance.WithFullModeWeights(distance.PartialModeWeights()))
		if err != nil {
			b.Fatal(err)
		}
		run(b, m)
	})
}

// BenchmarkAblation_GraphThreshold sweeps the Figure 7 edge threshold kappa.
func BenchmarkAblation_GraphThreshold(b *testing.B) {
	st := getBench(b)
	for _, kappa := range []float64{0.25, 0.45, 0.65} {
		b.Run(fmt.Sprintf("kappa_%0.2f", kappa), func(b *testing.B) {
			cfg := analysis.DefaultClusterGraphConfig()
			cfg.Kappa = kappa
			cfg.Layout = false
			var edges int
			for i := 0; i < b.N; i++ {
				g, err := analysis.BuildClusterGraph(st.res, st.met, cfg)
				if err != nil {
					b.Fatal(err)
				}
				edges = len(g.Edges)
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}

// BenchmarkAblation_HawkesKernel sweeps the exponential kernel decay rate
// used by the influence estimation.
func BenchmarkAblation_HawkesKernel(b *testing.B) {
	st := getBench(b)
	for _, omega := range []float64{0.5, 1.0, 2.0} {
		b.Run(fmt.Sprintf("omega_%0.1f", omega), func(b *testing.B) {
			cfg := analysis.DefaultInfluenceConfig()
			cfg.Omega = omega
			var inf *analysis.InfluenceResult
			var err error
			for i := 0; i < b.N; i++ {
				inf, err = analysis.EstimateInfluence(st.res, analysis.AllMemes, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(inf.TotalExternal[int(dataset.TheDonald)]*100, "ext_pct_thedonald")
		})
	}
}

// BenchmarkAblation_HashAlgorithms compares the DCT pHash used by the
// pipeline against the aHash and dHash alternatives, both in cost and in how
// far a low-strength variant drifts from its template (the robustness
// property the clustering threshold depends on).
func BenchmarkAblation_HashAlgorithms(b *testing.B) {
	base := imaging.Template(42)
	variant := imaging.Variant(base, 7, 0.25)
	for _, alg := range []phash.Algorithm{phash.DCT, phash.Average, phash.Difference} {
		b.Run(alg.String(), func(b *testing.B) {
			var hBase, hVar phash.Hash
			var err error
			for i := 0; i < b.N; i++ {
				hBase, err = phash.FromImageWith(base, alg)
				if err != nil {
					b.Fatal(err)
				}
				hVar, err = phash.FromImageWith(variant, alg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(phash.Distance(hBase, hVar)), "variant_distance_bits")
		})
	}
}

// BenchmarkDBSCAN measures the Steps 2-3 clustering in isolation over the
// corpus's distinct fringe hashes: the two-phase run (parallel
// eps-neighbourhood scan + serial expansion) at one worker versus the full
// pool. neighbour_points_per_sec is the phase-one throughput — the CPU
// analogue of the paper's GPU pairwise engine — and the labels are
// bitwise-identical at every worker count (see cluster's reference
// property test and fuzz target).
func BenchmarkDBSCAN(b *testing.B) {
	st := getBench(b)
	hashes, counts, _ := st.ds.FringeImageHashes()
	if len(hashes) == 0 {
		b.Skip("no fringe hashes")
	}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			cfg := cluster.DefaultDBSCANConfig()
			cfg.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			var res cluster.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = cluster.DBSCAN(hashes, counts, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Neighbourhoods.PointsPerSec(), "neighbour_points_per_sec")
			b.ReportMetric(float64(res.NumClusters), "clusters")
		})
	}
}

// BenchmarkPhashExtraction measures Step 1 hashing throughput. The steady
// state is allocation-free (pooled hasher scratch + pruned DCT); CI gates
// on allocs/op staying 0.
func BenchmarkPhashExtraction(b *testing.B) {
	tmpl := imaging.Template(1)
	if _, err := HashImage(tmpl); err != nil { // warm the hasher pool
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HashImage(tmpl); err != nil {
			b.Fatal(err)
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
