package memes

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"
)

// engineTestCorpus builds the small corpus and its filtered site once per
// test that needs them.
func engineTestCorpus(t *testing.T) (*Dataset, *AnnotationSite) {
	t.Helper()
	ds, err := GenerateDataset(SmallDatasetConfig())
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	return ds, site
}

// TestEngineResultMatchesRun asserts the acceptance criterion of the
// build/serve split: Engine.Result() is identical to the legacy one-shot Run
// for the same dataset and configuration, in every field except Stats (which
// is documented as the only field that varies between runs).
func TestEngineResultMatchesRun(t *testing.T) {
	ds, site := engineTestCorpus(t)
	legacy, err := Run(ds, site, DefaultPipelineConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	eng, err := NewEngine(context.Background(), ds, site)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res := eng.Result()
	if res == nil {
		t.Fatal("Engine.Result returned nil")
	}
	if !reflect.DeepEqual(res.Clusters, legacy.Clusters) {
		t.Error("Engine.Result Clusters diverge from Run")
	}
	if !reflect.DeepEqual(res.Associations, legacy.Associations) {
		t.Error("Engine.Result Associations diverge from Run")
	}
	if !reflect.DeepEqual(res.PerCommunity, legacy.PerCommunity) {
		t.Error("Engine.Result PerCommunity diverges from Run")
	}
	if !reflect.DeepEqual(res.Config, legacy.Config) {
		t.Error("Engine.Result Config diverges from Run")
	}
	if res.Dataset != ds || res.Site != site {
		t.Error("Engine.Result does not reference the build inputs")
	}
	// Result is materialised once and cached.
	if eng.Result() != res {
		t.Error("Engine.Result not cached across calls")
	}
}

// TestEngineAssociateHeldOutBatch associates a batch that is a strict subset
// of the dataset and checks it returns exactly the associations Run produced
// for those posts (with PostIndex remapped to the batch).
func TestEngineAssociateHeldOutBatch(t *testing.T) {
	ds, site := engineTestCorpus(t)
	eng, err := NewEngine(context.Background(), ds, site)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res := eng.Result()

	// Hold out every third post.
	var batch []Post
	batchIndex := map[int]int{} // dataset post index -> batch index
	for i := 0; i < len(ds.Posts); i += 3 {
		batchIndex[i] = len(batch)
		batch = append(batch, ds.Posts[i])
	}
	got, err := eng.Associate(context.Background(), batch)
	if err != nil {
		t.Fatalf("Associate: %v", err)
	}
	var want []Association
	for _, a := range res.Associations {
		if bi, ok := batchIndex[a.PostIndex]; ok {
			want = append(want, Association{PostIndex: bi, ClusterID: a.ClusterID, Distance: a.Distance})
		}
	}
	if len(want) == 0 {
		t.Fatal("held-out batch has no expected associations; corpus too small")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("held-out batch associations diverge: got %d, want %d", len(got), len(want))
	}
}

// TestEngineAssociateNewPosts feeds Associate posts that were never part of
// the build dataset; they must be matched through the resident index exactly
// as Match would.
func TestEngineAssociateNewPosts(t *testing.T) {
	ds, site := engineTestCorpus(t)
	eng, err := NewEngine(context.Background(), ds, site)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	clusters := eng.Clusters()
	var posts []Post
	var wantCluster []int
	for _, c := range clusters {
		if !c.Annotated() {
			continue
		}
		m, ok, err := eng.Match(context.Background(), c.MedoidHash)
		if err != nil || !ok {
			t.Fatalf("Match(medoid of %d) = (%v, %v)", c.ID, ok, err)
		}
		posts = append(posts, Post{ID: int64(1000000 + c.ID), Community: Twitter, HasImage: true, Hash: uint64(c.MedoidHash)})
		wantCluster = append(wantCluster, m.ClusterID)
	}
	if len(posts) == 0 {
		t.Fatal("no annotated clusters to probe")
	}
	assoc, err := eng.Associate(context.Background(), posts)
	if err != nil {
		t.Fatalf("Associate: %v", err)
	}
	if len(assoc) != len(posts) {
		t.Fatalf("associated %d of %d synthetic posts", len(assoc), len(posts))
	}
	for i, a := range assoc {
		if a.PostIndex != i || a.ClusterID != wantCluster[i] {
			t.Fatalf("synthetic post %d associated to cluster %d, Match says %d", i, a.ClusterID, wantCluster[i])
		}
	}
}

// TestEngineConcurrentQueries hammers one Engine from many goroutines (run
// under -race in CI) and checks every concurrent result is identical to the
// sequential one.
func TestEngineConcurrentQueries(t *testing.T) {
	ds, site := engineTestCorpus(t)
	eng, err := NewEngine(context.Background(), ds, site)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	batch := ds.Posts[:len(ds.Posts)/2]
	wantAssoc, err := eng.Associate(context.Background(), batch)
	if err != nil {
		t.Fatalf("sequential Associate: %v", err)
	}
	legacy, err := Run(ds, site, DefaultPipelineConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			got, err := eng.Associate(ctx, batch)
			if err != nil {
				errc <- err
				return
			}
			if !reflect.DeepEqual(got, wantAssoc) {
				errc <- errors.New("concurrent Associate diverges from sequential result")
				return
			}
			for _, a := range wantAssoc[:min(20, len(wantAssoc))] {
				m, ok, err := eng.Match(ctx, batch[a.PostIndex].PHash())
				if err != nil || !ok || m.ClusterID != a.ClusterID || m.Distance != a.Distance {
					errc <- errors.New("concurrent Match diverges from Associate")
					return
				}
			}
			// Result must be safe to materialise concurrently, and identical
			// to the legacy sequential Run.
			res := eng.Result()
			if !reflect.DeepEqual(res.Associations, legacy.Associations) {
				errc <- errors.New("concurrent Result diverges from legacy Run")
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// waitForGoroutines waits for the goroutine count to drop back to the
// baseline, failing the test if it does not within the deadline.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEngineCancelMidBuild cancels the context from the very first progress
// event (the cluster stage start) and asserts NewEngine returns
// context.Canceled promptly without leaking goroutines.
func TestEngineCancelMidBuild(t *testing.T) {
	ds, site := engineTestCorpus(t)
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	_, err := NewEngine(ctx, ds, site, WithProgress(func(ev StageEvent) {
		if !ev.Done {
			cancel() // cancel as the first stage begins: mid-build
		}
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("NewEngine after mid-build cancel: %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation not prompt: build returned after %v", elapsed)
	}
	waitForGoroutines(t, baseline)
}

// TestEngineCancelMidAssociate cancels while a large batch (the corpus
// replicated many times over) streams through Associate and asserts a prompt
// context.Canceled return with no goroutine leak.
func TestEngineCancelMidAssociate(t *testing.T) {
	ds, site := engineTestCorpus(t)
	eng, err := NewEngine(context.Background(), ds, site)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// A large synthetic batch: ~40x the corpus, far more than can be
	// associated in the few milliseconds before cancellation lands.
	big := make([]Post, 0, 40*len(ds.Posts))
	for r := 0; r < 40; r++ {
		big = append(big, ds.Posts...)
	}
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	out, err := eng.Associate(ctx, big)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Associate after mid-run cancel = (%d assocs, %v), want context.Canceled", len(out), err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation not prompt: Associate returned after %v", elapsed)
	}
	waitForGoroutines(t, baseline)

	// An already-cancelled context fails Match and MatchImage too.
	if _, _, err := eng.Match(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Match on cancelled ctx: %v", err)
	}
	// The engine stays fully usable after a cancelled query.
	if _, err := eng.Associate(context.Background(), ds.Posts[:100]); err != nil {
		t.Fatalf("Associate after cancellation: %v", err)
	}
}

// TestEngineOptions exercises the functional options: field-level options
// must land in the build config, and invalid values must be rejected.
func TestEngineOptions(t *testing.T) {
	ds, site := engineTestCorpus(t)
	ctx := context.Background()

	eng, err := NewEngine(ctx, ds, site,
		WithWorkers(2), WithEps(6), WithMinPts(4),
		WithAnnotationThreshold(7), WithAssociationThreshold(6))
	if err != nil {
		t.Fatalf("NewEngine with options: %v", err)
	}
	cfg := eng.Result().Config
	if cfg.Workers != 2 || cfg.Clustering.Eps != 6 || cfg.Clustering.MinPts != 4 ||
		cfg.AnnotationThreshold != 7 || cfg.AssociationThreshold != 6 {
		t.Fatalf("options not applied: %+v", cfg)
	}

	// WithConfig replaces the whole configuration; an equivalent explicit
	// config and the option-built engine must agree exactly.
	eng2, err := NewEngine(ctx, ds, site, WithConfig(cfg))
	if err != nil {
		t.Fatalf("NewEngine(WithConfig): %v", err)
	}
	if !reflect.DeepEqual(eng2.Result().Associations, eng.Result().Associations) {
		t.Fatal("WithConfig engine diverges from option-built engine")
	}

	for _, bad := range [][]Option{
		{WithEps(-1)},
		{WithWorkers(-2)},
		{WithAnnotationThreshold(1000)},
		{WithAssociationThreshold(-1)},
	} {
		if _, err := NewEngine(ctx, ds, site, bad...); err == nil {
			t.Fatalf("invalid option set %d accepted", len(bad))
		}
	}
	if _, err := NewEngine(ctx, nil, nil); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

// TestEngineProgressDerivesStats asserts the stage-event stream and the
// RunStats agree: every stage appears as start-then-done, in order, and the
// completion events carry exactly what the stats record.
func TestEngineProgressDerivesStats(t *testing.T) {
	ds, site := engineTestCorpus(t)
	var mu sync.Mutex
	var events []StageEvent
	eng, err := NewEngine(context.Background(), ds, site, WithProgress(func(ev StageEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res := eng.Result() // adds the associate stage events

	var done []StageEvent
	for i, ev := range events {
		if ev.Done {
			done = append(done, ev)
			continue
		}
		if i+1 >= len(events) || !events[i+1].Done || events[i+1].Stage != ev.Stage {
			t.Fatalf("stage %q start not followed by its completion", ev.Stage)
		}
	}
	if len(done) != len(res.Stats.Stages) {
		t.Fatalf("%d completion events vs %d stats stages", len(done), len(res.Stats.Stages))
	}
	for i, ev := range done {
		st := res.Stats.Stages[i]
		if st.Name != ev.Stage || st.Items != ev.Items || st.Duration != ev.Duration {
			t.Fatalf("stats stage %d (%+v) does not match event %+v", i, st, ev)
		}
	}
	wantOrder := []string{"cluster", "neighbours", "annotate", "associate"}
	for i, name := range wantOrder {
		if done[i].Stage != name {
			t.Fatalf("stage order %v, want %v", done, wantOrder)
		}
	}
	// BuildStats covers the offline phase only.
	bs := eng.BuildStats()
	if len(bs.Stages) != 3 || bs.Stages[0].Name != "cluster" ||
		bs.Stages[1].Name != "neighbours" || bs.Stages[2].Name != "annotate" {
		t.Fatalf("BuildStats stages = %+v", bs.Stages)
	}
	if bs.Total <= 0 || bs.Clusters != len(eng.Clusters()) {
		t.Fatalf("BuildStats totals implausible: %+v", bs)
	}
}

// TestEngineIndexStrategiesIdentical is the tentpole acceptance criterion:
// every registered index strategy, at several worker counts, serves
// bitwise-identical Associate/Match/Result output.
func TestEngineIndexStrategiesIdentical(t *testing.T) {
	ds, site := engineTestCorpus(t)
	ctx := context.Background()

	if len(IndexStrategies()) < 3 {
		t.Fatalf("expected >= 3 registered index strategies, got %v", IndexStrategies())
	}

	type outputs struct {
		assoc   []Association
		matches []Match
		res     *Result
	}
	capture := func(eng *Engine) outputs {
		t.Helper()
		assoc, err := eng.Associate(ctx, ds.Posts)
		if err != nil {
			t.Fatalf("Associate: %v", err)
		}
		var ms []Match
		for _, c := range eng.Clusters() {
			m, ok, err := eng.Match(ctx, c.MedoidHash)
			if err != nil {
				t.Fatalf("Match: %v", err)
			}
			if ok {
				ms = append(ms, m)
			}
		}
		return outputs{assoc: assoc, matches: ms, res: eng.Result()}
	}

	base, err := NewEngine(ctx, ds, site) // default strategy, default workers
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	want := capture(base)
	if len(want.assoc) == 0 || len(want.matches) == 0 {
		t.Fatal("baseline engine produced no output; corpus too small")
	}

	for _, strategy := range IndexStrategies() {
		for _, workers := range []int{1, 4} {
			eng, err := NewEngine(ctx, ds, site, WithIndex(strategy), WithWorkers(workers))
			if err != nil {
				t.Fatalf("NewEngine(%s, w=%d): %v", strategy, workers, err)
			}
			got := capture(eng)
			if !reflect.DeepEqual(got.assoc, want.assoc) {
				t.Errorf("%s/w%d: Associate diverges from default engine", strategy, workers)
			}
			if !reflect.DeepEqual(got.matches, want.matches) {
				t.Errorf("%s/w%d: Match diverges from default engine", strategy, workers)
			}
			if !reflect.DeepEqual(got.res.Associations, want.res.Associations) ||
				!reflect.DeepEqual(got.res.Clusters, want.res.Clusters) ||
				!reflect.DeepEqual(got.res.PerCommunity, want.res.PerCommunity) {
				t.Errorf("%s/w%d: Result diverges from default engine", strategy, workers)
			}
			if got.res.Config.Index != strategy {
				t.Errorf("%s/w%d: config echo carries %q", strategy, workers, got.res.Config.Index)
			}
		}
	}

	// Unknown strategies are rejected at build time.
	if _, err := NewEngine(ctx, ds, site, WithIndex("bogus")); err == nil {
		t.Fatal("bogus index strategy accepted")
	}
}

// TestEngineSaveLoad covers the snapshot workflow end to end at the public
// surface: Save → LoadEngine serves identical output with zero Steps 2-5
// work (only the load stage appears in the event stream), and Result works
// once a dataset is bound.
func TestEngineSaveLoad(t *testing.T) {
	ds, site := engineTestCorpus(t)
	ctx := context.Background()
	eng, err := NewEngine(ctx, ds, site)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	snap := buf.Bytes()

	var events []StageEvent
	loaded, err := LoadEngine(bytes.NewReader(snap), site,
		WithDataset(ds),
		WithProgress(func(ev StageEvent) { events = append(events, ev) }))
	if err != nil {
		t.Fatalf("LoadEngine: %v", err)
	}

	// Zero Steps 2-5 work: the event stream is exactly load-start,
	// load-done, and the stats agree.
	if len(events) != 2 || events[0].Stage != "load" || events[0].Done ||
		events[1].Stage != "load" || !events[1].Done {
		t.Fatalf("load event stream = %+v, want load start+done only", events)
	}
	bs := loaded.BuildStats()
	if len(bs.Stages) != 1 || bs.Stages[0].Name != "load" {
		t.Fatalf("loaded BuildStats stages = %+v", bs.Stages)
	}
	for _, forbidden := range []string{"cluster", "neighbours", "annotate"} {
		if _, ok := bs.Stage(forbidden); ok {
			t.Fatalf("loaded engine ran build stage %q", forbidden)
		}
	}

	// Identical serving behaviour.
	wantAssoc, err := eng.Associate(ctx, ds.Posts)
	if err != nil {
		t.Fatalf("Associate: %v", err)
	}
	gotAssoc, err := loaded.Associate(ctx, ds.Posts)
	if err != nil {
		t.Fatalf("loaded Associate: %v", err)
	}
	if !reflect.DeepEqual(gotAssoc, wantAssoc) {
		t.Fatal("loaded engine's Associate diverges from the original")
	}
	if !reflect.DeepEqual(loaded.Clusters(), eng.Clusters()) {
		t.Fatal("loaded engine's Clusters diverge from the original")
	}
	if !reflect.DeepEqual(loaded.Communities(), eng.Communities()) {
		t.Fatal("loaded engine's Communities diverge from the original")
	}

	// Result materialises identically (Stats excepted, as documented).
	want, got := eng.Result(), loaded.Result()
	if !reflect.DeepEqual(got.Associations, want.Associations) ||
		!reflect.DeepEqual(got.Clusters, want.Clusters) ||
		!reflect.DeepEqual(got.PerCommunity, want.PerCommunity) ||
		!reflect.DeepEqual(got.Config, want.Config) {
		t.Fatal("loaded engine's Result diverges from the original")
	}

	// Load-time strategy override: same results under every strategy.
	for _, strategy := range IndexStrategies() {
		alt, err := LoadEngine(bytes.NewReader(snap), site, WithIndex(strategy))
		if err != nil {
			t.Fatalf("LoadEngine(%s): %v", strategy, err)
		}
		altAssoc, err := alt.Associate(ctx, ds.Posts)
		if err != nil {
			t.Fatalf("Associate(%s): %v", strategy, err)
		}
		if !reflect.DeepEqual(altAssoc, wantAssoc) {
			t.Fatalf("strategy %s serves different associations from a snapshot", strategy)
		}
	}

	// A dataset-less load serves queries but cannot materialise Result.
	bare, err := LoadEngine(bytes.NewReader(snap), site)
	if err != nil {
		t.Fatalf("LoadEngine without dataset: %v", err)
	}
	if _, _, err := bare.Match(ctx, eng.Clusters()[0].MedoidHash); err != nil {
		t.Fatalf("dataset-less Match: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Result on a dataset-less engine should panic")
			}
		}()
		bare.Result()
	}()

	// WithDataset is a load-time option only.
	if _, err := NewEngine(ctx, ds, site, WithDataset(ds)); err == nil {
		t.Fatal("NewEngine accepted WithDataset")
	}
}

// TestEngineCommunities checks the fixed-order community listing used for
// reproducible output.
func TestEngineCommunities(t *testing.T) {
	ds, site := engineTestCorpus(t)
	eng, err := NewEngine(context.Background(), ds, site)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	want := []Community{Pol, Gab, TheDonald}
	if got := eng.Communities(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Engine.Communities() = %v, want %v", got, want)
	}
	if got := eng.Result().Communities(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Result.Communities() = %v, want %v", got, want)
	}
}
