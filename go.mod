module github.com/memes-pipeline/memes

go 1.24
