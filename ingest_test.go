package memes

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/phash"
	"github.com/memes-pipeline/memes/internal/pipeline"
)

// carveLibCorpus splits the shared test corpus into a base dataset and a
// live tail for ingest traffic.
func carveLibCorpus(t *testing.T, live int) (*Dataset, *Dataset, []Post, *AnnotationSite) {
	t.Helper()
	full, site := engineTestCorpus(t)
	if len(full.Posts) <= live {
		t.Fatalf("corpus too small: %d posts", len(full.Posts))
	}
	cut := len(full.Posts) - live
	base := *full
	base.Posts = full.Posts[:cut:cut]
	return full, &base, full.Posts[cut:], site
}

// engineBytes serialises an engine for bitwise comparison.
func engineBytes(t *testing.T, e *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

// TestLoadEngineWithDeltas pins the restart contract of the streaming
// ingest path at the library surface: a base snapshot plus the delta
// journal loads into an engine bitwise-identical to a from-scratch build
// over the union corpus.
func TestLoadEngineWithDeltas(t *testing.T) {
	full, base, live, site := carveLibCorpus(t, 90)
	ctx := context.Background()

	ref, err := NewEngine(ctx, full, site)
	if err != nil {
		t.Fatalf("union NewEngine: %v", err)
	}
	want := engineBytes(t, ref)

	baseEng, err := NewEngine(ctx, base, site)
	if err != nil {
		t.Fatalf("base NewEngine: %v", err)
	}
	snap := engineBytes(t, baseEng)

	// Journal the live tail as two frames, the second in its own "segment"
	// reader, plus a stale overlapping frame as a crashed compaction would
	// leave behind.
	half := len(live) / 2
	var seg1, seg2 bytes.Buffer
	if err := pipeline.SaveDelta(&seg1, &pipeline.Delta{FromSeq: 0, Posts: live[:half]}); err != nil {
		t.Fatalf("SaveDelta: %v", err)
	}
	if err := pipeline.SaveDelta(&seg2, &pipeline.Delta{FromSeq: uint64(half), Posts: live[half:]}); err != nil {
		t.Fatalf("SaveDelta: %v", err)
	}
	if err := pipeline.SaveDelta(&seg2, &pipeline.Delta{FromSeq: 0, Posts: live[:half]}); err != nil {
		t.Fatalf("SaveDelta (overlap): %v", err)
	}

	loaded, err := LoadEngine(bytes.NewReader(snap), site,
		WithDataset(base), WithDeltas(&seg1, &seg2))
	if err != nil {
		t.Fatalf("LoadEngine with deltas: %v", err)
	}
	if got := engineBytes(t, loaded); !bytes.Equal(got, want) {
		t.Error("snapshot+deltas engine diverges from a from-scratch build over the union corpus")
	}

	// An empty journal loads the base snapshot unchanged.
	plain, err := LoadEngine(bytes.NewReader(snap), site, WithDataset(base), WithDeltas())
	if err != nil {
		t.Fatalf("LoadEngine without frames: %v", err)
	}
	if got := engineBytes(t, plain); !bytes.Equal(got, snap) {
		t.Error("empty delta journal changed the loaded engine")
	}
}

// TestWithDeltasValidation pins the option's scoping rules.
func TestWithDeltasValidation(t *testing.T) {
	full, base, live, site := carveLibCorpus(t, 10)
	ctx := context.Background()
	if _, err := NewEngine(ctx, full, site, WithDeltas(&bytes.Buffer{})); err == nil {
		t.Error("NewEngine accepted WithDeltas")
	}
	baseEng, err := NewEngine(ctx, base, site)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	snap := engineBytes(t, baseEng)
	var seg bytes.Buffer
	if err := pipeline.SaveDelta(&seg, &pipeline.Delta{FromSeq: 0, Posts: live}); err != nil {
		t.Fatalf("SaveDelta: %v", err)
	}
	if _, err := LoadEngine(bytes.NewReader(snap), site, WithDeltas(&seg)); err == nil {
		t.Error("LoadEngine accepted WithDeltas without WithDataset")
	}
}

// plantLibNovelEntry appends a synthetic KYM entry whose gallery hash is far
// from the whole corpus; see the internal/ingest test of the same shape.
func plantLibNovelEntry(t *testing.T, ds *Dataset) Hash {
	t.Helper()
	var existing []Hash
	for i := range ds.Posts {
		if ds.Posts[i].HasImage {
			existing = append(existing, ds.Posts[i].PHash())
		}
	}
	for _, e := range ds.KYMEntries {
		for _, g := range e.Gallery {
			existing = append(existing, Hash(g))
		}
	}
	for k := uint64(1); k < 1<<20; k++ {
		h := Hash(k * 0x9E3779B97F4A7C15)
		far := true
		for _, x := range existing {
			if phash.Distance(h, x) <= 16 {
				far = false
				break
			}
		}
		if far {
			ds.KYMEntries = append(ds.KYMEntries, dataset.KYMEntry{
				Name:            "synthetic-novel-meme",
				Title:           "Synthetic Novel Meme",
				Category:        "memes",
				Gallery:         []uint64{uint64(h)},
				ScreenshotFlags: []bool{false},
			})
			return h
		}
	}
	t.Fatal("no hash is far from the whole corpus")
	return 0
}

// TestIngestorHotSwapZeroDrops drives the full streaming loop through the
// public API under concurrent query load: unmatched posts trigger the
// background re-cluster, the fresh engine lands via HotEngine.Swap, the new
// posts become servable, and not a single concurrent request fails or loses
// an existing match while the swap happens.
func TestIngestorHotSwapZeroDrops(t *testing.T) {
	ds, err := GenerateDataset(SmallDatasetConfig())
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	novel := plantLibNovelEntry(t, ds)
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	ctx := context.Background()
	eng, err := NewEngine(ctx, ds, site)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	hot := NewHotEngine(eng)
	g, err := NewIngestor(hot, ds, site, IngestConfig{Threshold: 5})
	if err != nil {
		t.Fatalf("NewIngestor: %v", err)
	}
	defer g.Close()

	// A medoid of the base build must keep matching through every swap.
	var resident Hash
	for i := range eng.Clusters() {
		if eng.Clusters()[i].Annotated() {
			resident = eng.Clusters()[i].MedoidHash
			break
		}
	}
	if _, ok, err := hot.Match(ctx, resident); err != nil || !ok {
		t.Fatalf("resident medoid does not match before ingest (ok=%v, err=%v)", ok, err)
	}
	if _, ok, err := hot.Match(ctx, novel); err != nil || ok {
		t.Fatalf("novel hash matches before ingest (ok=%v, err=%v)", ok, err)
	}

	// Hammer the serving path while the ingest-triggered rebuild swaps.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failures, requests int64
	var failMu sync.Mutex
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, ok, err := hot.Match(ctx, resident)
				failMu.Lock()
				requests++
				if err != nil || !ok {
					failures++
				}
				failMu.Unlock()
			}
		}()
	}

	posts := make([]Post, 5)
	for i := range posts {
		posts[i] = Post{
			ID:        9_000_000 + int64(i),
			Community: dataset.Pol,
			Timestamp: time.Unix(0, 0).UTC(),
			HasImage:  true,
			Hash:      uint64(novel),
			TruthMeme: -1,
			TruthRoot: -1,
		}
	}
	r, err := g.Ingest(ctx, posts)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if !r.Triggered {
		t.Fatalf("receipt = %+v, want a triggered re-cluster", r)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, ok, err := hot.Match(ctx, novel); err == nil && ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("novel hash never became servable; stats %+v", g.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Keep the hammer running past the swap until it has real volume, so
	// the zero-failure assertion means something even on a fast rebuild.
	for {
		failMu.Lock()
		n := requests
		failMu.Unlock()
		if n >= 500 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hammer never accumulated volume")
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if failures != 0 {
		t.Errorf("%d of %d concurrent requests failed during the ingest-triggered swap", failures, requests)
	}
	if requests == 0 {
		t.Error("hammer made no requests")
	}
	if gen := hot.Generation(); gen < 2 {
		t.Errorf("generation = %d, want a swap", gen)
	}
}
