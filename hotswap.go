package memes

import (
	"context"
	"image"
	"sync/atomic"

	"github.com/memes-pipeline/memes/internal/faults"
)

// HotEngine is an atomic handle over a resident *Engine that lets a serving
// process replace the artifact underneath live traffic — the operational
// move the paper's regime implies: the annotated-cluster snapshot is rebuilt
// offline on a schedule while the serving fleet keeps answering queries, so
// a fresh build must take over without dropping a single request.
//
// The swap discipline is pin-per-request: callers obtain the current engine
// once with Pin or Engine (the query pass-throughs pin internally) and use
// that pointer for the whole request, so every request observes exactly one
// engine generation even while Swap runs concurrently. Engines are immutable
// after construction, so the old generation keeps serving its in-flight
// requests to completion while new requests land on the replacement; nothing
// blocks, nothing is torn down underneath a reader.
//
// The engine pointer and its generation number live in one atomically
// swapped pair, so Pin always returns a consistent (engine, generation)
// view: a reader can never see the new engine with the old generation or
// vice versa.
//
// The zero HotEngine is not usable; construct with NewHotEngine.
type HotEngine struct {
	p atomic.Pointer[engineGen]
}

// engineGen is the atomically published (engine, generation) pair.
type engineGen struct {
	eng *Engine
	gen uint64
}

// NewHotEngine returns a handle serving queries from eng (generation 1).
func NewHotEngine(eng *Engine) *HotEngine {
	h := &HotEngine{}
	h.p.Store(&engineGen{eng: eng, gen: 1})
	return h
}

// Pin atomically snapshots the current engine and its generation. The
// returned engine stays valid — and keeps serving identical results — for as
// long as the caller holds it, even across any number of concurrent Swaps;
// use one pinned engine per request so the request never straddles
// generations.
func (h *HotEngine) Pin() (*Engine, uint64) {
	s := h.p.Load()
	return s.eng, s.gen
}

// Engine pins the current engine; see Pin.
func (h *HotEngine) Engine() *Engine { return h.p.Load().eng }

// Swap atomically replaces the served engine, increments the generation,
// and returns the previous engine. Requests that pinned the old engine
// finish on it; requests that pin after Swap returns see only the
// replacement. The old engine is returned (not closed or invalidated) so
// callers can keep it, compare against it, or let it be collected once its
// in-flight requests drain.
func (h *HotEngine) Swap(eng *Engine) (old *Engine) {
	// Crash site for the chaos harness: dying here models a process lost
	// after the rebuild finished but before the new generation published.
	_ = faults.Inject("engine.swap")
	for {
		cur := h.p.Load()
		if h.p.CompareAndSwap(cur, &engineGen{eng: eng, gen: cur.gen + 1}) {
			return cur.eng
		}
	}
}

// Generation returns the swap count: 1 for the engine NewHotEngine was
// given, incremented by every Swap. Because the pair is published
// atomically, two Pin calls returning the same generation are guaranteed to
// have returned the same engine.
func (h *HotEngine) Generation() uint64 { return h.p.Load().gen }

// Associate pins the current engine for the whole batch and runs
// Engine.Associate on it.
func (h *HotEngine) Associate(ctx context.Context, posts []Post) ([]Association, error) {
	return h.Engine().Associate(ctx, posts)
}

// Match pins the current engine and runs Engine.Match on it.
func (h *HotEngine) Match(ctx context.Context, hash Hash) (Match, bool, error) {
	return h.Engine().Match(ctx, hash)
}

// MatchImage pins the current engine and runs Engine.MatchImage on it.
func (h *HotEngine) MatchImage(ctx context.Context, img image.Image) (Match, bool, error) {
	return h.Engine().MatchImage(ctx, img)
}
