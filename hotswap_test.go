package memes

import (
	"context"
	"sync"
	"testing"
)

// TestHotEngineSwap pins the hot-swap contract: Swap atomically replaces the
// served engine, returns the old one intact, bumps the generation, and
// readers that pinned the old generation keep getting identical answers.
func TestHotEngineSwap(t *testing.T) {
	ds, site := engineTestCorpus(t)
	ctx := context.Background()
	a, err := NewEngine(ctx, ds, site)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	b, err := NewEngine(ctx, ds, site, WithIndex(IndexSharded))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	hot := NewHotEngine(a)
	if hot.Engine() != a {
		t.Fatal("Engine() does not return the constructed engine")
	}
	if g := hot.Generation(); g != 1 {
		t.Fatalf("initial generation = %d, want 1", g)
	}
	if eng, gen := hot.Pin(); eng != a || gen != 1 {
		t.Fatalf("Pin = (%p, %d), want (%p, 1)", eng, gen, a)
	}
	if old := hot.Swap(b); old != a {
		t.Fatal("Swap did not return the previous engine")
	}
	if eng, gen := hot.Pin(); eng != b || gen != 2 {
		t.Fatalf("after Swap: Pin = (%p, %d), want (%p, 2)", eng, gen, b)
	}

	// The returned old engine is untouched: it still answers queries, and —
	// both engines being built from the same corpus — identically to the
	// replacement.
	for i := range a.Clusters() {
		h := a.Clusters()[i].MedoidHash
		om, ook, err := a.Match(ctx, h)
		if err != nil {
			t.Fatalf("old engine Match: %v", err)
		}
		nm, nok, err := hot.Match(ctx, h)
		if err != nil {
			t.Fatalf("hot Match: %v", err)
		}
		if om != nm || ook != nok {
			t.Fatalf("cluster %d: old (%+v,%v) vs hot (%+v,%v)", i, om, ook, nm, nok)
		}
	}
}

// TestHotEngineConcurrentSwaps hammers queries from many goroutines while
// the engine is swapped underneath them: every query must succeed and return
// the same result regardless of which generation served it (the engines are
// equivalent by construction), which is exactly the zero-dropped-requests
// property the serving layer builds on.
func TestHotEngineConcurrentSwaps(t *testing.T) {
	ds, site := engineTestCorpus(t)
	ctx := context.Background()
	a, err := NewEngine(ctx, ds, site)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	b, err := NewEngine(ctx, ds, site, WithIndex(IndexMultiIndex))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	want, err := a.Associate(ctx, ds.Posts)
	if err != nil {
		t.Fatalf("Associate: %v", err)
	}

	hot := NewHotEngine(a)
	const (
		readers = 8
		iters   = 20
		swaps   = 50
	)
	// Swaps alternate a (odd generations) and b (even generations), so a
	// pinned (engine, generation) pair is consistent iff the parity lines
	// up — the observable proof the pair is published atomically.
	engines := [2]*Engine{a, b}
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				eng, gen := hot.Pin()
				if eng != engines[(gen+1)%2] {
					t.Errorf("torn pin: generation %d paired with the wrong engine", gen)
					return
				}
				got, err := hot.Associate(ctx, ds.Posts)
				if err != nil {
					errs <- err
					return
				}
				if len(got) != len(want) {
					t.Errorf("mid-swap Associate returned %d associations, want %d", len(got), len(want))
					return
				}
				for j := range got {
					if got[j] != want[j] {
						t.Errorf("association %d diverged mid-swap: %+v != %+v", j, got[j], want[j])
						return
					}
				}
			}
		}()
	}
	for i := 0; i < swaps; i++ {
		hot.Swap(engines[(i+1)%2])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("query failed during swaps: %v", err)
	}
	if g := hot.Generation(); g != 1+swaps {
		t.Fatalf("generation = %d after %d swaps, want %d", g, swaps, 1+swaps)
	}
}
