package memes

import (
	"context"
	"time"

	"github.com/memes-pipeline/memes/internal/ingest"
	"github.com/memes-pipeline/memes/internal/phash"
	"github.com/memes-pipeline/memes/internal/pipeline"
)

// Ingestor absorbs new posts into a running serving process: posts already
// matching an annotated medoid are servable immediately, the rest park in a
// bounded pending pool, and crossing a threshold triggers an incremental
// re-cluster of only the affected communities, published through
// HotEngine.Swap with zero dropped requests. Accepted batches are journaled
// as delta snapshots (when a delta dir is configured) and folded into a
// compacted base snapshot in the background. See NewIngestor.
type Ingestor = ingest.Ingestor

// IngestReceipt acknowledges one accepted ingest batch.
type IngestReceipt = ingest.Receipt

// IngestStats is a point-in-time snapshot of an Ingestor's counters.
type IngestStats = ingest.Stats

// ErrIngestPoolFull rejects an ingest batch that would overflow the pending
// pool — the backpressure signal that re-clustering is not keeping up.
var ErrIngestPoolFull = ingest.ErrPoolFull

// ErrIngestorClosed rejects ingests after Ingestor.Close.
var ErrIngestorClosed = ingest.ErrClosed

// ErrIngestJournalDegraded rejects an ingest batch whose journal append
// exhausted its retry budget: durability cannot be promised, so the batch is
// refused and the ingestor serves read-only until an append succeeds again.
var ErrIngestJournalDegraded = ingest.ErrJournalDegraded

// IngestConfig tunes an Ingestor; every zero field gets a usable default
// (threshold 256, pool 8×threshold, compaction after 8 journal segments,
// persistence disabled).
type IngestConfig struct {
	// Threshold is the number of pooled posts needing a re-cluster that
	// triggers the background re-cluster.
	Threshold int
	// MaxPending bounds the accepted-but-unabsorbed pool; ingests beyond it
	// fail with ErrIngestPoolFull.
	MaxPending int
	// CompactAfter is the number of sealed journal segments that triggers a
	// compaction after the next successful re-cluster.
	CompactAfter int
	// DeltaDir is the delta-journal directory; empty disables persistence.
	DeltaDir string
	// JournalAttempts is the total number of tries one batch's journal
	// append gets before the ingestor goes read-only (default 3);
	// JournalBackoff is the first retry delay, doubling per retry with a
	// fixed cap (default 2ms).
	JournalAttempts int
	JournalBackoff  time.Duration
}

// NewIngestor wires a streaming ingest path onto a hot-swappable engine.
// The dataset and site must be the corpus and annotation site the currently
// served engine was built from (the engine's own configuration is reused),
// so that the determinism contract holds: after any sequence of ingests and
// re-clusters, the served engine is bitwise-identical to a from-scratch
// build over ds plus every ingested post in ingest order.
//
// Incoming posts are probed against hot's current engine; unmatched fringe
// image posts accumulate until the threshold, then a background re-cluster
// absorbs them and publishes the fresh engine via hot.Swap — in-flight
// requests finish on the generation they pinned, new requests see the new
// posts. Close the Ingestor before discarding it.
func NewIngestor(hot *HotEngine, ds *Dataset, site *AnnotationSite, cfg IngestConfig) (*Ingestor, error) {
	inc, err := pipeline.NewIncremental(ds, site, hot.Engine().build.Config)
	if err != nil {
		return nil, err
	}
	return ingest.New(inc, ingest.Config{
		Threshold:       cfg.Threshold,
		MaxPending:      cfg.MaxPending,
		CompactAfter:    cfg.CompactAfter,
		DeltaDir:        cfg.DeltaDir,
		JournalAttempts: cfg.JournalAttempts,
		JournalBackoff:  cfg.JournalBackoff,
		Match: func(ctx context.Context, h phash.Hash) (bool, error) {
			_, ok, err := hot.Match(ctx, h)
			return ok, err
		},
		Publish: func(b *pipeline.BuildResult) { hot.Swap(&Engine{build: b}) },
	})
}

// LatestDeltaBase locates the newest compacted base snapshot in a delta
// directory — the artifact Ingestor compaction writes. ok is false when the
// directory holds none (or does not exist yet): boot from the original
// snapshot or corpus and Replay the journal from sequence 0.
func LatestDeltaBase(dir string) (path string, seq uint64, ok bool, err error) {
	return ingest.LatestBase(dir)
}
