// Snapshotserve: the build-once / serve-forever workflow. The expensive
// Steps 2-5 build runs once and is saved as a versioned binary snapshot; a
// second "serving process" (here, the same program a moment later) loads
// the snapshot — skipping Steps 2-5 entirely — picks an index strategy for
// its hardware, and answers queries identical to the original engine's.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/memes-pipeline/memes"
)

func main() {
	ctx := context.Background()

	// 1. The build box: generate a corpus and run the expensive build phase
	//    (Steps 2-5) once.
	ds, err := memes.GenerateDataset(memes.SmallDatasetConfig())
	if err != nil {
		log.Fatalf("generating dataset: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		log.Fatalf("building annotation site: %v", err)
	}
	eng, err := memes.NewEngine(ctx, ds, site)
	if err != nil {
		log.Fatalf("building engine: %v", err)
	}
	fmt.Printf("built engine: %d clusters from %d posts\n", len(eng.Clusters()), len(ds.Posts))

	// 2. Ship the snapshot. Only the Steps 2-5 artifact is persisted — the
	//    medoid index is rebuilt on load, so the file is small and
	//    strategy-agnostic.
	path := filepath.Join(os.TempDir(), "memes-engine.snap")
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("creating snapshot: %v", err)
	}
	if err := eng.Save(f); err != nil {
		log.Fatalf("saving engine: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("closing snapshot: %v", err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("snapshot: %d bytes at %s\n", st.Size(), path)

	// 3. The serving box: load the snapshot with the annotation site. No
	//    clustering or annotation runs — the progress stream shows a single
	//    "load" stage. Each serving process may pick its own index strategy;
	//    results are identical under all of them.
	r, err := os.Open(path)
	if err != nil {
		log.Fatalf("opening snapshot: %v", err)
	}
	defer r.Close()
	served, err := memes.LoadEngine(r, site,
		memes.WithIndex(memes.IndexSharded),
		memes.WithProgress(func(ev memes.StageEvent) {
			if ev.Done {
				fmt.Printf("load stage %q: %d clusters in %v\n", ev.Stage, ev.Items, ev.Duration)
			}
		}))
	if err != nil {
		log.Fatalf("loading engine: %v", err)
	}

	// 4. Serve: associate a fresh batch and answer a single-image lookup,
	//    exactly as the original engine would.
	batch, err := served.Associate(ctx, ds.Posts[:200])
	if err != nil {
		log.Fatalf("associating: %v", err)
	}
	orig, err := eng.Associate(ctx, ds.Posts[:200])
	if err != nil {
		log.Fatalf("associating on original: %v", err)
	}
	fmt.Printf("served %d associations for 200 posts (original engine: %d — identical by construction)\n",
		len(batch), len(orig))
	for _, c := range served.Clusters() {
		if c.Annotated() {
			m, ok, err := served.Match(ctx, c.MedoidHash)
			if err != nil || !ok {
				log.Fatalf("match: (%v, %v)", ok, err)
			}
			fmt.Printf("single-image lookup on a medoid: cluster %d (%s) at distance %d\n",
				m.ClusterID, c.EntryName(), m.Distance)
			break
		}
	}
}
