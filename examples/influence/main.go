// Influence: reproduce the Section 5 experiment end to end — fit per-meme
// Hawkes models to the cross-community posting events and print the raw and
// normalized influence matrices (Figures 11 and 12), plus the racist vs
// non-racist split (Figures 13 and 15).
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/memes-pipeline/memes"
)

func main() {
	ds, err := memes.GenerateDataset(memes.SmallDatasetConfig())
	if err != nil {
		log.Fatalf("generating dataset: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		log.Fatalf("building site: %v", err)
	}
	eng, err := memes.NewEngine(context.Background(), ds, site)
	if err != nil {
		log.Fatalf("building engine: %v", err)
	}
	res := eng.Result()

	printMatrices := func(title string, inf *memes.InfluenceResult) {
		fmt.Printf("--- %s ---\n", title)
		fmt.Printf("%-12s", "src\\dst")
		for _, n := range inf.Communities {
			fmt.Printf("%12s", n)
		}
		fmt.Printf("%12s\n", "Total Ext")
		for i := range inf.Raw {
			fmt.Printf("%-12s", inf.Communities[i])
			for j := range inf.Raw[i] {
				fmt.Printf("%11.1f%%", inf.Raw[i][j]*100)
			}
			fmt.Printf("%11.1f%%\n", inf.TotalExternal[i]*100)
		}
	}

	all, err := memes.EstimateInfluence(res, memes.AllMemes)
	if err != nil {
		log.Fatalf("estimating influence: %v", err)
	}
	printMatrices("all memes (raw influence, Figure 11; Total Ext from Figure 12)", all)

	racist, err := memes.EstimateInfluence(res, memes.RacistMemes)
	if err != nil {
		log.Fatalf("estimating racist-meme influence: %v", err)
	}
	printMatrices("racist memes (Figures 13/15)", racist)

	political, err := memes.EstimateInfluence(res, memes.PoliticalMemes)
	if err != nil {
		log.Fatalf("estimating political-meme influence: %v", err)
	}
	printMatrices("political memes (Figures 14/16)", political)
}
