// Phylogeny: explore the relationships between meme variants with the custom
// distance metric of Section 2.3 — the Figure 6 dendrogram over a meme
// family and the Figure 7 cluster graph.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/memes-pipeline/memes"
	"github.com/memes-pipeline/memes/internal/analysis"
)

func main() {
	ds, err := memes.GenerateDataset(memes.SmallDatasetConfig())
	if err != nil {
		log.Fatalf("generating dataset: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		log.Fatalf("building site: %v", err)
	}
	eng, err := memes.NewEngine(context.Background(), ds, site)
	if err != nil {
		log.Fatalf("building engine: %v", err)
	}
	res := eng.Result()
	metric, err := memes.NewMetric()
	if err != nil {
		log.Fatalf("building metric: %v", err)
	}

	// Figure 6: hierarchical clustering of the "frog" meme family.
	dend, err := analysis.MemeFamilyDendrogram(res, metric, []string{"frog", "pepe", "apu"})
	if err != nil {
		log.Fatalf("building dendrogram: %v", err)
	}
	fmt.Printf("frog family: %d clusters across /pol/, The Donald, and Gab\n", dend.Dendrogram.NumLeaves())
	for _, cut := range []float64{0.2, 0.45, 0.7} {
		labels := dend.Dendrogram.Cut(cut)
		distinct := map[int]bool{}
		for _, l := range labels {
			distinct[l] = true
		}
		fmt.Printf("  cutting the dendrogram at %.2f yields %d groups\n", cut, len(distinct))
	}
	fmt.Println("  sample leaves:", dend.Leaves[:min(6, len(dend.Leaves))])

	// Figure 7: the cluster graph at distance threshold 0.45.
	g, err := analysis.BuildClusterGraph(res, metric, analysis.DefaultClusterGraphConfig())
	if err != nil {
		log.Fatalf("building graph: %v", err)
	}
	comps := g.ConnectedComponents()
	purity := g.ComponentPurity()
	mean := 0.0
	for _, p := range purity {
		mean += p
	}
	if len(purity) > 0 {
		mean /= float64(len(purity))
	}
	fmt.Printf("cluster graph: %d nodes, %d edges, %d connected components, mean purity %.2f\n",
		len(g.Nodes), len(g.Edges), len(comps), mean)
	fmt.Println("(a high purity means each component is dominated by a single meme, the Figure 7 observation)")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
