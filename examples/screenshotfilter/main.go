// Screenshotfilter: train the Step 4 screenshot classifier on a synthetic
// corpus, evaluate it (the Figure 19 / Appendix C experiment), and use it to
// filter a mixed image gallery.
package main

import (
	"fmt"
	"image"
	"log"

	"github.com/memes-pipeline/memes"
	"github.com/memes-pipeline/memes/internal/imaging"
)

func main() {
	// Train the classifier and report its held-out evaluation.
	exp, err := memes.TrainScreenshotClassifier()
	if err != nil {
		log.Fatalf("training classifier: %v", err)
	}
	ev := exp.Evaluation
	fmt.Printf("screenshot classifier: AUC=%.3f accuracy=%.1f%% precision=%.1f%% recall=%.1f%% F1=%.1f%%\n",
		ev.AUC, ev.Accuracy*100, ev.Precision*100, ev.Recall*100, ev.F1*100)
	fmt.Printf("(paper, Appendix C: AUC 0.96, accuracy 91.3%%, precision 94.3%%, recall 93.5%%, F1 93.9%%)\n")

	// Filter a small mixed gallery: five meme images and five screenshots.
	var gallery []image.Image
	var truth []bool
	for i := 0; i < 5; i++ {
		gallery = append(gallery, imaging.Template(int64(100+i)))
		truth = append(truth, false)
	}
	for i := 0; i < 5; i++ {
		gallery = append(gallery, imaging.Screenshot(int64(200+i), 128, 200))
		truth = append(truth, true)
	}
	kept, removed := 0, 0
	correct := 0
	for i, img := range gallery {
		isShot := memes.IsScreenshot(exp.Classifier, img)
		if isShot {
			removed++
		} else {
			kept++
		}
		if isShot == truth[i] {
			correct++
		}
	}
	fmt.Printf("gallery filtering: kept %d images, removed %d screenshots (%d/%d judged correctly)\n",
		kept, removed, correct, len(gallery))
}
