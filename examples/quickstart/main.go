// Quickstart: generate a small corpus, run the full pipeline, and print the
// headline numbers — clusters per fringe community, the most popular memes,
// and which community drives the meme ecosystem.
package main

import (
	"fmt"
	"log"

	"github.com/memes-pipeline/memes"
)

func main() {
	// 1. Build a small synthetic corpus (posts from /pol/, Reddit, Twitter,
	//    Gab, and The Donald, plus a KYM-style annotation site).
	ds, err := memes.GenerateDataset(memes.SmallDatasetConfig())
	if err != nil {
		log.Fatalf("generating dataset: %v", err)
	}
	fmt.Printf("corpus: %d posts, %d planted memes, %d KYM entries\n",
		len(ds.Posts), len(ds.Memes), len(ds.KYMEntries))

	// 2. Build the annotation site with screenshots already filtered
	//    (Step 4) and run the pipeline (Steps 1-6).
	site, err := ds.Site(true)
	if err != nil {
		log.Fatalf("building annotation site: %v", err)
	}
	res, err := memes.Run(ds, site, memes.DefaultPipelineConfig())
	if err != nil {
		log.Fatalf("running pipeline: %v", err)
	}

	// 3. Inspect the clustering per fringe community.
	for comm, summary := range res.PerCommunity {
		fmt.Printf("%-12s %5d images -> %4d clusters (%.0f%% noise, %d annotated)\n",
			comm, summary.Images, summary.Clusters, summary.NoiseFraction()*100, summary.Annotated)
	}
	fmt.Printf("associations: %d posts across all communities matched to memes\n", len(res.Associations))

	// 4. Estimate which community drives the meme ecosystem (Section 5).
	inf, err := memes.EstimateInfluence(res, memes.AllMemes)
	if err != nil {
		log.Fatalf("estimating influence: %v", err)
	}
	fmt.Println("normalized external influence (per meme posted):")
	for i, name := range inf.Communities {
		fmt.Printf("  %-12s events=%-6d external=%.2f%%\n", name, inf.Events[i], inf.TotalExternal[i]*100)
	}
}
