// Quickstart: generate a small corpus, build the pipeline engine once, and
// print the headline numbers — clusters per fringe community, the most
// popular memes, and which community drives the meme ecosystem.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/memes-pipeline/memes"
)

func main() {
	// 1. Build a small synthetic corpus (posts from /pol/, Reddit, Twitter,
	//    Gab, and The Donald, plus a KYM-style annotation site).
	ds, err := memes.GenerateDataset(memes.SmallDatasetConfig())
	if err != nil {
		log.Fatalf("generating dataset: %v", err)
	}
	fmt.Printf("corpus: %d posts, %d planted memes, %d KYM entries\n",
		len(ds.Posts), len(ds.Memes), len(ds.KYMEntries))

	// 2. Build the annotation site with screenshots already filtered
	//    (Step 4) and run the expensive build phase (Steps 2-5) once. The
	//    progress callback watches the stages complete; timing goes to
	//    stderr so stdout stays reproducible.
	site, err := ds.Site(true)
	if err != nil {
		log.Fatalf("building annotation site: %v", err)
	}
	eng, err := memes.NewEngine(context.Background(), ds, site,
		memes.WithProgress(func(ev memes.StageEvent) {
			if ev.Done {
				fmt.Fprintf(os.Stderr, "stage %-10s %d items in %v\n", ev.Stage, ev.Items, ev.Duration)
			}
		}))
	if err != nil {
		log.Fatalf("building engine: %v", err)
	}
	res := eng.Result()

	// 3. Inspect the clustering per fringe community, in fixed order so the
	//    output is reproducible run to run.
	for _, comm := range res.Communities() {
		summary := res.PerCommunity[comm]
		fmt.Printf("%-12s %5d images -> %4d clusters (%.0f%% noise, %d annotated)\n",
			comm, summary.Images, summary.Clusters, summary.NoiseFraction()*100, summary.Annotated)
	}
	fmt.Printf("associations: %d posts across all communities matched to memes\n", len(res.Associations))

	// 4. The engine keeps the annotated-cluster index resident, so follow-up
	//    queries are cheap: associate a fresh batch (here, the first 100
	//    posts again) and look a single hash up.
	batch, err := eng.Associate(context.Background(), ds.Posts[:100])
	if err != nil {
		log.Fatalf("associating batch: %v", err)
	}
	fmt.Printf("re-associating the first 100 posts: %d matches\n", len(batch))
	if len(res.Associations) > 0 {
		post := ds.Posts[res.Associations[0].PostIndex]
		if m, ok, err := eng.Match(context.Background(), post.PHash()); err == nil && ok {
			fmt.Printf("single-image lookup: cluster %d at distance %d\n", m.ClusterID, m.Distance)
		}
	}

	// 5. Estimate which community drives the meme ecosystem (Section 5).
	inf, err := memes.EstimateInfluence(res, memes.AllMemes)
	if err != nil {
		log.Fatalf("estimating influence: %v", err)
	}
	fmt.Println("normalized external influence (per meme posted):")
	for i, name := range inf.Communities {
		fmt.Printf("  %-12s events=%-6d external=%.2f%%\n", name, inf.Events[i], inf.TotalExternal[i]*100)
	}
}
