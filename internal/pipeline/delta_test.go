package pipeline

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/memes-pipeline/memes/internal/dataset"
)

// deltaFixture builds a two-frame journal with representative post shapes:
// every field populated, empty strings, zero hashes, negative ground truth.
func deltaFixture() []Delta {
	ts := func(s string) time.Time {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			panic(err)
		}
		return t.UTC()
	}
	return []Delta{
		{FromSeq: 0, Posts: []dataset.Post{
			{ID: 1, Community: dataset.Pol, Timestamp: ts("2017-01-05T10:00:00Z"), HasImage: true, Hash: 0xdeadbeefcafef00d, TruthMeme: 3, TruthRoot: 0},
			{ID: 2, Community: dataset.Reddit, Subreddit: "The_Donald", Timestamp: ts("2017-01-05T11:30:00Z"), HasImage: true, Hash: 1, Score: -7, TruthMeme: -1, TruthRoot: -1},
			{ID: 3, Community: dataset.Twitter, Timestamp: ts("2017-01-06T00:00:00Z"), HasImage: false, TruthMeme: -1, TruthRoot: -1},
		}},
		{FromSeq: 3, Posts: []dataset.Post{
			{ID: 4, Community: dataset.Gab, Timestamp: ts("2017-02-01T09:15:00Z"), HasImage: true, Hash: ^uint64(0), Score: 9001, TruthMeme: 0, TruthRoot: 4},
		}},
	}
}

// deltaBytes serialises frames back to back, as an ingest journal would.
func deltaBytes(t *testing.T, frames []Delta) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := range frames {
		if err := SaveDelta(&buf, &frames[i]); err != nil {
			t.Fatalf("SaveDelta frame %d: %v", i, err)
		}
	}
	return buf.Bytes()
}

// TestDeltaRoundTrip pins that a journal of frames survives the codec
// bit-for-bit, including timestamps (compared in UTC) and negative values.
func TestDeltaRoundTrip(t *testing.T) {
	frames := deltaFixture()
	got, err := ReadDeltas(bytes.NewReader(deltaBytes(t, frames)))
	if err != nil {
		t.Fatalf("ReadDeltas: %v", err)
	}
	if !reflect.DeepEqual(got, frames) {
		t.Fatalf("round trip diverged:\ngot  %+v\nwant %+v", got, frames)
	}

	// An empty journal is valid and empty.
	empty, err := ReadDeltas(bytes.NewReader(nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty journal: got %v, %v", empty, err)
	}

	// A frame with no posts round-trips too (a rotation marker).
	hollow := []Delta{{FromSeq: 42}}
	got, err = ReadDeltas(bytes.NewReader(deltaBytes(t, hollow)))
	if err != nil || len(got) != 1 || got[0].FromSeq != 42 || len(got[0].Posts) != 0 {
		t.Fatalf("hollow frame: got %+v, %v", got, err)
	}
}

// TestDeltaRejectsEveryTruncation mirrors the MEMESNAP suite with one
// deliberate exception: frames are self-contained, so a cut exactly at a
// frame boundary reads as a valid shorter journal (that is the crash-
// tolerance contract — losing the tail frame must not poison the rest).
// Every other cut — through frame headers, mid-post, mid-string, inside a
// CRC trailer — must fail loudly.
func TestDeltaRejectsEveryTruncation(t *testing.T) {
	frames := deltaFixture()
	stream := deltaBytes(t, frames)
	frameEnd := len(deltaBytes(t, frames[:1]))
	for n := 1; n < len(stream); n++ {
		got, err := ReadDeltas(bytes.NewReader(stream[:n]))
		if n == frameEnd {
			if err != nil || len(got) != 1 {
				t.Fatalf("cut at frame boundary %d: got %d frames, %v; want the intact first frame", n, len(got), err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("journal truncated to %d of %d bytes read successfully", n, len(stream))
		}
	}
	if _, err := ReadDeltas(bytes.NewReader(stream)); err != nil {
		t.Fatalf("untruncated journal rejected: %v", err)
	}
}

// TestDeltaRejectsEveryByteFlip corrupts each byte of the journal in turn:
// header flips fail the magic/version checks, payload flips the per-frame
// CRC (or a structural read on the way to it), trailer flips the checksum
// comparison itself. No single-byte corruption may load.
func TestDeltaRejectsEveryByteFlip(t *testing.T) {
	stream := deltaBytes(t, deltaFixture())
	corrupt := make([]byte, len(stream))
	for i := 0; i < len(stream); i++ {
		copy(corrupt, stream)
		corrupt[i] ^= 0xff
		if _, err := ReadDeltas(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("journal with byte %d of %d flipped read successfully", i, len(stream))
		}
	}
}

// TestDeltaChecksumTrailerBoundaries pins each frame's CRC trailer: flipping
// any stored checksum byte must produce the checksum mismatch error, and
// truncating into the final trailer must fail reading it.
func TestDeltaChecksumTrailerBoundaries(t *testing.T) {
	frames := deltaFixture()
	frameOne := deltaBytes(t, frames[:1])
	stream := deltaBytes(t, frames)
	// Trailer of the first frame, then trailer of the last frame.
	for _, hi := range []int{len(frameOne), len(stream)} {
		for i := hi - 4; i < hi; i++ {
			corrupt := append([]byte(nil), stream...)
			corrupt[i] ^= 0x01
			_, err := ReadDeltas(bytes.NewReader(corrupt))
			if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
				t.Fatalf("trailer byte %d flipped: err = %v, want checksum mismatch", i, err)
			}
		}
	}
	for drop := 1; drop <= 4; drop++ {
		_, err := ReadDeltas(bytes.NewReader(stream[:len(stream)-drop]))
		if err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("trailer truncated by %d: err = %v, want checksum read failure", drop, err)
		}
	}
}

// TestDeltaRejectsInvalidCommunity pins the post-CRC validation: an intact
// frame naming an unknown community is rejected.
func TestDeltaRejectsInvalidCommunity(t *testing.T) {
	bad := []Delta{{FromSeq: 0, Posts: []dataset.Post{{ID: 1, Community: dataset.Community(99), Timestamp: time.Unix(0, 0).UTC()}}}}
	if _, err := ReadDeltas(bytes.NewReader(deltaBytes(t, bad))); err == nil {
		t.Fatal("frame with invalid community read successfully")
	}
}

// TestSpliceDeltas pins the replay chain logic: ordering, folded-frame
// skipping, compaction-overlap tolerance, and gap rejection.
func TestSpliceDeltas(t *testing.T) {
	p := func(ids ...int64) []dataset.Post {
		out := make([]dataset.Post, len(ids))
		for i, id := range ids {
			out[i] = dataset.Post{ID: id, Community: dataset.Pol, Timestamp: time.Unix(0, 0).UTC()}
		}
		return out
	}
	frames := []Delta{
		{FromSeq: 3, Posts: p(4, 5)},
		{FromSeq: 0, Posts: p(1, 2, 3)}, // out of order on purpose
	}
	posts, covered, err := SpliceDeltas(frames, 0)
	if err != nil {
		t.Fatalf("SpliceDeltas: %v", err)
	}
	if covered != 5 || len(posts) != 5 || posts[0].ID != 1 || posts[4].ID != 5 {
		t.Fatalf("splice = %d posts covered %d, want 5/5 in ID order", len(posts), covered)
	}

	// Frames fully below `from` are skipped; partial overlap contributes its
	// tail only (the compaction-crash window).
	merged := []Delta{
		{FromSeq: 0, Posts: p(1, 2, 3, 4)}, // compacted head
		{FromSeq: 3, Posts: p(4, 5)},       // stale segment overlapping the head
	}
	posts, covered, err = SpliceDeltas(merged, 0)
	if err != nil {
		t.Fatalf("overlap splice: %v", err)
	}
	if covered != 5 || len(posts) != 5 || posts[3].ID != 4 || posts[4].ID != 5 {
		t.Fatalf("overlap splice = %+v covered %d, want IDs 1..5", posts, covered)
	}

	// Everything already folded: nothing to replay.
	posts, covered, err = SpliceDeltas(merged, 5)
	if err != nil || len(posts) != 0 || covered != 5 {
		t.Fatalf("folded splice = %d posts covered %d err %v, want 0/5/nil", len(posts), covered, err)
	}

	// A hole in the chain rejects the journal.
	if _, _, err := SpliceDeltas([]Delta{{FromSeq: 2, Posts: p(3)}}, 0); err == nil {
		t.Fatal("gapped journal spliced successfully")
	}
}
