package pipeline

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/memes-pipeline/memes/internal/dataset"
)

// TestBuildThenResultMatchesRun asserts the phase split is lossless: Build
// followed by Result produces exactly what the one-shot Run does (Stats
// excepted, as documented).
func TestBuildThenResultMatchesRun(t *testing.T) {
	res := getRun(t)
	b, err := Build(context.Background(), res.Dataset, res.Site, DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	got, err := b.Result(context.Background())
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if !reflect.DeepEqual(got.Clusters, res.Clusters) ||
		!reflect.DeepEqual(got.Associations, res.Associations) ||
		!reflect.DeepEqual(got.PerCommunity, res.PerCommunity) {
		t.Fatal("Build+Result diverges from Run")
	}
	// The build phase alone must already expose the clusters and summaries.
	if !reflect.DeepEqual(b.Clusters, res.Clusters) || !reflect.DeepEqual(b.PerCommunity, res.PerCommunity) {
		t.Fatal("BuildResult clusters/summaries diverge from Run")
	}
}

// TestBuildResultMatchAgreesWithAssociate checks the single-hash lookup and
// the batch path pick the same winner for every associated post.
func TestBuildResultMatchAgreesWithAssociate(t *testing.T) {
	res := getRun(t)
	b, err := Build(context.Background(), res.Dataset, res.Site, DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for _, a := range res.Associations[:min(50, len(res.Associations))] {
		m, ok := b.Match(res.Dataset.Posts[a.PostIndex].PHash())
		if !ok || m.ClusterID != a.ClusterID || m.Distance != a.Distance {
			t.Fatalf("Match diverges from association %+v: (%+v, %v)", a, m, ok)
		}
	}
	// A hash maximally far from everything must not match.
	if m, ok := b.Match(0xFFFFFFFFFFFFFFFF); ok && m.Distance > b.Config.AssociationThreshold {
		t.Fatalf("Match returned out-of-threshold result %+v", m)
	}
}

// TestRunContextCancelled covers cancellation at the pipeline layer: a
// pre-cancelled context fails both phases.
func TestRunContextCancelled(t *testing.T) {
	res := getRun(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, res.Dataset, res.Site, DefaultConfig(), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on cancelled ctx: %v", err)
	}
	b, err := Build(context.Background(), res.Dataset, res.Site, DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := b.Associate(ctx, res.Dataset.Posts); !errors.Is(err, context.Canceled) {
		t.Fatalf("Associate on cancelled ctx: %v", err)
	}
	if _, err := b.Result(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Result on cancelled ctx: %v", err)
	}
}

// TestResultCommunitiesFixedOrder asserts the reproducible-iteration helper
// returns the fringe communities in dataset order.
func TestResultCommunitiesFixedOrder(t *testing.T) {
	res := getRun(t)
	want := []dataset.Community{dataset.Pol, dataset.Gab, dataset.TheDonald}
	if got := res.Communities(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Result.Communities() = %v, want %v", got, want)
	}
}
