// Package pipeline orchestrates the paper's processing pipeline (Figure 2):
//
//	Step 1   pHash extraction (performed by the dataset generator or by
//	         hashing images directly via HashImages)
//	Steps 2-3 pairwise distance computation and DBSCAN clustering of the
//	         images posted on the fringe communities (/pol/, The Donald, Gab)
//	Step 4   screenshot removal from annotation-site galleries
//	Step 5   cluster annotation against the KYM site
//	Step 6   association of images from all communities to annotated clusters
//	Step 7   analysis and influence estimation (package analysis)
package pipeline

import (
	"errors"
	"fmt"
	"image"
	"runtime"
	"sort"
	"sync"

	"github.com/memes-pipeline/memes/internal/annotate"
	"github.com/memes-pipeline/memes/internal/cluster"
	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/distance"
	"github.com/memes-pipeline/memes/internal/phash"
)

// Config holds the tunable parameters of the pipeline.
type Config struct {
	// Clustering configures DBSCAN (Steps 2-3); the paper uses eps=8,
	// minPts=5.
	Clustering cluster.DBSCANConfig
	// AnnotationThreshold is θ for matching cluster medoids against KYM
	// gallery images (Step 5).
	AnnotationThreshold int
	// AssociationThreshold is θ for matching posts from any community
	// against annotated cluster medoids (Step 6).
	AssociationThreshold int
	// Workers bounds the number of concurrent workers used for association;
	// zero means GOMAXPROCS.
	Workers int
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Clustering:           cluster.DefaultDBSCANConfig(),
		AnnotationThreshold:  annotate.DefaultThreshold,
		AssociationThreshold: annotate.DefaultThreshold,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Clustering.Validate(); err != nil {
		return err
	}
	if c.AnnotationThreshold < 0 || c.AnnotationThreshold > phash.MaxDistance {
		return fmt.Errorf("pipeline: annotation threshold %d out of range", c.AnnotationThreshold)
	}
	if c.AssociationThreshold < 0 || c.AssociationThreshold > phash.MaxDistance {
		return fmt.Errorf("pipeline: association threshold %d out of range", c.AssociationThreshold)
	}
	if c.Workers < 0 {
		return errors.New("pipeline: negative worker count")
	}
	return nil
}

// ClusterInfo is one cluster produced by Steps 2-5: which fringe community
// it came from, its medoid, its size, and its KYM annotation.
type ClusterInfo struct {
	// ID is the cluster's index in Result.Clusters.
	ID int
	// Community is the fringe community the cluster was built from.
	Community dataset.Community
	// Label is the DBSCAN label within that community.
	Label int
	// MedoidHash is the perceptual hash of the cluster medoid.
	MedoidHash phash.Hash
	// Images is the number of image occurrences in the cluster.
	Images int
	// DistinctHashes is the number of distinct perceptual hashes in the
	// cluster.
	DistinctHashes int
	// Annotation is the Step 5 annotation (possibly empty).
	Annotation annotate.Annotation
	// Racist and Political report membership of the representative entry (or
	// any matched entry) in the tag groups of Section 4.2.1.
	Racist    bool
	Political bool
}

// Annotated reports whether the cluster received a KYM annotation.
func (c *ClusterInfo) Annotated() bool { return c.Annotation.Annotated() }

// EntryName returns the representative KYM entry name, or "" when the
// cluster is unannotated.
func (c *ClusterInfo) EntryName() string {
	if c.Annotation.Representative == nil {
		return ""
	}
	return c.Annotation.Representative.Name
}

// Features converts the cluster into the feature set consumed by the custom
// distance metric.
func (c *ClusterInfo) Features() distance.ClusterFeatures {
	return distance.ClusterFeatures{
		MedoidHash: c.MedoidHash,
		Memes:      c.Annotation.NamesByCategory(annotate.CategoryMeme),
		Cultures: append(c.Annotation.NamesByCategory(annotate.CategoryCulture),
			c.Annotation.NamesByCategory(annotate.CategorySubculture)...),
		People:    c.Annotation.NamesByCategory(annotate.CategoryPeople),
		Annotated: c.Annotated(),
	}
}

// CommunityClustering summarises Steps 2-3 for one fringe community
// (Table 2).
type CommunityClustering struct {
	Community      dataset.Community
	Images         int
	DistinctHashes int
	NoiseImages    int
	Clusters       int
	Annotated      int
}

// NoiseFraction returns the fraction of images labelled noise.
func (c CommunityClustering) NoiseFraction() float64 {
	if c.Images == 0 {
		return 0
	}
	return float64(c.NoiseImages) / float64(c.Images)
}

// Association links one post to an annotated cluster (Step 6).
type Association struct {
	// PostIndex indexes into the dataset's Posts slice.
	PostIndex int
	// ClusterID indexes into Result.Clusters.
	ClusterID int
	// Distance is the Hamming distance between the post image and the
	// cluster medoid.
	Distance int
}

// Result is the output of Steps 1-6.
type Result struct {
	// Config echoes the configuration used.
	Config Config
	// Dataset is the corpus the pipeline ran on.
	Dataset *dataset.Dataset
	// Site is the annotation site used for Step 5.
	Site *annotate.Site
	// PerCommunity holds the clustering summary of each fringe community.
	PerCommunity map[dataset.Community]CommunityClustering
	// Clusters lists every cluster across the fringe communities.
	Clusters []ClusterInfo
	// Associations links posts from all communities to annotated clusters.
	Associations []Association
}

// AnnotatedClusters returns the indexes of clusters with a KYM annotation.
func (r *Result) AnnotatedClusters() []int {
	var out []int
	for i := range r.Clusters {
		if r.Clusters[i].Annotated() {
			out = append(out, i)
		}
	}
	return out
}

// Run executes Steps 1-6 over a generated dataset and an annotation site.
// The site should already have screenshots removed (Step 4); use
// dataset.Dataset.Site(true) or a screenshot.Classifier-based filter.
func Run(ds *dataset.Dataset, site *annotate.Site, cfg Config) (*Result, error) {
	if ds == nil || site == nil {
		return nil, errors.New("pipeline: nil dataset or site")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Config:       cfg,
		Dataset:      ds,
		Site:         site,
		PerCommunity: make(map[dataset.Community]CommunityClustering),
	}

	// Steps 2-3 + 5: cluster each fringe community and annotate the medoids.
	for _, comm := range dataset.Communities() {
		if !comm.Fringe() {
			continue
		}
		if err := res.clusterCommunity(comm); err != nil {
			return nil, fmt.Errorf("pipeline: clustering %v: %w", comm, err)
		}
	}

	// Step 6: associate posts from every community with annotated clusters.
	if err := res.associate(); err != nil {
		return nil, fmt.Errorf("pipeline: association: %w", err)
	}
	return res, nil
}

// clusterCommunity performs Steps 2-3 and 5 for one fringe community.
func (r *Result) clusterCommunity(comm dataset.Community) error {
	// Distinct hashes and their occurrence counts within this community.
	var hashes []phash.Hash
	var counts []int
	index := make(map[phash.Hash]int)
	images := 0
	for _, p := range r.Dataset.Posts {
		if !p.HasImage || p.Community != comm {
			continue
		}
		images++
		h := p.PHash()
		if at, ok := index[h]; ok {
			counts[at]++
		} else {
			index[h] = len(hashes)
			hashes = append(hashes, h)
			counts = append(counts, 1)
		}
	}

	summary := CommunityClustering{Community: comm, Images: images, DistinctHashes: len(hashes)}
	if len(hashes) == 0 {
		r.PerCommunity[comm] = summary
		return nil
	}

	dbres, err := cluster.DBSCAN(hashes, counts, r.Config.Clustering)
	if err != nil {
		return err
	}
	clusters := cluster.Materialize(hashes, counts, dbres)
	summary.Clusters = len(clusters)
	// Noise measured in image occurrences, as in Table 2.
	noiseImages := 0
	for i, lbl := range dbres.Labels {
		if lbl == cluster.Noise {
			noiseImages += counts[i]
		}
	}
	summary.NoiseImages = noiseImages

	for _, c := range clusters {
		ann := r.Site.Annotate(c.MedoidHash, r.Config.AnnotationThreshold)
		info := ClusterInfo{
			ID:             len(r.Clusters),
			Community:      comm,
			Label:          c.Label,
			MedoidHash:     c.MedoidHash,
			Images:         c.Size,
			DistinctHashes: len(c.Members),
			Annotation:     ann,
		}
		for _, m := range ann.Matches {
			if m.Entry.IsRacist() {
				info.Racist = true
			}
			if m.Entry.IsPolitical() {
				info.Political = true
			}
		}
		if ann.Annotated() {
			summary.Annotated++
		}
		r.Clusters = append(r.Clusters, info)
	}
	r.PerCommunity[comm] = summary
	return nil
}

// associate implements Step 6: every image post from every community is
// matched against the medoids of the annotated clusters; the nearest medoid
// within the association threshold wins.
func (r *Result) associate() error {
	annotated := r.AnnotatedClusters()
	if len(annotated) == 0 {
		return nil
	}
	medoidIndex := phash.NewBKTree()
	for _, ci := range annotated {
		medoidIndex.Insert(r.Clusters[ci].MedoidHash, int64(ci))
	}

	workers := r.Config.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type job struct{ lo, hi int }
	jobs := make(chan job, workers)
	results := make([][]Association, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for jb := range jobs {
				for i := jb.lo; i < jb.hi; i++ {
					p := r.Dataset.Posts[i]
					if !p.HasImage {
						continue
					}
					matches := medoidIndex.Radius(p.PHash(), r.Config.AssociationThreshold)
					if len(matches) == 0 {
						continue
					}
					best := matches[0]
					for _, m := range matches[1:] {
						if m.Distance < best.Distance {
							best = m
						}
					}
					// Deterministic tie-break: the lowest cluster ID at the
					// best distance.
					bestID := best.IDs[0]
					for _, id := range best.IDs {
						if id < bestID {
							bestID = id
						}
					}
					results[w] = append(results[w], Association{
						PostIndex: i,
						ClusterID: int(bestID),
						Distance:  best.Distance,
					})
				}
			}
		}(w)
	}
	n := len(r.Dataset.Posts)
	chunk := (n + workers*4 - 1) / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		jobs <- job{lo: lo, hi: hi}
	}
	close(jobs)
	wg.Wait()

	for _, part := range results {
		r.Associations = append(r.Associations, part...)
	}
	sort.Slice(r.Associations, func(i, j int) bool {
		return r.Associations[i].PostIndex < r.Associations[j].PostIndex
	})
	return nil
}

// HashImages is the Step 1 helper for callers that hold raw images rather
// than a generated dataset: it hashes every image concurrently and returns
// the hashes in input order. Nil images produce an error.
func HashImages(images []image.Image, workers int) ([]phash.Hash, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]phash.Hash, len(images))
	errs := make([]error, len(images))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, img := range images {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, img image.Image) {
			defer wg.Done()
			defer func() { <-sem }()
			h, err := phash.FromImage(img)
			out[i], errs[i] = h, err
		}(i, img)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pipeline: hashing image %d: %w", i, err)
		}
	}
	return out, nil
}
