// Package pipeline orchestrates the paper's processing pipeline (Figure 2):
//
//	Step 1   pHash extraction (performed by the dataset generator or by
//	         hashing images directly via HashImages)
//	Steps 2-3 pairwise distance computation and DBSCAN clustering of the
//	         images posted on the fringe communities (/pol/, The Donald, Gab)
//	Step 4   screenshot removal from annotation-site galleries
//	Step 5   cluster annotation against the KYM site
//	Step 6   association of images from all communities to annotated clusters
//	Step 7   analysis and influence estimation (package analysis)
//
// The engine is a staged concurrent pipeline split into two phases that
// mirror the paper's cost structure:
//
//   - Build (Steps 2-5, expensive, offline): per-community DBSCAN fan-out,
//     parallel medoid materialisation, batch medoid annotation, and
//     construction of the annotated-medoid index (a pluggable
//     internal/index strategy selected by Config.Index). The output is a
//     resident, immutable BuildResult, persistable with Save and
//     reconstitutable with LoadBuild without re-running Steps 2-5.
//   - Associate (Step 6, cheap, repeatable): any post batch — including
//     posts not in the original dataset — streams through a worker pool
//     against the BuildResult's medoid index. BuildResult.Match answers
//     single-hash lookups for serving front-ends.
//
// Run / RunContext compose the two phases into the legacy one-shot call.
// Every stage merges its results in a fixed order, so Result is identical
// for any Config.Workers value; Result.Stats records the per-stage wall
// time and is derived from the StageEvent stream a ProgressFunc observes.
// All phases accept a context.Context and stop promptly on cancellation.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"image"

	"github.com/memes-pipeline/memes/internal/annotate"
	"github.com/memes-pipeline/memes/internal/cluster"
	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/distance"
	"github.com/memes-pipeline/memes/internal/index"
	"github.com/memes-pipeline/memes/internal/parallel"
	"github.com/memes-pipeline/memes/internal/phash"
)

// Config holds the tunable parameters of the pipeline.
type Config struct {
	// Clustering configures DBSCAN (Steps 2-3); the paper uses eps=8,
	// minPts=5.
	Clustering cluster.DBSCANConfig
	// AnnotationThreshold is θ for matching cluster medoids against KYM
	// gallery images (Step 5).
	AnnotationThreshold int
	// AssociationThreshold is θ for matching posts from any community
	// against annotated cluster medoids (Step 6).
	AssociationThreshold int
	// Workers bounds the number of concurrent workers used by every stage;
	// zero means GOMAXPROCS. The pipeline output is identical for any
	// worker count.
	Workers int
	// Index selects the medoid-index strategy the Step 6 serve path queries
	// (see internal/index); empty means the default BK-tree. Every
	// registered strategy produces identical associations — the choice only
	// shapes the cost profile.
	Index index.Strategy
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Clustering:           cluster.DefaultDBSCANConfig(),
		AnnotationThreshold:  annotate.DefaultThreshold,
		AssociationThreshold: annotate.DefaultThreshold,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Clustering.Validate(); err != nil {
		return err
	}
	if c.AnnotationThreshold < 0 || c.AnnotationThreshold > phash.MaxDistance {
		return fmt.Errorf("pipeline: annotation threshold %d out of range", c.AnnotationThreshold)
	}
	if c.AssociationThreshold < 0 || c.AssociationThreshold > phash.MaxDistance {
		return fmt.Errorf("pipeline: association threshold %d out of range", c.AssociationThreshold)
	}
	if c.Workers < 0 {
		return errors.New("pipeline: negative worker count")
	}
	if err := c.Index.Validate(); err != nil {
		return err
	}
	return nil
}

// ClusterInfo is one cluster produced by Steps 2-5: which fringe community
// it came from, its medoid, its size, and its KYM annotation.
type ClusterInfo struct {
	// ID is the cluster's index in Result.Clusters.
	ID int
	// Community is the fringe community the cluster was built from.
	Community dataset.Community
	// Label is the DBSCAN label within that community.
	Label int
	// MedoidHash is the perceptual hash of the cluster medoid.
	MedoidHash phash.Hash
	// Images is the number of image occurrences in the cluster.
	Images int
	// DistinctHashes is the number of distinct perceptual hashes in the
	// cluster.
	DistinctHashes int
	// Annotation is the Step 5 annotation (possibly empty).
	Annotation annotate.Annotation
	// Racist and Political report membership of the representative entry (or
	// any matched entry) in the tag groups of Section 4.2.1.
	Racist    bool
	Political bool
}

// Annotated reports whether the cluster received a KYM annotation.
func (c *ClusterInfo) Annotated() bool { return c.Annotation.Annotated() }

// EntryName returns the representative KYM entry name, or "" when the
// cluster is unannotated.
func (c *ClusterInfo) EntryName() string {
	if c.Annotation.Representative == nil {
		return ""
	}
	return c.Annotation.Representative.Name
}

// Features converts the cluster into the feature set consumed by the custom
// distance metric.
func (c *ClusterInfo) Features() distance.ClusterFeatures {
	return distance.ClusterFeatures{
		MedoidHash: c.MedoidHash,
		Memes:      c.Annotation.NamesByCategory(annotate.CategoryMeme),
		Cultures: append(c.Annotation.NamesByCategory(annotate.CategoryCulture),
			c.Annotation.NamesByCategory(annotate.CategorySubculture)...),
		People:    c.Annotation.NamesByCategory(annotate.CategoryPeople),
		Annotated: c.Annotated(),
	}
}

// CommunityClustering summarises Steps 2-3 for one fringe community
// (Table 2).
type CommunityClustering struct {
	Community      dataset.Community
	Images         int
	DistinctHashes int
	NoiseImages    int
	Clusters       int
	Annotated      int
}

// NoiseFraction returns the fraction of images labelled noise.
func (c CommunityClustering) NoiseFraction() float64 {
	if c.Images == 0 {
		return 0
	}
	return float64(c.NoiseImages) / float64(c.Images)
}

// Association links one post to an annotated cluster (Step 6).
type Association struct {
	// PostIndex indexes into the dataset's Posts slice.
	PostIndex int
	// ClusterID indexes into Result.Clusters.
	ClusterID int
	// Distance is the Hamming distance between the post image and the
	// cluster medoid.
	Distance int
}

// Result is the output of Steps 1-6.
type Result struct {
	// Config echoes the configuration used.
	Config Config
	// Dataset is the corpus the pipeline ran on.
	Dataset *dataset.Dataset
	// Site is the annotation site used for Step 5.
	Site *annotate.Site
	// PerCommunity holds the clustering summary of each fringe community.
	PerCommunity map[dataset.Community]CommunityClustering
	// Clusters lists every cluster across the fringe communities.
	Clusters []ClusterInfo
	// Associations links posts from all communities to annotated clusters,
	// sorted by post index.
	Associations []Association
	// Stats records the per-stage wall time and throughput of the run. It is
	// the only Result field that varies between runs on identical inputs.
	Stats RunStats
}

// AnnotatedClusters returns the indexes of clusters with a KYM annotation.
func (r *Result) AnnotatedClusters() []int {
	var out []int
	for i := range r.Clusters {
		if r.Clusters[i].Annotated() {
			out = append(out, i)
		}
	}
	return out
}

// Communities returns the fringe communities present in PerCommunity in the
// fixed dataset.Communities() order, so ranging over per-community
// summaries (a map) produces reproducible output.
func (r *Result) Communities() []dataset.Community {
	return communitiesOf(r.PerCommunity)
}

// communityPartial is the Steps 2-3 output for one fringe community before
// annotation and ID assignment. hashes/counts/dbres carry the DBSCAN output
// to the materialise phase; clusters is filled there.
type communityPartial struct {
	summary  CommunityClustering
	hashes   []phash.Hash
	counts   []int
	dbres    cluster.Result
	clusters []cluster.Cluster
}

// Run executes Steps 1-6 over a generated dataset and an annotation site.
// The site should already have screenshots removed (Step 4); use
// dataset.Dataset.Site(true) or a screenshot.Classifier-based filter.
//
// The stages run concurrently on Config.Workers workers, but the returned
// Result (clusters, IDs, associations, summaries) is identical for every
// worker count. Run is the one-shot composition of Build (Steps 2-5) and
// BuildResult.Result (Step 6); callers that query repeatedly should Build
// once and Associate many times instead.
func Run(ds *dataset.Dataset, site *annotate.Site, cfg Config) (*Result, error) {
	return RunContext(context.Background(), ds, site, cfg, nil)
}

// RunContext is Run with cancellation and progress observation.
func RunContext(ctx context.Context, ds *dataset.Dataset, site *annotate.Site, cfg Config, progress ProgressFunc) (*Result, error) {
	b, err := Build(ctx, ds, site, cfg, progress)
	if err != nil {
		return nil, err
	}
	return b.Result(ctx)
}

// clusterCommunity performs the first phase of Steps 2-3 for one fringe
// community: distinct-hash extraction and DBSCAN. Medoid materialisation
// happens afterwards in Run, one community at a time. workers is the
// neighbourhood-scan budget for this community's DBSCAN; an explicit
// cfg.Clustering.Workers takes precedence.
func clusterCommunity(ctx context.Context, ds *dataset.Dataset, comm dataset.Community, cfg Config, workers int) (communityPartial, error) {
	// Distinct hashes and their occurrence counts within this community.
	var hashes []phash.Hash
	var counts []int
	index := make(map[phash.Hash]int)
	images := 0
	for _, p := range ds.Posts {
		if !p.HasImage || p.Community != comm {
			continue
		}
		images++
		h := p.PHash()
		if at, ok := index[h]; ok {
			counts[at]++
		} else {
			index[h] = len(hashes)
			hashes = append(hashes, h)
			counts = append(counts, 1)
		}
	}

	summary := CommunityClustering{Community: comm, Images: images, DistinctHashes: len(hashes)}
	if len(hashes) == 0 {
		return communityPartial{summary: summary}, nil
	}

	cc := cfg.Clustering
	if cc.Workers == 0 {
		cc.Workers = workers
	}
	dbres, err := cluster.DBSCANCtx(ctx, hashes, counts, cc)
	if err != nil {
		return communityPartial{}, err
	}
	// Noise measured in image occurrences, as in Table 2.
	for i, lbl := range dbres.Labels {
		if lbl == cluster.Noise {
			summary.NoiseImages += counts[i]
		}
	}
	return communityPartial{summary: summary, hashes: hashes, counts: counts, dbres: dbres}, nil
}

// HashImages is the Step 1 helper for callers that hold raw images rather
// than a generated dataset. It is HashImagesCtx without cancellation.
func HashImages(images []image.Image, workers int) ([]phash.Hash, error) {
	return HashImagesCtx(context.Background(), images, workers)
}

// HashImagesCtx is the Step 1 helper for callers that hold raw images rather
// than a generated dataset: it hashes every image concurrently and returns
// the hashes in input order, honouring ctx cancellation. Nil images produce
// an error.
func HashImagesCtx(ctx context.Context, images []image.Image, workers int) ([]phash.Hash, error) {
	return parallel.MapErrCtx(ctx, len(images), workers, func(i int) (phash.Hash, error) {
		h, err := phash.FromImage(images[i])
		if err != nil {
			return 0, fmt.Errorf("pipeline: hashing image %d: %w", i, err)
		}
		return h, nil
	})
}
