// Package pipeline orchestrates the paper's processing pipeline (Figure 2):
//
//	Step 1   pHash extraction (performed by the dataset generator or by
//	         hashing images directly via HashImages)
//	Steps 2-3 pairwise distance computation and DBSCAN clustering of the
//	         images posted on the fringe communities (/pol/, The Donald, Gab)
//	Step 4   screenshot removal from annotation-site galleries
//	Step 5   cluster annotation against the KYM site
//	Step 6   association of images from all communities to annotated clusters
//	Step 7   analysis and influence estimation (package analysis)
//
// The engine is a staged concurrent pipeline: Steps 2-3 fan out across the
// fringe communities (and across clusters within a community), Step 5
// batch-annotates every medoid concurrently, and Step 6 streams post chunks
// through a worker pool. Every stage merges its results in a fixed order, so
// Result is identical for any Config.Workers value; Result.Stats records the
// per-stage wall time.
package pipeline

import (
	"errors"
	"fmt"
	"image"
	"time"

	"github.com/memes-pipeline/memes/internal/annotate"
	"github.com/memes-pipeline/memes/internal/cluster"
	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/distance"
	"github.com/memes-pipeline/memes/internal/parallel"
	"github.com/memes-pipeline/memes/internal/phash"
)

// Config holds the tunable parameters of the pipeline.
type Config struct {
	// Clustering configures DBSCAN (Steps 2-3); the paper uses eps=8,
	// minPts=5.
	Clustering cluster.DBSCANConfig
	// AnnotationThreshold is θ for matching cluster medoids against KYM
	// gallery images (Step 5).
	AnnotationThreshold int
	// AssociationThreshold is θ for matching posts from any community
	// against annotated cluster medoids (Step 6).
	AssociationThreshold int
	// Workers bounds the number of concurrent workers used by every stage;
	// zero means GOMAXPROCS. The pipeline output is identical for any
	// worker count.
	Workers int
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Clustering:           cluster.DefaultDBSCANConfig(),
		AnnotationThreshold:  annotate.DefaultThreshold,
		AssociationThreshold: annotate.DefaultThreshold,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Clustering.Validate(); err != nil {
		return err
	}
	if c.AnnotationThreshold < 0 || c.AnnotationThreshold > phash.MaxDistance {
		return fmt.Errorf("pipeline: annotation threshold %d out of range", c.AnnotationThreshold)
	}
	if c.AssociationThreshold < 0 || c.AssociationThreshold > phash.MaxDistance {
		return fmt.Errorf("pipeline: association threshold %d out of range", c.AssociationThreshold)
	}
	if c.Workers < 0 {
		return errors.New("pipeline: negative worker count")
	}
	return nil
}

// ClusterInfo is one cluster produced by Steps 2-5: which fringe community
// it came from, its medoid, its size, and its KYM annotation.
type ClusterInfo struct {
	// ID is the cluster's index in Result.Clusters.
	ID int
	// Community is the fringe community the cluster was built from.
	Community dataset.Community
	// Label is the DBSCAN label within that community.
	Label int
	// MedoidHash is the perceptual hash of the cluster medoid.
	MedoidHash phash.Hash
	// Images is the number of image occurrences in the cluster.
	Images int
	// DistinctHashes is the number of distinct perceptual hashes in the
	// cluster.
	DistinctHashes int
	// Annotation is the Step 5 annotation (possibly empty).
	Annotation annotate.Annotation
	// Racist and Political report membership of the representative entry (or
	// any matched entry) in the tag groups of Section 4.2.1.
	Racist    bool
	Political bool
}

// Annotated reports whether the cluster received a KYM annotation.
func (c *ClusterInfo) Annotated() bool { return c.Annotation.Annotated() }

// EntryName returns the representative KYM entry name, or "" when the
// cluster is unannotated.
func (c *ClusterInfo) EntryName() string {
	if c.Annotation.Representative == nil {
		return ""
	}
	return c.Annotation.Representative.Name
}

// Features converts the cluster into the feature set consumed by the custom
// distance metric.
func (c *ClusterInfo) Features() distance.ClusterFeatures {
	return distance.ClusterFeatures{
		MedoidHash: c.MedoidHash,
		Memes:      c.Annotation.NamesByCategory(annotate.CategoryMeme),
		Cultures: append(c.Annotation.NamesByCategory(annotate.CategoryCulture),
			c.Annotation.NamesByCategory(annotate.CategorySubculture)...),
		People:    c.Annotation.NamesByCategory(annotate.CategoryPeople),
		Annotated: c.Annotated(),
	}
}

// CommunityClustering summarises Steps 2-3 for one fringe community
// (Table 2).
type CommunityClustering struct {
	Community      dataset.Community
	Images         int
	DistinctHashes int
	NoiseImages    int
	Clusters       int
	Annotated      int
}

// NoiseFraction returns the fraction of images labelled noise.
func (c CommunityClustering) NoiseFraction() float64 {
	if c.Images == 0 {
		return 0
	}
	return float64(c.NoiseImages) / float64(c.Images)
}

// Association links one post to an annotated cluster (Step 6).
type Association struct {
	// PostIndex indexes into the dataset's Posts slice.
	PostIndex int
	// ClusterID indexes into Result.Clusters.
	ClusterID int
	// Distance is the Hamming distance between the post image and the
	// cluster medoid.
	Distance int
}

// Result is the output of Steps 1-6.
type Result struct {
	// Config echoes the configuration used.
	Config Config
	// Dataset is the corpus the pipeline ran on.
	Dataset *dataset.Dataset
	// Site is the annotation site used for Step 5.
	Site *annotate.Site
	// PerCommunity holds the clustering summary of each fringe community.
	PerCommunity map[dataset.Community]CommunityClustering
	// Clusters lists every cluster across the fringe communities.
	Clusters []ClusterInfo
	// Associations links posts from all communities to annotated clusters,
	// sorted by post index.
	Associations []Association
	// Stats records the per-stage wall time and throughput of the run. It is
	// the only Result field that varies between runs on identical inputs.
	Stats RunStats
}

// AnnotatedClusters returns the indexes of clusters with a KYM annotation.
func (r *Result) AnnotatedClusters() []int {
	var out []int
	for i := range r.Clusters {
		if r.Clusters[i].Annotated() {
			out = append(out, i)
		}
	}
	return out
}

// communityPartial is the Steps 2-3 output for one fringe community before
// annotation and ID assignment. hashes/counts/dbres carry the DBSCAN output
// to the materialise phase; clusters is filled there.
type communityPartial struct {
	summary  CommunityClustering
	hashes   []phash.Hash
	counts   []int
	dbres    cluster.Result
	clusters []cluster.Cluster
}

// Run executes Steps 1-6 over a generated dataset and an annotation site.
// The site should already have screenshots removed (Step 4); use
// dataset.Dataset.Site(true) or a screenshot.Classifier-based filter.
//
// The stages run concurrently on Config.Workers workers, but the returned
// Result (clusters, IDs, associations, summaries) is identical for every
// worker count.
func Run(ds *dataset.Dataset, site *annotate.Site, cfg Config) (*Result, error) {
	if ds == nil || site == nil {
		return nil, errors.New("pipeline: nil dataset or site")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Config:       cfg,
		Dataset:      ds,
		Site:         site,
		PerCommunity: make(map[dataset.Community]CommunityClustering),
	}
	workers := parallel.Workers(cfg.Workers)
	res.Stats.Workers = workers
	start := time.Now()

	var fringe []dataset.Community
	for _, comm := range dataset.Communities() {
		if comm.Fringe() {
			fringe = append(fringe, comm)
		}
	}

	// Steps 2-3 run in two phases so total CPU-bound concurrency never
	// exceeds the configured worker bound while skewed community sizes
	// (/pol/ dominates) still saturate the pool. Phase one: DBSCAN every
	// fringe community concurrently (the fan-out itself is capped at
	// `workers`). Phase two: materialise medoids one community at a time,
	// each with the full budget. Partials are indexed by the fixed
	// dataset.Communities() order, so the merge below assigns the same
	// cluster IDs for any worker count.
	stageStart := time.Now()
	partials, err := parallel.MapErr(len(fringe), workers, func(i int) (communityPartial, error) {
		p, err := clusterCommunity(ds, fringe[i], cfg)
		if err != nil {
			return communityPartial{}, fmt.Errorf("pipeline: clustering %v: %w", fringe[i], err)
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	fringeImages, totalClusters := 0, 0
	for i := range partials {
		p := &partials[i]
		if len(p.hashes) > 0 {
			p.clusters = cluster.MaterializeParallel(p.hashes, p.counts, p.dbres, workers)
			p.summary.Clusters = len(p.clusters)
		}
		fringeImages += p.summary.Images
		totalClusters += len(p.clusters)
	}
	res.Stats.addStage(StageCluster, time.Since(stageStart), fringeImages)

	// Step 5: batch-annotate every medoid across all communities at once.
	stageStart = time.Now()
	medoids := make([]phash.Hash, 0, totalClusters)
	for _, p := range partials {
		for _, c := range p.clusters {
			medoids = append(medoids, c.MedoidHash)
		}
	}
	annotations := res.Site.AnnotateBatch(medoids, cfg.AnnotationThreshold, workers)

	// Merge in fixed community order, assigning stable cluster IDs.
	at := 0
	for pi, p := range partials {
		summary := p.summary
		for _, c := range p.clusters {
			ann := annotations[at]
			at++
			info := ClusterInfo{
				ID:             len(res.Clusters),
				Community:      fringe[pi],
				Label:          c.Label,
				MedoidHash:     c.MedoidHash,
				Images:         c.Size,
				DistinctHashes: len(c.Members),
				Annotation:     ann,
			}
			for _, m := range ann.Matches {
				if m.Entry.IsRacist() {
					info.Racist = true
				}
				if m.Entry.IsPolitical() {
					info.Political = true
				}
			}
			if ann.Annotated() {
				summary.Annotated++
			}
			res.Clusters = append(res.Clusters, info)
		}
		res.PerCommunity[fringe[pi]] = summary
	}
	res.Stats.addStage(StageAnnotate, time.Since(stageStart), totalClusters)

	// Step 6: associate posts from every community with annotated clusters.
	imagePosts := 0
	for i := range ds.Posts {
		if ds.Posts[i].HasImage {
			imagePosts++
		}
	}
	stageStart = time.Now()
	res.associate()
	res.Stats.addStage(StageAssociate, time.Since(stageStart), imagePosts)

	res.Stats.Total = time.Since(start)
	res.Stats.FringeImages = fringeImages
	res.Stats.TotalImages = imagePosts
	res.Stats.Clusters = len(res.Clusters)
	res.Stats.AnnotatedClusters = len(res.AnnotatedClusters())
	res.Stats.Associations = len(res.Associations)
	return res, nil
}

// clusterCommunity performs the first phase of Steps 2-3 for one fringe
// community: distinct-hash extraction and DBSCAN. Medoid materialisation
// happens afterwards in Run, one community at a time.
func clusterCommunity(ds *dataset.Dataset, comm dataset.Community, cfg Config) (communityPartial, error) {
	// Distinct hashes and their occurrence counts within this community.
	var hashes []phash.Hash
	var counts []int
	index := make(map[phash.Hash]int)
	images := 0
	for _, p := range ds.Posts {
		if !p.HasImage || p.Community != comm {
			continue
		}
		images++
		h := p.PHash()
		if at, ok := index[h]; ok {
			counts[at]++
		} else {
			index[h] = len(hashes)
			hashes = append(hashes, h)
			counts = append(counts, 1)
		}
	}

	summary := CommunityClustering{Community: comm, Images: images, DistinctHashes: len(hashes)}
	if len(hashes) == 0 {
		return communityPartial{summary: summary}, nil
	}

	dbres, err := cluster.DBSCAN(hashes, counts, cfg.Clustering)
	if err != nil {
		return communityPartial{}, err
	}
	// Noise measured in image occurrences, as in Table 2.
	for i, lbl := range dbres.Labels {
		if lbl == cluster.Noise {
			summary.NoiseImages += counts[i]
		}
	}
	return communityPartial{summary: summary, hashes: hashes, counts: counts, dbres: dbres}, nil
}

// associate implements Step 6: every image post from every community is
// matched against the medoids of the annotated clusters; the nearest medoid
// within the association threshold wins. Posts stream through the worker
// pool in contiguous chunks whose results are concatenated in chunk order,
// so Associations comes out sorted by post index without a sort.
func (r *Result) associate() {
	annotated := r.AnnotatedClusters()
	if len(annotated) == 0 {
		return
	}
	medoidIndex := phash.NewBKTree()
	for _, ci := range annotated {
		medoidIndex.Insert(r.Clusters[ci].MedoidHash, int64(ci))
	}

	posts := r.Dataset.Posts
	r.Associations = parallel.MapChunks(len(posts), r.Config.Workers, func(lo, hi int) []Association {
		var out []Association
		for i := lo; i < hi; i++ {
			p := posts[i]
			if !p.HasImage {
				continue
			}
			matches := medoidIndex.Radius(p.PHash(), r.Config.AssociationThreshold)
			if len(matches) == 0 {
				continue
			}
			// Deterministic winner: the minimum distance, with ties broken by
			// the lowest cluster ID across all matches at that distance, so the
			// BK-tree traversal order never shows through.
			bestDist := phash.MaxDistance + 1
			var bestID int64
			for _, m := range matches {
				for _, id := range m.IDs {
					if m.Distance < bestDist || (m.Distance == bestDist && id < bestID) {
						bestDist, bestID = m.Distance, id
					}
				}
			}
			out = append(out, Association{
				PostIndex: i,
				ClusterID: int(bestID),
				Distance:  bestDist,
			})
		}
		return out
	})
}

// HashImages is the Step 1 helper for callers that hold raw images rather
// than a generated dataset: it hashes every image concurrently and returns
// the hashes in input order. Nil images produce an error.
func HashImages(images []image.Image, workers int) ([]phash.Hash, error) {
	return parallel.MapErr(len(images), workers, func(i int) (phash.Hash, error) {
		h, err := phash.FromImage(images[i])
		if err != nil {
			return 0, fmt.Errorf("pipeline: hashing image %d: %w", i, err)
		}
		return h, nil
	})
}
