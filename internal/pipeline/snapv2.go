package pipeline

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"runtime"
	"unsafe"

	"github.com/memes-pipeline/memes/internal/annotate"
	"github.com/memes-pipeline/memes/internal/cluster"
	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/faults"
	"github.com/memes-pipeline/memes/internal/index"
	"github.com/memes-pipeline/memes/internal/parallel"
	"github.com/memes-pipeline/memes/internal/phash"
)

// MEMESNAP v2: the flat, offset-based snapshot layout the resident engine
// serves from directly. Where v1 is a varint stream that must be decoded
// byte by byte, v2 is a fixed-width header plus a directory of contiguous,
// 8-aligned sections — fixed-size table rows, one string arena addressed by
// offset+length spans, and the compiled flat BK-tree arrays — terminated by
// a CRC-32 trailer over everything before it. A loader validates the
// checksum and the directory, then serves the medoid index straight out of
// the mapped bytes: no per-cluster decode, no index rebuild, O(1) work in
// the corpus size beyond the eager cluster-table materialisation.
//
// Layout (all integers little-endian):
//
//	[0:8]    magic "MEMESNAP"
//	[8:12]   version  u32 = 2
//	[12:16]  flags    u32 = 0 (readers reject unknown flags)
//	[16:24]  fileSize u64 (total bytes including the 4-byte CRC trailer)
//	[24:64]  config echo: eps, minPts, annotationThreshold,
//	         associationThreshold, workers — five u64s
//	[64:72]  config index-strategy string span: offset u32 + length u32
//	         into the string arena
//	[72:232] section directory: 10 × (offset u64, count u64)
//	  0 communities   rows of 48 B: community, images, distinctHashes,
//	                  noiseImages, clusters, annotated — six u64s
//	  1 clusters      rows of 48 B: community u32, flags u32 (bit0 racist,
//	                  bit1 political), label i64, medoid u64, images u32,
//	                  distinctHashes u32, matchOff u32, matchN u32,
//	                  repIdx+1 u32 (0 = no representative), pad u32; the
//	                  cluster ID is the row index
//	  2 matches       rows of 24 B: entryIdx u32, matches u32,
//	                  matchFraction f64 bits, meanDistance f64 bits
//	  3 entries       rows of 8 B: nameOff u32, nameLen u32 — the distinct
//	                  annotation entries, resolved against the site once at
//	                  load; match and representative references index here
//	  4 strings       raw UTF-8 arena; count = byte length
//	  5 treeHashes    []u64, the flat BK-tree node hashes in BFS order
//	  6 treeChildStart []u32, len nodes+1
//	  7 treeDists     []u8, per-node edge distance from parent
//	  8 treeIDStart   []u32, len nodes+1
//	  9 treeIDs       []i64, the cluster IDs grouped by node
//	[fileSize-4:] CRC-32 (IEEE) of bytes [0:fileSize-4]
//
// Sections start 8-aligned (zero padding between them). Because mmap bases
// are page-aligned, 8-aligned file offsets land on 8-aligned addresses, so
// the []u64/[]u32 views over mapped memory are correctly aligned loads. On
// little-endian hosts those views are zero-copy casts of the file bytes; a
// big-endian or misaligned fallback decodes into fresh slices instead —
// same result, one extra copy.
//
// The flat tree is compiled fresh from the annotated clusters at save time
// (never taken from the resident index), so the emitted bytes are identical
// regardless of which index strategy or worker count produced the build —
// the same strategy-agnosticism v1 gets by not persisting an index at all.
// At load the serialized tree *is* the index for the default bktree
// strategy; other strategies rebuild from the cluster table as before.

const (
	// SnapshotV1 is the varint streaming layout (the original format).
	SnapshotV1 uint32 = 1
	// SnapshotV2 is the flat, mmap-able layout.
	SnapshotV2 uint32 = 2
	// SnapshotLatest is what Save emits by default.
	SnapshotLatest = SnapshotV2
)

const (
	v2DirOff       = 72
	v2SectionCount = 10
	v2HeaderSize   = v2DirOff + v2SectionCount*16 // 232
	v2TrailerSize  = 4

	v2SecCommunities = 0
	v2SecClusters    = 1
	v2SecMatches     = 2
	v2SecEntries     = 3
	v2SecStrings     = 4
	v2SecTreeHashes  = 5
	v2SecTreeChild   = 6
	v2SecTreeDists   = 7
	v2SecTreeIDStart = 8
	v2SecTreeIDs     = 9

	v2CommunityRowSize = 48
	v2ClusterRowSize   = 48
	v2MatchRowSize     = 24
	v2EntryRowSize     = 8
)

// v2SectionElemSize maps a section to its element width in bytes.
var v2SectionElemSize = [v2SectionCount]uint64{
	v2CommunityRowSize, v2ClusterRowSize, v2MatchRowSize, v2EntryRowSize, 1, 8, 4, 1, 4, 8,
}

// hostLittle reports whether the host is little-endian; only then can the
// typed views be zero-copy casts of the file bytes.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// align8 rounds n up to the next multiple of 8.
func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// v2Strings interns strings into one arena with first-occurrence
// deduplication, so the arena bytes are a pure function of the intern call
// sequence — a determinism requirement: saving the same build twice (or a
// loaded copy of it) must emit identical files.
type v2Strings struct {
	arena []byte
	spans map[string]uint64 // name → off<<32 | len
}

func (s *v2Strings) intern(v string) (off, n uint32) {
	if v == "" {
		return 0, 0
	}
	if packed, ok := s.spans[v]; ok {
		return uint32(packed >> 32), uint32(packed)
	}
	off = uint32(len(s.arena))
	n = uint32(len(v))
	s.arena = append(s.arena, v...)
	s.spans[v] = uint64(off)<<32 | uint64(n)
	return off, n
}

// saveV2 writes the flat snapshot layout. The file is assembled in one
// buffer: sizes are exact once the string arena and flat tree are built, so
// the single Write is also the only large allocation.
func (b *BuildResult) saveV2(w io.Writer) error {
	// Compile the flat tree from the annotated clusters in ID order — the
	// exact insert sequence buildIndex uses — never from the resident
	// index, so the bytes are strategy- and worker-agnostic.
	tree := phash.NewBKTree()
	for i := range b.Clusters {
		if b.Clusters[i].Annotated() {
			tree.Insert(b.Clusters[i].MedoidHash, int64(b.Clusters[i].ID))
		}
	}
	tree.Seal()
	hashes, childStart, dists, idStart, ids := tree.Flat().Data()
	if len(hashes) == 0 {
		// Canonical empty-tree encoding: every tree section has count 0.
		childStart, idStart = nil, nil
	}

	// Intern strings and the distinct-entry table in deterministic order:
	// config echo first, then every cluster's match entries and
	// representative in ID order, each distinct entry getting the next row
	// of the entries section on first occurrence.
	strs := &v2Strings{spans: make(map[string]uint64)}
	cfgOff, cfgLen := strs.intern(string(b.Config.Index))
	entryIdx := make(map[string]uint32)
	var entrySpans []uint64 // nameOff<<32 | nameLen, in first-occurrence order
	internEntry := func(name string) uint32 {
		if i, ok := entryIdx[name]; ok {
			return i
		}
		off, n := strs.intern(name)
		i := uint32(len(entrySpans))
		entrySpans = append(entrySpans, uint64(off)<<32|uint64(n))
		entryIdx[name] = i
		return i
	}
	totalMatches := 0
	for i := range b.Clusters {
		ci := &b.Clusters[i]
		totalMatches += len(ci.Annotation.Matches)
		for _, m := range ci.Annotation.Matches {
			internEntry(m.Entry.Name)
		}
		if ci.Annotation.Representative != nil {
			internEntry(ci.Annotation.Representative.Name)
		}
	}

	comms := b.Communities()

	// Lay the sections out: every offset 8-aligned, directory in file order.
	var offs, counts [v2SectionCount]uint64
	counts[v2SecCommunities] = uint64(len(comms))
	counts[v2SecClusters] = uint64(len(b.Clusters))
	counts[v2SecMatches] = uint64(totalMatches)
	counts[v2SecEntries] = uint64(len(entrySpans))
	counts[v2SecStrings] = uint64(len(strs.arena))
	counts[v2SecTreeHashes] = uint64(len(hashes))
	counts[v2SecTreeChild] = uint64(len(childStart))
	counts[v2SecTreeDists] = uint64(len(dists))
	counts[v2SecTreeIDStart] = uint64(len(idStart))
	counts[v2SecTreeIDs] = uint64(len(ids))
	off := uint64(v2HeaderSize)
	for s := 0; s < v2SectionCount; s++ {
		offs[s] = off
		off = align8(off + counts[s]*v2SectionElemSize[s])
	}
	fileSize := off + v2TrailerSize

	buf := make([]byte, fileSize)
	le := binary.LittleEndian
	copy(buf[0:8], snapshotMagic[:])
	le.PutUint32(buf[8:12], SnapshotV2)
	le.PutUint32(buf[12:16], 0) // flags
	le.PutUint64(buf[16:24], fileSize)
	le.PutUint64(buf[24:32], uint64(b.Config.Clustering.Eps))
	le.PutUint64(buf[32:40], uint64(b.Config.Clustering.MinPts))
	le.PutUint64(buf[40:48], uint64(b.Config.AnnotationThreshold))
	le.PutUint64(buf[48:56], uint64(b.Config.AssociationThreshold))
	le.PutUint64(buf[56:64], uint64(b.Config.Workers))
	le.PutUint32(buf[64:68], cfgOff)
	le.PutUint32(buf[68:72], cfgLen)
	for s := 0; s < v2SectionCount; s++ {
		le.PutUint64(buf[v2DirOff+s*16:], offs[s])
		le.PutUint64(buf[v2DirOff+s*16+8:], counts[s])
	}

	// Communities, in the fixed dataset.Communities() order.
	at := offs[v2SecCommunities]
	for _, c := range comms {
		s := b.PerCommunity[c]
		le.PutUint64(buf[at+0:], uint64(c))
		le.PutUint64(buf[at+8:], uint64(s.Images))
		le.PutUint64(buf[at+16:], uint64(s.DistinctHashes))
		le.PutUint64(buf[at+24:], uint64(s.NoiseImages))
		le.PutUint64(buf[at+32:], uint64(s.Clusters))
		le.PutUint64(buf[at+40:], uint64(s.Annotated))
		at += v2CommunityRowSize
	}

	// Clusters and their match rows. The cluster ID is implicit — row i is
	// cluster i, which the saver guarantees because Clusters[i].ID == i is a
	// build invariant (and the v1 loader checks it on ingest).
	at = offs[v2SecClusters]
	mat := offs[v2SecMatches]
	matchIdx := uint32(0)
	for i := range b.Clusters {
		ci := &b.Clusters[i]
		flags := uint32(0)
		if ci.Racist {
			flags |= 1
		}
		if ci.Political {
			flags |= 2
		}
		repIdxPlus1 := uint32(0)
		if ci.Annotation.Representative != nil {
			repIdxPlus1 = internEntry(ci.Annotation.Representative.Name) + 1
		}
		le.PutUint32(buf[at+0:], uint32(ci.Community))
		le.PutUint32(buf[at+4:], flags)
		le.PutUint64(buf[at+8:], uint64(int64(ci.Label)))
		le.PutUint64(buf[at+16:], uint64(ci.MedoidHash))
		le.PutUint32(buf[at+24:], uint32(ci.Images))
		le.PutUint32(buf[at+28:], uint32(ci.DistinctHashes))
		le.PutUint32(buf[at+32:], matchIdx)
		le.PutUint32(buf[at+36:], uint32(len(ci.Annotation.Matches)))
		le.PutUint32(buf[at+40:], repIdxPlus1)
		le.PutUint32(buf[at+44:], 0) // padding
		at += v2ClusterRowSize
		for _, m := range ci.Annotation.Matches {
			le.PutUint32(buf[mat+0:], internEntry(m.Entry.Name))
			le.PutUint32(buf[mat+4:], uint32(m.Matches))
			le.PutUint64(buf[mat+8:], math.Float64bits(m.MatchFraction))
			le.PutUint64(buf[mat+16:], math.Float64bits(m.MeanDistance))
			mat += v2MatchRowSize
			matchIdx++
		}
	}

	at = offs[v2SecEntries]
	for _, packed := range entrySpans {
		le.PutUint32(buf[at:], uint32(packed>>32))
		le.PutUint32(buf[at+4:], uint32(packed))
		at += v2EntryRowSize
	}

	copy(buf[offs[v2SecStrings]:], strs.arena)

	at = offs[v2SecTreeHashes]
	for _, h := range hashes {
		le.PutUint64(buf[at:], uint64(h))
		at += 8
	}
	at = offs[v2SecTreeChild]
	for _, v := range childStart {
		le.PutUint32(buf[at:], v)
		at += 4
	}
	copy(buf[offs[v2SecTreeDists]:], dists)
	at = offs[v2SecTreeIDStart]
	for _, v := range idStart {
		le.PutUint32(buf[at:], v)
		at += 4
	}
	at = offs[v2SecTreeIDs]
	for _, id := range ids {
		le.PutUint64(buf[at:], uint64(id))
		at += 8
	}

	le.PutUint32(buf[fileSize-v2TrailerSize:], crc32.ChecksumIEEE(buf[:fileSize-v2TrailerSize]))
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("pipeline: writing snapshot: %w", err)
	}
	return nil
}

// v2View is the validated window onto a v2 file's bytes.
type v2View struct {
	data   []byte
	offs   [v2SectionCount]uint64
	counts [v2SectionCount]uint64
}

func (v *v2View) section(s int) []byte {
	return v.data[v.offs[s] : v.offs[s]+v.counts[s]*v2SectionElemSize[s]]
}

// str resolves an offset+length span into the string arena. The bytes are
// copied into a Go string — only the tree arrays serve zero-copy.
func (v *v2View) str(off, n uint32) (string, error) {
	if n == 0 {
		return "", nil
	}
	arena := v.section(v2SecStrings)
	if uint64(off)+uint64(n) > uint64(len(arena)) {
		return "", fmt.Errorf("pipeline: snapshot string span [%d,%d) exceeds arena of %d bytes", off, off+n, len(arena))
	}
	return string(arena[off : off+n]), nil
}

// v2Open validates the byte-level envelope of a v2 snapshot — length,
// magic, version, checksum, flags, directory bounds and alignment — and
// returns the section view. Everything semantic comes after.
func v2Open(data []byte) (*v2View, error) {
	if len(data) < v2HeaderSize+v2TrailerSize {
		return nil, fmt.Errorf("pipeline: snapshot truncated at %d bytes: checksum trailer unreachable", len(data))
	}
	if [8]byte(data[:8]) != snapshotMagic {
		return nil, errors.New("pipeline: not a snapshot stream (bad magic)")
	}
	le := binary.LittleEndian
	if v := le.Uint32(data[8:12]); v != SnapshotV2 {
		return nil, fmt.Errorf("pipeline: unsupported snapshot version %d (supported: %d, %d)", v, SnapshotV1, SnapshotV2)
	}
	fileSize := le.Uint64(data[16:24])
	if fileSize != uint64(len(data)) {
		return nil, fmt.Errorf("pipeline: snapshot truncated or oversized: header says %d bytes, got %d (checksum trailer unverifiable)", fileSize, len(data))
	}
	want := le.Uint32(data[fileSize-v2TrailerSize:])
	if got := crc32.ChecksumIEEE(data[:fileSize-v2TrailerSize]); got != want {
		return nil, fmt.Errorf("pipeline: snapshot checksum mismatch (stored %08x, computed %08x): stream corrupt", want, got)
	}
	if flags := le.Uint32(data[12:16]); flags != 0 {
		return nil, fmt.Errorf("pipeline: snapshot carries unsupported flags %#x", flags)
	}
	v := &v2View{data: data}
	limit := fileSize - v2TrailerSize
	prevEnd := uint64(v2HeaderSize)
	for s := 0; s < v2SectionCount; s++ {
		off := le.Uint64(data[v2DirOff+s*16:])
		count := le.Uint64(data[v2DirOff+s*16+8:])
		if off%8 != 0 || off < prevEnd || off > limit {
			return nil, fmt.Errorf("pipeline: snapshot section %d misplaced at offset %d", s, off)
		}
		size := count * v2SectionElemSize[s]
		if count > limit || size > limit-off {
			return nil, fmt.Errorf("pipeline: snapshot section %d (%d elements) exceeds file bounds", s, count)
		}
		v.offs[s], v.counts[s] = off, count
		prevEnd = off + size
	}
	return v, nil
}

// The typed views: zero-copy unsafe casts when the host is little-endian
// and the base pointer is 8-aligned (always true for mmap'd pages and, in
// practice, for heap buffers), otherwise an explicit decode into a fresh
// slice. Both produce identical values; only the copy differs.

func v2U32s(b []byte, count uint64) []uint32 {
	if count == 0 {
		return nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), count)
	}
	out := make([]uint32, count)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

func v2Hashes(b []byte, count uint64) []phash.Hash {
	if count == 0 {
		return nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*phash.Hash)(unsafe.Pointer(&b[0])), count)
	}
	out := make([]phash.Hash, count)
	for i := range out {
		out[i] = phash.Hash(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func v2I64s(b []byte, count uint64) []int64 {
	if count == 0 {
		return nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), count)
	}
	out := make([]int64, count)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// loadBuildV2 reconstitutes a BuildResult from v2 snapshot bytes. data may
// be mmap'd file memory: the flat BK-tree serves directly from it (the
// caller keeps the mapping alive for the BuildResult's lifetime), while
// strings and the cluster table are materialised eagerly — they are small,
// and resolving annotation entries against the site must fail loudly at
// load time, not first query.
func loadBuildV2(data []byte, site *annotate.Site, ds *dataset.Dataset, reconfig func(*Config), progress ProgressFunc) (*BuildResult, error) {
	if site == nil {
		return nil, errors.New("pipeline: nil annotation site")
	}
	start := now()
	v, err := v2Open(data)
	if err != nil {
		return nil, err
	}
	le := binary.LittleEndian

	b := &BuildResult{
		Site:         site,
		Dataset:      ds,
		PerCommunity: make(map[dataset.Community]CommunityClustering, v.counts[v2SecCommunities]),
		snapVersion:  SnapshotV2,
	}
	idxStr, err := v.str(le.Uint32(data[64:68]), le.Uint32(data[68:72]))
	if err != nil {
		return nil, err
	}
	b.Config = Config{
		Clustering: cluster.DBSCANConfig{
			Eps:    int(le.Uint64(data[24:32])),
			MinPts: int(le.Uint64(data[32:40])),
		},
		AnnotationThreshold:  int(le.Uint64(data[40:48])),
		AssociationThreshold: int(le.Uint64(data[48:56])),
		Workers:              int(le.Uint64(data[56:64])),
		Index:                index.Strategy(idxStr),
	}

	// Communities.
	comms := v.section(v2SecCommunities)
	for i := uint64(0); i < v.counts[v2SecCommunities]; i++ {
		row := comms[i*v2CommunityRowSize:]
		c := dataset.Community(le.Uint64(row[0:8]))
		if !c.Valid() {
			return nil, fmt.Errorf("pipeline: snapshot names invalid community %d", int(c))
		}
		b.PerCommunity[c] = CommunityClustering{
			Community:      c,
			Images:         int(le.Uint64(row[8:16])),
			DistinctHashes: int(le.Uint64(row[16:24])),
			NoiseImages:    int(le.Uint64(row[24:32])),
			Clusters:       int(le.Uint64(row[32:40])),
			Annotated:      int(le.Uint64(row[40:48])),
		}
	}

	// Distinct annotation entries, resolved against the site exactly once
	// each — every match and representative reference below is then a plain
	// slice index into this table.
	nEntries := v.counts[v2SecEntries]
	entryRows := v.section(v2SecEntries)
	entries := make([]*annotate.Entry, nEntries)
	for i := uint64(0); i < nEntries; i++ {
		row := entryRows[i*v2EntryRowSize:]
		name, err := v.str(le.Uint32(row[0:4]), le.Uint32(row[4:8]))
		if err != nil {
			return nil, err
		}
		e := site.Entry(name)
		if e == nil {
			return nil, fmt.Errorf("pipeline: snapshot references entry %q not on the annotation site (wrong site, or filtered differently than at build time)", name)
		}
		entries[i] = e
	}

	// Clusters: one eager pass over the fixed-width rows. Every cluster's
	// matches subslice one shared arena, so the load cost is two table
	// allocations plus the entry table above.
	nClusters := v.counts[v2SecClusters]
	nMatches := v.counts[v2SecMatches]
	clusterRows := v.section(v2SecClusters)
	matchRows := v.section(v2SecMatches)
	b.Clusters = make([]ClusterInfo, nClusters)
	matchArena := make([]annotate.EntryMatch, nMatches)
	for i := uint64(0); i < nClusters; i++ {
		row := clusterRows[i*v2ClusterRowSize:]
		ci := &b.Clusters[i]
		ci.ID = int(i)
		ci.Community = dataset.Community(le.Uint32(row[0:4]))
		flags := le.Uint32(row[4:8])
		ci.Racist = flags&1 != 0
		ci.Political = flags&2 != 0
		ci.Label = int(int64(le.Uint64(row[8:16])))
		ci.MedoidHash = phash.Hash(le.Uint64(row[16:24]))
		ci.Images = int(le.Uint32(row[24:28]))
		ci.DistinctHashes = int(le.Uint32(row[28:32]))
		mOff := uint64(le.Uint32(row[32:36]))
		mN := uint64(le.Uint32(row[36:40]))
		if mOff+mN > nMatches {
			return nil, fmt.Errorf("pipeline: snapshot cluster %d match span [%d,%d) exceeds %d match rows", i, mOff, mOff+mN, nMatches)
		}
		for j := uint64(0); j < mN; j++ {
			mrow := matchRows[(mOff+j)*v2MatchRowSize:]
			em := &matchArena[mOff+j]
			idx := uint64(le.Uint32(mrow[0:4]))
			if idx >= nEntries {
				return nil, fmt.Errorf("pipeline: snapshot match references entry row %d of %d", idx, nEntries)
			}
			em.Entry = entries[idx]
			em.Matches = int(le.Uint32(mrow[4:8]))
			em.MatchFraction = math.Float64frombits(le.Uint64(mrow[8:16]))
			em.MeanDistance = math.Float64frombits(le.Uint64(mrow[16:24]))
		}
		if mN > 0 {
			ci.Annotation.Matches = matchArena[mOff : mOff+mN : mOff+mN]
		}
		if repIdxPlus1 := uint64(le.Uint32(row[40:44])); repIdxPlus1 > 0 {
			if repIdxPlus1 > nEntries {
				return nil, fmt.Errorf("pipeline: snapshot cluster %d representative references entry row %d of %d", i, repIdxPlus1-1, nEntries)
			}
			ci.Annotation.Representative = entries[repIdxPlus1-1]
		}
	}

	if reconfig != nil {
		reconfig(&b.Config)
	}
	if err := b.Config.Validate(); err != nil {
		return nil, err
	}
	b.progress = progress
	b.buildStats.Workers = parallel.Workers(b.Config.Workers)

	// The load stage. For the default bktree strategy the serialized flat
	// tree IS the index — reconstituted as views over the file bytes, no
	// rebuild. Other strategies rebuild from the cluster table exactly as
	// v1 does.
	em := emitter{stats: &b.buildStats, progress: progress}
	stageStart := em.start(StageLoad)
	annotated := 0
	if b.Config.Index == "" || b.Config.Index == index.BKTree {
		flat, err := phash.NewFlatBK(
			v2Hashes(v.section(v2SecTreeHashes), v.counts[v2SecTreeHashes]),
			v2U32s(v.section(v2SecTreeChild), v.counts[v2SecTreeChild]),
			v.section(v2SecTreeDists),
			v2U32s(v.section(v2SecTreeIDStart), v.counts[v2SecTreeIDStart]),
			v2I64s(v.section(v2SecTreeIDs), v.counts[v2SecTreeIDs]),
		)
		if err != nil {
			return nil, err
		}
		b.setIndex(phash.NewSealedBKTree(flat))
		annotated = flat.Len()
	} else {
		if annotated, err = b.buildIndex(); err != nil {
			return nil, err
		}
	}
	em.done(StageLoad, stageStart, len(b.Clusters))

	fringeImages := 0
	for _, c := range b.Communities() {
		fringeImages += b.PerCommunity[c].Images
	}
	b.buildStats.FringeImages = fringeImages
	b.buildStats.Clusters = len(b.Clusters)
	b.buildStats.AnnotatedClusters = annotated
	b.buildWall = since(start)
	return b, nil
}

// LoadBuildFile reconstitutes a BuildResult from a snapshot file. For a v2
// snapshot the file is mmap'd read-only and the engine serves straight from
// the mapped pages — load-to-first-query cost is the envelope validation
// plus the (small) cluster-table materialisation, independent of how the
// page cache fills in the tree behind it. When mmap is unavailable the
// whole file is read in one call instead; v1 snapshots stream through
// LoadBuild. The mapping is released when the BuildResult is garbage
// collected, so callers must not retain phash-level match slices beyond the
// engine's lifetime (the exported query surface copies everything it
// returns).
func LoadBuildFile(path string, site *annotate.Site, ds *dataset.Dataset, reconfig func(*Config), progress ProgressFunc) (*BuildResult, error) {
	if err := faults.Inject("pipeline.load"); err != nil {
		return nil, fmt.Errorf("pipeline: loading snapshot: %w", err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pipeline: opening snapshot: %w", err)
	}
	defer f.Close()

	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("pipeline: stating snapshot: %w", err)
	}
	size := st.Size()
	if size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("pipeline: snapshot of %d bytes exceeds address space", size)
	}
	if data, closer, err := mmapFile(f, int(size)); err == nil && size >= 12 {
		// Sniff the version from the mapped header: only v2 serves from the
		// mapping; anything else (v1, foreign, short) streams through
		// LoadBuild for its usual diagnostics.
		if [8]byte(data[:8]) != snapshotMagic ||
			binary.LittleEndian.Uint32(data[8:12]) != SnapshotV2 {
			_ = closer()
			return LoadBuild(f, site, ds, reconfig, progress)
		}
		b, lerr := loadBuildV2(data, site, ds, reconfig, progress)
		if lerr != nil {
			_ = closer()
			return nil, lerr
		}
		// The flat index aliases the mapping: unmap via Close, or — since
		// most callers never close an engine — when the garbage collector
		// finds the BuildResult unreachable.
		b.closer = closer
		runtime.SetFinalizer(b, func(b *BuildResult) { _ = b.Close() })
		return b, nil
	} else if err == nil {
		_ = closer()
		return LoadBuild(f, site, ds, reconfig, progress)
	}

	// mmap unavailable (platform stub, exotic filesystem, empty file): one
	// whole-file read preserves the O(1)-decode property for v2, just with
	// a copy; everything else streams through LoadBuild.
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pipeline: reading snapshot: %w", err)
	}
	if len(data) >= 12 && [8]byte(data[:8]) == snapshotMagic &&
		binary.LittleEndian.Uint32(data[8:12]) == SnapshotV2 {
		return loadBuildV2(data, site, ds, reconfig, progress)
	}
	return LoadBuild(bytes.NewReader(data), site, ds, reconfig, progress)
}
