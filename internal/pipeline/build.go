package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/memes-pipeline/memes/internal/annotate"
	"github.com/memes-pipeline/memes/internal/cluster"
	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/index"
	"github.com/memes-pipeline/memes/internal/parallel"
	"github.com/memes-pipeline/memes/internal/phash"
)

// BuildResult is the resident output of the build phase (Steps 2-5): the
// per-community clusterings, the annotated clusters, and the read-only
// medoid index over annotated-cluster medoids that Step 6 queries. Build it
// once, then serve any number of Associate / Match queries against it — the
// build/serve split the paper implies when it runs Step 6 over 160M images
// against a fixed set of annotated clusters. The index strategy is selected
// by Config.Index (see internal/index); every strategy serves identical
// results.
//
// A BuildResult is immutable after Build returns and safe for concurrent use
// by multiple goroutines. Save persists it; LoadBuild reconstitutes it
// without re-running Steps 2-5.
type BuildResult struct {
	// Config echoes the configuration used.
	Config Config
	// Dataset is the corpus the build ran on; nil for a BuildResult loaded
	// from a snapshot without a bound dataset.
	Dataset *dataset.Dataset
	// Site is the annotation site used for Step 5.
	Site *annotate.Site
	// PerCommunity holds the clustering summary of each fringe community.
	PerCommunity map[dataset.Community]CommunityClustering
	// Clusters lists every cluster across the fringe communities; Clusters[i].ID == i.
	Clusters []ClusterInfo

	medoids     index.MedoidIndex    // index over annotated-cluster medoids, read-only
	sq          index.ScratchQuerier // medoids, when it serves the zero-alloc scratch path
	scratch     *sync.Pool           // *phash.Scratch per querying goroutine
	buildStats  RunStats             // cluster + annotate (or load) stage records
	buildWall   time.Duration        // end-to-end wall time of Build (or LoadBuild)
	progress    ProgressFunc         // forwarded to Result's associate stage
	closer      func() error         // releases the mmap backing a v2 load; nil otherwise
	snapVersion uint32               // MEMESNAP version loaded from; 0 for in-memory builds
}

// SnapshotVersion reports the MEMESNAP format version this BuildResult was
// reconstituted from: 1 for the varint streaming layout, 2 for the flat
// mmap layout, and 0 for a result built in memory rather than loaded from a
// snapshot. Serving exposes it as a gauge so operators can tell which
// artifact generation a replica is running.
func (b *BuildResult) SnapshotVersion() uint32 { return b.snapVersion }

// Close releases the memory mapping backing a BuildResult loaded from a v2
// snapshot file. After Close the flat index aliases unmapped memory, so the
// caller must have quiesced every query first. Close is idempotent, and
// calling it is optional: an unclosed mapping is released by the garbage
// collector once the BuildResult is unreachable. Builds and non-mmap loads
// have nothing to release; Close on them is a no-op.
func (b *BuildResult) Close() error {
	c := b.closer
	if c == nil {
		return nil
	}
	b.closer = nil
	runtime.SetFinalizer(b, nil)
	return c()
}

// Match is the outcome of a single-hash lookup against the annotated
// clusters: the winning cluster and its Hamming distance from the query.
type Match struct {
	// ClusterID indexes into BuildResult.Clusters (and Result.Clusters).
	ClusterID int
	// Distance is the Hamming distance between the query hash and the
	// cluster medoid.
	Distance int
}

// Build executes the expensive offline phase (Steps 2-5) over a dataset and
// an annotation site: per-community DBSCAN clustering, medoid
// materialisation, and medoid annotation, plus construction of the Step 6
// medoid index. The stages run concurrently on Config.Workers workers, but
// the returned BuildResult (clusters, IDs, summaries) is identical for every
// worker count.
//
// Build stops promptly when ctx is cancelled and returns the context error;
// progress (optional) observes stage start/completion events.
func Build(ctx context.Context, ds *dataset.Dataset, site *annotate.Site, cfg Config, progress ProgressFunc) (*BuildResult, error) {
	if ds == nil || site == nil {
		return nil, errors.New("pipeline: nil dataset or site")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	b := &BuildResult{
		Config:       cfg,
		Dataset:      ds,
		Site:         site,
		PerCommunity: make(map[dataset.Community]CommunityClustering),
		progress:     progress,
	}
	workers := parallel.Workers(cfg.Workers)
	b.buildStats.Workers = workers
	start := now()
	em := emitter{stats: &b.buildStats, progress: progress}

	var fringe []dataset.Community
	for _, comm := range dataset.Communities() {
		if comm.Fringe() {
			fringe = append(fringe, comm)
		}
	}

	// Steps 2-3 run in two phases so total CPU-bound concurrency never
	// exceeds the configured worker bound while skewed community sizes
	// (/pol/ dominates) still saturate the pool. Phase one: DBSCAN every
	// fringe community concurrently (the fan-out itself is capped at
	// `workers`, and each community's parallel neighbourhood scan gets
	// workers/concurrent of the budget — floor division, mirroring the
	// medoid budget split below, so the total stays within the bound at
	// the cost of idling the remainder). Phase two: materialise medoids
	// one community at a time, each
	// with the full budget. Partials are indexed by the fixed
	// dataset.Communities() order, so the merge below assigns the same
	// cluster IDs for any worker count.
	stageStart := em.start(StageCluster)
	dbscanBudget := 1
	if concurrent := min(workers, len(fringe)); concurrent > 0 {
		if dbscanBudget = workers / concurrent; dbscanBudget < 1 {
			dbscanBudget = 1
		}
	}
	partials, err := parallel.MapErrCtx(ctx, len(fringe), workers, func(i int) (communityPartial, error) {
		p, err := clusterCommunity(ctx, ds, fringe[i], cfg, dbscanBudget)
		if err != nil {
			return communityPartial{}, fmt.Errorf("pipeline: clustering %v: %w", fringe[i], err)
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	fringeImages, totalClusters := 0, 0
	for i := range partials {
		p := &partials[i]
		if len(p.hashes) > 0 {
			clusters, err := cluster.MaterializeParallelCtx(ctx, p.hashes, p.counts, p.dbres, workers)
			if err != nil {
				return nil, err
			}
			p.clusters = clusters
			p.summary.Clusters = len(p.clusters)
		}
		fringeImages += p.summary.Images
		totalClusters += len(p.clusters)
	}
	em.done(StageCluster, stageStart, fringeImages)

	// The neighbourhood-scan throughput — the paper's GPU pairwise step —
	// is surfaced as its own stage record so the perf trajectory tracks it
	// separately from medoid materialisation.
	var neighDur time.Duration
	neighPoints := 0
	for i := range partials {
		neighDur += partials[i].dbres.Neighbourhoods.Duration
		neighPoints += partials[i].dbres.Neighbourhoods.Points
	}
	em.record(StageNeighbours, neighDur, neighPoints)

	// Step 5 plus the merge and index build, shared with the incremental
	// rebuild path so both assign byte-identical IDs and annotations.
	annotated, err := assemble(ctx, b, fringe, partials, workers, em)
	if err != nil {
		return nil, err
	}

	b.buildStats.FringeImages = fringeImages
	b.buildStats.Clusters = len(b.Clusters)
	b.buildStats.AnnotatedClusters = annotated
	b.buildWall = since(start)
	return b, nil
}

// assemble runs Step 5 (batch medoid annotation) over fully materialised
// partials, merges them into b in fixed community order — assigning stable
// sequential cluster IDs — and builds the Step 6 index. It returns the
// annotated-cluster count. Shared by Build and Incremental.RebuildCtx: the
// streaming path's determinism guarantee (bitwise-identical clusters to a
// from-scratch build over the union corpus) holds by construction because
// both paths run this exact code over identical partials.
func assemble(ctx context.Context, b *BuildResult, fringe []dataset.Community, partials []communityPartial, workers int, em emitter) (int, error) {
	totalClusters := 0
	for i := range partials {
		totalClusters += len(partials[i].clusters)
	}

	// Step 5: batch-annotate every medoid across all communities at once.
	stageStart := em.start(StageAnnotate)
	medoids := make([]phash.Hash, 0, totalClusters)
	for _, p := range partials {
		for _, c := range p.clusters {
			medoids = append(medoids, c.MedoidHash)
		}
	}
	annotations, err := b.Site.AnnotateBatchCtx(ctx, medoids, b.Config.AnnotationThreshold, workers)
	if err != nil {
		return 0, err
	}

	// Merge in fixed community order, assigning stable cluster IDs.
	at := 0
	for pi, p := range partials {
		summary := p.summary
		for _, c := range p.clusters {
			ann := annotations[at]
			at++
			info := ClusterInfo{
				ID:             len(b.Clusters),
				Community:      fringe[pi],
				Label:          c.Label,
				MedoidHash:     c.MedoidHash,
				Images:         c.Size,
				DistinctHashes: len(c.Members),
				Annotation:     ann,
			}
			for _, m := range ann.Matches {
				if m.Entry.IsRacist() {
					info.Racist = true
				}
				if m.Entry.IsPolitical() {
					info.Political = true
				}
			}
			if ann.Annotated() {
				summary.Annotated++
			}
			b.Clusters = append(b.Clusters, info)
		}
		b.PerCommunity[fringe[pi]] = summary
	}
	em.done(StageAnnotate, stageStart, totalClusters)

	// The Step 6 index, built once and queried by every Associate / Match.
	return b.buildIndex()
}

// buildIndex (re)builds the Step 6 medoid index from the annotated clusters
// using the configured strategy, and returns the annotated-cluster count. It
// is shared by Build and LoadBuild — the index is always reconstructed from
// medoid hashes, never persisted, so snapshots stay strategy-agnostic.
func (b *BuildResult) buildIndex() (int, error) {
	idx, err := index.New(b.Config.Index)
	if err != nil {
		return 0, err
	}
	// One Workers knob governs every stage: indexes with internal per-query
	// fan-out (sharded) inherit the same bound as the post-batch workers.
	if wb, ok := idx.(index.WorkerBound); ok {
		wb.SetWorkers(b.Config.Workers)
	}
	annotated := 0
	for i := range b.Clusters {
		if b.Clusters[i].Annotated() {
			idx.Insert(b.Clusters[i].MedoidHash, int64(b.Clusters[i].ID))
			annotated++
		}
	}
	b.setIndex(idx)
	return annotated, nil
}

// setIndex installs a fully populated medoid index: strategies that support
// it are sealed into their flat, immutable form, and the zero-allocation
// scratch query path is cached so every Match/Associate afterwards reuses
// pooled per-goroutine scratch instead of allocating candidate stacks and
// result buffers per query.
func (b *BuildResult) setIndex(idx index.MedoidIndex) {
	if s, ok := idx.(index.Sealer); ok {
		s.Seal()
	}
	b.medoids = idx
	b.sq, _ = idx.(index.ScratchQuerier)
	b.scratch = &sync.Pool{New: func() any { return new(phash.Scratch) }}
}

// Stats returns the build-phase stage records (cluster and annotate); the
// associate stage is recorded per materialisation by Result.
func (b *BuildResult) Stats() RunStats {
	s := b.buildStats
	s.Stages = append([]StageStats(nil), b.buildStats.Stages...)
	s.Total = b.buildWall
	return s
}

// Communities returns the fringe communities present in PerCommunity in the
// fixed dataset.Communities() order.
func (b *BuildResult) Communities() []dataset.Community {
	return communitiesOf(b.PerCommunity)
}

// Associate runs Step 6 over an arbitrary batch of posts — they need not be
// part of the dataset the build ran on. Every image post is matched against
// the annotated-cluster medoid index; the nearest medoid within the
// association threshold wins, with ties broken by the lowest cluster ID.
// PostIndex in the returned associations indexes into posts, which come out
// sorted by that index.
//
// Associate is goroutine-safe (the medoid index is read-only) and stops
// promptly with ctx.Err() when ctx is cancelled. The result is identical for
// any worker count.
func (b *BuildResult) Associate(ctx context.Context, posts []dataset.Post) ([]Association, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if b.medoids.Len() == 0 {
		return nil, ctx.Err()
	}
	return parallel.MapChunksCtx(ctx, len(posts), b.Config.Workers, func(lo, hi int) []Association {
		var out []Association
		for i := lo; i < hi; i++ {
			p := &posts[i]
			if !p.HasImage {
				continue
			}
			// The chunk fan-out already honours ctx; the per-hash index
			// probe runs uncancelled so a chunk's associations are all-or-
			// nothing.
			if m, ok := b.match(p.PHash()); ok {
				out = append(out, Association{PostIndex: i, ClusterID: m.ClusterID, Distance: m.Distance})
			}
		}
		return out
	})
}

// AssociateAppend is Associate for resident serving loops: it appends the
// associations for posts to out and returns the extended slice, so a caller
// that reuses its buffer (out = out[:0] between batches) pays zero
// steady-state allocations — the batch result, the per-query candidate
// stacks, and the radius buffers all live in reused memory. The produced
// associations are bitwise identical to Associate's for the same posts.
//
// The batch runs on the calling goroutine (serving layers batch many small
// requests, so parallelism across batches beats fan-out within one); ctx is
// checked on entry and every 1024 posts.
//
//memes:noalloc
func (b *BuildResult) AssociateAppend(ctx context.Context, posts []dataset.Post, out []Association) ([]Association, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	if b.medoids.Len() == 0 {
		return out, nil
	}
	for i := range posts {
		if i&1023 == 1023 {
			if err := ctx.Err(); err != nil {
				return out, err
			}
		}
		p := &posts[i]
		if !p.HasImage {
			continue
		}
		if m, ok := b.match(p.PHash()); ok {
			out = append(out, Association{PostIndex: i, ClusterID: m.ClusterID, Distance: m.Distance})
		}
	}
	return out, nil
}

// Match looks a single perceptual hash up against the annotated clusters
// (Step 6 for one image). The boolean is false when no annotated medoid lies
// within the association threshold. Goroutine-safe.
func (b *BuildResult) Match(h phash.Hash) (Match, bool) { return b.match(h) }

// MatchCtx is Match honouring ctx cancellation. Sealed indexes serve the
// zero-allocation scratch path with a single ctx check on entry (a sealed
// radius probe is short and uncancellable by construction); unsealed
// strategies with internal query fan-out (sharded, multi-index) stop early
// and return ctx.Err(). Goroutine-safe.
func (b *BuildResult) MatchCtx(ctx context.Context, h phash.Hash) (Match, bool, error) {
	if b.sq != nil {
		if err := ctx.Err(); err != nil {
			return Match{}, false, err
		}
		m, ok := b.match(h)
		return m, ok, nil
	}
	var matches []phash.Match
	if cq, ok := b.medoids.(index.CtxQuerier); ok {
		var err error
		matches, err = cq.RadiusCtx(ctx, h, b.Config.AssociationThreshold)
		if err != nil {
			return Match{}, false, err
		}
	} else {
		if err := ctx.Err(); err != nil {
			return Match{}, false, err
		}
		matches = b.medoids.Radius(h, b.Config.AssociationThreshold)
	}
	m, ok := pickMatch(matches)
	return m, ok, nil
}

// match picks the deterministic winner among the radius matches: the
// minimum distance, with ties broken by the lowest cluster ID across all
// matches at that distance, so the index's traversal order never shows
// through — a hard requirement for every strategy to serve bitwise-equal
// results. When the index serves the scratch path, the whole probe runs
// through pooled per-goroutine scratch and allocates nothing in steady
// state; pickMatch only reads the scratch-backed slice, which is returned
// to the pool before the reduced answer escapes.
//
//memes:noalloc
func (b *BuildResult) match(h phash.Hash) (Match, bool) {
	if b.sq != nil {
		sc := b.scratch.Get().(*phash.Scratch)
		m, ok := pickMatch(b.sq.RadiusScratch(h, b.Config.AssociationThreshold, sc))
		b.scratch.Put(sc)
		return m, ok
	}
	return pickMatch(b.medoids.Radius(h, b.Config.AssociationThreshold))
}

// pickMatch reduces a radius match set to the deterministic winner.
func pickMatch(matches []phash.Match) (Match, bool) {
	if len(matches) == 0 {
		return Match{}, false
	}
	bestDist := phash.MaxDistance + 1
	var bestID int64
	for _, m := range matches {
		for _, id := range m.IDs {
			if m.Distance < bestDist || (m.Distance == bestDist && id < bestID) {
				bestDist, bestID = m.Distance, id
			}
		}
	}
	return Match{ClusterID: int(bestID), Distance: bestDist}, true
}

// Result materialises the legacy one-shot Result from the build: it runs
// Associate over the full build dataset (Step 6) and merges the build-phase
// stats with the associate stage timing, so downstream consumers
// (analysis.NewReport, hawkes influence estimation) keep working unchanged.
// The Result shares the build's clusters and summaries; treat both as
// read-only.
func (b *BuildResult) Result(ctx context.Context) (*Result, error) {
	if b.Dataset == nil {
		return nil, errors.New("pipeline: build has no dataset bound; load the snapshot with a dataset to materialise a Result")
	}
	return b.materialise(ctx, b.Dataset)
}

// ResultFor materialises a Result whose associations cover an arbitrary post
// slice instead of the build corpus. This is the replay primitive behind
// `memereport -replay`: posts reconstructed from a served decision log are
// re-associated against the resident clusters, so the paper's tables
// regenerate from real served traffic. The returned Result carries a shallow
// copy of the build dataset with Posts swapped for the given slice; the
// cluster inventory and per-community summaries remain the build's — the
// artifact is fixed, only the traffic varies. A bound dataset is still
// required: it supplies the corpus observation window (Start/End) and the
// ground-truth tables the report renders against.
func (b *BuildResult) ResultFor(ctx context.Context, posts []dataset.Post) (*Result, error) {
	if b.Dataset == nil {
		return nil, errors.New("pipeline: build has no dataset bound; replay needs the corpus window and ground-truth tables")
	}
	ds := *b.Dataset
	ds.Posts = posts
	return b.materialise(ctx, &ds)
}

// materialise runs Step 6 over ds.Posts and assembles the Result shared by
// Result (full corpus) and ResultFor (replayed traffic).
func (b *BuildResult) materialise(ctx context.Context, ds *dataset.Dataset) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := now()
	res := &Result{
		Config:       b.Config,
		Dataset:      ds,
		Site:         b.Site,
		PerCommunity: b.PerCommunity,
		Clusters:     b.Clusters,
		Stats:        b.buildStats,
	}
	res.Stats.Stages = append([]StageStats(nil), b.buildStats.Stages...)
	em := emitter{stats: &res.Stats, progress: b.progress}

	imagePosts := 0
	for i := range ds.Posts {
		if ds.Posts[i].HasImage {
			imagePosts++
		}
	}
	stageStart := em.start(StageAssociate)
	assoc, err := b.Associate(ctx, ds.Posts)
	if err != nil {
		return nil, err
	}
	res.Associations = assoc
	em.done(StageAssociate, stageStart, imagePosts)

	res.Stats.Total = b.buildWall + since(start)
	res.Stats.TotalImages = imagePosts
	res.Stats.Associations = len(assoc)
	return res, nil
}

// communitiesOf returns the fringe communities present in the summary map in
// the fixed dataset.Communities() order, so ranging over per-community
// summaries is reproducible.
func communitiesOf(per map[dataset.Community]CommunityClustering) []dataset.Community {
	var out []dataset.Community
	for _, c := range dataset.Communities() {
		if _, ok := per[c]; ok {
			out = append(out, c)
		}
	}
	return out
}
