package pipeline

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/memes-pipeline/memes/internal/annotate"
	"github.com/memes-pipeline/memes/internal/cluster"
	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/parallel"
)

// Incremental maintains the streaming counterpart of Build: per-fringe-
// community cluster.Incremental states seeded from a base corpus, a growing
// union post slice, and the cached per-community partials of the previous
// rebuild. AddPosts absorbs new posts; RebuildCtx re-clusters only the
// communities those posts touched and reassembles a full BuildResult.
//
// The determinism contract is the whole point: after any sequence of
// AddPosts/RebuildCtx calls, the returned BuildResult is bitwise-identical
// (as pinned by Save bytes) to Build over the union corpus in ingest order,
// for every worker count and index strategy. It holds because community
// states replay posts in the same first-appearance order clusterCommunity
// uses, cluster.Incremental produces labels bitwise-equal to a batch DBSCAN,
// and the assemble step is literally shared with Build.
//
// Incremental is not goroutine-safe; callers serialise access (the ingest
// subsystem funnels all mutations through one re-cluster goroutine).
type Incremental struct {
	cfg    Config
	base   *dataset.Dataset
	site   *annotate.Site
	fringe []dataset.Community

	states   []*cluster.Incremental // one per fringe community
	images   []int                  // image-occurrence count per fringe community
	partials []communityPartial     // cached materialisation of the previous rebuild
	fresh    []bool                 // partials[i] reflects states[i]

	union      []dataset.Post // base posts ++ added posts, in ingest order
	added      int            // posts appended beyond the base corpus
	addedPer   map[dataset.Community]int
	unionCache *dataset.Dataset
}

// NewIncremental seeds an incremental build state from a base corpus. The
// configuration must match the one the currently served engine was built
// with, or the determinism contract against a from-scratch build is void.
func NewIncremental(ds *dataset.Dataset, site *annotate.Site, cfg Config) (*Incremental, error) {
	if ds == nil || site == nil {
		return nil, errors.New("pipeline: nil dataset or site")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inc := &Incremental{
		cfg:      cfg,
		base:     ds,
		site:     site,
		addedPer: make(map[dataset.Community]int),
	}
	for _, comm := range dataset.Communities() {
		if comm.Fringe() {
			inc.fringe = append(inc.fringe, comm)
		}
	}
	cc := cfg.Clustering
	if cc.Workers == 0 {
		// Communities re-cluster one at a time, so each scan gets the full
		// budget; the worker count never changes labels.
		cc.Workers = cfg.Workers
	}
	inc.states = make([]*cluster.Incremental, len(inc.fringe))
	inc.images = make([]int, len(inc.fringe))
	inc.partials = make([]communityPartial, len(inc.fringe))
	inc.fresh = make([]bool, len(inc.fringe))
	for i := range inc.fringe {
		st, err := cluster.NewIncremental(cc)
		if err != nil {
			return nil, err
		}
		inc.states[i] = st
	}
	// One pass over the base posts seeds every community state in the same
	// per-community first-appearance order clusterCommunity extracts.
	for pi := range ds.Posts {
		inc.absorb(&ds.Posts[pi])
	}
	// Cap the union at the base length so the first AddPosts copies instead
	// of appending into the base dataset's backing array.
	inc.union = ds.Posts[:len(ds.Posts):len(ds.Posts)]
	return inc, nil
}

// absorb feeds one post into its community's clustering state.
func (inc *Incremental) absorb(p *dataset.Post) {
	if !p.HasImage || !p.Community.Fringe() {
		return
	}
	for i, comm := range inc.fringe {
		if comm == p.Community {
			inc.states[i].Add(p.PHash())
			inc.images[i]++
			inc.fresh[i] = false
			return
		}
	}
}

// AddPosts appends posts to the union corpus and feeds fringe image posts
// into their community states. The next RebuildCtx re-clusters exactly the
// communities touched here (non-fringe posts join the union for Associate
// and Result but never affect clustering).
func (inc *Incremental) AddPosts(posts []dataset.Post) {
	if len(posts) == 0 {
		return
	}
	inc.union = append(inc.union, posts...)
	inc.added += len(posts)
	inc.unionCache = nil
	for pi := range posts {
		inc.addedPer[posts[pi].Community]++
		inc.absorb(&posts[pi])
	}
}

// Added returns the number of posts absorbed beyond the base corpus.
func (inc *Incremental) Added() int { return inc.added }

// UnionDataset returns the base corpus extended with every added post: the
// dataset a from-scratch Build would run on. With no added posts it is the
// base itself; otherwise a shallow copy with the union post slice and
// updated per-community totals (maps and metadata are shared read-only).
func (inc *Incremental) UnionDataset() *dataset.Dataset {
	if inc.added == 0 {
		return inc.base
	}
	if inc.unionCache != nil {
		return inc.unionCache
	}
	u := *inc.base
	u.Posts = inc.union
	u.PostTotals = make(map[dataset.Community]int, len(inc.base.PostTotals))
	for c, n := range inc.base.PostTotals {
		u.PostTotals[c] = n
	}
	for c, n := range inc.addedPer {
		u.PostTotals[c] += n
	}
	inc.unionCache = &u
	return inc.unionCache
}

// RebuildCtx re-clusters every community with unabsorbed changes — the first
// call pays the full neighbourhood scan, later calls only scan new points
// against the cached lists — and assembles a fresh BuildResult over the
// union corpus via the exact annotate/merge/index path Build uses. The
// result is immutable and ready for HotEngine.Swap.
func (inc *Incremental) RebuildCtx(ctx context.Context, progress ProgressFunc) (*BuildResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	b := &BuildResult{
		Config:       inc.cfg,
		Dataset:      inc.UnionDataset(),
		Site:         inc.site,
		PerCommunity: make(map[dataset.Community]CommunityClustering),
		progress:     progress,
	}
	workers := parallel.Workers(inc.cfg.Workers)
	b.buildStats.Workers = workers
	start := now()
	em := emitter{stats: &b.buildStats, progress: progress}

	stageStart := em.start(StageRecluster)
	reclusteredImages := 0
	var neighDur time.Duration
	neighPoints := 0
	for i, comm := range inc.fringe {
		if inc.fresh[i] {
			continue
		}
		st := inc.states[i]
		hashes, counts := st.Points()
		summary := CommunityClustering{Community: comm, Images: inc.images[i], DistinctHashes: len(hashes)}
		p := communityPartial{summary: summary}
		if len(hashes) > 0 {
			dbres, err := st.ReclusterCtx(ctx)
			if err != nil {
				return nil, fmt.Errorf("pipeline: re-clustering %v: %w", comm, err)
			}
			for j, lbl := range dbres.Labels {
				if lbl == cluster.Noise {
					p.summary.NoiseImages += counts[j]
				}
			}
			clusters, err := cluster.MaterializeParallelCtx(ctx, hashes, counts, dbres, workers)
			if err != nil {
				return nil, err
			}
			p.hashes, p.counts, p.dbres, p.clusters = hashes, counts, dbres, clusters
			p.summary.Clusters = len(clusters)
			neighDur += dbres.Neighbourhoods.Duration
			neighPoints += dbres.Neighbourhoods.Points
		}
		inc.partials[i] = p
		inc.fresh[i] = true
		reclusteredImages += p.summary.Images
	}
	em.done(StageRecluster, stageStart, reclusteredImages)
	if neighPoints > 0 {
		em.record(StageNeighbours, neighDur, neighPoints)
	}

	fringeImages := 0
	for i := range inc.partials {
		fringeImages += inc.partials[i].summary.Images
	}
	annotated, err := assemble(ctx, b, inc.fringe, inc.partials, workers, em)
	if err != nil {
		return nil, err
	}
	b.buildStats.FringeImages = fringeImages
	b.buildStats.Clusters = len(b.Clusters)
	b.buildStats.AnnotatedClusters = annotated
	b.buildWall = since(start)
	return b, nil
}
