package pipeline

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/index"
)

// carveCorpus splits a generated corpus into a base dataset and the tail
// posts that play the live ingest traffic.
func carveCorpus(t *testing.T, live int) (*dataset.Dataset, *dataset.Dataset, []dataset.Post) {
	t.Helper()
	ds, err := dataset.Generate(dataset.SmallConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(ds.Posts) <= live {
		t.Fatalf("corpus too small: %d posts", len(ds.Posts))
	}
	cut := len(ds.Posts) - live
	base := *ds
	base.Posts = ds.Posts[:cut:cut]
	return ds, &base, ds.Posts[cut:]
}

// snapshotBytes serialises a build for bitwise comparison.
func snapshotBytes(t *testing.T, b *BuildResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

// TestIncrementalRebuildMatchesFromScratch is the determinism gate of the
// streaming ingest path: priming an Incremental from a base corpus and
// absorbing the remaining posts in staged batches — re-clustering after each
// batch, which exercises the cached-neighbourhood extension path — must end
// bitwise-identical (Save bytes) to a from-scratch Build over the union
// corpus, across worker counts and index strategies.
func TestIncrementalRebuildMatchesFromScratch(t *testing.T) {
	full, base, live := carveCorpus(t, 150)
	site, err := full.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	ctx := context.Background()

	for _, strategy := range index.Strategies() {
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			cfg := DefaultConfig()
			cfg.Index = strategy
			cfg.Workers = workers

			ref, err := Build(ctx, full, site, cfg, nil)
			if err != nil {
				t.Fatalf("%s/w%d: from-scratch Build: %v", strategy, workers, err)
			}
			want := snapshotBytes(t, ref)

			baseRef, err := Build(ctx, base, site, cfg, nil)
			if err != nil {
				t.Fatalf("%s/w%d: base Build: %v", strategy, workers, err)
			}

			inc, err := NewIncremental(base, site, cfg)
			if err != nil {
				t.Fatalf("%s/w%d: NewIncremental: %v", strategy, workers, err)
			}
			// Prime: the first rebuild with zero added posts must equal the
			// base build exactly.
			primed, err := inc.RebuildCtx(ctx, nil)
			if err != nil {
				t.Fatalf("%s/w%d: prime RebuildCtx: %v", strategy, workers, err)
			}
			if !bytes.Equal(snapshotBytes(t, primed), snapshotBytes(t, baseRef)) {
				t.Fatalf("%s/w%d: primed rebuild diverges from base Build", strategy, workers)
			}

			// Absorb the live tail in three uneven batches, re-clustering
			// after each so resident neighbourhood lists get extended twice.
			cuts := []int{0, len(live) / 4, len(live) / 2, len(live)}
			var got *BuildResult
			for bi := 1; bi < len(cuts); bi++ {
				inc.AddPosts(live[cuts[bi-1]:cuts[bi]])
				got, err = inc.RebuildCtx(ctx, nil)
				if err != nil {
					t.Fatalf("%s/w%d: batch %d RebuildCtx: %v", strategy, workers, bi, err)
				}
			}
			if !bytes.Equal(snapshotBytes(t, got), want) {
				t.Errorf("%s/w%d: incremental result diverges from from-scratch build over the union corpus", strategy, workers)
			}
			if inc.Added() != len(live) {
				t.Errorf("%s/w%d: Added = %d, want %d", strategy, workers, inc.Added(), len(live))
			}

			// The union dataset must present the full post sequence, so
			// Result() and Associate see the ingested posts.
			u := inc.UnionDataset()
			if len(u.Posts) != len(full.Posts) {
				t.Errorf("%s/w%d: union has %d posts, want %d", strategy, workers, len(u.Posts), len(full.Posts))
			}
		}
	}
}

// TestIncrementalRebuildStages pins the stage accounting: a rebuild reports
// the recluster stage (not the batch cluster stage), and a rebuild with no
// new posts still assembles but scans zero points.
func TestIncrementalRebuildStages(t *testing.T) {
	_, base, live := carveCorpus(t, 60)
	site, err := base.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	inc, err := NewIncremental(base, site, DefaultConfig())
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	inc.AddPosts(live)
	b, err := inc.RebuildCtx(context.Background(), nil)
	if err != nil {
		t.Fatalf("RebuildCtx: %v", err)
	}
	stats := b.Stats()
	if _, ok := stats.Stage(StageRecluster); !ok {
		t.Errorf("rebuild stats missing %q stage: %+v", StageRecluster, stats.Stages)
	}
	if _, ok := stats.Stage(StageCluster); ok {
		t.Errorf("rebuild stats carry the batch %q stage", StageCluster)
	}
	if _, ok := stats.Stage(StageAnnotate); !ok {
		t.Errorf("rebuild stats missing %q stage", StageAnnotate)
	}

	// No new posts: the rebuild is a pure reassembly.
	b2, err := inc.RebuildCtx(context.Background(), nil)
	if err != nil {
		t.Fatalf("idle RebuildCtx: %v", err)
	}
	if !bytes.Equal(snapshotBytes(t, b2), snapshotBytes(t, b)) {
		t.Error("idle rebuild changed the engine state")
	}
}

// TestIncrementalRejectsBadInputs mirrors Build's input validation.
func TestIncrementalRejectsBadInputs(t *testing.T) {
	_, base, _ := carveCorpus(t, 10)
	site, err := base.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	if _, err := NewIncremental(nil, site, DefaultConfig()); err == nil {
		t.Error("nil dataset should be rejected")
	}
	if _, err := NewIncremental(base, nil, DefaultConfig()); err == nil {
		t.Error("nil site should be rejected")
	}
	bad := DefaultConfig()
	bad.AnnotationThreshold = -1
	if _, err := NewIncremental(base, site, bad); err == nil {
		t.Error("invalid config should be rejected")
	}
}
