//go:build !race

package pipeline

// raceEnabled reports whether the race detector is instrumenting this test
// binary. Zero-allocation assertions are skipped under -race: the detector's
// shadow-state bookkeeping allocates inside the measured functions, so
// AllocsPerRun can never return 0 there regardless of the production code.
const raceEnabled = false
