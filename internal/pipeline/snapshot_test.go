package pipeline

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"github.com/memes-pipeline/memes/internal/annotate"
	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/index"
)

// resultFingerprint strips the only legitimately run-varying field (Stats)
// so results can be compared bitwise.
func resultFingerprint(r *Result) Result {
	fp := *r
	fp.Stats = RunStats{}
	return fp
}

// TestSnapshotRoundTripDeterminism is the satellite acceptance test: for
// every index strategy and several worker counts, Build → Save → Load →
// Result is byte-identical to the never-persisted engine's Result, and the
// snapshot bytes themselves are identical across worker counts.
func TestSnapshotRoundTripDeterminism(t *testing.T) {
	ds, err := dataset.Generate(dataset.SmallConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	ctx := context.Background()

	var refSnap []byte
	for _, strategy := range index.Strategies() {
		for _, workers := range []int{1, 8} {
			cfg := DefaultConfig()
			cfg.Index = strategy
			cfg.Workers = workers

			b, err := Build(ctx, ds, site, cfg, nil)
			if err != nil {
				t.Fatalf("%s/w%d: Build: %v", strategy, workers, err)
			}
			want, err := b.Result(ctx)
			if err != nil {
				t.Fatalf("%s/w%d: Result: %v", strategy, workers, err)
			}

			var buf bytes.Buffer
			if err := b.Save(&buf); err != nil {
				t.Fatalf("%s/w%d: Save: %v", strategy, workers, err)
			}

			loaded, err := LoadBuild(bytes.NewReader(buf.Bytes()), site, ds, nil, nil)
			if err != nil {
				t.Fatalf("%s/w%d: LoadBuild: %v", strategy, workers, err)
			}
			got, err := loaded.Result(ctx)
			if err != nil {
				t.Fatalf("%s/w%d: loaded Result: %v", strategy, workers, err)
			}
			if !reflect.DeepEqual(resultFingerprint(got), resultFingerprint(want)) {
				t.Errorf("%s/w%d: loaded Result diverges from never-persisted Result", strategy, workers)
			}

			// The loaded build must have done zero Steps 2-5 work: its
			// stats carry only the load stage.
			bs := loaded.Stats()
			if len(bs.Stages) != 1 || bs.Stages[0].Name != StageLoad {
				t.Errorf("%s/w%d: loaded stats stages = %+v, want [%s]", strategy, workers, bs.Stages, StageLoad)
			}
			for _, forbidden := range []string{StageCluster, StageNeighbours, StageAnnotate} {
				if _, ok := bs.Stage(forbidden); ok {
					t.Errorf("%s/w%d: loaded stats carry build stage %q", strategy, workers, forbidden)
				}
			}

			// Snapshot bytes are strategy- and worker-independent except
			// for the config echo; normalise it and compare to the first.
			norm := cfg
			norm.Index = ""
			norm.Workers = 0
			b.Config = norm
			var normBuf bytes.Buffer
			if err := b.Save(&normBuf); err != nil {
				t.Fatalf("%s/w%d: normalised Save: %v", strategy, workers, err)
			}
			if refSnap == nil {
				refSnap = normBuf.Bytes()
			} else if !bytes.Equal(refSnap, normBuf.Bytes()) {
				t.Errorf("%s/w%d: snapshot bytes differ from reference build", strategy, workers)
			}
		}
	}
}

// TestSnapshotServesWithoutDataset asserts the serve-only load path: a
// snapshot loaded with a nil dataset answers Associate and Match exactly
// like the original build, and only Result demands a bound corpus.
func TestSnapshotServesWithoutDataset(t *testing.T) {
	ds, err := dataset.Generate(dataset.SmallConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	ctx := context.Background()
	b, err := Build(ctx, ds, site, DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadBuild(&buf, site, nil, nil, nil)
	if err != nil {
		t.Fatalf("LoadBuild: %v", err)
	}

	wantAssoc, err := b.Associate(ctx, ds.Posts)
	if err != nil {
		t.Fatalf("Associate: %v", err)
	}
	gotAssoc, err := loaded.Associate(ctx, ds.Posts)
	if err != nil {
		t.Fatalf("loaded Associate: %v", err)
	}
	if !reflect.DeepEqual(gotAssoc, wantAssoc) {
		t.Fatal("loaded Associate diverges from original build")
	}
	for i := range b.Clusters {
		wm, wok := b.Match(b.Clusters[i].MedoidHash)
		gm, gok := loaded.Match(b.Clusters[i].MedoidHash)
		if wok != gok || wm != gm {
			t.Fatalf("cluster %d: loaded Match (%+v,%v) diverges from (%+v,%v)", i, gm, gok, wm, wok)
		}
	}
	if _, err := loaded.Result(ctx); err == nil {
		t.Fatal("Result on a dataset-less load should fail")
	} else if !strings.Contains(err.Error(), "no dataset") {
		t.Fatalf("unexpected Result error: %v", err)
	}
}

// TestSnapshotReconfigOverrides asserts load-time overrides: the index
// strategy and worker count can be swapped while the served results stay
// identical.
func TestSnapshotReconfigOverrides(t *testing.T) {
	ds, err := dataset.Generate(dataset.SmallConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	ctx := context.Background()
	b, err := Build(ctx, ds, site, DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	wantAssoc, err := b.Associate(ctx, ds.Posts)
	if err != nil {
		t.Fatalf("Associate: %v", err)
	}
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	snap := buf.Bytes()
	for _, strategy := range index.Strategies() {
		loaded, err := LoadBuild(bytes.NewReader(snap), site, nil, func(c *Config) {
			c.Index = strategy
			c.Workers = 3
		}, nil)
		if err != nil {
			t.Fatalf("LoadBuild(%s): %v", strategy, err)
		}
		if loaded.Config.Index != strategy || loaded.Config.Workers != 3 {
			t.Fatalf("reconfig not applied: %+v", loaded.Config)
		}
		got, err := loaded.Associate(ctx, ds.Posts)
		if err != nil {
			t.Fatalf("Associate(%s): %v", strategy, err)
		}
		if !reflect.DeepEqual(got, wantAssoc) {
			t.Fatalf("strategy %s serves different associations after reload", strategy)
		}
	}
	// An unknown override strategy fails validation.
	if _, err := LoadBuild(bytes.NewReader(snap), site, nil, func(c *Config) {
		c.Index = "bogus"
	}, nil); err == nil {
		t.Fatal("bogus index strategy accepted at load")
	}
}

// TestSnapshotRejectsGarbage covers the failure modes: bad magic, bad
// version, truncation, payload corruption, and a site that lacks the
// referenced entries.
func TestSnapshotRejectsGarbage(t *testing.T) {
	ds, err := dataset.Generate(dataset.SmallConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	b, err := Build(context.Background(), ds, site, DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	snap := buf.Bytes()

	if _, err := LoadBuild(strings.NewReader("not a snapshot at all"), site, nil, nil, nil); err == nil {
		t.Fatal("bad magic accepted")
	}

	bumped := append([]byte(nil), snap...)
	bumped[8]++ // version field
	if _, err := LoadBuild(bytes.NewReader(bumped), site, nil, nil, nil); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted: %v", err)
	}

	if _, err := LoadBuild(bytes.NewReader(snap[:len(snap)/2]), site, nil, nil, nil); err == nil {
		t.Fatal("truncated snapshot accepted")
	}

	corrupt := append([]byte(nil), snap...)
	corrupt[len(corrupt)/2] ^= 0xff
	if _, err := LoadBuild(bytes.NewReader(corrupt), site, nil, nil, nil); err == nil {
		t.Fatal("corrupted snapshot accepted")
	}

	// A site without the referenced entries must fail loudly, not serve
	// silently wrong annotations.
	empty, err := annotate.NewSite(nil)
	if err != nil {
		t.Fatalf("NewSite: %v", err)
	}
	if _, err := LoadBuild(bytes.NewReader(snap), empty, nil, nil, nil); err == nil ||
		!strings.Contains(err.Error(), "entry") {
		t.Fatalf("snapshot loaded against a site missing its entries: %v", err)
	}

	if _, err := LoadBuild(bytes.NewReader(snap), nil, nil, nil, nil); err == nil {
		t.Fatal("nil site accepted")
	}
}

// buildSnapshotBytes builds one small snapshot and returns it with the site
// it must be loaded against; shared by the exhaustive corruption tests.
func buildSnapshotBytes(t *testing.T) ([]byte, *annotate.Site) {
	t.Helper()
	ds, err := dataset.Generate(dataset.SmallConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	b, err := Build(context.Background(), ds, site, DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes(), site
}

// TestSnapshotRejectsEveryTruncation cuts the stream at every possible
// length — through the header, mid-config, mid-community-summary,
// mid-cluster, mid-annotation-string, and inside the CRC trailer — and
// demands a loud load error for each. TestSnapshotRejectsGarbage samples a
// single offset; every section boundary gets covered here.
func TestSnapshotRejectsEveryTruncation(t *testing.T) {
	snap, site := buildSnapshotBytes(t)
	for n := 0; n < len(snap); n++ {
		if _, err := LoadBuild(bytes.NewReader(snap[:n]), site, nil, nil, nil); err == nil {
			t.Fatalf("snapshot truncated to %d of %d bytes loaded successfully", n, len(snap))
		}
	}
	if _, err := LoadBuild(bytes.NewReader(snap), site, nil, nil, nil); err != nil {
		t.Fatalf("untruncated snapshot rejected: %v", err)
	}
}

// TestSnapshotRejectsEveryByteFlip corrupts each byte of the stream in turn:
// header flips must fail the magic/version checks, payload flips the CRC
// check (or a structural read on the way to it), trailer flips the checksum
// comparison itself. No single-byte corruption may load.
func TestSnapshotRejectsEveryByteFlip(t *testing.T) {
	snap, site := buildSnapshotBytes(t)
	corrupt := make([]byte, len(snap))
	for i := 0; i < len(snap); i++ {
		copy(corrupt, snap)
		corrupt[i] ^= 0xff
		if _, err := LoadBuild(bytes.NewReader(corrupt), site, nil, nil, nil); err == nil {
			t.Fatalf("snapshot with byte %d of %d flipped loaded successfully", i, len(snap))
		}
	}
}

// TestSnapshotChecksumTrailerBoundaries pins the CRC trailer specifically:
// flipping any of the four stored checksum bytes must produce the checksum
// mismatch error (not a structural one), and truncating into the trailer
// must fail reading the checksum.
func TestSnapshotChecksumTrailerBoundaries(t *testing.T) {
	snap, site := buildSnapshotBytes(t)
	for i := len(snap) - 4; i < len(snap); i++ {
		corrupt := append([]byte(nil), snap...)
		corrupt[i] ^= 0x01
		_, err := LoadBuild(bytes.NewReader(corrupt), site, nil, nil, nil)
		if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
			t.Fatalf("trailer byte %d flipped: err = %v, want checksum mismatch", i, err)
		}
	}
	for drop := 1; drop <= 4; drop++ {
		_, err := LoadBuild(bytes.NewReader(snap[:len(snap)-drop]), site, nil, nil, nil)
		if err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("trailer truncated by %d: err = %v, want checksum read failure", drop, err)
		}
	}
}
