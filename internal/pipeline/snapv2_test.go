package pipeline

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/memes-pipeline/memes/internal/annotate"
	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/index"
	"github.com/memes-pipeline/memes/internal/phash"
)

// snapTestBuild builds one small corpus engine for the v2 suites.
func snapTestBuild(t testing.TB) (*BuildResult, *dataset.Dataset, *annotate.Site) {
	t.Helper()
	ds, err := dataset.Generate(dataset.SmallConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	b, err := Build(context.Background(), ds, site, DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return b, ds, site
}

// TestSnapshotCrossVersionEquivalence is the cross-version acceptance
// criterion: the same build saved as v1 and as v2 loads into engines that
// serve bitwise-identical Associate, Match, and Result output — to each
// other and to the never-persisted build — across index strategies and
// worker counts. It also pins v1→v2 migration: loading a v1 snapshot and
// re-saving emits exactly the bytes a direct v2 save produces.
func TestSnapshotCrossVersionEquivalence(t *testing.T) {
	b, ds, site := snapTestBuild(t)
	ctx := context.Background()
	wantAssoc, err := b.Associate(ctx, ds.Posts)
	if err != nil {
		t.Fatalf("Associate: %v", err)
	}
	wantRes, err := b.Result(ctx)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}

	var v1buf, v2buf bytes.Buffer
	if err := b.SaveVersion(&v1buf, SnapshotV1); err != nil {
		t.Fatalf("SaveVersion(1): %v", err)
	}
	if err := b.SaveVersion(&v2buf, SnapshotV2); err != nil {
		t.Fatalf("SaveVersion(2): %v", err)
	}
	if bytes.Equal(v1buf.Bytes(), v2buf.Bytes()) {
		t.Fatal("v1 and v2 snapshots are byte-identical; version dispatch is broken")
	}

	for _, strategy := range index.Strategies() {
		for _, workers := range []int{1, 4} {
			reconfig := func(c *Config) { c.Index = strategy; c.Workers = workers }
			for _, v := range []struct {
				name string
				snap []byte
			}{{"v1", v1buf.Bytes()}, {"v2", v2buf.Bytes()}} {
				loaded, err := LoadBuild(bytes.NewReader(v.snap), site, ds, reconfig, nil)
				if err != nil {
					t.Fatalf("%s/%s/w%d: LoadBuild: %v", v.name, strategy, workers, err)
				}
				assoc, err := loaded.Associate(ctx, ds.Posts)
				if err != nil {
					t.Fatalf("%s/%s/w%d: Associate: %v", v.name, strategy, workers, err)
				}
				if !reflect.DeepEqual(assoc, wantAssoc) {
					t.Errorf("%s/%s/w%d: Associate diverges from never-persisted build", v.name, strategy, workers)
				}
				for i := 0; i < len(ds.Posts); i += 7 {
					if !ds.Posts[i].HasImage {
						continue
					}
					h := ds.Posts[i].PHash()
					gm, gok := loaded.Match(h)
					wm, wok := b.Match(h)
					if gok != wok || gm != wm {
						t.Fatalf("%s/%s/w%d: Match(%#x) = (%v,%v), want (%v,%v)", v.name, strategy, workers, h, gm, gok, wm, wok)
					}
				}
				res, err := loaded.Result(ctx)
				if err != nil {
					t.Fatalf("%s/%s/w%d: Result: %v", v.name, strategy, workers, err)
				}
				// The reconfig deliberately changes Index/Workers, which
				// Result.Config echoes; everything else must be identical.
				gotFP, wantFP := resultFingerprint(res), resultFingerprint(wantRes)
				gotFP.Config.Index, gotFP.Config.Workers = "", 0
				wantFP.Config.Index, wantFP.Config.Workers = "", 0
				if !reflect.DeepEqual(gotFP, wantFP) {
					t.Errorf("%s/%s/w%d: Result diverges from never-persisted build", v.name, strategy, workers)
				}
			}
		}
	}

	// Migration: v1 → load → save must emit the exact direct-v2 bytes.
	loaded, err := LoadBuild(bytes.NewReader(v1buf.Bytes()), site, nil, nil, nil)
	if err != nil {
		t.Fatalf("LoadBuild(v1): %v", err)
	}
	var migrated bytes.Buffer
	if err := loaded.Save(&migrated); err != nil {
		t.Fatalf("migrating Save: %v", err)
	}
	if !bytes.Equal(migrated.Bytes(), v2buf.Bytes()) {
		t.Error("v1→v2 migration bytes differ from a direct v2 save")
	}
}

// TestSnapshotV1RejectsEveryTruncation mirrors the exhaustive truncation
// suite for the legacy layout now that Save defaults to v2 (the default-
// format suite in snapshot_test.go covers v2).
func TestSnapshotV1RejectsEveryTruncation(t *testing.T) {
	b, _, site := snapTestBuild(t)
	var buf bytes.Buffer
	if err := b.SaveVersion(&buf, SnapshotV1); err != nil {
		t.Fatalf("SaveVersion(1): %v", err)
	}
	snap := buf.Bytes()
	for n := 0; n < len(snap); n++ {
		if _, err := LoadBuild(bytes.NewReader(snap[:n]), site, nil, nil, nil); err == nil {
			t.Fatalf("v1 snapshot truncated to %d of %d bytes loaded successfully", n, len(snap))
		}
	}
	if _, err := LoadBuild(bytes.NewReader(snap), site, nil, nil, nil); err != nil {
		t.Fatalf("untruncated v1 snapshot rejected: %v", err)
	}
}

// TestSnapshotV1RejectsEveryByteFlip mirrors the exhaustive corruption
// suite for the legacy layout.
func TestSnapshotV1RejectsEveryByteFlip(t *testing.T) {
	b, _, site := snapTestBuild(t)
	var buf bytes.Buffer
	if err := b.SaveVersion(&buf, SnapshotV1); err != nil {
		t.Fatalf("SaveVersion(1): %v", err)
	}
	snap := buf.Bytes()
	corrupt := make([]byte, len(snap))
	for i := 0; i < len(snap); i++ {
		copy(corrupt, snap)
		corrupt[i] ^= 0xff
		if _, err := LoadBuild(bytes.NewReader(corrupt), site, nil, nil, nil); err == nil {
			t.Fatalf("v1 snapshot with byte %d of %d flipped loaded successfully", i, len(snap))
		}
	}
}

// TestSaveVersionUnsupported pins the version dispatch error.
func TestSaveVersionUnsupported(t *testing.T) {
	b, _, _ := snapTestBuild(t)
	var buf bytes.Buffer
	if err := b.SaveVersion(&buf, 3); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("SaveVersion(3) = %v, want unsupported-version error", err)
	}
}

// TestLoadBuildFile exercises the file loader: the mmap'd v2 path and the
// v1 streaming fallback must both serve output identical to the in-memory
// loader, and corruption must fail exactly as loudly.
func TestLoadBuildFile(t *testing.T) {
	b, ds, site := snapTestBuild(t)
	ctx := context.Background()
	wantAssoc, err := b.Associate(ctx, ds.Posts)
	if err != nil {
		t.Fatalf("Associate: %v", err)
	}
	dir := t.TempDir()

	for _, v := range []uint32{SnapshotV1, SnapshotV2} {
		path := filepath.Join(dir, "snap")
		var buf bytes.Buffer
		if err := b.SaveVersion(&buf, v); err != nil {
			t.Fatalf("SaveVersion(%d): %v", v, err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadBuildFile(path, site, nil, nil, nil)
		if err != nil {
			t.Fatalf("LoadBuildFile(v%d): %v", v, err)
		}
		assoc, err := loaded.Associate(ctx, ds.Posts)
		if err != nil {
			t.Fatalf("v%d: Associate: %v", v, err)
		}
		if !reflect.DeepEqual(assoc, wantAssoc) {
			t.Errorf("v%d: file-loaded Associate diverges", v)
		}
		// Only StageLoad ran.
		stages := loaded.Stats().Stages
		if len(stages) != 1 || stages[0].Name != StageLoad {
			t.Errorf("v%d: file load ran stages %v, want [load]", v, stages)
		}

		// Close releases the v2 mapping (a no-op for v1's heap-backed
		// load) and is idempotent either way.
		if err := loaded.Close(); err != nil {
			t.Fatalf("v%d: Close: %v", v, err)
		}
		if err := loaded.Close(); err != nil {
			t.Fatalf("v%d: second Close: %v", v, err)
		}

		// Corrupt one payload byte: the file loader must reject it too.
		bad := append([]byte(nil), buf.Bytes()...)
		bad[len(bad)/2] ^= 0xff
		badPath := filepath.Join(dir, "bad")
		if err := os.WriteFile(badPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadBuildFile(badPath, site, nil, nil, nil); err == nil {
			t.Fatalf("v%d: corrupted file loaded successfully", v)
		}
	}

	if _, err := LoadBuildFile(filepath.Join(dir, "missing"), site, nil, nil, nil); err == nil {
		t.Fatal("missing file loaded successfully")
	}
}

// TestV2LoadUsesSerializedTree asserts the tentpole load property: a v2
// load under the default strategy must NOT rebuild the index — the sealed
// flat tree comes straight from the snapshot bytes.
func TestV2LoadUsesSerializedTree(t *testing.T) {
	b, _, site := snapTestBuild(t)
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadBuild(bytes.NewReader(buf.Bytes()), site, nil, nil, nil)
	if err != nil {
		t.Fatalf("LoadBuild: %v", err)
	}
	tree, ok := loaded.medoids.(*phash.BKTree)
	if !ok {
		t.Fatalf("default-strategy load produced %T, want *phash.BKTree", loaded.medoids)
	}
	if !tree.Sealed() {
		t.Fatal("v2-loaded index is not sealed — it was rebuilt, not loaded")
	}
	if loaded.sq == nil {
		t.Fatal("v2-loaded engine has no scratch query path")
	}
}

// TestAssociateAppendMatchesAssociate pins the buffer-reuse API: same
// associations, same order, across reused buffers and cancellation.
func TestAssociateAppendMatchesAssociate(t *testing.T) {
	b, ds, _ := snapTestBuild(t)
	ctx := context.Background()
	want, err := b.Associate(ctx, ds.Posts)
	if err != nil {
		t.Fatalf("Associate: %v", err)
	}
	var out []Association
	for round := 0; round < 3; round++ {
		out, err = b.AssociateAppend(ctx, ds.Posts, out[:0])
		if err != nil {
			t.Fatalf("AssociateAppend round %d: %v", round, err)
		}
		if !reflect.DeepEqual(out, want) {
			t.Fatalf("AssociateAppend round %d diverges from Associate", round)
		}
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := b.AssociateAppend(cancelled, ds.Posts, nil); err == nil {
		t.Fatal("AssociateAppend ignored a cancelled context")
	}
}

// TestSteadyStateZeroAlloc is the tentpole's measurable claim, as a test so
// it fails fast anywhere, not just in the CI bench gate: steady-state
// Match and AssociateAppend on a sealed engine allocate nothing.
func TestSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates inside the measured paths")
	}
	b, ds, _ := snapTestBuild(t)
	ctx := context.Background()

	hashes := make([]phash.Hash, 0, 64)
	for i := range ds.Posts {
		if ds.Posts[i].HasImage {
			hashes = append(hashes, ds.Posts[i].PHash())
			if len(hashes) == cap(hashes) {
				break
			}
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		for _, h := range hashes {
			b.Match(h)
		}
	}); allocs != 0 {
		t.Errorf("steady-state Match allocates %.1f per run, want 0", allocs)
	}

	out, err := b.AssociateAppend(ctx, ds.Posts, nil)
	if err != nil {
		t.Fatalf("AssociateAppend: %v", err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		var aerr error
		out, aerr = b.AssociateAppend(ctx, ds.Posts, out[:0])
		if aerr != nil {
			t.Fatal(aerr)
		}
	}); allocs != 0 {
		t.Errorf("steady-state AssociateAppend allocates %.1f per run, want 0", allocs)
	}
}

// BenchmarkSnapshotDecode isolates the pure in-memory decode cost of each
// snapshot version — no file I/O, no index queries — so the v2 O(1)-decode
// claim is measurable apart from the syscall overhead LoadBuildFile adds.
func BenchmarkSnapshotDecode(b *testing.B) {
	bld, ds, site := snapTestBuild(b)
	for _, v := range []struct {
		name    string
		version uint32
	}{{"v1", SnapshotV1}, {"v2", SnapshotV2}} {
		var buf bytes.Buffer
		if err := bld.SaveVersion(&buf, v.version); err != nil {
			b.Fatal(err)
		}
		snap := buf.Bytes()
		b.Run(v.name, func(b *testing.B) {
			b.SetBytes(int64(len(snap)))
			for i := 0; i < b.N; i++ {
				if _, err := LoadBuild(bytes.NewReader(snap), site, ds, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
