package pipeline

import "time"

// StageEvent reports the start or the completion of one pipeline stage.
// Stage starts carry only the stage name (Done=false, zero Items/Duration);
// stage completions carry the item count and wall time. RunStats is derived
// from the completion events, so a progress observer sees exactly the
// information the stats record, as it happens.
type StageEvent struct {
	// Stage is one of the Stage* constants.
	Stage string
	// Done is false for the stage-start event, true for completion.
	Done bool
	// Items is the number of units the stage processed (completion only).
	Items int
	// Duration is the stage wall time (completion only).
	Duration time.Duration
}

// ProgressFunc observes stage events. It is called synchronously from the
// goroutine driving the stage, in stage order; it must not block for long
// and must not call back into the emitting Build/Result.
type ProgressFunc func(StageEvent)

// emitter couples stage-event emission with stats collection: every
// completion event is observed by the RunStats and forwarded to the optional
// user progress function, so the two views can never disagree.
type emitter struct {
	stats    *RunStats
	progress ProgressFunc
}

// start emits the stage-start event and returns the stage clock.
func (e emitter) start(stage string) time.Time {
	if e.progress != nil {
		e.progress(StageEvent{Stage: stage})
	}
	return now()
}

// done emits the completion event, records it into the stats, and returns it.
func (e emitter) done(stage string, started time.Time, items int) {
	ev := StageEvent{Stage: stage, Done: true, Items: items, Duration: since(started)}
	e.stats.observe(ev)
	if e.progress != nil {
		e.progress(ev)
	}
}

// now and since are the only wall-clock access in this package. Pipeline
// output (clusters, IDs, associations) must be a pure function of the input
// — the detorder analyzer enforces that by rejecting direct time.Now and
// time.Since calls here — but stage-timing stats legitimately need the
// clock, so every timing read routes through these annotated helpers.

// now returns the wall clock for stage-timing stats.
//
//memes:nondet timing stats only; never influences pipeline output
func now() time.Time { return time.Now() }

// since returns the elapsed wall time since t for stage-timing stats.
//
//memes:nondet timing stats only; never influences pipeline output
func since(t time.Time) time.Duration { return time.Since(t) }

// record emits a start-completion pair for an aggregated sub-stage whose
// duration was measured elsewhere (e.g. summed across concurrent per-
// community scans), preserving the start-then-done event stream contract.
func (e emitter) record(stage string, d time.Duration, items int) {
	if e.progress != nil {
		e.progress(StageEvent{Stage: stage})
	}
	ev := StageEvent{Stage: stage, Done: true, Items: items, Duration: d}
	e.stats.observe(ev)
	if e.progress != nil {
		e.progress(ev)
	}
}
