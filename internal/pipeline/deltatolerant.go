package pipeline

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/memes-pipeline/memes/internal/dataset"
)

// ReadDeltasTolerant parses delta frames from the head of data, stopping at
// the first frame that does not parse cleanly instead of rejecting the whole
// stream. It exists for the crash-recovery path: an append that died mid-
// frame (power cut, injected exit) leaves a torn tail after the last durable
// frame, and restart must salvage every acknowledged frame rather than
// refuse the journal the way the strict ReadDeltas does.
//
// Returns the cleanly parsed frames, the byte offset where clean framing
// ends (truncate the file here to repair it), and torn=true when trailing
// bytes were discarded. torn is only a crash signature when the tear is at
// the physical end of the segment being appended to; callers are expected to
// treat a tear anywhere else (interior segments) as corruption and stay
// loud.
func ReadDeltasTolerant(data []byte) (frames []Delta, validLen int64, torn bool) {
	for int(validLen) < len(data) {
		d, n, err := readOneDelta(data[validLen:])
		if err != nil {
			return frames, validLen, true
		}
		frames = append(frames, d)
		validLen += n
	}
	return frames, validLen, false
}

// readOneDelta parses exactly one frame from the head of b, returning the
// frame and the number of bytes it occupies.
func readOneDelta(b []byte) (Delta, int64, error) {
	if len(b) < 12 {
		return Delta{}, 0, io.ErrUnexpectedEOF
	}
	if [8]byte(b[:8]) != deltaMagic {
		return Delta{}, 0, errors.New("bad magic")
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != deltaVersion {
		return Delta{}, 0, fmt.Errorf("unsupported version %d", v)
	}

	// The decoder feeds every consumed byte to its crc writer, so chaining a
	// counter onto it measures the payload length exactly.
	crc := crc32.NewIEEE()
	var count countingWriter
	dec := &snapDecoder{r: bufio.NewReader(bytes.NewReader(b[12:])), crc: io.MultiWriter(crc, &count)}
	d := Delta{FromSeq: dec.uvarint()}
	n := int(dec.uvarint())
	if dec.err == nil && n > 0 {
		capHint := n
		if capHint > maxDeltaPosts {
			capHint = maxDeltaPosts
		}
		d.Posts = make([]dataset.Post, 0, capHint)
	}
	for i := 0; i < n && dec.err == nil; i++ {
		var p dataset.Post
		p.ID = dec.varint()
		p.Community = dataset.Community(dec.uvarint())
		p.Subreddit = dec.string()
		p.Timestamp = timeFromUnixNano(dec.varint())
		p.HasImage = dec.bool()
		p.Hash = dec.uint64()
		p.Score = int(dec.varint())
		p.TruthMeme = int(dec.varint())
		p.TruthRoot = int(dec.varint())
		d.Posts = append(d.Posts, p)
	}
	if dec.err != nil {
		return Delta{}, 0, dec.err
	}

	payload := count.n
	crcEnd := 12 + payload + 4
	if int64(len(b)) < crcEnd {
		return Delta{}, 0, io.ErrUnexpectedEOF
	}
	if got := binary.LittleEndian.Uint32(b[12+payload:]); got != crc.Sum32() {
		return Delta{}, 0, errors.New("checksum mismatch")
	}
	for i := range d.Posts {
		if !d.Posts[i].Community.Valid() {
			return Delta{}, 0, fmt.Errorf("post %d names invalid community %d", i, int(d.Posts[i].Community))
		}
	}
	return d, crcEnd, nil
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
