//go:build unix

package pipeline

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The returned closer unmaps; the
// mapping outlives f's file descriptor, so callers may close f immediately.
// Where the platform supports it the pages are prefaulted in the mmap call
// itself (one syscall instead of one fault per page), since the checksum
// validation touches every byte immediately anyway.
func mmapFile(f *os.File, size int) ([]byte, func() error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED|mmapPopulate)
	if err != nil && mmapPopulate != 0 {
		// Some filesystems reject MAP_POPULATE; the plain mapping works.
		data, err = syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	}
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
