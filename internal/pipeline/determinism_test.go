package pipeline

import (
	"reflect"
	"testing"
	"time"

	"github.com/memes-pipeline/memes/internal/dataset"
)

// TestRunDeterministicAcrossWorkerCounts asserts the engine's core
// guarantee: pipeline.Run produces identical clusters, associations, and
// per-community summaries for any worker count.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	ds, err := dataset.Generate(dataset.SmallConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	run := func(workers int) *Result {
		cfg := DefaultConfig()
		cfg.Workers = workers
		res, err := Run(ds, site, cfg)
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		return res
	}
	base := run(1)
	if len(base.Clusters) == 0 || len(base.Associations) == 0 {
		t.Fatal("baseline run produced no clusters or associations")
	}
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(got.Clusters, base.Clusters) {
			t.Errorf("workers=%d: Clusters diverge from workers=1", workers)
		}
		if !reflect.DeepEqual(got.Associations, base.Associations) {
			t.Errorf("workers=%d: Associations diverge from workers=1", workers)
		}
		if !reflect.DeepEqual(got.PerCommunity, base.PerCommunity) {
			t.Errorf("workers=%d: PerCommunity summaries diverge from workers=1", workers)
		}
	}
	// Cluster IDs must match their index (stable-merge invariant).
	for i, c := range base.Clusters {
		if c.ID != i {
			t.Fatalf("cluster %d has ID %d", i, c.ID)
		}
	}
}

func TestRunStatsPopulated(t *testing.T) {
	res := getRun(t)
	s := res.Stats
	if s.Workers < 1 {
		t.Fatalf("stats workers = %d", s.Workers)
	}
	for _, name := range []string{StageCluster, StageNeighbours, StageAnnotate, StageAssociate} {
		st, ok := s.Stage(name)
		if !ok {
			t.Fatalf("stage %q missing from stats", name)
		}
		if st.Duration < 0 {
			t.Fatalf("stage %q has negative duration", name)
		}
	}
	if _, ok := s.Stage("nonexistent"); ok {
		t.Fatal("unknown stage reported as present")
	}
	if s.Total <= 0 {
		t.Fatalf("total duration %v", s.Total)
	}
	if s.Clusters != len(res.Clusters) || s.Associations != len(res.Associations) {
		t.Fatal("stats counts disagree with result")
	}
	if s.AnnotatedClusters != len(res.AnnotatedClusters()) {
		t.Fatal("stats annotated count disagrees with result")
	}
	if s.TotalImages < s.FringeImages || s.FringeImages <= 0 {
		t.Fatalf("implausible image counts: total=%d fringe=%d", s.TotalImages, s.FringeImages)
	}
	if s.ImagesPerSec() <= 0 {
		t.Fatal("images/sec not positive")
	}
	if (StageStats{Name: "x", Duration: time.Second, Items: 5}).Throughput() != 5 {
		t.Fatal("throughput arithmetic wrong")
	}
	if s.String() == "" {
		t.Fatal("empty stats rendering")
	}
}
