//go:build unix && !linux

package pipeline

// mmapPopulate is unavailable outside Linux; pages fault in on demand.
const mmapPopulate = 0
