package pipeline

import (
	"reflect"
	"testing"
)

// tolerantFixture is the delta fixture plus a third frame, so the sweep
// exercises an interior boundary on both sides.
func tolerantFixture() []Delta {
	frames := deltaFixture()
	frames = append(frames, Delta{FromSeq: 4, Posts: frames[0].Posts[:1]})
	return frames
}

// frameBoundaries returns the byte offset where each frame's encoding ends.
func frameBoundaries(t *testing.T, frames []Delta) []int {
	t.Helper()
	var ends []int
	for i := range frames {
		ends = append(ends, len(deltaBytes(t, frames[:i+1])))
	}
	return ends
}

// TestTolerantReadEveryTruncation sweeps every possible crash point of an
// append: for each prefix length of a three-frame journal, the tolerant
// reader must salvage exactly the frames whose encodings completed, report
// the repair offset at the last clean boundary, and flag a tear iff the cut
// landed mid-frame. This is the exhaustive form of the torn-tail contract
// the chaos suite exercises at one injection site.
func TestTolerantReadEveryTruncation(t *testing.T) {
	frames := tolerantFixture()
	stream := deltaBytes(t, frames)
	ends := frameBoundaries(t, frames)

	for n := 0; n <= len(stream); n++ {
		wantFrames, wantValid := 0, 0
		for _, e := range ends {
			if e <= n {
				wantFrames++
				wantValid = e
			}
		}
		got, validLen, torn := ReadDeltasTolerant(stream[:n])
		if len(got) != wantFrames {
			t.Fatalf("cut at %d: salvaged %d frames, want %d", n, len(got), wantFrames)
		}
		if validLen != int64(wantValid) {
			t.Fatalf("cut at %d: validLen = %d, want %d", n, validLen, wantValid)
		}
		if wantTorn := n != wantValid; torn != wantTorn {
			t.Fatalf("cut at %d: torn = %v, want %v", n, torn, wantTorn)
		}
		if !reflect.DeepEqual(got, frames[:wantFrames]) && wantFrames > 0 {
			t.Fatalf("cut at %d: salvaged frames diverge from the originals", n)
		}
	}
}

// TestTolerantReadEveryByteFlip corrupts each byte of the journal in turn:
// every frame before the corrupted one must survive intact, parsing must
// stop at the last clean boundary before the corruption, and the tear must
// be flagged. No single-byte corruption may ever extend the salvage past a
// frame that fails its checksum.
func TestTolerantReadEveryByteFlip(t *testing.T) {
	frames := tolerantFixture()
	stream := deltaBytes(t, frames)
	ends := frameBoundaries(t, frames)

	corrupt := make([]byte, len(stream))
	for i := 0; i < len(stream); i++ {
		copy(corrupt, stream)
		corrupt[i] ^= 0xff
		wantFrames, wantValid := 0, 0
		for _, e := range ends {
			if e <= i {
				wantFrames++
				wantValid = e
			}
		}
		got, validLen, torn := ReadDeltasTolerant(corrupt)
		if !torn {
			t.Fatalf("byte %d flipped: corruption not flagged as a tear", i)
		}
		if len(got) != wantFrames || validLen != int64(wantValid) {
			t.Fatalf("byte %d flipped: salvaged %d frames to offset %d, want %d to %d",
				i, len(got), validLen, wantFrames, wantValid)
		}
		if wantFrames > 0 && !reflect.DeepEqual(got, frames[:wantFrames]) {
			t.Fatalf("byte %d flipped: surviving frames diverge from the originals", i)
		}
	}

	// And the pristine stream still reads whole.
	got, validLen, torn := ReadDeltasTolerant(stream)
	if torn || validLen != int64(len(stream)) || !reflect.DeepEqual(got, frames) {
		t.Fatalf("pristine journal: %d frames, validLen %d, torn %v", len(got), validLen, torn)
	}
}
