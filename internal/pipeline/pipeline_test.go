package pipeline

import (
	"image"
	"testing"

	"github.com/memes-pipeline/memes/internal/cluster"
	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/imaging"
	"github.com/memes-pipeline/memes/internal/phash"
)

// sharedRun caches a pipeline run over the small synthetic corpus; the tests
// only read from it.
var sharedRun *Result

func getRun(t *testing.T) *Result {
	t.Helper()
	if sharedRun != nil {
		return sharedRun
	}
	ds, err := dataset.Generate(dataset.SmallConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	res, err := Run(ds, site, DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sharedRun = res
	return res
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Clustering: cluster.DBSCANConfig{Eps: -1, MinPts: 5}},
		{Clustering: cluster.DefaultDBSCANConfig(), AnnotationThreshold: 99},
		{Clustering: cluster.DefaultDBSCANConfig(), AssociationThreshold: -1},
		{Clustering: cluster.DefaultDBSCANConfig(), Workers: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", cfg)
		}
	}
}

func TestRunInputValidation(t *testing.T) {
	if _, err := Run(nil, nil, DefaultConfig()); err == nil {
		t.Fatal("nil inputs should be rejected")
	}
	ds, err := dataset.Generate(func() dataset.Config {
		c := dataset.SmallConfig()
		c.NumMemes = 3
		c.NoiseImages = map[dataset.Community]int{dataset.Pol: 10}
		c.PostsWithoutImages = nil
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	site, err := ds.Site(true)
	if err != nil {
		t.Fatal(err)
	}
	badCfg := DefaultConfig()
	badCfg.AnnotationThreshold = 200
	if _, err := Run(ds, site, badCfg); err == nil {
		t.Fatal("invalid config should be rejected")
	}
}

func TestRunClustersFringeCommunitiesOnly(t *testing.T) {
	res := getRun(t)
	if len(res.PerCommunity) != 3 {
		t.Fatalf("expected 3 fringe communities, got %d", len(res.PerCommunity))
	}
	for comm := range res.PerCommunity {
		if !comm.Fringe() {
			t.Fatalf("mainstream community %v was clustered", comm)
		}
	}
	for _, c := range res.Clusters {
		if !c.Community.Fringe() {
			t.Fatalf("cluster %d from mainstream community %v", c.ID, c.Community)
		}
	}
}

func TestRunRecoversPlantedMemes(t *testing.T) {
	res := getRun(t)
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters found")
	}
	annotated := res.AnnotatedClusters()
	if len(annotated) == 0 {
		t.Fatal("no annotated clusters")
	}
	// /pol/ must have clusters (it posts the most memes), and the majority of
	// planted memes should be represented by at least one annotated cluster
	// whose representative entry matches the meme's ground-truth entry.
	pol := res.PerCommunity[dataset.Pol]
	if pol.Clusters == 0 {
		t.Fatal("no clusters on /pol/")
	}
	entryByMeme := make(map[int]string)
	for _, m := range res.Dataset.Memes {
		entryByMeme[m.Index] = m.EntryName
	}
	// Map each cluster's most common ground-truth meme to its annotation.
	correct, checked := 0, 0
	for _, ci := range annotated {
		c := res.Clusters[ci]
		// Find the dominant planted meme among the posts matching this
		// cluster's medoid hash exactly.
		memeVotes := map[int]int{}
		for _, p := range res.Dataset.Posts {
			if p.HasImage && p.Community == c.Community && p.PHash() == c.MedoidHash && p.TruthMeme >= 0 {
				memeVotes[p.TruthMeme]++
			}
		}
		bestMeme, bestVotes := -1, 0
		for m, v := range memeVotes {
			if v > bestVotes {
				bestMeme, bestVotes = m, v
			}
		}
		if bestMeme < 0 {
			continue
		}
		checked++
		want := entryByMeme[bestMeme]
		for _, m := range c.Annotation.Matches {
			if m.Entry.Name == want {
				correct++
				break
			}
		}
	}
	if checked == 0 {
		t.Fatal("no clusters could be checked against ground truth")
	}
	if frac := float64(correct) / float64(checked); frac < 0.8 {
		t.Fatalf("annotation accuracy %v too low (%d/%d)", frac, correct, checked)
	}
}

func TestRunNoiseFractionPlausible(t *testing.T) {
	res := getRun(t)
	for comm, summary := range res.PerCommunity {
		if summary.Images == 0 {
			continue
		}
		nf := summary.NoiseFraction()
		if nf < 0.02 || nf > 0.95 {
			t.Errorf("%v noise fraction %v implausible", comm, nf)
		}
		if summary.Annotated > summary.Clusters {
			t.Errorf("%v has more annotated clusters than clusters", comm)
		}
	}
}

func TestRunAssociations(t *testing.T) {
	res := getRun(t)
	if len(res.Associations) == 0 {
		t.Fatal("no associations produced")
	}
	communitiesSeen := map[dataset.Community]bool{}
	for _, a := range res.Associations {
		if a.PostIndex < 0 || a.PostIndex >= len(res.Dataset.Posts) {
			t.Fatal("association post index out of range")
		}
		if a.ClusterID < 0 || a.ClusterID >= len(res.Clusters) {
			t.Fatal("association cluster out of range")
		}
		if !res.Clusters[a.ClusterID].Annotated() {
			t.Fatal("association to an unannotated cluster")
		}
		if a.Distance < 0 || a.Distance > res.Config.AssociationThreshold {
			t.Fatalf("association distance %d outside threshold", a.Distance)
		}
		post := res.Dataset.Posts[a.PostIndex]
		if !post.HasImage {
			t.Fatal("association to a post without an image")
		}
		communitiesSeen[post.Community] = true
		// The association must indeed be within the threshold of the medoid.
		d := phash.Distance(post.PHash(), res.Clusters[a.ClusterID].MedoidHash)
		if d != a.Distance {
			t.Fatal("recorded distance does not match recomputed distance")
		}
	}
	// Mainstream communities (Twitter, Reddit) must also receive
	// associations — that is the whole point of Step 6.
	if !communitiesSeen[dataset.Twitter] || !communitiesSeen[dataset.Reddit] {
		t.Fatalf("mainstream communities missing from associations: %v", communitiesSeen)
	}
	// Associations must be sorted by post index and unique per post.
	seen := map[int]bool{}
	prev := -1
	for _, a := range res.Associations {
		if a.PostIndex < prev {
			t.Fatal("associations not sorted")
		}
		prev = a.PostIndex
		if seen[a.PostIndex] {
			t.Fatal("post associated more than once")
		}
		seen[a.PostIndex] = true
	}
}

func TestRunAssociationRecoversGroundTruthMemes(t *testing.T) {
	res := getRun(t)
	// For associated posts that carry a ground-truth meme, the representative
	// entry of the matched cluster should usually be the meme's entry.
	entryByMeme := make(map[int]string)
	for _, m := range res.Dataset.Memes {
		entryByMeme[m.Index] = m.EntryName
	}
	correct, total := 0, 0
	for _, a := range res.Associations {
		post := res.Dataset.Posts[a.PostIndex]
		if post.TruthMeme < 0 {
			continue
		}
		total++
		want := entryByMeme[post.TruthMeme]
		for _, m := range res.Clusters[a.ClusterID].Annotation.Matches {
			if m.Entry.Name == want {
				correct++
				break
			}
		}
	}
	if total == 0 {
		t.Fatal("no ground-truth posts associated")
	}
	if frac := float64(correct) / float64(total); frac < 0.75 {
		t.Fatalf("association accuracy %v too low (%d/%d)", frac, correct, total)
	}
}

func TestClusterInfoFeatures(t *testing.T) {
	res := getRun(t)
	for _, ci := range res.AnnotatedClusters() {
		c := res.Clusters[ci]
		f := c.Features()
		if f.MedoidHash != c.MedoidHash {
			t.Fatal("features medoid mismatch")
		}
		if !f.Annotated {
			t.Fatal("annotated cluster features not marked annotated")
		}
		if c.EntryName() == "" {
			t.Fatal("annotated cluster without entry name")
		}
	}
}

func TestHashImages(t *testing.T) {
	imgs := []image.Image{imaging.Template(1), imaging.Template(2), imaging.Template(3)}
	hashes, err := HashImages(imgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hashes) != 3 {
		t.Fatalf("expected 3 hashes, got %d", len(hashes))
	}
	direct, _ := phash.FromImage(imgs[1])
	if hashes[1] != direct {
		t.Fatal("parallel hashing disagrees with direct hashing")
	}
	if _, err := HashImages([]image.Image{nil}, 1); err == nil {
		t.Fatal("nil image should produce an error")
	}
	empty, err := HashImages(nil, 0)
	if err != nil || len(empty) != 0 {
		t.Fatal("empty input should produce an empty result")
	}
}
