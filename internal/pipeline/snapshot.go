package pipeline

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"time"

	"github.com/memes-pipeline/memes/internal/annotate"
	"github.com/memes-pipeline/memes/internal/cluster"
	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/index"
	"github.com/memes-pipeline/memes/internal/parallel"
	"github.com/memes-pipeline/memes/internal/phash"
)

// Snapshot persistence: a BuildResult serialises to a versioned binary
// stream so the expensive Steps 2-5 build runs once — on a big box, in a
// batch job — and any number of serving processes reconstitute the engine
// from the snapshot without touching the corpus. The stream carries the
// configuration echo, the per-community clustering summaries, and every
// cluster's metadata including its medoid hash and annotation (entries
// referenced by name). It deliberately does NOT carry:
//
//   - the medoid index: it is rebuilt from the medoid hashes on load, so a
//     snapshot written under one index strategy loads under any other;
//   - the dataset: posts are the traffic, not the artifact — bind one at
//     load time only if the legacy full-corpus Result is needed;
//   - the annotation site's entries: the loader resolves entry names
//     against the site it is given, which keeps snapshots small and makes a
//     site/snapshot mismatch a loud error instead of silent drift.
//
// All integers are unsigned varints (zig-zag for signed values), strings
// are length-prefixed UTF-8, and the payload is protected by a trailing
// CRC-32 so truncation or corruption fails loudly. The format is versioned
// by a magic header; readers reject versions they do not understand.

// snapshotMagic identifies a snapshot stream; the uint32 that follows is
// the format version (see SnapshotV1 / SnapshotV2 in snapv2.go).
var snapshotMagic = [8]byte{'M', 'E', 'M', 'E', 'S', 'N', 'A', 'P'}

// Save writes a binary snapshot of the build to w in the latest format
// (MEMESNAP v2, the flat mmap-able layout). The snapshot captures
// everything Steps 2-5 produced; LoadBuild reconstitutes an equivalent
// BuildResult without re-running them.
func (b *BuildResult) Save(w io.Writer) error {
	return b.SaveVersion(w, SnapshotLatest)
}

// SaveVersion writes a snapshot in an explicit format version: SnapshotV1
// (the varint streaming layout, for consumers that predate v2) or
// SnapshotV2. Both round-trip through LoadBuild to equivalent engines
// serving bitwise-identical query output.
func (b *BuildResult) SaveVersion(w io.Writer, version uint32) error {
	switch version {
	case SnapshotV1:
		return b.saveV1(w)
	case SnapshotV2:
		return b.saveV2(w)
	default:
		return fmt.Errorf("pipeline: unsupported snapshot version %d (supported: %d, %d)", version, SnapshotV1, SnapshotV2)
	}
}

// saveV1 writes the original varint streaming layout.
func (b *BuildResult) saveV1(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("pipeline: writing snapshot header: %w", err)
	}
	var verbuf [4]byte
	binary.LittleEndian.PutUint32(verbuf[:], SnapshotV1)
	if _, err := bw.Write(verbuf[:]); err != nil {
		return fmt.Errorf("pipeline: writing snapshot header: %w", err)
	}

	// Everything after the header streams through the CRC.
	crc := crc32.NewIEEE()
	enc := &snapEncoder{w: io.MultiWriter(bw, crc)}

	// Config echo.
	enc.uvarint(uint64(b.Config.Clustering.Eps))
	enc.uvarint(uint64(b.Config.Clustering.MinPts))
	enc.uvarint(uint64(b.Config.AnnotationThreshold))
	enc.uvarint(uint64(b.Config.AssociationThreshold))
	enc.uvarint(uint64(b.Config.Workers))
	enc.string(string(b.Config.Index))

	// Per-community summaries, in the fixed dataset.Communities() order so
	// the byte stream is identical across runs and worker counts.
	comms := b.Communities()
	enc.uvarint(uint64(len(comms)))
	for _, c := range comms {
		s := b.PerCommunity[c]
		enc.uvarint(uint64(c))
		enc.uvarint(uint64(s.Images))
		enc.uvarint(uint64(s.DistinctHashes))
		enc.uvarint(uint64(s.NoiseImages))
		enc.uvarint(uint64(s.Clusters))
		enc.uvarint(uint64(s.Annotated))
	}

	// Clusters with their medoid hashes and annotations (entries by name).
	enc.uvarint(uint64(len(b.Clusters)))
	for i := range b.Clusters {
		ci := &b.Clusters[i]
		enc.uvarint(uint64(ci.ID))
		enc.uvarint(uint64(ci.Community))
		enc.varint(int64(ci.Label))
		enc.uint64(uint64(ci.MedoidHash))
		enc.uvarint(uint64(ci.Images))
		enc.uvarint(uint64(ci.DistinctHashes))
		enc.bool(ci.Racist)
		enc.bool(ci.Political)
		enc.uvarint(uint64(len(ci.Annotation.Matches)))
		for _, m := range ci.Annotation.Matches {
			enc.string(m.Entry.Name)
			enc.uvarint(uint64(m.Matches))
			enc.float64(m.MatchFraction)
			enc.float64(m.MeanDistance)
		}
		rep := ""
		if ci.Annotation.Representative != nil {
			rep = ci.Annotation.Representative.Name
		}
		enc.string(rep)
	}
	if enc.err != nil {
		return fmt.Errorf("pipeline: writing snapshot: %w", enc.err)
	}

	// Trailing CRC over the payload.
	var crcbuf [4]byte
	binary.LittleEndian.PutUint32(crcbuf[:], crc.Sum32())
	if _, err := bw.Write(crcbuf[:]); err != nil {
		return fmt.Errorf("pipeline: writing snapshot checksum: %w", err)
	}
	return bw.Flush()
}

// LoadBuild reads a snapshot written by Save and reconstitutes a BuildResult
// bound to the given annotation site, rebuilding the medoid index from the
// persisted medoid hashes — no Steps 2-5 work runs. Annotation entries are
// resolved by name against site; a snapshot whose entries the site does not
// carry fails loudly.
//
// ds may be nil: Associate and Match serve arbitrary posts without it, and
// only the legacy full-corpus Result requires a bound dataset. reconfig, if
// non-nil, may adjust the decoded configuration (worker count, index
// strategy) before the index is rebuilt; changing build-phase thresholds has
// no effect on the already-built clusters and only skews the config echo.
// progress observes a single StageLoad start/completion event pair.
func LoadBuild(r io.Reader, site *annotate.Site, ds *dataset.Dataset, reconfig func(*Config), progress ProgressFunc) (*BuildResult, error) {
	if site == nil {
		return nil, errors.New("pipeline: nil annotation site")
	}
	br := bufio.NewReader(r)
	header, err := br.Peek(12)
	if err != nil {
		return nil, fmt.Errorf("pipeline: reading snapshot header: %w", err)
	}
	if [8]byte(header[:8]) != snapshotMagic {
		return nil, errors.New("pipeline: not a snapshot stream (bad magic)")
	}
	switch v := binary.LittleEndian.Uint32(header[8:12]); v {
	case SnapshotV1:
		return loadBuildV1(br, site, ds, reconfig, progress)
	case SnapshotV2:
		// The flat layout is random-access, not streaming: slurp the rest
		// and decode in place. File-based callers use LoadBuildFile, which
		// mmaps instead of reading.
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("pipeline: reading snapshot: %w", err)
		}
		return loadBuildV2(data, site, ds, reconfig, progress)
	default:
		return nil, fmt.Errorf("pipeline: unsupported snapshot version %d (supported: %d, %d)", v, SnapshotV1, SnapshotV2)
	}
}

// loadBuildV1 decodes the varint streaming layout; br is positioned at the
// start of the stream (header included — it is re-read here).
func loadBuildV1(br *bufio.Reader, site *annotate.Site, ds *dataset.Dataset, reconfig func(*Config), progress ProgressFunc) (*BuildResult, error) {
	start := now()
	var header [12]byte
	if _, err := io.ReadFull(br, header[:]); err != nil {
		return nil, fmt.Errorf("pipeline: reading snapshot header: %w", err)
	}

	crc := crc32.NewIEEE()
	dec := &snapDecoder{r: br, crc: crc}

	b := &BuildResult{
		Site:         site,
		Dataset:      ds,
		PerCommunity: make(map[dataset.Community]CommunityClustering),
		snapVersion:  SnapshotV1,
	}
	b.Config = Config{
		Clustering: cluster.DBSCANConfig{
			Eps:    int(dec.uvarint()),
			MinPts: int(dec.uvarint()),
		},
		AnnotationThreshold:  int(dec.uvarint()),
		AssociationThreshold: int(dec.uvarint()),
		Workers:              int(dec.uvarint()),
		Index:                index.Strategy(dec.string()),
	}

	// Decode phase: only structural reads, no semantic validation — a
	// corrupt stream must be diagnosed by the CRC check below, not by
	// whichever garbled value happens to trip a validity rule first. Entry
	// names are held as strings and resolved afterwards.
	type matchRaw struct {
		name          string
		matches       int
		matchFraction float64
		meanDistance  float64
	}
	type clusterRaw struct {
		info    ClusterInfo
		matches []matchRaw
		rep     string
	}

	nComms := int(dec.uvarint())
	type commRaw struct {
		c dataset.Community
		s CommunityClustering
	}
	var comms []commRaw
	for i := 0; i < nComms && dec.err == nil; i++ {
		c := dataset.Community(dec.uvarint())
		comms = append(comms, commRaw{c: c, s: CommunityClustering{
			Community:      c,
			Images:         int(dec.uvarint()),
			DistinctHashes: int(dec.uvarint()),
			NoiseImages:    int(dec.uvarint()),
			Clusters:       int(dec.uvarint()),
			Annotated:      int(dec.uvarint()),
		}})
	}

	nClusters := int(dec.uvarint())
	var clusters []clusterRaw
	if dec.err == nil && nClusters > 0 {
		// Cap the pre-allocation: a corrupt count must not trigger a huge
		// allocation before the CRC check gets a chance to reject the
		// stream. The slice still grows to the true size via append.
		capHint := nClusters
		if capHint > 1<<16 {
			capHint = 1 << 16
		}
		clusters = make([]clusterRaw, 0, capHint)
	}
	for i := 0; i < nClusters && dec.err == nil; i++ {
		cr := clusterRaw{info: ClusterInfo{
			ID:         int(dec.uvarint()),
			Community:  dataset.Community(dec.uvarint()),
			Label:      int(dec.varint()),
			MedoidHash: phash.Hash(dec.uint64()),
		}}
		cr.info.Images = int(dec.uvarint())
		cr.info.DistinctHashes = int(dec.uvarint())
		cr.info.Racist = dec.bool()
		cr.info.Political = dec.bool()
		nMatches := int(dec.uvarint())
		for j := 0; j < nMatches && dec.err == nil; j++ {
			cr.matches = append(cr.matches, matchRaw{
				name:          dec.string(),
				matches:       int(dec.uvarint()),
				matchFraction: dec.float64(),
				meanDistance:  dec.float64(),
			})
		}
		cr.rep = dec.string()
		clusters = append(clusters, cr)
	}
	if dec.err != nil {
		return nil, fmt.Errorf("pipeline: reading snapshot: %w", dec.err)
	}

	// Verify the payload checksum before trusting (or validating) any of it.
	want := crc.Sum32()
	var crcbuf [4]byte
	if _, err := io.ReadFull(br, crcbuf[:]); err != nil {
		return nil, fmt.Errorf("pipeline: reading snapshot checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(crcbuf[:]); got != want {
		return nil, fmt.Errorf("pipeline: snapshot checksum mismatch (stored %08x, computed %08x): stream corrupt", got, want)
	}

	// Validation and resolution phase: the stream is intact, so every
	// failure from here on is a genuine semantic mismatch (wrong site,
	// incompatible producer), not corruption.
	for _, cr := range comms {
		if !cr.c.Valid() {
			return nil, fmt.Errorf("pipeline: snapshot names invalid community %d", int(cr.c))
		}
		b.PerCommunity[cr.c] = cr.s
	}
	for _, cr := range clusters {
		ci := cr.info
		for _, m := range cr.matches {
			em := annotate.EntryMatch{
				Matches:       m.matches,
				MatchFraction: m.matchFraction,
				MeanDistance:  m.meanDistance,
			}
			if em.Entry = site.Entry(m.name); em.Entry == nil {
				return nil, fmt.Errorf("pipeline: snapshot references entry %q not on the annotation site (wrong site, or filtered differently than at build time)", m.name)
			}
			ci.Annotation.Matches = append(ci.Annotation.Matches, em)
		}
		if cr.rep != "" {
			if ci.Annotation.Representative = site.Entry(cr.rep); ci.Annotation.Representative == nil {
				return nil, fmt.Errorf("pipeline: snapshot references entry %q not on the annotation site", cr.rep)
			}
		}
		if ci.ID != len(b.Clusters) {
			return nil, fmt.Errorf("pipeline: snapshot cluster %d carries ID %d (stream reordered or corrupt)", len(b.Clusters), ci.ID)
		}
		b.Clusters = append(b.Clusters, ci)
	}

	if reconfig != nil {
		reconfig(&b.Config)
	}
	if err := b.Config.Validate(); err != nil {
		return nil, err
	}
	b.progress = progress
	b.buildStats.Workers = parallel.Workers(b.Config.Workers)

	// Rebuild the medoid index — the only compute on the load path. The
	// single load stage event is the observable proof that Steps 2-5 never
	// ran: a loaded engine's stats carry StageLoad where a built engine's
	// carry StageCluster and StageAnnotate.
	em := emitter{stats: &b.buildStats, progress: progress}
	stageStart := em.start(StageLoad)
	annotated, err := b.buildIndex()
	if err != nil {
		return nil, err
	}
	em.done(StageLoad, stageStart, len(b.Clusters))

	fringeImages := 0
	for _, s := range b.PerCommunity {
		fringeImages += s.Images
	}
	b.buildStats.FringeImages = fringeImages
	b.buildStats.Clusters = len(b.Clusters)
	b.buildStats.AnnotatedClusters = annotated
	b.buildWall = since(start)
	return b, nil
}

// --- delta snapshots ---------------------------------------------------------

// Delta snapshots are the journal of the streaming ingest path: each frame
// records one accepted batch of posts, layered on top of the base MEMESNAP.
// A delta segment file is a sequence of self-contained frames — magic +
// version header, varint-coded payload, CRC-32 trailer per frame — so an
// append that dies mid-frame corrupts only that frame and is rejected loudly
// on replay. FromSeq chains frames: it is the total number of posts
// journaled before the frame, so replay can detect gaps and skip frames
// already folded into a compacted base snapshot.

// deltaMagic identifies a delta frame.
var deltaMagic = [8]byte{'M', 'E', 'M', 'E', 'D', 'E', 'L', 'T'}

// deltaVersion is the current delta frame format version.
const deltaVersion uint32 = 1

// Delta is one ingested batch of posts plus its position in the journal.
type Delta struct {
	// FromSeq is the number of posts journaled before this frame.
	FromSeq uint64
	// Posts are the batch's posts, in ingest order.
	Posts []dataset.Post
}

// SaveDelta appends one self-contained delta frame to w.
func SaveDelta(w io.Writer, d *Delta) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(deltaMagic[:]); err != nil {
		return fmt.Errorf("pipeline: writing delta header: %w", err)
	}
	var verbuf [4]byte
	binary.LittleEndian.PutUint32(verbuf[:], deltaVersion)
	if _, err := bw.Write(verbuf[:]); err != nil {
		return fmt.Errorf("pipeline: writing delta header: %w", err)
	}

	crc := crc32.NewIEEE()
	enc := &snapEncoder{w: io.MultiWriter(bw, crc)}
	enc.uvarint(d.FromSeq)
	enc.uvarint(uint64(len(d.Posts)))
	for i := range d.Posts {
		p := &d.Posts[i]
		enc.varint(p.ID)
		enc.uvarint(uint64(p.Community))
		enc.string(p.Subreddit)
		enc.varint(p.Timestamp.UnixNano())
		enc.bool(p.HasImage)
		enc.uint64(p.Hash)
		enc.varint(int64(p.Score))
		enc.varint(int64(p.TruthMeme))
		enc.varint(int64(p.TruthRoot))
	}
	if enc.err != nil {
		return fmt.Errorf("pipeline: writing delta frame: %w", enc.err)
	}

	var crcbuf [4]byte
	binary.LittleEndian.PutUint32(crcbuf[:], crc.Sum32())
	if _, err := bw.Write(crcbuf[:]); err != nil {
		return fmt.Errorf("pipeline: writing delta checksum: %w", err)
	}
	return bw.Flush()
}

// maxDeltaPosts caps the per-frame pre-allocation so a corrupt count cannot
// trigger a huge allocation before the CRC check rejects the frame.
const maxDeltaPosts = 1 << 16

// ReadDeltas reads every delta frame from r until a clean EOF. A stream that
// ends mid-frame, fails a frame checksum, or names an invalid community is
// rejected with an error; whatever parsed before the bad frame is discarded
// so callers never act on half a journal.
func ReadDeltas(r io.Reader) ([]Delta, error) {
	br := bufio.NewReader(r)
	var out []Delta
	for {
		var header [12]byte
		if _, err := io.ReadFull(br, header[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("pipeline: reading delta frame %d header: %w", len(out), err)
		}
		if [8]byte(header[:8]) != deltaMagic {
			return nil, fmt.Errorf("pipeline: delta frame %d: not a delta stream (bad magic)", len(out))
		}
		if v := binary.LittleEndian.Uint32(header[8:12]); v != deltaVersion {
			return nil, fmt.Errorf("pipeline: delta frame %d: unsupported version %d (supported: %d)", len(out), v, deltaVersion)
		}

		crc := crc32.NewIEEE()
		dec := &snapDecoder{r: br, crc: crc}
		d := Delta{FromSeq: dec.uvarint()}
		n := int(dec.uvarint())
		if dec.err == nil && n > 0 {
			capHint := n
			if capHint > maxDeltaPosts {
				capHint = maxDeltaPosts
			}
			d.Posts = make([]dataset.Post, 0, capHint)
		}
		for i := 0; i < n && dec.err == nil; i++ {
			var p dataset.Post
			p.ID = dec.varint()
			p.Community = dataset.Community(dec.uvarint())
			p.Subreddit = dec.string()
			p.Timestamp = timeFromUnixNano(dec.varint())
			p.HasImage = dec.bool()
			p.Hash = dec.uint64()
			p.Score = int(dec.varint())
			p.TruthMeme = int(dec.varint())
			p.TruthRoot = int(dec.varint())
			d.Posts = append(d.Posts, p)
		}
		if dec.err != nil {
			return nil, fmt.Errorf("pipeline: reading delta frame %d: %w", len(out), dec.err)
		}

		// Verify the frame checksum before validating any of it.
		want := crc.Sum32()
		var crcbuf [4]byte
		if _, err := io.ReadFull(br, crcbuf[:]); err != nil {
			return nil, fmt.Errorf("pipeline: reading delta frame %d checksum: %w", len(out), err)
		}
		if got := binary.LittleEndian.Uint32(crcbuf[:]); got != want {
			return nil, fmt.Errorf("pipeline: delta frame %d checksum mismatch (stored %08x, computed %08x): stream corrupt", len(out), got, want)
		}
		for i := range d.Posts {
			if !d.Posts[i].Community.Valid() {
				return nil, fmt.Errorf("pipeline: delta frame %d post %d names invalid community %d", len(out), i, int(d.Posts[i].Community))
			}
		}
		out = append(out, d)
	}
}

// SpliceDeltas orders frames by journal position and splices their posts
// into one contiguous stream starting at position `from` — typically the
// sequence a compacted base snapshot already folds, or 0 for a plain base.
// Frames fully below `from` are skipped (already folded); overlapping frames
// contribute only their uncovered tail (compaction rewrites the journal
// head, so a crash between the rewrite and the old-segment cleanup leaves
// benign overlaps); a frame starting beyond the covered position is a gap
// and rejects the journal. Returns the spliced posts and the total sequence
// covered.
func SpliceDeltas(frames []Delta, from uint64) ([]dataset.Post, uint64, error) {
	ordered := make([]Delta, len(frames))
	copy(ordered, frames)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].FromSeq < ordered[j].FromSeq })
	covered := from
	var posts []dataset.Post
	for _, fr := range ordered {
		end := fr.FromSeq + uint64(len(fr.Posts))
		if end <= covered {
			continue
		}
		if fr.FromSeq > covered {
			return nil, 0, fmt.Errorf("pipeline: delta journal gap: frame starts at %d but only %d posts are covered", fr.FromSeq, covered)
		}
		posts = append(posts, fr.Posts[covered-fr.FromSeq:]...)
		covered = end
	}
	return posts, covered, nil
}

// timeFromUnixNano reconstructs a delta timestamp in UTC, so a post round-
// tripped through a delta frame compares equal regardless of the local zone.
func timeFromUnixNano(n int64) time.Time { return time.Unix(0, n).UTC() }

// --- minimal codec helpers ---------------------------------------------------

// snapEncoder writes the primitive snapshot vocabulary, latching the first
// error so call sites stay linear.
type snapEncoder struct {
	w   io.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

func (e *snapEncoder) write(p []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(p)
}

func (e *snapEncoder) uvarint(v uint64) { e.write(e.buf[:binary.PutUvarint(e.buf[:], v)]) }
func (e *snapEncoder) varint(v int64)   { e.write(e.buf[:binary.PutVarint(e.buf[:], v)]) }

func (e *snapEncoder) uint64(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	e.write(e.buf[:8])
}

func (e *snapEncoder) float64(v float64) { e.uint64(math.Float64bits(v)) }

func (e *snapEncoder) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.write([]byte{b})
}

func (e *snapEncoder) string(s string) {
	e.uvarint(uint64(len(s)))
	e.write([]byte(s))
}

// snapDecoder mirrors snapEncoder; every read also feeds the CRC so the
// trailing checksum covers exactly the bytes consumed.
type snapDecoder struct {
	r   *bufio.Reader
	crc io.Writer
	err error
}

// maxSnapshotString bounds decoded string lengths so a corrupt length prefix
// cannot trigger a huge allocation before the CRC check is reached.
const maxSnapshotString = 1 << 20

func (d *snapDecoder) readByte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.err = err
		return 0
	}
	d.crc.Write([]byte{b})
	return b
}

func (d *snapDecoder) read(p []byte) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, p); err != nil {
		d.err = err
		return
	}
	d.crc.Write(p)
}

func (d *snapDecoder) uvarint() uint64 {
	var v uint64
	var shift uint
	for {
		b := d.readByte()
		if d.err != nil {
			return 0
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
		shift += 7
		if shift >= 64 {
			d.err = errors.New("uvarint overflows 64 bits")
			return 0
		}
	}
}

func (d *snapDecoder) varint() int64 {
	u := d.uvarint()
	v := int64(u >> 1)
	if u&1 != 0 {
		v = ^v
	}
	return v
}

func (d *snapDecoder) uint64() uint64 {
	var buf [8]byte
	d.read(buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

func (d *snapDecoder) float64() float64 { return math.Float64frombits(d.uint64()) }

func (d *snapDecoder) bool() bool { return d.readByte() != 0 }

func (d *snapDecoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxSnapshotString {
		d.err = fmt.Errorf("string length %d exceeds limit", n)
		return ""
	}
	buf := make([]byte, n)
	d.read(buf)
	if d.err != nil {
		return ""
	}
	return string(buf)
}
