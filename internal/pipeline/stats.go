package pipeline

import (
	"fmt"
	"strings"
	"time"
)

// Stage names reported in RunStats.Stages, in execution order.
const (
	StageCluster   = "cluster"   // Steps 2-3: per-community DBSCAN + medoids
	StageAnnotate  = "annotate"  // Step 5: medoid annotation against the site
	StageAssociate = "associate" // Step 6: post-to-cluster association
	StageLoad      = "load"      // snapshot decode + index rebuild (replaces Steps 2-5 on LoadBuild)
	StageRecluster = "recluster" // streaming ingest: incremental DBSCAN over the affected communities

	// StageNeighbours is the accounting record of DBSCAN's phase one: the
	// parallel eps-neighbourhood scan, the CPU analogue of the paper's GPU
	// pairwise engine. It runs inside the cluster stage (one scan per fringe
	// community), so it is recorded right after cluster completes; Items is
	// the number of distinct hashes scanned and Duration the per-community
	// scan wall times summed — a throughput record, not an extra serial
	// phase.
	StageNeighbours = "neighbours"
)

// StageStats records the wall-clock cost of one pipeline stage.
type StageStats struct {
	// Name is one of the Stage* constants.
	Name string
	// Duration is the stage's wall time.
	Duration time.Duration
	// Items is the number of units the stage processed: fringe images for
	// clustering, clusters for annotation, image posts for association.
	Items int
}

// Throughput returns Items per second, or 0 for an instantaneous stage.
func (s StageStats) Throughput() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Items) / s.Duration.Seconds()
}

// RunStats aggregates the timing of one pipeline run: per-stage wall time,
// throughput, and output counts. It is the quantity the paper reports in §7
// (Performance: ~73 images/sec on two Titan Xp GPUs for Step 6).
type RunStats struct {
	// Workers is the resolved worker-pool size the run used.
	Workers int
	// Stages lists the stage timings in execution order.
	Stages []StageStats
	// Total is the end-to-end wall time of Run.
	Total time.Duration

	// FringeImages is the number of image occurrences on the fringe
	// communities (the clustering input).
	FringeImages int
	// TotalImages is the number of image posts across all communities (the
	// association input).
	TotalImages int
	// Clusters and AnnotatedClusters count the Steps 2-5 output.
	Clusters          int
	AnnotatedClusters int
	// Associations counts the Step 6 output.
	Associations int
}

// observe records one stage-completion event; RunStats.Stages is exactly
// the sequence of completion events a ProgressFunc would see.
func (s *RunStats) observe(ev StageEvent) {
	if !ev.Done {
		return
	}
	s.Stages = append(s.Stages, StageStats{Name: ev.Stage, Duration: ev.Duration, Items: ev.Items})
}

// Stage returns the stats of the named stage; ok is false when the stage
// was not recorded.
func (s RunStats) Stage(name string) (StageStats, bool) {
	for _, st := range s.Stages {
		if st.Name == name {
			return st, true
		}
	}
	return StageStats{}, false
}

// ImagesPerSec returns the end-to-end throughput: image posts processed per
// second of total wall time.
func (s RunStats) ImagesPerSec() float64 {
	if s.Total <= 0 {
		return 0
	}
	return float64(s.TotalImages) / s.Total.Seconds()
}

// String renders the stats as a short human-readable block, one line per
// stage plus a totals line.
func (s RunStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline stats (workers=%d):\n", s.Workers)
	for _, st := range s.Stages {
		fmt.Fprintf(&b, "  %-10s %12v  %8d items  %10.0f items/sec\n",
			st.Name, st.Duration.Round(time.Microsecond), st.Items, st.Throughput())
	}
	fmt.Fprintf(&b, "  %-10s %12v  %8d images  %10.0f images/sec  (%d clusters, %d annotated, %d associations)",
		"total", s.Total.Round(time.Microsecond), s.TotalImages, s.ImagesPerSec(),
		s.Clusters, s.AnnotatedClusters, s.Associations)
	return b.String()
}
