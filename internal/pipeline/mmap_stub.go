//go:build !unix

package pipeline

import (
	"errors"
	"os"
)

// mmapFile is unavailable on this platform; LoadBuildFile falls back to a
// single read of the whole file.
func mmapFile(*os.File, int) ([]byte, func() error, error) {
	return nil, nil, errors.New("pipeline: mmap not supported on this platform")
}
