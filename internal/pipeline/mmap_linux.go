//go:build linux

package pipeline

import "syscall"

// mmapPopulate prefaults the mapping at mmap time on Linux.
const mmapPopulate = syscall.MAP_POPULATE
