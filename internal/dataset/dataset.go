// Package dataset synthesises the corpora the paper's measurement study was
// run on: posts with images from four Web communities (Twitter, Reddit —
// including The Donald subreddit — 4chan's /pol/, and Gab) over a 13-month
// window, plus a Know Your Meme-style annotation site.
//
// The paper's 160M crawled images cannot be shipped, so the generator
// produces a corpus with the same statistical structure the pipeline and the
// analyses rely on:
//
//   - memes are procedurally rendered image templates; every post of a meme
//     uses a perceptually-near variant of its template, so DBSCAN over
//     perceptual hashes recovers the planted clusters;
//   - one-off "noise" images produce the 60-70% unclustered fraction
//     reported in Table 2;
//   - posting times are driven by a ground-truth multivariate Hawkes process
//     whose community-to-community weights encode the influence structure
//     the paper estimates (/pol/ posts the most memes, The Donald is the
//     most efficient spreader), so the influence estimation of Section 5 can
//     be validated against a known answer;
//   - the KYM site has entries in every category with heavy-tailed gallery
//     sizes, origin metadata, racist/politics tags, and screenshot pollution
//     for Step 4 to remove;
//   - Reddit and Gab posts carry scores whose distributions differ between
//     political/racist and other memes, reproducing the shape of Figure 9;
//   - Reddit posts carry subreddit labels with The Donald dominant
//     (Table 6).
package dataset

import (
	"fmt"
	"time"
)

// Community identifies one of the Web communities in the study. The values
// double as the process indexes of the Hawkes models, matching the paper's
// five-process setup (/pol/, Reddit, Twitter, Gab, The Donald), where
// "Reddit" means Reddit excluding The Donald.
type Community int

// The five communities of the study.
const (
	Pol Community = iota
	Reddit
	Twitter
	Gab
	TheDonald
	numCommunities
)

// NumCommunities is the number of communities (Hawkes processes).
const NumCommunities = int(numCommunities)

// String returns the paper's display name for the community.
func (c Community) String() string {
	switch c {
	case Pol:
		return "/pol/"
	case Reddit:
		return "Reddit"
	case Twitter:
		return "Twitter"
	case Gab:
		return "Gab"
	case TheDonald:
		return "The_Donald"
	default:
		return fmt.Sprintf("Community(%d)", int(c))
	}
}

// Communities lists all communities in process-index order.
func Communities() []Community {
	return []Community{Pol, Reddit, Twitter, Gab, TheDonald}
}

// Valid reports whether c is a known community.
func (c Community) Valid() bool { return c >= 0 && c < numCommunities }

// Fringe reports whether the community is one of the three fringe
// communities used to seed the clustering (/pol/, Gab, The Donald).
func (c Community) Fringe() bool { return c == Pol || c == Gab || c == TheDonald }

// Platform returns the hosting platform of the community: The Donald posts
// live on Reddit, every other community is its own platform. Table 1 is
// reported per platform.
func (c Community) Platform() string {
	if c == TheDonald {
		return "Reddit"
	}
	return c.String()
}

// Post is a single post on a Web community. Only posts with images are
// materialised with a Hash; posts without images are accounted for in the
// per-community totals of the dataset.
type Post struct {
	// ID is a unique post identifier.
	ID int64 `json:"id"`
	// Community is where the post appeared.
	Community Community `json:"community"`
	// Subreddit is set for Reddit and The Donald posts.
	Subreddit string `json:"subreddit,omitempty"`
	// Timestamp is the posting time.
	Timestamp time.Time `json:"timestamp"`
	// HasImage reports whether the post carries an image.
	HasImage bool `json:"has_image"`
	// Hash is the perceptual hash of the post's image (valid when HasImage).
	Hash uint64 `json:"phash,omitempty"`
	// Score is the community voting score (Reddit, The Donald and Gab only).
	Score int `json:"score,omitempty"`
	// TruthMeme is the ground-truth meme index the image belongs to, or -1
	// for one-off noise images. It is never consulted by the pipeline; it
	// exists so experiments can measure recovery accuracy.
	TruthMeme int `json:"truth_meme"`
	// TruthRoot is the ground-truth root-cause community of the posting
	// cascade this post belongs to, or -1 for noise posts.
	TruthRoot int `json:"truth_root"`
}

// MemeSpec describes one planted meme: its KYM identity, content flags, and
// the ground-truth Hawkes dynamics of its spread.
type MemeSpec struct {
	// Index is the meme's position in Dataset.Memes.
	Index int
	// EntryName is the KYM entry the meme belongs to. Several memes may
	// share an entry (the paper observes up to 124 clusters per entry).
	EntryName string
	// Category is the KYM category of the entry.
	Category string
	// Racist and Political flag membership in the tag groups of §4.2.1.
	Racist    bool
	Political bool
	// TemplateSeed identifies the procedural image template.
	TemplateSeed int64
	// VariantHashes is the pool of perceptual hashes of the meme's rendered
	// variants; posts sample from this pool.
	VariantHashes []uint64
	// Popularity scales the meme's overall posting rate.
	Popularity float64
}

// Dataset is a fully generated corpus.
type Dataset struct {
	// Posts holds every post, across all communities, sorted by time.
	Posts []Post
	// Memes describes the planted memes.
	Memes []MemeSpec
	// KYMEntries are the synthetic annotation-site entries (see kym.go for
	// conversion to an annotate.Site).
	KYMEntries []KYMEntry
	// Start and End bound the observation window.
	Start, End time.Time
	// PostTotals is the total number of posts per community including posts
	// without images (Table 1's first column).
	PostTotals map[Community]int
	// GroundTruthInfluence is the community-to-community Hawkes weight
	// matrix used to drive meme spreading, recorded for validation.
	GroundTruthInfluence [][]float64
}

// KYMEntry is the serialisable form of an annotation-site entry.
type KYMEntry struct {
	Name     string   `json:"name"`
	Title    string   `json:"title"`
	Category string   `json:"category"`
	Tags     []string `json:"tags"`
	Origin   string   `json:"origin"`
	Year     int      `json:"year"`
	// Gallery holds the perceptual hashes of the entry's image gallery,
	// including screenshot pollution marked in ScreenshotFlags.
	Gallery []uint64 `json:"gallery"`
	// ScreenshotFlags marks which gallery images are social-network
	// screenshots (to be removed by Step 4).
	ScreenshotFlags []bool `json:"screenshot_flags"`
}
