package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/memes-pipeline/memes/internal/phash"
)

// hashFromUint converts a serialised hash back to a phash.Hash.
func hashFromUint(h uint64) phash.Hash { return phash.Hash(h) }

// PHash returns the post's perceptual hash as a phash.Hash.
func (p Post) PHash() phash.Hash { return phash.Hash(p.Hash) }

// manifest is the top-level metadata written alongside the post stream.
type manifest struct {
	Start                time.Time   `json:"start"`
	End                  time.Time   `json:"end"`
	Memes                []MemeSpec  `json:"memes"`
	KYMEntries           []KYMEntry  `json:"kym_entries"`
	PostTotals           map[int]int `json:"post_totals"`
	GroundTruthInfluence [][]float64 `json:"ground_truth_influence"`
}

// Save writes the dataset to a directory: a manifest.json with metadata and
// a posts.jsonl stream with one post per line. The directory is created if
// needed.
func (d *Dataset) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: creating %s: %w", dir, err)
	}
	m := manifest{
		Start:                d.Start,
		End:                  d.End,
		Memes:                d.Memes,
		KYMEntries:           d.KYMEntries,
		PostTotals:           make(map[int]int, len(d.PostTotals)),
		GroundTruthInfluence: d.GroundTruthInfluence,
	}
	for c, n := range d.PostTotals {
		m.PostTotals[int(c)] = n
	}
	manifestBytes, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("dataset: encoding manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), manifestBytes, 0o644); err != nil {
		return fmt.Errorf("dataset: writing manifest: %w", err)
	}

	f, err := os.Create(filepath.Join(dir, "posts.jsonl"))
	if err != nil {
		return fmt.Errorf("dataset: creating posts file: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for i := range d.Posts {
		if err := enc.Encode(&d.Posts[i]); err != nil {
			return fmt.Errorf("dataset: encoding post %d: %w", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("dataset: flushing posts: %w", err)
	}
	return f.Close()
}

// Load reads a dataset previously written with Save.
func Load(dir string) (*Dataset, error) {
	manifestBytes, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("dataset: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(manifestBytes, &m); err != nil {
		return nil, fmt.Errorf("dataset: decoding manifest: %w", err)
	}
	d := &Dataset{
		Start:                m.Start,
		End:                  m.End,
		Memes:                m.Memes,
		KYMEntries:           m.KYMEntries,
		PostTotals:           make(map[Community]int, len(m.PostTotals)),
		GroundTruthInfluence: m.GroundTruthInfluence,
	}
	for c, n := range m.PostTotals {
		d.PostTotals[Community(c)] = n
	}

	f, err := os.Open(filepath.Join(dir, "posts.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("dataset: opening posts: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(bufio.NewReader(f))
	for {
		var p Post
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("dataset: decoding post: %w", err)
		}
		if !p.Community.Valid() {
			return nil, fmt.Errorf("dataset: post %d has invalid community %d", p.ID, p.Community)
		}
		d.Posts = append(d.Posts, p)
	}
	return d, nil
}

// Stats summarises the dataset per platform, mirroring Table 1.
type Stats struct {
	Platform        string
	Posts           int
	PostsWithImages int
	Images          int
	UniquePHashes   int
}

// PlatformStats computes the Table 1 rows of the dataset: one row per
// hosting platform (The Donald is folded into Reddit).
func (d *Dataset) PlatformStats() []Stats {
	type agg struct {
		posts, withImages int
		hashes            map[uint64]struct{}
	}
	byPlatform := map[string]*agg{}
	platformOrder := []string{"Twitter", "Reddit", "/pol/", "Gab"}
	for _, p := range platformOrder {
		byPlatform[p] = &agg{hashes: make(map[uint64]struct{})}
	}
	for comm, total := range d.PostTotals {
		byPlatform[comm.Platform()].posts += total
	}
	for _, post := range d.Posts {
		a := byPlatform[post.Community.Platform()]
		if post.HasImage {
			a.withImages++
			a.hashes[post.Hash] = struct{}{}
		}
	}
	out := make([]Stats, 0, len(platformOrder))
	for _, p := range platformOrder {
		a := byPlatform[p]
		out = append(out, Stats{
			Platform:        p,
			Posts:           a.posts,
			PostsWithImages: a.withImages,
			Images:          a.withImages,
			UniquePHashes:   len(a.hashes),
		})
	}
	return out
}

// PostsOf returns the posts of a single community, preserving time order.
func (d *Dataset) PostsOf(c Community) []Post {
	var out []Post
	for _, p := range d.Posts {
		if p.Community == c {
			out = append(out, p)
		}
	}
	return out
}

// FringeImageHashes returns the image hashes (with occurrence counts) of the
// three fringe communities used to seed the clustering, in first-seen order.
// The returned slices are aligned: hashes[i] occurred counts[i] times.
func (d *Dataset) FringeImageHashes() (hashes []phash.Hash, counts []int, postIdx map[phash.Hash][]int) {
	index := make(map[phash.Hash]int)
	postIdx = make(map[phash.Hash][]int)
	for i, p := range d.Posts {
		if !p.HasImage || !p.Community.Fringe() {
			continue
		}
		h := p.PHash()
		if at, ok := index[h]; ok {
			counts[at]++
		} else {
			index[h] = len(hashes)
			hashes = append(hashes, h)
			counts = append(counts, 1)
		}
		postIdx[h] = append(postIdx[h], i)
	}
	return hashes, counts, postIdx
}
