package dataset

import (
	"fmt"
	"math/rand"

	"github.com/memes-pipeline/memes/internal/annotate"
)

// entryPlan is the intermediate assignment of planted memes to KYM entries.
type entryPlan struct {
	records     []KYMEntry
	ownerOfMeme []int // meme index -> entry index
	isRacist    []bool
	isPolitical []bool
}

// planEntries decides which KYM entries exist, their categories, tags, and
// origins, and distributes the planted memes among them with a skewed
// memes-per-entry distribution (many entries own one meme, a few own many,
// mirroring Figure 5(b)).
func planEntries(rng *rand.Rand, cfg Config) *entryPlan {
	plan := &entryPlan{ownerOfMeme: make([]int, cfg.NumMemes)}

	// Decide how many memes are racist / political.
	racistCount := int(float64(cfg.NumMemes)*cfg.RacistFraction + 0.5)
	politicalCount := int(float64(cfg.NumMemes)*cfg.PoliticalFraction + 0.5)

	addEntry := func(name, title, category string, tags []string, racist, political bool) int {
		idx := len(plan.records)
		plan.records = append(plan.records, KYMEntry{
			Name:     name,
			Title:    title,
			Category: category,
			Tags:     tags,
			Origin:   sampleOrigin(rng),
			Year:     2008 + rng.Intn(9),
		})
		plan.isRacist = append(plan.isRacist, racist)
		plan.isPolitical = append(plan.isPolitical, political)
		return idx
	}

	// Seed well-known entries: people, events, and named memes.
	for _, name := range peopleEntryNames {
		addEntry(name, name, string(annotate.CategoryPeople),
			[]string{"politics"}, false, true)
	}
	for _, name := range eventEntryNames {
		addEntry(name, name, string(annotate.CategoryEvent),
			[]string{"politics", "2016 us presidential election"}, false, true)
	}
	for _, name := range memeEntryNames {
		addEntry(name, name, string(annotate.CategoryMeme), nil, false, false)
	}

	// Mark some of the named meme entries as racist / political so the tag
	// groups are populated deterministically regardless of the meme count.
	racistSeeds := []string{"happy-merchant", "cult-of-kek"}
	politicalSeeds := []string{"make-america-great-again", "counter-signal-memes"}
	for i := range plan.records {
		for _, n := range racistSeeds {
			if plan.records[i].Name == n {
				plan.records[i].Tags = append(plan.records[i].Tags, "racism", "antisemitism")
				plan.isRacist[i] = true
			}
		}
		for _, n := range politicalSeeds {
			if plan.records[i].Name == n {
				plan.records[i].Tags = append(plan.records[i].Tags, "politics", "trump")
				plan.isPolitical[i] = true
			}
		}
	}

	// Assign memes to entries: each meme picks an existing entry that still
	// has capacity, or creates a new generic entry. Racist and political
	// quotas are filled first so the fractions hold.
	capacityUsed := make(map[int]int)
	pickEntry := func(wantRacist, wantPolitical bool) int {
		// Try a few times to reuse an existing suitable entry.
		for attempt := 0; attempt < 8; attempt++ {
			idx := rng.Intn(len(plan.records))
			if capacityUsed[idx] >= cfg.MemesPerEntryMax {
				continue
			}
			if wantRacist && !plan.isRacist[idx] {
				continue
			}
			if wantPolitical && !plan.isPolitical[idx] {
				continue
			}
			if !wantRacist && plan.isRacist[idx] {
				continue
			}
			if !wantPolitical && !wantRacist && plan.isPolitical[idx] {
				continue
			}
			capacityUsed[idx]++
			return idx
		}
		// Create a fresh entry with the right tags.
		name := fmt.Sprintf("generated-meme-%d", len(plan.records))
		var tags []string
		if wantRacist {
			tags = append(tags, "racism")
		}
		if wantPolitical {
			tags = append(tags, "politics")
		}
		idx := addEntry(name, name, string(annotate.CategoryMeme), tags, wantRacist, wantPolitical)
		capacityUsed[idx]++
		return idx
	}

	for m := 0; m < cfg.NumMemes; m++ {
		switch {
		case m < racistCount:
			plan.ownerOfMeme[m] = pickEntry(true, false)
		case m < racistCount+politicalCount:
			plan.ownerOfMeme[m] = pickEntry(false, true)
		default:
			plan.ownerOfMeme[m] = pickEntry(false, false)
		}
	}
	return plan
}

// sampleOrigin draws an entry origin from the Figure 4(c) distribution.
func sampleOrigin(rng *rand.Rand) string {
	r := rng.Float64()
	for _, o := range kymOriginDistribution {
		r -= o.weight
		if r <= 0 {
			return o.origin
		}
	}
	return "unknown"
}

// Site converts the dataset's KYM entries into an annotate.Site, optionally
// dropping gallery images flagged as screenshots (the output of Step 4).
func (d *Dataset) Site(filterScreenshots bool) (*annotate.Site, error) {
	entries := make([]*annotate.Entry, 0, len(d.KYMEntries))
	for _, rec := range d.KYMEntries {
		e := &annotate.Entry{
			Name:     rec.Name,
			Title:    rec.Title,
			Category: annotate.Category(rec.Category),
			Tags:     rec.Tags,
			Origin:   rec.Origin,
			Year:     rec.Year,
		}
		for i, h := range rec.Gallery {
			if filterScreenshots && i < len(rec.ScreenshotFlags) && rec.ScreenshotFlags[i] {
				continue
			}
			e.Gallery = append(e.Gallery, hashFromUint(h))
		}
		entries = append(entries, e)
	}
	return annotate.NewSite(entries)
}
