package dataset

import (
	"path/filepath"
	"testing"
	"time"

	"github.com/memes-pipeline/memes/internal/annotate"
	"github.com/memes-pipeline/memes/internal/phash"
)

// smallDataset is generated once and shared across tests (it is read-only).
var smallDataset *Dataset

func getSmall(t *testing.T) *Dataset {
	t.Helper()
	if smallDataset == nil {
		ds, err := Generate(SmallConfig())
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		smallDataset = ds
	}
	return smallDataset
}

func TestCommunityHelpers(t *testing.T) {
	if len(Communities()) != NumCommunities {
		t.Fatal("Communities() length mismatch")
	}
	if Pol.String() != "/pol/" || TheDonald.String() != "The_Donald" {
		t.Fatal("unexpected community names")
	}
	if Community(99).String() == "" {
		t.Fatal("unknown community should still stringify")
	}
	if !Pol.Fringe() || !Gab.Fringe() || !TheDonald.Fringe() {
		t.Fatal("fringe classification wrong")
	}
	if Reddit.Fringe() || Twitter.Fringe() {
		t.Fatal("mainstream communities misclassified as fringe")
	}
	if TheDonald.Platform() != "Reddit" || Pol.Platform() != "/pol/" {
		t.Fatal("platform mapping wrong")
	}
	if !Reddit.Valid() || Community(-1).Valid() || Community(5).Valid() {
		t.Fatal("validity check wrong")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := SmallConfig().Validate(); err != nil {
		t.Fatalf("small config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.NumMemes = 0 },
		func(c *Config) { c.VariantsPerMeme = 0 },
		func(c *Config) { c.DurationDays = 1 },
		func(c *Config) { c.RateScale = 0 },
		func(c *Config) { c.RacistFraction = -0.1 },
		func(c *Config) { c.PoliticalFraction = 1.5 },
		func(c *Config) { c.MemesPerEntryMax = 0 },
		func(c *Config) { c.ImageSize = 8 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate the config", i)
		}
	}
}

func TestGroundTruthModelIsStable(t *testing.T) {
	w := groundTruthWeights()
	if len(w) != NumCommunities {
		t.Fatal("weight matrix size mismatch")
	}
	for i, row := range w {
		if len(row) != NumCommunities {
			t.Fatal("weight matrix not square")
		}
		sum := 0.0
		for _, v := range row {
			if v < 0 {
				t.Fatalf("negative weight in row %d", i)
			}
			sum += v
		}
		if sum >= 1 {
			t.Fatalf("row %d sum %v makes the process supercritical", i, sum)
		}
	}
	// The Donald must have the largest external row sum (most efficient);
	// /pol/ the smallest — the planted version of the paper's finding.
	ext := make([]float64, NumCommunities)
	for i, row := range w {
		for j, v := range row {
			if i != j {
				ext[i] += v
			}
		}
	}
	for i := range ext {
		if i != int(TheDonald) && ext[int(TheDonald)] <= ext[i] {
			t.Fatalf("The Donald should have the largest external influence, got %v", ext)
		}
		if i != int(Pol) && ext[int(Pol)] > ext[i] {
			t.Fatalf("/pol/ should have the smallest external influence, got %v", ext)
		}
	}
	// /pol/ must have the largest background rate (most memes produced).
	mu := groundTruthBackground()
	for i := range mu {
		if i != int(Pol) && mu[int(Pol)] <= mu[i] {
			t.Fatalf("/pol/ should have the largest background rate, got %v", mu)
		}
	}
}

func TestGenerateBasicStructure(t *testing.T) {
	ds := getSmall(t)
	if len(ds.Posts) == 0 {
		t.Fatal("no posts generated")
	}
	if len(ds.Memes) != SmallConfig().NumMemes {
		t.Fatalf("meme count %d", len(ds.Memes))
	}
	if len(ds.KYMEntries) == 0 {
		t.Fatal("no KYM entries")
	}
	// Posts sorted by time, all within the window, valid communities.
	prev := time.Time{}
	for _, p := range ds.Posts {
		if p.Timestamp.Before(prev) {
			t.Fatal("posts not sorted by time")
		}
		prev = p.Timestamp
		if p.Timestamp.Before(ds.Start) || p.Timestamp.After(ds.End) {
			t.Fatalf("post outside window: %v", p.Timestamp)
		}
		if !p.Community.Valid() {
			t.Fatalf("invalid community %d", p.Community)
		}
		if p.HasImage && p.Hash == 0 {
			t.Fatal("image post without hash")
		}
		if p.TruthMeme >= len(ds.Memes) {
			t.Fatalf("truth meme %d out of range", p.TruthMeme)
		}
	}
	// Post totals include the posts without images.
	cfg := SmallConfig()
	for _, c := range Communities() {
		imgPosts := 0
		for _, p := range ds.Posts {
			if p.Community == c {
				imgPosts++
			}
		}
		want := imgPosts + cfg.PostsWithoutImages[c]
		if ds.PostTotals[c] != want {
			t.Fatalf("post totals for %v = %d, want %d", c, ds.PostTotals[c], want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := SmallConfig()
	cfg.NumMemes = 8
	cfg.NoiseImages = map[Community]int{Pol: 20}
	cfg.PostsWithoutImages = nil
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Posts) != len(b.Posts) {
		t.Fatalf("non-deterministic post counts: %d vs %d", len(a.Posts), len(b.Posts))
	}
	for i := range a.Posts {
		if a.Posts[i].Hash != b.Posts[i].Hash || !a.Posts[i].Timestamp.Equal(b.Posts[i].Timestamp) {
			t.Fatalf("post %d differs between runs", i)
		}
	}
}

func TestGenerateMemeVariantsAreTight(t *testing.T) {
	ds := getSmall(t)
	for _, m := range ds.Memes {
		if len(m.VariantHashes) != SmallConfig().VariantsPerMeme {
			t.Fatalf("meme %d has %d variants", m.Index, len(m.VariantHashes))
		}
		base := phash.Hash(m.VariantHashes[0])
		for _, vh := range m.VariantHashes[1:] {
			if d := phash.Distance(base, phash.Hash(vh)); d > 8 {
				t.Fatalf("meme %d variant drifted %d bits from its template", m.Index, d)
			}
		}
	}
}

func TestGenerateCommunityVolumesOrdering(t *testing.T) {
	ds := getSmall(t)
	counts := map[Community]int{}
	for _, p := range ds.Posts {
		if p.TruthMeme >= 0 {
			counts[p.Community]++
		}
	}
	// Planted ordering of meme events (Table 7): /pol/ most, Gab least among
	// the main communities.
	if counts[Pol] <= counts[Reddit] || counts[Pol] <= counts[Gab] || counts[Pol] <= counts[TheDonald] {
		t.Fatalf("/pol/ should post the most memes: %v", counts)
	}
	if counts[Gab] >= counts[Twitter] {
		t.Fatalf("Gab should post fewer memes than Twitter: %v", counts)
	}
}

func TestGenerateTagGroups(t *testing.T) {
	ds := getSmall(t)
	racist, political := 0, 0
	for _, m := range ds.Memes {
		if m.Racist {
			racist++
		}
		if m.Political {
			political++
		}
	}
	if racist == 0 {
		t.Fatal("no racist memes planted")
	}
	if political == 0 {
		t.Fatal("no political memes planted")
	}
	if racist >= political {
		t.Fatalf("political memes (%d) should outnumber racist memes (%d)", political, racist)
	}
}

func TestGenerateSubredditsAndScores(t *testing.T) {
	ds := getSmall(t)
	tdCount, redditWithSub := 0, 0
	for _, p := range ds.Posts {
		switch p.Community {
		case TheDonald:
			if p.Subreddit != "The_Donald" {
				t.Fatal("The Donald post with wrong subreddit")
			}
			tdCount++
			if p.Score <= 0 {
				t.Fatal("The Donald post without score")
			}
		case Reddit:
			if p.Subreddit == "" {
				t.Fatal("Reddit post without subreddit")
			}
			if p.Subreddit == "The_Donald" {
				t.Fatal("plain Reddit post labelled The_Donald")
			}
			redditWithSub++
			if p.Score <= 0 {
				t.Fatal("Reddit post without score")
			}
		case Gab:
			if p.Score <= 0 {
				t.Fatal("Gab post without score")
			}
		case Twitter, Pol:
			if p.Score != 0 {
				t.Fatal("Twitter//pol/ posts should have no score")
			}
		}
	}
	if tdCount == 0 || redditWithSub == 0 {
		t.Fatal("expected posts on The Donald and Reddit")
	}
}

func TestGenerateGabLaunchDelay(t *testing.T) {
	ds := getSmall(t)
	launch := ds.Start.AddDate(0, 0, 39)
	for _, p := range ds.Posts {
		if p.Community == Gab && p.Timestamp.Before(launch) {
			t.Fatalf("Gab post at %v predates the platform launch", p.Timestamp)
		}
	}
}

func TestSiteConversion(t *testing.T) {
	ds := getSmall(t)
	siteAll, err := ds.Site(false)
	if err != nil {
		t.Fatal(err)
	}
	siteFiltered, err := ds.Site(true)
	if err != nil {
		t.Fatal(err)
	}
	if siteFiltered.NumGalleryImages() >= siteAll.NumGalleryImages() {
		t.Fatal("screenshot filtering should shrink the galleries")
	}
	if siteAll.NumEntries() != len(ds.KYMEntries) {
		t.Fatal("entry count mismatch")
	}
	// Every entry category must be a valid annotate category.
	for _, e := range siteAll.Entries() {
		if !e.Category.Valid() {
			t.Fatalf("invalid category %q", e.Category)
		}
	}
	// Racist/political tag groups must be visible through the annotate API.
	racist := 0
	for _, e := range siteFiltered.Entries() {
		if e.IsRacist() {
			racist++
		}
	}
	if racist == 0 {
		t.Fatal("no racist entries visible on the site")
	}
	_ = annotate.DefaultThreshold // keep the import obviously intentional
}

func TestPlatformStats(t *testing.T) {
	ds := getSmall(t)
	stats := ds.PlatformStats()
	if len(stats) != 4 {
		t.Fatalf("expected 4 platform rows, got %d", len(stats))
	}
	byName := map[string]Stats{}
	for _, s := range stats {
		byName[s.Platform] = s
		if s.Posts < s.PostsWithImages {
			t.Fatalf("%s: posts < posts with images", s.Platform)
		}
		if s.UniquePHashes > s.Images {
			t.Fatalf("%s: more unique hashes than images", s.Platform)
		}
	}
	// Reddit row must fold in The Donald.
	redditPosts := ds.PostTotals[Reddit] + ds.PostTotals[TheDonald]
	if byName["Reddit"].Posts != redditPosts {
		t.Fatalf("Reddit platform posts %d, want %d", byName["Reddit"].Posts, redditPosts)
	}
}

func TestFringeImageHashes(t *testing.T) {
	ds := getSmall(t)
	hashes, counts, postIdx := ds.FringeImageHashes()
	if len(hashes) != len(counts) {
		t.Fatal("hashes and counts misaligned")
	}
	totalOccurrences := 0
	for _, c := range counts {
		totalOccurrences += c
	}
	fringePosts := 0
	for _, p := range ds.Posts {
		if p.HasImage && p.Community.Fringe() {
			fringePosts++
		}
	}
	if totalOccurrences != fringePosts {
		t.Fatalf("occurrence total %d != fringe image posts %d", totalOccurrences, fringePosts)
	}
	for h, idxs := range postIdx {
		for _, i := range idxs {
			if ds.Posts[i].PHash() != h {
				t.Fatal("post index map points at the wrong post")
			}
			if !ds.Posts[i].Community.Fringe() {
				t.Fatal("post index map includes mainstream posts")
			}
		}
	}
}

func TestPostsOf(t *testing.T) {
	ds := getSmall(t)
	gab := ds.PostsOf(Gab)
	for _, p := range gab {
		if p.Community != Gab {
			t.Fatal("PostsOf returned a foreign post")
		}
	}
	total := 0
	for _, c := range Communities() {
		total += len(ds.PostsOf(c))
	}
	if total != len(ds.Posts) {
		t.Fatal("PostsOf does not partition the posts")
	}
}

func TestSaveAndLoadRoundTrip(t *testing.T) {
	cfg := SmallConfig()
	cfg.NumMemes = 6
	cfg.NoiseImages = map[Community]int{Pol: 30, Twitter: 30}
	cfg.PostsWithoutImages = map[Community]int{Pol: 100}
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "corpus")
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Posts) != len(ds.Posts) {
		t.Fatalf("loaded %d posts, want %d", len(loaded.Posts), len(ds.Posts))
	}
	if len(loaded.Memes) != len(ds.Memes) || len(loaded.KYMEntries) != len(ds.KYMEntries) {
		t.Fatal("metadata lost in round trip")
	}
	if loaded.PostTotals[Pol] != ds.PostTotals[Pol] {
		t.Fatal("post totals lost in round trip")
	}
	for i := range ds.Posts {
		if loaded.Posts[i].Hash != ds.Posts[i].Hash ||
			loaded.Posts[i].Community != ds.Posts[i].Community ||
			!loaded.Posts[i].Timestamp.Equal(ds.Posts[i].Timestamp) {
			t.Fatalf("post %d corrupted in round trip", i)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("loading a missing directory should fail")
	}
}

func TestSamplePopularityHeavyTailed(t *testing.T) {
	rngDs := getSmall(t)
	_ = rngDs
	// Popularity values must be positive and bounded.
	for _, m := range getSmall(t).Memes {
		if m.Popularity <= 0 || m.Popularity > 12 {
			t.Fatalf("popularity %v out of range", m.Popularity)
		}
	}
}
