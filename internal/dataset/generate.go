package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/memes-pipeline/memes/internal/hawkes"
	"github.com/memes-pipeline/memes/internal/imaging"
	"github.com/memes-pipeline/memes/internal/phash"
)

// Config controls synthetic corpus generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// NumMemes is the number of planted memes (expected clusters).
	NumMemes int
	// VariantsPerMeme is the number of rendered image variants per meme.
	VariantsPerMeme int
	// DurationDays is the observation window length (the paper covers 396
	// days, July 2016 - July 2017).
	DurationDays int
	// RateScale scales all Hawkes background rates; 1.0 corresponds to the
	// default profile's activity level.
	RateScale float64
	// NoiseImages is the number of one-off (non-meme) images per community.
	NoiseImages map[Community]int
	// PostsWithoutImages is the number of posts per community that carry no
	// image (they only contribute to Table 1 totals).
	PostsWithoutImages map[Community]int
	// RacistFraction and PoliticalFraction control the share of memes in the
	// racist and politics tag groups (the paper measures 4.4% and 21.2%).
	RacistFraction    float64
	PoliticalFraction float64
	// ScreenshotsPerEntry is the number of screenshot images polluting each
	// KYM entry's gallery before Step 4 filtering.
	ScreenshotsPerEntry int
	// MemesPerEntryMax bounds how many planted memes may share one KYM entry
	// (the paper observes heavily skewed clusters-per-entry counts).
	MemesPerEntryMax int
	// ImageSize is the side of rendered template images.
	ImageSize int
}

// DefaultConfig returns the "paper" profile: a scaled-down corpus with the
// same structure as the paper's (hundreds of memes, five communities,
// 13 months), sized to run on a laptop in seconds.
func DefaultConfig() Config {
	return Config{
		Seed:            42,
		NumMemes:        200,
		VariantsPerMeme: 8,
		DurationDays:    396,
		RateScale:       1.0,
		NoiseImages: map[Community]int{
			// Roughly 1.5-2x the expected meme-post volume of each community,
			// so the fraction of unclustered ("one-off") images lands in the
			// 60-70% band the paper reports in Table 2.
			Pol: 110000, Reddit: 40000, Twitter: 60000, Gab: 7000, TheDonald: 11000,
		},
		PostsWithoutImages: map[Community]int{
			Pol: 25000, Reddit: 60000, Twitter: 80000, Gab: 6000, TheDonald: 8000,
		},
		RacistFraction:      0.044,
		PoliticalFraction:   0.212,
		ScreenshotsPerEntry: 2,
		MemesPerEntryMax:    6,
		ImageSize:           64,
	}
}

// SmallConfig returns a miniature corpus suitable for unit tests.
func SmallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumMemes = 25
	cfg.VariantsPerMeme = 5
	cfg.DurationDays = 120
	cfg.RateScale = 0.8
	cfg.NoiseImages = map[Community]int{Pol: 3000, Reddit: 800, Twitter: 1500, Gab: 150, TheDonald: 400}
	cfg.PostsWithoutImages = map[Community]int{Pol: 1000, Reddit: 2000, Twitter: 3000, Gab: 200, TheDonald: 300}
	return cfg
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.NumMemes < 1 {
		return errors.New("dataset: need at least one meme")
	}
	if c.VariantsPerMeme < 1 {
		return errors.New("dataset: need at least one variant per meme")
	}
	if c.DurationDays < 2 {
		return errors.New("dataset: duration must be at least two days")
	}
	if c.RateScale <= 0 {
		return errors.New("dataset: rate scale must be positive")
	}
	if c.RacistFraction < 0 || c.RacistFraction > 1 ||
		c.PoliticalFraction < 0 || c.PoliticalFraction > 1 {
		return errors.New("dataset: tag-group fractions must be in [0,1]")
	}
	if c.MemesPerEntryMax < 1 {
		return errors.New("dataset: memes per entry must be at least one")
	}
	if c.ImageSize < 32 {
		return errors.New("dataset: image size must be at least 32")
	}
	return nil
}

// groundTruthWeights is the community-to-community excitation matrix used to
// drive meme spreading. Rows are sources, columns destinations, in process
// index order (/pol/, Reddit, Twitter, Gab, The Donald). The Donald has the
// largest external row sum (most efficient spreader); /pol/ the smallest,
// but by far the largest background rate — together these reproduce the
// paper's headline influence findings.
func groundTruthWeights() [][]float64 {
	return [][]float64{
		{0.20, 0.025, 0.02, 0.015, 0.01}, // /pol/
		{0.02, 0.20, 0.08, 0.01, 0.02},   // Reddit
		{0.02, 0.05, 0.20, 0.01, 0.01},   // Twitter
		{0.02, 0.04, 0.02, 0.15, 0.02},   // Gab
		{0.18, 0.22, 0.15, 0.08, 0.20},   // The Donald
	}
}

// groundTruthBackground is the per-meme background posting rate (events per
// day) of each community before popularity scaling: /pol/ dominates raw
// production, The Donald and Gab are small.
func groundTruthBackground() []float64 {
	return []float64{0.50, 0.13, 0.22, 0.008, 0.03}
}

// kymOriginDistribution mirrors Figure 4(c): origins of KYM entries.
var kymOriginDistribution = []struct {
	origin string
	weight float64
}{
	{"unknown", 0.28}, {"youtube", 0.21}, {"4chan", 0.12}, {"twitter", 0.11},
	{"tumblr", 0.08}, {"reddit", 0.07}, {"facebook", 0.05}, {"niconico", 0.03},
	{"ytmnd", 0.03}, {"instagram", 0.02},
}

// subredditPool lists the subreddits (other than The Donald) that receive
// meme posts, with sampling weights for generic, political, and racist memes.
var subredditPool = []struct {
	name                       string
	generic, political, racist float64
}{
	{"AdviceAnimals", 0.22, 0.08, 0.10},
	{"me_irl", 0.14, 0.04, 0.08},
	{"politics", 0.06, 0.22, 0.02},
	{"funny", 0.14, 0.03, 0.06},
	{"dankmemes", 0.10, 0.05, 0.05},
	{"EnoughTrumpSpam", 0.04, 0.18, 0.02},
	{"pics", 0.09, 0.05, 0.02},
	{"AskReddit", 0.07, 0.03, 0.02},
	{"conspiracy", 0.04, 0.08, 0.20},
	{"CringeAnarchy", 0.03, 0.04, 0.18},
	{"ImGoingToHellForThis", 0.02, 0.02, 0.17},
	{"HOTandTrending", 0.05, 0.05, 0.03},
	{"TrumpsTweets", 0.00, 0.13, 0.05},
}

// peopleEntryNames are KYM "people" entries that own some of the planted
// memes, mirroring Table 5.
var peopleEntryNames = []string{
	"donald-trump", "hillary-clinton", "adolf-hitler", "bernie-sanders",
	"vladimir-putin", "barack-obama", "kim-jong-un", "mitt-romney",
}

// eventEntryNames are KYM "events" entries.
var eventEntryNames = []string{
	"cnnblackmail", "2016-us-election", "brexit", "trumpanime-rick-wilson",
}

// memeEntryNames seed the names of meme-category entries; additional entries
// are generated as needed.
var memeEntryNames = []string{
	"pepe-the-frog", "smug-frog", "feels-bad-man-sad-frog", "apu-apustaja",
	"angry-pepe", "happy-merchant", "make-america-great-again",
	"computer-reaction-faces", "reaction-images", "i-know-that-feel-bro",
	"bait-this-is-bait", "counter-signal-memes", "demotivational-posters",
	"roll-safe", "evil-kermit", "manning-face", "thats-the-joke",
	"expanding-brain", "wojak-feels-guy", "spurdo-sparde", "laughing-tom-cruise",
	"dubs-guy-check-em", "cult-of-kek", "murica", "this-is-fine",
}

// Generate builds a synthetic corpus according to the configuration.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 0, cfg.DurationDays)
	gabLaunchDay := 40.0 // Gab's dataset starts ~40 days into the window.

	ds := &Dataset{
		Start:                start,
		End:                  end,
		PostTotals:           make(map[Community]int),
		GroundTruthInfluence: groundTruthWeights(),
	}

	// 1. Plan KYM entries and assign memes to them.
	entries := planEntries(rng, cfg)
	ds.KYMEntries = entries.records

	// 2. Render meme templates and variant pools.
	memes := make([]MemeSpec, cfg.NumMemes)
	for i := 0; i < cfg.NumMemes; i++ {
		owner := entries.ownerOfMeme[i]
		spec := MemeSpec{
			Index:        i,
			EntryName:    entries.records[owner].Name,
			Category:     entries.records[owner].Category,
			Racist:       entries.isRacist[owner],
			Political:    entries.isPolitical[owner],
			TemplateSeed: rng.Int63(),
			Popularity:   samplePopularity(rng),
		}
		base := imaging.TemplateSized(spec.TemplateSeed, cfg.ImageSize, cfg.ImageSize)
		baseHash, err := phash.FromImage(base)
		if err != nil {
			return nil, fmt.Errorf("dataset: hashing template %d: %w", i, err)
		}
		spec.VariantHashes = append(spec.VariantHashes, uint64(baseHash))
		for v := 1; v < cfg.VariantsPerMeme; v++ {
			variant := imaging.Variant(base, rng.Int63(), 0.2)
			h, err := phash.FromImage(variant)
			if err != nil {
				return nil, fmt.Errorf("dataset: hashing variant %d of meme %d: %w", v, i, err)
			}
			// Keep the planted cluster tight: if a rendered variant drifted
			// beyond the clustering threshold, fall back to a small hash
			// perturbation of the base.
			if phash.Distance(baseHash, h) > 6 {
				h = perturbHash(rng, baseHash, 1+rng.Intn(3))
			}
			spec.VariantHashes = append(spec.VariantHashes, uint64(h))
		}
		memes[i] = spec
		// Attach the variants to the owning entry's gallery.
		entries.records[owner].Gallery = append(entries.records[owner].Gallery, spec.VariantHashes...)
		for range spec.VariantHashes {
			entries.records[owner].ScreenshotFlags = append(entries.records[owner].ScreenshotFlags, false)
		}
	}
	ds.Memes = memes

	// 3. Pollute galleries with screenshots and stray images.
	for i := range entries.records {
		for s := 0; s < cfg.ScreenshotsPerEntry; s++ {
			entries.records[i].Gallery = append(entries.records[i].Gallery, rng.Uint64())
			entries.records[i].ScreenshotFlags = append(entries.records[i].ScreenshotFlags, true)
		}
	}

	// 4. Simulate meme spreading with the ground-truth Hawkes model and
	//    materialise posts.
	var postID int64
	horizon := float64(cfg.DurationDays)
	baseMu := groundTruthBackground()
	weights := groundTruthWeights()
	for mi := range memes {
		model := hawkes.NewModel(NumCommunities, 1.0)
		for c := 0; c < NumCommunities; c++ {
			model.Mu[c] = baseMu[c] * memes[mi].Popularity * cfg.RateScale
			copy(model.W[c], weights[c])
		}
		events, roots, err := model.SimulateWithGroundTruth(rng, horizon)
		if err != nil {
			return nil, fmt.Errorf("dataset: simulating meme %d: %w", mi, err)
		}
		for ei, ev := range events {
			comm := Community(ev.Process)
			if comm == Gab && ev.Time < gabLaunchDay {
				continue // Gab did not exist yet.
			}
			hash := memes[mi].VariantHashes[rng.Intn(len(memes[mi].VariantHashes))]
			post := Post{
				ID:        postID,
				Community: comm,
				Timestamp: start.Add(time.Duration(ev.Time * 24 * float64(time.Hour))),
				HasImage:  true,
				Hash:      hash,
				TruthMeme: mi,
				TruthRoot: roots[ei],
			}
			decoratePost(rng, &post, memes[mi])
			ds.Posts = append(ds.Posts, post)
			postID++
		}
	}

	// 5. Noise posts: one-off images that should end up unclustered.
	for _, comm := range Communities() {
		n := cfg.NoiseImages[comm]
		for i := 0; i < n; i++ {
			day := rng.Float64() * horizon
			if comm == Gab {
				day = gabLaunchDay + rng.Float64()*(horizon-gabLaunchDay)
			}
			post := Post{
				ID:        postID,
				Community: comm,
				Timestamp: start.Add(time.Duration(day * 24 * float64(time.Hour))),
				HasImage:  true,
				Hash:      rng.Uint64(),
				TruthMeme: -1,
				TruthRoot: -1,
			}
			decoratePost(rng, &post, MemeSpec{})
			ds.Posts = append(ds.Posts, post)
			postID++
		}
	}

	// 6. Per-community post totals (image posts + posts without images).
	for _, p := range ds.Posts {
		ds.PostTotals[p.Community]++
	}
	for comm, n := range cfg.PostsWithoutImages {
		ds.PostTotals[comm] += n
	}

	sortPostsByTime(ds.Posts)
	return ds, nil
}

// perturbHash flips k random distinct bits of h.
func perturbHash(rng *rand.Rand, h phash.Hash, k int) phash.Hash {
	perm := rng.Perm(64)
	for i := 0; i < k && i < len(perm); i++ {
		h ^= 1 << uint(perm[i])
	}
	return h
}

// samplePopularity draws a heavy-tailed popularity multiplier so a few memes
// dominate, as in the paper's Table 4.
func samplePopularity(rng *rand.Rand) float64 {
	// Pareto-like: 1 / U^0.7 capped.
	u := rng.Float64()
	if u < 1e-3 {
		u = 1e-3
	}
	p := math.Pow(1/u, 0.7) * 0.5
	if p > 12 {
		p = 12
	}
	return p
}

// decoratePost fills in community-specific metadata: scores and subreddits.
func decoratePost(rng *rand.Rand, p *Post, meme MemeSpec) {
	switch p.Community {
	case Reddit, TheDonald, Gab:
		p.Score = sampleScore(rng, p.Community, meme)
	}
	switch p.Community {
	case TheDonald:
		p.Subreddit = "The_Donald"
	case Reddit:
		p.Subreddit = sampleSubreddit(rng, meme)
	}
}

// sampleScore draws a post score whose distribution depends on the meme's
// tag groups, reproducing the ordering of Figure 9: political memes score
// higher than average on Reddit, racist memes lower; on Gab racist memes
// score much lower and political memes about the same as the rest.
func sampleScore(rng *rand.Rand, comm Community, meme MemeSpec) int {
	// Log-normal base.
	base := math.Exp(rng.NormFloat64()*1.5 + 1.3)
	switch comm {
	case Reddit, TheDonald:
		if meme.Political {
			base *= 1.8
		}
		if meme.Racist {
			base *= 0.6
		}
	case Gab:
		base *= 0.6
		if meme.Racist {
			base *= 0.4
		}
	}
	score := int(base)
	if score < 1 {
		score = 1
	}
	return score
}

// sampleSubreddit picks a subreddit for a Reddit post according to the
// meme's tag groups.
func sampleSubreddit(rng *rand.Rand, meme MemeSpec) string {
	total := 0.0
	for _, s := range subredditPool {
		total += weightFor(s, meme)
	}
	r := rng.Float64() * total
	for _, s := range subredditPool {
		r -= weightFor(s, meme)
		if r <= 0 {
			return s.name
		}
	}
	return subredditPool[0].name
}

func weightFor(s struct {
	name                       string
	generic, political, racist float64
}, meme MemeSpec) float64 {
	switch {
	case meme.Racist:
		return s.racist
	case meme.Political:
		return s.political
	default:
		return s.generic
	}
}

func sortPostsByTime(posts []Post) {
	sort.Slice(posts, func(i, j int) bool { return posts[i].Timestamp.Before(posts[j].Timestamp) })
}
