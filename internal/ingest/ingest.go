// Package ingest absorbs new posts into a running serving process: the
// streaming counterpart of the offline build, and the operational shape of
// the paper's regime — communities keep posting while the annotated-cluster
// artifact is rebuilt on a schedule, so a serving fleet must fold fresh
// posts in without a restart and without dropping a request.
//
// An Ingestor accepts post batches at runtime. Posts whose hash already
// matches an annotated medoid (within the association threshold) are
// servable immediately — the engine matches by hash, so nothing needs to
// change for them. Posts that do not match park in a bounded pending pool;
// when the pool crosses a threshold, a background re-cluster absorbs the
// whole pool into the incremental pipeline state, re-clusters only the
// affected communities, and publishes the fresh engine through the caller's
// hot-swap hook. Every accepted batch is journaled as a MEMEDELT frame
// before it is acknowledged, so a restart replays the journal and converges
// on the exact same state; a periodic compaction folds the journal into a
// base MEMESNAP plus one merged head frame.
//
// The determinism contract of the pipeline carries through: after any
// sequence of ingests, re-clusters, restarts, and compactions, the served
// engine is bitwise-identical (snapshot bytes) to a from-scratch build over
// the base corpus plus every ingested post in ingest order.
package ingest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/faults"
	"github.com/memes-pipeline/memes/internal/phash"
	"github.com/memes-pipeline/memes/internal/pipeline"
)

// ErrPoolFull rejects an ingest batch that would overflow the pending pool:
// the backpressure signal that re-clustering is not keeping up. The batch is
// not journaled and not absorbed; callers retry after the pool drains.
var ErrPoolFull = errors.New("ingest: pending pool full")

// ErrClosed rejects ingests after Close.
var ErrClosed = errors.New("ingest: ingestor closed")

// ErrJournalDegraded rejects an ingest batch whose journal append kept
// failing after the whole retry budget: the durability guarantee cannot be
// given, so the batch is refused rather than acknowledged un-journaled. The
// ingestor stays degraded (Stats().Degraded) until an append succeeds again;
// the serving layer maps this to read-only mode — queries keep serving,
// ingests return 503.
var ErrJournalDegraded = errors.New("ingest: journal degraded")

// Config parameterises an Ingestor. Match and Publish are the two hooks into
// the serving layer; everything else has a usable default.
type Config struct {
	// Threshold is the number of pooled posts that need a re-cluster to
	// become servable (unmatched fringe image posts) that triggers the
	// background re-cluster. Default 256.
	Threshold int
	// MaxPending bounds the pool of accepted-but-unabsorbed posts; ingests
	// beyond it fail with ErrPoolFull. Default 8×Threshold.
	MaxPending int
	// CompactAfter is the number of sealed journal segments that triggers a
	// compaction after the next successful re-cluster. Default 8.
	CompactAfter int
	// DeltaDir is the journal directory; empty disables persistence (posts
	// survive re-clusters but not restarts).
	DeltaDir string
	// JournalAttempts is the total number of times one batch's journal
	// append is tried before the ingestor declares itself degraded and
	// refuses the batch. Default 3.
	JournalAttempts int
	// JournalBackoff is the delay before the first journal retry; each
	// further retry doubles it, capped at maxJournalBackoff. The schedule is
	// fixed (no jitter) so failure timelines replay identically. Default 2ms.
	JournalBackoff time.Duration
	// Match probes a hash against the currently served engine; ok means the
	// post is servable without a re-cluster.
	Match func(ctx context.Context, h phash.Hash) (ok bool, err error)
	// Publish swaps a freshly assembled build into the serving path. It is
	// called from the re-cluster goroutine and must not block for long.
	Publish func(*pipeline.BuildResult)
}

// withDefaults returns the config with zero fields defaulted.
func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = 256
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 8 * c.Threshold
	}
	if c.CompactAfter <= 0 {
		c.CompactAfter = 8
	}
	if c.JournalAttempts <= 0 {
		c.JournalAttempts = 3
	}
	if c.JournalBackoff <= 0 {
		c.JournalBackoff = 2 * time.Millisecond
	}
	return c
}

// maxJournalBackoff caps the doubling journal retry delay.
const maxJournalBackoff = 50 * time.Millisecond

// Receipt acknowledges one accepted ingest batch.
type Receipt struct {
	// Accepted is the number of posts absorbed into the pool (the whole
	// batch — acceptance is all-or-nothing).
	Accepted int
	// Assigned counts the batch's image posts already matching an annotated
	// medoid: servable immediately, no re-cluster needed.
	Assigned int
	// Pending is the pool's unmatched-fringe-image count after this batch —
	// the re-cluster trigger level.
	Pending int
	// Triggered reports whether this batch started (or found running) the
	// background re-cluster.
	Triggered bool
	// Seq is the journal position after this batch: total posts accepted
	// since the base corpus.
	Seq uint64
}

// Stats is a point-in-time snapshot of the ingestor's counters.
type Stats struct {
	Ingested          int64
	Assigned          int64
	Rejected          int64
	Pending           int
	Pool              int
	Reclusters        int64
	ReclusterFailures int64
	Compactions       int64
	DeltaSegments     int
	Seq               uint64
	// JournalRetries counts individual journal append retries (backoff
	// sleeps); JournalFailures counts batches refused after the whole retry
	// budget; TornTails counts torn journal tails repaired during Replay.
	JournalRetries  int64
	JournalFailures int64
	TornTails       int64
	// Degraded reports read-only mode: the last journal append exhausted its
	// retry budget and no append has succeeded since.
	Degraded bool
}

// Ingestor absorbs posts at runtime; see the package comment. Construct with
// New; all methods are goroutine-safe.
type Ingestor struct {
	cfg Config

	// reclusterMu serialises everything that touches inc or the sealed part
	// of the journal: re-clusters, compaction, and replay.
	reclusterMu sync.Mutex
	inc         *pipeline.Incremental

	mu       sync.Mutex // guards everything below
	pool     []dataset.Post
	pending  int // pool posts needing a re-cluster to be servable
	seq      uint64
	seg      *os.File // active journal segment, lazily opened
	segs     int      // journal segment files on disk
	closed   bool
	inFlight bool // background re-cluster goroutine running
	needs    bool // absorbed posts await a successful rebuild (retry flag)
	degraded bool // last journal append exhausted its retry budget
	broken   bool // torn bytes could not be rolled back; journal unusable
	wg       sync.WaitGroup

	ingested          int64
	assigned          int64
	rejected          int64
	reclusters        int64
	reclusterFailures int64
	compactions       int64
	journalRetries    int64
	journalFailures   int64
	tornTails         int64
}

// New wraps an incremental pipeline state in an Ingestor. The state must be
// seeded from the same corpus and configuration as the engine Publish swaps
// against, or the determinism contract is void.
func New(inc *pipeline.Incremental, cfg Config) (*Ingestor, error) {
	if inc == nil {
		return nil, errors.New("ingest: nil incremental state")
	}
	if cfg.Match == nil || cfg.Publish == nil {
		return nil, errors.New("ingest: Config.Match and Config.Publish are required")
	}
	cfg = cfg.withDefaults()
	if cfg.DeltaDir != "" {
		if err := os.MkdirAll(cfg.DeltaDir, 0o755); err != nil {
			return nil, fmt.Errorf("ingest: creating delta dir: %w", err)
		}
	}
	g := &Ingestor{cfg: cfg, inc: inc}
	g.seq = uint64(inc.Added())
	return g, nil
}

// Ingest accepts a batch of posts. Acceptance is all-or-nothing: the batch
// is validated, probed against the served engine, journaled (when a delta
// dir is configured), and only then pooled — so an acknowledged batch is
// durable and will be folded into the next re-cluster. Image posts already
// matching an annotated medoid count as Assigned and are servable without
// waiting; the rest raise the pending level, and crossing the threshold
// starts the background re-cluster.
func (g *Ingestor) Ingest(ctx context.Context, posts []dataset.Post) (Receipt, error) {
	if len(posts) == 0 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return Receipt{Pending: g.pending, Seq: g.seq}, nil
	}
	for i := range posts {
		if !posts[i].Community.Valid() {
			return Receipt{}, fmt.Errorf("ingest: post %d names invalid community %d", i, int(posts[i].Community))
		}
	}

	// Probe the served engine outside the lock: matches are servable as-is
	// and do not raise the re-cluster pressure.
	assigned := 0
	needy := 0
	for i := range posts {
		p := &posts[i]
		if !p.HasImage {
			continue
		}
		ok, err := g.cfg.Match(ctx, p.PHash())
		if err != nil {
			return Receipt{}, err
		}
		if ok {
			assigned++
		} else if p.Community.Fringe() {
			// Only fringe image posts can form new clusters; the rest join
			// the union corpus but never need a re-cluster.
			needy++
		}
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return Receipt{}, ErrClosed
	}
	if len(g.pool)+len(posts) > g.cfg.MaxPending {
		g.rejected += int64(len(posts))
		return Receipt{}, ErrPoolFull
	}
	if err := g.journalLocked(ctx, posts); err != nil {
		g.rejected += int64(len(posts))
		return Receipt{}, err
	}
	g.seq += uint64(len(posts))
	g.pool = append(g.pool, posts...)
	g.pending += needy
	g.ingested += int64(len(posts))
	g.assigned += int64(assigned)

	triggered := false
	if g.pending >= g.cfg.Threshold {
		triggered = true
		g.scheduleLocked()
	}
	return Receipt{
		Accepted:  len(posts),
		Assigned:  assigned,
		Pending:   g.pending,
		Triggered: triggered,
		Seq:       g.seq,
	}, nil
}

// journalLocked makes one batch durable: it appends a MEMEDELT frame to the
// active journal segment, retrying transient failures with a capped,
// deterministic, doubling backoff. Exhausting the budget flips the ingestor
// into degraded (read-only) mode and refuses the batch with
// ErrJournalDegraded; the next successful append clears the flag.
// Persistence disabled → no-op.
func (g *Ingestor) journalLocked(ctx context.Context, posts []dataset.Post) error {
	if g.cfg.DeltaDir == "" {
		return nil
	}
	if g.broken {
		return fmt.Errorf("%w: torn segment could not be repaired", ErrJournalDegraded)
	}
	var lastErr error
	for attempt := 0; attempt < g.cfg.JournalAttempts; attempt++ {
		if attempt > 0 {
			g.journalRetries++
			backoff := g.cfg.JournalBackoff << (attempt - 1)
			if backoff > maxJournalBackoff {
				backoff = maxJournalBackoff
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
		}
		err := g.appendFrameLocked(posts)
		if err == nil {
			g.degraded = false
			return nil
		}
		lastErr = err
		if g.broken {
			break
		}
	}
	g.degraded = true
	g.journalFailures++
	return fmt.Errorf("%w: %d attempts exhausted: %w", ErrJournalDegraded, g.cfg.JournalAttempts, lastErr)
}

// appendFrameLocked writes and syncs one frame, opening a fresh segment
// (named by its starting sequence) when none is active. A failed write rolls
// the file back to the pre-frame offset so torn bytes never poison the
// segment's framing for later appends.
func (g *Ingestor) appendFrameLocked(posts []dataset.Post) error {
	if g.seg == nil {
		if err := faults.Inject("journal.open"); err != nil {
			return fmt.Errorf("ingest: opening journal segment: %w", err)
		}
		name := filepath.Join(g.cfg.DeltaDir, fmt.Sprintf("delta-%016d.dlt", g.seq))
		f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		if err != nil {
			return fmt.Errorf("ingest: opening journal segment: %w", err)
		}
		g.seg = f
		g.segs++
	}
	off, err := g.seg.Seek(0, io.SeekCurrent)
	if err != nil {
		return fmt.Errorf("ingest: locating journal tail: %w", err)
	}
	d := pipeline.Delta{FromSeq: g.seq, Posts: posts}
	err = faults.Inject("journal.append.write")
	if err == nil {
		err = pipeline.SaveDelta(faults.WrapWriter("journal.append.write", g.seg), &d)
	}
	if err == nil {
		err = g.seg.Sync()
	}
	if err == nil {
		// Crash site: the frame is durable but the caller was never acked.
		// Replay treats journal contents, not acks, as truth.
		err = faults.Inject("journal.append.sync")
	}
	if err == nil {
		return nil
	}
	if terr := g.seg.Truncate(off); terr == nil {
		_, terr = g.seg.Seek(off, io.SeekStart)
		if terr == nil {
			return fmt.Errorf("ingest: journaling batch: %w", err)
		}
	}
	// The rollback itself failed: the segment may hold torn bytes at an
	// unknown offset, so no further append can be trusted until a restart
	// replays and repairs it.
	g.broken = true
	return fmt.Errorf("%w: journaling batch: %v (rollback failed)", ErrJournalDegraded, err)
}

// scheduleLocked starts the background re-cluster goroutine unless one is
// already running. Called with g.mu held.
func (g *Ingestor) scheduleLocked() {
	if g.inFlight {
		return
	}
	g.inFlight = true
	g.wg.Add(1)
	//memes:goroutine owned by the Ingestor: joined by Close via wg, exits when the pool drains or a rebuild fails
	go g.reclusterLoop()
}

// reclusterLoop drains the pool until the pending level falls below the
// threshold, then parks. A rebuild failure also parks the loop (the needs
// flag makes the next trigger retry).
func (g *Ingestor) reclusterLoop() {
	defer g.wg.Done()
	for {
		err := g.Recluster(context.Background())
		g.mu.Lock()
		if err != nil || g.closed || (g.pending < g.cfg.Threshold && !g.needs) {
			g.inFlight = false
			g.mu.Unlock()
			return
		}
		g.mu.Unlock()
	}
}

// Recluster synchronously absorbs the whole pool into the incremental
// pipeline state, re-clusters the affected communities, and publishes the
// resulting build. The active journal segment is sealed first, so the
// journal's sealed prefix always corresponds to what the published engine
// has folded. A no-op when the pool is empty and no retry is owed. After a
// successful publish, a compaction runs when enough sealed segments piled
// up. Serialised with Replay and with itself.
func (g *Ingestor) Recluster(ctx context.Context) error {
	g.reclusterMu.Lock()
	defer g.reclusterMu.Unlock()

	g.mu.Lock()
	batch := g.pool
	g.pool = nil
	g.pending = 0
	retry := g.needs
	g.needs = false
	if g.seg != nil {
		g.seg.Close()
		g.seg = nil
	}
	sealed := g.segs
	g.mu.Unlock()

	if len(batch) == 0 && !retry {
		return nil
	}
	g.inc.AddPosts(batch)
	folded := uint64(g.inc.Added())
	b, err := g.inc.RebuildCtx(ctx, nil)
	if err != nil {
		// The posts are absorbed (inc is consistent); flag a retry so the
		// next trigger rebuilds even with an empty pool.
		g.mu.Lock()
		g.reclusterFailures++
		g.needs = true
		g.mu.Unlock()
		return err
	}
	// Crash site: the journal is sealed and the rebuild done, but nothing
	// has published yet — restart must replay to the same state.
	_ = faults.Inject("recluster.publish")
	g.cfg.Publish(b)
	g.mu.Lock()
	g.reclusters++
	g.mu.Unlock()

	if g.cfg.DeltaDir != "" && sealed >= g.cfg.CompactAfter {
		if err := g.compact(ctx, b, folded); err != nil {
			return fmt.Errorf("ingest: compacting journal: %w", err)
		}
	}
	return nil
}

// compact folds the journal: a from-scratch build over the union corpus is
// cross-checked bitwise against the just-published incremental build (the
// determinism invariant, enforced at the moment it matters), written as a
// base MEMESNAP named by the folded sequence, and every sealed segment below
// that sequence is merged into a single head frame. Crash-safe at every
// step: new files land via rename, and a crash between the merge and the
// old-segment cleanup leaves overlaps SpliceDeltas tolerates.
func (g *Ingestor) compact(ctx context.Context, cur *pipeline.BuildResult, folded uint64) error {
	ref, err := pipeline.Build(ctx, cur.Dataset, cur.Site, cur.Config, nil)
	if err != nil {
		return err
	}
	var curBuf, refBuf bytes.Buffer
	if err := cur.Save(&curBuf); err != nil {
		return err
	}
	if err := ref.Save(&refBuf); err != nil {
		return err
	}
	if !bytes.Equal(curBuf.Bytes(), refBuf.Bytes()) {
		return fmt.Errorf("determinism self-check failed: incremental state diverges from a from-scratch build at seq %d", folded)
	}

	// Base snapshot first: replay with the old base plus the full journal
	// stays correct if anything after this fails.
	if err := writeFileAtomic(filepath.Join(g.cfg.DeltaDir, fmt.Sprintf("base-%016d.snap", folded)), curBuf.Bytes()); err != nil {
		return err
	}

	// Merge every sealed segment below the folded sequence into one frame.
	names, err := journalSegments(g.cfg.DeltaDir)
	if err != nil {
		return err
	}
	var frames []pipeline.Delta
	var merged []string
	for _, name := range names {
		start, ok := parseSeq(name, "delta-", ".dlt")
		if !ok || start >= folded {
			continue
		}
		fs, err := readSegment(filepath.Join(g.cfg.DeltaDir, name))
		if err != nil {
			return err
		}
		frames = append(frames, fs...)
		merged = append(merged, name)
	}
	posts, covered, err := pipeline.SpliceDeltas(frames, 0)
	if err != nil {
		return err
	}
	if covered != folded {
		return fmt.Errorf("journal covers seq %d, published state folds %d", covered, folded)
	}
	var head bytes.Buffer
	if err := pipeline.SaveDelta(&head, &pipeline.Delta{FromSeq: 0, Posts: posts}); err != nil {
		return err
	}
	headName := fmt.Sprintf("delta-%016d.dlt", 0)
	if err := writeFileAtomic(filepath.Join(g.cfg.DeltaDir, headName), head.Bytes()); err != nil {
		return err
	}

	// Cleanup: stale segments, then stale bases. Failures here only leave
	// harmless extra files behind, but are still reported. Crash site: dying
	// here leaves the merged head overlapping the old segments, which
	// SpliceDeltas tolerates on replay.
	if err := faults.Inject("compact.cleanup"); err != nil {
		return err
	}
	removed := 0
	for _, name := range merged {
		if name == headName {
			continue
		}
		if err := os.Remove(filepath.Join(g.cfg.DeltaDir, name)); err != nil {
			return err
		}
		removed++
	}
	if err := g.removeStaleBases(folded); err != nil {
		return err
	}

	g.mu.Lock()
	g.compactions++
	g.segs -= removed
	if !containsName(merged, headName) {
		g.segs++ // first compaction creates the head segment
	}
	g.mu.Unlock()
	return nil
}

// removeStaleBases deletes every base snapshot older than the one named by
// keep.
func (g *Ingestor) removeStaleBases(keep uint64) error {
	entries, err := os.ReadDir(g.cfg.DeltaDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "base-", ".snap"); ok && seq != keep {
			if err := os.Remove(filepath.Join(g.cfg.DeltaDir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// Replay reads the whole journal and absorbs it into the incremental state:
// the restart path. folded is the sequence already baked into the engine the
// process booted from (LatestBase's sequence, or 0 for a plain base build);
// when the journal covers more than that, a rebuild is published so serving
// catches up before Replay returns. Returns the number of replayed posts.
func (g *Ingestor) Replay(ctx context.Context, folded uint64) (int, error) {
	if g.cfg.DeltaDir == "" {
		return 0, nil
	}
	g.reclusterMu.Lock()
	defer g.reclusterMu.Unlock()

	names, err := journalSegments(g.cfg.DeltaDir)
	if err != nil {
		return 0, err
	}
	var frames []pipeline.Delta
	segs := len(names)
	torn := int64(0)
	for i, name := range names {
		path := filepath.Join(g.cfg.DeltaDir, name)
		if i < len(names)-1 {
			// Interior segments were sealed by a clean close or written
			// atomically by compaction; anything unparseable in them is
			// corruption, not a crash signature — stay strict and loud.
			fs, err := readSegment(path)
			if err != nil {
				return 0, fmt.Errorf("ingest: replaying %s: %w", name, err)
			}
			frames = append(frames, fs...)
			continue
		}
		// Only the last segment can hold a torn tail: it was the active
		// append target when the process died. Salvage its durable frames
		// and repair the file so future appends see clean framing.
		data, err := os.ReadFile(path)
		if err != nil {
			return 0, fmt.Errorf("ingest: replaying %s: %w", name, err)
		}
		if len(data) == 0 {
			// The process died between opening a fresh segment and writing
			// its first frame. The empty file holds nothing to replay but
			// squats on the name the next append will O_EXCL-create, so it
			// must go.
			if err := os.Remove(path); err != nil {
				return 0, fmt.Errorf("ingest: removing empty %s: %w", name, err)
			}
			segs--
			continue
		}
		fs, validLen, isTorn := pipeline.ReadDeltasTolerant(data)
		if isTorn {
			torn++
			if validLen == 0 {
				// No durable frame: remove the file outright, so the next
				// append can recreate the same starting-sequence name.
				if err := os.Remove(path); err != nil {
					return 0, fmt.Errorf("ingest: repairing torn %s: %w", name, err)
				}
				segs--
			} else if err := os.Truncate(path, validLen); err != nil {
				return 0, fmt.Errorf("ingest: repairing torn %s: %w", name, err)
			}
		}
		frames = append(frames, fs...)
	}
	posts, covered, err := pipeline.SpliceDeltas(frames, 0)
	if err != nil {
		return 0, fmt.Errorf("ingest: replaying journal: %w", err)
	}
	if covered < folded {
		return 0, fmt.Errorf("ingest: journal covers seq %d but the loaded base folds %d", covered, folded)
	}
	g.inc.AddPosts(posts)
	if covered > folded {
		b, err := g.inc.RebuildCtx(ctx, nil)
		if err != nil {
			return 0, err
		}
		g.cfg.Publish(b)
		g.mu.Lock()
		g.reclusters++
		g.mu.Unlock()
	}
	g.mu.Lock()
	g.seq = covered
	g.segs = segs
	g.ingested += int64(len(posts))
	g.tornTails += torn
	g.mu.Unlock()
	return len(posts), nil
}

// Degraded reports whether the ingestor is in read-only mode: the last
// journal append exhausted its retry budget and none has succeeded since.
func (g *Ingestor) Degraded() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.degraded || g.broken
}

// Stats snapshots the counters.
func (g *Ingestor) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Stats{
		Ingested:          g.ingested,
		Assigned:          g.assigned,
		Rejected:          g.rejected,
		Pending:           g.pending,
		Pool:              len(g.pool),
		Reclusters:        g.reclusters,
		ReclusterFailures: g.reclusterFailures,
		Compactions:       g.compactions,
		DeltaSegments:     g.segs,
		Seq:               g.seq,
		JournalRetries:    g.journalRetries,
		JournalFailures:   g.journalFailures,
		TornTails:         g.tornTails,
		Degraded:          g.degraded || g.broken,
	}
}

// Close stops accepting ingests, waits for the background re-cluster to
// park, and seals the journal. Posts still pooled are journaled already, so
// nothing acknowledged is lost — the next Replay folds them in.
func (g *Ingestor) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.mu.Unlock()
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.seg != nil {
		err := g.seg.Close()
		g.seg = nil
		return err
	}
	return nil
}

// LatestBase locates the newest compacted base snapshot in a delta
// directory. ok is false when the directory holds none (or does not exist) —
// boot from the original corpus and Replay from sequence 0.
func LatestBase(dir string) (path string, seq uint64, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return "", 0, false, nil
	}
	if err != nil {
		return "", 0, false, err
	}
	for _, e := range entries {
		if s, isBase := parseSeq(e.Name(), "base-", ".snap"); isBase && (!ok || s > seq) {
			path, seq, ok = filepath.Join(dir, e.Name()), s, true
		}
	}
	return path, seq, ok, nil
}

// --- journal helpers ---------------------------------------------------------

// journalSegments lists the segment files of a delta dir in ascending
// sequence order (ReadDir sorts by name; the zero-padded names make that the
// numeric order).
func journalSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if _, ok := parseSeq(e.Name(), "delta-", ".dlt"); ok {
			out = append(out, e.Name())
		}
	}
	return out, nil
}

// readSegment reads every frame of one segment file.
func readSegment(path string) ([]pipeline.Delta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return pipeline.ReadDeltas(f)
}

// parseSeq extracts the zero-padded sequence from a journal file name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if len(digits) != 16 {
		return 0, false
	}
	var seq uint64
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// containsName reports whether names contains name.
func containsName(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// writeFileAtomic writes data to path via a temp file and rename, so readers
// never observe a partial file and a crash leaves either the old content or
// the new.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	err = faults.Inject("snapshot.write")
	if err == nil {
		_, err = faults.WrapWriter("snapshot.write", tmp).Write(data)
	}
	if err != nil {
		tmp.Close()
		return err
	}
	err = tmp.Sync()
	if err == nil {
		err = faults.Inject("snapshot.sync")
	}
	if err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	// Crash site: a synced temp file that never renamed is invisible to
	// readers — restart sees the previous base plus the full journal.
	if err := faults.Inject("snapshot.rename"); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
