package ingest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"github.com/memes-pipeline/memes/internal/annotate"
	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/phash"
	"github.com/memes-pipeline/memes/internal/pipeline"
)

// carve generates a corpus and splits off the tail as live ingest traffic.
func carve(t *testing.T, live int) (*dataset.Dataset, *dataset.Dataset, []dataset.Post, *annotate.Site) {
	t.Helper()
	ds, err := dataset.Generate(dataset.SmallConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(ds.Posts) <= live {
		t.Fatalf("corpus too small: %d posts", len(ds.Posts))
	}
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	cut := len(ds.Posts) - live
	base := *ds
	base.Posts = ds.Posts[:cut:cut]
	return ds, &base, ds.Posts[cut:], site
}

// harness builds the base engine, publishes it into an atomic slot, and
// wires an Ingestor's Match/Publish hooks to that slot — the in-process
// stand-in for HotEngine.Swap.
func harness(t *testing.T, base *dataset.Dataset, site *annotate.Site, cfg Config) (*Ingestor, *atomic.Pointer[pipeline.BuildResult], pipeline.Config) {
	t.Helper()
	pcfg := pipeline.DefaultConfig()
	b, err := pipeline.Build(context.Background(), base, site, pcfg, nil)
	if err != nil {
		t.Fatalf("base Build: %v", err)
	}
	var cur atomic.Pointer[pipeline.BuildResult]
	cur.Store(b)
	cfg.Match = func(ctx context.Context, h phash.Hash) (bool, error) {
		_, ok, err := cur.Load().MatchCtx(ctx, h)
		return ok, err
	}
	cfg.Publish = func(nb *pipeline.BuildResult) { cur.Store(nb) }
	inc, err := pipeline.NewIncremental(base, site, pcfg)
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	g, err := New(inc, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	return g, &cur, pcfg
}

// saveBytes serialises a build for bitwise comparison.
func saveBytes(t *testing.T, b *pipeline.BuildResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

// TestIngestDeterminism is the subsystem's core invariant: ingesting the
// live tail in batches and re-clustering ends bitwise-identical to a
// from-scratch build over the union corpus.
func TestIngestDeterminism(t *testing.T) {
	full, base, live, site := carve(t, 120)
	g, cur, pcfg := harness(t, base, site, Config{Threshold: 1 << 20})
	ctx := context.Background()

	ref, err := pipeline.Build(ctx, full, site, pcfg, nil)
	if err != nil {
		t.Fatalf("union Build: %v", err)
	}
	want := saveBytes(t, ref)

	cuts := []int{0, len(live) / 3, 2 * len(live) / 3, len(live)}
	for bi := 1; bi < len(cuts); bi++ {
		batch := live[cuts[bi-1]:cuts[bi]]
		r, err := g.Ingest(ctx, batch)
		if err != nil {
			t.Fatalf("Ingest batch %d: %v", bi, err)
		}
		if r.Accepted != len(batch) {
			t.Fatalf("batch %d: accepted %d of %d", bi, r.Accepted, len(batch))
		}
		if err := g.Recluster(ctx); err != nil {
			t.Fatalf("Recluster %d: %v", bi, err)
		}
	}
	if got := saveBytes(t, cur.Load()); !bytes.Equal(got, want) {
		t.Error("ingested engine diverges from a from-scratch build over the union corpus")
	}
	st := g.Stats()
	if st.Seq != uint64(len(live)) || st.Ingested != int64(len(live)) || st.Pool != 0 {
		t.Errorf("stats after drain: %+v", st)
	}
	if st.Reclusters == 0 {
		t.Error("no re-clusters recorded")
	}
}

// plantNovelEntry appends a synthetic KYM entry whose single gallery hash is
// far from every existing post and gallery hash: a meme the site knows about
// but nobody has posted yet. Five ingested copies of the returned hash form
// an isolated singleton cluster that annotates against the planted entry —
// servable only after a re-cluster, never before.
func plantNovelEntry(t *testing.T, ds *dataset.Dataset) phash.Hash {
	t.Helper()
	var existing []phash.Hash
	for i := range ds.Posts {
		if ds.Posts[i].HasImage {
			existing = append(existing, ds.Posts[i].PHash())
		}
	}
	for _, e := range ds.KYMEntries {
		for _, g := range e.Gallery {
			existing = append(existing, phash.Hash(g))
		}
	}
	for k := uint64(1); k < 1<<20; k++ {
		h := phash.Hash(k * 0x9E3779B97F4A7C15)
		far := true
		for _, x := range existing {
			if phash.Distance(h, x) <= 16 {
				far = false
				break
			}
		}
		if far {
			ds.KYMEntries = append(ds.KYMEntries, dataset.KYMEntry{
				Name:            "synthetic-novel-meme",
				Title:           "Synthetic Novel Meme",
				Category:        "memes",
				Gallery:         []uint64{uint64(h)},
				ScreenshotFlags: []bool{false},
			})
			return h
		}
	}
	t.Fatal("no hash is far from the whole corpus")
	return 0
}

// TestIngestTriggerServesNewPosts exercises the full streaming loop: posts
// that nothing matches park as pending, crossing the threshold starts the
// background re-cluster, and the posts become servable through the
// published engine without any restart.
func TestIngestTriggerServesNewPosts(t *testing.T) {
	ds, err := dataset.Generate(dataset.SmallConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	h := plantNovelEntry(t, ds)
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	g, cur, _ := harness(t, ds, site, Config{Threshold: 5})
	ctx := context.Background()
	if _, ok, err := cur.Load().MatchCtx(ctx, h); err != nil || ok {
		t.Fatalf("novel hash already matches (ok=%v, err=%v)", ok, err)
	}
	posts := make([]dataset.Post, 5)
	for i := range posts {
		posts[i] = dataset.Post{
			ID:        9_000_000 + int64(i),
			Community: dataset.Pol,
			Timestamp: time.Unix(0, 0).UTC(),
			HasImage:  true,
			Hash:      uint64(h),
			TruthMeme: -1,
			TruthRoot: -1,
		}
	}
	r, err := g.Ingest(ctx, posts)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if !r.Triggered || r.Assigned != 0 || r.Pending != 5 {
		t.Fatalf("receipt = %+v, want triggered with 5 pending", r)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, ok, err := cur.Load().MatchCtx(ctx, h); err == nil && ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingested hash never became servable; stats %+v", g.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := g.Stats()
	if st.Reclusters == 0 || st.Ingested != 5 {
		t.Errorf("stats after trigger: %+v", st)
	}

	// The follow-up ingest of the same hash is assigned immediately.
	dup := posts[0]
	dup.ID = 9_000_100
	r, err = g.Ingest(ctx, []dataset.Post{dup})
	if err != nil {
		t.Fatalf("duplicate Ingest: %v", err)
	}
	if r.Assigned != 1 {
		t.Errorf("duplicate receipt = %+v, want assigned", r)
	}
}

// TestIngestJournalReplay pins the restart path: a fresh process replaying
// the journal over the base corpus converges on the exact engine the first
// process published.
func TestIngestJournalReplay(t *testing.T) {
	_, base, live, site := carve(t, 80)
	dir := t.TempDir()
	g, cur, _ := harness(t, base, site, Config{Threshold: 1 << 20, DeltaDir: dir})
	ctx := context.Background()

	for _, cut := range [][2]int{{0, len(live) / 2}, {len(live) / 2, len(live)}} {
		if _, err := g.Ingest(ctx, live[cut[0]:cut[1]]); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
		if err := g.Recluster(ctx); err != nil {
			t.Fatalf("Recluster: %v", err)
		}
	}
	want := saveBytes(t, cur.Load())
	if err := g.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	g2, cur2, _ := harness(t, base, site, Config{Threshold: 1 << 20, DeltaDir: dir})
	n, err := g2.Replay(ctx, 0)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != len(live) {
		t.Errorf("replayed %d posts, want %d", n, len(live))
	}
	if got := saveBytes(t, cur2.Load()); !bytes.Equal(got, want) {
		t.Error("replayed engine diverges from the pre-restart engine")
	}
	if st := g2.Stats(); st.Seq != uint64(len(live)) {
		t.Errorf("replayed seq = %d, want %d", st.Seq, len(live))
	}
}

// TestIngestCompaction pins the journal-folding path: after compaction the
// delta dir holds a base snapshot that is bitwise a from-scratch build over
// the union corpus plus one merged head frame, old segments are gone, and a
// restart from the compacted state replays cleanly.
func TestIngestCompaction(t *testing.T) {
	full, base, live, site := carve(t, 60)
	dir := t.TempDir()
	g, _, pcfg := harness(t, base, site, Config{Threshold: 1 << 20, DeltaDir: dir, CompactAfter: 1})
	ctx := context.Background()

	half := len(live) / 2
	for _, cut := range [][2]int{{0, half}, {half, len(live)}} {
		if _, err := g.Ingest(ctx, live[cut[0]:cut[1]]); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
		if err := g.Recluster(ctx); err != nil {
			t.Fatalf("Recluster: %v", err)
		}
	}
	st := g.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction ran: %+v", st)
	}

	path, seq, ok, err := LatestBase(dir)
	if err != nil || !ok {
		t.Fatalf("LatestBase: ok=%v err=%v", ok, err)
	}
	if seq != uint64(len(live)) {
		t.Errorf("base folds seq %d, want %d", seq, len(live))
	}
	snap, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading base snapshot: %v", err)
	}
	ref, err := pipeline.Build(ctx, full, site, pcfg, nil)
	if err != nil {
		t.Fatalf("union Build: %v", err)
	}
	if !bytes.Equal(snap, saveBytes(t, ref)) {
		t.Error("compacted base snapshot diverges from a from-scratch union build")
	}

	segs, err := journalSegments(dir)
	if err != nil {
		t.Fatalf("journalSegments: %v", err)
	}
	if len(segs) != 1 || segs[0] != "delta-0000000000000000.dlt" {
		t.Errorf("post-compaction segments = %v, want the merged head only", segs)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Restart from the compacted state: the journal covers exactly what the
	// base folds, so replay absorbs the posts without republishing.
	g2, cur2, _ := harness(t, base, site, Config{Threshold: 1 << 20, DeltaDir: dir})
	before := cur2.Load()
	n, err := g2.Replay(ctx, seq)
	if err != nil {
		t.Fatalf("Replay after compaction: %v", err)
	}
	if n != len(live) {
		t.Errorf("replayed %d posts, want %d", n, len(live))
	}
	if cur2.Load() != before {
		t.Error("replay republished although the base already folds the journal")
	}
	// One more ingested batch after the restart still converges.
	extra := live[:0:0]
	if err := g2.Recluster(ctx); err != nil {
		t.Fatalf("idle Recluster: %v", err)
	}
	_ = extra
}

// TestIngestBackpressureAndValidation pins the rejection paths: pool
// overflow, invalid communities, and ingest-after-close. Rejected batches
// must leave no trace — no journal frame, no sequence advance.
func TestIngestBackpressureAndValidation(t *testing.T) {
	_, base, live, site := carve(t, 20)
	dir := t.TempDir()
	g, _, _ := harness(t, base, site, Config{Threshold: 1 << 20, MaxPending: 4, DeltaDir: dir})
	ctx := context.Background()

	if _, err := g.Ingest(ctx, live[:5]); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("overflow ingest err = %v, want ErrPoolFull", err)
	}
	st := g.Stats()
	if st.Rejected != 5 || st.Seq != 0 || st.Pool != 0 {
		t.Errorf("stats after rejection: %+v", st)
	}
	segs, err := journalSegments(dir)
	if err != nil || len(segs) != 0 {
		t.Errorf("rejected batch left journal segments %v (err %v)", segs, err)
	}

	bad := live[0]
	bad.Community = dataset.Community(99)
	if _, err := g.Ingest(ctx, []dataset.Post{bad}); err == nil {
		t.Error("invalid community accepted")
	}

	if _, err := g.Ingest(ctx, live[:2]); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := g.Ingest(ctx, live[2:4]); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close ingest err = %v, want ErrClosed", err)
	}
}

// TestIngestConfigValidation pins the constructor contract.
func TestIngestConfigValidation(t *testing.T) {
	_, base, _, site := carve(t, 5)
	inc, err := pipeline.NewIncremental(base, site, pipeline.DefaultConfig())
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil incremental state accepted")
	}
	if _, err := New(inc, Config{}); err == nil {
		t.Error("missing hooks accepted")
	}
}

// TestLatestBaseMissingDir pins the fresh-boot path: no dir, no base, no
// error.
func TestLatestBaseMissingDir(t *testing.T) {
	_, _, ok, err := LatestBase(filepath.Join(t.TempDir(), "nope"))
	if err != nil || ok {
		t.Errorf("LatestBase on missing dir: ok=%v err=%v", ok, err)
	}
}

// TestIngestReplayRepairsTornAndEmptyTails pins the two crash signatures a
// dying append can leave in the active segment — a torn half-written frame
// and a zero-byte file opened but never written — and the regression that an
// unremoved empty segment makes the next append's O_EXCL create collide.
// After each repair, further appends must keep the bitwise determinism
// contract.
func TestIngestReplayRepairsTornAndEmptyTails(t *testing.T) {
	full, base, live, site := carve(t, 60)
	dir := t.TempDir()
	ctx := context.Background()

	// checkpoint asserts the published build is bitwise a from-scratch build
	// over the base corpus plus the first n live posts.
	var pcfg pipeline.Config
	checkpoint := func(t *testing.T, cur *atomic.Pointer[pipeline.BuildResult], n int) {
		t.Helper()
		union := *full
		k := len(base.Posts) + n
		union.Posts = full.Posts[:k:k]
		ref, err := pipeline.Build(ctx, &union, site, pcfg, nil)
		if err != nil {
			t.Fatalf("reference Build: %v", err)
		}
		if !bytes.Equal(saveBytes(t, cur.Load()), saveBytes(t, ref)) {
			t.Errorf("engine diverges bitwise from a from-scratch build over base + %d live posts", n)
		}
	}

	g, _, pc := harness(t, base, site, Config{Threshold: 1 << 20, DeltaDir: dir})
	pcfg = pc
	if _, err := g.Ingest(ctx, live[:20]); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if err := g.Recluster(ctx); err != nil {
		t.Fatalf("Recluster: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Crash signature 1: the process died mid-append, leaving garbage after
	// the last durable frame of the active segment.
	segs, err := journalSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("journalSegments: %v (%d segments)", err, len(segs))
	}
	last := filepath.Join(dir, segs[len(segs)-1])
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("torn mid-frame garbage")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	g2, cur2, _ := harness(t, base, site, Config{Threshold: 1 << 20, DeltaDir: dir})
	n, err := g2.Replay(ctx, 0)
	if err != nil {
		t.Fatalf("Replay over torn tail: %v", err)
	}
	if n != 20 {
		t.Errorf("replayed %d posts, want 20 (the durable frame)", n)
	}
	st := g2.Stats()
	if st.TornTails != 1 || st.Seq != 20 {
		t.Errorf("stats after torn replay = %+v, want 1 torn tail at seq 20", st)
	}
	checkpoint(t, cur2, 20)

	// The repaired segment must accept further appends.
	if _, err := g2.Ingest(ctx, live[20:40]); err != nil {
		t.Fatalf("post-repair Ingest: %v", err)
	}
	if err := g2.Recluster(ctx); err != nil {
		t.Fatalf("post-repair Recluster: %v", err)
	}
	checkpoint(t, cur2, 40)
	if err := g2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Crash signature 2: the process died between O_EXCL-opening a fresh
	// segment and writing its first frame. The empty file squats on the name
	// the next append will recreate; replay must remove it.
	empty := filepath.Join(dir, fmt.Sprintf("delta-%016d.dlt", 40))
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	g3, cur3, _ := harness(t, base, site, Config{Threshold: 1 << 20, DeltaDir: dir})
	n, err = g3.Replay(ctx, 0)
	if err != nil {
		t.Fatalf("Replay over empty tail: %v", err)
	}
	if n != 40 {
		t.Errorf("replayed %d posts, want 40", n)
	}
	if st := g3.Stats(); st.Seq != 40 || st.TornTails != 0 {
		t.Errorf("stats after empty-tail replay = %+v, want seq 40 and no torn tails", st)
	}
	if _, err := os.Stat(empty); !os.IsNotExist(err) {
		t.Errorf("empty segment survived replay (stat err = %v)", err)
	}
	// The regression: appending must not collide with the removed name.
	if _, err := g3.Ingest(ctx, live[40:60]); err != nil {
		t.Fatalf("post-removal Ingest: %v", err)
	}
	if err := g3.Recluster(ctx); err != nil {
		t.Fatalf("post-removal Recluster: %v", err)
	}
	checkpoint(t, cur3, 60)
}
