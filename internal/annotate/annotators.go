package annotate

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/memes-pipeline/memes/internal/stats"
)

// This file implements the annotation-quality evaluation of Appendix B: a
// panel of human annotators assessed 200 clusters and 162 KYM entries,
// reaching a Fleiss kappa of 0.67 and a majority-vote accuracy of 89%, with
// 1.85% of KYM entries judged "bad". Because we cannot ship human
// annotators, the panel is simulated: each simulated annotator agrees with
// the ground-truth label with a configurable probability, which lets the
// evaluation machinery (kappa, majority vote, accuracy) be reproduced and
// validated against the paper's reported numbers.

// PanelConfig configures a simulated annotator panel.
type PanelConfig struct {
	// Annotators is the number of raters (the paper used 3).
	Annotators int
	// Accuracy is the per-annotator probability of reporting the ground-truth
	// validity of a cluster annotation.
	Accuracy float64
	// ValidRate is the ground-truth fraction of clusters whose automatic
	// annotation is actually correct (the paper measured 89%).
	ValidRate float64
	// Subjects is the number of clusters assessed (the paper used 200).
	Subjects int
	// BadEntryRate is the fraction of KYM entries judged "bad"
	// (the paper found 1.85%).
	BadEntryRate float64
	// Entries is the number of KYM entries assessed (the paper used 162).
	Entries int
	// Seed makes the simulation deterministic.
	Seed int64
}

// DefaultPanelConfig mirrors Appendix B: 3 annotators, 200 clusters,
// 162 entries, with per-annotator accuracy and ground-truth validity rate
// calibrated so that the resulting kappa and majority accuracy land near the
// paper's 0.67 / 89%.
func DefaultPanelConfig() PanelConfig {
	return PanelConfig{
		Annotators:   3,
		Accuracy:     0.96,
		ValidRate:    0.89,
		Subjects:     200,
		BadEntryRate: 0.0185,
		Entries:      162,
		Seed:         1,
	}
}

// Validate reports whether the configuration is usable.
func (c PanelConfig) Validate() error {
	if c.Annotators < 2 {
		return errors.New("annotate: panel requires at least two annotators")
	}
	if c.Subjects < 1 {
		return errors.New("annotate: panel requires at least one subject")
	}
	if c.Accuracy < 0 || c.Accuracy > 1 {
		return fmt.Errorf("annotate: accuracy %v out of [0,1]", c.Accuracy)
	}
	if c.ValidRate < 0 || c.ValidRate > 1 {
		return fmt.Errorf("annotate: valid rate %v out of [0,1]", c.ValidRate)
	}
	if c.BadEntryRate < 0 || c.BadEntryRate > 1 {
		return fmt.Errorf("annotate: bad entry rate %v out of [0,1]", c.BadEntryRate)
	}
	if c.Entries < 0 {
		return errors.New("annotate: negative entry count")
	}
	return nil
}

// PanelResult summarises a simulated annotation-quality evaluation.
type PanelResult struct {
	// Kappa is Fleiss' kappa over the cluster assessments.
	Kappa float64
	// MajorityAccuracy is the fraction of clusters judged correctly annotated
	// by the majority of the panel — the paper's "clustering accuracy after
	// majority agreement" (89%).
	MajorityAccuracy float64
	// BadEntryFraction is the fraction of assessed KYM entries judged bad.
	BadEntryFraction float64
	// SubjectsAssessed and EntriesAssessed echo the evaluation sizes.
	SubjectsAssessed int
	EntriesAssessed  int
}

// RunPanel simulates the annotator panel and computes kappa, majority-vote
// accuracy, and the bad-entry fraction. Cluster assessments are binary:
// "annotation is valid" vs "annotation is wrong". Each cluster has a
// ground-truth validity drawn with probability ValidRate, and each annotator
// independently reports the truth with probability Accuracy; subject-level
// variation is what produces agreement above chance (kappa > 0).
func RunPanel(cfg PanelConfig) (PanelResult, error) {
	if err := cfg.Validate(); err != nil {
		return PanelResult{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	const nCategories = 2 // valid / invalid
	ratings := make([][]int, cfg.Subjects)
	majorityValid := 0
	for i := range ratings {
		ratings[i] = make([]int, nCategories)
		valid := rng.Float64() < cfg.ValidRate
		votesValid := 0
		for a := 0; a < cfg.Annotators; a++ {
			saysValid := valid
			if rng.Float64() >= cfg.Accuracy {
				saysValid = !saysValid
			}
			if saysValid {
				ratings[i][0]++
				votesValid++
			} else {
				ratings[i][1]++
			}
		}
		if votesValid*2 > cfg.Annotators {
			majorityValid++
		}
	}
	kappa, err := stats.FleissKappa(ratings)
	if err != nil {
		return PanelResult{}, err
	}

	bad := 0
	for i := 0; i < cfg.Entries; i++ {
		if rng.Float64() < cfg.BadEntryRate {
			bad++
		}
	}
	badFrac := 0.0
	if cfg.Entries > 0 {
		badFrac = float64(bad) / float64(cfg.Entries)
	}
	return PanelResult{
		Kappa:            kappa,
		MajorityAccuracy: float64(majorityValid) / float64(cfg.Subjects),
		BadEntryFraction: badFrac,
		SubjectsAssessed: cfg.Subjects,
		EntriesAssessed:  cfg.Entries,
	}, nil
}
