// Package annotate models the meme annotation site (Know Your Meme in the
// paper) and implements cluster annotation: matching cluster medoids to KYM
// entries within a Hamming threshold (Step 5 of the pipeline) and selecting
// a representative entry per cluster.
package annotate

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/memes-pipeline/memes/internal/phash"
)

// Category is the high-level grouping a KYM entry belongs to.
type Category string

// KYM entry categories as described in Section 3.2 of the paper.
const (
	CategoryMeme       Category = "memes"
	CategorySubculture Category = "subcultures"
	CategoryCulture    Category = "cultures"
	CategoryPeople     Category = "people"
	CategoryEvent      Category = "events"
	CategorySite       Category = "sites"
)

// Categories lists all valid categories in presentation order.
func Categories() []Category {
	return []Category{CategoryMeme, CategorySubculture, CategoryEvent,
		CategoryCulture, CategorySite, CategoryPeople}
}

// Valid reports whether c is one of the known categories.
func (c Category) Valid() bool {
	switch c {
	case CategoryMeme, CategorySubculture, CategoryCulture, CategoryPeople,
		CategoryEvent, CategorySite:
		return true
	}
	return false
}

// Entry is a single annotation-site entry: a meme, subculture, person, event,
// culture, or site, together with its image gallery (as perceptual hashes),
// tags, and provenance metadata.
type Entry struct {
	// Name is the entry's unique identifier (e.g. "pepe-the-frog").
	Name string
	// Title is the human-readable title (e.g. "Pepe the Frog").
	Title string
	// Category is the entry's high-level category.
	Category Category
	// Tags are the keywords attached to the entry; the racism/politics
	// groupings of Section 4.2.1 are derived from them.
	Tags []string
	// Origin is the platform where the meme was first observed
	// (e.g. "4chan", "youtube", "unknown").
	Origin string
	// Year is the year the entry started.
	Year int
	// Gallery holds the perceptual hashes of the entry's image gallery after
	// screenshot filtering (Step 4).
	Gallery []phash.Hash
}

// Validate reports whether the entry is well formed.
func (e *Entry) Validate() error {
	if e.Name == "" {
		return errors.New("annotate: entry has empty name")
	}
	if !e.Category.Valid() {
		return fmt.Errorf("annotate: entry %q has invalid category %q", e.Name, e.Category)
	}
	return nil
}

// HasTag reports whether the entry carries the given tag (case-insensitive).
func (e *Entry) HasTag(tag string) bool {
	for _, t := range e.Tags {
		if strings.EqualFold(t, tag) {
			return true
		}
	}
	return false
}

// Tag groups used in Section 4.2.1 to classify memes as racist or
// politics-related.
var (
	// RacismTags mark an entry as racism-related.
	RacismTags = []string{"racism", "racist", "antisemitism"}
	// PoliticsTags mark an entry as politics-related.
	PoliticsTags = []string{"politics", "2016 us presidential election",
		"presidential election", "trump", "clinton"}
)

// IsRacist reports whether the entry belongs to the racism-related group.
func (e *Entry) IsRacist() bool { return e.hasAnyTag(RacismTags) }

// IsPolitical reports whether the entry belongs to the politics-related group.
func (e *Entry) IsPolitical() bool { return e.hasAnyTag(PoliticsTags) }

func (e *Entry) hasAnyTag(tags []string) bool {
	for _, t := range tags {
		if e.HasTag(t) {
			return true
		}
	}
	return false
}

// Site is an in-memory annotation site: a collection of entries indexed by
// name and by gallery hash for fast medoid matching.
type Site struct {
	entries []*Entry
	byName  map[string]*Entry
	index   *phash.BKTree
	// hashOwners maps an index into the flat gallery hash list to the entry
	// that owns it; the BK-tree stores those indexes as item IDs.
	hashOwners []*Entry
	hashValues []phash.Hash
}

// NewSite builds a Site from the given entries. Entry names must be unique.
func NewSite(entries []*Entry) (*Site, error) {
	s := &Site{
		byName: make(map[string]*Entry, len(entries)),
		index:  phash.NewBKTree(),
	}
	for _, e := range entries {
		if err := e.Validate(); err != nil {
			return nil, err
		}
		if _, dup := s.byName[e.Name]; dup {
			return nil, fmt.Errorf("annotate: duplicate entry name %q", e.Name)
		}
		s.byName[e.Name] = e
		s.entries = append(s.entries, e)
		for _, h := range e.Gallery {
			id := int64(len(s.hashOwners))
			s.hashOwners = append(s.hashOwners, e)
			s.hashValues = append(s.hashValues, h)
			s.index.Insert(h, id)
		}
	}
	return s, nil
}

// Entries returns all entries in insertion order.
func (s *Site) Entries() []*Entry { return s.entries }

// Entry returns the entry with the given name, or nil.
func (s *Site) Entry(name string) *Entry { return s.byName[name] }

// NumEntries returns the number of entries on the site.
func (s *Site) NumEntries() int { return len(s.entries) }

// NumGalleryImages returns the total number of gallery hashes indexed.
func (s *Site) NumGalleryImages() int { return len(s.hashValues) }

// CategoryCounts returns the number of entries per category.
func (s *Site) CategoryCounts() map[Category]int {
	out := make(map[Category]int)
	for _, e := range s.entries {
		out[e.Category]++
	}
	return out
}

// OriginCounts returns the number of entries per origin platform.
func (s *Site) OriginCounts() map[string]int {
	out := make(map[string]int)
	for _, e := range s.entries {
		origin := e.Origin
		if origin == "" {
			origin = "unknown"
		}
		out[origin]++
	}
	return out
}

// GallerySizes returns the gallery size of every entry, in entry order.
func (s *Site) GallerySizes() []int {
	out := make([]int, len(s.entries))
	for i, e := range s.entries {
		out[i] = len(e.Gallery)
	}
	return out
}

// EntryMatch records how strongly a single KYM entry matched a cluster
// medoid during annotation.
type EntryMatch struct {
	Entry *Entry
	// Matches is the number of gallery images of the entry within the
	// threshold of the cluster medoid.
	Matches int
	// MatchFraction is Matches divided by the entry's gallery size.
	MatchFraction float64
	// MeanDistance is the mean Hamming distance of the matching gallery
	// images from the medoid.
	MeanDistance float64
}

// Annotation is the full annotation of one cluster: every matching entry and
// the representative one.
type Annotation struct {
	// Matches lists every entry with at least one gallery image within the
	// threshold, ordered by decreasing match fraction (ties by mean distance,
	// then name).
	Matches []EntryMatch
	// Representative is the entry chosen to represent the cluster, nil when
	// no entry matched.
	Representative *Entry
}

// Annotated reports whether at least one entry matched.
func (a Annotation) Annotated() bool { return len(a.Matches) > 0 }

// EntryNames returns the names of all matched entries.
func (a Annotation) EntryNames() []string {
	out := make([]string, len(a.Matches))
	for i, m := range a.Matches {
		out[i] = m.Entry.Name
	}
	return out
}

// NamesByCategory returns the names of matched entries of the given category.
func (a Annotation) NamesByCategory(c Category) []string {
	var out []string
	for _, m := range a.Matches {
		if m.Entry.Category == c {
			out = append(out, m.Entry.Name)
		}
	}
	return out
}

// DefaultThreshold is the Hamming threshold θ used by the paper for matching
// medoids to annotation-site images (Step 5) and for associating posts to
// clusters (Step 6).
const DefaultThreshold = 8

// Annotate matches the cluster medoid against every gallery image on the
// site and returns the annotation. threshold is the maximum Hamming distance
// for a gallery image to count as a match (the paper's θ=8).
func (s *Site) Annotate(medoid phash.Hash, threshold int) Annotation {
	if threshold < 0 {
		threshold = DefaultThreshold
	}
	matches := s.index.Radius(medoid, threshold)
	type agg struct {
		count int
		sum   int
	}
	perEntry := make(map[*Entry]*agg)
	for _, m := range matches {
		for _, id := range m.IDs {
			e := s.hashOwners[id]
			a := perEntry[e]
			if a == nil {
				a = &agg{}
				perEntry[e] = a
			}
			a.count++
			a.sum += m.Distance
		}
	}
	var out Annotation
	for e, a := range perEntry {
		frac := 0.0
		if len(e.Gallery) > 0 {
			frac = float64(a.count) / float64(len(e.Gallery))
		}
		out.Matches = append(out.Matches, EntryMatch{
			Entry:         e,
			Matches:       a.count,
			MatchFraction: frac,
			MeanDistance:  float64(a.sum) / float64(a.count),
		})
	}
	sort.Slice(out.Matches, func(i, j int) bool {
		a, b := out.Matches[i], out.Matches[j]
		if a.MatchFraction != b.MatchFraction {
			return a.MatchFraction > b.MatchFraction
		}
		if a.MeanDistance != b.MeanDistance {
			return a.MeanDistance < b.MeanDistance
		}
		return a.Entry.Name < b.Entry.Name
	})
	if len(out.Matches) > 0 {
		out.Representative = out.Matches[0].Entry
	}
	return out
}
