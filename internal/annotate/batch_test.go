package annotate

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/memes-pipeline/memes/internal/phash"
)

func TestAnnotateBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	site, err := NewSite(testEntries(rng))
	if err != nil {
		t.Fatal(err)
	}
	var medoids []phash.Hash
	for _, e := range site.Entries() {
		for _, h := range e.Gallery {
			medoids = append(medoids, perturb(rng, h, 2))
		}
	}
	medoids = append(medoids, phash.Hash(rng.Uint64())) // likely no match
	want := make([]Annotation, len(medoids))
	for i, m := range medoids {
		want[i] = site.Annotate(m, DefaultThreshold)
	}
	for _, workers := range []int{0, 1, 4} {
		got := site.AnnotateBatch(medoids, DefaultThreshold, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: AnnotateBatch diverges from sequential Annotate", workers)
		}
	}
	if got := site.AnnotateBatch(nil, DefaultThreshold, 4); len(got) != 0 {
		t.Fatalf("empty batch returned %d annotations", len(got))
	}
}
