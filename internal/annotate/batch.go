package annotate

import (
	"context"

	"github.com/memes-pipeline/memes/internal/parallel"
	"github.com/memes-pipeline/memes/internal/phash"
)

// AnnotateBatch annotates many cluster medoids concurrently (Step 5 as a
// batch). The site's BK-tree index is read-only after construction, so the
// radius queries fan out across a worker pool (workers <= 0 means
// GOMAXPROCS); results are returned in medoid order and are identical to
// calling Annotate sequentially.
func (s *Site) AnnotateBatch(medoids []phash.Hash, threshold, workers int) []Annotation {
	out, _ := s.AnnotateBatchCtx(context.Background(), medoids, threshold, workers)
	return out
}

// AnnotateBatchCtx is AnnotateBatch with cancellation: medoids stop being
// scheduled once ctx is cancelled and (nil, ctx.Err()) is returned.
func (s *Site) AnnotateBatchCtx(ctx context.Context, medoids []phash.Hash, threshold, workers int) ([]Annotation, error) {
	return parallel.MapCtx(ctx, len(medoids), workers, func(i int) Annotation {
		return s.Annotate(medoids[i], threshold)
	})
}
