package annotate

import (
	"math/rand"
	"testing"

	"github.com/memes-pipeline/memes/internal/phash"
)

func perturb(rng *rand.Rand, h phash.Hash, k int) phash.Hash {
	perm := rng.Perm(64)
	for i := 0; i < k; i++ {
		h ^= 1 << uint(perm[i])
	}
	return h
}

func testEntries(rng *rand.Rand) []*Entry {
	pepeBase := phash.Hash(rng.Uint64())
	merchantBase := phash.Hash(rng.Uint64())
	trumpBase := phash.Hash(rng.Uint64())
	gallery := func(base phash.Hash, n, spread int) []phash.Hash {
		out := make([]phash.Hash, n)
		for i := range out {
			out[i] = perturb(rng, base, rng.Intn(spread+1))
		}
		return out
	}
	return []*Entry{
		{
			Name: "pepe-the-frog", Title: "Pepe the Frog", Category: CategoryMeme,
			Tags: []string{"frog", "4chan", "racism"}, Origin: "4chan", Year: 2008,
			Gallery: gallery(pepeBase, 20, 4),
		},
		{
			Name: "happy-merchant", Title: "Happy Merchant", Category: CategoryMeme,
			Tags: []string{"antisemitism", "4chan"}, Origin: "4chan", Year: 2012,
			Gallery: gallery(merchantBase, 15, 4),
		},
		{
			Name: "donald-trump", Title: "Donald Trump", Category: CategoryPeople,
			Tags: []string{"politics", "trump"}, Origin: "twitter", Year: 2015,
			Gallery: gallery(trumpBase, 10, 4),
		},
		{
			Name: "alt-right", Title: "Alt-Right", Category: CategoryCulture,
			Tags: []string{"politics"}, Origin: "unknown", Year: 2016,
			Gallery: nil,
		},
	}
}

func TestCategoryValid(t *testing.T) {
	for _, c := range Categories() {
		if !c.Valid() {
			t.Errorf("category %q should be valid", c)
		}
	}
	if Category("bogus").Valid() {
		t.Error("bogus category should be invalid")
	}
	if len(Categories()) != 6 {
		t.Errorf("expected 6 categories, got %d", len(Categories()))
	}
}

func TestEntryValidate(t *testing.T) {
	e := &Entry{Name: "x", Category: CategoryMeme}
	if err := e.Validate(); err != nil {
		t.Fatalf("valid entry rejected: %v", err)
	}
	if err := (&Entry{Category: CategoryMeme}).Validate(); err == nil {
		t.Fatal("empty name should be rejected")
	}
	if err := (&Entry{Name: "x", Category: "nope"}).Validate(); err == nil {
		t.Fatal("invalid category should be rejected")
	}
}

func TestEntryTags(t *testing.T) {
	e := &Entry{Name: "x", Category: CategoryMeme, Tags: []string{"Racism", "funny"}}
	if !e.HasTag("racism") {
		t.Error("HasTag should be case-insensitive")
	}
	if e.HasTag("politics") {
		t.Error("HasTag false positive")
	}
	if !e.IsRacist() {
		t.Error("entry tagged racism should be racist group")
	}
	if e.IsPolitical() {
		t.Error("entry should not be political")
	}
	p := &Entry{Name: "y", Category: CategoryMeme, Tags: []string{"2016 US Presidential Election"}}
	if !p.IsPolitical() {
		t.Error("election tag should mark entry political")
	}
}

func TestNewSiteValidation(t *testing.T) {
	if _, err := NewSite([]*Entry{{Name: "", Category: CategoryMeme}}); err == nil {
		t.Fatal("invalid entry should be rejected")
	}
	dup := []*Entry{
		{Name: "a", Category: CategoryMeme},
		{Name: "a", Category: CategoryMeme},
	}
	if _, err := NewSite(dup); err == nil {
		t.Fatal("duplicate names should be rejected")
	}
}

func TestSiteAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	entries := testEntries(rng)
	site, err := NewSite(entries)
	if err != nil {
		t.Fatal(err)
	}
	if site.NumEntries() != 4 {
		t.Fatalf("NumEntries = %d", site.NumEntries())
	}
	if site.NumGalleryImages() != 45 {
		t.Fatalf("NumGalleryImages = %d", site.NumGalleryImages())
	}
	if site.Entry("pepe-the-frog") == nil || site.Entry("missing") != nil {
		t.Fatal("Entry lookup broken")
	}
	cats := site.CategoryCounts()
	if cats[CategoryMeme] != 2 || cats[CategoryPeople] != 1 || cats[CategoryCulture] != 1 {
		t.Fatalf("category counts wrong: %v", cats)
	}
	origins := site.OriginCounts()
	if origins["4chan"] != 2 || origins["unknown"] != 1 {
		t.Fatalf("origin counts wrong: %v", origins)
	}
	sizes := site.GallerySizes()
	if len(sizes) != 4 || sizes[0] != 20 {
		t.Fatalf("gallery sizes wrong: %v", sizes)
	}
	if len(site.Entries()) != 4 {
		t.Fatal("Entries accessor wrong")
	}
}

func TestAnnotateMatchesCorrectEntry(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	entries := testEntries(rng)
	site, err := NewSite(entries)
	if err != nil {
		t.Fatal(err)
	}
	// A medoid near the pepe gallery base should be annotated as pepe.
	medoid := perturb(rng, entries[0].Gallery[0], 2)
	ann := site.Annotate(medoid, DefaultThreshold)
	if !ann.Annotated() {
		t.Fatal("medoid near pepe gallery should be annotated")
	}
	if ann.Representative.Name != "pepe-the-frog" {
		t.Fatalf("representative = %q, want pepe-the-frog", ann.Representative.Name)
	}
	names := ann.EntryNames()
	found := false
	for _, n := range names {
		if n == "pepe-the-frog" {
			found = true
		}
	}
	if !found {
		t.Fatalf("entry names %v should include pepe-the-frog", names)
	}
}

func TestAnnotateNoMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	site, err := NewSite(testEntries(rng))
	if err != nil {
		t.Fatal(err)
	}
	// A random hash is ~32 bits from everything: no annotation.
	ann := site.Annotate(phash.Hash(rng.Uint64()), DefaultThreshold)
	if ann.Annotated() {
		t.Fatalf("random medoid should not be annotated, got %v", ann.EntryNames())
	}
	if ann.Representative != nil {
		t.Fatal("representative should be nil for unannotated cluster")
	}
}

func TestAnnotateNegativeThresholdUsesDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	entries := testEntries(rng)
	site, _ := NewSite(entries)
	medoid := entries[0].Gallery[0]
	a := site.Annotate(medoid, -1)
	b := site.Annotate(medoid, DefaultThreshold)
	if len(a.Matches) != len(b.Matches) {
		t.Fatal("negative threshold should behave like the default")
	}
}

func TestAnnotationRepresentativeSelection(t *testing.T) {
	// Entry A has 2 of 4 gallery images matching (fraction 0.5); entry B has
	// 2 of 2 matching (fraction 1.0). B must be chosen even though both have
	// the same raw match count.
	base := phash.Hash(0x0F0F0F0F0F0F0F0F)
	far := ^base
	a := &Entry{Name: "a", Category: CategoryMeme, Gallery: []phash.Hash{base, base ^ 1, far, far ^ 1}}
	b := &Entry{Name: "b", Category: CategoryMeme, Gallery: []phash.Hash{base ^ 2, base ^ 3}}
	site, err := NewSite([]*Entry{a, b})
	if err != nil {
		t.Fatal(err)
	}
	ann := site.Annotate(base, 8)
	if ann.Representative == nil || ann.Representative.Name != "b" {
		t.Fatalf("representative should be b (higher match fraction), got %+v", ann.Representative)
	}
	if len(ann.Matches) != 2 {
		t.Fatalf("expected both entries matched, got %d", len(ann.Matches))
	}
	if ann.Matches[0].Entry.Name != "b" {
		t.Fatal("matches should be ordered by match fraction")
	}
}

func TestAnnotationTieBreakByMeanDistance(t *testing.T) {
	base := phash.Hash(0x123456789ABCDEF0)
	// Both entries have 1/1 matching images, but a's image is closer.
	a := &Entry{Name: "closer", Category: CategoryMeme, Gallery: []phash.Hash{base ^ 1}}
	b := &Entry{Name: "farther", Category: CategoryMeme, Gallery: []phash.Hash{base ^ 0b111}}
	site, err := NewSite([]*Entry{b, a})
	if err != nil {
		t.Fatal(err)
	}
	ann := site.Annotate(base, 8)
	if ann.Representative.Name != "closer" {
		t.Fatalf("tie should break by mean distance, got %q", ann.Representative.Name)
	}
}

func TestAnnotationNamesByCategory(t *testing.T) {
	base := phash.Hash(0xAAAAAAAA55555555)
	entries := []*Entry{
		{Name: "meme-x", Category: CategoryMeme, Gallery: []phash.Hash{base}},
		{Name: "person-y", Category: CategoryPeople, Gallery: []phash.Hash{base ^ 1}},
	}
	site, err := NewSite(entries)
	if err != nil {
		t.Fatal(err)
	}
	ann := site.Annotate(base, 8)
	if got := ann.NamesByCategory(CategoryMeme); len(got) != 1 || got[0] != "meme-x" {
		t.Fatalf("meme names = %v", got)
	}
	if got := ann.NamesByCategory(CategoryPeople); len(got) != 1 || got[0] != "person-y" {
		t.Fatalf("people names = %v", got)
	}
	if got := ann.NamesByCategory(CategorySite); len(got) != 0 {
		t.Fatalf("site names should be empty, got %v", got)
	}
}

func TestRunPanelDefaults(t *testing.T) {
	res, err := RunPanel(DefaultPanelConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The defaults are calibrated to land near the paper's numbers
	// (kappa = 0.67, accuracy = 89%, bad entries = 1.85%).
	if res.Kappa < 0.45 || res.Kappa > 0.9 {
		t.Errorf("kappa %v far from the paper's 0.67", res.Kappa)
	}
	if res.MajorityAccuracy < 0.8 {
		t.Errorf("majority accuracy %v far from the paper's 0.89", res.MajorityAccuracy)
	}
	if res.BadEntryFraction < 0 || res.BadEntryFraction > 0.1 {
		t.Errorf("bad entry fraction %v implausible", res.BadEntryFraction)
	}
	if res.SubjectsAssessed != 200 || res.EntriesAssessed != 162 {
		t.Errorf("unexpected evaluation sizes: %+v", res)
	}
}

func TestRunPanelValidation(t *testing.T) {
	bad := []PanelConfig{
		{Annotators: 1, Subjects: 10, Accuracy: 0.9},
		{Annotators: 3, Subjects: 0, Accuracy: 0.9},
		{Annotators: 3, Subjects: 10, Accuracy: 1.5},
		{Annotators: 3, Subjects: 10, Accuracy: 0.9, ValidRate: 1.2},
		{Annotators: 3, Subjects: 10, Accuracy: 0.9, BadEntryRate: -0.1},
		{Annotators: 3, Subjects: 10, Accuracy: 0.9, Entries: -1},
	}
	for _, cfg := range bad {
		if _, err := RunPanel(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}

func TestRunPanelDeterministic(t *testing.T) {
	cfg := DefaultPanelConfig()
	a, err := RunPanel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPanel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("panel results should be deterministic: %+v vs %+v", a, b)
	}
}

func TestRunPanelPerfectAnnotators(t *testing.T) {
	cfg := DefaultPanelConfig()
	cfg.Accuracy = 1
	cfg.ValidRate = 1
	res, err := RunPanel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MajorityAccuracy != 1 {
		t.Fatalf("perfect annotations should give majority accuracy 1, got %v", res.MajorityAccuracy)
	}
	if res.Kappa != 1 {
		t.Fatalf("unanimous panel should give kappa 1, got %v", res.Kappa)
	}
}

func TestRunPanelMajorityTracksValidRate(t *testing.T) {
	cfg := DefaultPanelConfig()
	cfg.Accuracy = 1
	cfg.ValidRate = 0.5
	cfg.Subjects = 2000
	res, err := RunPanel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MajorityAccuracy < 0.4 || res.MajorityAccuracy > 0.6 {
		t.Fatalf("with perfect annotators majority accuracy should track the valid rate, got %v", res.MajorityAccuracy)
	}
}
