// Package chaos is the crash-recovery proving ground for the streaming
// ingest path: a re-exec subprocess harness that arms one fault point per
// scenario (internal/faults), drives a deterministic ingest workload until
// the injected crash kills the child process mid-operation, then restarts
// in-process the way memeserve boots — newest compacted base, journal
// replay, torn-tail repair — and asserts the recovered engine is
// bitwise-identical to a from-scratch build over the base corpus plus every
// journaled post.
//
// The suite compiles only with -tags faults (the injection registry is a
// no-op otherwise, so there would be nothing to test); this file exists so
// untagged builds still see a valid package. Run it with:
//
//	go test -tags faults ./internal/chaos/
//
// Crash sites covered: journal append write/sync (clean and torn),
// compaction snapshot write and rename, compaction cleanup, re-cluster
// publish, and the hot-engine swap itself.
package chaos
