//go:build faults

package chaos

import (
	"bytes"
	"context"
	"errors"
	"os"
	"os/exec"
	"strings"
	"testing"

	"github.com/memes-pipeline/memes"
	"github.com/memes-pipeline/memes/internal/faults"
)

// The workload shape every scenario shares: the live tail is ingested in
// fixed batches with a re-cluster after each, so the Nth hit of any fault
// point lands at a deterministic place in the timeline and the journal can
// only ever cover a batch boundary.
const (
	chaosBatch   = 20
	chaosBatches = 3
)

// fixture regenerates the seeded corpus and carves its tail into live
// ingest traffic. Parent and child both call it: generation is
// deterministic, so the re-exec'd child reconstructs the exact corpus the
// parent later verifies recovery against.
func fixture(t *testing.T) (full, base *memes.Dataset, live []memes.Post, site *memes.AnnotationSite) {
	t.Helper()
	ds, err := memes.GenerateDataset(memes.SmallDatasetConfig())
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	site, err = ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	cut := len(ds.Posts) - chaosBatch*chaosBatches
	if cut <= 0 {
		t.Fatalf("corpus too small: %d posts", len(ds.Posts))
	}
	b := *ds
	b.Posts = ds.Posts[:cut:cut]
	return ds, &b, ds.Posts[cut:], site
}

// saveBytes serialises an engine for bitwise comparison.
func saveBytes(t *testing.T, eng *memes.Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

// TestChaosChildWorkload is the re-exec child: it only runs when the parent
// scenario launches it with CHAOS_CHILD=1, builds the base engine, and
// ingests the live tail batch by batch until the fault armed via
// MEMES_FAULTS kills the process. Completing the loop means the armed crash
// point never fired; the clean exit tells the parent exactly that.
func TestChaosChildWorkload(t *testing.T) {
	if os.Getenv("CHAOS_CHILD") == "" {
		t.Skip("chaos child: only runs re-exec'd by the crash scenarios")
	}
	dir := os.Getenv("CHAOS_DIR")
	if dir == "" {
		t.Fatal("chaos child: CHAOS_DIR not set")
	}
	cfg := memes.IngestConfig{Threshold: 1 << 20, DeltaDir: dir}
	if os.Getenv("CHAOS_COMPACT") == "1" {
		cfg.CompactAfter = 1
	}
	_, base, live, site := fixture(t)
	ctx := context.Background()
	eng, err := memes.NewEngine(ctx, base, site)
	if err != nil {
		t.Fatalf("child NewEngine: %v", err)
	}
	hot := memes.NewHotEngine(eng)
	g, err := memes.NewIngestor(hot, base, site, cfg)
	if err != nil {
		t.Fatalf("child NewIngestor: %v", err)
	}
	defer g.Close()
	for i := 0; i < chaosBatches; i++ {
		batch := live[i*chaosBatch : (i+1)*chaosBatch]
		if _, err := g.Ingest(ctx, batch); err != nil {
			t.Fatalf("child Ingest %d: %v", i, err)
		}
		if err := g.Recluster(ctx); err != nil {
			t.Fatalf("child Recluster %d: %v", i, err)
		}
	}
}

// runChild re-execs the test binary as a crash-scenario child with the given
// fault spec armed and asserts it died with the injected exit code. Returns
// the child's combined output for marker assertions.
func runChild(t *testing.T, dir, spec string, compact bool) string {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestChaosChildWorkload$", "-test.v")
	env := append(os.Environ(),
		"CHAOS_CHILD=1",
		"CHAOS_DIR="+dir,
		"MEMES_FAULTS="+spec,
	)
	if compact {
		env = append(env, "CHAOS_COMPACT=1")
	}
	cmd.Env = env
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("child survived spec %q — the crash point never fired:\n%s", spec, out)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("re-exec child: %v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != faults.ExitCode {
		t.Fatalf("child exit code = %d, want %d (injected crash):\n%s", code, faults.ExitCode, out)
	}
	return string(out)
}

// verifyRecovery restarts from the crashed child's delta dir exactly the way
// memeserve boots — newest compacted base if one landed, otherwise a fresh
// base build, then journal replay — and asserts the recovered engine is
// bitwise-identical to a from-scratch build over the base corpus plus the
// journaled prefix of the live tail. Journal contents, not child acks, are
// the truth recovery is measured against.
func verifyRecovery(t *testing.T, dir string, wantSeq uint64, wantBase, wantTorn bool) {
	t.Helper()
	full, base, _, site := fixture(t)
	ctx := context.Background()

	basePath, baseSeq, haveBase, err := memes.LatestDeltaBase(dir)
	if err != nil {
		t.Fatalf("LatestDeltaBase: %v", err)
	}
	if haveBase != wantBase {
		t.Fatalf("compacted base present = %v, want %v", haveBase, wantBase)
	}
	var eng *memes.Engine
	if haveBase {
		eng, err = memes.LoadEngineFile(basePath, site)
	} else {
		eng, err = memes.NewEngine(ctx, base, site)
	}
	if err != nil {
		t.Fatalf("booting recovery engine: %v", err)
	}
	hot := memes.NewHotEngine(eng)
	g, err := memes.NewIngestor(hot, base, site, memes.IngestConfig{Threshold: 1 << 20, DeltaDir: dir})
	if err != nil {
		t.Fatalf("NewIngestor: %v", err)
	}
	defer g.Close()
	if _, err := g.Replay(ctx, baseSeq); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	st := g.Stats()
	if st.Seq != wantSeq {
		t.Fatalf("recovered seq = %d, want %d (the journal's durable coverage)", st.Seq, wantSeq)
	}
	if wantTorn && st.TornTails == 0 {
		t.Error("the crash tore a frame but replay repaired no torn tail")
	}
	if !wantTorn && st.TornTails != 0 {
		t.Errorf("replay repaired %d torn tails; the crash left none", st.TornTails)
	}

	union := *full
	n := len(base.Posts) + int(st.Seq)
	union.Posts = full.Posts[:n:n]
	ref, err := memes.NewEngine(ctx, &union, site)
	if err != nil {
		t.Fatalf("reference union build: %v", err)
	}
	if !bytes.Equal(saveBytes(t, hot.Engine()), saveBytes(t, ref)) {
		t.Error("recovered engine diverges bitwise from a from-scratch build over base + journaled posts")
	}

	// The repaired journal must also support further appends: one more batch
	// through the recovered ingestor keeps the determinism contract.
	extra := full.Posts[n:]
	if len(extra) > chaosBatch {
		extra = extra[:chaosBatch]
	}
	if len(extra) > 0 {
		if _, err := g.Ingest(ctx, extra); err != nil {
			t.Fatalf("post-recovery Ingest: %v", err)
		}
		if err := g.Recluster(ctx); err != nil {
			t.Fatalf("post-recovery Recluster: %v", err)
		}
		m := n + len(extra)
		union.Posts = full.Posts[:m:m]
		ref2, err := memes.NewEngine(ctx, &union, site)
		if err != nil {
			t.Fatalf("post-recovery reference build: %v", err)
		}
		if !bytes.Equal(saveBytes(t, hot.Engine()), saveBytes(t, ref2)) {
			t.Error("post-recovery ingest diverges: the repaired journal poisoned later appends")
		}
	}
}

// TestChaosCrashRecovery is the tentpole acceptance suite: every armed
// crash point kills the child process mid-operation, and a restart replays
// the journal to bitwise-identical engine state. The after= offsets are
// deterministic because the workload is: appends happen once per batch, and
// compaction/publish/swap fire inside the first re-cluster.
func TestChaosCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec crash scenarios are not -short friendly")
	}
	scenarios := []struct {
		name string
		spec string
		// compact runs the child with CompactAfter=1 so the compaction
		// crash sites are reached inside the first re-cluster.
		compact  bool
		wantSeq  uint64 // journal coverage a restart must recover
		wantBase bool   // a compacted base snapshot survived the crash
		wantTorn bool   // replay must repair a torn tail
	}{
		// Dies entering the second batch's append: nothing of batch 2
		// reached the journal.
		{name: "journal-append-write", spec: "journal.append.write=exit,after=2", wantSeq: 20},
		// Dies after the second frame was written and fsynced but before
		// the caller was acked: the frame is durable and replay must
		// surface it — journal contents, not acks, are truth.
		{name: "journal-append-sync", spec: "journal.append.sync=exit,after=2", wantSeq: 40},
		// Dies halfway through writing the second frame: replay must
		// salvage frame 1, truncate the torn tail, and keep appending.
		{name: "journal-torn-tail", spec: "journal.append.write=torn,then=exit,after=2", wantSeq: 20, wantTorn: true},
		// Compaction dies before/while writing the base snapshot: no base
		// lands, the sealed journal alone recovers the state.
		{name: "snapshot-write", spec: "snapshot.write=exit", compact: true, wantSeq: 20},
		// Compaction dies after the base temp file synced but before the
		// rename: the synced temp is invisible, recovery sees no base.
		{name: "snapshot-rename", spec: "snapshot.rename=exit", compact: true, wantSeq: 20},
		// Compaction dies after base + merged head landed but before the
		// old segments were removed: replay tolerates the overlap.
		{name: "compact-cleanup", spec: "compact.cleanup=exit", compact: true, wantSeq: 20, wantBase: true},
		// Dies after the rebuild, before publishing it: the sealed journal
		// already covers the batch.
		{name: "recluster-publish", spec: "recluster.publish=exit", wantSeq: 20},
		// Dies inside HotEngine.Swap itself: the new generation was built
		// but never became visible.
		{name: "engine-swap", spec: "engine.swap=exit", wantSeq: 20},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			out := runChild(t, dir, sc.spec, sc.compact)
			point, _, _ := strings.Cut(sc.spec, "=")
			if !strings.Contains(out, "faults: injected exit at "+point) {
				t.Fatalf("child output carries no injection marker for %s:\n%s", point, out)
			}
			verifyRecovery(t, dir, sc.wantSeq, sc.wantBase, sc.wantTorn)
		})
	}
}
