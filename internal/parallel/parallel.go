// Package parallel provides the small, deterministic concurrency primitives
// shared by the pipeline stages: worker-count resolution, a parallel
// for-loop, an ordered parallel map, and an ordered chunked map.
//
// Every primitive writes each result to a slot determined solely by the
// input index, so output order never depends on goroutine scheduling: a run
// with one worker and a run with N workers produce identical results. That
// property is what lets the pipeline engine fan Steps 2-6 out across cores
// while keeping Result bitwise-reproducible.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: n when positive, otherwise
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) across at most workers goroutines
// (Workers-resolved). Indexes are handed out dynamically, so uneven work
// per index balances across workers. fn must be safe to call concurrently.
func For(n, workers int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if n == 0 {
		return
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map applies fn to every index in [0, n) concurrently and returns the
// results in index order.
func Map[R any](n, workers int, fn func(i int) R) []R {
	out := make([]R, n)
	For(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map for fallible functions. All indexes are processed even when
// some fail; the error returned is the one with the lowest index, so the
// reported failure does not depend on scheduling.
func MapErr[R any](n, workers int, fn func(i int) (R, error)) ([]R, error) {
	out := make([]R, n)
	errs := make([]error, n)
	For(n, workers, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ChunkSize returns the contiguous chunk length used to split n items across
// workers with a few chunks per worker for load balancing. The result is
// always at least 1.
func ChunkSize(n, workers int) int {
	workers = Workers(workers)
	chunk := (n + workers*4 - 1) / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// MapChunks splits [0, n) into contiguous chunks, applies fn to each chunk
// concurrently, and concatenates the per-chunk results in chunk order.
// Because chunks are contiguous and concatenation follows chunk order, a
// fn that emits results in ascending index order yields a fully ordered
// concatenation with no sort.
func MapChunks[R any](n, workers int, fn func(lo, hi int) []R) []R {
	if n == 0 {
		return nil
	}
	chunk := ChunkSize(n, workers)
	numChunks := (n + chunk - 1) / chunk
	parts := Map(numChunks, workers, func(c int) []R {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		return fn(lo, hi)
	})
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]R, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
