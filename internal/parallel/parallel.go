// Package parallel provides the small, deterministic concurrency primitives
// shared by the pipeline stages: worker-count resolution, a parallel
// for-loop, an ordered parallel map, and an ordered chunked map.
//
// Every primitive writes each result to a slot determined solely by the
// input index, so output order never depends on goroutine scheduling: a run
// with one worker and a run with N workers produce identical results. That
// property is what lets the pipeline engine fan Steps 2-6 out across cores
// while keeping Result bitwise-reproducible.
//
// Each primitive has a context-aware variant (ForCtx, MapCtx, MapErrCtx,
// MapChunksCtx) that stops scheduling new work as soon as the context is
// cancelled, waits for in-flight calls to return (so no goroutine outlives
// the call), and reports the context error. The context-free forms are thin
// wrappers over the ctx variants with context.Background().
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: n when positive, otherwise
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) across at most workers goroutines
// (Workers-resolved). Indexes are handed out dynamically, so uneven work
// per index balances across workers. fn must be safe to call concurrently.
func For(n, workers int, fn func(i int)) {
	_ = ForCtx(context.Background(), n, workers, fn)
}

// ForCtx is For with cancellation: every worker checks ctx before picking up
// the next index, so a cancelled context stops new work from being scheduled
// while in-flight fn calls run to completion. ForCtx returns only after
// every started fn has returned (no goroutine leaks) and reports ctx.Err()
// when the context was cancelled, nil otherwise.
func ForCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if n == 0 {
		return ctx.Err()
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// Map applies fn to every index in [0, n) concurrently and returns the
// results in index order.
func Map[R any](n, workers int, fn func(i int) R) []R {
	out, _ := MapCtx(context.Background(), n, workers, fn)
	return out
}

// MapCtx is Map with cancellation; on a cancelled context it returns
// (nil, ctx.Err()) because the result slice would be only partially filled.
func MapCtx[R any](ctx context.Context, n, workers int, fn func(i int) R) ([]R, error) {
	out := make([]R, n)
	if err := ForCtx(ctx, n, workers, func(i int) { out[i] = fn(i) }); err != nil {
		return nil, err
	}
	return out, nil
}

// MapErr is Map for fallible functions. All indexes are processed even when
// some fail; the error returned is the one with the lowest index, so the
// reported failure does not depend on scheduling.
func MapErr[R any](n, workers int, fn func(i int) (R, error)) ([]R, error) {
	return MapErrCtx(context.Background(), n, workers, fn)
}

// MapErrCtx is MapErr with cancellation. A context error takes precedence
// over fn errors, since indexes past the cancellation point were never run.
func MapErrCtx[R any](ctx context.Context, n, workers int, fn func(i int) (R, error)) ([]R, error) {
	out := make([]R, n)
	errs := make([]error, n)
	if err := ForCtx(ctx, n, workers, func(i int) { out[i], errs[i] = fn(i) }); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ChunkSize returns the contiguous chunk length used to split n items across
// workers with a few chunks per worker for load balancing. The result is
// always at least 1.
func ChunkSize(n, workers int) int {
	workers = Workers(workers)
	chunk := (n + workers*4 - 1) / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// MapChunks splits [0, n) into contiguous chunks, applies fn to each chunk
// concurrently, and concatenates the per-chunk results in chunk order.
// Because chunks are contiguous and concatenation follows chunk order, a
// fn that emits results in ascending index order yields a fully ordered
// concatenation with no sort.
func MapChunks[R any](n, workers int, fn func(lo, hi int) []R) []R {
	out, _ := MapChunksCtx(context.Background(), n, workers, fn)
	return out
}

// MapChunksCtx is MapChunks with cancellation: chunks stop being scheduled
// as soon as ctx is cancelled and (nil, ctx.Err()) is returned. Cancellation
// granularity is one chunk — an in-flight fn call runs to completion.
func MapChunksCtx[R any](ctx context.Context, n, workers int, fn func(lo, hi int) []R) ([]R, error) {
	if n == 0 {
		return nil, ctx.Err()
	}
	chunk := ChunkSize(n, workers)
	numChunks := (n + chunk - 1) / chunk
	parts, err := MapCtx(ctx, numChunks, workers, func(c int) []R {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		return fn(lo, hi)
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]R, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}
