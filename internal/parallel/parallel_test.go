package parallel

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Fatalf("Workers(0) = %d, want %d", got, want)
	}
	if got := Workers(-5); got != want {
		t.Fatalf("Workers(-5) = %d, want %d", got, want)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		const n = 1000
		counts := make([]int32, n)
		For(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
	// n = 0 must not call fn.
	For(0, 4, func(i int) { t.Fatal("fn called for empty range") })
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 4} {
		got := Map(50, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: Map[%d] = %d", workers, i, v)
			}
		}
	}
	if got := Map(0, 4, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("Map over empty range returned %v", got)
	}
}

func TestMapErr(t *testing.T) {
	got, err := MapErr(10, 4, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("MapErr[%d] = %d", i, v)
		}
	}
	// The lowest-index error wins regardless of scheduling.
	for _, workers := range []int{1, 8} {
		_, err := MapErr(20, workers, func(i int) (int, error) {
			if i == 3 || i == 17 {
				return 0, fmt.Errorf("fail %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "fail 3" {
			t.Fatalf("workers=%d: got err %v, want fail 3", workers, err)
		}
	}
	if _, err := MapErr(1, 1, func(i int) (int, error) { return 0, errors.New("boom") }); err == nil {
		t.Fatal("error not propagated")
	}
}

func TestChunkSize(t *testing.T) {
	if got := ChunkSize(0, 4); got != 1 {
		t.Fatalf("ChunkSize(0, 4) = %d", got)
	}
	if got := ChunkSize(100, 4); got != 7 {
		t.Fatalf("ChunkSize(100, 4) = %d", got)
	}
	// Chunks must cover the range: chunk*ceil(n/chunk) >= n.
	for _, n := range []int{1, 5, 99, 1024} {
		for _, w := range []int{1, 3, 16} {
			c := ChunkSize(n, w)
			if c < 1 || (n+c-1)/c*c < n {
				t.Fatalf("ChunkSize(%d, %d) = %d does not cover range", n, w, c)
			}
		}
	}
}

func TestMapChunksOrdered(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		const n = 137
		got := MapChunks(n, workers, func(lo, hi int) []int {
			var out []int
			for i := lo; i < hi; i++ {
				if i%3 == 0 { // filtering inside a chunk keeps global order
					out = append(out, i)
				}
			}
			return out
		})
		var want []int
		for i := 0; i < n; i++ {
			if i%3 == 0 {
				want = append(want, i)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: MapChunks = %v, want %v", workers, got, want)
		}
	}
	if got := MapChunks(0, 4, func(lo, hi int) []int { return []int{1} }); got != nil {
		t.Fatalf("MapChunks over empty range returned %v", got)
	}
}

func TestCtxVariantsMatchPlainOnLiveContext(t *testing.T) {
	ctx := context.Background()
	got, err := MapCtx(ctx, 50, 4, func(i int) int { return i * 3 })
	if err != nil {
		t.Fatal(err)
	}
	if want := Map(50, 4, func(i int) int { return i * 3 }); !reflect.DeepEqual(got, want) {
		t.Fatal("MapCtx diverges from Map on a live context")
	}
	chunked, err := MapChunksCtx(ctx, 137, 3, func(lo, hi int) []int {
		var out []int
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	})
	if err != nil || len(chunked) != 137 {
		t.Fatalf("MapChunksCtx = (%d items, %v)", len(chunked), err)
	}
	if err := ForCtx(ctx, 0, 4, func(i int) { t.Fatal("fn called for empty range") }); err != nil {
		t.Fatalf("ForCtx over empty range: %v", err)
	}
}

func TestCtxVariantsStopOnCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var calls atomic.Int64
		if err := ForCtx(ctx, 1000, workers, func(i int) { calls.Add(1) }); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: ForCtx err = %v, want Canceled", workers, err)
		}
		if calls.Load() != 0 {
			t.Fatalf("workers=%d: %d calls ran on a pre-cancelled context", workers, calls.Load())
		}
		if out, err := MapCtx(ctx, 1000, workers, func(i int) int { return i }); out != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: MapCtx = (%v, %v)", workers, out, err)
		}
		if out, err := MapErrCtx(ctx, 1000, workers, func(i int) (int, error) { return i, nil }); out != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: MapErrCtx = (%v, %v)", workers, out, err)
		}
		if out, err := MapChunksCtx(ctx, 1000, workers, func(lo, hi int) []int { return []int{lo} }); out != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: MapChunksCtx = (%v, %v)", workers, out, err)
		}
	}
}

// TestForCtxCancelMidRun cancels from inside fn and asserts scheduling stops
// promptly: far fewer than n indexes run, and no goroutine is left behind.
func TestForCtxCancelMidRun(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 100000
	var calls atomic.Int64
	err := ForCtx(ctx, n, 4, func(i int) {
		if calls.Add(1) == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForCtx err = %v, want Canceled", err)
	}
	// Each worker may have had one call in flight when cancel landed.
	if c := calls.Load(); c > 100 {
		t.Fatalf("%d calls ran after cancellation (expected prompt stop)", c)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []int {
		return MapChunks(500, workers, func(lo, hi int) []int {
			var out []int
			for i := lo; i < hi; i++ {
				out = append(out, i*7%13)
			}
			return out
		})
	}
	base := run(1)
	for _, w := range []int{2, 4, 16} {
		if got := run(w); !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d diverges from workers=1", w)
		}
	}
}
