// Package metrics is a minimal, dependency-free Prometheus exposition
// library: an encoder for the text format (version 0.0.4, the format every
// Prometheus server scrapes) and a lock-free fixed-bucket histogram for
// latency observations. It exists because the repository's contract is
// zero third-party dependencies — the serving layer needs counters, gauges,
// and histograms on /v1/metrics, not a client-library feature matrix.
//
// The encoder is push-style: the caller walks its own counters (the server
// keeps them as atomics already) and emits families in a fixed order, so a
// scrape allocates one buffer and never takes a lock. Histogram is the only
// stateful type here; everything else renders values the caller owns.
package metrics

import (
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// Encoder writes Prometheus text-format families to an io.Writer. Errors
// are sticky: the first write error is kept and every later call is a
// no-op, so call sites chain emissions and check Err once at the end.
type Encoder struct {
	w   io.Writer
	buf []byte
	err error
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w, buf: make([]byte, 0, 256)}
}

// Err returns the first write error, if any.
func (e *Encoder) Err() error { return e.err }

// Counter begins a counter family: # HELP and # TYPE lines. Samples follow
// via Sample.
func (e *Encoder) Counter(name, help string) { e.header(name, help, "counter") }

// Gauge begins a gauge family.
func (e *Encoder) Gauge(name, help string) { e.header(name, help, "gauge") }

// HistogramType begins a histogram family; emit the samples with
// Histogram.Write.
func (e *Encoder) HistogramType(name, help string) { e.header(name, help, "histogram") }

func (e *Encoder) header(name, help, typ string) {
	b := e.buf[:0]
	b = append(b, "# HELP "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = appendEscapedHelp(b, help)
	b = append(b, "\n# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	b = append(b, '\n')
	e.write(b)
}

// Sample emits one sample line: name{labels} value. A nil or empty label
// set renders the bare name.
func (e *Encoder) Sample(name string, labels []Label, v float64) {
	b := e.buf[:0]
	b = append(b, name...)
	b = appendLabels(b, labels)
	b = append(b, ' ')
	b = appendValue(b, v)
	b = append(b, '\n')
	e.write(b)
}

func (e *Encoder) write(b []byte) {
	e.buf = b[:0]
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

func appendLabels(b []byte, labels []Label) []byte {
	if len(labels) == 0 {
		return b
	}
	b = append(b, '{')
	for i, l := range labels {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, l.Name...)
		b = append(b, '=', '"')
		b = appendEscapedValue(b, l.Value)
		b = append(b, '"')
	}
	return append(b, '}')
}

// appendEscapedHelp escapes a HELP text: backslash and newline.
func appendEscapedHelp(b []byte, s string) []byte {
	if !strings.ContainsAny(s, "\\\n") {
		return append(b, s...)
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, s[i])
		}
	}
	return b
}

// appendEscapedValue escapes a label value: backslash, double-quote, and
// newline, per the exposition format.
func appendEscapedValue(b []byte, s string) []byte {
	if !strings.ContainsAny(s, "\\\"\n") {
		return append(b, s...)
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, s[i])
		}
	}
	return b
}

// appendValue renders a sample value the way Prometheus expects: shortest
// round-trip decimal, with the special values spelled +Inf/-Inf/NaN.
func appendValue(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case math.IsNaN(v):
		return append(b, "NaN"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// DefBuckets is the default latency bucket ladder (seconds), matching the
// conventional Prometheus client defaults extended down to 500µs — the
// serve path answers most queries in well under a millisecond.
func DefBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe and
// Write. Observations are lock-free: one atomic add on the owning bucket,
// one on the count, and a CAS loop folding the value into the sum, so the
// request path pays nanoseconds per observation and a scrape never blocks
// a writer. Buckets are cumulative only at render time.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf excluded
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending upper bounds;
// an implicit +Inf bucket is always appended. With no bounds, DefBuckets
// is used.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets()
	}
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Find the first bound >= v; the tail slot is the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Write emits the histogram's sample lines (name_bucket per bound plus
// +Inf, name_sum, name_count) with the given base labels; the encoder's
// family header must already be written. The le label is appended after
// the base labels, per convention.
func (h *Histogram) Write(e *Encoder, name string, labels []Label) {
	cum := uint64(0)
	lbls := make([]Label, len(labels)+1)
	copy(lbls, labels)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		lbls[len(labels)] = Label{Name: "le", Value: formatBound(bound)}
		e.Sample(name+"_bucket", lbls, float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	lbls[len(labels)] = Label{Name: "le", Value: "+Inf"}
	e.Sample(name+"_bucket", lbls, float64(cum))
	e.Sample(name+"_sum", labels, math.Float64frombits(h.sum.Load()))
	e.Sample(name+"_count", labels, float64(cum))
}

func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
