package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestEncoderFamilies pins the exposition format line by line: HELP/TYPE
// headers, bare and labelled samples, and shortest-round-trip values.
func TestEncoderFamilies(t *testing.T) {
	var sb strings.Builder
	e := NewEncoder(&sb)
	e.Counter("requests_total", "Requests received.")
	e.Sample("requests_total", []Label{{Name: "endpoint", Value: "match"}}, 42)
	e.Sample("requests_total", []Label{{Name: "endpoint", Value: "associate"}, {Name: "code", Value: "200"}}, 7)
	e.Gauge("inflight", "Requests in flight.")
	e.Sample("inflight", nil, 3)
	e.Gauge("ratio", "A fractional value.")
	e.Sample("ratio", nil, 0.25)
	if err := e.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	want := strings.Join([]string{
		"# HELP requests_total Requests received.",
		"# TYPE requests_total counter",
		`requests_total{endpoint="match"} 42`,
		`requests_total{endpoint="associate",code="200"} 7`,
		"# HELP inflight Requests in flight.",
		"# TYPE inflight gauge",
		"inflight 3",
		"# HELP ratio A fractional value.",
		"# TYPE ratio gauge",
		"ratio 0.25",
		"",
	}, "\n")
	if sb.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestEncoderEscaping covers the format's escape rules: backslash and
// newline in HELP text; backslash, double quote, and newline in label
// values.
func TestEncoderEscaping(t *testing.T) {
	var sb strings.Builder
	e := NewEncoder(&sb)
	e.Counter("x", "line one\nback\\slash")
	e.Sample("x", []Label{{Name: "path", Value: `C:\dir "quoted"` + "\nnext"}}, 1)
	if err := e.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	want := "# HELP x line one\\nback\\\\slash\n" +
		"# TYPE x counter\n" +
		`x{path="C:\\dir \"quoted\"\nnext"} 1` + "\n"
	if sb.String() != want {
		t.Errorf("escaping mismatch:\ngot:\n%q\nwant:\n%q", sb.String(), want)
	}
}

// TestEncoderSpecialValues pins the spelled forms of the IEEE specials.
func TestEncoderSpecialValues(t *testing.T) {
	var sb strings.Builder
	e := NewEncoder(&sb)
	e.Sample("a", nil, math.Inf(1))
	e.Sample("b", nil, math.Inf(-1))
	e.Sample("c", nil, math.NaN())
	if err := e.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if got, want := sb.String(), "a +Inf\nb -Inf\nc NaN\n"; got != want {
		t.Errorf("special values: got %q, want %q", got, want)
	}
}

// errWriter fails every write.
type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "write failed" }

// TestEncoderStickyError verifies the first write error is kept and later
// emissions are no-ops.
func TestEncoderStickyError(t *testing.T) {
	e := NewEncoder(errWriter{})
	e.Sample("x", nil, 1)
	if e.Err() == nil {
		t.Fatal("expected an error after a failed write")
	}
	first := e.Err()
	e.Counter("y", "more")
	e.Sample("y", nil, 2)
	if e.Err() != first {
		t.Error("sticky error was replaced")
	}
}

// TestHistogramBuckets verifies bucket assignment (le is an inclusive upper
// bound), cumulative rendering, and the sum/count samples.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.1, 0.5, 1)
	for _, v := range []float64{0.05, 0.1, 0.3, 0.9, 2} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	var sb strings.Builder
	e := NewEncoder(&sb)
	h.Write(e, "lat", []Label{{Name: "endpoint", Value: "match"}})
	if err := e.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	want := strings.Join([]string{
		`lat_bucket{endpoint="match",le="0.1"} 2`, // 0.05 and the boundary value 0.1
		`lat_bucket{endpoint="match",le="0.5"} 3`,
		`lat_bucket{endpoint="match",le="1"} 4`,
		`lat_bucket{endpoint="match",le="+Inf"} 5`,
		`lat_sum{endpoint="match"} 3.35`,
		`lat_count{endpoint="match"} 5`,
		"",
	}, "\n")
	if sb.String() != want {
		t.Errorf("histogram rendering:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestHistogramDefaultBuckets verifies the zero-argument constructor uses
// the default ladder.
func TestHistogramDefaultBuckets(t *testing.T) {
	h := NewHistogram()
	if got, want := len(h.bounds), len(DefBuckets()); got != want {
		t.Fatalf("default bounds: got %d, want %d", got, want)
	}
	h.Observe(0.0001)
	var sb strings.Builder
	e := NewEncoder(&sb)
	h.Write(e, "lat", nil)
	if !strings.Contains(sb.String(), `lat_bucket{le="0.0005"} 1`) {
		t.Errorf("smallest default bucket did not capture the observation:\n%s", sb.String())
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines and checks
// no observation is lost: count, +Inf cumulative total, and the exact sum
// (every value is 1.0, so float accumulation is exact).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(0.5)
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*each {
		t.Errorf("Count = %d, want %d", h.Count(), workers*each)
	}
	var sb strings.Builder
	e := NewEncoder(&sb)
	h.Write(e, "x", nil)
	if !strings.Contains(sb.String(), "x_sum 8000") {
		t.Errorf("sum lost observations:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), `x_bucket{le="+Inf"} 8000`) {
		t.Errorf("+Inf cumulative total wrong:\n%s", sb.String())
	}
}
