// Package screenshot implements Step 4 of the pipeline: filtering
// social-network screenshots out of annotation-site image galleries.
//
// The paper trains a Keras CNN (Appendix C) on 28.8K labelled screenshots;
// stdlib-only Go cannot reasonably reproduce a convolutional network, so the
// classifier here is a small feed-forward neural network (one hidden layer
// with dropout, trained with SGD) over deterministic image-statistic
// features that capture the structural signature of screenshots: dominant
// flat background, uniform margins, horizontal text-line banding, and low
// colour diversity. The evaluation machinery (ROC curve, AUC, accuracy,
// precision, recall, F1) mirrors the paper's Figure 19 and the quoted
// metrics.
package screenshot

import (
	"image"
	"math"
)

// NumFeatures is the dimensionality of the feature vector extracted from an
// image.
const NumFeatures = 10

// Features computes the feature vector of an image. All features are scaled
// to roughly [0, 1] so the network trains without per-feature normalisation.
func Features(img image.Image) []float64 {
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	if w == 0 || h == 0 {
		return make([]float64, NumFeatures)
	}
	gray := make([]float64, w*h)
	colorKey := make([]uint32, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, bl, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			r8, g8, b8 := float64(r>>8), float64(g>>8), float64(bl>>8)
			gray[y*w+x] = 0.299*r8 + 0.587*g8 + 0.114*b8
			// Quantised colour (4 bits per channel) for diversity estimation.
			colorKey[y*w+x] = (r >> 12 << 8) | (g >> 12 << 4) | (bl >> 12)
		}
	}

	f := make([]float64, NumFeatures)
	f[0] = backgroundDominance(colorKey)
	f[1] = colorDiversity(colorKey)
	f[2] = meanLuminance(gray)
	f[3] = luminanceVariance(gray)
	f[4] = horizontalEdgeDensity(gray, w, h)
	f[5] = verticalEdgeDensity(gray, w, h)
	f[6] = marginUniformity(gray, w, h)
	f[7] = rowBanding(gray, w, h)
	f[8] = extremePixelFraction(gray)
	f[9] = aspectRatioFeature(w, h)
	return f
}

// backgroundDominance is the fraction of pixels sharing the single most
// common quantised colour. Screenshots have large flat backgrounds.
func backgroundDominance(keys []uint32) float64 {
	counts := make(map[uint32]int)
	for _, k := range keys {
		counts[k]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return float64(max) / float64(len(keys))
}

// colorDiversity is the number of distinct quantised colours relative to a
// saturation constant; memes and photos use many more colours than UI
// screenshots.
func colorDiversity(keys []uint32) float64 {
	distinct := make(map[uint32]struct{})
	for _, k := range keys {
		distinct[k] = struct{}{}
	}
	v := float64(len(distinct)) / 512.0
	if v > 1 {
		return 1
	}
	return v
}

func meanLuminance(gray []float64) float64 {
	s := 0.0
	for _, v := range gray {
		s += v
	}
	return s / float64(len(gray)) / 255.0
}

func luminanceVariance(gray []float64) float64 {
	m := 0.0
	for _, v := range gray {
		m += v
	}
	m /= float64(len(gray))
	va := 0.0
	for _, v := range gray {
		va += (v - m) * (v - m)
	}
	va /= float64(len(gray))
	// Scale: maximum possible variance is (255/2)^2.
	return math.Min(va/16256.25, 1)
}

// horizontalEdgeDensity measures the fraction of strong luminance
// transitions along rows (vertical edges in image terms); text produces many.
func horizontalEdgeDensity(gray []float64, w, h int) float64 {
	if w < 2 {
		return 0
	}
	edges := 0
	for y := 0; y < h; y++ {
		for x := 1; x < w; x++ {
			if math.Abs(gray[y*w+x]-gray[y*w+x-1]) > 40 {
				edges++
			}
		}
	}
	return float64(edges) / float64(h*(w-1))
}

// verticalEdgeDensity measures strong transitions along columns.
func verticalEdgeDensity(gray []float64, w, h int) float64 {
	if h < 2 {
		return 0
	}
	edges := 0
	for y := 1; y < h; y++ {
		for x := 0; x < w; x++ {
			if math.Abs(gray[y*w+x]-gray[(y-1)*w+x]) > 40 {
				edges++
			}
		}
	}
	return float64(edges) / float64(w*(h-1))
}

// marginUniformity measures how flat the outer 5% frame of the image is:
// screenshots have clean margins, memes usually do not.
func marginUniformity(gray []float64, w, h int) float64 {
	mx := w / 20
	my := h / 20
	if mx < 1 {
		mx = 1
	}
	if my < 1 {
		my = 1
	}
	var vals []float64
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x < mx || x >= w-mx || y < my || y >= h-my {
				vals = append(vals, gray[y*w+x])
			}
		}
	}
	if len(vals) == 0 {
		return 0
	}
	m := 0.0
	for _, v := range vals {
		m += v
	}
	m /= float64(len(vals))
	va := 0.0
	for _, v := range vals {
		va += (v - m) * (v - m)
	}
	va /= float64(len(vals))
	// Low variance -> high uniformity.
	return 1 - math.Min(va/16256.25, 1)
}

// rowBanding captures the alternation of dark and light rows typical of text
// blocks: the normalised count of sign changes in mean row luminance.
func rowBanding(gray []float64, w, h int) float64 {
	if h < 3 {
		return 0
	}
	rowMeans := make([]float64, h)
	for y := 0; y < h; y++ {
		s := 0.0
		for x := 0; x < w; x++ {
			s += gray[y*w+x]
		}
		rowMeans[y] = s / float64(w)
	}
	changes := 0
	for y := 2; y < h; y++ {
		d1 := rowMeans[y-1] - rowMeans[y-2]
		d2 := rowMeans[y] - rowMeans[y-1]
		if d1*d2 < 0 && math.Abs(d1) > 2 && math.Abs(d2) > 2 {
			changes++
		}
	}
	return float64(changes) / float64(h-2)
}

// extremePixelFraction is the fraction of pixels that are nearly black or
// nearly white; UI chrome and text are dominated by such values.
func extremePixelFraction(gray []float64) float64 {
	n := 0
	for _, v := range gray {
		if v < 30 || v > 225 {
			n++
		}
	}
	return float64(n) / float64(len(gray))
}

// aspectRatioFeature encodes how elongated the image is; screenshots of
// threads tend to be tall.
func aspectRatioFeature(w, h int) float64 {
	r := float64(h) / float64(w)
	return math.Min(r/3, 1)
}
