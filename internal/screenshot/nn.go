package screenshot

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Classifier is a small feed-forward neural network with one hidden layer
// and dropout, producing the probability that an image is a social-network
// screenshot. It stands in for the paper's Keras CNN (Appendix C); see the
// package documentation for the substitution rationale.
type Classifier struct {
	inputDim  int
	hiddenDim int
	// w1 is hiddenDim x inputDim, b1 is hiddenDim.
	w1 [][]float64
	b1 []float64
	// w2 is hiddenDim, b2 scalar (single logistic output unit).
	w2 []float64
	b2 float64
}

// TrainConfig configures classifier training.
type TrainConfig struct {
	// HiddenUnits is the size of the hidden layer.
	HiddenUnits int
	// Epochs is the number of passes over the training data.
	Epochs int
	// LearningRate is the SGD step size.
	LearningRate float64
	// Dropout is the probability of dropping a hidden unit during training
	// (the paper uses 0.5 on its dense layers).
	Dropout float64
	// Seed makes weight initialisation and dropout deterministic.
	Seed int64
}

// DefaultTrainConfig returns a configuration that trains quickly and
// reliably on the synthetic screenshot corpus.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{HiddenUnits: 16, Epochs: 60, LearningRate: 0.05, Dropout: 0.2, Seed: 1}
}

// Validate reports whether the configuration is usable.
func (c TrainConfig) Validate() error {
	if c.HiddenUnits < 1 {
		return errors.New("screenshot: hidden units must be positive")
	}
	if c.Epochs < 1 {
		return errors.New("screenshot: epochs must be positive")
	}
	if c.LearningRate <= 0 {
		return errors.New("screenshot: learning rate must be positive")
	}
	if c.Dropout < 0 || c.Dropout >= 1 {
		return fmt.Errorf("screenshot: dropout %v outside [0,1)", c.Dropout)
	}
	return nil
}

// Train fits a classifier on the given feature vectors and binary labels
// (true = screenshot).
func Train(features [][]float64, labels []bool, cfg TrainConfig) (*Classifier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(features) == 0 || len(features) != len(labels) {
		return nil, errors.New("screenshot: features and labels must be non-empty and aligned")
	}
	inputDim := len(features[0])
	for i, f := range features {
		if len(f) != inputDim {
			return nil, fmt.Errorf("screenshot: feature vector %d has length %d, want %d", i, len(f), inputDim)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Classifier{
		inputDim:  inputDim,
		hiddenDim: cfg.HiddenUnits,
		w1:        make([][]float64, cfg.HiddenUnits),
		b1:        make([]float64, cfg.HiddenUnits),
		w2:        make([]float64, cfg.HiddenUnits),
	}
	scale := 1.0 / math.Sqrt(float64(inputDim))
	for h := range c.w1 {
		c.w1[h] = make([]float64, inputDim)
		for i := range c.w1[h] {
			c.w1[h][i] = rng.NormFloat64() * scale
		}
		c.w2[h] = rng.NormFloat64() / math.Sqrt(float64(cfg.HiddenUnits))
	}

	order := rng.Perm(len(features))
	hidden := make([]float64, cfg.HiddenUnits)
	dropped := make([]bool, cfg.HiddenUnits)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Reshuffle each epoch.
		for i := len(order) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, idx := range order {
			x := features[idx]
			y := 0.0
			if labels[idx] {
				y = 1
			}
			// Forward pass with dropout on the hidden layer.
			keepScale := 1.0
			if cfg.Dropout > 0 {
				keepScale = 1 / (1 - cfg.Dropout)
			}
			for h := 0; h < cfg.HiddenUnits; h++ {
				dropped[h] = cfg.Dropout > 0 && rng.Float64() < cfg.Dropout
				if dropped[h] {
					hidden[h] = 0
					continue
				}
				z := c.b1[h]
				for i, xi := range x {
					z += c.w1[h][i] * xi
				}
				hidden[h] = relu(z) * keepScale
			}
			z2 := c.b2
			for h := 0; h < cfg.HiddenUnits; h++ {
				z2 += c.w2[h] * hidden[h]
			}
			p := sigmoid(z2)

			// Backward pass (cross-entropy loss).
			dz2 := p - y
			c.b2 -= cfg.LearningRate * dz2
			for h := 0; h < cfg.HiddenUnits; h++ {
				if dropped[h] {
					continue
				}
				gradW2 := dz2 * hidden[h]
				dHidden := dz2 * c.w2[h]
				c.w2[h] -= cfg.LearningRate * gradW2
				if hidden[h] <= 0 {
					continue // ReLU gate
				}
				dz1 := dHidden * keepScale
				c.b1[h] -= cfg.LearningRate * dz1
				for i, xi := range x {
					c.w1[h][i] -= cfg.LearningRate * dz1 * xi
				}
			}
		}
	}
	return c, nil
}

// Probability returns the estimated probability that the feature vector
// belongs to a screenshot.
func (c *Classifier) Probability(features []float64) float64 {
	if len(features) != c.inputDim {
		return 0
	}
	z2 := c.b2
	for h := 0; h < c.hiddenDim; h++ {
		z := c.b1[h]
		for i, xi := range features {
			z += c.w1[h][i] * xi
		}
		z2 += c.w2[h] * relu(z)
	}
	return sigmoid(z2)
}

// Predict classifies a feature vector with a 0.5 decision threshold.
func (c *Classifier) Predict(features []float64) bool {
	return c.Probability(features) >= 0.5
}

func relu(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

func sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}
