package screenshot

import (
	"errors"
	"fmt"
	"image"
	"math/rand"

	"github.com/memes-pipeline/memes/internal/imaging"
)

// Source identifies where a training image came from, mirroring the
// composition of the paper's curated dataset (Appendix C, Table 9).
type Source string

// Screenshot sources and the catch-all "other" class of ordinary images.
const (
	SourceTwitter   Source = "twitter"
	SourceFourChan  Source = "4chan"
	SourceReddit    Source = "reddit"
	SourceFacebook  Source = "facebook"
	SourceInstagram Source = "instagram"
	SourceOther     Source = "other"
)

// PaperCounts returns the per-source image counts of the paper's training
// corpus (Table 9): 14,602 Twitter, 10,127 4chan, 2,181 Reddit,
// 1,414 Facebook, 497 Instagram screenshots plus 10,630 other images.
func PaperCounts() map[Source]int {
	return map[Source]int{
		SourceTwitter:   14602,
		SourceFourChan:  10127,
		SourceReddit:    2181,
		SourceFacebook:  1414,
		SourceInstagram: 497,
		SourceOther:     10630,
	}
}

// CorpusConfig controls synthetic corpus generation.
type CorpusConfig struct {
	// Counts gives the number of images per source. Sources other than
	// SourceOther are rendered as screenshots; SourceOther as meme images.
	Counts map[Source]int
	// ImageSize is the square side of generated images.
	ImageSize int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultCorpusConfig returns a corpus that is a 1/40 scale model of the
// paper's (Table 9) so the classifier trains in seconds.
func DefaultCorpusConfig() CorpusConfig {
	counts := make(map[Source]int)
	for s, n := range PaperCounts() {
		counts[s] = n / 40
	}
	return CorpusConfig{Counts: counts, ImageSize: 96, Seed: 7}
}

// Validate reports whether the configuration is usable.
func (c CorpusConfig) Validate() error {
	if len(c.Counts) == 0 {
		return errors.New("screenshot: corpus needs at least one source")
	}
	total := 0
	for s, n := range c.Counts {
		if n < 0 {
			return fmt.Errorf("screenshot: negative count for source %q", s)
		}
		total += n
	}
	if total == 0 {
		return errors.New("screenshot: corpus is empty")
	}
	if c.ImageSize < 16 {
		return errors.New("screenshot: image size must be at least 16")
	}
	return nil
}

// Example is a single labelled training example.
type Example struct {
	Features []float64
	Label    bool // true = screenshot
	Source   Source
}

// Corpus is a labelled set of examples plus its per-source composition.
type Corpus struct {
	Examples []Example
	Counts   map[Source]int
}

// BuildCorpus synthesises a labelled corpus: screenshot sources are rendered
// with imaging.Screenshot and the "other" source with imaging.Template plus
// a random variant pass, then features are extracted.
func BuildCorpus(cfg CorpusConfig) (*Corpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	corpus := &Corpus{Counts: make(map[Source]int, len(cfg.Counts))}
	for src, n := range cfg.Counts {
		corpus.Counts[src] = n
		for i := 0; i < n; i++ {
			var img image.Image
			isScreenshot := src != SourceOther
			if isScreenshot {
				// Vary the aspect ratio a little per platform.
				h := cfg.ImageSize + rng.Intn(cfg.ImageSize)
				img = imaging.Screenshot(rng.Int63(), cfg.ImageSize, h)
			} else {
				base := imaging.TemplateSized(rng.Int63(), cfg.ImageSize, cfg.ImageSize)
				img = imaging.Variant(base, rng.Int63(), 0.4)
			}
			corpus.Examples = append(corpus.Examples, Example{
				Features: Features(img),
				Label:    isScreenshot,
				Source:   src,
			})
		}
	}
	// Shuffle so splits are class-balanced in expectation.
	rng.Shuffle(len(corpus.Examples), func(i, j int) {
		corpus.Examples[i], corpus.Examples[j] = corpus.Examples[j], corpus.Examples[i]
	})
	return corpus, nil
}

// Split partitions the corpus into train and test sets with the given train
// fraction (the paper uses 80/20).
func (c *Corpus) Split(trainFraction float64) (train, test []Example, err error) {
	if trainFraction <= 0 || trainFraction >= 1 {
		return nil, nil, fmt.Errorf("screenshot: train fraction %v outside (0,1)", trainFraction)
	}
	n := int(float64(len(c.Examples)) * trainFraction)
	if n == 0 || n == len(c.Examples) {
		return nil, nil, errors.New("screenshot: split leaves an empty partition")
	}
	return c.Examples[:n], c.Examples[n:], nil
}

// ExperimentResult bundles the trained classifier with its held-out
// evaluation.
type ExperimentResult struct {
	Classifier *Classifier
	Evaluation Evaluation
	TrainSize  int
	TestSize   int
}

// RunExperiment builds a corpus, trains the classifier on an 80% split, and
// evaluates it on the remaining 20%, reproducing the experiment behind
// Figure 19 and the Appendix C metrics.
func RunExperiment(corpusCfg CorpusConfig, trainCfg TrainConfig) (*ExperimentResult, error) {
	corpus, err := BuildCorpus(corpusCfg)
	if err != nil {
		return nil, err
	}
	train, test, err := corpus.Split(0.8)
	if err != nil {
		return nil, err
	}
	feats := make([][]float64, len(train))
	labels := make([]bool, len(train))
	for i, ex := range train {
		feats[i] = ex.Features
		labels[i] = ex.Label
	}
	clf, err := Train(feats, labels, trainCfg)
	if err != nil {
		return nil, err
	}
	probs := make([]float64, len(test))
	testLabels := make([]bool, len(test))
	for i, ex := range test {
		probs[i] = clf.Probability(ex.Features)
		testLabels[i] = ex.Label
	}
	ev, err := Evaluate(probs, testLabels)
	if err != nil {
		return nil, err
	}
	return &ExperimentResult{
		Classifier: clf,
		Evaluation: ev,
		TrainSize:  len(train),
		TestSize:   len(test),
	}, nil
}

// FilterGallery removes screenshots from a gallery of images: it returns the
// indexes of images the classifier judges NOT to be screenshots. This is the
// operation Step 4 performs on KYM image galleries before annotation.
func FilterGallery(clf *Classifier, images []image.Image) []int {
	var keep []int
	for i, img := range images {
		if img == nil {
			continue
		}
		if !clf.Predict(Features(img)) {
			keep = append(keep, i)
		}
	}
	return keep
}
