package screenshot

import (
	"errors"
	"sort"
)

// Evaluation summarises binary-classification performance at the 0.5
// decision threshold plus the threshold-free AUC, mirroring the metrics
// reported in Appendix C of the paper (accuracy 91.3%, precision 94.3%,
// recall 93.5%, F1 93.9%, AUC 0.96).
type Evaluation struct {
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
	AUC       float64
	// ROC holds the receiver-operating-characteristic curve as parallel
	// false-positive-rate and true-positive-rate series (Figure 19).
	ROC ROCCurve
}

// ROCCurve is a receiver operating characteristic curve.
type ROCCurve struct {
	FPR []float64
	TPR []float64
}

// Evaluate computes classification metrics from predicted probabilities and
// ground-truth labels (true = screenshot, the positive class).
func Evaluate(probs []float64, labels []bool) (Evaluation, error) {
	if len(probs) == 0 || len(probs) != len(labels) {
		return Evaluation{}, errors.New("screenshot: probabilities and labels must be non-empty and aligned")
	}
	var tp, fp, tn, fn int
	for i, p := range probs {
		predicted := p >= 0.5
		switch {
		case predicted && labels[i]:
			tp++
		case predicted && !labels[i]:
			fp++
		case !predicted && labels[i]:
			fn++
		default:
			tn++
		}
	}
	ev := Evaluation{}
	total := float64(tp + fp + tn + fn)
	ev.Accuracy = float64(tp+tn) / total
	if tp+fp > 0 {
		ev.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		ev.Recall = float64(tp) / float64(tp+fn)
	}
	if ev.Precision+ev.Recall > 0 {
		ev.F1 = 2 * ev.Precision * ev.Recall / (ev.Precision + ev.Recall)
	}
	roc, auc := rocAndAUC(probs, labels)
	ev.ROC = roc
	ev.AUC = auc
	return ev, nil
}

// rocAndAUC computes the ROC curve (by sweeping the decision threshold over
// every distinct predicted probability) and the area under it via the
// trapezoidal rule.
func rocAndAUC(probs []float64, labels []bool) (ROCCurve, float64) {
	type pair struct {
		p   float64
		pos bool
	}
	pairs := make([]pair, len(probs))
	nPos, nNeg := 0, 0
	for i := range probs {
		pairs[i] = pair{p: probs[i], pos: labels[i]}
		if labels[i] {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		// Degenerate: single-class data; the ROC is undefined, return a
		// diagonal with AUC 0.5 so callers do not divide by zero.
		return ROCCurve{FPR: []float64{0, 1}, TPR: []float64{0, 1}}, 0.5
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].p > pairs[j].p })

	var roc ROCCurve
	roc.FPR = append(roc.FPR, 0)
	roc.TPR = append(roc.TPR, 0)
	tp, fp := 0, 0
	i := 0
	for i < len(pairs) {
		// Process all pairs tied at the same probability together.
		j := i
		for j < len(pairs) && pairs[j].p == pairs[i].p {
			if pairs[j].pos {
				tp++
			} else {
				fp++
			}
			j++
		}
		i = j
		roc.FPR = append(roc.FPR, float64(fp)/float64(nNeg))
		roc.TPR = append(roc.TPR, float64(tp)/float64(nPos))
	}
	auc := 0.0
	for k := 1; k < len(roc.FPR); k++ {
		auc += (roc.FPR[k] - roc.FPR[k-1]) * (roc.TPR[k] + roc.TPR[k-1]) / 2
	}
	return roc, auc
}
