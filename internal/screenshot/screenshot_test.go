package screenshot

import (
	"image"
	"math"
	"math/rand"
	"testing"

	"github.com/memes-pipeline/memes/internal/imaging"
)

func TestFeaturesShapeAndRange(t *testing.T) {
	imgs := []image.Image{
		imaging.Template(1),
		imaging.Screenshot(2, 96, 160),
		imaging.TemplateSized(3, 48, 80),
	}
	for _, img := range imgs {
		f := Features(img)
		if len(f) != NumFeatures {
			t.Fatalf("feature vector length %d, want %d", len(f), NumFeatures)
		}
		for i, v := range f {
			if math.IsNaN(v) || v < 0 || v > 1.5 {
				t.Fatalf("feature %d out of range: %v", i, v)
			}
		}
	}
}

func TestFeaturesEmptyImage(t *testing.T) {
	f := Features(image.NewRGBA(image.Rect(0, 0, 0, 0)))
	if len(f) != NumFeatures {
		t.Fatalf("empty image features length %d", len(f))
	}
	for _, v := range f {
		if v != 0 {
			t.Fatal("empty image should produce zero features")
		}
	}
}

func TestFeaturesDiscriminative(t *testing.T) {
	// Background dominance (feature 0) should on average be higher for
	// screenshots than for memes.
	var sDom, mDom float64
	const n = 15
	for i := 0; i < n; i++ {
		sDom += Features(imaging.Screenshot(int64(i), 96, 140))[0]
		mDom += Features(imaging.Template(int64(i)))[0]
	}
	if sDom <= mDom {
		t.Fatalf("screenshot dominance %v should exceed meme dominance %v", sDom/n, mDom/n)
	}
}

func TestTrainConfigValidate(t *testing.T) {
	if err := DefaultTrainConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []TrainConfig{
		{HiddenUnits: 0, Epochs: 1, LearningRate: 0.1},
		{HiddenUnits: 4, Epochs: 0, LearningRate: 0.1},
		{HiddenUnits: 4, Epochs: 1, LearningRate: 0},
		{HiddenUnits: 4, Epochs: 1, LearningRate: 0.1, Dropout: 1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", cfg)
		}
	}
}

func TestTrainInputValidation(t *testing.T) {
	cfg := DefaultTrainConfig()
	if _, err := Train(nil, nil, cfg); err == nil {
		t.Fatal("empty training set should fail")
	}
	if _, err := Train([][]float64{{1, 2}}, []bool{true, false}, cfg); err == nil {
		t.Fatal("misaligned labels should fail")
	}
	if _, err := Train([][]float64{{1, 2}, {1}}, []bool{true, false}, cfg); err == nil {
		t.Fatal("ragged features should fail")
	}
}

func TestTrainLearnsLinearlySeparableData(t *testing.T) {
	// Simple synthetic task: label = (x0 + x1 > 1).
	rng := rand.New(rand.NewSource(5))
	var feats [][]float64
	var labels []bool
	for i := 0; i < 400; i++ {
		x0, x1 := rng.Float64(), rng.Float64()
		feats = append(feats, []float64{x0, x1})
		labels = append(labels, x0+x1 > 1)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 100
	clf, err := Train(feats, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range feats {
		if clf.Predict(feats[i]) == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(feats)); acc < 0.9 {
		t.Fatalf("training accuracy %v too low", acc)
	}
	// Wrong-dimension input returns probability 0 rather than panicking.
	if p := clf.Probability([]float64{1}); p != 0 {
		t.Fatalf("wrong-dimension probability = %v, want 0", p)
	}
}

func TestEvaluateMetrics(t *testing.T) {
	// Hand-computable confusion matrix: 3 TP, 1 FP, 1 FN, 5 TN.
	probs := []float64{0.9, 0.8, 0.7, 0.6, 0.4, 0.3, 0.2, 0.2, 0.1, 0.1}
	labels := []bool{true, true, true, false, true, false, false, false, false, false}
	ev, err := Evaluate(probs, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.Accuracy-0.8) > 1e-12 {
		t.Errorf("accuracy = %v, want 0.8", ev.Accuracy)
	}
	if math.Abs(ev.Precision-0.75) > 1e-12 {
		t.Errorf("precision = %v, want 0.75", ev.Precision)
	}
	if math.Abs(ev.Recall-0.75) > 1e-12 {
		t.Errorf("recall = %v, want 0.75", ev.Recall)
	}
	if math.Abs(ev.F1-0.75) > 1e-12 {
		t.Errorf("F1 = %v, want 0.75", ev.F1)
	}
	if ev.AUC < 0.8 || ev.AUC > 1 {
		t.Errorf("AUC = %v implausible", ev.AUC)
	}
	if len(ev.ROC.FPR) != len(ev.ROC.TPR) || len(ev.ROC.FPR) < 2 {
		t.Errorf("malformed ROC curve")
	}
	// ROC must start at (0,0) and end at (1,1).
	last := len(ev.ROC.FPR) - 1
	if ev.ROC.FPR[0] != 0 || ev.ROC.TPR[0] != 0 || ev.ROC.FPR[last] != 1 || ev.ROC.TPR[last] != 1 {
		t.Errorf("ROC endpoints wrong: %+v", ev.ROC)
	}
}

func TestEvaluatePerfectAndRandom(t *testing.T) {
	// Perfect separation: AUC = 1.
	probs := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	ev, err := Evaluate(probs, labels)
	if err != nil {
		t.Fatal(err)
	}
	if ev.AUC != 1 || ev.Accuracy != 1 {
		t.Fatalf("perfect classifier metrics wrong: %+v", ev)
	}
	// Single-class data degenerates gracefully.
	ev2, err := Evaluate([]float64{0.6, 0.7}, []bool{true, true})
	if err != nil {
		t.Fatal(err)
	}
	if ev2.AUC != 0.5 {
		t.Fatalf("single-class AUC = %v, want 0.5", ev2.AUC)
	}
	if _, err := Evaluate(nil, nil); err == nil {
		t.Fatal("empty evaluation should fail")
	}
	if _, err := Evaluate([]float64{0.5}, []bool{true, false}); err == nil {
		t.Fatal("misaligned evaluation should fail")
	}
}

func TestPaperCountsComposition(t *testing.T) {
	counts := PaperCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	// The paper's corpus has 39,451 images across the six sources.
	if total != 39451 {
		t.Fatalf("paper corpus total = %d, want 39451", total)
	}
	if counts[SourceTwitter] != 14602 {
		t.Fatalf("twitter count = %d", counts[SourceTwitter])
	}
}

func TestCorpusConfigValidate(t *testing.T) {
	if err := DefaultCorpusConfig().Validate(); err != nil {
		t.Fatalf("default corpus config invalid: %v", err)
	}
	bad := []CorpusConfig{
		{},
		{Counts: map[Source]int{SourceOther: -1}, ImageSize: 64},
		{Counts: map[Source]int{SourceOther: 0}, ImageSize: 64},
		{Counts: map[Source]int{SourceOther: 10}, ImageSize: 4},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", cfg)
		}
	}
}

func TestBuildCorpusComposition(t *testing.T) {
	cfg := CorpusConfig{
		Counts:    map[Source]int{SourceTwitter: 20, SourceOther: 30},
		ImageSize: 64,
		Seed:      3,
	}
	corpus, err := BuildCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Examples) != 50 {
		t.Fatalf("corpus size %d, want 50", len(corpus.Examples))
	}
	screenshots := 0
	for _, ex := range corpus.Examples {
		if ex.Label != (ex.Source != SourceOther) {
			t.Fatal("label does not match source")
		}
		if ex.Label {
			screenshots++
		}
		if len(ex.Features) != NumFeatures {
			t.Fatal("bad feature length")
		}
	}
	if screenshots != 20 {
		t.Fatalf("screenshot count %d, want 20", screenshots)
	}
}

func TestCorpusSplit(t *testing.T) {
	cfg := CorpusConfig{Counts: map[Source]int{SourceTwitter: 10, SourceOther: 10}, ImageSize: 64, Seed: 1}
	corpus, err := BuildCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := corpus.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 16 || len(test) != 4 {
		t.Fatalf("split sizes %d/%d", len(train), len(test))
	}
	if _, _, err := corpus.Split(0); err == nil {
		t.Fatal("zero train fraction should fail")
	}
	if _, _, err := corpus.Split(1); err == nil {
		t.Fatal("unit train fraction should fail")
	}
}

func TestRunExperimentReproducesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping classifier experiment in -short mode")
	}
	cfg := DefaultCorpusConfig()
	// Shrink further for test speed while keeping both classes populated.
	for s, n := range cfg.Counts {
		cfg.Counts[s] = n / 4
		if cfg.Counts[s] < 10 {
			cfg.Counts[s] = 10
		}
	}
	res, err := RunExperiment(cfg, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports AUC 0.96 and accuracy 91.3%; the synthetic corpus is
	// easier, so we only require that the classifier is clearly better than
	// chance and in the same high-performance regime.
	if res.Evaluation.AUC < 0.85 {
		t.Errorf("AUC %v too low (paper: 0.96)", res.Evaluation.AUC)
	}
	if res.Evaluation.Accuracy < 0.8 {
		t.Errorf("accuracy %v too low (paper: 0.913)", res.Evaluation.Accuracy)
	}
	if res.TrainSize == 0 || res.TestSize == 0 {
		t.Error("empty train/test partitions")
	}
}

func TestFilterGallery(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping classifier experiment in -short mode")
	}
	cfg := DefaultCorpusConfig()
	for s, n := range cfg.Counts {
		cfg.Counts[s] = n / 4
		if cfg.Counts[s] < 10 {
			cfg.Counts[s] = 10
		}
	}
	res, err := RunExperiment(cfg, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Build a small gallery: 5 memes and 5 screenshots (plus a nil entry).
	var gallery []image.Image
	for i := 0; i < 5; i++ {
		gallery = append(gallery, imaging.Template(int64(1000+i)))
	}
	for i := 0; i < 5; i++ {
		gallery = append(gallery, imaging.Screenshot(int64(2000+i), 96, 150))
	}
	gallery = append(gallery, nil)
	keep := FilterGallery(res.Classifier, gallery)
	// Most of the kept images should be from the meme half.
	memeKept := 0
	for _, idx := range keep {
		if idx < 5 {
			memeKept++
		}
	}
	if len(keep) == 0 || memeKept < len(keep)/2 {
		t.Fatalf("gallery filtering looks wrong: kept %v", keep)
	}
}
