package cluster

import "time"

// The two helpers below are the only wall-clock access in this package.
// Clustering output (labels, medoids, cluster order) must be a pure function
// of the input — the detorder analyzer enforces that by rejecting direct
// time.Now/time.Since calls here — but stage-timing stats legitimately need
// the clock, so they route through these explicitly annotated functions.

// now returns the wall clock for stage-timing stats.
//
//memes:nondet timing stats only; never influences labels or medoids
func now() time.Time { return time.Now() }

// since returns the elapsed wall time since t for stage-timing stats.
//
//memes:nondet timing stats only; never influences labels or medoids
func since(t time.Time) time.Duration { return time.Since(t) }
