package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/memes-pipeline/memes/internal/phash"
)

// randomHashes returns n hashes drawn from a few noisy templates so DBSCAN
// finds real clusters.
func randomHashes(n int, seed int64) []phash.Hash {
	rng := rand.New(rand.NewSource(seed))
	templates := []uint64{rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()}
	out := make([]phash.Hash, n)
	for i := range out {
		h := templates[rng.Intn(len(templates))]
		for b := 0; b < 3; b++ {
			if rng.Intn(2) == 0 {
				h ^= 1 << uint(rng.Intn(64))
			}
		}
		out[i] = phash.Hash(h)
	}
	return out
}

func TestMedoidParallelMatchesSerial(t *testing.T) {
	hashes := randomHashes(400, 7)
	members := make([]int, 0, 300)
	for i := 0; i < 300; i++ {
		members = append(members, i)
	}
	want, ok := Medoid(hashes, members)
	if !ok {
		t.Fatal("Medoid failed")
	}
	for _, workers := range []int{0, 1, 2, 8} {
		got, ok := MedoidParallel(hashes, members, workers)
		if !ok || got != want {
			t.Fatalf("workers=%d: MedoidParallel = %d, want %d", workers, got, want)
		}
	}
	if _, ok := MedoidParallel(hashes, nil, 4); ok {
		t.Fatal("empty members should report !ok")
	}
	if got, ok := MedoidParallel(hashes, []int{5}, 4); !ok || got != 5 {
		t.Fatal("singleton cluster should return its only member")
	}
}

func TestMaterializeParallelMatchesSerial(t *testing.T) {
	hashes := randomHashes(600, 11)
	counts := make([]int, len(hashes))
	rng := rand.New(rand.NewSource(3))
	for i := range counts {
		counts[i] = 1 + rng.Intn(5)
	}
	res, err := DBSCAN(hashes, counts, DefaultDBSCANConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := Materialize(hashes, counts, res)
	if len(want) == 0 {
		t.Fatal("expected clusters from templated hashes")
	}
	for _, workers := range []int{0, 2, 8} {
		got := MaterializeParallel(hashes, counts, res, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: MaterializeParallel diverges from Materialize", workers)
		}
	}
}
