// Package cluster provides the clustering machinery used by the pipeline:
// DBSCAN over perceptual-hash Hamming distance (Steps 2-3 of the paper's
// pipeline), cluster medoid computation (Step 5), and average-linkage
// agglomerative clustering used to build the dendrograms of Section 4.1.2.
package cluster

import (
	"context"
	"fmt"
	"time"

	"github.com/memes-pipeline/memes/internal/parallel"
	"github.com/memes-pipeline/memes/internal/phash"
)

// Noise is the label assigned to points that do not belong to any cluster.
const Noise = -1

// DBSCANConfig holds the parameters of the density-based clustering step.
// The paper uses Eps = 8 and MinPts = 5 (Appendix A).
type DBSCANConfig struct {
	// Eps is the maximum Hamming distance between two hashes for one to be
	// considered in the neighbourhood of the other.
	Eps int
	// MinPts is the minimum neighbourhood size (including the point itself)
	// for a point to be a core point.
	MinPts int
	// Workers bounds the parallel neighbourhood scan (phase one); zero means
	// GOMAXPROCS. The labels are identical for every worker count, because
	// the expansion phase that assigns them runs serially over the cached
	// neighbourhoods.
	Workers int
}

// DefaultDBSCANConfig returns the configuration used in the paper.
func DefaultDBSCANConfig() DBSCANConfig {
	return DBSCANConfig{Eps: 8, MinPts: 5}
}

// Validate reports whether the configuration is usable.
func (c DBSCANConfig) Validate() error {
	if c.Eps < 0 || c.Eps > phash.MaxDistance {
		return fmt.Errorf("cluster: eps %d out of range [0, %d]", c.Eps, phash.MaxDistance)
	}
	if c.MinPts < 1 {
		return fmt.Errorf("cluster: minPts %d must be at least 1", c.MinPts)
	}
	if c.Workers < 0 {
		return fmt.Errorf("cluster: negative worker count %d", c.Workers)
	}
	return nil
}

// Result is the outcome of a DBSCAN run.
type Result struct {
	// Labels has one entry per input hash: the cluster index in
	// [0, NumClusters) or Noise.
	Labels []int
	// NumClusters is the number of clusters found.
	NumClusters int
	// NoiseCount is the number of points labelled Noise.
	NoiseCount int
	// Neighbourhoods records the cost of the parallel neighbourhood scan
	// (phase one) — the CPU analogue of the paper's GPU pairwise engine. It
	// is the only Result field that varies between runs on identical inputs.
	Neighbourhoods NeighbourhoodStats
}

// NeighbourhoodStats is the timing record of DBSCAN's phase one: computing
// the eps-neighbourhood of every distinct hash against the multi-index.
type NeighbourhoodStats struct {
	// Duration is the wall time of the scan.
	Duration time.Duration
	// Points is the number of distinct hashes scanned.
	Points int
}

// PointsPerSec returns the scan throughput, or 0 for an instantaneous scan.
func (s NeighbourhoodStats) PointsPerSec() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Points) / s.Duration.Seconds()
}

// NoiseFraction returns the fraction of input points labelled as noise.
func (r Result) NoiseFraction() float64 {
	if len(r.Labels) == 0 {
		return 0
	}
	return float64(r.NoiseCount) / float64(len(r.Labels))
}

// Members returns, for each cluster, the indexes of its member points,
// ordered by cluster label and then by index.
func (r Result) Members() [][]int {
	members := make([][]int, r.NumClusters)
	for i, lbl := range r.Labels {
		if lbl == Noise {
			continue
		}
		members[lbl] = append(members[lbl], i)
	}
	return members
}

// DBSCAN clusters the distinct perceptual hashes using density-based
// clustering with the Hamming distance. It is DBSCANCtx without
// cancellation.
func DBSCAN(hashes []phash.Hash, counts []int, cfg DBSCANConfig) (Result, error) {
	return DBSCANCtx(context.Background(), hashes, counts, cfg)
}

// DBSCANCtx clusters the distinct perceptual hashes using density-based
// clustering with the Hamming distance, honouring ctx cancellation during
// the parallel neighbourhood scan. The counts slice gives the number of
// occurrences of each hash (distinct hashes are the points, but density is
// measured in occurrences, mirroring the paper's treatment of duplicate
// images); pass nil to weight every hash equally.
//
// The run is split into two phases. Phase one computes the
// eps-neighbourhood (member indexes plus total occurrence weight) of every
// point in parallel over cfg.Workers against a multi-index built over the
// hashes — this is exactly the paper's GPU pairwise comparison step, spread
// across cores instead of CUDA blocks. Phase two runs the classic serial
// breadth-first expansion over the cached neighbourhoods. Because each
// neighbourhood is a pure function of the input and the expansion order
// never depends on scheduling, Labels are bitwise-identical for every
// worker count — and identical to what the historical single-threaded
// re-querying implementation produced (pinned by a property test and a fuzz
// target against that reference).
//
// Cancellation during phase one returns ctx.Err() with a zero Result; no
// goroutine outlives the call.
func DBSCANCtx(ctx context.Context, hashes []phash.Hash, counts []int, cfg DBSCANConfig) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	n := len(hashes)
	res := Result{Labels: make([]int, n)}
	if n == 0 {
		return res, nil
	}
	if counts != nil && len(counts) != n {
		return Result{}, fmt.Errorf("cluster: counts length %d does not match hashes length %d", len(counts), n)
	}

	// Phase one: every point's eps-neighbourhood and its total occurrence
	// weight, computed in parallel by the batch pairwise primitive.
	phaseStart := now()
	neigh, err := phash.NeighbourhoodsCtx(ctx, hashes, cfg.Eps, cfg.Workers)
	if err != nil {
		return Result{}, err
	}
	weights := make([]int, n)
	if err := parallel.ForCtx(ctx, n, cfg.Workers, func(i int) {
		if counts == nil {
			weights[i] = len(neigh[i])
			return
		}
		total := 0
		for _, j := range neigh[i] {
			total += counts[j]
		}
		weights[i] = total
	}); err != nil {
		return Result{}, err
	}
	res.Neighbourhoods = NeighbourhoodStats{Duration: since(phaseStart), Points: n}

	// Phase two: deterministic serial expansion over the cached
	// neighbourhoods — the same breadth-first traversal, in the same order,
	// as the historical implementation that re-queried the index per visit.
	expand(neigh, weights, cfg.MinPts, &res)
	return res, nil
}

// expand is DBSCAN's phase two: the deterministic serial breadth-first
// expansion over cached eps-neighbourhoods, filling res.Labels (which must
// have len(neigh) entries), res.NumClusters and res.NoiseCount. It is shared
// by DBSCANCtx and Incremental.ReclusterCtx so the batch and streaming paths
// produce bitwise-identical labels by construction.
func expand(neigh [][]int32, weights []int, minPts int, res *Result) {
	const unvisited = -2
	labels := res.Labels
	for i := range labels {
		labels[i] = unvisited
	}
	var queue []int32
	clusterID := 0
	for i := 0; i < len(labels); i++ {
		if labels[i] != unvisited {
			continue
		}
		if weights[i] < minPts {
			labels[i] = Noise
			continue
		}
		// Start a new cluster and expand it breadth-first.
		labels[i] = clusterID
		queue = append(queue[:0], neigh[i]...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == Noise {
				labels[j] = clusterID // border point
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = clusterID
			if weights[j] >= minPts {
				queue = append(queue, neigh[j]...)
			}
		}
		clusterID++
	}

	res.NumClusters = clusterID
	res.NoiseCount = 0
	for _, lbl := range labels {
		if lbl == Noise {
			res.NoiseCount++
		}
	}
}

// Medoid returns the index (into members) of the medoid of a cluster: the
// member with the minimum sum of squared Hamming distances to all other
// members, which is the definition used for cluster annotation in Step 5.
// Ties are broken by the lowest index for determinism. The second return
// value is false when members is empty.
func Medoid(hashes []phash.Hash, members []int) (int, bool) {
	return MedoidParallel(hashes, members, 1)
}

// MedoidParallel is Medoid with the outer candidate loop spread across a
// worker pool (workers <= 0 means GOMAXPROCS). It is MedoidParallelCtx
// without cancellation.
func MedoidParallel(hashes []phash.Hash, members []int, workers int) (int, bool) {
	idx, ok, _ := MedoidParallelCtx(context.Background(), hashes, members, workers)
	return idx, ok
}

// MedoidParallelCtx is Medoid with the outer candidate loop spread across a
// worker pool (workers <= 0 means GOMAXPROCS), honouring ctx cancellation.
// The member hashes are first gathered into a contiguous popcount-friendly
// block so the O(k²) inner loop runs over sequential memory with a single
// XOR+popcount per pair instead of chasing the cluster's member indirection.
// The result is identical to Medoid for every worker count.
func MedoidParallelCtx(ctx context.Context, hashes []phash.Hash, members []int, workers int) (int, bool, error) {
	if len(members) == 0 {
		return 0, false, ctx.Err()
	}
	if len(members) == 1 {
		return members[0], true, ctx.Err()
	}
	// Contiguous layout: hs[p] is the hash of members[p], so the inner loop
	// runs a sequential XOR+popcount scan instead of chasing member indexes.
	hs := make([]phash.Hash, len(members))
	for p, i := range members {
		hs[p] = hashes[i]
	}
	costs := make([]int64, len(members))
	if err := parallel.ForCtx(ctx, len(members), workers, func(p int) {
		h := hs[p]
		var cost int64
		for _, other := range hs {
			d := int64(phash.Distance(h, other))
			cost += d * d
		}
		costs[p] = cost
	}); err != nil {
		return 0, false, err
	}
	// The reduction runs serially over the precomputed costs, so the
	// lowest-index tie-break matches the sequential implementation exactly.
	bestIdx := members[0]
	bestCost := int64(1) << 62
	for p, i := range members {
		if costs[p] < bestCost || (costs[p] == bestCost && i < bestIdx) {
			bestCost = costs[p]
			bestIdx = i
		}
	}
	return bestIdx, true, nil
}

// Cluster is a materialised cluster: its label, member indexes, medoid index
// and medoid hash. Produced by Materialize.
type Cluster struct {
	Label      int
	Members    []int
	Medoid     int
	MedoidHash phash.Hash
	// Size is the total occurrence weight of the cluster (sum of counts of
	// its member hashes).
	Size int
}

// Materialize converts a DBSCAN result into a slice of Cluster values with
// medoids computed, ordered by label. counts may be nil (unit weights).
func Materialize(hashes []phash.Hash, counts []int, res Result) []Cluster {
	return MaterializeParallel(hashes, counts, res, 1)
}

// MaterializeParallel is Materialize with medoid computation spread across a
// worker pool (workers <= 0 means GOMAXPROCS). It is MaterializeParallelCtx
// without cancellation.
func MaterializeParallel(hashes []phash.Hash, counts []int, res Result, workers int) []Cluster {
	out, _ := MaterializeParallelCtx(context.Background(), hashes, counts, res, workers)
	return out
}

// MaterializeParallelCtx is Materialize with medoid computation spread
// across a worker pool (workers <= 0 means GOMAXPROCS), honouring ctx
// cancellation. Clusters are materialised concurrently and each cluster's
// medoid search is itself parallelised for large clusters, but the returned
// slice is ordered by label and identical to Materialize for every worker
// count. On cancellation it returns (nil, ctx.Err()); no goroutine outlives
// the call.
func MaterializeParallelCtx(ctx context.Context, hashes []phash.Hash, counts []int, res Result, workers int) ([]Cluster, error) {
	members := res.Members()
	// Split the worker budget between the two nesting levels so the total
	// number of CPU-bound goroutines stays ~workers: the cluster-level
	// fan-out uses up to `concurrent` workers, and each of those hands the
	// leftover budget to the O(k²) medoid scan of large clusters. With many
	// clusters the outer level saturates and medoids run serially; with a
	// few huge clusters the budget flows inward instead.
	labels := make([]int, 0, len(members))
	for label, m := range members {
		if len(m) > 0 {
			labels = append(labels, label)
		}
	}
	resolved := parallel.Workers(workers)
	concurrent := resolved
	if concurrent > len(labels) {
		concurrent = len(labels)
	}
	medoidBudget := 1
	if concurrent > 0 {
		medoidBudget = resolved / concurrent
		if medoidBudget < 1 {
			medoidBudget = 1
		}
	}
	return parallel.MapCtx(ctx, len(labels), resolved, func(li int) Cluster {
		label := labels[li]
		// Members() returns each slice already in ascending index order.
		m := members[label]
		medoidWorkers := 1
		if len(m) >= 256 {
			medoidWorkers = medoidBudget
		}
		medoid, _ := MedoidParallel(hashes, m, medoidWorkers)
		size := 0
		for _, i := range m {
			if counts == nil {
				size++
			} else {
				size += counts[i]
			}
		}
		return Cluster{
			Label:      label,
			Members:    m,
			Medoid:     medoid,
			MedoidHash: hashes[medoid],
			Size:       size,
		}
	})
}
