package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Linkage selects how the distance between two groups of points is derived
// from pairwise point distances during agglomerative clustering.
type Linkage int

const (
	// AverageLinkage uses the mean pairwise distance (UPGMA). This is the
	// linkage used for the dendrogram in Figure 6.
	AverageLinkage Linkage = iota
	// SingleLinkage uses the minimum pairwise distance.
	SingleLinkage
	// CompleteLinkage uses the maximum pairwise distance.
	CompleteLinkage
)

func (l Linkage) String() string {
	switch l {
	case AverageLinkage:
		return "average"
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// DendrogramNode is a node of the binary merge tree produced by
// agglomerative clustering. Leaves have Left == Right == -1 and refer to the
// original item via Item; internal nodes record the merge height.
type DendrogramNode struct {
	// ID is the node index in Dendrogram.Nodes. Leaves occupy [0, n) and
	// internal nodes [n, 2n-1).
	ID int
	// Item is the original item index for leaves, -1 for internal nodes.
	Item int
	// Left and Right are child node IDs, -1 for leaves.
	Left, Right int
	// Height is the linkage distance at which the children were merged;
	// 0 for leaves.
	Height float64
	// Count is the number of leaves under this node.
	Count int
}

// Dendrogram is the full merge tree of an agglomerative clustering run.
type Dendrogram struct {
	Nodes []DendrogramNode
	// Root is the ID of the root node (or -1 when there are no items).
	Root int
}

var errNoItems = errors.New("cluster: agglomerative clustering requires at least one item")

// Agglomerative performs hierarchical agglomerative clustering over n items
// whose pairwise distances are given by dist(i, j). The distance function
// must be symmetric and non-negative. It returns the full dendrogram.
//
// The implementation is the O(n^3) textbook algorithm with a cached distance
// matrix, which is ample for the paper's use case (hundreds of annotated
// clusters per meme family).
func Agglomerative(n int, dist func(i, j int) float64, linkage Linkage) (*Dendrogram, error) {
	if n <= 0 {
		return nil, errNoItems
	}
	d := &Dendrogram{Root: -1}
	d.Nodes = make([]DendrogramNode, n, 2*n-1)
	for i := 0; i < n; i++ {
		d.Nodes[i] = DendrogramNode{ID: i, Item: i, Left: -1, Right: -1, Count: 1}
	}
	if n == 1 {
		d.Root = 0
		return d, nil
	}

	// active maps current cluster IDs to the set of leaf items they contain.
	active := make(map[int][]int, n)
	for i := 0; i < n; i++ {
		active[i] = []int{i}
	}

	// Cache raw pairwise distances between leaves.
	raw := make([][]float64, n)
	for i := range raw {
		raw[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := dist(i, j)
			if math.IsNaN(v) || v < 0 {
				return nil, fmt.Errorf("cluster: invalid distance %v between items %d and %d", v, i, j)
			}
			raw[i][j] = v
			raw[j][i] = v
		}
	}

	groupDist := func(a, b []int) float64 {
		switch linkage {
		case SingleLinkage:
			best := math.Inf(1)
			for _, i := range a {
				for _, j := range b {
					if raw[i][j] < best {
						best = raw[i][j]
					}
				}
			}
			return best
		case CompleteLinkage:
			best := 0.0
			for _, i := range a {
				for _, j := range b {
					if raw[i][j] > best {
						best = raw[i][j]
					}
				}
			}
			return best
		default: // AverageLinkage
			sum := 0.0
			for _, i := range a {
				for _, j := range b {
					sum += raw[i][j]
				}
			}
			return sum / float64(len(a)*len(b))
		}
	}

	nextID := n
	for len(active) > 1 {
		// Find the closest pair of active clusters (deterministic order).
		ids := make([]int, 0, len(active))
		for id := range active {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		bestA, bestB := -1, -1
		bestD := math.Inf(1)
		for ai := 0; ai < len(ids); ai++ {
			for bi := ai + 1; bi < len(ids); bi++ {
				dd := groupDist(active[ids[ai]], active[ids[bi]])
				if dd < bestD {
					bestD = dd
					bestA, bestB = ids[ai], ids[bi]
				}
			}
		}
		merged := append(append([]int(nil), active[bestA]...), active[bestB]...)
		node := DendrogramNode{
			ID:     nextID,
			Item:   -1,
			Left:   bestA,
			Right:  bestB,
			Height: bestD,
			Count:  len(merged),
		}
		d.Nodes = append(d.Nodes, node)
		delete(active, bestA)
		delete(active, bestB)
		active[nextID] = merged
		nextID++
	}
	d.Root = nextID - 1
	return d, nil
}

// Cut returns a flat clustering obtained by cutting the dendrogram at the
// given height: every maximal subtree whose merge height is at most height
// becomes one cluster. The result maps each original item index to a cluster
// label in [0, k).
func (d *Dendrogram) Cut(height float64) []int {
	nLeaves := 0
	for _, node := range d.Nodes {
		if node.Item >= 0 {
			nLeaves++
		}
	}
	labels := make([]int, nLeaves)
	if d.Root < 0 {
		return labels
	}
	next := 0
	var assign func(id int, label int)
	assign = func(id, label int) {
		node := d.Nodes[id]
		if node.Item >= 0 {
			labels[node.Item] = label
			return
		}
		assign(node.Left, label)
		assign(node.Right, label)
	}
	var walk func(id int)
	walk = func(id int) {
		node := d.Nodes[id]
		if node.Item >= 0 || node.Height <= height {
			assign(id, next)
			next++
			return
		}
		walk(node.Left)
		walk(node.Right)
	}
	walk(d.Root)
	return labels
}

// Leaves returns the original item indexes under node id in left-to-right
// order, which is the ordering used when rendering the dendrogram.
func (d *Dendrogram) Leaves(id int) []int {
	var out []int
	var walk func(id int)
	walk = func(id int) {
		node := d.Nodes[id]
		if node.Item >= 0 {
			out = append(out, node.Item)
			return
		}
		walk(node.Left)
		walk(node.Right)
	}
	if id >= 0 && id < len(d.Nodes) {
		walk(id)
	}
	return out
}

// NumLeaves returns the number of original items in the dendrogram.
func (d *Dendrogram) NumLeaves() int {
	n := 0
	for _, node := range d.Nodes {
		if node.Item >= 0 {
			n++
		}
	}
	return n
}

// MergeHeights returns the heights of all internal nodes in merge order
// (ascending node ID). Useful for choosing a cut threshold.
func (d *Dendrogram) MergeHeights() []float64 {
	var out []float64
	for _, node := range d.Nodes {
		if node.Item < 0 {
			out = append(out, node.Height)
		}
	}
	return out
}
