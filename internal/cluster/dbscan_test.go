package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/memes-pipeline/memes/internal/phash"
)

// makeClusteredHashes builds k groups of hashes. Each group has a random base
// hash and size members within maxFlip bit flips of the base, plus extra
// isolated noise hashes. Returns hashes and the ground-truth group of each
// (noise hashes get group -1).
func makeClusteredHashes(seed int64, k, size, maxFlip, noise int) ([]phash.Hash, []int) {
	rng := rand.New(rand.NewSource(seed))
	var hashes []phash.Hash
	var truth []int
	bases := make([]phash.Hash, k)
	for g := 0; g < k; g++ {
		// Space bases far apart by construction: random 64-bit values are
		// ~32 bits apart in expectation.
		bases[g] = phash.Hash(rng.Uint64())
		for s := 0; s < size; s++ {
			h := bases[g]
			flips := rng.Intn(maxFlip + 1)
			perm := rng.Perm(64)
			for f := 0; f < flips; f++ {
				h ^= 1 << uint(perm[f])
			}
			hashes = append(hashes, h)
			truth = append(truth, g)
		}
	}
	for i := 0; i < noise; i++ {
		hashes = append(hashes, phash.Hash(rng.Uint64()))
		truth = append(truth, -1)
	}
	return hashes, truth
}

func TestDBSCANConfigValidate(t *testing.T) {
	if err := DefaultDBSCANConfig().Validate(); err != nil {
		t.Fatalf("default config should be valid: %v", err)
	}
	bad := []DBSCANConfig{
		{Eps: -1, MinPts: 5},
		{Eps: 65, MinPts: 5},
		{Eps: 8, MinPts: 0},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", cfg)
		}
	}
}

func TestDBSCANEmpty(t *testing.T) {
	res, err := DBSCAN(nil, nil, DefaultDBSCANConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 || res.NoiseCount != 0 || len(res.Labels) != 0 {
		t.Fatalf("unexpected result for empty input: %+v", res)
	}
	if res.NoiseFraction() != 0 {
		t.Fatal("noise fraction of empty result should be 0")
	}
}

func TestDBSCANCountsLengthMismatch(t *testing.T) {
	_, err := DBSCAN([]phash.Hash{1, 2}, []int{1}, DefaultDBSCANConfig())
	if err == nil {
		t.Fatal("expected error for mismatched counts length")
	}
}

func TestDBSCANInvalidConfig(t *testing.T) {
	_, err := DBSCAN([]phash.Hash{1}, nil, DBSCANConfig{Eps: -2, MinPts: 1})
	if err == nil {
		t.Fatal("expected error for invalid config")
	}
}

func TestDBSCANRecoversPlantedClusters(t *testing.T) {
	hashes, truth := makeClusteredHashes(1, 4, 20, 3, 10)
	res, err := DBSCAN(hashes, nil, DefaultDBSCANConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters < 4 {
		t.Fatalf("expected at least 4 clusters, got %d", res.NumClusters)
	}
	// Every planted group should map predominantly to a single label.
	for g := 0; g < 4; g++ {
		labelCount := map[int]int{}
		total := 0
		for i, tg := range truth {
			if tg != g {
				continue
			}
			labelCount[res.Labels[i]]++
			total++
		}
		best := 0
		for lbl, c := range labelCount {
			if lbl != Noise && c > best {
				best = c
			}
		}
		if float64(best)/float64(total) < 0.9 {
			t.Errorf("group %d not recovered: label distribution %v", g, labelCount)
		}
	}
}

func TestDBSCANIsolatedPointsAreNoise(t *testing.T) {
	// 10 isolated random hashes with MinPts 5: everything should be noise
	// with overwhelming probability (random 64-bit hashes are ~32 bits apart).
	rng := rand.New(rand.NewSource(3))
	hashes := make([]phash.Hash, 10)
	for i := range hashes {
		hashes[i] = phash.Hash(rng.Uint64())
	}
	res, err := DBSCAN(hashes, nil, DefaultDBSCANConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 {
		t.Fatalf("expected 0 clusters, got %d", res.NumClusters)
	}
	if res.NoiseCount != len(hashes) {
		t.Fatalf("expected all points to be noise, got %d/%d", res.NoiseCount, len(hashes))
	}
	if res.NoiseFraction() != 1 {
		t.Fatalf("noise fraction should be 1, got %f", res.NoiseFraction())
	}
}

func TestDBSCANCountsActAsDensityWeight(t *testing.T) {
	// Two identical hashes with occurrence counts of 10 each: even though
	// there are only 2 distinct points, their total weight exceeds MinPts so
	// they must form a cluster.
	hashes := []phash.Hash{0xABCD, 0xABCD ^ 1}
	counts := []int{10, 10}
	res, err := DBSCAN(hashes, counts, DefaultDBSCANConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("expected 1 cluster, got %d", res.NumClusters)
	}
	// Without counts the same input is noise.
	res2, err := DBSCAN(hashes, nil, DefaultDBSCANConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res2.NumClusters != 0 {
		t.Fatalf("expected 0 clusters without counts, got %d", res2.NumClusters)
	}
}

func TestDBSCANLowerEpsMoreNoise(t *testing.T) {
	// Mirrors Appendix A: smaller eps yields at least as much noise.
	hashes, _ := makeClusteredHashes(11, 5, 15, 6, 20)
	frac := func(eps int) float64 {
		res, err := DBSCAN(hashes, nil, DBSCANConfig{Eps: eps, MinPts: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res.NoiseFraction()
	}
	f2, f8 := frac(2), frac(8)
	if f2 < f8 {
		t.Fatalf("noise at eps=2 (%f) should be >= noise at eps=8 (%f)", f2, f8)
	}
}

func TestDBSCANLabelsWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		hashes, _ := makeClusteredHashes(seed, 3, 10, 4, 5)
		res, err := DBSCAN(hashes, nil, DefaultDBSCANConfig())
		if err != nil {
			return false
		}
		if len(res.Labels) != len(hashes) {
			return false
		}
		seen := map[int]bool{}
		noise := 0
		for _, lbl := range res.Labels {
			if lbl == Noise {
				noise++
				continue
			}
			if lbl < 0 || lbl >= res.NumClusters {
				return false
			}
			seen[lbl] = true
		}
		// Every label in [0, NumClusters) must be used and noise count match.
		return len(seen) == res.NumClusters && noise == res.NoiseCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMembersPartitionsNonNoisePoints(t *testing.T) {
	hashes, _ := makeClusteredHashes(21, 3, 12, 3, 8)
	res, err := DBSCAN(hashes, nil, DefaultDBSCANConfig())
	if err != nil {
		t.Fatal(err)
	}
	members := res.Members()
	count := 0
	seen := map[int]bool{}
	for lbl, m := range members {
		for _, i := range m {
			if res.Labels[i] != lbl {
				t.Fatalf("member %d assigned to wrong cluster", i)
			}
			if seen[i] {
				t.Fatalf("member %d appears in two clusters", i)
			}
			seen[i] = true
			count++
		}
	}
	if count != len(hashes)-res.NoiseCount {
		t.Fatalf("members cover %d points, want %d", count, len(hashes)-res.NoiseCount)
	}
}

func TestMedoid(t *testing.T) {
	// The medoid of {0b0000, 0b0001, 0b0011, 0b0111} under squared Hamming
	// cost: compute by hand. Distances from 0b0001: 1,0,1,2 -> cost 1+0+1+4=6,
	// which is minimal.
	hashes := []phash.Hash{0b0000, 0b0001, 0b0011, 0b0111}
	members := []int{0, 1, 2, 3}
	m, ok := Medoid(hashes, members)
	if !ok {
		t.Fatal("Medoid returned not ok")
	}
	if m != 1 {
		t.Fatalf("medoid = %d, want 1", m)
	}
}

func TestMedoidEdgeCases(t *testing.T) {
	if _, ok := Medoid(nil, nil); ok {
		t.Fatal("empty members should return not ok")
	}
	hashes := []phash.Hash{42}
	if m, ok := Medoid(hashes, []int{0}); !ok || m != 0 {
		t.Fatal("single member should be its own medoid")
	}
}

func TestMedoidMinimizesCost(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		hashes := make([]phash.Hash, n)
		members := make([]int, n)
		for i := range hashes {
			hashes[i] = phash.Hash(rng.Uint64())
			members[i] = i
		}
		m, ok := Medoid(hashes, members)
		if !ok {
			return false
		}
		cost := func(c int) int64 {
			var s int64
			for _, j := range members {
				d := int64(phash.Distance(hashes[c], hashes[j]))
				s += d * d
			}
			return s
		}
		mc := cost(m)
		for _, c := range members {
			if cost(c) < mc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMaterialize(t *testing.T) {
	hashes, _ := makeClusteredHashes(31, 3, 10, 3, 5)
	counts := make([]int, len(hashes))
	for i := range counts {
		counts[i] = 1 + i%3
	}
	res, err := DBSCAN(hashes, counts, DefaultDBSCANConfig())
	if err != nil {
		t.Fatal(err)
	}
	clusters := Materialize(hashes, counts, res)
	if len(clusters) != res.NumClusters {
		t.Fatalf("materialized %d clusters, want %d", len(clusters), res.NumClusters)
	}
	for _, c := range clusters {
		if len(c.Members) == 0 {
			t.Fatal("cluster with no members")
		}
		if c.MedoidHash != hashes[c.Medoid] {
			t.Fatal("medoid hash mismatch")
		}
		wantSize := 0
		for _, i := range c.Members {
			wantSize += counts[i]
			if res.Labels[i] != c.Label {
				t.Fatal("member label mismatch")
			}
		}
		if c.Size != wantSize {
			t.Fatalf("cluster size %d, want %d", c.Size, wantSize)
		}
	}
}

func TestMaterializeUnitWeights(t *testing.T) {
	hashes, _ := makeClusteredHashes(41, 2, 8, 2, 0)
	res, err := DBSCAN(hashes, nil, DefaultDBSCANConfig())
	if err != nil {
		t.Fatal(err)
	}
	clusters := Materialize(hashes, nil, res)
	for _, c := range clusters {
		if c.Size != len(c.Members) {
			t.Fatalf("unit-weight cluster size %d != member count %d", c.Size, len(c.Members))
		}
	}
}
