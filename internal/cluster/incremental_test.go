package cluster

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"github.com/memes-pipeline/memes/internal/phash"
)

// occurrenceStream flattens hashes+counts into the occurrence sequence a
// streaming caller would feed Add, preserving first-appearance order.
func occurrenceStream(hashes []phash.Hash, counts []int) []phash.Hash {
	var out []phash.Hash
	for i, h := range hashes {
		c := 1
		if counts != nil {
			c = counts[i]
		}
		for k := 0; k < c; k++ {
			out = append(out, h)
		}
	}
	return out
}

// distinct replays a hash occurrence stream into the distinct-hash +
// occurrence-count form DBSCANCtx takes.
func distinct(stream []phash.Hash) ([]phash.Hash, []int) {
	pos := make(map[phash.Hash]int)
	var hashes []phash.Hash
	var counts []int
	for _, h := range stream {
		if at, ok := pos[h]; ok {
			counts[at]++
			continue
		}
		pos[h] = len(hashes)
		hashes = append(hashes, h)
		counts = append(counts, 1)
	}
	return hashes, counts
}

// TestIncrementalMatchesBatch pins the core determinism invariant: for any
// split of an occurrence stream into Add batches, with a recluster after
// each batch, every intermediate Result is bitwise-identical to a batch
// DBSCANCtx over the prefix — across worker counts, with duplicates in the
// stream exercising the count-bump path.
func TestIncrementalMatchesBatch(t *testing.T) {
	base, counts := makeClusteredHashes(77, 5, 40, 5, 30)
	// Mix duplicates in: repeat a third of the hashes 1-3 extra times.
	rng := rand.New(rand.NewSource(7))
	for i := range counts {
		counts[i] = 1
		if rng.Intn(3) == 0 {
			counts[i] += 1 + rng.Intn(3)
		}
	}
	stream := occurrenceStream(base, counts)

	for _, workers := range []int{1, 8} {
		cfg := DBSCANConfig{Eps: 8, MinPts: 5, Workers: workers}
		inc, err := NewIncremental(cfg)
		if err != nil {
			t.Fatalf("NewIncremental: %v", err)
		}
		// Uneven batch sizes, including a batch that is pure duplicates of
		// already-registered hashes (no new points, only weight changes).
		cuts := []int{0, 1, len(stream) / 3, len(stream) / 3, len(stream) * 2 / 3, len(stream)}
		for b := 1; b < len(cuts); b++ {
			for _, h := range stream[cuts[b-1]:cuts[b]] {
				inc.Add(h)
			}
			got, err := inc.ReclusterCtx(context.Background())
			if err != nil {
				t.Fatalf("workers=%d batch=%d: ReclusterCtx: %v", workers, b, err)
			}
			prefixHashes, prefixCounts := distinct(stream[:cuts[b]])
			want, err := DBSCANCtx(context.Background(), prefixHashes, prefixCounts, cfg)
			if err != nil {
				t.Fatalf("workers=%d batch=%d: DBSCANCtx: %v", workers, b, err)
			}
			if !reflect.DeepEqual(got.Labels, want.Labels) {
				t.Fatalf("workers=%d batch=%d: labels diverge from batch run", workers, b)
			}
			if got.NumClusters != want.NumClusters || got.NoiseCount != want.NoiseCount {
				t.Fatalf("workers=%d batch=%d: got %d clusters/%d noise, want %d/%d",
					workers, b, got.NumClusters, got.NoiseCount, want.NumClusters, want.NoiseCount)
			}
		}
	}
}

// TestIncrementalSingleBatchMatchesBatch covers the lazy-init path: the
// first recluster over everything at once must equal DBSCANCtx exactly.
func TestIncrementalSingleBatchMatchesBatch(t *testing.T) {
	stream, _ := makeClusteredHashes(13, 4, 30, 5, 20)
	cfg := DBSCANConfig{Eps: 8, MinPts: 5}
	inc, err := NewIncremental(cfg)
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	for _, h := range stream {
		inc.Add(h)
	}
	got, err := inc.ReclusterCtx(context.Background())
	if err != nil {
		t.Fatalf("ReclusterCtx: %v", err)
	}
	// The stream may repeat hash values; Add folds repeats into counts, so
	// the batch oracle runs over the same distinct-hash form.
	hashes, counts := distinct(stream)
	want, err := DBSCANCtx(context.Background(), hashes, counts, cfg)
	if err != nil {
		t.Fatalf("DBSCANCtx: %v", err)
	}
	if !reflect.DeepEqual(got.Labels, want.Labels) {
		t.Fatal("single-batch incremental labels diverge from batch run")
	}
}

// TestIncrementalDuplicatesCanPromote pins that count bumps alone (no new
// hashes) can turn noise into a cluster on the next recluster.
func TestIncrementalDuplicatesCanPromote(t *testing.T) {
	cfg := DBSCANConfig{Eps: 2, MinPts: 5}
	inc, err := NewIncremental(cfg)
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	h := phash.Hash(0xdeadbeefcafef00d)
	inc.Add(h)
	res, err := inc.ReclusterCtx(context.Background())
	if err != nil {
		t.Fatalf("ReclusterCtx: %v", err)
	}
	if res.NumClusters != 0 || res.NoiseCount != 1 {
		t.Fatalf("lone occurrence should be noise, got %+v", res)
	}
	for i := 0; i < 4; i++ {
		inc.Add(h)
	}
	res, err = inc.ReclusterCtx(context.Background())
	if err != nil {
		t.Fatalf("ReclusterCtx after bumps: %v", err)
	}
	if res.NumClusters != 1 || res.NoiseCount != 0 || res.Labels[0] != 0 {
		t.Fatalf("5 occurrences should form a cluster, got %+v", res)
	}
}

// TestIncrementalEmpty pins the zero-point edge cases.
func TestIncrementalEmpty(t *testing.T) {
	inc, err := NewIncremental(DefaultDBSCANConfig())
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	res, err := inc.ReclusterCtx(context.Background())
	if err != nil {
		t.Fatalf("empty ReclusterCtx: %v", err)
	}
	if len(res.Labels) != 0 || res.NumClusters != 0 {
		t.Fatalf("empty state should yield empty result, got %+v", res)
	}
	if inc.Len() != 0 {
		t.Fatalf("Len = %d, want 0", inc.Len())
	}
}

// TestIncrementalRejectsBadConfig mirrors DBSCAN's config validation.
func TestIncrementalRejectsBadConfig(t *testing.T) {
	if _, err := NewIncremental(DBSCANConfig{Eps: -1, MinPts: 5}); err == nil {
		t.Fatal("negative eps should be rejected")
	}
	if _, err := NewIncremental(DBSCANConfig{Eps: 8, MinPts: 0}); err == nil {
		t.Fatal("zero minPts should be rejected")
	}
}

// TestIncrementalCancellation proves a cancelled context aborts the scan.
func TestIncrementalCancellation(t *testing.T) {
	hashes, _ := makeClusteredHashes(5, 3, 50, 5, 10)
	inc, err := NewIncremental(DBSCANConfig{Eps: 8, MinPts: 5, Workers: 4})
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	for _, h := range hashes {
		inc.Add(h)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := inc.ReclusterCtx(ctx); err == nil {
		t.Fatal("cancelled recluster should fail")
	}
}
