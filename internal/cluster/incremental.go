package cluster

import (
	"context"

	"github.com/memes-pipeline/memes/internal/parallel"
	"github.com/memes-pipeline/memes/internal/phash"
)

// Incremental carries DBSCAN's phase-one state — the distinct hashes, their
// occurrence counts, and their cached eps-neighbourhood lists — across
// re-clustering rounds, so absorbing a batch of new points costs one scan of
// the new points against the resident set instead of a full O(n²) rebuild.
//
// Points are registered with Add in occurrence order; the first appearance
// of a hash defines its index, exactly mirroring the distinct-hash
// extraction a batch run performs over the same occurrence sequence. Each
// ReclusterCtx brings the cached neighbourhoods up to date and runs the same
// serial expansion as DBSCANCtx, so for any split of the input into Add
// batches the labels are bitwise-identical to a single batch run over the
// union.
type Incremental struct {
	cfg    DBSCANConfig
	hashes []phash.Hash
	counts []int
	pos    map[phash.Hash]int32
	// neigh caches the eps-neighbourhood of every point in [0, primed);
	// points added since the last recluster have no list yet.
	neigh  [][]int32
	primed int
}

// NewIncremental returns an empty incremental clustering state.
func NewIncremental(cfg DBSCANConfig) (*Incremental, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Incremental{cfg: cfg, pos: make(map[phash.Hash]int32)}, nil
}

// Add registers one occurrence of h. A previously seen hash only bumps its
// occurrence count (density changes are picked up by the next recluster); a
// new hash is appended, its neighbourhood deferred until ReclusterCtx.
func (s *Incremental) Add(h phash.Hash) {
	if at, ok := s.pos[h]; ok {
		s.counts[at]++
		return
	}
	s.pos[h] = int32(len(s.hashes))
	s.hashes = append(s.hashes, h)
	s.counts = append(s.counts, 1)
}

// Len returns the number of distinct hashes registered.
func (s *Incremental) Len() int { return len(s.hashes) }

// Points returns the live hash and occurrence-count slices, indexed by point.
// The slices are owned by the state and must not be mutated; they grow on
// Add, so callers must not retain them across calls.
func (s *Incremental) Points() ([]phash.Hash, []int) { return s.hashes, s.counts }

// ReclusterCtx extends the cached neighbourhoods with every point added
// since the previous call — each new point is scanned against the resident
// set plus the new batch, never resident-resident pairs again — and runs the
// serial expansion over the merged lists. The Result is bitwise-identical to
// DBSCANCtx over the same hashes and counts. Neighbourhood stats cover only
// the points scanned by this call.
func (s *Incremental) ReclusterCtx(ctx context.Context) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(s.hashes)
	res := Result{Labels: make([]int, n)}
	if n == 0 {
		return res, ctx.Err()
	}
	phaseStart := now()
	scanned := n - s.primed
	if err := s.extendNeighbourhoods(ctx); err != nil {
		return Result{}, err
	}
	// Weights are recomputed from scratch every round: a count bump on a
	// resident hash changes the weight of every point holding it in its
	// neighbourhood, and rescanning is cheaper than tracking inverted lists.
	weights := make([]int, n)
	if err := parallel.ForCtx(ctx, n, s.cfg.Workers, func(i int) {
		total := 0
		for _, j := range s.neigh[i] {
			total += s.counts[j]
		}
		weights[i] = total
	}); err != nil {
		return Result{}, err
	}
	res.Neighbourhoods = NeighbourhoodStats{Duration: since(phaseStart), Points: scanned}
	expand(s.neigh, weights, s.cfg.MinPts, &res)
	return res, nil
}

// extendNeighbourhoods merges the points in [primed, n) into the cached
// lists. The merged lists are equal to what a fresh NeighbourhoodsCtx over
// all n hashes would return: resident rows are extended in ascending new
// index order (every appended index exceeds every resident one, so rows stay
// sorted), and each new row is the concatenation of its resident hits and
// its offset in-batch hits, both already ascending.
func (s *Incremental) extendNeighbourhoods(ctx context.Context) error {
	n := len(s.hashes)
	if s.primed == n {
		return ctx.Err()
	}
	if s.primed == 0 {
		neigh, err := phash.NeighbourhoodsCtx(ctx, s.hashes, s.cfg.Eps, s.cfg.Workers)
		if err != nil {
			return err
		}
		s.neigh = neigh
		s.primed = n
		return nil
	}
	resident, fresh := s.hashes[:s.primed], s.hashes[s.primed:]
	cross, err := phash.CrossNeighbourhoodsCtx(ctx, resident, fresh, s.cfg.Eps, s.cfg.Workers)
	if err != nil {
		return err
	}
	among, err := phash.NeighbourhoodsCtx(ctx, fresh, s.cfg.Eps, s.cfg.Workers)
	if err != nil {
		return err
	}
	off := int32(s.primed)
	for i := range fresh {
		row := make([]int32, 0, len(cross[i])+len(among[i]))
		row = append(row, cross[i]...)
		for _, j := range among[i] {
			row = append(row, off+j)
		}
		s.neigh = append(s.neigh, row)
		for _, j := range cross[i] {
			// Safe to append in place: NeighbourhoodsCtx's parallel kernel
			// hands out capacity-capped arena sub-slices (append copies),
			// and rows from the serial kernels never share backing arrays.
			s.neigh[j] = append(s.neigh[j], off+int32(i))
		}
	}
	s.primed = n
	return nil
}
