package cluster

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"github.com/memes-pipeline/memes/internal/phash"
)

// dbscanReference is the historical single-threaded DBSCAN: a fresh Radius
// query per visited point, with neighbourhoods re-queried during expansion.
// The two-phase parallel implementation must reproduce its labels bit for
// bit — this is the old-vs-new oracle for the property test and the fuzz
// target below.
func dbscanReference(hashes []phash.Hash, counts []int, cfg DBSCANConfig) Result {
	n := len(hashes)
	res := Result{Labels: make([]int, n)}
	if n == 0 {
		return res
	}
	weight := func(i int) int {
		if counts == nil {
			return 1
		}
		return counts[i]
	}
	index := phash.NewMultiIndex()
	for i, h := range hashes {
		index.Insert(h, int64(i))
	}
	const unvisited = -2
	labels := res.Labels
	for i := range labels {
		labels[i] = unvisited
	}
	neighbours := func(i int) ([]int, int) {
		matches := index.Radius(hashes[i], cfg.Eps)
		var idxs []int
		total := 0
		for _, m := range matches {
			for _, id := range m.IDs {
				idxs = append(idxs, int(id))
				total += weight(int(id))
			}
		}
		return idxs, total
	}
	clusterID := 0
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		neigh, total := neighbours(i)
		if total < cfg.MinPts {
			labels[i] = Noise
			continue
		}
		labels[i] = clusterID
		queue := append([]int(nil), neigh...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == Noise {
				labels[j] = clusterID
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = clusterID
			jNeigh, jTotal := neighbours(j)
			if jTotal >= cfg.MinPts {
				queue = append(queue, jNeigh...)
			}
		}
		clusterID++
	}
	res.NumClusters = clusterID
	for _, lbl := range labels {
		if lbl == Noise {
			res.NoiseCount++
		}
	}
	return res
}

func assertSameClustering(t *testing.T, got Result, want Result, label string) {
	t.Helper()
	if len(got.Labels) != len(want.Labels) {
		t.Fatalf("%s: %d labels, want %d", label, len(got.Labels), len(want.Labels))
	}
	for i := range got.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("%s: label[%d] = %d, want %d", label, i, got.Labels[i], want.Labels[i])
		}
	}
	if got.NumClusters != want.NumClusters || got.NoiseCount != want.NoiseCount {
		t.Fatalf("%s: (clusters=%d noise=%d), want (clusters=%d noise=%d)",
			label, got.NumClusters, got.NoiseCount, want.NumClusters, want.NoiseCount)
	}
}

// TestDBSCANMatchesReferenceAcrossWorkers is the tentpole determinism
// property: over random corpora with random counts, eps, and minPts, the
// two-phase implementation is bitwise-identical to the historical
// re-querying implementation for every worker count.
func TestDBSCANMatchesReferenceAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(5)
		size := 5 + rng.Intn(25)
		maxFlip := 1 + rng.Intn(6)
		noise := rng.Intn(20)
		hashes, _ := makeClusteredHashes(rng.Int63(), k, size, maxFlip, noise)
		var counts []int
		if rng.Intn(2) == 0 {
			counts = make([]int, len(hashes))
			for i := range counts {
				counts[i] = 1 + rng.Intn(4)
			}
		}
		cfg := DBSCANConfig{Eps: 1 + rng.Intn(12), MinPts: 1 + rng.Intn(6)}
		want := dbscanReference(hashes, counts, cfg)
		for _, workers := range []int{0, 1, 2, 3, 8} {
			cfg.Workers = workers
			got, err := DBSCAN(hashes, counts, cfg)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			assertSameClustering(t, got, want, "trial/workers")
			if got.Neighbourhoods.Points != len(hashes) {
				t.Fatalf("trial %d workers %d: neighbourhood points %d, want %d",
					trial, workers, got.Neighbourhoods.Points, len(hashes))
			}
		}
	}
}

// FuzzDBSCANEquivalence fuzzes hashes, counts, and the whole configuration
// space (eps, minPts, workers) against the historical implementation.
func FuzzDBSCANEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(5), uint8(4), []byte("0123456789abcdef0123456789abcdef"))
	f.Add(int64(7), uint8(2), uint8(1), uint8(0), []byte{})
	f.Add(int64(42), uint8(64), uint8(3), uint8(7), []byte("\x00\x00\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, seed int64, eps, minPts, workers uint8, data []byte) {
		cfg := DBSCANConfig{
			Eps:     int(eps) % (phash.MaxDistance + 1),
			MinPts:  1 + int(minPts)%8,
			Workers: int(workers) % 9,
		}
		var hashes []phash.Hash
		for len(data) >= 8 {
			hashes = append(hashes, phash.Hash(binary.LittleEndian.Uint64(data)))
			data = data[8:]
		}
		// Pad with clustered hashes so density structure exists even for
		// tiny fuzz inputs.
		rng := rand.New(rand.NewSource(seed))
		extra, _ := makeClusteredHashes(seed, 1+rng.Intn(3), 4+rng.Intn(8), 3, rng.Intn(4))
		hashes = append(hashes, extra...)
		var counts []int
		if rng.Intn(2) == 0 {
			counts = make([]int, len(hashes))
			for i := range counts {
				counts[i] = 1 + rng.Intn(3)
			}
		}
		want := dbscanReference(hashes, counts, cfg)
		got, err := DBSCAN(hashes, counts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameClustering(t, got, want, "fuzz")
	})
}
