package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// lineDist returns a distance function over points on a line.
func lineDist(points []float64) func(i, j int) float64 {
	return func(i, j int) float64 { return math.Abs(points[i] - points[j]) }
}

func TestAgglomerativeErrors(t *testing.T) {
	if _, err := Agglomerative(0, nil, AverageLinkage); err == nil {
		t.Fatal("expected error for zero items")
	}
	_, err := Agglomerative(2, func(i, j int) float64 { return math.NaN() }, AverageLinkage)
	if err == nil {
		t.Fatal("expected error for NaN distance")
	}
	_, err = Agglomerative(2, func(i, j int) float64 { return -1 }, AverageLinkage)
	if err == nil {
		t.Fatal("expected error for negative distance")
	}
}

func TestAgglomerativeSingleItem(t *testing.T) {
	d, err := Agglomerative(1, func(i, j int) float64 { return 0 }, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root != 0 || d.NumLeaves() != 1 {
		t.Fatalf("unexpected single-item dendrogram: %+v", d)
	}
	labels := d.Cut(0.5)
	if len(labels) != 1 || labels[0] != 0 {
		t.Fatalf("unexpected cut labels %v", labels)
	}
}

func TestAgglomerativeTwoGroups(t *testing.T) {
	// Two tight groups far apart on a line.
	points := []float64{0, 0.1, 0.2, 10, 10.1, 10.2}
	d, err := Agglomerative(len(points), lineDist(points), AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumLeaves() != len(points) {
		t.Fatalf("NumLeaves = %d, want %d", d.NumLeaves(), len(points))
	}
	// Cutting at height 1 must yield exactly two clusters separating the
	// groups.
	labels := d.Cut(1.0)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("first group split: %v", labels)
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Fatalf("second group split: %v", labels)
	}
	if labels[0] == labels[3] {
		t.Fatalf("groups merged: %v", labels)
	}
	// Cutting above the maximum merge height yields one cluster.
	all := d.Cut(100)
	for _, l := range all {
		if l != all[0] {
			t.Fatalf("cut above max height should give one cluster: %v", all)
		}
	}
	// Cutting at height 0 yields n singleton clusters.
	single := d.Cut(0)
	seen := map[int]bool{}
	for _, l := range single {
		if seen[l] {
			t.Fatalf("cut at 0 should give singletons: %v", single)
		}
		seen[l] = true
	}
}

func TestAgglomerativeRootCoversAllLeaves(t *testing.T) {
	points := []float64{1, 2, 3, 7, 8, 9, 20}
	d, err := Agglomerative(len(points), lineDist(points), AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	leaves := d.Leaves(d.Root)
	if len(leaves) != len(points) {
		t.Fatalf("root covers %d leaves, want %d", len(leaves), len(points))
	}
	seen := map[int]bool{}
	for _, l := range leaves {
		if seen[l] {
			t.Fatalf("duplicate leaf %d", l)
		}
		seen[l] = true
	}
	if d.Nodes[d.Root].Count != len(points) {
		t.Fatalf("root count %d, want %d", d.Nodes[d.Root].Count, len(points))
	}
}

func TestAgglomerativeMergeHeightsMonotoneForSingleLinkage(t *testing.T) {
	// Single-linkage merge heights are non-decreasing in merge order.
	rng := rand.New(rand.NewSource(5))
	points := make([]float64, 12)
	for i := range points {
		points[i] = rng.Float64() * 100
	}
	d, err := Agglomerative(len(points), lineDist(points), SingleLinkage)
	if err != nil {
		t.Fatal(err)
	}
	heights := d.MergeHeights()
	for i := 1; i < len(heights); i++ {
		if heights[i] < heights[i-1]-1e-9 {
			t.Fatalf("single-linkage heights not monotone: %v", heights)
		}
	}
}

func TestLinkageVariantsOrdering(t *testing.T) {
	// For the same data, complete linkage merge heights dominate average,
	// which dominates single, at the final merge.
	points := []float64{0, 1, 2, 10, 11, 12}
	final := func(l Linkage) float64 {
		d, err := Agglomerative(len(points), lineDist(points), l)
		if err != nil {
			t.Fatal(err)
		}
		return d.Nodes[d.Root].Height
	}
	s, a, c := final(SingleLinkage), final(AverageLinkage), final(CompleteLinkage)
	if !(s <= a && a <= c) {
		t.Fatalf("expected single <= average <= complete, got %v %v %v", s, a, c)
	}
}

func TestLinkageString(t *testing.T) {
	if AverageLinkage.String() != "average" || SingleLinkage.String() != "single" ||
		CompleteLinkage.String() != "complete" {
		t.Fatal("unexpected linkage names")
	}
	if Linkage(99).String() == "" {
		t.Fatal("unknown linkage should still stringify")
	}
}

func TestCutConsistentWithLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	points := make([]float64, 15)
	for i := range points {
		points[i] = rng.Float64() * 50
	}
	d, err := Agglomerative(len(points), lineDist(points), AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	labels := d.Cut(5)
	if len(labels) != len(points) {
		t.Fatalf("labels length %d, want %d", len(labels), len(points))
	}
	// Number of distinct labels must be between 1 and n.
	distinct := map[int]bool{}
	for _, l := range labels {
		distinct[l] = true
	}
	if len(distinct) < 1 || len(distinct) > len(points) {
		t.Fatalf("implausible cluster count %d", len(distinct))
	}
}
