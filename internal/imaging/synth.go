// Package imaging procedurally synthesises meme-like images and applies the
// perturbations (crops, noise, brightness shifts, text-box overlays) that the
// paper's real-world corpus exhibits between variants of the same meme.
//
// The paper worked with 160M crawled images; this repository cannot ship
// those, so imaging provides a deterministic substitute: every meme
// "template" is a procedurally drawn scene seeded by a template identifier,
// and variants are derived from the template by composable transformations
// that preserve perceptual similarity (small pHash distance) while distinct
// templates are perceptually far apart. This preserves exactly the property
// the pipeline depends on.
package imaging

import (
	"image"
	"image/color"
	"math"
	"math/rand"
)

// DefaultSize is the side length, in pixels, of generated template images.
const DefaultSize = 128

// Template procedurally renders a meme template image identified by seed.
// The same seed always produces the same image. Different seeds produce
// images that are, with overwhelming probability, perceptually distant.
func Template(seed int64) *image.RGBA {
	return TemplateSized(seed, DefaultSize, DefaultSize)
}

// TemplateSized renders a template with explicit dimensions.
func TemplateSized(seed int64, w, h int) *image.RGBA {
	rng := rand.New(rand.NewSource(seed))
	img := image.NewRGBA(image.Rect(0, 0, w, h))

	// Background: a smooth two-colour diagonal gradient.
	c1 := randColor(rng)
	c2 := randColor(rng)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			t := (float64(x)/float64(w) + float64(y)/float64(h)) / 2
			img.SetRGBA(x, y, lerpColor(c1, c2, t))
		}
	}

	// Foreground structure: a handful of large geometric shapes. Their
	// placement dominates the low-frequency DCT coefficients, so different
	// seeds yield different pHashes.
	shapes := 3 + rng.Intn(4)
	for s := 0; s < shapes; s++ {
		sc := randColor(rng)
		switch rng.Intn(3) {
		case 0:
			cx := rng.Intn(w)
			cy := rng.Intn(h)
			r := w/8 + rng.Intn(w/4)
			fillCircle(img, cx, cy, r, sc)
		case 1:
			x0 := rng.Intn(w)
			y0 := rng.Intn(h)
			bw := w/6 + rng.Intn(w/3)
			bh := h/6 + rng.Intn(h/3)
			fillRect(img, x0, y0, x0+bw, y0+bh, sc)
		default:
			x0 := rng.Intn(w)
			y0 := rng.Intn(h)
			x1 := rng.Intn(w)
			y1 := rng.Intn(h)
			thickness := 2 + rng.Intn(6)
			drawThickLine(img, x0, y0, x1, y1, thickness, sc)
		}
	}

	// Horizontal banding reminiscent of macro-text regions.
	if rng.Float64() < 0.7 {
		bandH := h / 8
		bandColor := color.RGBA{R: 245, G: 245, B: 245, A: 255}
		if rng.Float64() < 0.5 {
			bandColor = color.RGBA{R: 15, G: 15, B: 15, A: 255}
		}
		fillRect(img, 0, 0, w, bandH, bandColor)
		fillRect(img, 0, h-bandH, w, h, bandColor)
	}
	return img
}

// Variant derives a perturbed variant of a base image. variantSeed controls
// which perturbations are applied; strength in (0, 1] scales their magnitude.
// Small strengths (<= 0.35) keep the variant within the pipeline's clustering
// threshold of the base image for the vast majority of seeds.
func Variant(base *image.RGBA, variantSeed int64, strength float64) *image.RGBA {
	if strength <= 0 {
		strength = 0.1
	}
	if strength > 1 {
		strength = 1
	}
	rng := rand.New(rand.NewSource(variantSeed))
	img := cloneRGBA(base)

	// Brightness / contrast jitter.
	if rng.Float64() < 0.8 {
		delta := (rng.Float64()*2 - 1) * 40 * strength
		gain := 1 + (rng.Float64()*2-1)*0.2*strength
		AdjustBrightnessContrast(img, delta, gain)
	}
	// Gaussian-ish pixel noise.
	if rng.Float64() < 0.7 {
		AddNoise(img, rng, 18*strength)
	}
	// Small overlay box (e.g. added caption or watermark).
	if rng.Float64() < 0.6 {
		b := img.Bounds()
		bw := int(float64(b.Dx()) * (0.1 + 0.15*strength*rng.Float64()))
		bh := int(float64(b.Dy()) * (0.05 + 0.1*strength*rng.Float64()))
		x0 := rng.Intn(maxInt(b.Dx()-bw, 1))
		y0 := rng.Intn(maxInt(b.Dy()-bh, 1))
		fillRect(img, x0, y0, x0+bw, y0+bh, randColor(rng))
	}
	// Slight crop-and-rescale.
	if rng.Float64() < 0.5 {
		img = CropAndRescale(img, rng, 0.05*strength)
	}
	return img
}

// Screenshot renders a synthetic social-network screenshot: a mostly flat
// light background, uniform margins, and rows of dark horizontal "text"
// lines with an avatar block. These are the structural features the
// screenshot classifier keys on.
func Screenshot(seed int64, w, h int) *image.RGBA {
	rng := rand.New(rand.NewSource(seed))
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	bg := color.RGBA{R: 252, G: 252, B: 254, A: 255}
	if rng.Float64() < 0.3 { // dark-mode screenshot
		bg = color.RGBA{R: 22, G: 24, B: 28, A: 255}
	}
	fillRect(img, 0, 0, w, h, bg)

	textColor := color.RGBA{R: 40, G: 42, B: 48, A: 255}
	if bg.R < 128 {
		textColor = color.RGBA{R: 220, G: 222, B: 228, A: 255}
	}
	// Avatar block.
	avatar := randColor(rng)
	avSize := h / 10
	fillRect(img, w/20, h/20, w/20+avSize, h/20+avSize, avatar)

	// Header line next to the avatar.
	fillRect(img, w/20+avSize+4, h/20+avSize/4, w/2, h/20+avSize/4+3, textColor)

	// Body text lines: thin horizontal bars with ragged right edges.
	y := h/20 + avSize + h/20
	lineH := maxInt(h/40, 2)
	for y < h-h/10 {
		lineW := int(float64(w) * (0.55 + 0.4*rng.Float64()))
		fillRect(img, w/20, y, w/20+lineW, y+lineH, textColor)
		y += lineH * 3
		if rng.Float64() < 0.15 {
			y += lineH * 3 // paragraph break
		}
	}
	// Engagement bar at the bottom.
	fillRect(img, w/20, h-h/12, w-w/20, h-h/12+2, color.RGBA{R: 150, G: 150, B: 160, A: 255})
	return img
}

// AdjustBrightnessContrast applies v' = (v-128)*gain + 128 + delta, clamped,
// to every channel of img in place.
func AdjustBrightnessContrast(img *image.RGBA, delta, gain float64) {
	p := img.Pix
	for i := 0; i < len(p); i += 4 {
		for c := 0; c < 3; c++ {
			v := (float64(p[i+c])-128)*gain + 128 + delta
			p[i+c] = clampByte(v)
		}
	}
}

// AddNoise adds zero-mean noise with the given standard deviation to every
// pixel of img in place.
func AddNoise(img *image.RGBA, rng *rand.Rand, stddev float64) {
	p := img.Pix
	for i := 0; i < len(p); i += 4 {
		n := rng.NormFloat64() * stddev
		for c := 0; c < 3; c++ {
			p[i+c] = clampByte(float64(p[i+c]) + n)
		}
	}
}

// CropAndRescale crops up to frac of each border (chosen randomly) and
// rescales back to the original dimensions with nearest-neighbour sampling.
func CropAndRescale(img *image.RGBA, rng *rand.Rand, frac float64) *image.RGBA {
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	cx0 := int(float64(w) * frac * rng.Float64())
	cy0 := int(float64(h) * frac * rng.Float64())
	cx1 := w - int(float64(w)*frac*rng.Float64())
	cy1 := h - int(float64(h)*frac*rng.Float64())
	if cx1-cx0 < 8 || cy1-cy0 < 8 {
		return cloneRGBA(img)
	}
	out := image.NewRGBA(image.Rect(0, 0, w, h))
	cw, ch := cx1-cx0, cy1-cy0
	for y := 0; y < h; y++ {
		sy := cy0 + y*ch/h
		for x := 0; x < w; x++ {
			sx := cx0 + x*cw/w
			out.SetRGBA(x, y, img.RGBAAt(sx, sy))
		}
	}
	return out
}

// GrayMatrix converts an image to a float64 luminance matrix in row-major
// order, returning the matrix and its dimensions.
func GrayMatrix(img image.Image) ([]float64, int, int) {
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	out := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, bl, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			out[y*w+x] = 0.299*float64(r>>8) + 0.587*float64(g>>8) + 0.114*float64(bl>>8)
		}
	}
	return out, w, h
}

func cloneRGBA(src *image.RGBA) *image.RGBA {
	dst := image.NewRGBA(src.Bounds())
	copy(dst.Pix, src.Pix)
	return dst
}

func fillRect(img *image.RGBA, x0, y0, x1, y1 int, c color.RGBA) {
	b := img.Bounds()
	if x0 < b.Min.X {
		x0 = b.Min.X
	}
	if y0 < b.Min.Y {
		y0 = b.Min.Y
	}
	if x1 > b.Max.X {
		x1 = b.Max.X
	}
	if y1 > b.Max.Y {
		y1 = b.Max.Y
	}
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			img.SetRGBA(x, y, c)
		}
	}
}

func fillCircle(img *image.RGBA, cx, cy, r int, c color.RGBA) {
	b := img.Bounds()
	for y := cy - r; y <= cy+r; y++ {
		if y < b.Min.Y || y >= b.Max.Y {
			continue
		}
		for x := cx - r; x <= cx+r; x++ {
			if x < b.Min.X || x >= b.Max.X {
				continue
			}
			dx, dy := x-cx, y-cy
			if dx*dx+dy*dy <= r*r {
				img.SetRGBA(x, y, c)
			}
		}
	}
}

func drawThickLine(img *image.RGBA, x0, y0, x1, y1, thickness int, c color.RGBA) {
	dx := float64(x1 - x0)
	dy := float64(y1 - y0)
	length := math.Hypot(dx, dy)
	if length < 1 {
		fillRect(img, x0-thickness, y0-thickness, x0+thickness, y0+thickness, c)
		return
	}
	steps := int(length)
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		px := x0 + int(t*dx)
		py := y0 + int(t*dy)
		fillRect(img, px-thickness/2, py-thickness/2, px+thickness/2+1, py+thickness/2+1, c)
	}
}

func randColor(rng *rand.Rand) color.RGBA {
	return color.RGBA{
		R: uint8(rng.Intn(256)),
		G: uint8(rng.Intn(256)),
		B: uint8(rng.Intn(256)),
		A: 255,
	}
}

func lerpColor(a, b color.RGBA, t float64) color.RGBA {
	return color.RGBA{
		R: uint8(float64(a.R) + (float64(b.R)-float64(a.R))*t),
		G: uint8(float64(a.G) + (float64(b.G)-float64(a.G))*t),
		B: uint8(float64(a.B) + (float64(b.B)-float64(a.B))*t),
		A: 255,
	}
}

func clampByte(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
