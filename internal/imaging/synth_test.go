package imaging

import (
	"image"
	"image/color"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/memes-pipeline/memes/internal/phash"
)

func TestTemplateDeterministic(t *testing.T) {
	a := Template(42)
	b := Template(42)
	if len(a.Pix) != len(b.Pix) {
		t.Fatal("dimension mismatch")
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatalf("pixel %d differs between renders of the same seed", i)
		}
	}
}

func TestTemplateDifferentSeedsDiffer(t *testing.T) {
	a := Template(1)
	b := Template(2)
	same := 0
	for i := range a.Pix {
		if a.Pix[i] == b.Pix[i] {
			same++
		}
	}
	if same == len(a.Pix) {
		t.Fatal("different seeds produced identical images")
	}
}

func TestTemplateSized(t *testing.T) {
	img := TemplateSized(7, 64, 96)
	if img.Bounds().Dx() != 64 || img.Bounds().Dy() != 96 {
		t.Fatalf("unexpected dimensions %v", img.Bounds())
	}
}

func TestVariantStaysPerceptuallyClose(t *testing.T) {
	close := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		base := Template(int64(100 + i))
		hBase, err := phash.FromImage(base)
		if err != nil {
			t.Fatal(err)
		}
		v := Variant(base, int64(9000+i), 0.25)
		hVar, err := phash.FromImage(v)
		if err != nil {
			t.Fatal(err)
		}
		if phash.Distance(hBase, hVar) <= 10 {
			close++
		}
	}
	if close < trials*7/10 {
		t.Fatalf("only %d/%d low-strength variants stayed close to their template", close, trials)
	}
}

func TestDistinctTemplatesPerceptuallyFar(t *testing.T) {
	far := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		a := Template(int64(i))
		b := Template(int64(i + 1000))
		ha, _ := phash.FromImage(a)
		hb, _ := phash.FromImage(b)
		if phash.Distance(ha, hb) > 10 {
			far++
		}
	}
	if far < trials*7/10 {
		t.Fatalf("only %d/%d distinct templates are perceptually far apart", far, trials)
	}
}

func TestVariantDoesNotMutateBase(t *testing.T) {
	base := Template(3)
	before := make([]uint8, len(base.Pix))
	copy(before, base.Pix)
	_ = Variant(base, 77, 0.9)
	for i := range before {
		if base.Pix[i] != before[i] {
			t.Fatal("Variant mutated the base image")
		}
	}
}

func TestVariantStrengthClamping(t *testing.T) {
	base := Template(5)
	// Out-of-range strengths must not panic and must return a valid image.
	for _, s := range []float64{-1, 0, 2} {
		v := Variant(base, 1, s)
		if v.Bounds().Dx() != base.Bounds().Dx() {
			t.Fatalf("variant with strength %v has wrong size", s)
		}
	}
}

func TestScreenshotStructure(t *testing.T) {
	img := Screenshot(10, 200, 300)
	if img.Bounds().Dx() != 200 || img.Bounds().Dy() != 300 {
		t.Fatalf("unexpected dimensions %v", img.Bounds())
	}
	// Screenshots should be dominated by near-uniform background: measure the
	// fraction of pixels equal to the most common colour.
	counts := map[color.RGBA]int{}
	for y := 0; y < 300; y++ {
		for x := 0; x < 200; x++ {
			counts[img.RGBAAt(x, y)]++
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/float64(200*300) < 0.4 {
		t.Fatalf("screenshot background not dominant: %f", float64(max)/float64(200*300))
	}
}

func TestScreenshotVsTemplateDistinguishable(t *testing.T) {
	// Screenshots have a dominant flat background colour; procedural meme
	// templates (gradient backgrounds) do not. This is the structural property
	// the screenshot classifier's features exploit.
	dominance := func(img *image.RGBA) float64 {
		b := img.Bounds()
		counts := map[color.RGBA]int{}
		for y := b.Min.Y; y < b.Max.Y; y++ {
			for x := b.Min.X; x < b.Max.X; x++ {
				counts[img.RGBAAt(x, y)]++
			}
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(b.Dx()*b.Dy())
	}
	sDom, tDom := 0.0, 0.0
	const n = 10
	for i := 0; i < n; i++ {
		sDom += dominance(Screenshot(int64(i), 128, 128))
		tDom += dominance(Template(int64(i)))
	}
	if sDom <= tDom {
		t.Fatalf("screenshot background dominance (%f) should exceed template dominance (%f)", sDom/n, tDom/n)
	}
}

func TestAdjustBrightnessContrastClamps(t *testing.T) {
	img := image.NewRGBA(image.Rect(0, 0, 2, 2))
	img.SetRGBA(0, 0, color.RGBA{R: 250, G: 250, B: 250, A: 255})
	img.SetRGBA(1, 1, color.RGBA{R: 5, G: 5, B: 5, A: 255})
	AdjustBrightnessContrast(img, 100, 1.5)
	c := img.RGBAAt(0, 0)
	if c.R != 255 || c.G != 255 || c.B != 255 {
		t.Fatalf("expected clamp to 255, got %+v", c)
	}
	AdjustBrightnessContrast(img, -300, 1)
	c = img.RGBAAt(1, 1)
	if c.R != 0 {
		t.Fatalf("expected clamp to 0, got %+v", c)
	}
}

func TestAddNoiseBounded(t *testing.T) {
	img := Template(9)
	rng := rand.New(rand.NewSource(1))
	AddNoise(img, rng, 10)
	// All pixel values remain valid bytes by construction; just ensure alpha
	// is untouched.
	for i := 3; i < len(img.Pix); i += 4 {
		if img.Pix[i] != 255 {
			t.Fatal("noise must not modify alpha")
		}
	}
}

func TestCropAndRescalePreservesDimensions(t *testing.T) {
	img := Template(11)
	rng := rand.New(rand.NewSource(2))
	out := CropAndRescale(img, rng, 0.1)
	if out.Bounds() != img.Bounds() {
		t.Fatalf("crop changed bounds: %v vs %v", out.Bounds(), img.Bounds())
	}
}

func TestGrayMatrixDimensions(t *testing.T) {
	img := TemplateSized(13, 40, 30)
	pix, w, h := GrayMatrix(img)
	if w != 40 || h != 30 || len(pix) != 1200 {
		t.Fatalf("unexpected gray matrix shape %dx%d len %d", w, h, len(pix))
	}
	for _, v := range pix {
		if v < 0 || v > 255 {
			t.Fatalf("gray value out of range: %v", v)
		}
	}
}

func TestClampByteProperty(t *testing.T) {
	f := func(v float64) bool {
		b := clampByte(v)
		return b <= 255
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLerpColorEndpoints(t *testing.T) {
	a := color.RGBA{R: 10, G: 20, B: 30, A: 255}
	b := color.RGBA{R: 200, G: 210, B: 220, A: 255}
	if got := lerpColor(a, b, 0); got != a {
		t.Fatalf("lerp at 0 = %+v, want %+v", got, a)
	}
	got := lerpColor(a, b, 1)
	if got.R != b.R || got.G != b.G || got.B != b.B {
		t.Fatalf("lerp at 1 = %+v, want %+v", got, b)
	}
}
