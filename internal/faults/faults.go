// Package faults is the deterministic fault-injection registry behind the
// chaos harness: named fault points threaded through every crash-critical
// seam of the engine (snapshot write/sync/rename, delta-journal append,
// compaction, mmap load, hot swap, batcher dispatch) that can be armed to
// inject errors, latency, torn writes, panics, or hard process exits at
// exactly the moment a test chooses.
//
// The package compiles in two shapes, selected by the `faults` build tag:
//
//   - release builds (no tag): Inject, Arm, WrapWriter, and Reset are
//     inlinable no-ops with zero allocations and zero branches on armed
//     state, so the //memes:noalloc serve path pays nothing for carrying
//     the points;
//   - chaos builds (-tags faults): points are armed from the MEMES_FAULTS
//     environment variable (or Arm) and fire deterministically.
//
// The arming grammar is one or more `point=action` clauses separated by
// semicolons, each with optional comma-separated options:
//
//	MEMES_FAULTS='journal.append.write=error,after=3;snapshot.rename=exit'
//
// Actions: error (return an injected error), latency (sleep, see delay=),
// torn (a WrapWriter-wrapped writer persists only a prefix of the buffer,
// then errors — or hard-exits with then=exit), panic, exit (os.Exit, no
// deferred functions run: the process-crash model).
//
// Activation options: after=N fires from the Nth hit of the point on
// (default 1); times=N caps the number of activations (default unlimited);
// p=F with seed=S activates each eligible hit with probability F drawn from
// a splitmix64 stream seeded by S — the package's only randomness, fully
// reproducible from the seed, never the ambient math/rand; delay=D sets the
// latency duration; code=N the exit status.
//
// Every fault point is named where it is called; grep for faults.Inject to
// enumerate them.
package faults

import "errors"

// ErrInjected is the sentinel every injected error wraps, so call sites and
// tests can distinguish harness-made failures from organic ones with
// errors.Is.
var ErrInjected = errors.New("injected fault")

// ExitCode is the status an exit-action fault (and a torn write armed with
// then=exit) terminates the process with. Chaos harnesses assert on it to
// prove the child died at the armed point rather than from an organic crash.
const ExitCode = 17
