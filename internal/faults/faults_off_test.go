//go:build !faults

package faults

import (
	"bytes"
	"testing"
)

func TestReleaseInjectIsFree(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without -tags faults")
	}
	if err := Inject("journal.append.write"); err != nil {
		t.Fatalf("release Inject returned %v", err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := Inject("journal.append.write"); err != nil {
			t.Error(err)
		}
	}); allocs != 0 {
		t.Fatalf("release Inject allocates %.0f/op, want 0", allocs)
	}
}

func TestReleaseArmRejectsSpec(t *testing.T) {
	if err := Arm(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if err := Arm("snapshot.rename=exit"); err == nil {
		t.Fatal("release Arm accepted a non-empty spec; it must fail loudly")
	}
}

func TestReleaseWrapWriterIsIdentity(t *testing.T) {
	var buf bytes.Buffer
	if w := WrapWriter("snapshot.write", &buf); w != &buf {
		t.Fatalf("release WrapWriter returned %T, want the original writer", w)
	}
	if Hits("anything") != 0 {
		t.Fatal("release Hits must be 0")
	}
	Reset() // must not panic
}
