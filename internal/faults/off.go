//go:build !faults

package faults

import (
	"errors"
	"io"
)

// Enabled reports whether this binary was built with fault injection
// compiled in (-tags faults).
const Enabled = false

// Inject is the release-build no-op for the fault point named name. It
// compiles to an inlinable `return nil`, so annotating a seam costs nothing
// on the serve path.
func Inject(name string) error { return nil }

// Arm rejects any non-empty spec in release builds: arming faults against a
// binary that compiled them out would silently test nothing, so the caller
// must fail loudly instead.
func Arm(spec string) error {
	if spec != "" {
		return errors.New("faults: binary built without -tags faults; cannot arm " + spec)
	}
	return nil
}

// Reset is a no-op in release builds.
func Reset() {}

// Hits always reports 0 in release builds.
func Hits(name string) uint64 { return 0 }

// WrapWriter returns w unchanged in release builds.
func WrapWriter(name string, w io.Writer) io.Writer { return w }
