//go:build faults

package faults

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Enabled reports whether this binary was built with fault injection
// compiled in (-tags faults).
const Enabled = true

// registry holds the armed points. It is replaced wholesale by Arm/Reset;
// individual points carry their own mutable activation state.
var registry atomic.Pointer[map[string]*point]

func init() {
	if spec := os.Getenv("MEMES_FAULTS"); spec != "" {
		if err := Arm(spec); err != nil {
			// A misspelled spec silently testing nothing is the worst
			// failure mode a fault harness can have.
			panic(err)
		}
	}
}

type point struct {
	name     string
	action   string // error | latency | torn | panic | exit
	after    uint64 // fire from the Nth hit on (1-based)
	times    uint64 // max activations; 0 = unlimited
	prob     float64
	seeded   bool // prob gate armed (p= given)
	delay    time.Duration
	code     int
	thenExit bool // torn: hard-exit after the partial write

	mu    sync.Mutex
	hits  uint64
	fired uint64
	rng   uint64 // splitmix64 state, seeded by seed=
}

type injectedError struct{ name string }

func (e *injectedError) Error() string { return "faults: injected fault at " + e.name }
func (e *injectedError) Unwrap() error { return ErrInjected }

// Inject fires the fault armed at the named point, if any. Error-action
// points return an error wrapping ErrInjected; latency points sleep;
// panic/exit points do not return. Torn points are inert here — they fire
// through the writer installed by WrapWriter instead, so a seam can safely
// call both on the same name.
func Inject(name string) error {
	pt := lookup(name)
	if pt == nil || pt.action == "torn" {
		return nil
	}
	if !pt.activate() {
		return nil
	}
	switch pt.action {
	case "latency":
		time.Sleep(pt.delay)
		return nil
	case "panic":
		panic("faults: injected panic at " + pt.name)
	case "exit":
		pt.exit()
	}
	return &injectedError{name: pt.name}
}

// WrapWriter interposes on w when name is armed with the torn action: the
// activating Write persists only a prefix of the buffer and then either
// errors or (with then=exit) hard-exits, modelling a crash mid-write.
// Unarmed or non-torn points return w unchanged.
func WrapWriter(name string, w io.Writer) io.Writer {
	pt := lookup(name)
	if pt == nil || pt.action != "torn" {
		return w
	}
	return &tornWriter{pt: pt, w: w}
}

type tornWriter struct {
	pt *point
	w  io.Writer
}

func (t *tornWriter) Write(b []byte) (int, error) {
	if !t.pt.activate() {
		return t.w.Write(b)
	}
	n := len(b) / 2
	if n > 0 {
		m, err := t.w.Write(b[:n])
		if err != nil {
			return m, err
		}
	}
	if t.pt.thenExit {
		t.pt.exit()
	}
	return n, &injectedError{name: t.pt.name}
}

// Arm parses spec (see the package doc for the grammar) and installs it as
// the complete armed set, replacing any prior arming.
func Arm(spec string) error {
	pts, err := parseSpec(spec)
	if err != nil {
		return err
	}
	registry.Store(&pts)
	return nil
}

// Reset disarms every point.
func Reset() { registry.Store(nil) }

// Hits reports how many times the named point has been reached since it was
// armed (whether or not it activated). Returns 0 for unarmed points.
func Hits(name string) uint64 {
	pt := lookup(name)
	if pt == nil {
		return 0
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return pt.hits
}

func lookup(name string) *point {
	reg := registry.Load()
	if reg == nil {
		return nil
	}
	return (*reg)[name]
}

// activate counts a hit and decides whether the fault fires, honouring
// after=, times=, and the seeded probability gate.
func (p *point) activate() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hits++
	if p.hits < p.after {
		return false
	}
	if p.times > 0 && p.fired >= p.times {
		return false
	}
	if p.seeded {
		// splitmix64: the package's only randomness, reproducible from seed=.
		p.rng += 0x9e3779b97f4a7c15
		z := p.rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if float64(z>>11)/(1<<53) >= p.prob {
			return false
		}
	}
	p.fired++
	return true
}

// exit terminates the process without running deferred functions — the
// crash model the chaos harness restarts from.
func (p *point) exit() {
	fmt.Fprintf(os.Stderr, "faults: injected exit at %s (code %d)\n", p.name, p.code)
	os.Exit(p.code)
}

func parseSpec(spec string) (map[string]*point, error) {
	pts := make(map[string]*point)
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rest, ok := strings.Cut(clause, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("faults: clause %q: want point=action[,opts]", clause)
		}
		opts := strings.Split(rest, ",")
		pt := &point{name: name, action: strings.TrimSpace(opts[0]), after: 1, code: ExitCode}
		switch pt.action {
		case "error", "latency", "torn", "panic", "exit":
		default:
			return nil, fmt.Errorf("faults: point %s: unknown action %q", name, pt.action)
		}
		if pt.action == "latency" {
			pt.delay = 10 * time.Millisecond
		}
		for _, kv := range opts[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("faults: point %s: option %q: want key=value", name, kv)
			}
			var err error
			switch k {
			case "after":
				pt.after, err = strconv.ParseUint(v, 10, 64)
				if err == nil && pt.after == 0 {
					err = errors.New("after must be >= 1")
				}
			case "times":
				pt.times, err = strconv.ParseUint(v, 10, 64)
			case "p":
				pt.prob, err = strconv.ParseFloat(v, 64)
				if err == nil && (pt.prob < 0 || pt.prob > 1) {
					err = errors.New("p must be in [0,1]")
				}
				pt.seeded = true
			case "seed":
				pt.rng, err = strconv.ParseUint(v, 10, 64)
			case "delay":
				pt.delay, err = time.ParseDuration(v)
			case "code":
				pt.code, err = strconv.Atoi(v)
			case "then":
				if v != "exit" {
					err = fmt.Errorf("unknown then=%q (only exit)", v)
				}
				pt.thenExit = true
			default:
				err = errors.New("unknown option")
			}
			if err != nil {
				return nil, fmt.Errorf("faults: point %s: option %q: %v", name, kv, err)
			}
		}
		if pt.thenExit && pt.action != "torn" {
			return nil, fmt.Errorf("faults: point %s: then=exit only applies to torn", name)
		}
		pts[name] = pt
	}
	return pts, nil
}
