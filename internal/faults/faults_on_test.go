//go:build faults

package faults

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func arm(t *testing.T, spec string) {
	t.Helper()
	Reset()
	t.Cleanup(Reset)
	if err := Arm(spec); err != nil {
		t.Fatalf("Arm(%q): %v", spec, err)
	}
}

func TestInjectErrorAfterTimes(t *testing.T) {
	arm(t, "journal.append.write=error,after=3,times=2")
	var errs int
	for i := 1; i <= 6; i++ {
		err := Inject("journal.append.write")
		switch {
		case i == 3 || i == 4:
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: err=%v, want ErrInjected", i, err)
			}
			errs++
		default:
			if err != nil {
				t.Fatalf("hit %d: unexpected %v", i, err)
			}
		}
	}
	if errs != 2 {
		t.Fatalf("fired %d times, want 2", errs)
	}
	if got := Hits("journal.append.write"); got != 6 {
		t.Fatalf("Hits=%d, want 6", got)
	}
	if err := Inject("some.other.point"); err != nil {
		t.Fatalf("unarmed point: %v", err)
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	run := func() []bool {
		arm(t, "x=error,p=0.5,seed=99")
		out := make([]bool, 64)
		for i := range out {
			out[i] = Inject("x") != nil
		}
		return out
	}
	a, b := run(), run()
	var fired int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d diverged between identically seeded runs", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 fired %d/%d; want a mix", fired, len(a))
	}
}

//memes:nondet wall-clock lower-bound check on the injected sleep; never influences engine output
func TestLatencyAction(t *testing.T) {
	arm(t, "slow=latency,delay=30ms,times=1")
	start := time.Now()
	if err := Inject("slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency fault slept only %v", d)
	}
}

func TestPanicAction(t *testing.T) {
	arm(t, "boom=panic")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic fault did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("panic value %v does not name the point", r)
		}
	}()
	Inject("boom")
}

func TestTornWriter(t *testing.T) {
	arm(t, "snapshot.write=torn,after=2")
	var buf bytes.Buffer
	w := WrapWriter("snapshot.write", &buf)
	if _, err := w.Write([]byte("aaaa")); err != nil {
		t.Fatalf("pre-activation write: %v", err)
	}
	n, err := w.Write([]byte("bbbbbbbb"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err=%v, want ErrInjected", err)
	}
	if n != 4 {
		t.Fatalf("torn write persisted %d bytes, want half (4)", n)
	}
	if got := buf.String(); got != "aaaabbbb" {
		t.Fatalf("buffer %q, want %q", got, "aaaabbbb")
	}
	// Inject on a torn point is inert so seams can call both.
	if err := Inject("snapshot.write"); err != nil {
		t.Fatalf("Inject on torn point: %v", err)
	}
	// Non-torn points pass writers through untouched.
	arm(t, "other=error")
	if got := WrapWriter("snapshot.write", &buf); got != &buf {
		t.Fatalf("unarmed WrapWriter returned %T", got)
	}
}

func TestSpecParseErrors(t *testing.T) {
	defer Reset()
	for _, spec := range []string{
		"noaction",
		"x=explode",
		"x=error,after=0",
		"x=error,p=1.5",
		"x=error,frobnicate=1",
		"x=error,then=exit", // then=exit only applies to torn
		"x=torn,then=later",
		"x=error,delay=fast",
	} {
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) accepted a bad spec", spec)
		}
	}
	// Multi-clause spec with whitespace parses.
	if err := Arm(" a=error,times=1 ; b=exit,code=3 "); err != nil {
		t.Fatalf("multi-clause spec: %v", err)
	}
	if Inject("a") == nil {
		t.Fatal("clause a not armed")
	}
}
