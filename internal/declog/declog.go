// Package declog streams served association decisions to an external sink,
// in the style of OPA's decision-log plugin (plugins/logs): every decision
// the serving layer makes is appended to a bounded in-memory buffer,
// batched, and uploaded on a timer or when a batch fills — never on the
// request path. Backpressure is drop-counting, not blocking: when the
// buffer is full the newest decision is dropped and counted, so a slow or
// dead sink degrades observability, never serving.
//
// The log is the bridge between serving and the paper's offline analysis:
// a decision carries the full post that was associated, so an NDJSON log
// replayed through `memereport -replay` regenerates the paper's tables
// from real served traffic.
package declog

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/memes-pipeline/memes/internal/dataset"
)

// Decision is one served association decision. Seq is a dense per-logger
// sequence number assigned in arrival order under the buffer lock, so a
// replay can detect gaps and duplicates; the hammer test asserts both never
// happen for accepted decisions.
type Decision struct {
	// Seq is the decision's 1-based sequence number within the logger.
	Seq uint64 `json:"seq"`
	// TimeUnixNS is the wall-clock capture time in Unix nanoseconds.
	TimeUnixNS int64 `json:"time_unix_ns"`
	// Endpoint names the serving endpoint that made the decision
	// ("associate" or "match").
	Endpoint string `json:"endpoint"`
	// Generation is the hot-engine generation that served the decision.
	Generation uint64 `json:"generation"`
	// Post is the post the decision was made about. Match lookups carry a
	// synthetic post holding only the queried hash.
	Post dataset.Post `json:"post"`
	// Matched reports whether the post matched an annotated cluster.
	Matched bool `json:"matched"`
	// ClusterID is the winning cluster; meaningful only when Matched.
	ClusterID int `json:"cluster_id"`
	// Distance is the Hamming distance to the winning medoid; meaningful
	// only when Matched.
	Distance int `json:"distance"`
	// Entry is the KYM entry name of the winning cluster, when Matched.
	Entry string `json:"entry,omitempty"`
}

// Sink receives flushed decision batches. Uploads run on the logger's
// flusher goroutine, never on the serve path; a failed upload is counted
// and the batch discarded (the log is an observability stream, not a
// durability guarantee).
type Sink interface {
	Upload(ctx context.Context, batch []Decision) error
}

// Stats is a point-in-time snapshot of the logger's accounting.
type Stats struct {
	// Logged counts decisions accepted into the buffer.
	Logged uint64 `json:"logged"`
	// Dropped counts decisions rejected because the buffer was full.
	Dropped uint64 `json:"dropped"`
	// Batches counts sink uploads attempted.
	Batches uint64 `json:"batches"`
	// Flushed counts decisions successfully uploaded.
	Flushed uint64 `json:"flushed"`
	// FlushFailures counts failed uploads (their decisions are discarded).
	FlushFailures uint64 `json:"flush_failures"`
	// Buffered is the number of decisions currently awaiting flush.
	Buffered int `json:"buffered"`
}

// Config sizes a Logger. Zero values take the defaults noted per field.
type Config struct {
	// BufferSize bounds the in-memory decision buffer; beyond it new
	// decisions are dropped and counted. Default 4096.
	BufferSize int
	// BatchSize caps the decisions per sink upload and triggers an early
	// flush when the buffer reaches it. Default 512.
	BatchSize int
	// FlushInterval is the timer-driven flush period. Default 1s.
	FlushInterval time.Duration
	// Sink receives the batches; required.
	Sink Sink
}

// Logger is the bounded, batching decision buffer. Log is safe for
// concurrent use and never blocks on the sink.
type Logger struct {
	cfg Config

	mu     sync.Mutex
	buf    []Decision
	seq    uint64
	closed bool

	logged        atomic.Uint64
	dropped       atomic.Uint64
	batches       atomic.Uint64
	flushed       atomic.Uint64
	flushFailures atomic.Uint64

	kick chan struct{} // non-blocking wake-up for the flusher
	stop chan struct{}
	done chan struct{}
}

// New starts a Logger flushing to cfg.Sink. Close releases it.
func New(cfg Config) (*Logger, error) {
	if cfg.Sink == nil {
		return nil, errors.New("declog: config requires a sink")
	}
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = 4096
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 512
	}
	if cfg.BatchSize > cfg.BufferSize {
		cfg.BatchSize = cfg.BufferSize
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = time.Second
	}
	l := &Logger{
		cfg:  cfg,
		buf:  make([]Decision, 0, cfg.BufferSize),
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	//memes:goroutine flusher owned by Close: stop/done handshake joins it after a final drain
	go l.run()
	return l, nil
}

// Log offers one decision to the buffer. The decision's Seq and TimeUnixNS
// are assigned here, under the buffer lock, so sequence numbers are dense
// and ordered with buffer positions. Returns false when the decision was
// dropped (buffer full or logger closed). Never blocks on the sink.
func (l *Logger) Log(d Decision) bool {
	l.mu.Lock()
	if l.closed || len(l.buf) >= l.cfg.BufferSize {
		l.mu.Unlock()
		l.dropped.Add(1)
		return false
	}
	l.seq++
	d.Seq = l.seq
	d.TimeUnixNS = time.Now().UnixNano()
	l.buf = append(l.buf, d)
	full := len(l.buf) >= l.cfg.BatchSize
	l.mu.Unlock()
	l.logged.Add(1)
	if full {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
	return true
}

// Stats snapshots the logger's accounting.
func (l *Logger) Stats() Stats {
	l.mu.Lock()
	buffered := len(l.buf)
	l.mu.Unlock()
	return Stats{
		Logged:        l.logged.Load(),
		Dropped:       l.dropped.Load(),
		Batches:       l.batches.Load(),
		Flushed:       l.flushed.Load(),
		FlushFailures: l.flushFailures.Load(),
		Buffered:      buffered,
	}
}

// Flush synchronously drains the current buffer to the sink. Serving never
// calls this; it exists for tests and for Close's final drain.
func (l *Logger) Flush(ctx context.Context) {
	l.flush(ctx)
}

// Close stops the flusher, drains what remains in the buffer, and marks
// the logger closed (later Log calls drop). Idempotent.
func (l *Logger) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	return nil
}

// run is the flusher loop: a timer tick or a batch-full kick drains the
// buffer; stop triggers a final drain before exiting.
func (l *Logger) run() {
	defer close(l.done)
	ticker := time.NewTicker(l.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			l.flush(context.Background())
		case <-l.kick:
			l.flush(context.Background())
		case <-l.stop:
			l.flush(context.Background())
			return
		}
	}
}

// flush swaps the buffer out under the lock and uploads it in BatchSize
// chunks. Decisions of a failed upload are discarded and counted.
func (l *Logger) flush(ctx context.Context) {
	l.mu.Lock()
	if len(l.buf) == 0 {
		l.mu.Unlock()
		return
	}
	pending := l.buf
	l.buf = make([]Decision, 0, l.cfg.BufferSize)
	l.mu.Unlock()

	for len(pending) > 0 {
		n := len(pending)
		if n > l.cfg.BatchSize {
			n = l.cfg.BatchSize
		}
		batch := pending[:n]
		pending = pending[n:]
		l.batches.Add(1)
		if err := l.cfg.Sink.Upload(ctx, batch); err != nil {
			l.flushFailures.Add(1)
			continue
		}
		l.flushed.Add(uint64(n))
	}
}

// FileSink appends decisions as NDJSON lines (one Decision JSON document
// per line) to a file — the format `memereport -replay` reads back.
type FileSink struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// NewFileSink opens (creating or appending) the NDJSON file at path.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("declog: opening sink file: %w", err)
	}
	return &FileSink{f: f, w: bufio.NewWriter(f)}, nil
}

// Upload appends the batch and syncs buffered bytes to the file.
func (s *FileSink) Upload(ctx context.Context, batch []Decision) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	enc := json.NewEncoder(s.w)
	for i := range batch {
		if err := enc.Encode(&batch[i]); err != nil {
			return fmt.Errorf("declog: encoding decision: %w", err)
		}
	}
	return s.w.Flush()
}

// Close flushes and closes the underlying file.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// HTTPSink POSTs each batch as an NDJSON request body to a collector URL,
// mirroring OPA's upload shape (minus compression).
type HTTPSink struct {
	// URL is the collector endpoint.
	URL string
	// Client is the HTTP client to use; http.DefaultClient when nil.
	Client *http.Client
}

// Upload POSTs the batch; any non-2xx status is an error.
func (s *HTTPSink) Upload(ctx context.Context, batch []Decision) error {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for i := range batch {
		if err := enc.Encode(&batch[i]); err != nil {
			return fmt.Errorf("declog: encoding decision: %w", err)
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.URL, &body)
	if err != nil {
		return fmt.Errorf("declog: building upload request: %w", err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	client := s.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("declog: uploading batch: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("declog: collector returned %s", resp.Status)
	}
	return nil
}

// Read parses an NDJSON decision stream (the FileSink format). Blank lines
// are skipped; a malformed line fails with its line number.
func Read(r io.Reader) ([]Decision, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Decision
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var d Decision
		if err := json.Unmarshal(raw, &d); err != nil {
			return nil, fmt.Errorf("declog: line %d: %w", line, err)
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("declog: reading stream: %w", err)
	}
	return out, nil
}

// ReadFile is Read over the file at path.
func ReadFile(path string) ([]Decision, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
