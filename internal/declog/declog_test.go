package declog

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/memes-pipeline/memes/internal/dataset"
)

// memSink collects uploads in memory; fail makes every upload error.
type memSink struct {
	mu      sync.Mutex
	batches [][]Decision
	fail    bool
}

func (s *memSink) Upload(ctx context.Context, batch []Decision) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail {
		return errors.New("sink down")
	}
	cp := make([]Decision, len(batch))
	copy(cp, batch)
	s.batches = append(s.batches, cp)
	return nil
}

func (s *memSink) all() []Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Decision
	for _, b := range s.batches {
		out = append(out, b...)
	}
	return out
}

// TestLoggerSeqDense verifies Seq assignment: dense, 1-based, ordered with
// arrival, and preserved through flush.
func TestLoggerSeqDense(t *testing.T) {
	sink := &memSink{}
	l, err := New(Config{Sink: sink, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !l.Log(Decision{Endpoint: "associate"}) {
			t.Fatalf("Log %d rejected", i)
		}
	}
	l.Flush(context.Background())
	got := sink.all()
	if len(got) != 10 {
		t.Fatalf("flushed %d decisions, want 10", len(got))
	}
	for i, d := range got {
		if d.Seq != uint64(i+1) {
			t.Errorf("decision %d has seq %d, want %d", i, d.Seq, i+1)
		}
		if d.TimeUnixNS == 0 {
			t.Errorf("decision %d has no capture time", i)
		}
	}
	l.Close()
}

// TestFlushBatchSizeChunks verifies a flush splits the buffer into
// BatchSize-bounded uploads. The Logger is built by hand (no flusher
// goroutine), so the chunking is observed without the batch-full kick
// racing the explicit Flush.
func TestFlushBatchSizeChunks(t *testing.T) {
	sink := &memSink{}
	l := &Logger{cfg: Config{BufferSize: 100, BatchSize: 7, Sink: sink}}
	for i := 0; i < 20; i++ {
		l.buf = append(l.buf, Decision{Seq: uint64(i + 1)})
	}
	l.flush(context.Background())
	sink.mu.Lock()
	sizes := make([]int, 0, len(sink.batches))
	for _, b := range sink.batches {
		sizes = append(sizes, len(b))
	}
	sink.mu.Unlock()
	if len(sizes) != 3 || sizes[0] != 7 || sizes[1] != 7 || sizes[2] != 6 {
		t.Fatalf("batch sizes %v, want [7 7 6]", sizes)
	}
	if st := l.Stats(); st.Batches != 3 || st.Flushed != 20 || st.Buffered != 0 {
		t.Errorf("accounting: %+v", st)
	}
}

// TestLoggerBatchFullKick verifies reaching BatchSize wakes the flusher
// without waiting for the timer.
func TestLoggerBatchFullKick(t *testing.T) {
	sink := &memSink{}
	l, err := New(Config{Sink: sink, BufferSize: 100, BatchSize: 5, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		l.Log(Decision{})
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if l.Stats().Flushed == 5 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("batch-full kick did not flush: %+v", l.Stats())
}

// TestLoggerDropsWhenFull verifies drop-counting backpressure: a full
// buffer rejects new decisions without blocking, and accepted ones survive.
func TestLoggerDropsWhenFull(t *testing.T) {
	sink := &memSink{}
	l, err := New(Config{Sink: sink, BufferSize: 4, BatchSize: 4, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// Stop the flusher racing the fill: batch-full kicks are asynchronous,
	// so make the sink fail first — failed batches are discarded, but here
	// we only care about accounting on the Log side. Simpler: fill faster
	// than the flusher can drain is racy, so assert on totals instead.
	accepted, droppedNow := 0, 0
	for i := 0; i < 100; i++ {
		if l.Log(Decision{}) {
			accepted++
		} else {
			droppedNow++
		}
	}
	st := l.Stats()
	if int(st.Logged) != accepted || int(st.Dropped) != droppedNow {
		t.Errorf("stats disagree with Log returns: %+v vs accepted=%d dropped=%d", st, accepted, droppedNow)
	}
	if droppedNow == 0 {
		t.Log("flusher drained fast enough that nothing dropped; acceptance accounting still verified")
	}
	l.Close()
	if got := len(sink.all()); got != accepted {
		t.Errorf("sink received %d decisions, want the %d accepted", got, accepted)
	}
}

// TestLoggerFailedUploadDiscarded verifies a failing sink counts failures
// and discards the batch instead of retrying or blocking.
func TestLoggerFailedUploadDiscarded(t *testing.T) {
	sink := &memSink{fail: true}
	l, err := New(Config{Sink: sink, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		l.Log(Decision{})
	}
	l.Flush(context.Background())
	st := l.Stats()
	if st.FlushFailures != 1 || st.Flushed != 0 || st.Buffered != 0 {
		t.Errorf("failed upload accounting: %+v", st)
	}
	// The sink recovers; only new decisions reach it.
	sink.mu.Lock()
	sink.fail = false
	sink.mu.Unlock()
	l.Log(Decision{Endpoint: "associate"})
	l.Flush(context.Background())
	got := sink.all()
	if len(got) != 1 || got[0].Endpoint != "associate" {
		t.Errorf("recovered sink got %+v, want only the post-recovery decision", got)
	}
}

// TestLoggerCloseDrainsAndRejects verifies Close's final drain and that a
// closed logger drops instead of panicking; Close is idempotent.
func TestLoggerCloseDrainsAndRejects(t *testing.T) {
	sink := &memSink{}
	l, err := New(Config{Sink: sink, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	l.Log(Decision{})
	l.Log(Decision{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.all()); got != 2 {
		t.Errorf("final drain flushed %d, want 2", got)
	}
	if l.Log(Decision{}) {
		t.Error("closed logger accepted a decision")
	}
	if err := l.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestFileSinkRoundTrip writes decisions through a FileSink and reads the
// NDJSON back with ReadFile: every field survives the trip.
func TestFileSinkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.ndjson")
	sink, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Decision{
		{
			Seq: 1, TimeUnixNS: 12345, Endpoint: "associate", Generation: 3,
			Post: dataset.Post{
				ID: 7, Community: dataset.TheDonald, Subreddit: "The_Donald",
				Timestamp: time.Date(2017, 7, 1, 12, 0, 0, 0, time.UTC),
				HasImage:  true, Hash: 0xdeadbeef, Score: 42, TruthMeme: 1, TruthRoot: 2,
			},
			Matched: true, ClusterID: 9, Distance: 4, Entry: "smug-frog",
		},
		{Seq: 2, TimeUnixNS: 12346, Endpoint: "match",
			Post:    dataset.Post{HasImage: true, Hash: 1, TruthMeme: -1, TruthRoot: -1},
			Matched: false, ClusterID: -1, Distance: -1},
	}
	if err := sink.Upload(context.Background(), want); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d decisions, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Post.Timestamp.Equal(want[i].Post.Timestamp) {
			t.Errorf("decision %d timestamp: got %v, want %v", i, got[i].Post.Timestamp, want[i].Post.Timestamp)
		}
		got[i].Post.Timestamp = want[i].Post.Timestamp
		if got[i] != want[i] {
			t.Errorf("decision %d round-trip mismatch:\ngot  %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestFileSinkAppends verifies reopening a sink appends instead of
// truncating — a restarted server must not erase the earlier stream.
func TestFileSinkAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.ndjson")
	for run := 1; run <= 2; run++ {
		sink, err := NewFileSink(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Upload(context.Background(), []Decision{{Seq: uint64(run)}}); err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Errorf("appended stream: %+v", got)
	}
}

// TestReadErrors pins the malformed-line error shape (line-numbered) and
// blank-line tolerance.
func TestReadErrors(t *testing.T) {
	decisions, err := Read(strings.NewReader("{\"seq\":1}\n\n{\"seq\":2}\n"))
	if err != nil || len(decisions) != 2 {
		t.Fatalf("blank-line stream: %v, %d decisions", err, len(decisions))
	}
	_, err = Read(strings.NewReader("{\"seq\":1}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("malformed line error = %v, want line-numbered failure", err)
	}
}

// TestHTTPSink verifies the POST upload shape (NDJSON body, content type)
// and that a non-2xx status is an error.
func TestHTTPSink(t *testing.T) {
	var gotBody string
	var gotType string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b := make([]byte, r.ContentLength)
		r.Body.Read(b)
		gotBody, gotType = string(b), r.Header.Get("Content-Type")
	}))
	defer srv.Close()
	s := &HTTPSink{URL: srv.URL}
	if err := s.Upload(context.Background(), []Decision{{Seq: 1}, {Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	if gotType != "application/x-ndjson" {
		t.Errorf("content type %q", gotType)
	}
	if lines := strings.Count(gotBody, "\n"); lines != 2 {
		t.Errorf("body has %d lines, want 2:\n%s", lines, gotBody)
	}

	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusServiceUnavailable)
	}))
	defer down.Close()
	s = &HTTPSink{URL: down.URL}
	if err := s.Upload(context.Background(), []Decision{{}}); err == nil {
		t.Error("non-2xx upload did not error")
	}
}

// TestLoggerConcurrentLog hammers Log from many goroutines against a live
// flusher and asserts exactly-once delivery of every accepted decision:
// unique dense seqs, no loss, no duplication.
func TestLoggerConcurrentLog(t *testing.T) {
	sink := &memSink{}
	l, err := New(Config{Sink: sink, BufferSize: 1 << 14, BatchSize: 64, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const workers, each = 8, 500
	var accepted sync.Map
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Log(Decision{Endpoint: fmt.Sprintf("w%d", w)})
			}
		}(w)
	}
	wg.Wait()
	l.Close()
	st := l.Stats()
	if st.Logged != workers*each || st.Dropped != 0 {
		t.Fatalf("accounting after hammer: %+v", st)
	}
	got := sink.all()
	if len(got) != workers*each {
		t.Fatalf("sink received %d decisions, want %d", len(got), workers*each)
	}
	for _, d := range got {
		if _, dup := accepted.LoadOrStore(d.Seq, true); dup {
			t.Fatalf("duplicate seq %d", d.Seq)
		}
		if d.Seq == 0 || d.Seq > workers*each {
			t.Fatalf("seq %d outside dense range [1,%d]", d.Seq, workers*each)
		}
	}
}
