// Package cli holds the small rendering helpers shared by the command-line
// front-ends, so cmd/memepipeline and cmd/memereport emit one and the same
// machine-readable contract instead of hand-synchronised copies.
package cli

import (
	"time"

	"github.com/memes-pipeline/memes/internal/pipeline"
)

// StageJSON is one pipeline stage in the JSON stats block.
type StageJSON struct {
	Name        string  `json:"name"`
	DurationMS  float64 `json:"duration_ms"`
	Items       int     `json:"items"`
	ItemsPerSec float64 `json:"items_per_sec"`
}

// StatsJSON is the JSON rendering of pipeline.RunStats emitted by every
// CLI's -format json mode.
type StatsJSON struct {
	Workers           int         `json:"workers"`
	Stages            []StageJSON `json:"stages"`
	TotalMS           float64     `json:"total_ms"`
	FringeImages      int         `json:"fringe_images"`
	TotalImages       int         `json:"total_images"`
	Clusters          int         `json:"clusters"`
	AnnotatedClusters int         `json:"annotated_clusters"`
	Associations      int         `json:"associations"`
	ImagesPerSec      float64     `json:"images_per_sec"`
}

// StatsDoc converts run stats to their JSON form. The Stages slice is
// always non-nil so the contract is an array, never null.
func StatsDoc(s pipeline.RunStats) StatsJSON {
	doc := StatsJSON{
		Stages:            []StageJSON{},
		Workers:           s.Workers,
		TotalMS:           float64(s.Total) / float64(time.Millisecond),
		FringeImages:      s.FringeImages,
		TotalImages:       s.TotalImages,
		Clusters:          s.Clusters,
		AnnotatedClusters: s.AnnotatedClusters,
		Associations:      s.Associations,
		ImagesPerSec:      s.ImagesPerSec(),
	}
	for _, st := range s.Stages {
		doc.Stages = append(doc.Stages, StageJSON{
			Name:        st.Name,
			DurationMS:  float64(st.Duration) / float64(time.Millisecond),
			Items:       st.Items,
			ItemsPerSec: st.Throughput(),
		})
	}
	return doc
}
