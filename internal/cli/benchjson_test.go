package cli

import (
	"strings"
	"testing"
)

// compareDocs builds a baseline/fresh pair sharing the benchmark layout the
// repo's trajectory points use.
func compareDocs() (baseline, fresh *BenchDoc) {
	baseline = &BenchDoc{Label: "pr4", Benchmarks: []BenchJSON{
		{Name: "PipelineRun/workers_1", Metrics: map[string]float64{"images_per_sec": 100000}},
		{Name: "EngineAssociate/bktree", Metrics: map[string]float64{"images_per_sec": 500000}},
		{Name: "DBSCAN/workers_1", Metrics: map[string]float64{"neighbour_points_per_sec": 300000}},
		{Name: "PhashExtraction", Metrics: map[string]float64{"images_per_sec": 20000}},
	}}
	fresh = &BenchDoc{Label: "ci", Benchmarks: []BenchJSON{
		{Name: "PipelineRun/workers_1", Metrics: map[string]float64{"images_per_sec": 100000}},
		{Name: "EngineAssociate/bktree", Metrics: map[string]float64{"images_per_sec": 500000}},
		{Name: "PipelineRun/workers_8", Metrics: map[string]float64{"images_per_sec": 400000}},
	}}
	return baseline, fresh
}

var gatePrefixes = []string{"PipelineRun/", "EngineAssociate/"}

func TestCompareBenchPasses(t *testing.T) {
	baseline, fresh := compareDocs()
	if v := CompareBench(baseline, fresh, gatePrefixes, "images_per_sec", 0.30); len(v) != 0 {
		t.Fatalf("identical throughput flagged: %v", v)
	}
}

func TestCompareBenchToleratesNoise(t *testing.T) {
	baseline, fresh := compareDocs()
	// 25% down is within the 30% tolerance — runner noise, not a cliff.
	fresh.Benchmarks[0].Metrics["images_per_sec"] = 75000
	if v := CompareBench(baseline, fresh, gatePrefixes, "images_per_sec", 0.30); len(v) != 0 {
		t.Fatalf("within-tolerance dip flagged: %v", v)
	}
}

func TestCompareBenchCatchesRegression(t *testing.T) {
	baseline, fresh := compareDocs()
	fresh.Benchmarks[1].Metrics["images_per_sec"] = 100000 // 5x cliff
	v := CompareBench(baseline, fresh, gatePrefixes, "images_per_sec", 0.30)
	if len(v) != 1 {
		t.Fatalf("violations = %v, want exactly one", v)
	}
	if !strings.Contains(v[0], "EngineAssociate/bktree") || !strings.Contains(v[0], "regressed") {
		t.Fatalf("violation does not name the regressed benchmark: %q", v[0])
	}
}

func TestCompareBenchFlagsMissingGatedBenchmark(t *testing.T) {
	baseline, fresh := compareDocs()
	fresh.Benchmarks = fresh.Benchmarks[:1] // drop EngineAssociate/bktree
	v := CompareBench(baseline, fresh, gatePrefixes, "images_per_sec", 0.30)
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Fatalf("missing gated benchmark not flagged: %v", v)
	}
}

func TestCompareBenchIgnoresUngatedAndExtra(t *testing.T) {
	baseline, fresh := compareDocs()
	// DBSCAN and PhashExtraction are outside the gated prefixes; the fresh
	// doc's extra workers_8 entry has no baseline. Crater the ungated one —
	// the gate must not care.
	fresh.Benchmarks = append(fresh.Benchmarks, BenchJSON{
		Name: "DBSCAN/workers_1", Metrics: map[string]float64{"neighbour_points_per_sec": 1},
	})
	if v := CompareBench(baseline, fresh, gatePrefixes, "images_per_sec", 0.30); len(v) != 0 {
		t.Fatalf("ungated/extra benchmarks flagged: %v", v)
	}
}

func TestCompareBenchZeroTolerance(t *testing.T) {
	baseline, fresh := compareDocs()
	fresh.Benchmarks[0].Metrics["images_per_sec"] = 99999
	if v := CompareBench(baseline, fresh, gatePrefixes, "images_per_sec", 0); len(v) != 1 {
		t.Fatalf("zero tolerance should flag any dip: %v", v)
	}
}

// allocDocs builds a baseline/fresh pair for the allocation-ceiling gate:
// two zero-alloc steady-state benchmarks and one non-zero baseline.
func allocDocs() (baseline, fresh *BenchDoc) {
	baseline = &BenchDoc{Label: "pr8", Benchmarks: []BenchJSON{
		{Name: "EngineAssociateSteady/bktree", AllocsPerOp: 0},
		{Name: "EngineMatchSteady/bktree", AllocsPerOp: 0},
		{Name: "PhashExtraction", AllocsPerOp: 0},
		{Name: "PipelineRun/workers_1", AllocsPerOp: 120000},
	}}
	fresh = &BenchDoc{Label: "ci", Benchmarks: []BenchJSON{
		{Name: "EngineAssociateSteady/bktree", AllocsPerOp: 0},
		{Name: "EngineMatchSteady/bktree", AllocsPerOp: 0},
		{Name: "PhashExtraction", AllocsPerOp: 0},
		{Name: "PipelineRun/workers_1", AllocsPerOp: 360000},
	}}
	return baseline, fresh
}

var allocGatePrefixes = []string{"EngineAssociateSteady/", "EngineMatchSteady/", "PhashExtraction"}

func TestCompareBenchAllocsPasses(t *testing.T) {
	baseline, fresh := allocDocs()
	if v := CompareBenchAllocs(baseline, fresh, allocGatePrefixes, 0.30); len(v) != 0 {
		t.Fatalf("identical alloc counts flagged: %v", v)
	}
}

func TestCompareBenchAllocsZeroBaselinePinsZero(t *testing.T) {
	baseline, fresh := allocDocs()
	// A single allocation on a zero-alloc path must fail regardless of
	// tolerance: 0 × (1+tol) is still 0.
	fresh.Benchmarks[1].AllocsPerOp = 1
	v := CompareBenchAllocs(baseline, fresh, allocGatePrefixes, 0.30)
	if len(v) != 1 {
		t.Fatalf("violations = %v, want exactly one", v)
	}
	if !strings.Contains(v[0], "EngineMatchSteady/bktree") || !strings.Contains(v[0], "grew") {
		t.Fatalf("violation does not name the regressed benchmark: %q", v[0])
	}
}

func TestCompareBenchAllocsToleratesWithinCeiling(t *testing.T) {
	baseline, fresh := allocDocs()
	baseline.Benchmarks[2].AllocsPerOp = 10
	fresh.Benchmarks[2].AllocsPerOp = 13 // ceiling at 30% is exactly 13
	if v := CompareBenchAllocs(baseline, fresh, allocGatePrefixes, 0.30); len(v) != 0 {
		t.Fatalf("within-ceiling growth flagged: %v", v)
	}
	fresh.Benchmarks[2].AllocsPerOp = 14
	if v := CompareBenchAllocs(baseline, fresh, allocGatePrefixes, 0.30); len(v) != 1 {
		t.Fatalf("above-ceiling growth not flagged: %v", v)
	}
}

func TestCompareBenchAllocsFlagsMissingGatedBenchmark(t *testing.T) {
	baseline, fresh := allocDocs()
	fresh.Benchmarks = fresh.Benchmarks[1:] // drop EngineAssociateSteady/bktree
	v := CompareBenchAllocs(baseline, fresh, allocGatePrefixes, 0.30)
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Fatalf("missing gated benchmark not flagged: %v", v)
	}
}

func TestCompareBenchAllocsIgnoresUngated(t *testing.T) {
	baseline, fresh := allocDocs()
	// PipelineRun triples its allocations but is outside the alloc gate.
	if v := CompareBenchAllocs(baseline, fresh, allocGatePrefixes, 0.30); len(v) != 0 {
		t.Fatalf("ungated benchmark flagged: %v", v)
	}
}
