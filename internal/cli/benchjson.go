package cli

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// BenchJSON is one benchmark result in the perf-trajectory document emitted
// by cmd/memebench, following the same machine-readable conventions as
// StatsJSON (stable snake_case keys, arrays never null).
type BenchJSON struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Metrics carries the benchmark's custom b.ReportMetric values
	// (e.g. images_per_sec, neighbour_points_per_sec).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchDoc is the BENCH_<label>.json document: one point of the repo's
// performance trajectory, labelled by run (e.g. "ci") and annotated with
// the platform the numbers came from.
type BenchDoc struct {
	Label      string      `json:"label"`
	GoOS       string      `json:"goos"`
	GoArch     string      `json:"goarch"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Benchmarks []BenchJSON `json:"benchmarks"`
}

// NewBenchDoc returns an empty document for the current platform. The
// Benchmarks slice starts non-nil so the contract is an array, never null.
func NewBenchDoc(label string) BenchDoc {
	return BenchDoc{
		Label:      label,
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: []BenchJSON{},
	}
}

// Add appends one testing.Benchmark result under the given name.
func (d *BenchDoc) Add(name string, r testing.BenchmarkResult) {
	b := BenchJSON{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if len(r.Extra) > 0 {
		b.Metrics = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			b.Metrics[k] = v
		}
	}
	d.Benchmarks = append(d.Benchmarks, b)
}

// Bench returns the named benchmark entry; ok is false when absent.
func (d *BenchDoc) Bench(name string) (BenchJSON, bool) {
	for _, b := range d.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return BenchJSON{}, false
}

// CompareBench gates a fresh trajectory point against a committed baseline:
// for every baseline benchmark whose name starts with one of prefixes and
// that carries metric, the fresh document must report at least
// (1-tolerance)× the baseline's value. One human-readable line is returned
// per violation (regression past the tolerance, or a gated benchmark missing
// from the fresh run); an empty slice means the gate passes. Benchmarks
// present only in the fresh document are ignored — new machines and new
// benchmarks must not fail the gate — and so are cross-run differences the
// tolerance absorbs, so the gate catches order-of-magnitude cliffs, not
// runner noise.
func CompareBench(baseline, fresh *BenchDoc, prefixes []string, metric string, tolerance float64) []string {
	var violations []string
	for _, base := range baseline.Benchmarks {
		if !gatedBy(base.Name, prefixes) {
			continue
		}
		want, ok := base.Metrics[metric]
		if !ok || want <= 0 {
			continue
		}
		got, ok := fresh.Bench(base.Name)
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: present in baseline %q but missing from fresh run %q", base.Name, baseline.Label, fresh.Label))
			continue
		}
		have := got.Metrics[metric]
		floor := want * (1 - tolerance)
		if have < floor {
			violations = append(violations,
				fmt.Sprintf("%s: %s regressed %.0f -> %.0f (%.1f%% of baseline, floor %.0f at tolerance %.0f%%)",
					base.Name, metric, want, have, 100*have/want, floor, 100*tolerance))
		}
	}
	return violations
}

// CompareBenchAllocs gates allocation counts the opposite way round from
// CompareBench: allocs_per_op is a ceiling, not a floor. For every baseline
// benchmark whose name starts with one of prefixes, the fresh run must report
// at most floor(baseline × (1+tolerance)) allocs/op. A baseline of 0 therefore
// pins the fresh run to exactly 0 — tolerance cannot loosen a zero-alloc
// invariant, which is the point: once a path reaches the steady state it must
// never allocate again. A gated benchmark missing from the fresh run is a
// violation (silently dropping the benchmark must not pass the gate).
func CompareBenchAllocs(baseline, fresh *BenchDoc, prefixes []string, tolerance float64) []string {
	var violations []string
	for _, base := range baseline.Benchmarks {
		if !gatedBy(base.Name, prefixes) {
			continue
		}
		got, ok := fresh.Bench(base.Name)
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: present in baseline %q but missing from fresh run %q", base.Name, baseline.Label, fresh.Label))
			continue
		}
		ceiling := int64(float64(base.AllocsPerOp) * (1 + tolerance))
		if got.AllocsPerOp > ceiling {
			violations = append(violations,
				fmt.Sprintf("%s: allocs_per_op grew %d -> %d (ceiling %d at tolerance %.0f%%)",
					base.Name, base.AllocsPerOp, got.AllocsPerOp, ceiling, 100*tolerance))
		}
	}
	return violations
}

// gatedBy reports whether name falls under any of the gate prefixes.
func gatedBy(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
