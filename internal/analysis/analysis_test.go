package analysis

import (
	"math"
	"strings"
	"testing"

	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/distance"
	"github.com/memes-pipeline/memes/internal/pipeline"
	"github.com/memes-pipeline/memes/internal/screenshot"
)

// sharedRun caches one pipeline run over the small synthetic corpus for all
// analysis tests.
var sharedRun *pipeline.Result

func getRun(t *testing.T) *pipeline.Result {
	t.Helper()
	if sharedRun != nil {
		return sharedRun
	}
	ds, err := dataset.Generate(dataset.SmallConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	res, err := pipeline.Run(ds, site, pipeline.DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sharedRun = res
	return res
}

func TestDatasetOverview(t *testing.T) {
	res := getRun(t)
	rows := DatasetOverview(res.Dataset)
	if len(rows) != 4 {
		t.Fatalf("expected 4 platform rows, got %d", len(rows))
	}
	for _, row := range rows {
		if row.Posts < row.PostsWithImages {
			t.Errorf("%s: posts < posts with images", row.Platform)
		}
		if row.UniquePHashes > row.Images {
			t.Errorf("%s: unique hashes exceed images", row.Platform)
		}
	}
}

func TestClusteringStats(t *testing.T) {
	res := getRun(t)
	rows := ClusteringStats(res)
	if len(rows) != 3 {
		t.Fatalf("expected 3 fringe rows, got %d", len(rows))
	}
	for _, row := range rows {
		if row.NoisePercent < 0 || row.NoisePercent > 100 {
			t.Errorf("%s noise %v out of range", row.Community, row.NoisePercent)
		}
		if row.Annotated > row.Clusters {
			t.Errorf("%s has more annotated clusters than clusters", row.Community)
		}
	}
	// /pol/ should have the most clusters (it posts the most memes).
	if rows[0].Community != "/pol/" || rows[0].Clusters == 0 {
		t.Errorf("unexpected first row %+v", rows[0])
	}
}

func TestTopEntriesByClusters(t *testing.T) {
	res := getRun(t)
	top := TopEntriesByClusters(res, 20)
	if len(top["/pol/"]) == 0 {
		t.Fatal("no top entries for /pol/")
	}
	for comm, entries := range top {
		prev := 1 << 30
		for _, e := range entries {
			if e.Count > prev {
				t.Fatalf("%s entries not sorted by count", comm)
			}
			prev = e.Count
			if e.Percent < 0 || e.Percent > 100 {
				t.Fatalf("%s percent %v out of range", comm, e.Percent)
			}
		}
	}
}

func TestTopMemesAndPeopleByPosts(t *testing.T) {
	res := getRun(t)
	memes := TopMemesByPosts(res, 20)
	if len(memes) == 0 {
		t.Fatal("no meme rankings")
	}
	foundMemeCategory := false
	for _, entries := range memes {
		for _, e := range entries {
			if e.Category != "memes" {
				t.Fatalf("non-meme entry %q in Table 4", e.Entry)
			}
			foundMemeCategory = true
		}
	}
	if !foundMemeCategory {
		t.Fatal("no meme-category entries found")
	}
	people := TopPeopleByPosts(res, 15)
	for _, entries := range people {
		for _, e := range entries {
			if e.Category != "people" {
				t.Fatalf("non-people entry %q in Table 5", e.Entry)
			}
		}
	}
}

func TestTopSubreddits(t *testing.T) {
	res := getRun(t)
	groups := TopSubreddits(res, 10)
	if len(groups.All) == 0 {
		t.Fatal("no subreddit rankings")
	}
	// The Donald should be the top subreddit overall (it is its own
	// community and posts heavily).
	if groups.All[0].Subreddit != "The_Donald" {
		t.Errorf("top subreddit = %q, want The_Donald", groups.All[0].Subreddit)
	}
	if len(groups.Politics) == 0 {
		t.Error("no politics subreddit rankings")
	}
}

func TestEventCounts(t *testing.T) {
	res := getRun(t)
	rows := EventCounts(res)
	if len(rows) != dataset.NumCommunities {
		t.Fatalf("expected %d rows, got %d", dataset.NumCommunities, len(rows))
	}
	// Sorted descending; /pol/ should lead (Table 7).
	if rows[0].Community != "/pol/" {
		t.Errorf("most events on %q, want /pol/", rows[0].Community)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Events > rows[i-1].Events {
			t.Fatal("event counts not sorted")
		}
	}
}

func TestClusterSweep(t *testing.T) {
	res := getRun(t)
	rows, err := ClusterSweep(res.Dataset, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 sweep rows, got %d", len(rows))
	}
	// Smaller eps yields at least as much noise (Table 8's trend).
	if rows[0].NoisePercent < rows[1].NoisePercent {
		t.Errorf("noise at eps=2 (%v) should be >= noise at eps=8 (%v)",
			rows[0].NoisePercent, rows[1].NoisePercent)
	}
	if _, err := ClusterSweep(res.Dataset, nil); err == nil {
		t.Fatal("empty sweep should fail")
	}
}

func TestScreenshotDatasetTable(t *testing.T) {
	rows := ScreenshotDataset(screenshot.PaperCounts())
	if len(rows) != 6 {
		t.Fatalf("expected 6 sources, got %d", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.Images
	}
	if total != 39451 {
		t.Fatalf("paper corpus total %d, want 39451", total)
	}
}

func TestPerceptualDecayFigure(t *testing.T) {
	series := PerceptualDecay([]float64{1, 25, 64})
	if len(series) != 3 {
		t.Fatalf("expected 3 series, got %d", len(series))
	}
	for _, s := range series {
		if len(s.X) != 65 || len(s.Y) != 65 {
			t.Fatalf("series %s has %d points", s.Label, len(s.X))
		}
		if s.Y[0] != 1 {
			t.Errorf("series %s should start at 1", s.Label)
		}
		if s.Y[64] > 1e-9 {
			t.Errorf("series %s should end at 0", s.Label)
		}
	}
}

func TestComputeKYMStats(t *testing.T) {
	res := getRun(t)
	st, err := ComputeKYMStats(res.Site)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range st.CategoryPercent {
		sum += p
	}
	if math.Abs(sum-100) > 1e-6 {
		t.Errorf("category percentages sum to %v", sum)
	}
	if st.Entries == 0 || st.Images == 0 {
		t.Error("empty KYM stats")
	}
	if len(st.ImagesPerEntryCDF.X) == 0 {
		t.Error("empty gallery-size CDF")
	}
	if _, err := ComputeKYMStats(nil); err == nil {
		t.Error("nil site should fail")
	}
}

func TestComputeAnnotationCDFs(t *testing.T) {
	res := getRun(t)
	cdfs, err := ComputeAnnotationCDFs(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(cdfs.EntriesPerCluster) == 0 || len(cdfs.ClustersPerEntry) == 0 {
		t.Fatal("empty annotation CDFs")
	}
	for comm, s := range cdfs.EntriesPerCluster {
		if len(s.X) == 0 {
			t.Errorf("%s: empty CDF", comm)
		}
		if s.Y[len(s.Y)-1] != 1 {
			t.Errorf("%s: CDF does not reach 1", comm)
		}
	}
}

func TestMemeFamilyDendrogram(t *testing.T) {
	res := getRun(t)
	metric, _ := distance.New()
	dend, err := MemeFamilyDendrogram(res, metric, []string{"frog", "pepe", "apu"})
	if err != nil {
		t.Fatal(err)
	}
	if dend.Dendrogram.NumLeaves() != len(dend.Leaves) {
		t.Fatal("leaf labels misaligned")
	}
	for _, l := range dend.Leaves {
		if !strings.Contains(l, "@") {
			t.Fatalf("leaf label %q missing community tag", l)
		}
	}
	if _, err := MemeFamilyDendrogram(res, metric, []string{"no-such-meme-family"}); err == nil {
		t.Fatal("unknown family should fail")
	}
	if _, err := MemeFamilyDendrogram(res, nil, []string{"frog"}); err == nil {
		t.Fatal("nil metric should fail")
	}
	if _, err := MemeFamilyDendrogram(res, metric, nil); err == nil {
		t.Fatal("empty substrings should fail")
	}
}

func TestBuildClusterGraph(t *testing.T) {
	res := getRun(t)
	metric, _ := distance.New()
	g, err := BuildClusterGraph(res, metric, DefaultClusterGraphConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) == 0 {
		t.Fatal("empty cluster graph")
	}
	// The Figure 7 claim: connected components are dominated by one meme.
	purity := g.ComponentPurity()
	if len(purity) > 0 {
		mean := 0.0
		for _, p := range purity {
			mean += p
		}
		mean /= float64(len(purity))
		if mean < 0.6 {
			t.Errorf("mean component purity %v too low for the Figure 7 claim", mean)
		}
	}
	if _, err := BuildClusterGraph(res, nil, DefaultClusterGraphConfig()); err == nil {
		t.Fatal("nil metric should fail")
	}
}

func TestTemporalSeries(t *testing.T) {
	res := getRun(t)
	all := TemporalSeries(res, AllMemes)
	if len(all) == 0 {
		t.Fatal("no temporal series")
	}
	for name, s := range all {
		if len(s.X) != len(s.Y) {
			t.Fatalf("%s: misaligned series", name)
		}
		for _, y := range s.Y {
			if y < 0 || y > 100 {
				t.Fatalf("%s: percentage %v out of range", name, y)
			}
		}
	}
	racist := TemporalSeries(res, RacistMemes)
	// Racist meme share should not exceed the all-memes share on any platform.
	for name := range racist {
		if meanOf(racist[name].Y) > meanOf(all[name].Y)+1e-9 {
			t.Errorf("%s: racist share exceeds all-memes share", name)
		}
	}
}

func TestComputeScoreCDFs(t *testing.T) {
	res := getRun(t)
	cdfs, err := ComputeScoreCDFs(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(cdfs.Reddit) == 0 {
		t.Fatal("no Reddit score CDFs")
	}
	// Planted structure: political memes score higher than non-political on
	// Reddit; racist memes score lower than non-racist.
	if cdfs.Means["Reddit"]["politics"] <= cdfs.Means["Reddit"]["non-politics"] {
		t.Errorf("Reddit political mean %v should exceed non-political %v",
			cdfs.Means["Reddit"]["politics"], cdfs.Means["Reddit"]["non-politics"])
	}
	if r, nr := cdfs.Means["Reddit"]["racist"], cdfs.Means["Reddit"]["non-racist"]; r != 0 && r >= nr {
		t.Errorf("Reddit racist mean %v should be below non-racist %v", r, nr)
	}
}

func TestClusterFalsePositives(t *testing.T) {
	res := getRun(t)
	rows, err := ClusterFalsePositives(res.Dataset, []int{6, 8, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(rows))
	}
	for _, row := range rows {
		if row.MeanFraction < 0 || row.MeanFraction > 1 {
			t.Errorf("eps=%d: mean fraction %v out of range", row.Eps, row.MeanFraction)
		}
	}
	// Larger thresholds merge more distinct memes: the mean false-positive
	// fraction at eps=10 should be at least that at eps=6 (Figure 17's trend).
	if rows[2].MeanFraction+1e-9 < rows[0].MeanFraction {
		t.Errorf("FP fraction should not decrease with eps: %v", rows)
	}
	if _, err := ClusterFalsePositives(res.Dataset, nil); err == nil {
		t.Fatal("empty sweep should fail")
	}
}

func TestEstimateInfluenceAllMemes(t *testing.T) {
	res := getRun(t)
	inf, err := EstimateInfluence(res, AllMemes, DefaultInfluenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	k := dataset.NumCommunities
	if len(inf.Raw) != k || len(inf.Normalized) != k {
		t.Fatal("influence matrices have wrong shape")
	}
	// Raw influence columns sum to 1 for destinations with events.
	for dst := 0; dst < k; dst++ {
		if inf.Events[dst] == 0 {
			continue
		}
		col := 0.0
		for src := 0; src < k; src++ {
			col += inf.Raw[src][dst]
		}
		if math.Abs(col-1) > 1e-6 {
			t.Errorf("raw influence column %d sums to %v", dst, col)
		}
	}
	// Planted structure: /pol/ has the largest raw external influence on at
	// least one other community (it posts the most memes), and The Donald's
	// normalized external influence exceeds /pol/'s (it is the most
	// efficient).
	pol, td := int(dataset.Pol), int(dataset.TheDonald)
	if inf.TotalExternal[td] <= inf.TotalExternal[pol] {
		t.Errorf("The Donald normalized external influence (%v) should exceed /pol/'s (%v)",
			inf.TotalExternal[td], inf.TotalExternal[pol])
	}
	// /pol/ posts the most meme events.
	for c, n := range inf.Events {
		if c != pol && n > inf.Events[pol] {
			t.Errorf("community %d has more events than /pol/", c)
		}
	}
	if _, err := EstimateInfluence(res, AllMemes, InfluenceConfig{}); err == nil {
		t.Fatal("invalid config should fail")
	}
}

func TestCompareGroups(t *testing.T) {
	res := getRun(t)
	cfg := DefaultInfluenceConfig()
	cfg.MaxIter = 30
	cmp, err := CompareGroups(res, PoliticalMemes, NonPoliticalMemes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Group.Group != PoliticalMemes || cmp.Complement.Group != NonPoliticalMemes {
		t.Fatal("group labels wrong")
	}
	if len(cmp.Significant) != dataset.NumCommunities {
		t.Fatal("significance matrix wrong shape")
	}
}

func TestRunAttributionToy(t *testing.T) {
	toy, err := RunAttributionToy(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(toy.Raw) != 3 {
		t.Fatal("toy matrix wrong shape")
	}
	// B (process 1) should dominate the external root causes of A and C.
	if toy.Raw[1][0] < toy.Raw[2][0] || toy.Raw[1][2] < toy.Raw[0][2] {
		t.Errorf("B should dominate external influence: %+v", toy.Raw)
	}
}

func TestAnnotationQuality(t *testing.T) {
	res, err := AnnotationQuality()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kappa < 0.4 || res.MajorityAccuracy < 0.8 {
		t.Errorf("annotation quality far from the paper's values: %+v", res)
	}
}

func TestMemeGroupString(t *testing.T) {
	for _, g := range []MemeGroup{AllMemes, RacistMemes, NonRacistMemes, PoliticalMemes, NonPoliticalMemes} {
		if g.String() == "" {
			t.Fatal("empty group name")
		}
	}
	if MemeGroup(99).String() == "" {
		t.Fatal("unknown group should still stringify")
	}
}

func TestReportRenderAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow; skipped in -short mode")
	}
	res := getRun(t)
	rep, err := NewReport(res)
	if err != nil {
		t.Fatal(err)
	}
	text, err := rep.RenderAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Table 1", "Table 9", "Figure 3", "Figure 19", "Appendix B",
		"/pol/", "Raw influence",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if rep.Result() != res || rep.Metric() == nil {
		t.Error("report accessors broken")
	}
}
