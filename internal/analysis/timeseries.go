package analysis

import (
	"time"

	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/pipeline"
)

// TimeSeriesRow is one day of corpus activity for one community: how many
// posts the community made, how many of them were matched to an annotated
// meme cluster (Step 6), and the resulting meme share. cmd/memereport's
// `-format timeseries` emits one row per day × community.
type TimeSeriesRow struct {
	// Day is the UTC calendar day of the bucket, formatted 2006-01-02.
	Day string
	// Community is the display name of the community.
	Community string
	// Posts counts every post of the community on the day.
	Posts int
	// MemePosts counts the day's posts associated to a cluster of the group.
	MemePosts int
	// Percent is the meme share of the day's posts; 0 when Posts is 0.
	Percent float64
}

// TimeSeries computes per-day per-community post and meme-post counts for
// one meme group — the tabular form of Figure 8's temporal activity,
// bucketed by community instead of platform. Rows come out ordered by day,
// then by the fixed dataset.Communities() order, so the rendering is
// deterministic. Days derive from the dataset's observation window;
// out-of-window timestamps clamp to the window edges, like TemporalSeries.
func TimeSeries(res *pipeline.Result, group MemeGroup) []TimeSeriesRow {
	days := int(res.Dataset.End.Sub(res.Dataset.Start).Hours()/24) + 1
	if days < 1 {
		days = 1
	}
	comms := dataset.Communities()
	posts := make([][]int, len(comms))
	memes := make([][]int, len(comms))
	for i := range comms {
		posts[i] = make([]int, days)
		memes[i] = make([]int, days)
	}
	dayOf := func(t time.Time) int {
		d := int(t.Sub(res.Dataset.Start).Hours() / 24)
		if d < 0 {
			d = 0
		}
		if d >= days {
			d = days - 1
		}
		return d
	}
	commIndex := map[dataset.Community]int{}
	for i, c := range comms {
		commIndex[c] = i
	}
	for _, p := range res.Dataset.Posts {
		posts[commIndex[p.Community]][dayOf(p.Timestamp)]++
	}
	for _, a := range res.Associations {
		c := &res.Clusters[a.ClusterID]
		if !inGroup(c, group) {
			continue
		}
		p := res.Dataset.Posts[a.PostIndex]
		memes[commIndex[p.Community]][dayOf(p.Timestamp)]++
	}

	out := make([]TimeSeriesRow, 0, days*len(comms))
	for d := 0; d < days; d++ {
		day := res.Dataset.Start.UTC().Add(time.Duration(d) * 24 * time.Hour).Format("2006-01-02")
		for i, c := range comms {
			out = append(out, TimeSeriesRow{
				Day:       day,
				Community: c.String(),
				Posts:     posts[i][d],
				MemePosts: memes[i][d],
				Percent:   pct(memes[i][d], posts[i][d]),
			})
		}
	}
	return out
}

func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
