package analysis

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"github.com/memes-pipeline/memes/internal/distance"
	"github.com/memes-pipeline/memes/internal/pipeline"
	"github.com/memes-pipeline/memes/internal/screenshot"
)

// Report regenerates every table and figure of the paper from a pipeline
// result and renders them as text. It is the engine behind cmd/memereport
// and the benchmark harness.
type Report struct {
	res    *pipeline.Result
	metric *distance.Metric
	infCfg InfluenceConfig
}

// NewReport builds a report generator over a pipeline result.
func NewReport(res *pipeline.Result) (*Report, error) {
	metric, err := distance.New()
	if err != nil {
		return nil, err
	}
	return &Report{res: res, metric: metric, infCfg: DefaultInfluenceConfig()}, nil
}

// Result exposes the underlying pipeline result.
func (r *Report) Result() *pipeline.Result { return r.res }

// Metric exposes the distance metric used for Figures 6 and 7.
func (r *Report) Metric() *distance.Metric { return r.metric }

// Section is one rendered report section: a table or figure of the paper.
type Section struct {
	// Title names the paper table or figure the section reproduces.
	Title string `json:"title"`
	// Body is the rendered text of the section.
	Body string `json:"body"`
}

// Sections renders every table and figure of the paper in order and returns
// them individually, so callers (cmd/memereport's JSON mode, dashboards)
// can consume the report structurally instead of as one text blob.
func (r *Report) Sections() ([]Section, error) {
	return r.SectionsCtx(context.Background())
}

// noCtx adapts a context-free section renderer to the ctx-threaded shape
// SectionsCtx iterates over. Those sections are cheap (the expensive ones —
// the Hawkes fits — take ctx directly); cancellation still lands between
// sections.
func noCtx(f func() (string, error)) func(context.Context) (string, error) {
	return func(context.Context) (string, error) { return f() }
}

// SectionsCtx is Sections with cooperative cancellation: ctx is checked
// before each section, and the Hawkes-fitting influence sections thread it
// through to every EM iteration. The served /v1/report endpoint uses this
// so an abandoned request stops burning CPU mid-fit. Output is identical to
// Sections for an uncancelled ctx.
func (r *Report) SectionsCtx(ctx context.Context) ([]Section, error) {
	sections := []struct {
		title  string
		render func(context.Context) (string, error)
	}{
		{"Table 1: dataset overview", noCtx(r.RenderTable1)},
		{"Table 2: clustering statistics", noCtx(r.RenderTable2)},
		{"Table 3: top KYM entries per fringe community (by clusters)", noCtx(r.RenderTable3)},
		{"Table 4: top meme entries per community (by posts)", noCtx(r.RenderTable4)},
		{"Table 5: top people entries per community (by posts)", noCtx(r.RenderTable5)},
		{"Table 6: top subreddits (all / racist / politics)", noCtx(r.RenderTable6)},
		{"Table 7: Hawkes events per community", noCtx(r.RenderTable7)},
		{"Table 8: clustering threshold sweep", noCtx(r.RenderTable8)},
		{"Table 9: screenshot classifier training corpus", noCtx(r.RenderTable9)},
		{"Figure 3: perceptual similarity decay", noCtx(r.RenderFigure3)},
		{"Figure 4: KYM dataset statistics", noCtx(r.RenderFigure4)},
		{"Figure 5: annotation CDFs", noCtx(r.RenderFigure5)},
		{"Figure 6: frog meme dendrogram", noCtx(r.RenderFigure6)},
		{"Figure 7: cluster graph", noCtx(r.RenderFigure7)},
		{"Figure 8: temporal meme activity", noCtx(r.RenderFigure8)},
		{"Figure 9: post score CDFs", noCtx(r.RenderFigure9)},
		{"Figure 10: attribution toy example", noCtx(r.RenderFigure10)},
		{"Figures 11-12: influence matrices (all memes)", r.renderInfluenceAllCtx},
		{"Figures 13,15: influence, racist vs non-racist", r.renderInfluenceRacistCtx},
		{"Figures 14,16: influence, political vs non-political", r.renderInfluencePoliticalCtx},
		{"Figure 17: per-cluster false positives vs threshold", noCtx(r.RenderFigure17)},
		{"Figure 19: screenshot classifier ROC", noCtx(r.RenderFigure19)},
		{"Appendix B: annotation quality", noCtx(r.RenderAppendixB)},
	}
	out := make([]Section, 0, len(sections))
	for _, s := range sections {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		text, err := s.render(ctx)
		if err != nil {
			return nil, fmt.Errorf("rendering %q: %w", s.title, err)
		}
		out = append(out, Section{Title: s.title, Body: text})
	}
	return out, nil
}

// RenderAll produces the full paper report: every table and figure in order,
// as one text document.
func (r *Report) RenderAll() (string, error) {
	return r.RenderAllCtx(context.Background())
}

// RenderAllCtx is RenderAll with cooperative cancellation (see SectionsCtx).
func (r *Report) RenderAllCtx(ctx context.Context) (string, error) {
	sections, err := r.SectionsCtx(ctx)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, s := range sections {
		b.WriteString("== " + s.Title + " ==\n")
		b.WriteString(s.Body)
		b.WriteString("\n")
	}
	return b.String(), nil
}

func table(render func(w *tabwriter.Writer)) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 0, 4, 2, ' ', 0)
	render(w)
	w.Flush()
	return b.String()
}

// RenderTable1 renders the dataset overview.
func (r *Report) RenderTable1() (string, error) {
	rows := DatasetOverview(r.res.Dataset)
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Platform\t#Posts\t#Posts w/ images\t#Images\t#Unique pHashes")
		for _, row := range rows {
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n",
				row.Platform, row.Posts, row.PostsWithImages, row.Images, row.UniquePHashes)
		}
	}), nil
}

// RenderTable2 renders the clustering statistics.
func (r *Report) RenderTable2() (string, error) {
	rows := ClusteringStats(r.res)
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Community\t#Images\tNoise\t#Clusters\t#Annotated (%)")
		for _, row := range rows {
			fmt.Fprintf(w, "%s\t%d\t%.0f%%\t%d\t%d (%.0f%%)\n",
				row.Community, row.Images, row.NoisePercent, row.Clusters,
				row.Annotated, row.AnnotatedPerc)
		}
	}), nil
}

func renderEntryCounts(byComm map[string][]EntryCount, unit string) string {
	names := make([]string, 0, len(byComm))
	for name := range byComm {
		names = append(names, name)
	}
	sort.Strings(names)
	return table(func(w *tabwriter.Writer) {
		for _, name := range names {
			fmt.Fprintf(w, "%s\tEntry\tCategory\t%s\t%%\tflags\n", name, unit)
			for _, ec := range byComm[name] {
				flags := ""
				if ec.Racist {
					flags += "(R)"
				}
				if ec.Political {
					flags += "(P)"
				}
				fmt.Fprintf(w, "\t%s\t%s\t%d\t%.1f%%\t%s\n", ec.Entry, ec.Category, ec.Count, ec.Percent, flags)
			}
		}
	})
}

// RenderTable3 renders the top entries by clusters.
func (r *Report) RenderTable3() (string, error) {
	return renderEntryCounts(TopEntriesByClusters(r.res, 20), "Clusters"), nil
}

// RenderTable4 renders the top meme entries by posts.
func (r *Report) RenderTable4() (string, error) {
	return renderEntryCounts(TopMemesByPosts(r.res, 20), "Posts"), nil
}

// RenderTable5 renders the top people entries by posts.
func (r *Report) RenderTable5() (string, error) {
	return renderEntryCounts(TopPeopleByPosts(r.res, 15), "Posts"), nil
}

// RenderTable6 renders the top subreddits.
func (r *Report) RenderTable6() (string, error) {
	groups := TopSubreddits(r.res, 10)
	render := func(title string, rows []SubredditCount) string {
		return table(func(w *tabwriter.Writer) {
			fmt.Fprintf(w, "%s\tSubreddit\tPosts\t%%\n", title)
			for _, row := range rows {
				fmt.Fprintf(w, "\t%s\t%d\t%.1f%%\n", row.Subreddit, row.Posts, row.Percent)
			}
		})
	}
	return render("All memes", groups.All) +
		render("Racism-related", groups.Racist) +
		render("Politics-related", groups.Politics), nil
}

// RenderTable7 renders the Hawkes event counts.
func (r *Report) RenderTable7() (string, error) {
	rows := EventCounts(r.res)
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Community\tEvents")
		for _, row := range rows {
			fmt.Fprintf(w, "%s\t%d\n", row.Community, row.Events)
		}
	}), nil
}

// RenderTable8 renders the clustering sweep.
func (r *Report) RenderTable8() (string, error) {
	rows, err := ClusterSweep(r.res.Dataset, []int{2, 4, 6, 8, 10})
	if err != nil {
		return "", err
	}
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Distance\t#Clusters\t%Noise")
		for _, row := range rows {
			fmt.Fprintf(w, "%d\t%d\t%.1f%%\n", row.Eps, row.Clusters, row.NoisePercent)
		}
	}), nil
}

// RenderTable9 renders the screenshot training-corpus composition.
func (r *Report) RenderTable9() (string, error) {
	rows := ScreenshotDataset(screenshot.PaperCounts())
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Source\t#Images (paper corpus)")
		for _, row := range rows {
			fmt.Fprintf(w, "%s\t%d\n", row.Source, row.Images)
		}
	}), nil
}

// RenderFigure3 renders the perceptual decay curves at selected distances.
func (r *Report) RenderFigure3() (string, error) {
	series := PerceptualDecay([]float64{1, 25, 64})
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "d\ttau=1\ttau=25\ttau=64")
		for _, d := range []int{0, 1, 2, 4, 8, 16, 32, 48, 64} {
			fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.3f\n", d, series[0].Y[d], series[1].Y[d], series[2].Y[d])
		}
	}), nil
}

// RenderFigure4 renders KYM dataset statistics.
func (r *Report) RenderFigure4() (string, error) {
	st, err := ComputeKYMStats(r.res.Site)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(fmt.Sprintf("entries=%d gallery images=%d\n", st.Entries, st.Images))
	b.WriteString("categories: " + renderPercentMap(st.CategoryPercent) + "\n")
	b.WriteString("origins:    " + renderPercentMap(st.OriginPercent) + "\n")
	b.WriteString(fmt.Sprintf("images-per-entry CDF points: %d (median at %.0f)\n",
		len(st.ImagesPerEntryCDF.X), seriesMedianX(st.ImagesPerEntryCDF)))
	return b.String(), nil
}

func renderPercentMap(m map[string]float64) string {
	// Stable sort over key-ordered input: ties render alphabetically.
	keys := sortedKeys(m)
	sort.SliceStable(keys, func(i, j int) bool { return m[keys[i]] > m[keys[j]] })
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s %.1f%%", k, m[k])
	}
	return strings.Join(parts, ", ")
}

func seriesMedianX(s Series) float64 {
	for i, y := range s.Y {
		if y >= 0.5 {
			return s.X[i]
		}
	}
	if len(s.X) > 0 {
		return s.X[len(s.X)-1]
	}
	return 0
}

// RenderFigure5 renders the annotation CDF summary.
func (r *Report) RenderFigure5() (string, error) {
	cdfs, err := ComputeAnnotationCDFs(r.res)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, comm := range sortedKeys(cdfs.EntriesPerCluster) {
		s := cdfs.EntriesPerCluster[comm]
		b.WriteString(fmt.Sprintf("%s: KYM entries per cluster, %d distinct values, P[1 entry]=%.2f\n",
			comm, len(s.X), firstY(s)))
	}
	for _, comm := range sortedKeys(cdfs.ClustersPerEntry) {
		s := cdfs.ClustersPerEntry[comm]
		b.WriteString(fmt.Sprintf("%s: clusters per KYM entry, %d distinct values, P[1 cluster]=%.2f\n",
			comm, len(s.X), firstY(s)))
	}
	return b.String(), nil
}

// sortedKeys returns the map's keys in ascending order, so report sections
// built from maps render deterministically.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func firstY(s Series) float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[0]
}

// RenderFigure6 renders the frog-family dendrogram summary.
func (r *Report) RenderFigure6() (string, error) {
	dend, err := MemeFamilyDendrogram(r.res, r.metric, []string{"frog", "pepe", "apu"})
	if err != nil {
		return "", err
	}
	labels := dend.Dendrogram.Cut(0.45)
	distinct := map[int]bool{}
	for _, l := range labels {
		distinct[l] = true
	}
	return fmt.Sprintf("frog-family clusters: %d; groups at cut 0.45: %d; leaves: %s ...\n",
		dend.Dendrogram.NumLeaves(), len(distinct), strings.Join(firstN(dend.Leaves, 8), ", ")), nil
}

func firstN(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// RenderFigure7 renders the cluster graph summary.
func (r *Report) RenderFigure7() (string, error) {
	g, err := BuildClusterGraph(r.res, r.metric, DefaultClusterGraphConfig())
	if err != nil {
		return "", err
	}
	purity := g.ComponentPurity()
	mean := 0.0
	for _, p := range purity {
		mean += p
	}
	if len(purity) > 0 {
		mean /= float64(len(purity))
	}
	return fmt.Sprintf("nodes=%d edges=%d components=%d mean component purity=%.2f\n",
		len(g.Nodes), len(g.Edges), len(g.ConnectedComponents()), mean), nil
}

// RenderFigure8 renders the temporal activity summary.
func (r *Report) RenderFigure8() (string, error) {
	var b strings.Builder
	for _, group := range []MemeGroup{AllMemes, RacistMemes, PoliticalMemes} {
		series := TemporalSeries(r.res, group)
		b.WriteString(group.String() + ":\n")
		names := make([]string, 0, len(series))
		for name := range series {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			s := series[name]
			b.WriteString(fmt.Sprintf("  %s: mean %.3f%% of daily posts contain %s memes\n",
				name, meanOf(s.Y), group))
		}
	}
	return b.String(), nil
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// RenderFigure9 renders the score CDF summary.
func (r *Report) RenderFigure9() (string, error) {
	cdfs, err := ComputeScoreCDFs(r.res)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, platform := range []string{"Reddit", "Gab"} {
		b.WriteString(platform + " mean scores: ")
		b.WriteString(renderFloatMap(cdfs.Means[platform]))
		b.WriteString("\n")
	}
	return b.String(), nil
}

func renderFloatMap(m map[string]float64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%.1f", k, m[k])
	}
	return strings.Join(parts, " ")
}

// RenderFigure10 renders the attribution toy example.
func (r *Report) RenderFigure10() (string, error) {
	toy, err := RunAttributionToy(7)
	if err != nil {
		return "", err
	}
	return renderMatrix([]string{"A", "B", "C"}, toy.Raw, nil), nil
}

// RenderInfluenceAll renders Figures 11 and 12.
func (r *Report) RenderInfluenceAll() (string, error) {
	return r.renderInfluenceAllCtx(context.Background())
}

func (r *Report) renderInfluenceAllCtx(ctx context.Context) (string, error) {
	inf, err := EstimateInfluenceCtx(ctx, r.res, AllMemes, r.infCfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Raw influence (% of destination events caused by source):\n")
	b.WriteString(renderMatrix(inf.Communities, inf.Raw, nil))
	b.WriteString("Normalized influence (per source event):\n")
	b.WriteString(renderMatrix(inf.Communities, inf.Normalized, inf.TotalExternal))
	return b.String(), nil
}

// RenderInfluenceRacist renders Figures 13 and 15.
func (r *Report) RenderInfluenceRacist() (string, error) {
	return r.renderInfluenceRacistCtx(context.Background())
}

func (r *Report) renderInfluenceRacistCtx(ctx context.Context) (string, error) {
	return r.renderComparison(ctx, RacistMemes, NonRacistMemes)
}

// RenderInfluencePolitical renders Figures 14 and 16.
func (r *Report) RenderInfluencePolitical() (string, error) {
	return r.renderInfluencePoliticalCtx(context.Background())
}

func (r *Report) renderInfluencePoliticalCtx(ctx context.Context) (string, error) {
	return r.renderComparison(ctx, PoliticalMemes, NonPoliticalMemes)
}

func (r *Report) renderComparison(ctx context.Context, group, complement MemeGroup) (string, error) {
	cmp, err := CompareGroupsCtx(ctx, r.res, group, complement, r.infCfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(fmt.Sprintf("%s raw influence:\n", group))
	b.WriteString(renderMatrix(cmp.Group.Communities, cmp.Group.Raw, nil))
	b.WriteString(fmt.Sprintf("%s raw influence:\n", complement))
	b.WriteString(renderMatrix(cmp.Complement.Communities, cmp.Complement.Raw, nil))
	b.WriteString(fmt.Sprintf("%s normalized external: %s\n", group, renderVector(cmp.Group.TotalExternal)))
	b.WriteString(fmt.Sprintf("%s normalized external: %s\n", complement, renderVector(cmp.Complement.TotalExternal)))
	sig := 0
	for _, row := range cmp.Significant {
		for _, s := range row {
			if s {
				sig++
			}
		}
	}
	b.WriteString(fmt.Sprintf("significant cells (KS p<0.01): %d\n", sig))
	return b.String(), nil
}

func renderMatrix(names []string, m [][]float64, totalExt []float64) string {
	return table(func(w *tabwriter.Writer) {
		header := "src\\dst"
		for _, n := range names {
			header += "\t" + n
		}
		if totalExt != nil {
			header += "\tTotal Ext"
		}
		fmt.Fprintln(w, header)
		for i, row := range m {
			line := names[i]
			for _, v := range row {
				line += fmt.Sprintf("\t%.2f%%", v*100)
			}
			if totalExt != nil {
				line += fmt.Sprintf("\t%.2f%%", totalExt[i]*100)
			}
			fmt.Fprintln(w, line)
		}
	})
}

func renderVector(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.2f%%", x*100)
	}
	return strings.Join(parts, " ")
}

// RenderFigure17 renders the false-positive sweep.
func (r *Report) RenderFigure17() (string, error) {
	rows, err := ClusterFalsePositives(r.res.Dataset, []int{6, 8, 10})
	if err != nil {
		return "", err
	}
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Distance\tMean FP fraction")
		for _, row := range rows {
			fmt.Fprintf(w, "%d\t%.3f\n", row.Eps, row.MeanFraction)
		}
	}), nil
}

// RenderFigure19 renders the screenshot classifier evaluation. The corpus is
// a scaled-down version of the paper's so the report renders in seconds.
func (r *Report) RenderFigure19() (string, error) {
	res, err := screenshot.RunExperiment(screenshot.DefaultCorpusConfig(), screenshot.DefaultTrainConfig())
	if err != nil {
		return "", err
	}
	ev := res.Evaluation
	return fmt.Sprintf("AUC=%.3f accuracy=%.3f precision=%.3f recall=%.3f F1=%.3f (train=%d test=%d)\n",
		ev.AUC, ev.Accuracy, ev.Precision, ev.Recall, ev.F1, res.TrainSize, res.TestSize), nil
}

// RenderAppendixB renders the annotation-quality evaluation.
func (r *Report) RenderAppendixB() (string, error) {
	res, err := AnnotationQuality()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("Fleiss kappa=%.2f majority accuracy=%.0f%% bad KYM entries=%.2f%% (subjects=%d entries=%d)\n",
		res.Kappa, res.MajorityAccuracy*100, res.BadEntryFraction*100,
		res.SubjectsAssessed, res.EntriesAssessed), nil
}
