package analysis

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/memes-pipeline/memes/internal/annotate"
	"github.com/memes-pipeline/memes/internal/cluster"
	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/distance"
	"github.com/memes-pipeline/memes/internal/graphviz"
	"github.com/memes-pipeline/memes/internal/phash"
	"github.com/memes-pipeline/memes/internal/pipeline"
	"github.com/memes-pipeline/memes/internal/stats"
)

// Series is a generic (x, y) series used for CDFs and time series.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// PerceptualDecay computes Figure 3: r_perceptual as a function of the
// Hamming distance for each smoother value.
func PerceptualDecay(taus []float64) []Series {
	var out []Series
	for _, tau := range taus {
		s := Series{Label: fmt.Sprintf("tau=%g", tau)}
		for d := 0; d <= phash.MaxDistance; d++ {
			s.X = append(s.X, float64(d))
			s.Y = append(s.Y, distance.PerceptualSimilarity(d, tau))
		}
		out = append(out, s)
	}
	return out
}

// KYMStats bundles the three panels of Figure 4.
type KYMStats struct {
	// CategoryPercent is the share of entries per category (Figure 4a).
	CategoryPercent map[string]float64
	// ImagesPerEntryCDF is the CDF of gallery sizes (Figure 4b).
	ImagesPerEntryCDF Series
	// OriginPercent is the share of entries per origin platform (Figure 4c).
	OriginPercent map[string]float64
	// Entries and Images are the site totals.
	Entries int
	Images  int
}

// ComputeKYMStats computes Figure 4 from an annotation site.
func ComputeKYMStats(site *annotate.Site) (KYMStats, error) {
	if site == nil || site.NumEntries() == 0 {
		return KYMStats{}, errors.New("analysis: empty annotation site")
	}
	out := KYMStats{
		CategoryPercent: map[string]float64{},
		OriginPercent:   map[string]float64{},
		Entries:         site.NumEntries(),
		Images:          site.NumGalleryImages(),
	}
	total := float64(site.NumEntries())
	for cat, n := range site.CategoryCounts() {
		out.CategoryPercent[string(cat)] = float64(n) / total * 100
	}
	for origin, n := range site.OriginCounts() {
		out.OriginPercent[origin] = float64(n) / total * 100
	}
	sizes := site.GallerySizes()
	vals := make([]float64, len(sizes))
	for i, s := range sizes {
		vals[i] = float64(s)
	}
	cdf, err := stats.NewCDF(vals)
	if err != nil {
		return KYMStats{}, err
	}
	xs, ys := cdf.Points()
	out.ImagesPerEntryCDF = Series{Label: "images per KYM entry", X: xs, Y: ys}
	return out, nil
}

// AnnotationCDFs bundles the two panels of Figure 5.
type AnnotationCDFs struct {
	// EntriesPerCluster maps community name to the CDF of the number of KYM
	// entries matching each annotated cluster (Figure 5a).
	EntriesPerCluster map[string]Series
	// ClustersPerEntry maps community name to the CDF of the number of
	// clusters annotated by each KYM entry (Figure 5b).
	ClustersPerEntry map[string]Series
}

// ComputeAnnotationCDFs computes Figure 5 from the pipeline result.
func ComputeAnnotationCDFs(res *pipeline.Result) (AnnotationCDFs, error) {
	out := AnnotationCDFs{
		EntriesPerCluster: map[string]Series{},
		ClustersPerEntry:  map[string]Series{},
	}
	for _, comm := range []dataset.Community{dataset.Pol, dataset.TheDonald, dataset.Gab} {
		var perCluster []float64
		perEntry := map[string]int{}
		for _, c := range res.Clusters {
			if c.Community != comm || !c.Annotated() {
				continue
			}
			perCluster = append(perCluster, float64(len(c.Annotation.Matches)))
			for _, m := range c.Annotation.Matches {
				perEntry[m.Entry.Name]++
			}
		}
		if len(perCluster) == 0 {
			continue
		}
		cdf1, err := stats.NewCDF(perCluster)
		if err != nil {
			return out, err
		}
		x1, y1 := cdf1.Points()
		out.EntriesPerCluster[comm.String()] = Series{Label: comm.String(), X: x1, Y: y1}

		var clustersPer []float64
		for _, n := range perEntry {
			clustersPer = append(clustersPer, float64(n))
		}
		cdf2, err := stats.NewCDF(clustersPer)
		if err != nil {
			return out, err
		}
		x2, y2 := cdf2.Points()
		out.ClustersPerEntry[comm.String()] = Series{Label: comm.String(), X: x2, Y: y2}
	}
	if len(out.EntriesPerCluster) == 0 {
		return out, errors.New("analysis: no annotated clusters for Figure 5")
	}
	return out, nil
}

// DendrogramResult is the Figure 6 output: the merge tree over the clusters
// of a meme family plus the labels of its leaves.
type DendrogramResult struct {
	Dendrogram *cluster.Dendrogram
	// Leaves holds one label per leaf in the same item order used to build
	// the dendrogram, formatted like the paper's "4@smug-frog" axis labels.
	Leaves []string
	// ClusterIDs maps dendrogram items back to pipeline cluster IDs.
	ClusterIDs []int
}

// MemeFamilyDendrogram computes Figure 6: the hierarchical relationship, by
// the custom distance metric, between all annotated clusters whose
// representative entry name contains any of the given substrings (the paper
// uses the "frog" memes).
func MemeFamilyDendrogram(res *pipeline.Result, metric *distance.Metric, nameSubstrings []string) (*DendrogramResult, error) {
	if metric == nil {
		return nil, errors.New("analysis: nil metric")
	}
	if len(nameSubstrings) == 0 {
		return nil, errors.New("analysis: no name substrings supplied")
	}
	var ids []int
	for _, c := range res.Clusters {
		if !c.Annotated() {
			continue
		}
		name := c.EntryName()
		for _, sub := range nameSubstrings {
			if sub != "" && contains(name, sub) {
				ids = append(ids, c.ID)
				break
			}
		}
	}
	if len(ids) == 0 {
		return nil, errors.New("analysis: no clusters match the requested meme family")
	}
	feats := make([]distance.ClusterFeatures, len(ids))
	leaves := make([]string, len(ids))
	for i, id := range ids {
		c := res.Clusters[id]
		feats[i] = c.Features()
		leaves[i] = fmt.Sprintf("%s@%s", communityTag(c.Community), c.EntryName())
	}
	dend, err := cluster.Agglomerative(len(ids), func(i, j int) float64 {
		return metric.Distance(feats[i], feats[j])
	}, cluster.AverageLinkage)
	if err != nil {
		return nil, err
	}
	return &DendrogramResult{Dendrogram: dend, Leaves: leaves, ClusterIDs: ids}, nil
}

func communityTag(c dataset.Community) string {
	switch c {
	case dataset.Pol:
		return "4"
	case dataset.TheDonald:
		return "D"
	case dataset.Gab:
		return "G"
	default:
		return "?"
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// ClusterGraphConfig controls the Figure 7 graph construction.
type ClusterGraphConfig struct {
	// Kappa is the distance threshold for drawing an edge.
	Kappa float64
	// MinDegree filters out nodes with fewer connections.
	MinDegree int
	// Layout enables force-directed layout of the filtered graph.
	Layout bool
}

// DefaultClusterGraphConfig mirrors the paper: kappa=0.45, degree >= 10.
// The degree filter is lowered to 2 here because the synthetic corpus has
// hundreds rather than tens of thousands of clusters.
func DefaultClusterGraphConfig() ClusterGraphConfig {
	return ClusterGraphConfig{Kappa: graphviz.DefaultKappa, MinDegree: 2, Layout: true}
}

// BuildClusterGraph computes Figure 7: the graph over annotated cluster
// medoids with edges below the distance threshold, degree-filtered and laid
// out.
func BuildClusterGraph(res *pipeline.Result, metric *distance.Metric, cfg ClusterGraphConfig) (*graphviz.Graph, error) {
	if metric == nil {
		return nil, errors.New("analysis: nil metric")
	}
	ids := res.AnnotatedClusters()
	if len(ids) == 0 {
		return nil, errors.New("analysis: no annotated clusters for Figure 7")
	}
	feats := make([]distance.ClusterFeatures, len(ids))
	labels := make([]string, len(ids))
	groups := make([]string, len(ids))
	sizes := make([]int, len(ids))
	for i, id := range ids {
		c := res.Clusters[id]
		feats[i] = c.Features()
		labels[i] = c.EntryName()
		groups[i] = c.EntryName()
		sizes[i] = c.Images
	}
	dist := metric.Matrix(feats)
	g, err := graphviz.Build(dist, labels, groups, sizes, cfg.Kappa)
	if err != nil {
		return nil, err
	}
	if cfg.MinDegree > 0 {
		g = g.FilterByDegree(cfg.MinDegree)
	}
	if cfg.Layout && len(g.Nodes) > 0 {
		if err := g.Layout(graphviz.DefaultLayoutConfig()); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// MemeGroup selects which memes a temporal or influence analysis covers.
type MemeGroup int

// Meme groups used throughout Section 4.2 and Section 5.
const (
	AllMemes MemeGroup = iota
	RacistMemes
	NonRacistMemes
	PoliticalMemes
	NonPoliticalMemes
)

func (g MemeGroup) String() string {
	switch g {
	case AllMemes:
		return "all"
	case RacistMemes:
		return "racist"
	case NonRacistMemes:
		return "non-racist"
	case PoliticalMemes:
		return "politics"
	case NonPoliticalMemes:
		return "non-politics"
	default:
		return fmt.Sprintf("MemeGroup(%d)", int(g))
	}
}

// ParseMemeGroup parses the wire form of a meme group — the exact strings
// String renders ("all", "racist", "non-racist", "politics",
// "non-politics"), so a group round-trips through JSON and flag values.
func ParseMemeGroup(s string) (MemeGroup, error) {
	for _, g := range []MemeGroup{AllMemes, RacistMemes, NonRacistMemes, PoliticalMemes, NonPoliticalMemes} {
		if s == g.String() {
			return g, nil
		}
	}
	return 0, fmt.Errorf("analysis: unknown meme group %q (want all, racist, non-racist, politics, or non-politics)", s)
}

// inGroup reports whether a cluster belongs to the meme group.
func inGroup(c *pipeline.ClusterInfo, g MemeGroup) bool {
	switch g {
	case AllMemes:
		return true
	case RacistMemes:
		return c.Racist
	case NonRacistMemes:
		return !c.Racist
	case PoliticalMemes:
		return c.Political
	case NonPoliticalMemes:
		return !c.Political
	default:
		return false
	}
}

// TemporalSeries computes Figure 8: for each community, the percentage of
// its posts per day that contain memes of the given group.
func TemporalSeries(res *pipeline.Result, group MemeGroup) map[string]Series {
	days := int(res.Dataset.End.Sub(res.Dataset.Start).Hours()/24) + 1
	if days < 1 {
		days = 1
	}
	memePosts := map[dataset.Community][]float64{}
	totalPosts := map[dataset.Community][]float64{}
	for _, comm := range dataset.Communities() {
		memePosts[comm] = make([]float64, days)
		totalPosts[comm] = make([]float64, days)
	}
	dayOf := func(t time.Time) int {
		d := int(t.Sub(res.Dataset.Start).Hours() / 24)
		if d < 0 {
			d = 0
		}
		if d >= days {
			d = days - 1
		}
		return d
	}
	for _, p := range res.Dataset.Posts {
		totalPosts[p.Community][dayOf(p.Timestamp)]++
	}
	for _, a := range res.Associations {
		c := &res.Clusters[a.ClusterID]
		if !inGroup(c, group) {
			continue
		}
		p := res.Dataset.Posts[a.PostIndex]
		memePosts[p.Community][dayOf(p.Timestamp)]++
	}
	// Aggregate counts per platform (The Donald folds into Reddit, like the
	// paper) and convert to daily percentages.
	memeByPlatform := map[string][]float64{}
	totalByPlatform := map[string][]float64{}
	for comm := range memePosts {
		name := comm.Platform()
		if memeByPlatform[name] == nil {
			memeByPlatform[name] = make([]float64, days)
			totalByPlatform[name] = make([]float64, days)
		}
		for d := 0; d < days; d++ {
			memeByPlatform[name][d] += memePosts[comm][d]
			totalByPlatform[name][d] += totalPosts[comm][d]
		}
	}
	out := map[string]Series{}
	for name := range memeByPlatform {
		s := Series{Label: name, X: make([]float64, days), Y: make([]float64, days)}
		for d := 0; d < days; d++ {
			s.X[d] = float64(d)
			if totalByPlatform[name][d] > 0 {
				s.Y[d] = memeByPlatform[name][d] / totalByPlatform[name][d] * 100
			}
		}
		out[name] = s
	}
	return out
}

// ScoreCDFs computes Figure 9: the CDF of post scores on Reddit (including
// The Donald) and Gab for political/non-political and racist/non-racist
// memes, plus all memes.
type ScoreCDFs struct {
	// Reddit and Gab map group name ("politics", "racism", ...) to CDF series.
	Reddit map[string]Series
	Gab    map[string]Series
	// Means holds the mean score per platform and group for the textual
	// comparison in Section 4.2.3.
	Means map[string]map[string]float64
}

// ComputeScoreCDFs computes Figure 9.
func ComputeScoreCDFs(res *pipeline.Result) (ScoreCDFs, error) {
	groups := []MemeGroup{PoliticalMemes, NonPoliticalMemes, RacistMemes, NonRacistMemes, AllMemes}
	out := ScoreCDFs{
		Reddit: map[string]Series{},
		Gab:    map[string]Series{},
		Means:  map[string]map[string]float64{"Reddit": {}, "Gab": {}},
	}
	scores := map[string]map[MemeGroup][]float64{"Reddit": {}, "Gab": {}}
	for _, a := range res.Associations {
		p := res.Dataset.Posts[a.PostIndex]
		var platform string
		switch p.Community {
		case dataset.Reddit, dataset.TheDonald:
			platform = "Reddit"
		case dataset.Gab:
			platform = "Gab"
		default:
			continue
		}
		c := &res.Clusters[a.ClusterID]
		for _, g := range groups {
			if inGroup(c, g) {
				scores[platform][g] = append(scores[platform][g], float64(p.Score))
			}
		}
	}
	for platform, byGroup := range scores {
		for g, vals := range byGroup {
			if len(vals) == 0 {
				continue
			}
			cdf, err := stats.NewCDF(vals)
			if err != nil {
				return out, err
			}
			xs, ys := cdf.Points()
			s := Series{Label: g.String(), X: xs, Y: ys}
			if platform == "Reddit" {
				out.Reddit[g.String()] = s
			} else {
				out.Gab[g.String()] = s
			}
			out.Means[platform][g.String()] = stats.Mean(vals)
		}
	}
	if len(out.Reddit) == 0 && len(out.Gab) == 0 {
		return out, errors.New("analysis: no scored posts for Figure 9")
	}
	return out, nil
}

// FalsePositiveRow is one eps value of Figure 17 with the CDF of per-cluster
// false-positive fractions measured against the planted ground truth.
type FalsePositiveRow struct {
	Eps int
	CDF Series
	// MeanFraction is the mean per-cluster false-positive fraction.
	MeanFraction float64
}

// ClusterFalsePositives computes Figure 17: for each eps, cluster the /pol/
// images and measure, per cluster, the fraction of images whose planted
// ground-truth meme differs from the cluster's dominant meme.
func ClusterFalsePositives(ds *dataset.Dataset, epsValues []int) ([]FalsePositiveRow, error) {
	if len(epsValues) == 0 {
		return nil, errors.New("analysis: no eps values supplied")
	}
	// Distinct /pol/ hashes with counts and ground-truth votes.
	type hinfo struct {
		count int
		votes map[int]int
	}
	var hashes []phash.Hash
	var infos []*hinfo
	index := map[phash.Hash]int{}
	for _, p := range ds.Posts {
		if !p.HasImage || p.Community != dataset.Pol {
			continue
		}
		h := p.PHash()
		at, ok := index[h]
		if !ok {
			at = len(hashes)
			index[h] = at
			hashes = append(hashes, h)
			infos = append(infos, &hinfo{votes: map[int]int{}})
		}
		infos[at].count++
		infos[at].votes[p.TruthMeme]++
	}
	if len(hashes) == 0 {
		return nil, errors.New("analysis: no /pol/ images")
	}
	counts := make([]int, len(hashes))
	for i, inf := range infos {
		counts[i] = inf.count
	}
	var out []FalsePositiveRow
	for _, eps := range epsValues {
		res, err := cluster.DBSCAN(hashes, counts, cluster.DBSCANConfig{Eps: eps, MinPts: 5})
		if err != nil {
			return nil, err
		}
		members := res.Members()
		var fractions []float64
		for _, m := range members {
			if len(m) == 0 {
				continue
			}
			votes := map[int]int{}
			total := 0
			for _, i := range m {
				for meme, v := range infos[i].votes {
					votes[meme] += v
					total += v
				}
			}
			best := 0
			for _, v := range votes {
				if v > best {
					best = v
				}
			}
			if total > 0 {
				fractions = append(fractions, 1-float64(best)/float64(total))
			}
		}
		if len(fractions) == 0 {
			fractions = []float64{0}
		}
		cdf, err := stats.NewCDF(fractions)
		if err != nil {
			return nil, err
		}
		xs, ys := cdf.Points()
		out = append(out, FalsePositiveRow{
			Eps:          eps,
			CDF:          Series{Label: fmt.Sprintf("distance = %d", eps), X: xs, Y: ys},
			MeanFraction: stats.Mean(fractions),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Eps < out[j].Eps })
	return out, nil
}
