package analysis

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/memes-pipeline/memes/internal/annotate"
	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/hawkes"
	"github.com/memes-pipeline/memes/internal/parallel"
	"github.com/memes-pipeline/memes/internal/pipeline"
	"github.com/memes-pipeline/memes/internal/stats"
)

// InfluenceConfig controls the Section 5 influence estimation.
type InfluenceConfig struct {
	// Omega is the Hawkes kernel decay rate (events per day time scale).
	Omega float64
	// MaxIter caps the EM iterations per fit.
	MaxIter int
	// MinEventsPerFit is the minimum number of events a meme needs before a
	// Hawkes model is fitted to it; smaller memes attribute every event to
	// its own community's background (which is what a fit on so little data
	// would conclude anyway).
	MinEventsPerFit int
}

// DefaultInfluenceConfig mirrors the analysis defaults.
func DefaultInfluenceConfig() InfluenceConfig {
	return InfluenceConfig{Omega: 1.0, MaxIter: 60, MinEventsPerFit: 20}
}

// InfluenceResult bundles the Figure 11/12 matrices for one meme group.
type InfluenceResult struct {
	Group MemeGroup
	// Communities gives the display names in matrix order.
	Communities []string
	// Events is Table 7 restricted to the group: meme posting events per
	// community.
	Events []int
	// Raw is Figure 11: Raw[src][dst] is the fraction of destination events
	// attributed to the source community (columns sum to 1).
	Raw [][]float64
	// Normalized is Figure 12: influence divided by the source community's
	// event count.
	Normalized [][]float64
	// TotalExternal is the "Total Ext" column: normalized influence summed
	// over all destinations other than the source itself.
	TotalExternal []float64
	// Total is the "Total" column (external plus self).
	Total []float64
}

// memeKey groups associations that belong to the same meme: the paper fits
// one Hawkes model per meme cluster, and the closest equivalent here is the
// representative KYM entry of the matched cluster (clusters of the same meme
// found on different fringe communities share it).
func memeKey(res *pipeline.Result, a pipeline.Association) string {
	return res.Clusters[a.ClusterID].EntryName()
}

// eventsByMeme converts the Step 6 associations of one meme group into
// per-meme Hawkes event series (time in days since the window start).
func eventsByMeme(res *pipeline.Result, group MemeGroup) map[string][]hawkes.Event {
	out := map[string][]hawkes.Event{}
	for _, a := range res.Associations {
		c := &res.Clusters[a.ClusterID]
		if !inGroup(c, group) {
			continue
		}
		p := res.Dataset.Posts[a.PostIndex]
		t := p.Timestamp.Sub(res.Dataset.Start).Hours() / 24
		key := memeKey(res, a)
		out[key] = append(out[key], hawkes.Event{Time: t, Process: int(p.Community)})
	}
	return out
}

// fitGroup fits one Hawkes model per meme (as the paper does for each of its
// 12.6K clusters), attributes every event to a root-cause community, and
// aggregates the per-meme attributions into the group's influence matrices
// and the per-event attribution samples used for KS testing.
func fitGroup(res *pipeline.Result, group MemeGroup, cfg InfluenceConfig) (*InfluenceResult, *groupAttribution, error) {
	return fitGroupCtx(context.Background(), res, group, cfg)
}

// fitGroupCtx is fitGroup with cooperative cancellation and parallel
// per-meme fits. The fits run concurrently (each is a self-contained EM
// loop), but the aggregation folds them serially in sorted meme-key order —
// float accumulation is not associative, so a deterministic fold order is
// what makes the matrices bitwise-identical across worker counts and
// between the offline and served paths.
func fitGroupCtx(ctx context.Context, res *pipeline.Result, group MemeGroup, cfg InfluenceConfig) (*InfluenceResult, *groupAttribution, error) {
	if cfg.Omega <= 0 || cfg.MaxIter <= 0 {
		return nil, nil, errors.New("analysis: invalid influence configuration")
	}
	byMeme := eventsByMeme(res, group)
	if len(byMeme) == 0 {
		return nil, nil, fmt.Errorf("analysis: no events for meme group %v", group)
	}
	keys := make([]string, 0, len(byMeme))
	for key := range byMeme {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	horizon := res.Dataset.End.Sub(res.Dataset.Start).Hours()/24 + 1
	k := dataset.NumCommunities

	// Fit phase: one independent Hawkes fit + attribution per meme that has
	// enough events; nil marks the small memes handled in the fold below.
	atts, err := parallel.MapErrCtx(ctx, len(keys), res.Config.Workers, func(i int) (*hawkes.Attribution, error) {
		events := byMeme[keys[i]]
		if len(events) < cfg.MinEventsPerFit {
			return nil, nil
		}
		fitCfg := hawkes.DefaultFitConfig(k, horizon)
		fitCfg.Omega = cfg.Omega
		fitCfg.MaxIter = cfg.MaxIter
		fit, err := hawkes.FitCtx(ctx, events, fitCfg)
		if err != nil {
			return nil, fmt.Errorf("analysis: fitting %v events: %w", group, err)
		}
		att, err := hawkes.Attribute(fit)
		if err != nil {
			return nil, fmt.Errorf("analysis: attributing %v events: %w", group, err)
		}
		return att, nil
	})
	if err != nil {
		return nil, nil, err
	}

	// Fold phase: serial, in sorted key order.
	agg := newGroupAttribution(k)
	for i, key := range keys {
		att := atts[i]
		if att == nil {
			// Too little data to infer cross-community excitation: each event
			// is credited to its own community's background.
			for _, e := range byMeme[key] {
				agg.add(e.Process, e.Process, 1)
				agg.addSample(e.Process, e.Process, 1)
				for src := 0; src < k; src++ {
					if src != e.Process {
						agg.addSample(src, e.Process, 0)
					}
				}
				agg.destTotals[e.Process]++
				agg.srcTotals[e.Process]++
			}
			continue
		}
		for j, e := range att.Events {
			agg.destTotals[e.Process]++
			agg.srcTotals[e.Process]++
			for src := 0; src < k; src++ {
				agg.add(src, e.Process, att.RootCause[j][src])
				agg.addSample(src, e.Process, att.RootCause[j][src])
			}
		}
	}

	names := make([]string, k)
	for i, c := range dataset.Communities() {
		names[i] = c.String()
	}
	summary := &InfluenceResult{
		Group:         group,
		Communities:   names,
		Events:        agg.eventCounts(),
		Raw:           agg.rawMatrix(),
		Normalized:    agg.normalizedMatrix(),
		TotalExternal: agg.externalInfluence(),
		Total:         agg.totalInfluence(),
	}
	return summary, agg, nil
}

// groupAttribution accumulates attribution mass across per-meme fits.
type groupAttribution struct {
	k          int
	attributed [][]float64 // [src][dst] expected events on dst rooted in src
	destTotals []float64
	srcTotals  []float64
	// samples[src][dst] holds the per-event attribution masses, used by the
	// KS comparisons of Figures 13-16.
	samples [][][]float64
}

func newGroupAttribution(k int) *groupAttribution {
	g := &groupAttribution{
		k:          k,
		attributed: make([][]float64, k),
		destTotals: make([]float64, k),
		srcTotals:  make([]float64, k),
		samples:    make([][][]float64, k),
	}
	for i := 0; i < k; i++ {
		g.attributed[i] = make([]float64, k)
		g.samples[i] = make([][]float64, k)
	}
	return g
}

func (g *groupAttribution) add(src, dst int, mass float64) {
	g.attributed[src][dst] += mass
}

func (g *groupAttribution) addSample(src, dst int, mass float64) {
	g.samples[src][dst] = append(g.samples[src][dst], mass)
}

func (g *groupAttribution) eventCounts() []int {
	out := make([]int, g.k)
	for i, v := range g.destTotals {
		out[i] = int(v + 0.5)
	}
	return out
}

func (g *groupAttribution) rawMatrix() [][]float64 {
	out := make([][]float64, g.k)
	for src := 0; src < g.k; src++ {
		out[src] = make([]float64, g.k)
		for dst := 0; dst < g.k; dst++ {
			if g.destTotals[dst] > 0 {
				out[src][dst] = g.attributed[src][dst] / g.destTotals[dst]
			}
		}
	}
	return out
}

func (g *groupAttribution) normalizedMatrix() [][]float64 {
	out := make([][]float64, g.k)
	for src := 0; src < g.k; src++ {
		out[src] = make([]float64, g.k)
		for dst := 0; dst < g.k; dst++ {
			if g.srcTotals[src] > 0 {
				out[src][dst] = g.attributed[src][dst] / g.srcTotals[src]
			}
		}
	}
	return out
}

func (g *groupAttribution) externalInfluence() []float64 {
	norm := g.normalizedMatrix()
	out := make([]float64, g.k)
	for src := 0; src < g.k; src++ {
		for dst := 0; dst < g.k; dst++ {
			if dst != src {
				out[src] += norm[src][dst]
			}
		}
	}
	return out
}

func (g *groupAttribution) totalInfluence() []float64 {
	norm := g.normalizedMatrix()
	out := make([]float64, g.k)
	for src := 0; src < g.k; src++ {
		for dst := 0; dst < g.k; dst++ {
			out[src] += norm[src][dst]
		}
	}
	return out
}

// EstimateInfluence fits per-meme Hawkes models to the posting events of the
// given meme group and aggregates them into the raw and normalized influence
// matrices (Figures 11 and 12).
func EstimateInfluence(res *pipeline.Result, group MemeGroup, cfg InfluenceConfig) (*InfluenceResult, error) {
	summary, _, err := fitGroup(res, group, cfg)
	return summary, err
}

// EstimateInfluenceCtx is EstimateInfluence with cooperative cancellation:
// the per-meme fits run in parallel (bounded by the result's worker
// configuration) and stop promptly when ctx is cancelled. For the same
// result, group, and configuration it returns bitwise-identical matrices to
// EstimateInfluence, for any worker count — the serving layer's contract.
func EstimateInfluenceCtx(ctx context.Context, res *pipeline.Result, group MemeGroup, cfg InfluenceConfig) (*InfluenceResult, error) {
	summary, _, err := fitGroupCtx(ctx, res, group, cfg)
	return summary, err
}

// GroupComparison holds the Figures 13-16 content: influence matrices for a
// meme group and its complement, plus per-cell KS significance of the
// difference in attribution distributions.
type GroupComparison struct {
	Group      *InfluenceResult
	Complement *InfluenceResult
	// Significant[src][dst] reports whether the difference between the group
	// and its complement in the per-event probability mass attributed to src
	// on destination dst is statistically significant (two-sample KS test,
	// p < 0.01), matching the asterisks of Figures 13-16.
	Significant [][]bool
}

// CompareGroups computes the racist-vs-non-racist (Figures 13 and 15) or
// political-vs-non-political (Figures 14 and 16) comparison.
func CompareGroups(res *pipeline.Result, group, complement MemeGroup, cfg InfluenceConfig) (*GroupComparison, error) {
	return CompareGroupsCtx(context.Background(), res, group, complement, cfg)
}

// CompareGroupsCtx is CompareGroups with cooperative cancellation threaded
// through both group fits.
func CompareGroupsCtx(ctx context.Context, res *pipeline.Result, group, complement MemeGroup, cfg InfluenceConfig) (*GroupComparison, error) {
	g, gAtt, err := fitGroupCtx(ctx, res, group, cfg)
	if err != nil {
		return nil, err
	}
	c, cAtt, err := fitGroupCtx(ctx, res, complement, cfg)
	if err != nil {
		return nil, err
	}
	k := len(g.Communities)
	sig := make([][]bool, k)
	for src := 0; src < k; src++ {
		sig[src] = make([]bool, k)
		for dst := 0; dst < k; dst++ {
			a := gAtt.samples[src][dst]
			b := cAtt.samples[src][dst]
			if len(a) < 5 || len(b) < 5 {
				continue
			}
			ks, err := stats.KSTest(a, b)
			if err != nil {
				continue
			}
			sig[src][dst] = ks.Significant
		}
	}
	return &GroupComparison{Group: g, Complement: c, Significant: sig}, nil
}

// AttributionToy reproduces the mechanics of Figure 10 on a three-process
// toy model: process B excites A and C, and the attribution should credit B
// as the dominant external root cause of both.
type AttributionToy struct {
	Raw        [][]float64
	Normalized [][]float64
	Events     []int
}

// RunAttributionToy simulates and fits the Figure 10 toy scenario.
func RunAttributionToy(seed int64) (*AttributionToy, error) {
	m := hawkes.NewModel(3, 1.0)
	m.Mu[0], m.Mu[1], m.Mu[2] = 0.02, 0.5, 0.02
	m.W[1][0] = 0.4
	m.W[1][2] = 0.4
	rng := rand.New(rand.NewSource(seed))
	events, err := m.Simulate(rng, 600)
	if err != nil {
		return nil, err
	}
	fit, err := hawkes.Fit(events, hawkes.DefaultFitConfig(3, 600))
	if err != nil {
		return nil, err
	}
	att, err := hawkes.Attribute(fit)
	if err != nil {
		return nil, err
	}
	return &AttributionToy{
		Raw:        att.InfluenceMatrix(),
		Normalized: att.NormalizedInfluenceMatrix(),
		Events:     hawkes.CountByProcess(fit.Events, 3),
	}, nil
}

// AnnotationQuality reproduces Appendix B using the simulated annotator
// panel calibrated to the paper's kappa and accuracy.
func AnnotationQuality() (annotate.PanelResult, error) {
	return annotate.RunPanel(annotate.DefaultPanelConfig())
}
