// Package analysis implements Step 7 of the pipeline: every table and
// figure of the paper's evaluation is regenerated from a pipeline.Result.
// Each function returns a plain data structure that the report renderer (and
// the benchmark harness in the repository root) turns into the same rows and
// series the paper prints.
package analysis

import (
	"errors"
	"fmt"
	"sort"

	"github.com/memes-pipeline/memes/internal/annotate"
	"github.com/memes-pipeline/memes/internal/cluster"
	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/phash"
	"github.com/memes-pipeline/memes/internal/pipeline"
	"github.com/memes-pipeline/memes/internal/screenshot"
)

// Table1Row is one row of the dataset overview (Table 1).
type Table1Row struct {
	Platform        string
	Posts           int
	PostsWithImages int
	Images          int
	UniquePHashes   int
}

// DatasetOverview computes Table 1 from the dataset.
func DatasetOverview(ds *dataset.Dataset) []Table1Row {
	stats := ds.PlatformStats()
	out := make([]Table1Row, len(stats))
	for i, s := range stats {
		out[i] = Table1Row{
			Platform:        s.Platform,
			Posts:           s.Posts,
			PostsWithImages: s.PostsWithImages,
			Images:          s.Images,
			UniquePHashes:   s.UniquePHashes,
		}
	}
	return out
}

// Table2Row is one row of the clustering statistics (Table 2).
type Table2Row struct {
	Community     string
	Images        int
	NoisePercent  float64
	Clusters      int
	Annotated     int
	AnnotatedPerc float64
}

// ClusteringStats computes Table 2 from the pipeline result.
func ClusteringStats(res *pipeline.Result) []Table2Row {
	order := []dataset.Community{dataset.Pol, dataset.TheDonald, dataset.Gab}
	var out []Table2Row
	for _, comm := range order {
		s, ok := res.PerCommunity[comm]
		if !ok {
			continue
		}
		row := Table2Row{
			Community:    comm.String(),
			Images:       s.Images,
			NoisePercent: s.NoiseFraction() * 100,
			Clusters:     s.Clusters,
			Annotated:    s.Annotated,
		}
		if s.Clusters > 0 {
			row.AnnotatedPerc = float64(s.Annotated) / float64(s.Clusters) * 100
		}
		out = append(out, row)
	}
	return out
}

// EntryCount pairs a KYM entry with a count and its share of the total.
type EntryCount struct {
	Entry     string
	Category  string
	Count     int
	Percent   float64
	Racist    bool
	Political bool
}

// TopEntriesByClusters computes Table 3: the top-N KYM entries per fringe
// community ranked by the number of clusters whose representative annotation
// they are.
func TopEntriesByClusters(res *pipeline.Result, topN int) map[string][]EntryCount {
	out := make(map[string][]EntryCount)
	for _, comm := range []dataset.Community{dataset.Pol, dataset.TheDonald, dataset.Gab} {
		counts := map[string]int{}
		entryOf := map[string]*annotate.Entry{}
		totalAnnotated := 0
		for _, c := range res.Clusters {
			if c.Community != comm || !c.Annotated() {
				continue
			}
			totalAnnotated++
			name := c.EntryName()
			counts[name]++
			entryOf[name] = c.Annotation.Representative
		}
		out[comm.String()] = rankEntries(counts, entryOf, totalAnnotated, topN)
	}
	return out
}

// TopMemesByPosts computes Table 4: the top-N meme-category entries per
// community ranked by the number of posts associated with their clusters.
func TopMemesByPosts(res *pipeline.Result, topN int) map[string][]EntryCount {
	return topEntriesByPosts(res, topN, func(e *annotate.Entry) bool {
		return e.Category == annotate.CategoryMeme
	})
}

// TopPeopleByPosts computes Table 5: the top-N people-category entries per
// community ranked by associated posts.
func TopPeopleByPosts(res *pipeline.Result, topN int) map[string][]EntryCount {
	return topEntriesByPosts(res, topN, func(e *annotate.Entry) bool {
		return e.Category == annotate.CategoryPeople
	})
}

// topEntriesByPosts aggregates Step 6 associations per community and entry,
// keeping entries accepted by the filter.
func topEntriesByPosts(res *pipeline.Result, topN int, filter func(*annotate.Entry) bool) map[string][]EntryCount {
	perComm := map[dataset.Community]map[string]int{}
	entryOf := map[string]*annotate.Entry{}
	totals := map[dataset.Community]int{}
	for _, a := range res.Associations {
		c := res.Clusters[a.ClusterID]
		rep := c.Annotation.Representative
		if rep == nil {
			continue
		}
		post := res.Dataset.Posts[a.PostIndex]
		comm := post.Community
		totals[comm]++
		if !filter(rep) {
			continue
		}
		if perComm[comm] == nil {
			perComm[comm] = map[string]int{}
		}
		perComm[comm][rep.Name]++
		entryOf[rep.Name] = rep
	}
	// The paper reports /pol/, Reddit (including The Donald), Gab, Twitter.
	merged := map[string]map[string]int{}
	mergedTotals := map[string]int{}
	for comm, counts := range perComm {
		name := comm.Platform()
		if merged[name] == nil {
			merged[name] = map[string]int{}
		}
		for e, n := range counts {
			merged[name][e] += n
		}
	}
	for comm, n := range totals {
		mergedTotals[comm.Platform()] += n
	}
	out := make(map[string][]EntryCount, len(merged))
	for name, counts := range merged {
		out[name] = rankEntries(counts, entryOf, mergedTotals[name], topN)
	}
	return out
}

// rankEntries converts a name->count map into a sorted, percentage-annotated
// top-N list.
func rankEntries(counts map[string]int, entryOf map[string]*annotate.Entry, total, topN int) []EntryCount {
	out := make([]EntryCount, 0, len(counts))
	for name, n := range counts {
		ec := EntryCount{Entry: name, Count: n}
		if total > 0 {
			ec.Percent = float64(n) / float64(total) * 100
		}
		if e := entryOf[name]; e != nil {
			ec.Category = string(e.Category)
			ec.Racist = e.IsRacist()
			ec.Political = e.IsPolitical()
		}
		out = append(out, ec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Entry < out[j].Entry
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

// SubredditCount is one row of Table 6.
type SubredditCount struct {
	Subreddit string
	Posts     int
	Percent   float64
}

// SubredditGroups holds the three Table 6 columns.
type SubredditGroups struct {
	All      []SubredditCount
	Racist   []SubredditCount
	Politics []SubredditCount
}

// TopSubreddits computes Table 6: the subreddits with the most meme posts,
// overall and restricted to the racist and politics tag groups.
func TopSubreddits(res *pipeline.Result, topN int) SubredditGroups {
	all := map[string]int{}
	racist := map[string]int{}
	politics := map[string]int{}
	var allTotal, racistTotal, politicsTotal int
	for _, a := range res.Associations {
		post := res.Dataset.Posts[a.PostIndex]
		if post.Community != dataset.Reddit && post.Community != dataset.TheDonald {
			continue
		}
		sub := post.Subreddit
		if sub == "" {
			continue
		}
		c := res.Clusters[a.ClusterID]
		all[sub]++
		allTotal++
		if c.Racist {
			racist[sub]++
			racistTotal++
		}
		if c.Political {
			politics[sub]++
			politicsTotal++
		}
	}
	rank := func(counts map[string]int, total int) []SubredditCount {
		out := make([]SubredditCount, 0, len(counts))
		for s, n := range counts {
			sc := SubredditCount{Subreddit: s, Posts: n}
			if total > 0 {
				sc.Percent = float64(n) / float64(total) * 100
			}
			out = append(out, sc)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Posts != out[j].Posts {
				return out[i].Posts > out[j].Posts
			}
			return out[i].Subreddit < out[j].Subreddit
		})
		if topN > 0 && len(out) > topN {
			out = out[:topN]
		}
		return out
	}
	return SubredditGroups{
		All:      rank(all, allTotal),
		Racist:   rank(racist, racistTotal),
		Politics: rank(politics, politicsTotal),
	}
}

// EventCount is one row of Table 7: meme posting events per community.
type EventCount struct {
	Community string
	Events    int
}

// EventCounts computes Table 7: the number of posts associated with
// annotated clusters per community (the events fed to the Hawkes models).
func EventCounts(res *pipeline.Result) []EventCount {
	counts := map[dataset.Community]int{}
	for _, a := range res.Associations {
		counts[res.Dataset.Posts[a.PostIndex].Community]++
	}
	var out []EventCount
	for _, comm := range dataset.Communities() {
		out = append(out, EventCount{Community: comm.String(), Events: counts[comm]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Events > out[j].Events })
	return out
}

// SweepRow is one row of Table 8: clustering behaviour at one DBSCAN eps.
type SweepRow struct {
	Eps          int
	Clusters     int
	NoisePercent float64
}

// ClusterSweep computes Table 8: the number of clusters and the noise
// percentage of /pol/'s images for a range of DBSCAN thresholds.
func ClusterSweep(ds *dataset.Dataset, epsValues []int) ([]SweepRow, error) {
	if len(epsValues) == 0 {
		return nil, errors.New("analysis: no eps values supplied")
	}
	// Distinct /pol/ hashes with occurrence counts.
	var hashes []dsHash
	index := map[uint64]int{}
	for _, p := range ds.Posts {
		if !p.HasImage || p.Community != dataset.Pol {
			continue
		}
		if at, ok := index[p.Hash]; ok {
			hashes[at].count++
		} else {
			index[p.Hash] = len(hashes)
			hashes = append(hashes, dsHash{hash: p.Hash, count: 1})
		}
	}
	if len(hashes) == 0 {
		return nil, errors.New("analysis: no /pol/ images to sweep")
	}
	hs := make([]phash.Hash, len(hashes))
	counts := make([]int, len(hashes))
	for i, h := range hashes {
		hs[i] = phash.Hash(h.hash)
		counts[i] = h.count
	}
	var out []SweepRow
	for _, eps := range epsValues {
		cfg := cluster.DBSCANConfig{Eps: eps, MinPts: 5}
		res, err := cluster.DBSCAN(hs, counts, cfg)
		if err != nil {
			return nil, fmt.Errorf("analysis: sweep at eps=%d: %w", eps, err)
		}
		noiseImages := 0
		totalImages := 0
		for i, lbl := range res.Labels {
			totalImages += counts[i]
			if lbl == cluster.Noise {
				noiseImages += counts[i]
			}
		}
		out = append(out, SweepRow{
			Eps:          eps,
			Clusters:     res.NumClusters,
			NoisePercent: float64(noiseImages) / float64(totalImages) * 100,
		})
	}
	return out, nil
}

type dsHash struct {
	hash  uint64
	count int
}

// Table9Row is one row of the screenshot-classifier training set composition
// (Table 9).
type Table9Row struct {
	Source string
	Images int
}

// ScreenshotDataset reports Table 9 for a given corpus configuration; pass
// screenshot.PaperCounts() to reproduce the paper's numbers.
func ScreenshotDataset(counts map[screenshot.Source]int) []Table9Row {
	order := []screenshot.Source{
		screenshot.SourceTwitter, screenshot.SourceFourChan, screenshot.SourceReddit,
		screenshot.SourceFacebook, screenshot.SourceInstagram, screenshot.SourceOther,
	}
	var out []Table9Row
	for _, s := range order {
		out = append(out, Table9Row{Source: string(s), Images: counts[s]})
	}
	return out
}
