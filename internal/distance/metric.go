// Package distance implements the paper's custom inter-cluster distance
// metric (Section 2.3): a weighted combination of a perceptual similarity
// derived from the Hamming distance between cluster medoids (Eq. 2) and
// Jaccard similarities over the clusters' Know Your Meme annotations for the
// meme, culture, and people categories (Eq. 1).
package distance

import (
	"errors"
	"fmt"
	"math"

	"github.com/memes-pipeline/memes/internal/phash"
	"github.com/memes-pipeline/memes/internal/stats"
)

// DefaultTau is the smoother used by the paper for the perceptual
// exponential decay: rperceptual stays high up to d=8 and decays quickly
// afterwards.
const DefaultTau = 25.0

// Weights holds the relevance of each feature in Eq. 1. The weights must be
// non-negative and sum to 1.
type Weights struct {
	Perceptual float64
	Meme       float64
	People     float64
	Culture    float64
}

// FullModeWeights are the weights used when both clusters are annotated
// (wperceptual=0.4, wmeme=0.4, wpeople=0.1, wculture=0.1).
func FullModeWeights() Weights {
	return Weights{Perceptual: 0.4, Meme: 0.4, People: 0.1, Culture: 0.1}
}

// PartialModeWeights are the weights used when at least one cluster lacks
// annotations: the metric relies entirely on the perceptual feature.
func PartialModeWeights() Weights {
	return Weights{Perceptual: 1}
}

// Validate checks that the weights are non-negative and sum to 1.
func (w Weights) Validate() error {
	for _, v := range []float64{w.Perceptual, w.Meme, w.People, w.Culture} {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("distance: negative or NaN weight %v", v)
		}
	}
	sum := w.Perceptual + w.Meme + w.People + w.Culture
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("distance: weights sum to %v, want 1", sum)
	}
	return nil
}

// ClusterFeatures is the per-cluster feature set consumed by the metric:
// the cluster medoid's perceptual hash and the names of the KYM entries of
// each category matched during annotation (Step 5). Annotated reports
// whether the cluster received any annotation; it selects full vs partial
// mode.
type ClusterFeatures struct {
	MedoidHash phash.Hash
	Memes      []string
	Cultures   []string
	People     []string
	Annotated  bool
}

// Metric computes inter-cluster distances. The zero value is not usable;
// construct it with New.
type Metric struct {
	tau     float64
	full    Weights
	partial Weights
}

// Option configures a Metric.
type Option func(*Metric)

// WithTau overrides the smoother of the perceptual decay function.
func WithTau(tau float64) Option {
	return func(m *Metric) { m.tau = tau }
}

// WithFullModeWeights overrides the weights used when both clusters are
// annotated.
func WithFullModeWeights(w Weights) Option {
	return func(m *Metric) { m.full = w }
}

// WithPartialModeWeights overrides the weights used when annotations are
// missing.
func WithPartialModeWeights(w Weights) Option {
	return func(m *Metric) { m.partial = w }
}

// New returns a Metric with the paper's defaults (tau=25, full-mode weights
// 0.4/0.4/0.1/0.1, partial mode perceptual-only), modified by opts.
func New(opts ...Option) (*Metric, error) {
	m := &Metric{tau: DefaultTau, full: FullModeWeights(), partial: PartialModeWeights()}
	for _, opt := range opts {
		opt(m)
	}
	if m.tau <= 0 {
		return nil, errors.New("distance: tau must be positive")
	}
	if err := m.full.Validate(); err != nil {
		return nil, fmt.Errorf("full-mode weights: %w", err)
	}
	if err := m.partial.Validate(); err != nil {
		return nil, fmt.Errorf("partial-mode weights: %w", err)
	}
	return m, nil
}

// Tau returns the configured smoother.
func (m *Metric) Tau() float64 { return m.tau }

// PerceptualSimilarity implements Eq. 2: an exponential decay over the
// Hamming score d with smoother tau, normalised so that d=0 gives 1 and
// d=max gives 0... more precisely r(d) = 1 - d / (tau * e^{max/tau}) in the
// paper's notation with the decay applied through the exponent; we use the
// equivalent monotone form r(d) = (e^{(max-d)/tau} - 1) / (e^{max/tau} - 1),
// which satisfies the paper's stated anchor points (r(0)=1, r(max)=0, high
// values up to d≈8 for tau=25, near-linear decay for tau=64, and a sharp
// drop for tau=1).
func PerceptualSimilarity(d int, tau float64) float64 {
	if d < 0 {
		d = 0
	}
	if d > phash.MaxDistance {
		d = phash.MaxDistance
	}
	if tau <= 0 {
		tau = DefaultTau
	}
	max := float64(phash.MaxDistance)
	num := math.Exp((max-float64(d))/tau) - 1
	den := math.Exp(max/tau) - 1
	return num / den
}

// PerceptualSimilarity evaluates Eq. 2 with the metric's configured tau.
func (m *Metric) PerceptualSimilarity(d int) float64 {
	return PerceptualSimilarity(d, m.tau)
}

// Distance implements Eq. 1: 1 - sum_f w_f * r_f(ci, cj). The result is in
// [0, 1]: 0 means the clusters are (by the metric) the same meme variant,
// 1 means they share nothing. Full-mode weights are used when both clusters
// are annotated, partial-mode weights otherwise.
func (m *Metric) Distance(a, b ClusterFeatures) float64 {
	d := phash.Distance(a.MedoidHash, b.MedoidHash)
	rp := m.PerceptualSimilarity(d)

	w := m.partial
	if a.Annotated && b.Annotated {
		w = m.full
	}
	sim := w.Perceptual * rp
	if w.Meme > 0 {
		sim += w.Meme * stats.Jaccard(a.Memes, b.Memes)
	}
	if w.People > 0 {
		sim += w.People * stats.Jaccard(a.People, b.People)
	}
	if w.Culture > 0 {
		sim += w.Culture * stats.Jaccard(a.Cultures, b.Cultures)
	}
	dist := 1 - sim
	if dist < 0 {
		return 0
	}
	if dist > 1 {
		return 1
	}
	return dist
}

// Mode reports which mode would be used to compare the two clusters.
func (m *Metric) Mode(a, b ClusterFeatures) string {
	if a.Annotated && b.Annotated {
		return "full"
	}
	return "partial"
}

// Matrix computes the full pairwise distance matrix over the given clusters.
// The matrix is symmetric with a zero diagonal.
func (m *Metric) Matrix(clusters []ClusterFeatures) [][]float64 {
	n := len(clusters)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := m.Distance(clusters[i], clusters[j])
			out[i][j] = d
			out[j][i] = d
		}
	}
	return out
}
