package distance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/memes-pipeline/memes/internal/phash"
)

func TestWeightsValidate(t *testing.T) {
	if err := FullModeWeights().Validate(); err != nil {
		t.Fatalf("full-mode weights invalid: %v", err)
	}
	if err := PartialModeWeights().Validate(); err != nil {
		t.Fatalf("partial-mode weights invalid: %v", err)
	}
	bad := []Weights{
		{Perceptual: 0.5, Meme: 0.5, People: 0.5}, // sums to 1.5
		{Perceptual: -0.5, Meme: 1.5},             // negative
		{Perceptual: math.NaN(), Meme: 1},         // NaN
		{Perceptual: 0.3, Meme: 0.3, People: 0.3}, // sums to 0.9
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("weights %+v should be invalid", w)
		}
	}
}

func TestNewOptions(t *testing.T) {
	m, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if m.Tau() != DefaultTau {
		t.Fatalf("default tau = %v", m.Tau())
	}
	if _, err := New(WithTau(-1)); err == nil {
		t.Fatal("negative tau should be rejected")
	}
	if _, err := New(WithFullModeWeights(Weights{Perceptual: 2})); err == nil {
		t.Fatal("invalid full-mode weights should be rejected")
	}
	if _, err := New(WithPartialModeWeights(Weights{Perceptual: 0.5})); err == nil {
		t.Fatal("invalid partial-mode weights should be rejected")
	}
	m2, err := New(WithTau(5))
	if err != nil {
		t.Fatal(err)
	}
	if m2.Tau() != 5 {
		t.Fatalf("tau option ignored: %v", m2.Tau())
	}
}

func TestPerceptualSimilarityAnchors(t *testing.T) {
	// The paper's anchor points for Figure 3.
	if got := PerceptualSimilarity(0, 1); !almost(got, 1, 1e-9) {
		t.Errorf("tau=1, d=0: got %v, want 1", got)
	}
	if got := PerceptualSimilarity(1, 1); math.Abs(got-0.37) > 0.05 {
		t.Errorf("tau=1, d=1: got %v, want ~0.4", got)
	}
	if got := PerceptualSimilarity(0, 64); !almost(got, 1, 1e-9) {
		t.Errorf("tau=64, d=0: got %v, want 1", got)
	}
	if got := PerceptualSimilarity(1, 64); math.Abs(got-0.98) > 0.01 {
		t.Errorf("tau=64, d=1: got %v, want ~0.98", got)
	}
	if got := PerceptualSimilarity(64, 25); !almost(got, 0, 1e-9) {
		t.Errorf("d=max: got %v, want 0", got)
	}
	// tau=25 keeps similarity high through d=8 (the clustering threshold).
	if got := PerceptualSimilarity(8, 25); got < 0.65 {
		t.Errorf("tau=25, d=8: got %v, want comfortably high", got)
	}
	// ... and drops well below that by d=32.
	if hi, lo := PerceptualSimilarity(8, 25), PerceptualSimilarity(32, 25); lo > hi/2 {
		t.Errorf("tau=25 should decay fast after d=8: r(8)=%v r(32)=%v", hi, lo)
	}
}

func TestPerceptualSimilarityMonotoneDecreasing(t *testing.T) {
	for _, tau := range []float64{1, 25, 64} {
		prev := math.Inf(1)
		for d := 0; d <= 64; d++ {
			v := PerceptualSimilarity(d, tau)
			if v < 0 || v > 1 {
				t.Fatalf("tau=%v d=%d: similarity %v out of range", tau, d, v)
			}
			if v > prev+1e-12 {
				t.Fatalf("tau=%v: similarity not monotone at d=%d", tau, d)
			}
			prev = v
		}
	}
}

func TestPerceptualSimilarityClamping(t *testing.T) {
	if got := PerceptualSimilarity(-5, 25); !almost(got, 1, 1e-9) {
		t.Errorf("negative distance should clamp to 0: %v", got)
	}
	if got := PerceptualSimilarity(100, 25); !almost(got, 0, 1e-9) {
		t.Errorf("over-max distance should clamp to max: %v", got)
	}
	// Non-positive tau falls back to the default rather than dividing by zero.
	if got := PerceptualSimilarity(8, 0); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("tau=0 should not produce NaN/Inf: %v", got)
	}
}

func TestDistanceIdenticalAnnotatedClusters(t *testing.T) {
	m, _ := New()
	c := ClusterFeatures{
		MedoidHash: 0xABCDEF,
		Memes:      []string{"pepe-the-frog"},
		Cultures:   []string{"alt-right"},
		People:     []string{"donald-trump"},
		Annotated:  true,
	}
	if d := m.Distance(c, c); !almost(d, 0, 1e-9) {
		t.Fatalf("distance of a cluster to itself = %v, want 0", d)
	}
}

func TestDistanceFullModeBounds(t *testing.T) {
	// Same meme + perceptually identical medoids but different people and
	// culture: distance must be at most 0.2 (paper Section 2.3).
	m, _ := New()
	a := ClusterFeatures{MedoidHash: 0x1234, Memes: []string{"smug-frog"},
		People: []string{"donald-trump"}, Cultures: []string{"alt-right"}, Annotated: true}
	b := ClusterFeatures{MedoidHash: 0x1234, Memes: []string{"smug-frog"},
		People: []string{"hillary-clinton"}, Cultures: []string{"feminism"}, Annotated: true}
	if d := m.Distance(a, b); d > 0.2+1e-9 {
		t.Fatalf("same meme + same medoid should give distance <= 0.2, got %v", d)
	}
	// Different meme names but identical medoids: perceptual weight alone
	// keeps the clusters within 0.6.
	c := ClusterFeatures{MedoidHash: 0x1234, Memes: []string{"happy-merchant"}, Annotated: true}
	if d := m.Distance(a, c); d > 0.6+1e-9 {
		t.Fatalf("identical medoids should cap distance at 0.6, got %v", d)
	}
}

func TestDistancePartialMode(t *testing.T) {
	m, _ := New()
	annotated := ClusterFeatures{MedoidHash: 0xFFFF, Memes: []string{"x"}, Annotated: true}
	plain := ClusterFeatures{MedoidHash: 0xFFFF}
	if m.Mode(annotated, plain) != "partial" {
		t.Fatal("one unannotated cluster should select partial mode")
	}
	if m.Mode(annotated, annotated) != "full" {
		t.Fatal("two annotated clusters should select full mode")
	}
	// In partial mode with identical medoids the distance is exactly 0
	// regardless of annotations.
	if d := m.Distance(annotated, plain); !almost(d, 0, 1e-9) {
		t.Fatalf("partial-mode distance for identical medoids = %v, want 0", d)
	}
	// And with maximally distant medoids it is 1.
	far := ClusterFeatures{MedoidHash: ^phash.Hash(0xFFFF)}
	d := m.Distance(plain, far)
	if d < 0.9 {
		t.Fatalf("far medoids in partial mode should give distance near 1, got %v", d)
	}
}

func TestDistanceSymmetricAndBounded(t *testing.T) {
	m, _ := New()
	rng := rand.New(rand.NewSource(3))
	names := []string{"a", "b", "c", "d", "e"}
	randFeatures := func() ClusterFeatures {
		pick := func() []string {
			var out []string
			for _, n := range names {
				if rng.Float64() < 0.4 {
					out = append(out, n)
				}
			}
			return out
		}
		return ClusterFeatures{
			MedoidHash: phash.Hash(rng.Uint64()),
			Memes:      pick(),
			Cultures:   pick(),
			People:     pick(),
			Annotated:  rng.Float64() < 0.7,
		}
	}
	for i := 0; i < 200; i++ {
		a, b := randFeatures(), randFeatures()
		d1 := m.Distance(a, b)
		d2 := m.Distance(b, a)
		if !almost(d1, d2, 1e-12) {
			t.Fatalf("distance not symmetric: %v vs %v", d1, d2)
		}
		if d1 < 0 || d1 > 1 {
			t.Fatalf("distance out of bounds: %v", d1)
		}
	}
}

func TestDistanceSameImageDifferentMemes(t *testing.T) {
	// Paper: the metric assigns small distances when two clusters use the
	// same image for different memes (perceptual weight dominates).
	m, _ := New()
	a := ClusterFeatures{MedoidHash: 0xCAFE, Memes: []string{"meme-a"}, Annotated: true}
	b := ClusterFeatures{MedoidHash: 0xCAFE, Memes: []string{"meme-b"}, Annotated: true}
	if d := m.Distance(a, b); d > 0.61 {
		t.Fatalf("same-image different-meme distance %v should stay moderate", d)
	}
}

func TestMatrixProperties(t *testing.T) {
	m, _ := New()
	rng := rand.New(rand.NewSource(11))
	clusters := make([]ClusterFeatures, 8)
	for i := range clusters {
		clusters[i] = ClusterFeatures{MedoidHash: phash.Hash(rng.Uint64()), Annotated: i%2 == 0,
			Memes: []string{string(rune('a' + i%3))}}
	}
	mat := m.Matrix(clusters)
	if len(mat) != len(clusters) {
		t.Fatalf("matrix has %d rows", len(mat))
	}
	for i := range mat {
		if mat[i][i] != 0 {
			t.Fatalf("diagonal entry (%d,%d) = %v", i, i, mat[i][i])
		}
		for j := range mat[i] {
			if mat[i][j] != mat[j][i] {
				t.Fatalf("matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestTauControlsDecaySpeed(t *testing.T) {
	// Smaller tau decays faster at every interior distance.
	for d := 1; d < 64; d++ {
		fast := PerceptualSimilarity(d, 1)
		slow := PerceptualSimilarity(d, 64)
		if fast > slow {
			t.Fatalf("tau=1 should decay faster than tau=64 at d=%d: %v vs %v", d, fast, slow)
		}
	}
}

func TestDistanceQuickProperties(t *testing.T) {
	m, _ := New()
	f := func(h1, h2 uint64, annotated1, annotated2 bool) bool {
		a := ClusterFeatures{MedoidHash: phash.Hash(h1), Annotated: annotated1, Memes: []string{"m"}}
		b := ClusterFeatures{MedoidHash: phash.Hash(h2), Annotated: annotated2, Memes: []string{"m"}}
		d := m.Distance(a, b)
		return d >= 0 && d <= 1 && almost(d, m.Distance(b, a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }
