package phash

import (
	"context"
	"sort"

	"github.com/memes-pipeline/memes/internal/parallel"
)

// MultiIndex implements multi-index hashing (MIH) over 64-bit perceptual
// hashes. The hash is split into nbBands disjoint bands; by the pigeonhole
// principle, two hashes within Hamming distance r must agree on at least one
// band whenever r < nbBands * (bandBits - adjustment), so candidate lookups
// only need exact band matches followed by full-distance verification.
//
// With the default 4 bands of 16 bits each, any query radius r <= 3 is
// guaranteed exact from direct band lookups alone (some band matches
// exactly); radii 4-7 additionally probe band values at Hamming distance 1,
// and radii 8-11 — covering the pipeline's operating threshold of 8 — probe
// distance 2 as well, keeping every banded query exact. Larger radii fall
// back to a parallel linear scan, so results are exact at every radius.
//
// MultiIndex is not safe for concurrent mutation; concurrent queries after
// construction are safe.
type MultiIndex struct {
	bands    int
	bandBits int
	tables   []map[uint64][]int32 // per-band: band value -> indexes into items
	hashes   []Hash
	ids      []int64
	workers  int // linear-scan fan-out bound; 0 = GOMAXPROCS (see SetWorkers)
}

// mihBands is the number of disjoint bands the default multi-index splits
// a hash into; shared with the Neighbourhoods regime choice.
const mihBands = 4

// NewMultiIndex returns an empty multi-index over 4 bands of 16 bits.
func NewMultiIndex() *MultiIndex {
	m := &MultiIndex{
		bands:    mihBands,
		bandBits: Size / mihBands,
		tables:   make([]map[uint64][]int32, mihBands),
	}
	for i := range m.tables {
		m.tables[i] = make(map[uint64][]int32)
	}
	return m
}

// Len returns the number of (hash, id) pairs stored.
func (m *MultiIndex) Len() int { return len(m.hashes) }

// Insert adds a hash and its item identifier to the index.
func (m *MultiIndex) Insert(h Hash, id int64) {
	idx := int32(len(m.hashes))
	m.hashes = append(m.hashes, h)
	m.ids = append(m.ids, id)
	for b := 0; b < m.bands; b++ {
		key := m.band(h, b)
		m.tables[b][key] = append(m.tables[b][key], idx)
	}
}

func (m *MultiIndex) band(h Hash, b int) uint64 {
	shift := uint(b * m.bandBits)
	mask := uint64(1)<<uint(m.bandBits) - 1
	return (uint64(h) >> shift) & mask
}

// SetWorkers bounds the fan-out of the parallel linear-scan fallback;
// n <= 0 restores the default (GOMAXPROCS). It satisfies the optional
// index.WorkerBound interface so the pipeline's single workers knob
// governs this index too.
func (m *MultiIndex) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	m.workers = n
}

// Radius returns all stored entries within Hamming distance radius of q.
// It is RadiusCtx without cancellation.
func (m *MultiIndex) Radius(q Hash, radius int) []Match {
	out, _ := m.RadiusCtx(context.Background(), q, radius)
	return out
}

// RadiusCtx returns all stored entries within Hamming distance radius of q,
// honouring ctx cancellation on the parallel linear-scan fallback. The
// search is exact at every radius: banded probing handles radius <=
// 3*bands - 1 (i.e. 11 with the default 4 bands, comfortably covering the
// pipeline's operating threshold of 8), and a parallel linear scan handles
// anything larger. On cancellation the partial result is discarded and
// ctx.Err() is returned.
func (m *MultiIndex) RadiusCtx(ctx context.Context, q Hash, radius int) ([]Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if radius < 0 || len(m.hashes) == 0 {
		return nil, nil
	}
	// Pigeonhole: if radius errors are spread across bands, at least one
	// band has at most maxFlips = floor(radius/bands) errors, so probing
	// every band value within maxFlips bit flips of the query's band finds
	// every candidate. The probe count grows as C(bandBits, maxFlips), so
	// beyond two flips per band (radius >= 3*bands) the linear scan wins.
	maxFlips := radius / m.bands
	if maxFlips > 2 {
		return m.linearRadius(ctx, q, radius)
	}
	seen := make(map[int32]struct{})
	var out []Match
	probe := func(b int, key uint64) {
		for _, idx := range m.tables[b][key] {
			if _, dup := seen[idx]; dup {
				continue
			}
			seen[idx] = struct{}{}
			d := Distance(q, m.hashes[idx])
			if d <= radius {
				out = append(out, Match{Hash: m.hashes[idx], Distance: d, IDs: []int64{m.ids[idx]}})
			}
		}
	}
	for b := 0; b < m.bands; b++ {
		key := m.band(q, b)
		probe(b, key)
		if maxFlips >= 1 {
			for bit1 := 0; bit1 < m.bandBits; bit1++ {
				k1 := key ^ (1 << uint(bit1))
				probe(b, k1)
				if maxFlips >= 2 {
					// All band values at Hamming distance 2, enumerated as
					// ordered flip pairs.
					for bit2 := bit1 + 1; bit2 < m.bandBits; bit2++ {
						probe(b, k1^(1<<uint(bit2)))
					}
				}
			}
		}
	}
	return mergeMatches(out), nil
}

// Nearest returns the stored hash closest to q and its distance, with the
// IDs of every entry sharing that hash. The boolean is false when the index
// is empty. Ties between distinct hashes at the same distance are broken by
// the lowest hash value, so the result is deterministic.
func (m *MultiIndex) Nearest(q Hash) (Match, bool) {
	if len(m.hashes) == 0 {
		return Match{}, false
	}
	bestDist := MaxDistance + 1
	var bestHash Hash
	for _, h := range m.hashes {
		d := Distance(q, h)
		if d < bestDist || (d == bestDist && h < bestHash) {
			bestDist, bestHash = d, h
		}
	}
	var ids []int64
	for i, h := range m.hashes {
		if h == bestHash {
			ids = append(ids, m.ids[i])
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return Match{Hash: bestHash, Distance: bestDist, IDs: ids}, true
}

// Walk visits every distinct hash stored in the index, with the IDs of all
// entries sharing it, in unspecified order. Returning false from fn stops
// the walk early.
func (m *MultiIndex) Walk(fn func(h Hash, ids []int64) bool) {
	byHash := make(map[Hash][]int64, len(m.hashes))
	order := make([]Hash, 0, len(m.hashes))
	for i, h := range m.hashes {
		if _, seen := byHash[h]; !seen {
			order = append(order, h)
		}
		byHash[h] = append(byHash[h], m.ids[i])
	}
	for _, h := range order {
		if !fn(h, byHash[h]) {
			return
		}
	}
}

// linearRadius performs an exact parallel scan; used for large radii where
// banded probing is no longer guaranteed exact. The fan-out runs on the
// internal/parallel primitives so cancellation never leaks a goroutine.
func (m *MultiIndex) linearRadius(ctx context.Context, q Hash, radius int) ([]Match, error) {
	matches, err := parallel.MapChunksCtx(ctx, len(m.hashes), m.workers, func(lo, hi int) []Match {
		var part []Match
		for i := lo; i < hi; i++ {
			d := Distance(q, m.hashes[i])
			if d <= radius {
				part = append(part, Match{
					Hash: m.hashes[i], Distance: d, IDs: []int64{m.ids[i]},
				})
			}
		}
		return part
	})
	if err != nil {
		return nil, err
	}
	return mergeMatches(matches), nil
}

// mergeMatches merges matches that share the same hash, concatenating IDs,
// and returns them sorted by distance then hash for determinism.
func mergeMatches(in []Match) []Match {
	if len(in) == 0 {
		return nil
	}
	byHash := make(map[Hash]*Match, len(in))
	for _, m := range in {
		if ex, ok := byHash[m.Hash]; ok {
			ex.IDs = append(ex.IDs, m.IDs...)
			continue
		}
		cp := m
		cp.IDs = append([]int64(nil), m.IDs...)
		byHash[m.Hash] = &cp
	}
	out := make([]Match, 0, len(byHash))
	for _, m := range byHash {
		sort.Slice(m.IDs, func(i, j int) bool { return m.IDs[i] < m.IDs[j] })
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Hash < out[j].Hash
	})
	return out
}

// PairwiseWithin computes, in parallel, all pairs (i, j), i < j, of the given
// hashes whose Hamming distance is at most radius. It is PairwiseWithinCtx
// without cancellation, with fan-out bounded by GOMAXPROCS.
func PairwiseWithin(hashes []Hash, radius int, fn func(i, j, d int)) {
	_ = PairwiseWithinCtx(context.Background(), hashes, radius, 0, fn)
}

// PairwiseWithinCtx computes, in parallel, all pairs (i, j), i < j, of the
// given hashes whose Hamming distance is at most radius. It is the drop-in
// replacement for the paper's TensorFlow pairwise comparison step and is used
// by DBSCAN's neighbourhood precomputation. The callback receives the indexes
// of the pair and their distance; it must be safe for concurrent invocation.
// workers bounds the fan-out (0 = GOMAXPROCS). Cancellation stops rows from
// being scheduled and returns ctx.Err(); rows already dispatched complete.
func PairwiseWithinCtx(ctx context.Context, hashes []Hash, radius, workers int, fn func(i, j, d int)) error {
	n := len(hashes)
	if n < 2 {
		return ctx.Err()
	}
	return parallel.ForCtx(ctx, n, workers, func(i int) {
		hi := hashes[i]
		for j := i + 1; j < n; j++ {
			d := Distance(hi, hashes[j])
			if d <= radius {
				fn(i, j, d)
			}
		}
	})
}
