package phash

import (
	"runtime"
	"sort"
	"sync"
)

// MultiIndex implements multi-index hashing (MIH) over 64-bit perceptual
// hashes. The hash is split into nbBands disjoint bands; by the pigeonhole
// principle, two hashes within Hamming distance r must agree on at least one
// band whenever r < nbBands * (bandBits - adjustment), so candidate lookups
// only need exact band matches followed by full-distance verification.
//
// With the default 4 bands of 16 bits each, any query radius r <= 3 is
// guaranteed exact (some band matches exactly); for larger radii the index
// also probes band values at distance 1, which keeps queries exact up to
// r <= 7 and covers the pipeline's operating threshold of 8 by probing
// distance-2 neighbours on demand.
//
// MultiIndex is not safe for concurrent mutation; concurrent queries after
// construction are safe.
type MultiIndex struct {
	bands    int
	bandBits int
	tables   []map[uint64][]int32 // per-band: band value -> indexes into items
	hashes   []Hash
	ids      []int64
}

// NewMultiIndex returns an empty multi-index over 4 bands of 16 bits.
func NewMultiIndex() *MultiIndex {
	const bands = 4
	m := &MultiIndex{
		bands:    bands,
		bandBits: Size / bands,
		tables:   make([]map[uint64][]int32, bands),
	}
	for i := range m.tables {
		m.tables[i] = make(map[uint64][]int32)
	}
	return m
}

// Len returns the number of (hash, id) pairs stored.
func (m *MultiIndex) Len() int { return len(m.hashes) }

// Insert adds a hash and its item identifier to the index.
func (m *MultiIndex) Insert(h Hash, id int64) {
	idx := int32(len(m.hashes))
	m.hashes = append(m.hashes, h)
	m.ids = append(m.ids, id)
	for b := 0; b < m.bands; b++ {
		key := m.band(h, b)
		m.tables[b][key] = append(m.tables[b][key], idx)
	}
}

func (m *MultiIndex) band(h Hash, b int) uint64 {
	shift := uint(b * m.bandBits)
	mask := uint64(1)<<uint(m.bandBits) - 1
	return (uint64(h) >> shift) & mask
}

// Radius returns all stored entries within Hamming distance radius of q.
// The search is exact for radius <= 2*bands - 1 (i.e. 7 with the default
// 4 bands) using distance-<=1 band probing, and falls back to a parallel
// linear scan beyond that so results are always exact.
func (m *MultiIndex) Radius(q Hash, radius int) []Match {
	if radius < 0 || len(m.hashes) == 0 {
		return nil
	}
	// Pigeonhole: if radius errors are spread across bands, at least one band
	// has at most floor(radius/bands) errors. With distance-1 probing we are
	// exact while floor(radius/bands) <= 1, i.e. radius <= 2*bands-1.
	if radius > 2*m.bands-1 {
		return m.linearRadius(q, radius)
	}
	seen := make(map[int32]struct{})
	var out []Match
	probe := func(b int, key uint64) {
		for _, idx := range m.tables[b][key] {
			if _, dup := seen[idx]; dup {
				continue
			}
			seen[idx] = struct{}{}
			d := Distance(q, m.hashes[idx])
			if d <= radius {
				out = append(out, Match{Hash: m.hashes[idx], Distance: d, IDs: []int64{m.ids[idx]}})
			}
		}
	}
	for b := 0; b < m.bands; b++ {
		key := m.band(q, b)
		probe(b, key)
		if radius >= m.bands {
			// Probe all band values at Hamming distance 1.
			for bit := 0; bit < m.bandBits; bit++ {
				probe(b, key^(1<<uint(bit)))
			}
		}
	}
	return mergeMatches(out)
}

// Nearest returns the stored hash closest to q and its distance, with the
// IDs of every entry sharing that hash. The boolean is false when the index
// is empty. Ties between distinct hashes at the same distance are broken by
// the lowest hash value, so the result is deterministic.
func (m *MultiIndex) Nearest(q Hash) (Match, bool) {
	if len(m.hashes) == 0 {
		return Match{}, false
	}
	bestDist := MaxDistance + 1
	var bestHash Hash
	for _, h := range m.hashes {
		d := Distance(q, h)
		if d < bestDist || (d == bestDist && h < bestHash) {
			bestDist, bestHash = d, h
		}
	}
	var ids []int64
	for i, h := range m.hashes {
		if h == bestHash {
			ids = append(ids, m.ids[i])
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return Match{Hash: bestHash, Distance: bestDist, IDs: ids}, true
}

// Walk visits every distinct hash stored in the index, with the IDs of all
// entries sharing it, in unspecified order. Returning false from fn stops
// the walk early.
func (m *MultiIndex) Walk(fn func(h Hash, ids []int64) bool) {
	byHash := make(map[Hash][]int64, len(m.hashes))
	order := make([]Hash, 0, len(m.hashes))
	for i, h := range m.hashes {
		if _, seen := byHash[h]; !seen {
			order = append(order, h)
		}
		byHash[h] = append(byHash[h], m.ids[i])
	}
	for _, h := range order {
		if !fn(h, byHash[h]) {
			return
		}
	}
}

// linearRadius performs an exact parallel scan; used for large radii where
// banded probing is no longer guaranteed exact.
func (m *MultiIndex) linearRadius(q Hash, radius int) []Match {
	n := len(m.hashes)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	type part struct{ matches []Match }
	parts := make([]part, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				d := Distance(q, m.hashes[i])
				if d <= radius {
					parts[w].matches = append(parts[w].matches, Match{
						Hash: m.hashes[i], Distance: d, IDs: []int64{m.ids[i]},
					})
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var out []Match
	for _, p := range parts {
		out = append(out, p.matches...)
	}
	return mergeMatches(out)
}

// mergeMatches merges matches that share the same hash, concatenating IDs,
// and returns them sorted by distance then hash for determinism.
func mergeMatches(in []Match) []Match {
	if len(in) == 0 {
		return nil
	}
	byHash := make(map[Hash]*Match, len(in))
	for _, m := range in {
		if ex, ok := byHash[m.Hash]; ok {
			ex.IDs = append(ex.IDs, m.IDs...)
			continue
		}
		cp := m
		cp.IDs = append([]int64(nil), m.IDs...)
		byHash[m.Hash] = &cp
	}
	out := make([]Match, 0, len(byHash))
	for _, m := range byHash {
		sort.Slice(m.IDs, func(i, j int) bool { return m.IDs[i] < m.IDs[j] })
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Hash < out[j].Hash
	})
	return out
}

// PairwiseWithin computes, in parallel, all pairs (i, j), i < j, of the given
// hashes whose Hamming distance is at most radius. It is the drop-in
// replacement for the paper's TensorFlow pairwise comparison step and is used
// by DBSCAN's neighbourhood precomputation. The callback receives the indexes
// of the pair and their distance; it must be safe for concurrent invocation.
func PairwiseWithin(hashes []Hash, radius int, fn func(i, j, d int)) {
	n := len(hashes)
	if n < 2 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	go func() {
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				hi := hashes[i]
				for j := i + 1; j < n; j++ {
					d := Distance(hi, hashes[j])
					if d <= radius {
						fn(i, j, d)
					}
				}
			}
		}()
	}
	wg.Wait()
}
