package phash

import (
	"math"
	"sync"
)

// dctTopLeft computes the top-left dctBlock x dctBlock block of the 2-D
// type-II DCT of a lowResSize x lowResSize matrix, writing the row-pass
// scratch into tmp (lowResSize rows x dctBlock coefficients) and the block
// into out. The hash only ever reads this block, so the row pass computes
// just dctBlock coefficients per row and the column pass just dctBlock x
// dctBlock outputs — ~(lowResSize/dctBlock)x fewer multiply-adds than the
// full transform — while every retained coefficient is produced by exactly
// the same operations in the same order as dct2D, keeping hashes
// bit-identical.
//
//memes:noalloc
func dctTopLeft(pix []float64, tmp, out []float64) {
	n := lowResSize
	table := dctTable()
	scale := dctScaleTable()

	// Rows: coefficients k < dctBlock of every row.
	for y := 0; y < n; y++ {
		row := pix[y*n : (y+1)*n]
		for k := 0; k < dctBlock; k++ {
			sum := 0.0
			tr := table[k*n : (k+1)*n]
			for i, v := range row {
				sum += v * tr[i]
			}
			tmp[y*dctBlock+k] = sum * scale[k]
		}
	}
	// Columns: coefficients k < dctBlock of the first dctBlock columns.
	var col [lowResSize]float64
	for x := 0; x < dctBlock; x++ {
		for y := 0; y < n; y++ {
			col[y] = tmp[y*dctBlock+x]
		}
		for k := 0; k < dctBlock; k++ {
			sum := 0.0
			tr := table[k*n : (k+1)*n]
			for i, v := range col {
				sum += v * tr[i]
			}
			out[k*dctBlock+x] = sum * scale[k]
		}
	}
}

// dct2D computes the full 2-D type-II discrete cosine transform of a square
// lowResSize x lowResSize matrix given in row-major order. The transform is
// separable: a 1-D DCT is applied to every row and then to every column.
// Coefficient tables are precomputed once because the pipeline hashes
// millions of images with the same dimensions.
//
// The hashing hot path uses the pruned dctTopLeft instead; dct2D is the
// reference transform its equivalence tests pin against.
func dct2D(pix []float64) []float64 {
	n := lowResSize
	table := dctTable()

	tmp := make([]float64, n*n)
	out := make([]float64, n*n)

	// Rows.
	for y := 0; y < n; y++ {
		row := pix[y*n : (y+1)*n]
		dst := tmp[y*n : (y+1)*n]
		dct1D(row, dst, table)
	}
	// Columns.
	col := make([]float64, n)
	res := make([]float64, n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			col[y] = tmp[y*n+x]
		}
		dct1D(col, res, table)
		for y := 0; y < n; y++ {
			out[y*n+x] = res[y]
		}
	}
	return out
}

// dct1D computes the 1-D DCT-II of src into dst using the precomputed cosine
// table. len(src) == len(dst) == lowResSize.
func dct1D(src, dst []float64, table []float64) {
	n := len(src)
	for k := 0; k < n; k++ {
		sum := 0.0
		row := table[k*n:]
		for i := 0; i < n; i++ {
			sum += src[i] * row[i]
		}
		dst[k] = sum * dctScale(k, n)
	}
}

// dctScale returns the orthonormal scaling factor for coefficient k of an
// n-point DCT-II.
func dctScale(k, n int) float64 {
	if k == 0 {
		return math.Sqrt(1.0 / float64(n))
	}
	return math.Sqrt(2.0 / float64(n))
}

var (
	dctTableOnce sync.Once
	dctTableVals []float64

	dctScaleOnce sync.Once
	dctScaleVals []float64
)

// dctScaleTable returns the per-coefficient orthonormal scale factors for a
// lowResSize-point DCT-II, precomputed so the hot path never calls math.Sqrt.
// Entry k equals dctScale(k, lowResSize) exactly.
func dctScaleTable() []float64 {
	dctScaleOnce.Do(func() {
		dctScaleVals = make([]float64, lowResSize)
		for k := range dctScaleVals {
			dctScaleVals[k] = dctScale(k, lowResSize)
		}
	})
	return dctScaleVals
}

// dctTable returns the lowResSize x lowResSize cosine basis table where entry
// (k, i) = cos(pi/n * (i + 0.5) * k).
func dctTable() []float64 {
	dctTableOnce.Do(func() {
		n := lowResSize
		dctTableVals = make([]float64, n*n)
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				dctTableVals[k*n+i] = math.Cos(math.Pi / float64(n) * (float64(i) + 0.5) * float64(k))
			}
		}
	})
	return dctTableVals
}
