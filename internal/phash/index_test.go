package phash

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// randomHashes generates n random hashes with a deterministic seed.
func randomHashes(seed int64, n int) []Hash {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Hash, n)
	for i := range out {
		out[i] = Hash(rng.Uint64())
	}
	return out
}

// perturb flips exactly k random distinct bits of h.
func perturb(rng *rand.Rand, h Hash, k int) Hash {
	perm := rng.Perm(64)
	for i := 0; i < k; i++ {
		h ^= 1 << uint(perm[i])
	}
	return h
}

// bruteRadius is the reference implementation for radius queries.
func bruteRadius(hashes []Hash, ids []int64, q Hash, radius int) map[Hash][]int64 {
	out := make(map[Hash][]int64)
	for i, h := range hashes {
		if Distance(h, q) <= radius {
			out[h] = append(out[h], ids[i])
		}
	}
	return out
}

func TestBKTreeEmpty(t *testing.T) {
	tr := NewBKTree()
	if tr.Len() != 0 || tr.Keys() != 0 {
		t.Fatal("empty tree should have zero size")
	}
	if got := tr.Radius(Hash(1), 5); got != nil {
		t.Fatalf("empty tree radius should be nil, got %v", got)
	}
	if _, ok := tr.Nearest(Hash(1)); ok {
		t.Fatal("empty tree should have no nearest")
	}
}

func TestBKTreeInsertDuplicates(t *testing.T) {
	tr := NewBKTree()
	tr.Insert(Hash(42), 1)
	tr.Insert(Hash(42), 2)
	tr.Insert(Hash(42), 3)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.Keys() != 1 {
		t.Fatalf("Keys = %d, want 1", tr.Keys())
	}
	got := tr.Radius(Hash(42), 0)
	if len(got) != 1 || len(got[0].IDs) != 3 {
		t.Fatalf("expected one match with 3 ids, got %+v", got)
	}
}

func TestBKTreeRadiusMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	hashes := randomHashes(5, 500)
	ids := make([]int64, len(hashes))
	tr := NewBKTree()
	for i, h := range hashes {
		ids[i] = int64(i)
		tr.Insert(h, int64(i))
	}
	for trial := 0; trial < 30; trial++ {
		q := hashes[rng.Intn(len(hashes))]
		if trial%3 == 0 {
			q = perturb(rng, q, rng.Intn(10))
		}
		radius := rng.Intn(16)
		want := bruteRadius(hashes, ids, q, radius)
		got := tr.Radius(q, radius)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d matches, want %d", trial, len(got), len(want))
		}
		for _, m := range got {
			wantIDs, ok := want[m.Hash]
			if !ok {
				t.Fatalf("unexpected match %v", m.Hash)
			}
			if len(m.IDs) != len(wantIDs) {
				t.Fatalf("ID count mismatch for %v", m.Hash)
			}
			if m.Distance != Distance(q, m.Hash) {
				t.Fatalf("distance mismatch for %v", m.Hash)
			}
		}
	}
}

func TestBKTreeNearest(t *testing.T) {
	tr := NewBKTree()
	rng := rand.New(rand.NewSource(7))
	hashes := randomHashes(17, 200)
	for i, h := range hashes {
		tr.Insert(h, int64(i))
	}
	for trial := 0; trial < 20; trial++ {
		q := perturb(rng, hashes[rng.Intn(len(hashes))], rng.Intn(6))
		got, ok := tr.Nearest(q)
		if !ok {
			t.Fatal("Nearest returned not found")
		}
		best := MaxDistance + 1
		for _, h := range hashes {
			if d := Distance(h, q); d < best {
				best = d
			}
		}
		if got.Distance != best {
			t.Fatalf("Nearest distance %d, want %d", got.Distance, best)
		}
	}
}

func TestBKTreeWalk(t *testing.T) {
	tr := NewBKTree()
	hashes := randomHashes(31, 100)
	for i, h := range hashes {
		tr.Insert(h, int64(i))
	}
	seen := make(map[Hash]bool)
	tr.Walk(func(h Hash, ids []int64) bool {
		seen[h] = true
		return true
	})
	distinct := make(map[Hash]bool)
	for _, h := range hashes {
		distinct[h] = true
	}
	if len(seen) != len(distinct) {
		t.Fatalf("walk visited %d hashes, want %d", len(seen), len(distinct))
	}
	// Early stop.
	count := 0
	tr.Walk(func(h Hash, ids []int64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("walk early stop visited %d, want 5", count)
	}
}

func TestMultiIndexRadiusMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	hashes := randomHashes(55, 400)
	// Add clusters of similar hashes so small radii have matches.
	base := hashes[0]
	for i := 0; i < 50; i++ {
		hashes = append(hashes, perturb(rng, base, rng.Intn(6)))
	}
	ids := make([]int64, len(hashes))
	mi := NewMultiIndex()
	for i, h := range hashes {
		ids[i] = int64(i)
		mi.Insert(h, int64(i))
	}
	if mi.Len() != len(hashes) {
		t.Fatalf("Len = %d, want %d", mi.Len(), len(hashes))
	}
	for _, radius := range []int{0, 1, 2, 4, 7, 8, 12, 20} {
		for trial := 0; trial < 10; trial++ {
			q := hashes[rng.Intn(len(hashes))]
			if trial%2 == 0 {
				q = perturb(rng, q, rng.Intn(4))
			}
			want := bruteRadius(hashes, ids, q, radius)
			got := mi.Radius(q, radius)
			if len(got) != len(want) {
				t.Fatalf("radius %d: got %d distinct hashes, want %d", radius, len(got), len(want))
			}
			for _, m := range got {
				wantIDs := want[m.Hash]
				if len(m.IDs) != len(wantIDs) {
					t.Fatalf("radius %d: ID mismatch for hash %v: got %d want %d",
						radius, m.Hash, len(m.IDs), len(wantIDs))
				}
			}
		}
	}
}

func TestMultiIndexEmptyAndNegativeRadius(t *testing.T) {
	mi := NewMultiIndex()
	if got := mi.Radius(Hash(5), 8); got != nil {
		t.Fatal("empty index should return nil")
	}
	mi.Insert(Hash(5), 1)
	if got := mi.Radius(Hash(5), -1); got != nil {
		t.Fatal("negative radius should return nil")
	}
}

func TestMultiIndexResultsSorted(t *testing.T) {
	mi := NewMultiIndex()
	rng := rand.New(rand.NewSource(5))
	base := Hash(rng.Uint64())
	for i := 0; i < 100; i++ {
		mi.Insert(perturb(rng, base, rng.Intn(10)), int64(i))
	}
	got := mi.Radius(base, 64)
	if !sort.SliceIsSorted(got, func(i, j int) bool {
		if got[i].Distance != got[j].Distance {
			return got[i].Distance < got[j].Distance
		}
		return got[i].Hash < got[j].Hash
	}) {
		t.Fatal("results are not sorted by distance then hash")
	}
}

func TestPairwiseWithinMatchesBrute(t *testing.T) {
	hashes := randomHashes(8, 120)
	rng := rand.New(rand.NewSource(9))
	base := hashes[0]
	for i := 0; i < 30; i++ {
		hashes = append(hashes, perturb(rng, base, rng.Intn(8)))
	}
	const radius = 8
	type pair struct{ i, j int }
	want := make(map[pair]int)
	for i := 0; i < len(hashes); i++ {
		for j := i + 1; j < len(hashes); j++ {
			if d := Distance(hashes[i], hashes[j]); d <= radius {
				want[pair{i, j}] = d
			}
		}
	}
	got := make(map[pair]int)
	var mu sync.Mutex
	PairwiseWithin(hashes, radius, func(i, j, d int) {
		mu.Lock()
		got[pair{i, j}] = d
		mu.Unlock()
	})
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for p, d := range want {
		if got[p] != d {
			t.Fatalf("pair %v: got distance %d, want %d", p, got[p], d)
		}
	}
}

func TestPairwiseWithinSmallInputs(t *testing.T) {
	called := false
	PairwiseWithin(nil, 8, func(i, j, d int) { called = true })
	PairwiseWithin([]Hash{1}, 8, func(i, j, d int) { called = true })
	if called {
		t.Fatal("callback should not fire for fewer than two hashes")
	}
}

func TestBKTreeAndMultiIndexAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(100)
		hashes := make([]Hash, n)
		tr := NewBKTree()
		mi := NewMultiIndex()
		for i := range hashes {
			hashes[i] = Hash(rng.Uint64())
			tr.Insert(hashes[i], int64(i))
			mi.Insert(hashes[i], int64(i))
		}
		q := perturb(rng, hashes[rng.Intn(n)], rng.Intn(5))
		radius := rng.Intn(12)
		a := tr.Radius(q, radius)
		b := mi.Radius(q, radius)
		if len(a) != len(b) {
			return false
		}
		total := func(ms []Match) int {
			n := 0
			for _, m := range ms {
				n += len(m.IDs)
			}
			return n
		}
		return total(a) == total(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
