package phash

import (
	"context"
	"slices"

	"github.com/memes-pipeline/memes/internal/parallel"
)

// probeCutover is the corpus size above which banded multi-index probing
// beats the brute-force pairwise kernel: a probed query costs a roughly
// fixed number of table lookups (~548 at two flips per band), while the
// kernel pays one popcount per stored hash, so probing wins once the corpus
// is tens of thousands of hashes. The choice only moves cost, never
// results — both regimes are exact. A variable only so the equivalence
// tests can force the probing regime on small corpora.
var probeCutover = 1 << 16

// Neighbourhoods computes, for every input hash, the indexes of all hashes
// within the given Hamming radius of it. It is NeighbourhoodsCtx without
// cancellation.
func Neighbourhoods(hashes []Hash, radius, workers int) [][]int32 {
	neigh, _ := NeighbourhoodsCtx(context.Background(), hashes, radius, workers)
	return neigh
}

// NeighbourhoodsCtx computes, for every input hash, the indexes of all hashes
// within the given Hamming radius of it (always including itself, and any
// duplicates), each list in ascending index order. It is the all-points
// counterpart of MultiIndex.Radius — the paper's GPU pairwise comparison
// step as one batch primitive — and the phase-one engine of DBSCAN.
//
// The scan runs on up to `workers` goroutines (<= 0 means GOMAXPROCS); the
// output is identical for every worker count. Large corpora with a probing-
// friendly radius are served by a multi-index (one banded probe set per
// point); everything else takes a blocked pairwise kernel — exactly the
// work the index's exact fallback would do per query, minus the per-query
// goroutine, dedup-map, and sort overhead. With one worker the kernel
// exploits symmetry and computes each pair once.
//
// Cancellation stops rows from being scheduled and returns (nil, ctx.Err());
// no goroutine outlives the call.
func NeighbourhoodsCtx(ctx context.Context, hashes []Hash, radius, workers int) ([][]int32, error) {
	n := len(hashes)
	neigh := make([][]int32, n)
	if n == 0 || radius < 0 {
		return neigh, ctx.Err()
	}
	w := parallel.Workers(workers)
	if w > n {
		w = n
	}

	if n >= probeCutover && radius/mihBands <= 2 {
		m := NewMultiIndex()
		for i, h := range hashes {
			m.Insert(h, int64(i))
		}
		if err := parallel.ForCtx(ctx, n, w, func(i int) {
			matches := m.Radius(hashes[i], radius)
			count := 0
			for _, match := range matches {
				count += len(match.IDs)
			}
			idxs := make([]int32, 0, count)
			for _, match := range matches {
				for _, id := range match.IDs {
					idxs = append(idxs, int32(id))
				}
			}
			slices.Sort(idxs)
			neigh[i] = idxs
		}); err != nil {
			return nil, err
		}
		return neigh, nil
	}

	if w <= 1 {
		// Symmetric serial kernel: each unordered pair is popcounted once
		// and contributes to both endpoints' lists. Row i's list receives
		// every j < i while those rows run, then i itself, then every
		// j > i in ascending order — ascending overall, matching the
		// parallel kernel bit for bit.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			neigh[i] = append(neigh[i], int32(i))
			hi := hashes[i]
			for j := i + 1; j < n; j++ {
				if Distance(hi, hashes[j]) <= radius {
					neigh[i] = append(neigh[i], int32(j))
					neigh[j] = append(neigh[j], int32(i))
				}
			}
		}
		return neigh, nil
	}

	// Parallel kernel: contiguous row chunks, each scanning all n columns.
	// Per-chunk arenas are sized once and reused across the chunk's rows,
	// with every row's list carved out as a capacity-capped sub-slice, so
	// allocations scale with chunks rather than points.
	chunk := parallel.ChunkSize(n, w)
	numChunks := (n + chunk - 1) / chunk
	if err := parallel.ForCtx(ctx, numChunks, w, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		arena := make([]int32, 0, (hi-lo)*8)
		for i := lo; i < hi; i++ {
			at := len(arena)
			hq := hashes[i]
			for j, h := range hashes {
				if Distance(hq, h) <= radius {
					arena = append(arena, int32(j))
				}
			}
			// A mid-row growth leaves the row contiguous in the new
			// backing array (append copies the pending prefix with it);
			// earlier rows keep pointing into the retired arena.
			neigh[i] = arena[at:len(arena):len(arena)]
		}
	}); err != nil {
		return nil, err
	}
	return neigh, nil
}

// CrossNeighbourhoodsCtx computes, for every probe hash, the indexes of all
// base hashes within the given Hamming radius of it (duplicates included,
// probes never matched against each other), each list in ascending base
// index order. It is the streaming companion of NeighbourhoodsCtx: an ingest
// batch probes the resident corpus without re-scanning resident pairs, so an
// incremental re-cluster pays O(len(base)·len(probes)) instead of the full
// O(n²). The scan is chunked over probes across up to `workers` goroutines
// (<= 0 means GOMAXPROCS); output is identical for every worker count.
//
// Cancellation stops chunks from being scheduled and returns
// (nil, ctx.Err()); no goroutine outlives the call.
func CrossNeighbourhoodsCtx(ctx context.Context, base, probes []Hash, radius, workers int) ([][]int32, error) {
	m := len(probes)
	out := make([][]int32, m)
	if m == 0 || len(base) == 0 || radius < 0 {
		return out, ctx.Err()
	}
	w := parallel.Workers(workers)
	if w > m {
		w = m
	}
	chunk := parallel.ChunkSize(m, w)
	numChunks := (m + chunk - 1) / chunk
	if err := parallel.ForCtx(ctx, numChunks, w, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		arena := make([]int32, 0, (hi-lo)*4)
		for i := lo; i < hi; i++ {
			at := len(arena)
			hq := probes[i]
			for j, h := range base {
				if Distance(hq, h) <= radius {
					arena = append(arena, int32(j))
				}
			}
			// Capacity-capped like the kernel above: rows stay safe to
			// extend by callers merging cross and in-batch lists.
			out[i] = arena[at:len(arena):len(arena)]
		}
	}); err != nil {
		return nil, err
	}
	return out, nil
}
