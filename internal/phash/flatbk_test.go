package phash

import (
	"math/rand"
	"reflect"
	"testing"
)

// flatCorpus builds a pointer tree plus a parallel (hash, id) log from a
// corpus with near-duplicate families and exact duplicates — the same shape
// the medoid index sees.
func flatCorpus(rng *rand.Rand, n int) *BKTree {
	t := NewBKTree()
	base := Hash(rng.Uint64())
	for i := 0; i < n; i++ {
		var h Hash
		switch i % 4 {
		case 0:
			h = Hash(rng.Uint64())
		case 1:
			h = base ^ Hash(uint64(1)<<uint(rng.Intn(64)))
		case 2:
			h = base
		default:
			h = Hash(rng.Uint64()) & base
		}
		t.Insert(h, int64(i))
	}
	return t
}

// TestSealedRadiusBitwiseIdentical is the core compilation invariant: for
// the same insert sequence, the sealed tree's Radius output — values AND
// order — is identical to the pointer tree's, at every radius.
func TestSealedRadiusBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pointer := flatCorpus(rng, 400)
	sealed := flatCorpus(rand.New(rand.NewSource(42)), 400)
	sealed.Seal()
	if !sealed.Sealed() {
		t.Fatal("Seal did not seal")
	}
	if sealed.Len() != pointer.Len() || sealed.Keys() != pointer.Keys() {
		t.Fatalf("sealed Len/Keys = %d/%d, pointer = %d/%d", sealed.Len(), sealed.Keys(), pointer.Len(), pointer.Keys())
	}
	for trial := 0; trial < 200; trial++ {
		q := Hash(rng.Uint64())
		for _, radius := range []int{0, 1, 2, 5, 12, 30, 64} {
			want := pointer.Radius(q, radius)
			got := sealed.Radius(q, radius)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("radius %d query %#x: sealed result diverges\n want %v\n  got %v", radius, q, want, got)
			}
		}
	}
}

// TestSealedNearestAndWalk checks the remaining query surface: Nearest must
// agree exactly (same lowest-hash tie-break) and Walk must visit the same
// distinct-hash set with the same ID multisets.
func TestSealedNearestAndWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pointer := flatCorpus(rng, 300)
	sealed := flatCorpus(rand.New(rand.NewSource(7)), 300)
	sealed.Seal()

	for trial := 0; trial < 200; trial++ {
		q := Hash(rng.Uint64())
		wm, wok := pointer.Nearest(q)
		gm, gok := sealed.Nearest(q)
		if wok != gok || wm.Hash != gm.Hash || wm.Distance != gm.Distance {
			t.Fatalf("Nearest(%#x): pointer (%v,%v) vs sealed (%v,%v)", q, wm, wok, gm, gok)
		}
		if !reflect.DeepEqual(wm.IDs, gm.IDs) {
			t.Fatalf("Nearest(%#x) IDs diverge: %v vs %v", q, wm.IDs, gm.IDs)
		}
	}

	want := map[Hash][]int64{}
	pointer.Walk(func(h Hash, ids []int64) bool { want[h] = append([]int64(nil), ids...); return true })
	got := map[Hash][]int64{}
	sealed.Walk(func(h Hash, ids []int64) bool { got[h] = append([]int64(nil), ids...); return true })
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("Walk sets diverge: %d vs %d keys", len(want), len(got))
	}

	// Early stop still stops.
	n := 0
	sealed.Walk(func(Hash, []int64) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early-stopped Walk visited %d nodes, want 3", n)
	}
}

// TestSealedInsertPanics pins the immutability contract.
func TestSealedInsertPanics(t *testing.T) {
	tree := NewBKTree()
	tree.Insert(1, 1)
	tree.Seal()
	defer func() {
		if recover() == nil {
			t.Fatal("Insert into sealed tree did not panic")
		}
	}()
	tree.Insert(2, 2)
}

// TestFlatRoundTripThroughData pins the serialisation path: Data() arrays
// fed back through NewFlatBK must reproduce identical query results.
func TestFlatRoundTripThroughData(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tree := flatCorpus(rng, 250)
	tree.Seal()
	f := tree.Flat()
	hashes, childStart, dists, idStart, ids := f.Data()
	f2, err := NewFlatBK(hashes, childStart, dists, idStart, ids)
	if err != nil {
		t.Fatalf("NewFlatBK rejected its own Data(): %v", err)
	}
	re := NewSealedBKTree(f2)
	for trial := 0; trial < 100; trial++ {
		q := Hash(rng.Uint64())
		if !reflect.DeepEqual(tree.Radius(q, 12), re.Radius(q, 12)) {
			t.Fatalf("round-tripped flat tree diverges on query %#x", q)
		}
	}
}

// TestNewFlatBKRejectsMalformed drives the validator with structurally
// broken arrays; every case must be rejected, never panic or loop.
func TestNewFlatBKRejectsMalformed(t *testing.T) {
	tree := flatCorpus(rand.New(rand.NewSource(3)), 60)
	tree.Seal()
	hashes, childStart, dists, idStart, ids := tree.Flat().Data()
	clone32 := func(s []uint32) []uint32 { return append([]uint32(nil), s...) }

	cases := []struct {
		name string
		mut  func() (h []Hash, cs []uint32, d []uint8, is []uint32, id []int64)
	}{
		{"short childStart", func() ([]Hash, []uint32, []uint8, []uint32, []int64) {
			return hashes, childStart[:len(childStart)-1], dists, idStart, ids
		}},
		{"short dists", func() ([]Hash, []uint32, []uint8, []uint32, []int64) {
			return hashes, childStart, dists[:len(dists)-1], idStart, ids
		}},
		{"self-loop child span", func() ([]Hash, []uint32, []uint8, []uint32, []int64) {
			cs := clone32(childStart)
			cs[1] = 1 // node 1's children would include node 1 ⇒ non-BFS
			return hashes, cs, dists, idStart, ids
		}},
		{"uncovered nodes", func() ([]Hash, []uint32, []uint8, []uint32, []int64) {
			cs := clone32(childStart)
			cs[len(cs)-1]++
			return hashes, cs, dists, idStart, ids
		}},
		{"empty id span", func() ([]Hash, []uint32, []uint8, []uint32, []int64) {
			is := clone32(idStart)
			is[1] = is[0]
			return hashes, childStart, dists, is, ids
		}},
		{"id overflow", func() ([]Hash, []uint32, []uint8, []uint32, []int64) {
			return hashes, childStart, dists, idStart, ids[:len(ids)-1]
		}},
		{"zero edge distance", func() ([]Hash, []uint32, []uint8, []uint32, []int64) {
			d := append([]uint8(nil), dists...)
			d[1] = 0
			return hashes, childStart, d, idStart, ids
		}},
		{"oversized edge distance", func() ([]Hash, []uint32, []uint8, []uint32, []int64) {
			d := append([]uint8(nil), dists...)
			d[1] = MaxDistance + 1
			return hashes, childStart, d, idStart, ids
		}},
		{"ids without nodes", func() ([]Hash, []uint32, []uint8, []uint32, []int64) {
			return nil, nil, nil, nil, ids
		}},
	}
	for _, tc := range cases {
		h, cs, d, is, id := tc.mut()
		if _, err := NewFlatBK(h, cs, d, is, id); err == nil {
			t.Errorf("%s: NewFlatBK accepted malformed arrays", tc.name)
		}
	}
}

// TestRadiusScratchZeroAlloc pins the tentpole: a sealed radius query
// through reused scratch allocates nothing in steady state.
func TestRadiusScratchZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tree := flatCorpus(rng, 500)
	tree.Seal()
	var s Scratch
	queries := make([]Hash, 64)
	for i := range queries {
		queries[i] = Hash(rng.Uint64())
	}
	// Warm the scratch to working-set size.
	for _, q := range queries {
		tree.RadiusScratch(q, 30, &s)
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, q := range queries {
			tree.RadiusScratch(q, 30, &s)
		}
	})
	if allocs != 0 {
		t.Fatalf("RadiusScratch allocates %.1f per run, want 0", allocs)
	}
}
