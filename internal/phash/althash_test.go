package phash

import (
	"image"
	"testing"
)

func TestAlgorithmString(t *testing.T) {
	if DCT.String() != "phash" || Average.String() != "ahash" || Difference.String() != "dhash" {
		t.Fatal("unexpected algorithm names")
	}
	if Algorithm(99).String() != "unknown" {
		t.Fatal("unknown algorithm should stringify as unknown")
	}
}

func TestFromImageWithErrors(t *testing.T) {
	for _, alg := range []Algorithm{DCT, Average, Difference} {
		if _, err := FromImageWith(nil, alg); err == nil {
			t.Errorf("%v: nil image should fail", alg)
		}
		empty := image.NewRGBA(image.Rect(0, 0, 0, 0))
		if _, err := FromImageWith(empty, alg); err == nil {
			t.Errorf("%v: empty image should fail", alg)
		}
	}
}

func TestAlternativeHashesDeterministic(t *testing.T) {
	img := blockImage(77, 128, 128)
	for _, alg := range []Algorithm{Average, Difference} {
		h1, err := FromImageWith(img, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		h2, err := FromImageWith(img, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if h1 != h2 {
			t.Errorf("%v: hash not deterministic", alg)
		}
	}
}

func TestAlternativeHashesSimilarityStructure(t *testing.T) {
	// For every algorithm: a brightness-shifted copy stays close, a distinct
	// image stays far.
	base := blockImage(5, 128, 128)
	bright := image.NewRGBA(base.Bounds())
	copy(bright.Pix, base.Pix)
	for i := 0; i < len(bright.Pix); i += 4 {
		for c := 0; c < 3; c++ {
			v := int(bright.Pix[i+c]) + 12
			if v > 255 {
				v = 255
			}
			bright.Pix[i+c] = uint8(v)
		}
	}
	other := blockImage(9999, 128, 128)
	for _, alg := range []Algorithm{DCT, Average, Difference} {
		hBase, err := FromImageWith(base, alg)
		if err != nil {
			t.Fatal(err)
		}
		hBright, err := FromImageWith(bright, alg)
		if err != nil {
			t.Fatal(err)
		}
		hOther, err := FromImageWith(other, alg)
		if err != nil {
			t.Fatal(err)
		}
		near := Distance(hBase, hBright)
		far := Distance(hBase, hOther)
		if near > 10 {
			t.Errorf("%v: brightness shift moved hash %d bits", alg, near)
		}
		if far <= near {
			t.Errorf("%v: distinct image (%d bits) not farther than near-duplicate (%d bits)", alg, far, near)
		}
	}
}

func TestDifferenceHashIgnoresGlobalBrightness(t *testing.T) {
	// dHash compares adjacent pixels, so adding a constant to every pixel
	// (without clipping) must not change the hash at all.
	img := blockImage(21, 64, 64)
	shifted := image.NewRGBA(img.Bounds())
	for i := 0; i < len(img.Pix); i += 4 {
		for c := 0; c < 3; c++ {
			v := int(img.Pix[i+c])
			// Scale into [0,200] first so +40 never clips.
			v = v * 200 / 255
			img.Pix[i+c] = uint8(v)
			shifted.Pix[i+c] = uint8(v + 40)
		}
		img.Pix[i+3] = 255
		shifted.Pix[i+3] = 255
	}
	h1, err := FromImageWith(img, Difference)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := FromImageWith(shifted, Difference)
	if err != nil {
		t.Fatal(err)
	}
	if d := Distance(h1, h2); d > 2 {
		t.Fatalf("dHash should be invariant to a global brightness shift, distance %d", d)
	}
}
