package phash

import "fmt"

// FlatBK is the sealed, pointer-free form of a BKTree: the same metric tree
// compiled into contiguous arrays so a query touches cache lines instead of
// chasing pointers, and so the whole index can be serialised verbatim into a
// snapshot and served straight out of mmap'd bytes — loaded, not rebuilt.
//
// Nodes are numbered in breadth-first order with each node's children kept
// contiguous and in insertion order, which makes two things true at once:
// the children of node i are exactly the index range
// [childStart[i], childStart[i+1]), and a stack traversal that pushes that
// range in order visits nodes in the same sequence as the pointer tree's
// insertion-ordered child slices — so Radius result order is bitwise
// identical to the unsealed tree (the detorder invariant survives sealing).
//
// A FlatBK is immutable; concurrent queries are safe.
type FlatBK struct {
	hashes     []Hash   // node hashes, BFS order; hashes[0] is the root
	childStart []uint32 // len(hashes)+1; children of node i are nodes [childStart[i], childStart[i+1])
	dists      []uint8  // dists[j] = Hamming distance of node j from its parent; dists[0] is unused
	idStart    []uint32 // len(hashes)+1; IDs of node i are ids[idStart[i]:idStart[i+1]]
	ids        []int64  // one entry per inserted (hash, id) pair, grouped by node
}

// Scratch is caller-owned query state for the zero-allocation radius path:
// the candidate stack and the result buffer both live here and are reused
// across queries, so the steady state allocates nothing. A zero Scratch is
// ready to use; pool it (one per goroutine) for concurrent query paths.
type Scratch struct {
	stack []uint32
	out   []Match
}

// Reset truncates the result buffer, keeping its capacity for reuse.
func (s *Scratch) Reset() { s.out = s.out[:0] }

// Out returns the accumulated matches; valid until the next Reset.
func (s *Scratch) Out() []Match { return s.out }

// compileFlat builds the flat form from a pointer tree by breadth-first
// numbering. size is the total (hash, id) pair count, pre-sizing the arena.
func compileFlat(root *bkNode, keys, size int) *FlatBK {
	f := &FlatBK{
		hashes:     make([]Hash, 0, keys),
		childStart: make([]uint32, 1, keys+1),
		dists:      make([]uint8, 0, keys),
		idStart:    make([]uint32, 1, keys+1),
		ids:        make([]int64, 0, size),
	}
	if root == nil {
		return f
	}
	f.childStart[0] = 1
	queue := make([]*bkNode, 0, keys)
	queue = append(queue, root)
	f.hashes = append(f.hashes, root.hash)
	f.dists = append(f.dists, 0)
	for i := 0; i < len(queue); i++ {
		n := queue[i]
		f.ids = append(f.ids, n.ids...)
		f.idStart = append(f.idStart, uint32(len(f.ids)))
		for _, c := range n.children {
			queue = append(queue, c.node)
			f.hashes = append(f.hashes, c.node.hash)
			f.dists = append(f.dists, uint8(c.dist))
		}
		f.childStart = append(f.childStart, uint32(len(queue)))
	}
	return f
}

// NewFlatBK reconstitutes a flat tree from its serialised arrays (the
// snapshot load path), validating the structural invariants so a malformed
// file cannot drive a query out of bounds: consistent array lengths,
// monotone child/ID spans that partition the node and ID ranges, child
// indices strictly after their parent (BFS order, which also guarantees
// traversal termination), and edge distances within the metric's range.
// The arrays are adopted, not copied — they may live in mmap'd file bytes.
func NewFlatBK(hashes []Hash, childStart []uint32, dists []uint8, idStart []uint32, ids []int64) (*FlatBK, error) {
	n := len(hashes)
	if n == 0 {
		if len(ids) != 0 {
			return nil, fmt.Errorf("phash: flat tree has 0 nodes but %d ids", len(ids))
		}
		return &FlatBK{}, nil
	}
	if len(childStart) != n+1 || len(idStart) != n+1 || len(dists) != n {
		return nil, fmt.Errorf("phash: flat tree array lengths inconsistent (%d nodes, %d childStart, %d idStart, %d dists)",
			n, len(childStart), len(idStart), len(dists))
	}
	if childStart[0] != 1 || childStart[n] != uint32(n) {
		return nil, fmt.Errorf("phash: flat tree child spans do not cover nodes [1,%d)", n)
	}
	if idStart[0] != 0 || idStart[n] != uint32(len(ids)) {
		return nil, fmt.Errorf("phash: flat tree id spans do not cover %d ids", len(ids))
	}
	for i := 0; i < n; i++ {
		if childStart[i+1] < childStart[i] || childStart[i] < uint32(i+1) {
			return nil, fmt.Errorf("phash: flat tree node %d has a non-BFS child span [%d,%d)", i, childStart[i], childStart[i+1])
		}
		if idStart[i+1] <= idStart[i] {
			return nil, fmt.Errorf("phash: flat tree node %d has an empty id span", i)
		}
	}
	for j := 1; j < n; j++ {
		if dists[j] == 0 || dists[j] > MaxDistance {
			return nil, fmt.Errorf("phash: flat tree node %d has edge distance %d outside [1,%d]", j, dists[j], MaxDistance)
		}
	}
	return &FlatBK{hashes: hashes, childStart: childStart, dists: dists, idStart: idStart, ids: ids}, nil
}

// Data exposes the underlying arrays for serialisation. The caller must
// treat them as read-only.
func (f *FlatBK) Data() (hashes []Hash, childStart []uint32, dists []uint8, idStart []uint32, ids []int64) {
	return f.hashes, f.childStart, f.dists, f.idStart, f.ids
}

// Len returns the number of (hash, id) pairs stored.
func (f *FlatBK) Len() int { return len(f.ids) }

// Keys returns the number of distinct hashes stored.
func (f *FlatBK) Keys() int { return len(f.hashes) }

// appendRadius pushes every stored hash within the radius of q onto s.out,
// without resetting it (ShardedBK accumulates across shards). The traversal
// mirrors the pointer tree's exactly — same stack discipline, same child
// order — so the appended match order is bitwise identical to bkNode
// traversal. Match.IDs are subslices of the flat ID arena; they stay valid
// for the life of the tree. Steady state is allocation-free once the
// scratch buffers have grown to the working-set size.
//
//memes:noalloc
func (f *FlatBK) appendRadius(q Hash, radius int, s *Scratch) {
	if len(f.hashes) == 0 || radius < 0 {
		return
	}
	s.stack = append(s.stack[:0], 0)
	for len(s.stack) > 0 {
		n := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		d := Distance(q, f.hashes[n])
		if d <= radius {
			s.out = append(s.out, Match{Hash: f.hashes[n], Distance: d, IDs: f.ids[f.idStart[n]:f.idStart[n+1]]})
		}
		lo, hi := d-radius, d+radius
		for c := f.childStart[n]; c < f.childStart[n+1]; c++ {
			if cd := int(f.dists[c]); cd >= lo && cd <= hi {
				s.stack = append(s.stack, c)
			}
		}
	}
}

// Radius returns all stored hashes within Hamming distance radius of q. It
// allocates its own scratch; hot paths use RadiusScratch via BKTree.
func (f *FlatBK) Radius(q Hash, radius int) []Match {
	var s Scratch
	f.appendRadius(q, radius, &s)
	if len(s.out) == 0 {
		return nil
	}
	return s.out
}

// Nearest returns the stored hash closest to q with the same deterministic
// tie-break as the pointer tree: lowest hash value wins among equals.
func (f *FlatBK) Nearest(q Hash) (Match, bool) {
	if len(f.hashes) == 0 {
		return Match{}, false
	}
	best := Match{Distance: MaxDistance + 1}
	stack := make([]uint32, 1, 64)
	stack[0] = 0
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		d := Distance(q, f.hashes[n])
		if d < best.Distance || (d == best.Distance && f.hashes[n] < best.Hash) {
			best = Match{Hash: f.hashes[n], Distance: d, IDs: f.ids[f.idStart[n]:f.idStart[n+1]]}
			if d == 0 {
				return best, true
			}
		}
		lo, hi := d-best.Distance, d+best.Distance
		for c := f.childStart[n]; c < f.childStart[n+1]; c++ {
			if cd := int(f.dists[c]); cd >= lo && cd <= hi {
				stack = append(stack, c)
			}
		}
	}
	return best, true
}

// Walk visits every distinct stored hash in node order. Returning false
// from fn stops the walk early.
func (f *FlatBK) Walk(fn func(h Hash, ids []int64) bool) {
	for n := range f.hashes {
		if !fn(f.hashes[n], f.ids[f.idStart[n]:f.idStart[n+1]]) {
			return
		}
	}
}
