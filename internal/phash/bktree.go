package phash

// BKTree is a Burkhard-Keller tree over 64-bit perceptual hashes with the
// Hamming distance as metric. It answers radius queries ("all hashes within
// distance r of q") in far fewer comparisons than a linear scan, which is how
// this repository replaces the paper's GPU-backed pairwise comparison engine:
// the distances computed are identical, only the search strategy differs.
//
// The tree stores every distinct hash once together with the list of item IDs
// that produced it, so inserting millions of near-duplicate images stays
// compact.
//
// BKTree is not safe for concurrent mutation. Concurrent queries after all
// inserts are complete are safe.
type BKTree struct {
	root *bkNode
	size int // number of (hash, id) pairs inserted
	keys int // number of distinct hashes

	// flat, when non-nil, is the sealed array-backed form; the pointer tree
	// has been dropped and all queries run against the flat arrays.
	flat *FlatBK
}

// bkChild is one edge of the tree: the child subtree rooted at Hamming
// distance dist from its parent. Children are kept as a slice in insertion
// order rather than a map: a node has at most 64 distinct child distances,
// so the linear scan is cache-friendly, and — unlike ranging over a map —
// traversal order is a pure function of the insert sequence, which keeps
// Radius result order deterministic (the detorder invariant).
type bkChild struct {
	dist int
	node *bkNode
}

type bkNode struct {
	hash     Hash
	ids      []int64
	children []bkChild
}

// child returns the subtree at distance d, or nil.
func (n *bkNode) child(d int) *bkNode {
	for _, c := range n.children {
		if c.dist == d {
			return c.node
		}
	}
	return nil
}

// NewBKTree returns an empty BK-tree.
func NewBKTree() *BKTree {
	return &BKTree{}
}

// NewSealedBKTree wraps an already-compiled flat tree (typically one
// reconstituted from a MEMESNAP v2 snapshot) as a sealed BKTree: queries are
// served straight from the flat arrays and Insert panics.
func NewSealedBKTree(f *FlatBK) *BKTree {
	return &BKTree{flat: f, size: f.Len(), keys: f.Keys()}
}

// Seal compiles the pointer tree into its contiguous array-backed form and
// drops the pointer nodes. After Seal, queries traverse the flat arrays
// (bitwise-identical Radius result order, per the compilation invariant),
// the zero-allocation scratch query path becomes available, and Insert
// panics. Sealing an already-sealed tree is a no-op.
func (t *BKTree) Seal() {
	if t.flat != nil {
		return
	}
	t.flat = compileFlat(t.root, t.keys, t.size)
	t.root = nil
}

// Sealed reports whether the tree has been compiled to its flat form.
func (t *BKTree) Sealed() bool { return t.flat != nil }

// Flat returns the sealed array-backed form, or nil before Seal.
func (t *BKTree) Flat() *FlatBK { return t.flat }

// Len returns the number of (hash, id) pairs inserted.
func (t *BKTree) Len() int { return t.size }

// Keys returns the number of distinct hashes stored.
func (t *BKTree) Keys() int { return t.keys }

// Insert adds a hash with an associated item identifier. Duplicate hashes are
// merged into the existing node.
func (t *BKTree) Insert(h Hash, id int64) {
	if t.flat != nil {
		panic("phash: Insert into sealed BKTree")
	}
	t.size++
	if t.root == nil {
		t.root = &bkNode{hash: h, ids: []int64{id}}
		t.keys++
		return
	}
	node := t.root
	for {
		d := Distance(h, node.hash)
		if d == 0 {
			node.ids = append(node.ids, id)
			return
		}
		child := node.child(d)
		if child == nil {
			node.children = append(node.children, bkChild{dist: d, node: &bkNode{hash: h, ids: []int64{id}}})
			t.keys++
			return
		}
		node = child
	}
}

// Match is a single radius-query result: a stored hash, its distance from the
// query, and the item IDs that share that hash.
type Match struct {
	Hash     Hash
	Distance int
	IDs      []int64
}

// Radius returns all stored hashes within Hamming distance radius of q,
// together with their item IDs. Result order is unspecified by the
// MedoidIndex contract but is in fact a pure function of the insert
// sequence: the traversal follows the insertion-ordered child slices, never
// a map.
func (t *BKTree) Radius(q Hash, radius int) []Match {
	if t.flat != nil {
		return t.flat.Radius(q, radius)
	}
	if t.root == nil || radius < 0 {
		return nil
	}
	var out []Match
	stack := []*bkNode{t.root}
	for len(stack) > 0 {
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		d := Distance(q, node.hash)
		if d <= radius {
			out = append(out, Match{Hash: node.hash, Distance: d, IDs: node.ids})
		}
		lo, hi := d-radius, d+radius
		for _, c := range node.children {
			if c.dist >= lo && c.dist <= hi {
				stack = append(stack, c.node)
			}
		}
	}
	return out
}

// Nearest returns the stored hash closest to q and its distance. The boolean
// is false when the tree is empty. Ties between distinct hashes at the same
// distance are broken by the lowest hash value, so the result never depends
// on traversal order — the determinism contract every index strategy shares.
func (t *BKTree) Nearest(q Hash) (Match, bool) {
	if t.flat != nil {
		return t.flat.Nearest(q)
	}
	if t.root == nil {
		return Match{}, false
	}
	best := Match{Distance: MaxDistance + 1}
	stack := []*bkNode{t.root}
	for len(stack) > 0 {
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		d := Distance(q, node.hash)
		if d < best.Distance || (d == best.Distance && node.hash < best.Hash) {
			best = Match{Hash: node.hash, Distance: d, IDs: node.ids}
			if d == 0 {
				return best, true
			}
		}
		lo, hi := d-best.Distance, d+best.Distance
		for _, c := range node.children {
			if c.dist >= lo && c.dist <= hi {
				stack = append(stack, c.node)
			}
		}
	}
	return best, true
}

// RadiusScratch answers a radius query through caller-owned scratch: the
// candidate stack and result buffer live in s and are reused across calls,
// so the steady state allocates nothing. Requires a sealed tree; before
// Seal it falls back to the allocating Radius (cold path only — the serve
// path always seals).
//
//memes:noalloc
func (t *BKTree) RadiusScratch(q Hash, radius int, s *Scratch) []Match {
	s.Reset()
	t.AppendRadius(q, radius, s)
	return s.Out()
}

// AppendRadius appends radius-query matches to s.out without resetting it,
// letting ShardedBK accumulate one result set across shards. Falls back to
// the allocating path on an unsealed tree.
//
//memes:noalloc
func (t *BKTree) AppendRadius(q Hash, radius int, s *Scratch) {
	if t.flat != nil {
		t.flat.appendRadius(q, radius, s)
		return
	}
	s.out = append(s.out, t.Radius(q, radius)...)
}

// Walk visits every distinct hash stored in the tree in unspecified order.
// Returning false from fn stops the walk early.
func (t *BKTree) Walk(fn func(h Hash, ids []int64) bool) {
	if t.flat != nil {
		t.flat.Walk(fn)
		return
	}
	if t.root == nil {
		return
	}
	stack := []*bkNode{t.root}
	for len(stack) > 0 {
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(node.hash, node.ids) {
			return
		}
		for _, c := range node.children {
			stack = append(stack, c.node)
		}
	}
}
