package phash

import (
	"context"
	"math/rand"
	"testing"
)

// bruteNeighbourhoods is the oracle: an O(n²) scan building every list in
// ascending index order, duplicates and self included.
func bruteNeighbourhoods(hashes []Hash, radius int) [][]int32 {
	out := make([][]int32, len(hashes))
	for i, q := range hashes {
		for j, h := range hashes {
			if Distance(q, h) <= radius {
				out[i] = append(out[i], int32(j))
			}
		}
	}
	return out
}

// clusteredCorpus draws hashes around a few templates (so neighbourhoods
// are non-trivial) with exact duplicates mixed in.
func clusteredCorpus(rng *rand.Rand, n int) []Hash {
	templates := []Hash{Hash(rng.Uint64()), Hash(rng.Uint64()), Hash(rng.Uint64())}
	out := make([]Hash, n)
	for i := range out {
		h := templates[rng.Intn(len(templates))]
		for f := rng.Intn(6); f > 0; f-- {
			h ^= 1 << uint(rng.Intn(64))
		}
		if rng.Intn(4) == 0 && i > 0 {
			h = out[rng.Intn(i)] // exact duplicate
		}
		out[i] = h
	}
	return out
}

// TestNeighbourhoodsMatchesBrute pins all three regimes — serial symmetric
// kernel, parallel chunked kernel, and banded probing — against the brute
// oracle, across radii spanning the probing and linear regimes.
func TestNeighbourhoodsMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{0, 1, 2, 37, 300} {
		hashes := clusteredCorpus(rng, n)
		for _, radius := range []int{0, 3, 8, 11, 20} {
			want := bruteNeighbourhoods(hashes, radius)
			check := func(got [][]int32, label string) {
				t.Helper()
				if len(got) != len(want) {
					t.Fatalf("n=%d r=%d %s: %d lists, want %d", n, radius, label, len(got), len(want))
				}
				for i := range want {
					if len(got[i]) != len(want[i]) {
						t.Fatalf("n=%d r=%d %s: list %d has %d entries, want %d",
							n, radius, label, i, len(got[i]), len(want[i]))
					}
					for k := range want[i] {
						if got[i][k] != want[i][k] {
							t.Fatalf("n=%d r=%d %s: list %d entry %d = %d, want %d",
								n, radius, label, i, k, got[i][k], want[i][k])
						}
					}
				}
			}
			for _, workers := range []int{0, 1, 2, 7} {
				check(Neighbourhoods(hashes, radius, workers), "kernel")
			}
			// Force the probing regime (only reachable for probe-friendly
			// radii) on the same corpus.
			if radius/mihBands <= 2 {
				old := probeCutover
				probeCutover = 1
				for _, workers := range []int{1, 4} {
					check(Neighbourhoods(hashes, radius, workers), "probing")
				}
				probeCutover = old
			}
		}
	}
}

// TestNeighbourhoodsNegativeRadius: a negative radius yields empty lists
// (not even self-matches), mirroring MultiIndex.Radius.
func TestNeighbourhoodsNegativeRadius(t *testing.T) {
	got := Neighbourhoods([]Hash{1, 2, 3}, -1, 2)
	if len(got) != 3 {
		t.Fatalf("expected 3 lists, got %d", len(got))
	}
	for i, l := range got {
		if len(l) != 0 {
			t.Fatalf("list %d should be empty, got %v", i, l)
		}
	}
}

// TestCrossNeighbourhoodsMatchesUnionScan pins CrossNeighbourhoodsCtx
// against NeighbourhoodsCtx over the concatenated corpus: each probe row
// must equal the base-index portion of the union scan's row for that probe.
func TestCrossNeighbourhoodsMatchesUnionScan(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for _, shape := range []struct{ base, probes int }{
		{1, 1}, {40, 1}, {40, 40}, {300, 17}, {17, 300},
	} {
		corpus := clusteredCorpus(rng, shape.base+shape.probes)
		base, probes := corpus[:shape.base], corpus[shape.base:]
		for _, radius := range []int{0, 4, 10} {
			full, err := NeighbourhoodsCtx(context.Background(), corpus, radius, 1)
			if err != nil {
				t.Fatalf("NeighbourhoodsCtx: %v", err)
			}
			for _, workers := range []int{1, 7} {
				cross, err := CrossNeighbourhoodsCtx(context.Background(), base, probes, radius, workers)
				if err != nil {
					t.Fatalf("CrossNeighbourhoodsCtx: %v", err)
				}
				for i := range probes {
					var want []int32
					for _, j := range full[shape.base+i] {
						if int(j) < shape.base {
							want = append(want, j)
						}
					}
					got := cross[i]
					if len(got) != len(want) {
						t.Fatalf("base=%d probes=%d radius=%d workers=%d probe %d: got %d hits, want %d",
							shape.base, shape.probes, radius, workers, i, len(got), len(want))
					}
					for k := range want {
						if got[k] != want[k] {
							t.Fatalf("base=%d probes=%d radius=%d workers=%d probe %d: hit %d = %d, want %d",
								shape.base, shape.probes, radius, workers, i, k, got[k], want[k])
						}
					}
				}
			}
		}
	}
}

// TestCrossNeighbourhoodsEdges pins the degenerate inputs.
func TestCrossNeighbourhoodsEdges(t *testing.T) {
	out, err := CrossNeighbourhoodsCtx(context.Background(), nil, []Hash{1}, 4, 2)
	if err != nil {
		t.Fatalf("empty base: %v", err)
	}
	if len(out) != 1 || len(out[0]) != 0 {
		t.Fatalf("empty base should yield one empty row, got %v", out)
	}
	out, err = CrossNeighbourhoodsCtx(context.Background(), []Hash{1}, nil, 4, 2)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty probes should yield no rows, got %v, %v", out, err)
	}
	out, err = CrossNeighbourhoodsCtx(context.Background(), []Hash{1}, []Hash{1}, -1, 2)
	if err != nil || len(out[0]) != 0 {
		t.Fatalf("negative radius should match nothing, got %v, %v", out, err)
	}
}
