package phash

import "image"

// This file provides the two classic alternatives to the DCT pHash —
// average hashing (aHash) and difference hashing (dHash) — so the hashing
// stage of the pipeline can be compared across algorithms, in the spirit of
// the perceptual-hash robustness benchmarking the paper cites (Zauner et
// al., "Rihamark"). The pipeline itself uses FromImage (DCT pHash), which is
// what the paper's ImageHash dependency computes; these are provided for
// ablation and for downstream users with different robustness/latency
// trade-offs.

// Algorithm selects a perceptual hashing algorithm.
type Algorithm int

const (
	// DCT is the default pHash algorithm used throughout the pipeline.
	DCT Algorithm = iota
	// Average is aHash: each bit compares a pixel of the 8x8 downsampled
	// image against the mean luminance. Fast, less robust to contrast
	// changes.
	Average
	// Difference is dHash: each bit compares horizontally adjacent pixels of
	// a 9x8 downsampled image. Robust to global brightness shifts.
	Difference
)

// String returns the algorithm's conventional name.
func (a Algorithm) String() string {
	switch a {
	case DCT:
		return "phash"
	case Average:
		return "ahash"
	case Difference:
		return "dhash"
	default:
		return "unknown"
	}
}

// FromImageWith computes a 64-bit perceptual hash with the selected
// algorithm.
func FromImageWith(img image.Image, alg Algorithm) (Hash, error) {
	switch alg {
	case Average:
		return averageHash(img)
	case Difference:
		return differenceHash(img)
	default:
		return FromImage(img)
	}
}

// averageHash implements aHash: downsample to 8x8, threshold at the mean.
func averageHash(img image.Image) (Hash, error) {
	if img == nil {
		return 0, errEmptyImage
	}
	b := img.Bounds()
	if b.Dx() <= 0 || b.Dy() <= 0 {
		return 0, errEmptyImage
	}
	gray := toGray(img)
	small := resizeBilinear(gray, 8, 8)
	mean := 0.0
	for _, v := range small {
		mean += v
	}
	mean /= float64(len(small))
	var h Hash
	for i, v := range small {
		if v > mean {
			h |= 1 << uint(i)
		}
	}
	return h, nil
}

// differenceHash implements dHash: downsample to 9x8 and compare each pixel
// with its right neighbour.
func differenceHash(img image.Image) (Hash, error) {
	if img == nil {
		return 0, errEmptyImage
	}
	b := img.Bounds()
	if b.Dx() <= 0 || b.Dy() <= 0 {
		return 0, errEmptyImage
	}
	gray := toGray(img)
	small := resizeBilinearRaw(gray.pix, gray.w, gray.h, 9, 8)
	var h Hash
	bit := 0
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if small[y*9+x] < small[y*9+x+1] {
				h |= 1 << uint(bit)
			}
			bit++
		}
	}
	return h, nil
}
