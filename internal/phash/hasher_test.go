package phash

import (
	"image"
	"image/color"
	"math/rand"
	"sort"
	"testing"

	"github.com/memes-pipeline/memes/internal/imaging"
)

// TestGoldenHashes pins the exact hash of a fixed synthetic image set. The
// values were computed with the pre-pruning full-DCT implementation, so any
// drift in the pruned DCT, the pooled scratch, the median selection, or the
// grayscale fast paths fails this test.
func TestGoldenHashes(t *testing.T) {
	golden := []struct {
		name string
		want string
	}{
		{"template_1", "c30b35b3476dba11"},
		{"template_2", "299649d66936c967"},
		{"template_3", "660103fdfc0303ff"},
		{"template_4", "ad696a5392a9495b"},
		{"template_5", "c07e644e27b098df"},
		{"template_6", "9595950a6a2ab59f"},
		{"template_7", "a5f8b50a050ab5fb"},
		{"template_8", "c399646598996767"},
		{"variant_1", "c30b35b3476dba11"},
		{"variant_2", "299649d66936c967"},
		{"variant_3", "560503ddfc0303ff"},
		{"variant_4", "ac2d6a5392a9495f"},
		{"screenshot_1", "6c597c03b60349fd"},
		{"screenshot_2", "4353d2ac2cfc3e0b"},
		{"screenshot_3", "d6adb44b520329f5"},
		{"screenshot_4", "a1ad03f45efcac03"},
	}
	images := map[string]image.Image{}
	for seed := int64(1); seed <= 8; seed++ {
		images[golden[seed-1].name] = imaging.Template(seed)
	}
	for seed := int64(1); seed <= 4; seed++ {
		images[golden[7+seed].name] = imaging.Variant(imaging.Template(seed), seed*10+3, 0.3)
		images[golden[11+seed].name] = imaging.Screenshot(seed, 320, 200)
	}
	for _, g := range golden {
		h, err := FromImage(images[g.name])
		if err != nil {
			t.Fatalf("%s: FromImage: %v", g.name, err)
		}
		if h.String() != g.want {
			t.Errorf("%s: hash = %s, want %s", g.name, h, g.want)
		}
	}

	grayGolden := []struct {
		want string
	}{
		{"c30779c5dd06ea15"},
		{"5d28bec4b66f2609"},
		{"dca16ff356d5000d"},
		{"4e3249dbc34762b3"},
	}
	rng := rand.New(rand.NewSource(7))
	for c, g := range grayGolden {
		w, h := 40+rng.Intn(100), 40+rng.Intn(100)
		pix := make([]float64, w*h)
		for i := range pix {
			pix[i] = rng.Float64() * 255
		}
		hv, err := FromGray(pix, w, h)
		if err != nil {
			t.Fatalf("gray_%d: FromGray: %v", c, err)
		}
		if hv.String() != g.want {
			t.Errorf("gray_%d (%dx%d): hash = %s, want %s", c, w, h, hv, g.want)
		}
	}
}

// fromGrayReference replicates the historical hash path — full 32x32 2-D
// DCT, block copy, insertion-sorted median — with fresh allocations per
// call. The pruned pooled implementation must match it bit for bit.
func fromGrayReference(pix []float64, w, h int) Hash {
	small := resizeBilinearRaw(pix, w, h, lowResSize, lowResSize)
	coeffs := dct2D(small)
	var block [dctBlock * dctBlock]float64
	for y := 0; y < dctBlock; y++ {
		for x := 0; x < dctBlock; x++ {
			block[y*dctBlock+x] = coeffs[y*lowResSize+x]
		}
	}
	tmp := make([]float64, len(block)-1)
	copy(tmp, block[1:])
	sort.Float64s(tmp)
	n := len(tmp)
	med := tmp[n/2] // 63 values: odd
	var out Hash
	for i, v := range block {
		if v > med {
			out |= 1 << uint(i)
		}
	}
	return out
}

// TestFromGrayMatchesReference is the old-vs-new equivalence property: over
// random gray matrices of random sizes, the pruned zero-allocation path and
// the full-DCT reference produce bit-identical hashes.
func TestFromGrayMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		w, h := 1+rng.Intn(200), 1+rng.Intn(200)
		pix := make([]float64, w*h)
		for i := range pix {
			pix[i] = rng.Float64() * 255
		}
		got, err := FromGray(pix, w, h)
		if err != nil {
			t.Fatalf("trial %d (%dx%d): %v", trial, w, h, err)
		}
		if want := fromGrayReference(pix, w, h); got != want {
			t.Fatalf("trial %d (%dx%d): pruned hash %s != reference %s", trial, w, h, got, want)
		}
	}
}

// opaque hides an image's concrete type so toGrayInto takes the generic
// color.RGBAModel path, giving the fast paths something to be compared
// against.
type opaque struct{ image.Image }

func grayEqual(t *testing.T, img image.Image, label string) {
	t.Helper()
	b := img.Bounds()
	n := b.Dx() * b.Dy()
	fast := make([]float64, n)
	generic := make([]float64, n)
	toGrayInto(img, fast)
	toGrayInto(opaque{img}, generic)
	for i := range fast {
		if fast[i] != generic[i] {
			t.Fatalf("%s: luminance diverges at pixel %d: fast %v, generic %v", label, i, fast[i], generic[i])
		}
	}
	hFast, err := FromImage(img)
	if err != nil {
		t.Fatal(err)
	}
	hGeneric, err := FromImage(opaque{img})
	if err != nil {
		t.Fatal(err)
	}
	if hFast != hGeneric {
		t.Fatalf("%s: fast-path hash %s != generic-path hash %s", label, hFast, hGeneric)
	}
}

// TestNRGBAFastPathMatchesGeneric pins the *image.NRGBA loop (including
// alpha premultiplication) against the generic color-model path.
func TestNRGBAFastPathMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	img := image.NewNRGBA(image.Rect(0, 0, 73, 41))
	for y := 0; y < 41; y++ {
		for x := 0; x < 73; x++ {
			img.SetNRGBA(x, y, color.NRGBA{
				R: uint8(rng.Intn(256)), G: uint8(rng.Intn(256)),
				B: uint8(rng.Intn(256)), A: uint8(rng.Intn(256)), // incl. partial alpha
			})
		}
	}
	grayEqual(t, img, "nrgba")
	// Fully opaque is the common real-world case.
	for i := 3; i < len(img.Pix); i += 4 {
		img.Pix[i] = 0xff
	}
	grayEqual(t, img, "nrgba-opaque")
}

// TestYCbCrFastPathMatchesGeneric pins the *image.YCbCr loop (JPEG-style
// sources) against the generic path for every common subsample ratio.
func TestYCbCrFastPathMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, ratio := range []image.YCbCrSubsampleRatio{
		image.YCbCrSubsampleRatio444,
		image.YCbCrSubsampleRatio422,
		image.YCbCrSubsampleRatio420,
	} {
		img := image.NewYCbCr(image.Rect(0, 0, 64, 48), ratio)
		for i := range img.Y {
			img.Y[i] = uint8(rng.Intn(256))
		}
		for i := range img.Cb {
			img.Cb[i] = uint8(rng.Intn(256))
			img.Cr[i] = uint8(rng.Intn(256))
		}
		grayEqual(t, img, ratio.String())
	}
}

// TestHashPathZeroAllocs is the steady-state allocation contract: once the
// pool is warm, hashing allocates nothing for the concrete image types the
// corpora produce, and neither does the median selection.
func TestHashPathZeroAllocs(t *testing.T) {
	rgba := gradientImage(120, 90, 1)
	gray := image.NewGray(image.Rect(0, 0, 80, 60))
	nrgba := image.NewNRGBA(image.Rect(0, 0, 80, 60))
	ycbcr := image.NewYCbCr(image.Rect(0, 0, 80, 60), image.YCbCrSubsampleRatio420)
	pix := make([]float64, 100*70)
	for i := range pix {
		pix[i] = float64(i % 251)
	}
	cases := []struct {
		name string
		fn   func()
	}{
		{"FromImage/rgba", func() { FromImage(rgba) }},
		{"FromImage/gray", func() { FromImage(gray) }},
		{"FromImage/nrgba", func() { FromImage(nrgba) }},
		{"FromImage/ycbcr", func() { FromImage(ycbcr) }},
		{"FromGray", func() { FromGray(pix, 100, 70) }},
	}
	for _, c := range cases {
		c.fn() // warm the pool and grow the gray scratch
		if n := testing.AllocsPerRun(100, c.fn); n != 0 {
			t.Errorf("%s: %v allocs/run, want 0", c.name, n)
		}
	}
	var block [dctBlock * dctBlock]float64
	for i := range block {
		block[i] = float64((i * 37) % 64)
	}
	if n := testing.AllocsPerRun(100, func() { medianExcludingFirst(block[:]) }); n != 0 {
		t.Errorf("medianExcludingFirst: %v allocs/run, want 0", n)
	}
}

// TestMedianMatchesFullSort checks the partial-selection median against a
// full sort over random inputs, odd and even lengths alike.
func TestMedianMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(80)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
		}
		got := medianExcludingFirst(vals)
		sorted := append([]float64(nil), vals[1:]...)
		sort.Float64s(sorted)
		m := len(sorted)
		want := sorted[m/2]
		if m%2 == 0 {
			want = (sorted[m/2-1] + sorted[m/2]) / 2
		}
		if got != want {
			t.Fatalf("trial %d (n=%d): median %v, want %v", trial, n, got, want)
		}
	}
}
