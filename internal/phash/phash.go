// Package phash implements 64-bit DCT-based perceptual hashing of images,
// Hamming-distance computation, and nearest-neighbour indexes (BK-tree and
// multi-index hashing) used by the meme-tracking pipeline.
//
// The hash follows the classic pHash construction used by the paper's
// ImageHash dependency: the image is converted to grayscale, downsampled to
// 32x32 with bilinear interpolation, transformed with a 2-D DCT-II, and the
// top-left 8x8 block of low-frequency coefficients (excluding the DC term
// when computing the threshold) is binarised around its median. Visually
// similar images therefore map to hashes within a small Hamming distance.
package phash

import (
	"encoding/binary"
	"errors"
	"fmt"
	"image"
	"image/color"
	"math/bits"
	"strconv"
)

// Size is the number of bits in a perceptual hash.
const Size = 64

// MaxDistance is the maximum possible Hamming distance between two hashes.
const MaxDistance = Size

// Hash is a 64-bit perceptual hash. The zero value is a valid hash (all
// zero bits) but is unlikely to be produced by a natural image.
type Hash uint64

// lowResSize is the side of the intermediate downsampled grayscale image.
const lowResSize = 32

// dctBlock is the side of the low-frequency DCT block retained for hashing.
const dctBlock = 8

var errEmptyImage = errors.New("phash: empty image")

// FromImage computes the perceptual hash of img.
func FromImage(img image.Image) (Hash, error) {
	if img == nil {
		return 0, errEmptyImage
	}
	b := img.Bounds()
	if b.Dx() <= 0 || b.Dy() <= 0 {
		return 0, errEmptyImage
	}
	gray := toGray(img)
	small := resizeBilinear(gray, lowResSize, lowResSize)
	coeffs := dct2D(small)

	// Collect the top-left 8x8 block of coefficients.
	var block [dctBlock * dctBlock]float64
	for y := 0; y < dctBlock; y++ {
		for x := 0; x < dctBlock; x++ {
			block[y*dctBlock+x] = coeffs[y*lowResSize+x]
		}
	}
	// Median excludes the DC coefficient, which otherwise dominates.
	med := medianExcludingFirst(block[:])

	var h Hash
	for i, v := range block {
		if v > med {
			h |= 1 << uint(i)
		}
	}
	return h, nil
}

// FromGray computes the perceptual hash of a grayscale matrix given in
// row-major order with the provided dimensions. It is the low-level entry
// point used by synthetic workload generators that never materialise an
// image.Image.
func FromGray(pix []float64, w, h int) (Hash, error) {
	if w <= 0 || h <= 0 || len(pix) != w*h {
		return 0, fmt.Errorf("phash: invalid gray matrix %dx%d with %d pixels", w, h, len(pix))
	}
	small := resizeBilinearRaw(pix, w, h, lowResSize, lowResSize)
	coeffs := dct2D(small)
	var block [dctBlock * dctBlock]float64
	for y := 0; y < dctBlock; y++ {
		for x := 0; x < dctBlock; x++ {
			block[y*dctBlock+x] = coeffs[y*lowResSize+x]
		}
	}
	med := medianExcludingFirst(block[:])
	var out Hash
	for i, v := range block {
		if v > med {
			out |= 1 << uint(i)
		}
	}
	return out, nil
}

// Distance returns the Hamming distance between two hashes, i.e. the number
// of bit positions at which they differ. The result is in [0, 64].
func Distance(a, b Hash) int {
	return bits.OnesCount64(uint64(a ^ b))
}

// Similar reports whether the Hamming distance between a and b is at most
// threshold.
func Similar(a, b Hash, threshold int) bool {
	return Distance(a, b) <= threshold
}

// String returns the canonical 16-character lowercase hexadecimal
// representation of the hash, matching the string form used in the paper
// (e.g. "55352b0b8d8b5b53").
func (h Hash) String() string {
	return fmt.Sprintf("%016x", uint64(h))
}

// Parse parses a hash from its hexadecimal string representation.
func Parse(s string) (Hash, error) {
	if len(s) == 0 || len(s) > 16 {
		return 0, fmt.Errorf("phash: invalid hash string %q", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("phash: invalid hash string %q: %w", s, err)
	}
	return Hash(v), nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (h Hash) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, uint64(h))
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (h *Hash) UnmarshalBinary(data []byte) error {
	if len(data) != 8 {
		return fmt.Errorf("phash: invalid binary hash length %d", len(data))
	}
	*h = Hash(binary.BigEndian.Uint64(data))
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (h Hash) MarshalText() ([]byte, error) { return []byte(h.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (h *Hash) UnmarshalText(data []byte) error {
	v, err := Parse(string(data))
	if err != nil {
		return err
	}
	*h = v
	return nil
}

// toGray converts an image to a float64 luminance matrix in row-major order
// with the same dimensions as the source bounds.
func toGray(img image.Image) grayMatrix {
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	m := grayMatrix{w: w, h: h, pix: make([]float64, w*h)}
	switch src := img.(type) {
	case *image.Gray:
		for y := 0; y < h; y++ {
			row := src.Pix[(y+b.Min.Y-src.Rect.Min.Y)*src.Stride:]
			for x := 0; x < w; x++ {
				m.pix[y*w+x] = float64(row[x+b.Min.X-src.Rect.Min.X])
			}
		}
	case *image.RGBA:
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := src.PixOffset(x+b.Min.X, y+b.Min.Y)
				r, g, bl := src.Pix[i], src.Pix[i+1], src.Pix[i+2]
				m.pix[y*w+x] = luminance(float64(r), float64(g), float64(bl))
			}
		}
	default:
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				c := color.RGBAModel.Convert(img.At(x+b.Min.X, y+b.Min.Y)).(color.RGBA)
				m.pix[y*w+x] = luminance(float64(c.R), float64(c.G), float64(c.B))
			}
		}
	}
	return m
}

// luminance computes the ITU-R BT.601 luma from 8-bit RGB components.
func luminance(r, g, b float64) float64 {
	return 0.299*r + 0.587*g + 0.114*b
}

type grayMatrix struct {
	w, h int
	pix  []float64
}

// resizeBilinear resizes a grayscale matrix to dw x dh using bilinear
// interpolation and returns the result in row-major order.
func resizeBilinear(m grayMatrix, dw, dh int) []float64 {
	return resizeBilinearRaw(m.pix, m.w, m.h, dw, dh)
}

func resizeBilinearRaw(pix []float64, sw, sh, dw, dh int) []float64 {
	out := make([]float64, dw*dh)
	if sw == dw && sh == dh {
		copy(out, pix)
		return out
	}
	xRatio := float64(sw-1) / float64(maxInt(dw-1, 1))
	yRatio := float64(sh-1) / float64(maxInt(dh-1, 1))
	for y := 0; y < dh; y++ {
		sy := float64(y) * yRatio
		y0 := int(sy)
		y1 := y0
		if y1 < sh-1 {
			y1++
		}
		fy := sy - float64(y0)
		for x := 0; x < dw; x++ {
			sx := float64(x) * xRatio
			x0 := int(sx)
			x1 := x0
			if x1 < sw-1 {
				x1++
			}
			fx := sx - float64(x0)
			p00 := pix[y0*sw+x0]
			p01 := pix[y0*sw+x1]
			p10 := pix[y1*sw+x0]
			p11 := pix[y1*sw+x1]
			top := p00 + (p01-p00)*fx
			bot := p10 + (p11-p10)*fx
			out[y*dw+x] = top + (bot-top)*fy
		}
	}
	return out
}

// medianExcludingFirst returns the median of vals[1:]; the first element is
// the DC coefficient that is conventionally excluded from the threshold.
func medianExcludingFirst(vals []float64) float64 {
	tmp := make([]float64, len(vals)-1)
	copy(tmp, vals[1:])
	insertionSort(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
