// Package phash implements 64-bit DCT-based perceptual hashing of images,
// Hamming-distance computation, and nearest-neighbour indexes (BK-tree and
// multi-index hashing) used by the meme-tracking pipeline.
//
// The hash follows the classic pHash construction used by the paper's
// ImageHash dependency: the image is converted to grayscale, downsampled to
// 32x32 with bilinear interpolation, transformed with a 2-D DCT-II, and the
// top-left 8x8 block of low-frequency coefficients (excluding the DC term
// when computing the threshold) is binarised around its median. Visually
// similar images therefore map to hashes within a small Hamming distance.
package phash

import (
	"encoding/binary"
	"errors"
	"fmt"
	"image"
	"image/color"
	"math/bits"
	"strconv"
)

// Size is the number of bits in a perceptual hash.
const Size = 64

// MaxDistance is the maximum possible Hamming distance between two hashes.
const MaxDistance = Size

// Hash is a 64-bit perceptual hash. The zero value is a valid hash (all
// zero bits) but is unlikely to be produced by a natural image.
type Hash uint64

// lowResSize is the side of the intermediate downsampled grayscale image.
const lowResSize = 32

// dctBlock is the side of the low-frequency DCT block retained for hashing.
const dctBlock = 8

var errEmptyImage = errors.New("phash: empty image")

// FromImage computes the perceptual hash of img. The hot path — grayscale
// conversion, bilinear downsample, pruned DCT, median threshold — runs
// entirely on pooled scratch, so steady-state hashing allocates nothing for
// the common concrete image types (*image.Gray, *image.RGBA, *image.NRGBA,
// *image.YCbCr). The annotation below puts this function under the noalloc
// analyzer, complementing the runtime AllocsPerRun gate.
//
//memes:noalloc
func FromImage(img image.Image) (Hash, error) {
	if img == nil {
		return 0, errEmptyImage
	}
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	if w <= 0 || h <= 0 {
		return 0, errEmptyImage
	}
	hs := hasherPool.Get().(*hasher)
	defer hasherPool.Put(hs)
	pix := hs.grayBuf(w * h)
	toGrayInto(img, pix)
	return hs.hashGray(pix, w, h), nil
}

// FromGray computes the perceptual hash of a grayscale matrix given in
// row-major order with the provided dimensions. It is the low-level entry
// point used by synthetic workload generators that never materialise an
// image.Image; like FromImage it is allocation-free in steady state, with
// error construction on the invalid-input path pushed into an unannotated
// helper.
//
//memes:noalloc
func FromGray(pix []float64, w, h int) (Hash, error) {
	if w <= 0 || h <= 0 || len(pix) != w*h {
		return 0, errInvalidGray(w, h, len(pix))
	}
	hs := hasherPool.Get().(*hasher)
	defer hasherPool.Put(hs)
	return hs.hashGray(pix, w, h), nil
}

// errInvalidGray builds FromGray's invalid-input error; a separate function
// so the fmt allocation stays off the annotated hash path.
func errInvalidGray(w, h, n int) error {
	return fmt.Errorf("phash: invalid gray matrix %dx%d with %d pixels", w, h, n)
}

// Distance returns the Hamming distance between two hashes, i.e. the number
// of bit positions at which they differ. The result is in [0, 64].
func Distance(a, b Hash) int {
	return bits.OnesCount64(uint64(a ^ b))
}

// Similar reports whether the Hamming distance between a and b is at most
// threshold.
func Similar(a, b Hash, threshold int) bool {
	return Distance(a, b) <= threshold
}

// String returns the canonical 16-character lowercase hexadecimal
// representation of the hash, matching the string form used in the paper
// (e.g. "55352b0b8d8b5b53").
func (h Hash) String() string {
	return fmt.Sprintf("%016x", uint64(h))
}

// Parse parses a hash from its hexadecimal string representation.
func Parse(s string) (Hash, error) {
	if len(s) == 0 || len(s) > 16 {
		return 0, fmt.Errorf("phash: invalid hash string %q", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("phash: invalid hash string %q: %w", s, err)
	}
	return Hash(v), nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (h Hash) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, uint64(h))
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (h *Hash) UnmarshalBinary(data []byte) error {
	if len(data) != 8 {
		return fmt.Errorf("phash: invalid binary hash length %d", len(data))
	}
	*h = Hash(binary.BigEndian.Uint64(data))
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (h Hash) MarshalText() ([]byte, error) { return []byte(h.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (h *Hash) UnmarshalText(data []byte) error {
	v, err := Parse(string(data))
	if err != nil {
		return err
	}
	*h = v
	return nil
}

// toGray converts an image to a float64 luminance matrix in row-major order
// with the same dimensions as the source bounds.
func toGray(img image.Image) grayMatrix {
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	m := grayMatrix{w: w, h: h, pix: make([]float64, w*h)}
	toGrayInto(img, m.pix)
	return m
}

// toGrayInto writes the luminance matrix of img into dst (len >= Dx*Dy),
// in row-major order. Dedicated loops cover the concrete image types the
// synthetic and real corpora produce — *image.Gray, *image.RGBA,
// *image.NRGBA, *image.YCbCr — without per-pixel interface conversions;
// every fast path computes exactly the value the generic color.RGBAModel
// path would (pinned by equivalence tests), so the hash does not depend on
// which path ran.
//
//memes:noalloc
func toGrayInto(img image.Image, dst []float64) {
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	switch src := img.(type) {
	case *image.Gray:
		for y := 0; y < h; y++ {
			row := src.Pix[(y+b.Min.Y-src.Rect.Min.Y)*src.Stride:]
			for x := 0; x < w; x++ {
				dst[y*w+x] = float64(row[x+b.Min.X-src.Rect.Min.X])
			}
		}
	case *image.RGBA:
		for y := 0; y < h; y++ {
			i := src.PixOffset(b.Min.X, y+b.Min.Y)
			for x := 0; x < w; x++ {
				r, g, bl := src.Pix[i], src.Pix[i+1], src.Pix[i+2]
				dst[y*w+x] = luminance(float64(r), float64(g), float64(bl))
				i += 4
			}
		}
	case *image.NRGBA:
		for y := 0; y < h; y++ {
			i := src.PixOffset(b.Min.X, y+b.Min.Y)
			for x := 0; x < w; x++ {
				a := uint32(src.Pix[i+3])
				r := npremul(uint32(src.Pix[i]), a)
				g := npremul(uint32(src.Pix[i+1]), a)
				bl := npremul(uint32(src.Pix[i+2]), a)
				dst[y*w+x] = luminance(float64(r), float64(g), float64(bl))
				i += 4
			}
		}
	case *image.YCbCr:
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				c := src.YCbCrAt(x+b.Min.X, y+b.Min.Y)
				r, g, bl := ycbcrToRGB8(c.Y, c.Cb, c.Cr)
				dst[y*w+x] = luminance(float64(r), float64(g), float64(bl))
			}
		}
	default:
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				c := color.RGBAModel.Convert(img.At(x+b.Min.X, y+b.Min.Y)).(color.RGBA)
				dst[y*w+x] = luminance(float64(c.R), float64(c.G), float64(c.B))
			}
		}
	}
}

// npremul alpha-premultiplies one 8-bit non-premultiplied channel and
// truncates back to 8 bits, replicating color.NRGBA.RGBA followed by
// color.RGBAModel's >>8 exactly.
func npremul(v, a uint32) uint8 {
	v |= v << 8
	v *= a
	v /= 0xff
	return uint8(v >> 8)
}

// ycbcrToRGB8 converts a Y'CbCr triple to 8-bit RGB with the same
// fixed-point arithmetic and clamping as color.YCbCr.RGBA (truncated to
// 8 bits the way color.RGBAModel truncates it), so the fast path is
// bit-compatible with the generic conversion.
func ycbcrToRGB8(yy, cb, cr uint8) (uint8, uint8, uint8) {
	yy1 := int32(yy) * 0x10101
	cb1 := int32(cb) - 128
	cr1 := int32(cr) - 128

	r := yy1 + 91881*cr1
	if uint32(r)&0xff000000 == 0 {
		r >>= 8
	} else {
		r = ^(r >> 31) & 0xffff
	}
	g := yy1 - 22554*cb1 - 46802*cr1
	if uint32(g)&0xff000000 == 0 {
		g >>= 8
	} else {
		g = ^(g >> 31) & 0xffff
	}
	b := yy1 + 116130*cb1
	if uint32(b)&0xff000000 == 0 {
		b >>= 8
	} else {
		b = ^(b >> 31) & 0xffff
	}
	return uint8(uint32(r) >> 8), uint8(uint32(g) >> 8), uint8(uint32(b) >> 8)
}

// luminance computes the ITU-R BT.601 luma from 8-bit RGB components.
func luminance(r, g, b float64) float64 {
	return 0.299*r + 0.587*g + 0.114*b
}

type grayMatrix struct {
	w, h int
	pix  []float64
}

// resizeBilinear resizes a grayscale matrix to dw x dh using bilinear
// interpolation and returns the result in row-major order.
func resizeBilinear(m grayMatrix, dw, dh int) []float64 {
	return resizeBilinearRaw(m.pix, m.w, m.h, dw, dh)
}

func resizeBilinearRaw(pix []float64, sw, sh, dw, dh int) []float64 {
	out := make([]float64, dw*dh)
	resizeBilinearInto(out, pix, sw, sh, dw, dh)
	return out
}

// resizeBilinearInto is resizeBilinearRaw writing into a caller-provided
// buffer of length dw*dh, so pooled hashers resize without allocating.
//
//memes:noalloc
func resizeBilinearInto(out, pix []float64, sw, sh, dw, dh int) {
	if sw == dw && sh == dh {
		copy(out, pix)
		return
	}
	xRatio := float64(sw-1) / float64(maxInt(dw-1, 1))
	yRatio := float64(sh-1) / float64(maxInt(dh-1, 1))
	for y := 0; y < dh; y++ {
		sy := float64(y) * yRatio
		y0 := int(sy)
		y1 := y0
		if y1 < sh-1 {
			y1++
		}
		fy := sy - float64(y0)
		for x := 0; x < dw; x++ {
			sx := float64(x) * xRatio
			x0 := int(sx)
			x1 := x0
			if x1 < sw-1 {
				x1++
			}
			fx := sx - float64(x0)
			p00 := pix[y0*sw+x0]
			p01 := pix[y0*sw+x1]
			p10 := pix[y1*sw+x0]
			p11 := pix[y1*sw+x1]
			top := p00 + (p01-p00)*fx
			bot := p10 + (p11-p10)*fx
			out[y*dw+x] = top + (bot-top)*fy
		}
	}
}

// medianExcludingFirst returns the median of vals[1:]; the first element is
// the DC coefficient that is conventionally excluded from the threshold.
// The hash path always passes the 64-coefficient block, so the 63 remaining
// values fit the fixed stack buffer and a partial selection sort up to the
// middle replaces a full sort — no allocation, ~half the comparisons. The
// selected order statistics are the same values a full sort would yield, so
// hashes are unchanged. Oversized inputs (never the hash path) spill to the
// allocating medianSpill so this function stays annotation-clean.
//
//memes:noalloc
func medianExcludingFirst(vals []float64) float64 {
	var buf [dctBlock*dctBlock - 1]float64
	n := len(vals) - 1
	if n > len(buf) {
		return medianSpill(vals)
	}
	tmp := buf[:n]
	copy(tmp, vals[1:])
	return medianSelect(tmp)
}

// medianSpill is the cold path for coefficient blocks larger than the fixed
// stack buffer; it allocates a scratch copy.
func medianSpill(vals []float64) float64 {
	tmp := make([]float64, len(vals)-1)
	copy(tmp, vals[1:])
	return medianSelect(tmp)
}

// medianSelect computes the median of tmp in place with a partial selection
// sort up to the middle.
//
//memes:noalloc
func medianSelect(tmp []float64) float64 {
	n := len(tmp)
	mid := n / 2
	for i := 0; i <= mid; i++ {
		min := i
		for j := i + 1; j < n; j++ {
			if tmp[j] < tmp[min] {
				min = j
			}
		}
		tmp[i], tmp[min] = tmp[min], tmp[i]
	}
	if n%2 == 1 {
		return tmp[mid]
	}
	return (tmp[mid-1] + tmp[mid]) / 2
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
