package phash

import (
	"image"
	"image/color"
	"math/rand"
	"testing"
	"testing/quick"
)

// gradientImage builds a simple deterministic RGBA image for hashing tests.
func gradientImage(w, h int, phase float64) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := uint8((float64(x)/float64(w)*200 + float64(y)/float64(h)*55 + phase))
			img.SetRGBA(x, y, color.RGBA{R: v, G: v / 2, B: 255 - v, A: 255})
		}
	}
	return img
}

// blockImage builds an image out of large random blocks; different seeds give
// perceptually distinct images.
func blockImage(seed int64, w, h int) *image.RGBA {
	rng := rand.New(rand.NewSource(seed))
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	const blocks = 8
	bw, bh := w/blocks, h/blocks
	for by := 0; by < blocks; by++ {
		for bx := 0; bx < blocks; bx++ {
			c := color.RGBA{R: uint8(rng.Intn(256)), G: uint8(rng.Intn(256)), B: uint8(rng.Intn(256)), A: 255}
			for y := by * bh; y < (by+1)*bh; y++ {
				for x := bx * bw; x < (bx+1)*bw; x++ {
					img.SetRGBA(x, y, c)
				}
			}
		}
	}
	return img
}

func TestFromImageDeterministic(t *testing.T) {
	img := gradientImage(100, 80, 3)
	h1, err := FromImage(img)
	if err != nil {
		t.Fatalf("FromImage: %v", err)
	}
	h2, err := FromImage(img)
	if err != nil {
		t.Fatalf("FromImage: %v", err)
	}
	if h1 != h2 {
		t.Fatalf("hash not deterministic: %v vs %v", h1, h2)
	}
}

func TestFromImageNilAndEmpty(t *testing.T) {
	if _, err := FromImage(nil); err == nil {
		t.Fatal("expected error for nil image")
	}
	empty := image.NewRGBA(image.Rect(0, 0, 0, 0))
	if _, err := FromImage(empty); err == nil {
		t.Fatal("expected error for empty image")
	}
}

func TestIdenticalImagesSameHash(t *testing.T) {
	a := blockImage(42, 128, 128)
	b := blockImage(42, 128, 128)
	ha, _ := FromImage(a)
	hb, _ := FromImage(b)
	if Distance(ha, hb) != 0 {
		t.Fatalf("identical images should have distance 0, got %d", Distance(ha, hb))
	}
}

func TestSimilarImagesLowDistance(t *testing.T) {
	base := blockImage(7, 128, 128)
	hb, _ := FromImage(base)

	// Brightness-shifted copy.
	bright := image.NewRGBA(base.Bounds())
	copy(bright.Pix, base.Pix)
	for i := 0; i < len(bright.Pix); i += 4 {
		for c := 0; c < 3; c++ {
			v := int(bright.Pix[i+c]) + 15
			if v > 255 {
				v = 255
			}
			bright.Pix[i+c] = uint8(v)
		}
	}
	hBright, _ := FromImage(bright)
	if d := Distance(hb, hBright); d > 8 {
		t.Errorf("brightness shift moved hash too far: distance %d", d)
	}

	// Resized copy (nearest neighbour downscale).
	small := image.NewRGBA(image.Rect(0, 0, 64, 64))
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			small.SetRGBA(x, y, base.RGBAAt(x*2, y*2))
		}
	}
	hSmall, _ := FromImage(small)
	if d := Distance(hb, hSmall); d > 10 {
		t.Errorf("downscaling moved hash too far: distance %d", d)
	}
}

func TestDistinctImagesHighDistance(t *testing.T) {
	far := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		a := blockImage(int64(1000+i), 128, 128)
		b := blockImage(int64(5000+i), 128, 128)
		ha, _ := FromImage(a)
		hb, _ := FromImage(b)
		if Distance(ha, hb) > 10 {
			far++
		}
	}
	if far < trials*8/10 {
		t.Fatalf("expected most distinct images to be far apart, got %d/%d", far, trials)
	}
}

func TestDistanceProperties(t *testing.T) {
	f := func(a, b uint64) bool {
		ha, hb := Hash(a), Hash(b)
		d := Distance(ha, hb)
		if d < 0 || d > MaxDistance {
			return false
		}
		if Distance(hb, ha) != d { // symmetry
			return false
		}
		if Distance(ha, ha) != 0 { // identity
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(a, b, c uint64) bool {
		ha, hb, hc := Hash(a), Hash(b), Hash(c)
		return Distance(ha, hc) <= Distance(ha, hb)+Distance(hb, hc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		h := Hash(v)
		parsed, err := Parse(h.String())
		return err == nil && parsed == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseKnownValue(t *testing.T) {
	// Hash string taken from the paper's cluster N example.
	h, err := Parse("55352b0b8d8b5b53")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if h.String() != "55352b0b8d8b5b53" {
		t.Fatalf("round trip mismatch: %s", h.String())
	}
	h2, err := Parse("55952b0bb58b5353")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if d := Distance(h, h2); d <= 0 || d > 12 {
		t.Fatalf("paper example hashes should be near but not identical, got %d", d)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "zzzz", "0123456789abcdef0", "not a hash"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestBinaryMarshalRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		h := Hash(v)
		data, err := h.MarshalBinary()
		if err != nil || len(data) != 8 {
			return false
		}
		var h2 Hash
		if err := h2.UnmarshalBinary(data); err != nil {
			return false
		}
		return h2 == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	var h Hash
	if err := h.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error for short binary input")
	}
}

func TestTextMarshalRoundTrip(t *testing.T) {
	h := Hash(0xdeadbeefcafe1234)
	data, err := h.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var h2 Hash
	if err := h2.UnmarshalText(data); err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Fatalf("text round trip mismatch: %v vs %v", h2, h)
	}
	if err := h2.UnmarshalText([]byte("xyz")); err == nil {
		t.Fatal("expected error for invalid text")
	}
}

func TestSimilar(t *testing.T) {
	a := Hash(0)
	b := Hash(0b1111)
	if !Similar(a, b, 4) {
		t.Error("distance 4 should be similar at threshold 4")
	}
	if Similar(a, b, 3) {
		t.Error("distance 4 should not be similar at threshold 3")
	}
}

func TestFromGrayMatchesFromImage(t *testing.T) {
	img := blockImage(11, 96, 96)
	hImg, err := FromImage(img)
	if err != nil {
		t.Fatal(err)
	}
	// Build the same luminance matrix manually.
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	pix := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := img.RGBAAt(x, y)
			pix[y*w+x] = 0.299*float64(c.R) + 0.587*float64(c.G) + 0.114*float64(c.B)
		}
	}
	hGray, err := FromGray(pix, w, h)
	if err != nil {
		t.Fatal(err)
	}
	if d := Distance(hImg, hGray); d > 2 {
		t.Fatalf("FromGray should closely match FromImage, distance %d", d)
	}
}

func TestFromGrayInvalid(t *testing.T) {
	if _, err := FromGray(nil, 0, 0); err == nil {
		t.Error("expected error for empty matrix")
	}
	if _, err := FromGray(make([]float64, 10), 3, 4); err == nil {
		t.Error("expected error for mismatched dimensions")
	}
}

func TestGrayImageFastPath(t *testing.T) {
	g := image.NewGray(image.Rect(0, 0, 64, 64))
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			g.SetGray(x, y, color.Gray{Y: uint8((x*4 + y) % 256)})
		}
	}
	h1, err := FromImage(g)
	if err != nil {
		t.Fatal(err)
	}
	// Same content as generic image via RGBA conversion.
	rgba := image.NewRGBA(g.Bounds())
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			v := g.GrayAt(x, y).Y
			rgba.SetRGBA(x, y, color.RGBA{R: v, G: v, B: v, A: 255})
		}
	}
	h2, err := FromImage(rgba)
	if err != nil {
		t.Fatal(err)
	}
	if d := Distance(h1, h2); d > 2 {
		t.Fatalf("gray fast path diverges from generic path: distance %d", d)
	}
}

func TestDCTConstantImage(t *testing.T) {
	pix := make([]float64, lowResSize*lowResSize)
	for i := range pix {
		pix[i] = 100
	}
	coeffs := dct2D(pix)
	// All energy should be in the DC coefficient.
	if coeffs[0] <= 0 {
		t.Fatalf("DC coefficient should be positive, got %f", coeffs[0])
	}
	for i := 1; i < len(coeffs); i++ {
		if coeffs[i] > 1e-6 || coeffs[i] < -1e-6 {
			t.Fatalf("non-DC coefficient %d should be ~0, got %g", i, coeffs[i])
		}
	}
}

func TestMedianExcludingFirst(t *testing.T) {
	vals := []float64{999, 1, 2, 3, 4, 5} // first excluded
	if got := medianExcludingFirst(vals); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	vals2 := []float64{999, 4, 1, 3, 2} // even count after exclusion
	if got := medianExcludingFirst(vals2); got != 2.5 {
		t.Fatalf("median = %v, want 2.5", got)
	}
}

func TestResizeBilinearIdentity(t *testing.T) {
	pix := []float64{1, 2, 3, 4}
	out := resizeBilinearRaw(pix, 2, 2, 2, 2)
	for i := range pix {
		if out[i] != pix[i] {
			t.Fatalf("identity resize changed pixel %d: %v", i, out[i])
		}
	}
}

func TestResizeBilinearRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pix := make([]float64, 50*40)
	for i := range pix {
		pix[i] = rng.Float64() * 255
	}
	out := resizeBilinearRaw(pix, 50, 40, 32, 32)
	if len(out) != 32*32 {
		t.Fatalf("unexpected output length %d", len(out))
	}
	for i, v := range out {
		if v < 0 || v > 255 {
			t.Fatalf("interpolated value out of range at %d: %v", i, v)
		}
	}
}
