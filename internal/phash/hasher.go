package phash

import "sync"

// hasher holds every piece of per-image scratch the DCT hash needs: the
// luminance matrix, the downsampled 32x32 image, and the row-pass and block
// buffers of the pruned DCT. FromImage / FromGray borrow a hasher from a
// sync.Pool, so the steady-state hash path performs zero heap allocations
// regardless of how many goroutines hash concurrently.
type hasher struct {
	// gray is the full-resolution luminance matrix, grown to the largest
	// image seen by this hasher and reused across images.
	gray []float64
	// small is the bilinear-downsampled lowResSize x lowResSize image.
	small [lowResSize * lowResSize]float64
	// tmp holds the row-pass output of the pruned DCT: lowResSize rows of
	// dctBlock coefficients each.
	tmp [lowResSize * dctBlock]float64
	// block is the top-left dctBlock x dctBlock coefficient block.
	block [dctBlock * dctBlock]float64
}

var hasherPool = sync.Pool{New: func() any { return new(hasher) }}

// grayBuf returns the luminance scratch resized to n pixels, reallocating
// only when the image is larger than anything this hasher has seen.
func (hs *hasher) grayBuf(n int) []float64 {
	if cap(hs.gray) < n {
		hs.gray = make([]float64, n)
	}
	return hs.gray[:n]
}

// hashGray computes the DCT hash of a w x h luminance matrix using only the
// hasher's scratch: downsample, pruned DCT, median threshold. The bit layout
// and every floating-point operation match the pre-pool implementation, so
// hashes are bit-identical to it.
//
//memes:noalloc
func (hs *hasher) hashGray(pix []float64, w, h int) Hash {
	small := hs.small[:]
	resizeBilinearInto(small, pix, w, h, lowResSize, lowResSize)
	dctTopLeft(small, hs.tmp[:], hs.block[:])
	// Median excludes the DC coefficient, which otherwise dominates.
	med := medianExcludingFirst(hs.block[:])
	var out Hash
	for i, v := range hs.block[:] {
		if v > med {
			out |= 1 << uint(i)
		}
	}
	return out
}
