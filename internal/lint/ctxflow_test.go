package lint

import "testing"

func TestCtxFlow(t *testing.T) {
	RunAnalyzerTest(t, CtxFlow, "example.com/memes/internal/query")
}

func TestCtxFlowExcludesParallel(t *testing.T) {
	RunAnalyzerTest(t, CtxFlow, "example.com/memes/internal/parallel")
}
