package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"regexp"
	"strconv"
	"strings"
)

// JSONWire pins the HTTP and CLI wire formats: every struct that reaches an
// encoding/json encoder from internal/server or internal/cli must tag each
// exported field with an explicit snake_case json name, so a rename or an
// added field can never silently change the wire format to Go's default
// CamelCase.
//
// Wire structs are found by seeding from (a) arguments of encoding/json
// calls (Marshal, Unmarshal, Encode, Decode, ...) and (b) any struct
// declaring at least one json-tagged field, then closing transitively over
// field types declared in the same package. Structs never serialized
// (configuration, internal state) are deliberately out of scope — tags on
// them would promise a wire format that does not exist.
//
// The analyzer also pins the error envelope: HTTP handlers must put every
// body on the wire through the shared writeJSON/writeError helpers, so it
// flags net/http.Error calls and encoding/json Encoders attached straight
// to an http.ResponseWriter anywhere outside writeJSON itself — both are
// how a handler would silently ship a bare-string error body instead of
// {"error": ..., "reason": ...}.
var JSONWire = &Analyzer{
	Name: "jsonwire",
	Doc:  "requires explicit snake_case json tags on structs serialized by server, cli, and declog, and the shared writeJSON/writeError envelope in handlers",
	Run:  runJSONWire,
}

// snakeCaseName matches an explicit lowercase snake_case json field name.
var snakeCaseName = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func runJSONWire(pass *Pass) error {
	if !inJSONWireScope(pass.Path) {
		return nil
	}

	// Collect every struct type declared in this package.
	structs := make(map[types.Object]*ast.StructType)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			if obj := pass.TypesInfo.ObjectOf(ts.Name); obj != nil {
				structs[obj] = st
			}
			return true
		})
	}

	wire := make(map[types.Object]bool)
	var mark func(t types.Type)
	mark = func(t types.Type) {
		switch t := t.(type) {
		case *types.Pointer:
			mark(t.Elem())
		case *types.Slice:
			mark(t.Elem())
		case *types.Array:
			mark(t.Elem())
		case *types.Map:
			mark(t.Elem())
		case *types.Named:
			obj := t.Obj()
			if _, local := structs[obj]; !local || wire[obj] {
				return
			}
			wire[obj] = true
			// Close over the field types.
			if st, ok := t.Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					mark(st.Field(i).Type())
				}
			}
		case *types.Alias:
			mark(types.Unalias(t))
		}
	}

	// Seed (a): arguments of encoding/json calls.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if funcPkgPath(fn) != "encoding/json" {
				return true
			}
			for _, arg := range call.Args {
				if t := pass.TypesInfo.TypeOf(arg); t != nil {
					mark(t)
				}
			}
			return true
		})
	}

	// Seed (b): any struct already declaring a json tag.
	for obj, st := range structs {
		for _, field := range st.Fields.List {
			if jsonTag(field) != "" {
				mark(obj.Type())
				break
			}
		}
	}

	// Check every wire struct's exported fields.
	for obj, st := range structs {
		if !wire[obj] {
			continue
		}
		for _, field := range st.Fields.List {
			checkWireField(pass, obj.Name(), field)
		}
	}

	checkHandRolledWrites(pass)
	return nil
}

// checkHandRolledWrites flags response writes that bypass the shared
// writeJSON/writeError envelope: net/http.Error (bare text/plain body) and
// json.NewEncoder over an http.ResponseWriter outside writeJSON (an
// envelope-free JSON body). writeJSON itself is the one sanctioned place a
// ResponseWriter meets an encoder.
func checkHandRolledWrites(pass *Pass) {
	iface := respWriterIface(pass.Pkg)
	if iface == nil {
		return // package never imports net/http; nothing to hand-roll
	}
	enclosingFuncs(pass.Files, func(decl *ast.FuncDecl) {
		if decl.Name.Name == "writeJSON" {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			switch {
			case funcPkgPath(fn) == "net/http" && fn.Name() == "Error":
				pass.Reportf(call.Pos(), "http.Error writes a bare text body outside the JSON error envelope; answer through writeError so every error is {\"error\": ..., \"reason\": ...}")
			case funcPkgPath(fn) == "encoding/json" && fn.Name() == "NewEncoder" && len(call.Args) == 1:
				if t := pass.TypesInfo.TypeOf(call.Args[0]); t != nil && types.Implements(t, iface) {
					pass.Reportf(call.Pos(), "json.NewEncoder over an http.ResponseWriter bypasses writeJSON; handlers must put bodies on the wire through the shared helpers")
				}
			}
			return true
		})
	})
}

// respWriterIface resolves the net/http.ResponseWriter interface from the
// package's imports; nil when the package never touches net/http.
func respWriterIface(pkg *types.Package) *types.Interface {
	if pkg == nil {
		return nil
	}
	for _, imp := range pkg.Imports() {
		if imp.Path() != "net/http" {
			continue
		}
		if obj, ok := imp.Scope().Lookup("ResponseWriter").(*types.TypeName); ok {
			if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
				return iface
			}
		}
	}
	return nil
}

// jsonTag extracts the raw `json:"..."` tag value of a field, or "".
func jsonTag(field *ast.Field) string {
	if field.Tag == nil {
		return ""
	}
	unquoted, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return ""
	}
	return reflect.StructTag(unquoted).Get("json")
}

// checkWireField validates one field of a wire struct.
func checkWireField(pass *Pass, structName string, field *ast.Field) {
	// Embedded fields flatten into the parent; their own declaration is
	// checked where the embedded type is defined.
	if len(field.Names) == 0 {
		return
	}
	tag := jsonTag(field)
	for _, name := range field.Names {
		if !name.IsExported() {
			continue
		}
		if tag == "" {
			pass.Reportf(name.Pos(), "field %s.%s is serialized by encoding/json but has no json tag: the wire name would silently track the Go identifier; tag it with an explicit snake_case name (or json:\"-\")", structName, name.Name)
			continue
		}
		wireName, _, _ := strings.Cut(tag, ",")
		if wireName == "-" {
			continue
		}
		if !snakeCaseName.MatchString(wireName) {
			pass.Reportf(name.Pos(), "field %s.%s has json name %q: wire names must be explicit snake_case so the format cannot drift", structName, name.Name, wireName)
		}
	}
}
