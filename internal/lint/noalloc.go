package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc checks functions annotated //memes:noalloc for constructs that
// force heap allocations, complementing the runtime AllocsPerRun gate (which
// proves a particular call pattern is clean) with a static gate (which stops
// an allocating construct from entering the hot path between benchmark
// runs). Opt-in via the annotation keeps the check honest: only code that
// claims the zero-alloc invariant is held to it.
//
// Flagged constructs:
//
//   - make/new and slice or map composite literals (&T{...} included);
//   - function literals (closures allocate their environment);
//   - go statements;
//   - fmt package calls and string concatenation;
//   - append whose base slice is not rooted in a parameter, receiver,
//     struct field, or stack array — i.e. append that cannot reuse
//     preallocated capacity;
//   - passing a non-pointer-shaped concrete value where an interface is
//     expected (boxing).
//
// Cold paths (error construction, spill cases) belong in separate
// unannotated helpers — see phash.medianSpill for the pattern.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "flags alloc-forcing constructs inside functions annotated //memes:noalloc",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) error {
	enclosingFuncs(pass.Files, func(decl *ast.FuncDecl) {
		if !funcHasDirective(decl, "noalloc") {
			return
		}
		checkNoAllocFunc(pass, decl)
	})
	return nil
}

func checkNoAllocFunc(pass *Pass, decl *ast.FuncDecl) {
	// allowedRoots tracks objects whose storage predates the call: params,
	// the receiver, and locals derived from them (tmp := buf[:n]). Appending
	// to a slice rooted here can reuse caller/pool-owned capacity.
	allowedRoots := make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.ObjectOf(name); obj != nil {
					allowedRoots[obj] = true
				}
			}
		}
	}
	addFields(decl.Recv)
	addFields(decl.Type.Params)

	// Local arrays are stack storage; slicing them does not allocate. Also
	// propagate allowance through simple derivations, in source order (one
	// forward pass is enough for the straight-line scratch set-up these
	// functions use).
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) != 0 {
						continue
					}
					for _, name := range vs.Names {
						obj := pass.TypesInfo.ObjectOf(name)
						if obj == nil {
							continue
						}
						if _, isArray := obj.Type().Underlying().(*types.Array); isArray {
							allowedRoots[obj] = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE && n.Tok != token.ASSIGN {
				return true
			}
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(id)
				if obj == nil {
					continue
				}
				if root, rootOK := allocRoot(pass, allowedRoots, n.Rhs[i]); rootOK && root {
					allowedRoots[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure inside //memes:noalloc function %s allocates its environment; hoist it or drop the annotation", decl.Name.Name)
			return false // don't double-report constructs inside the closure
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement inside //memes:noalloc function %s allocates a goroutine", decl.Name.Name)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isComposite := ast.Unparen(n.X).(*ast.CompositeLit); isComposite {
					pass.Reportf(n.Pos(), "&composite-literal inside //memes:noalloc function %s escapes to the heap", decl.Name.Name)
				}
			}
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "slice/map literal inside //memes:noalloc function %s allocates; preallocate outside the hot path", decl.Name.Name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := pass.TypesInfo.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(), "string concatenation inside //memes:noalloc function %s allocates", decl.Name.Name)
					}
				}
			}
		case *ast.CallExpr:
			checkNoAllocCall(pass, decl, allowedRoots, n)
		}
		return true
	})
}

// checkNoAllocCall vets one call inside an annotated function.
func checkNoAllocCall(pass *Pass, decl *ast.FuncDecl, allowedRoots map[types.Object]bool, call *ast.CallExpr) {
	if isBuiltin(pass, call, "make") || isBuiltin(pass, call, "new") {
		pass.Reportf(call.Pos(), "%s inside //memes:noalloc function %s allocates; move it to an unannotated cold-path helper", call.Fun.(*ast.Ident).Name, decl.Name.Name)
		return
	}
	if isBuiltin(pass, call, "append") && len(call.Args) > 0 {
		if root, ok := allocRoot(pass, allowedRoots, call.Args[0]); !ok || !root {
			pass.Reportf(call.Pos(), "append to a slice not rooted in a parameter, receiver, field, or stack array inside //memes:noalloc function %s: growth cannot reuse preallocated capacity", decl.Name.Name)
		}
		return
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if funcPkgPath(fn) == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s inside //memes:noalloc function %s allocates (boxing and formatting); move error/string construction to an unannotated helper", fn.Name(), decl.Name.Name)
		return
	}
	checkBoxing(pass, decl, call)
}

// allocRoot resolves the base of a slice/index/selector chain. It returns
// (true, true) when the root is preallocated storage (param, receiver,
// struct field, stack array, or a local already derived from one), and
// (false, true) when the root is identifiable but not preallocated. ok is
// false when the expression has no analyzable root.
func allocRoot(pass *Pass, allowedRoots map[types.Object]bool, e ast.Expr) (root bool, ok bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(e)
		if obj == nil {
			return false, false
		}
		return allowedRoots[obj], true
	case *ast.SelectorExpr:
		// A field of any reachable struct is storage that outlives the call.
		if sel := pass.TypesInfo.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			return true, true
		}
		return false, false
	case *ast.SliceExpr:
		return allocRoot(pass, allowedRoots, e.X)
	case *ast.IndexExpr:
		return allocRoot(pass, allowedRoots, e.X)
	default:
		return false, false
	}
}

// checkBoxing flags non-pointer-shaped concrete values passed where the
// callee expects an interface: the conversion boxes the value on the heap.
// Pointer-shaped kinds (pointers, channels, maps, funcs) box without
// allocating.
func checkBoxing(pass *Pass, decl *ast.FuncDecl, call *ast.CallExpr) {
	sigType := pass.TypesInfo.TypeOf(call.Fun)
	if sigType == nil {
		return
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			paramType = params.At(i).Type()
		case sig.Variadic() && i >= params.Len()-1:
			if s, isSlice := params.At(params.Len() - 1).Type().(*types.Slice); isSlice {
				paramType = s.Elem()
			}
		}
		if paramType == nil || !types.IsInterface(paramType) {
			continue
		}
		argType := pass.TypesInfo.TypeOf(arg)
		if argType == nil || types.IsInterface(argType) {
			continue
		}
		switch argType.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s where %s is expected inside //memes:noalloc function %s boxes the value on the heap", argType, paramType, decl.Name.Name)
	}
}
