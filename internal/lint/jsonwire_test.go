package lint

import "testing"

func TestJSONWire(t *testing.T) {
	RunAnalyzerTest(t, JSONWire, "example.com/memes/internal/server")
}
