package lint

// Golden-test harness in the style of golang.org/x/tools/go/analysis/analysistest:
// fixture packages live under testdata/src/<import path> (GOPATH layout, fake
// module paths like example.com/memes/... so the suffix-based scope gating
// behaves exactly as it does on the real tree), and expected findings are
// `// want "regexp"` comments on the offending line. Standard-library imports
// of the fixtures are resolved from compiled export data via one cached
// `go list -export -deps` call; fixture-to-fixture imports are type-checked
// from source through the Resolver's srcDir fallback.

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

const testdataSrc = "testdata/src"

var (
	exportsOnce sync.Once
	exportsSet  ExportSet
	exportsErr  error
)

// testExports returns export data for every non-fixture import appearing in
// testdata, resolved once per test binary.
func testExports(t *testing.T) ExportSet {
	t.Helper()
	exportsOnce.Do(func() {
		paths, err := testdataImports()
		if err != nil {
			exportsErr = err
			return
		}
		_, exportsSet, exportsErr = GoListExports(".", paths...)
	})
	if exportsErr != nil {
		t.Fatalf("resolving testdata exports: %v", exportsErr)
	}
	return exportsSet
}

// testdataImports scans every fixture file for import paths outside the
// fixture namespace.
func testdataImports() ([]string, error) {
	seen := make(map[string]bool)
	fset := token.NewFileSet()
	err := filepath.WalkDir(testdataSrc, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return err
			}
			if !strings.HasPrefix(p, "example.com/") {
				seen[p] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(seen))
	for p := range seen {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths, nil
}

// expectation is one parsed `// want "regexp"` comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hits int
}

// RunAnalyzerTest loads the fixture package at pkgPath, runs exactly one
// analyzer over it, and compares the diagnostics against the fixture's
// `// want` expectations.
func RunAnalyzerTest(t *testing.T, a *Analyzer, pkgPath string) {
	t.Helper()
	dir := filepath.Join(testdataSrc, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, ".go") && !e.IsDir() {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	srcDir := func(path string) (string, bool) {
		d := filepath.Join(testdataSrc, filepath.FromSlash(path))
		if st, err := os.Stat(d); err == nil && st.IsDir() {
			return d, true
		}
		return "", false
	}
	r := NewResolver(fset, testExports(t), nil, srcDir)
	cp, err := Check(fset, pkgPath, dir, names, r)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	diags, err := cp.Analyze([]*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}

	wants := collectWants(t, fset, cp)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hits++
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if w.hits == 0 {
			t.Errorf("%s:%d: no %s diagnostic matched %q", w.file, w.line, a.Name, w.re)
		}
	}
}

// collectWants parses every `// want "re" ["re" ...]` comment in the fixture.
func collectWants(t *testing.T, fset *token.FileSet, cp *CheckedPackage) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range cp.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment %q: %v", pos.Filename, pos.Line, c.Text, err)
					}
					unq, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %q: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, unq, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					rest = rest[len(q):]
				}
			}
		}
	}
	return wants
}
