// Package lint implements the memelint analyzer suite: custom static
// analyzers that mechanically enforce the engine's three headline
// invariants — bitwise-deterministic pipeline output, goroutine-leak-free
// cancellation, and zero allocations on the pHash hot path — plus the
// stability of the HTTP/CLI JSON wire format.
//
// The suite is modeled on golang.org/x/tools/go/analysis (an Analyzer with
// a Run function over a typed Pass) but is built entirely on the standard
// library's go/ast, go/types, and go/importer so the repository keeps its
// zero-dependency contract. cmd/memelint drives the analyzers standalone
// over `go list` output or as a `go vet -vettool`.
//
// Analyzers:
//
//   - detorder: no map iteration order or wall-clock/math-rand input may
//     influence output in the deterministic build/query packages.
//   - ctxflow: concurrency on the query path must flow through the
//     cancellable ...Ctx primitives of internal/parallel; no naked go
//     statements outside internal/parallel and cmd/.
//   - noalloc: functions annotated //memes:noalloc must avoid constructs
//     that force heap allocations.
//   - jsonwire: structs serialized by internal/server, internal/cli, and
//     internal/declog must carry explicit snake_case json tags, and HTTP
//     handlers must answer through the shared writeJSON/writeError helpers
//     instead of hand-rolling http.Error or direct ResponseWriter encoders.
//
// Escape hatches are explicit, greppable comment directives, each carrying
// a reason: //memes:nondet (function-level: sanctioned wall-clock/rand use),
// //memes:goroutine (statement-level: sanctioned go statement),
// //memes:detorder (statement-level: sanctioned map range), and
// //memes:noalloc (function-level: opts the function INTO alloc checking).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a Pass and reports findings
// through it; a non-nil error aborts the whole memelint run (reserved for
// analyzer bugs, not findings).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass holds one type-checked package being analyzed and collects the
// diagnostics the analyzer reports against it.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	// Path is the package's import path as the build system names it; all
	// scope gating matches on suffixes of this path so testdata fixtures
	// under fake module paths gate identically to the real tree.
	Path      string
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: which analyzer fired, where, and why.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the canonical file:line:col form used by text output and
// the vettool protocol.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetOrder, CtxFlow, NoAlloc, JSONWire}
}

// Run executes every analyzer in as against one loaded package and returns
// the findings sorted by position.
func Run(as []*Analyzer, fset *token.FileSet, files []*ast.File, path string, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range as {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Path:      path,
			Pkg:       pkg,
			TypesInfo: info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, path, err)
		}
		out = append(out, pass.diagnostics...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// --- comment directives ------------------------------------------------------

// directivePrefix introduces every memelint escape-hatch comment.
const directivePrefix = "//memes:"

// directive is one parsed //memes:<name> <reason> comment.
type directive struct {
	name   string
	reason string
}

// parseDirective parses a single comment; ok is false for ordinary comments.
func parseDirective(text string) (directive, bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	name, reason, _ := strings.Cut(rest, " ")
	return directive{name: name, reason: strings.TrimSpace(reason)}, true
}

// directiveIndex records, per file line, the directives whose comment ends
// on that line, so statement-level annotations ("the line above") resolve in
// O(1).
type directiveIndex struct {
	fset   *token.FileSet
	byLine map[string]map[int][]directive // filename -> line -> directives
}

// indexDirectives scans every comment in the files.
func indexDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{fset: fset, byLine: make(map[string]map[int][]directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.End())
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]directive)
					idx.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
			}
		}
	}
	return idx
}

// at reports whether a directive with the given name annotates the
// statement starting at pos: on the same line or on the line directly above.
func (idx *directiveIndex) at(pos token.Pos, name string) bool {
	p := idx.fset.Position(pos)
	lines := idx.byLine[p.Filename]
	if lines == nil {
		return false
	}
	for _, d := range lines[p.Line] {
		if d.name == name {
			return true
		}
	}
	for _, d := range lines[p.Line-1] {
		if d.name == name {
			return true
		}
	}
	return false
}

// funcHasDirective reports whether fn's doc comment carries the directive.
func funcHasDirective(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if d, ok := parseDirective(c.Text); ok && d.name == name {
			return true
		}
	}
	return false
}

// --- package scope gating ----------------------------------------------------

// pathMatches reports whether the import path ends with the given suffix on
// a path-segment boundary, so "internal/pipeline" matches both the real
// module path and testdata fixture paths but never a mid-segment substring.
func pathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// deterministicScopes are the build/query packages whose output the repo
// guarantees to be a pure function of the input (see README "Determinism").
var deterministicScopes = []string{
	"internal/pipeline",
	"internal/cluster",
	"internal/index",
	"internal/ingest",
	"internal/faults",
	"internal/phash",
	"memes", // the module root package
}

// inDeterministicScope gates detorder.
func inDeterministicScope(path string) bool {
	for _, s := range deterministicScopes {
		if pathMatches(path, s) {
			return true
		}
	}
	return false
}

// inCtxFlowScope gates ctxflow: everything except internal/parallel itself
// (the only package allowed to spawn raw goroutines for its worker pools),
// commands, and examples.
func inCtxFlowScope(path string) bool {
	if pathMatches(path, "internal/parallel") {
		return false
	}
	if strings.Contains(path, "/cmd/") || strings.Contains(path, "/examples/") {
		return false
	}
	return true
}

// jsonWireScopes are the packages whose structs define the HTTP and CLI
// wire formats.
var jsonWireScopes = []string{
	"internal/server",
	"internal/cli",
	"internal/declog",
}

// inJSONWireScope gates jsonwire.
func inJSONWireScope(path string) bool {
	for _, s := range jsonWireScopes {
		if pathMatches(path, s) {
			return true
		}
	}
	return false
}

// --- shared type helpers -----------------------------------------------------

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for builtins, conversions, and calls through function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcPkgPath returns the defining package path of fn, or "" for builtins.
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isMapType reports whether t is (after unaliasing and unwrapping named
// types) a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// enclosingFuncs pairs each top-level function declaration with a visitor
// over the nodes inside it, giving analyzers the enclosing declaration for
// annotation lookups. fn is also called for methods; function literals are
// visited as part of their enclosing declaration.
func enclosingFuncs(files []*ast.File, visit func(decl *ast.FuncDecl)) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(fd)
			}
		}
	}
}
