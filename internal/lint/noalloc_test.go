package lint

import "testing"

func TestNoAlloc(t *testing.T) {
	RunAnalyzerTest(t, NoAlloc, "example.com/memes/internal/hot")
}
