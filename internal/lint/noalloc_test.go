package lint

import "testing"

func TestNoAlloc(t *testing.T) {
	RunAnalyzerTest(t, NoAlloc, "example.com/memes/internal/hot")
}

// TestNoAllocFlatQuery runs the analyzer over the flat-index serve-path
// fixture: the pooled-scratch traversal idioms the real flat BK query uses
// must pass clean, their alloc-forcing variants must be flagged, and the
// unannotated cold-path wrapper must be skipped (the annotation is the
// scope gate — only code claiming the zero-alloc invariant is held to it).
func TestNoAllocFlatQuery(t *testing.T) {
	RunAnalyzerTest(t, NoAlloc, "example.com/memes/internal/flatquery")
}
