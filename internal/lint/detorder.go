package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetOrder flags constructs whose result depends on map iteration order or
// on ambient nondeterminism (wall clock, math/rand) inside the deterministic
// build/query packages. Those packages promise bitwise-identical output for
// any worker count and index strategy, so the only tolerated map ranges are
// the two shapes that are order-independent by construction:
//
//   - collect-and-sort: the loop body only accumulates into slices that are
//     sorted later in the same function (sort.* / slices.Sort*);
//   - commutative bodies: every statement is an order-independent update
//     (+=-style accumulation, counters, map/element writes, deletes).
//
// Anything else needs an explicit //memes:detorder <reason> annotation on
// the range statement. Wall-clock and math/rand calls need a function-level
// //memes:nondet <reason> annotation, reserved for timing stats that never
// influence output.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc:  "flags map-iteration-order and clock/rand dependence in deterministic packages",
	Run:  runDetOrder,
}

func runDetOrder(pass *Pass) error {
	if !inDeterministicScope(pass.Path) {
		return nil
	}
	dirs := indexDirectives(pass.Fset, pass.Files)
	enclosingFuncs(pass.Files, func(decl *ast.FuncDecl) {
		nondet := funcHasDirective(decl, "nondet")
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkMapRange(pass, dirs, decl, n)
			case *ast.CallExpr:
				checkNondetSource(pass, n, nondet)
			}
			return true
		})
	})
	return nil
}

// checkMapRange reports a range over a map (or sync.Map.Range) unless it is
// annotated or provably order-independent.
func checkMapRange(pass *Pass, dirs *directiveIndex, decl *ast.FuncDecl, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if !isMapType(t) {
		return
	}
	if dirs.at(rng.Pos(), "detorder") {
		return
	}
	if orderIndependentBody(pass, decl, rng) {
		return
	}
	pass.Reportf(rng.Pos(), "range over map %s in deterministic package %s: iteration order may leak into output; collect keys and sort, make the body commutative, or annotate with //memes:detorder <reason>",
		types.ExprString(rng.X), pass.Path)
}

// orderIndependentBody reports whether every statement of the range body is
// an order-independent update, treating slice appends as order-independent
// only when the slice is sorted later in the same function.
func orderIndependentBody(pass *Pass, decl *ast.FuncDecl, rng *ast.RangeStmt) bool {
	ok := true
	var checkStmt func(s ast.Stmt)
	checkStmt = func(s ast.Stmt) {
		if !ok {
			return
		}
		switch s := s.(type) {
		case *ast.IncDecStmt:
			// counters: x++ / x--
		case *ast.AssignStmt:
			if !orderIndependentAssign(pass, decl, rng, s) {
				ok = false
			}
		case *ast.ExprStmt:
			// Per-element normalisation (sort.Slice(elem.IDs, ...)) and
			// deletes are order-independent; any other call could observe
			// iteration order.
			call, isCall := s.X.(*ast.CallExpr)
			if !isCall || !(isSortCall(pass, call) || isBuiltin(pass, call, "delete")) {
				ok = false
			}
		case *ast.IfStmt:
			if s.Init != nil {
				checkStmt(s.Init)
			}
			checkStmt(s.Body)
			if s.Else != nil {
				checkStmt(s.Else)
			}
		case *ast.BlockStmt:
			for _, inner := range s.List {
				checkStmt(inner)
			}
		case *ast.BranchStmt:
			// continue/break cannot introduce order dependence by themselves.
			if s.Tok != token.CONTINUE && s.Tok != token.BREAK {
				ok = false
			}
		case *ast.DeclStmt:
			// Local declarations only shadow; their initialisers are simple
			// expressions evaluated per element.
		default:
			ok = false
		}
	}
	checkStmt(rng.Body)
	return ok
}

// orderIndependentAssign vets one assignment inside a map-range body.
func orderIndependentAssign(pass *Pass, decl *ast.FuncDecl, rng *ast.RangeStmt, s *ast.AssignStmt) bool {
	// Accumulations commute: x += v, x |= v, ...
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
		token.XOR_ASSIGN, token.MUL_ASSIGN:
		return true
	case token.ASSIGN, token.DEFINE:
	default:
		return false
	}
	for i, lhs := range s.Lhs {
		if i < len(s.Rhs) {
			// v = append(v, ...) is order-independent iff v is sorted after
			// the loop.
			if call, isCall := ast.Unparen(s.Rhs[i]).(*ast.CallExpr); isCall && isBuiltin(pass, call, "append") {
				if id, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent && sortedAfter(pass, decl, rng, id) {
					continue
				}
				return false
			}
		}
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			// Writes to distinct keys/indexes commute; the final state is
			// order-independent for the overwrite-with-same-value and
			// distinct-key cases that survive review here.
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			// Plain redefinition of a per-iteration local is fine only for
			// := (fresh variable each iteration).
			if s.Tok != token.DEFINE {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sortedAfter reports whether the identifier's object is passed to a
// sort.*/slices.Sort* call located after the range statement within the
// same function declaration.
func sortedAfter(pass *Pass, decl *ast.FuncDecl, rng *ast.RangeStmt, id *ast.Ident) bool {
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall || call.Pos() < rng.End() || !isSortCall(pass, call) || len(call.Args) == 0 {
			return true
		}
		if argID, isIdent := ast.Unparen(call.Args[0]).(*ast.Ident); isIdent && pass.TypesInfo.ObjectOf(argID) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// isSortCall reports whether the call invokes the sort or slices package.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.TypesInfo, call)
	p := funcPkgPath(fn)
	return p == "sort" || p == "slices"
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltinObj := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltinObj
}

// checkNondetSource reports calls that read ambient nondeterminism: the
// wall clock (time.Now, time.Since) and math/rand, plus sync.Map.Range
// (which has the same unordered-iteration hazard as a map range).
func checkNondetSource(pass *Pass, call *ast.CallExpr, nondetOK bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch funcPkgPath(fn) {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			if !nondetOK {
				pass.Reportf(call.Pos(), "time.%s in deterministic package %s: wall-clock reads may leak into output; route timing through a helper annotated //memes:nondet <reason>", fn.Name(), pass.Path)
			}
		}
	case "math/rand", "math/rand/v2":
		if !nondetOK {
			pass.Reportf(call.Pos(), "%s.%s in deterministic package %s: ambient randomness breaks reproducible output; use a seeded source threaded from the config or annotate the function //memes:nondet <reason>", funcPkgPath(fn), fn.Name(), pass.Path)
		}
	case "sync":
		if fn.Name() == "Range" {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
				if named, ok := recv.Type().(*types.Pointer); ok {
					if nt, ok := named.Elem().(*types.Named); ok && nt.Obj().Name() == "Map" {
						pass.Reportf(call.Pos(), "sync.Map.Range in deterministic package %s: iteration order may leak into output", pass.Path)
					}
				}
			}
		}
	}
}
