package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Loading strategy: the repository has no dependency on golang.org/x/tools,
// so packages are loaded with the standard library alone. Type information
// for imports comes from compiled export data — `go list -export -deps`
// resolves it from the build cache without network access — and the target
// package itself is parsed and type-checked from source. The same resolver
// serves three callers: cmd/memelint standalone mode (export set from go
// list), cmd/memelint vettool mode (export set handed over by go vet's
// unit-checker config), and the analysistest harness (export set from go
// list plus source fallback for testdata fixture packages).

// ExportSet maps canonical import paths to files containing gc export data.
type ExportSet map[string]string

// ListedPackage is the subset of `go list -json` output the loader needs.
type ListedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// GoListExports runs `go list -export -deps -json` over the patterns and
// returns the analysis targets (non-dep packages with Go sources, sorted by
// import path) plus the export set covering every listed package.
func GoListExports(dir string, patterns ...string) ([]*ListedPackage, ExportSet, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	exports := make(ExportSet)
	var targets []*ListedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			lp := p
			targets = append(targets, &lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	return targets, exports, nil
}

// Resolver satisfies types.Importer over an export set, with an optional
// source fallback for packages (testdata fixtures) that have no export
// data, and an optional import-path rewrite map (the vettool protocol's
// ImportMap).
type Resolver struct {
	fset *token.FileSet
	gc   types.Importer
	// srcDir, when non-nil, maps an import path to a directory to
	// type-check from source; used by the test harness for fixtures.
	srcDir   func(path string) (string, bool)
	srcCache map[string]*types.Package
}

// NewResolver builds a resolver over the export set. importMap rewrites
// source-level import paths to canonical ones before lookup (pass nil when
// they coincide); srcDir enables the source fallback (pass nil to disable).
func NewResolver(fset *token.FileSet, exports ExportSet, importMap map[string]string, srcDir func(path string) (string, bool)) *Resolver {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return &Resolver{
		fset:     fset,
		gc:       importer.ForCompiler(fset, "gc", lookup),
		srcDir:   srcDir,
		srcCache: make(map[string]*types.Package),
	}
}

// Import implements types.Importer.
func (r *Resolver) Import(path string) (*types.Package, error) {
	if r.srcDir != nil {
		if dir, ok := r.srcDir(path); ok {
			return r.importSource(path, dir)
		}
	}
	return r.gc.Import(path)
}

// importSource type-checks a fixture package from its directory, caching
// the result so diamond imports share one *types.Package.
func (r *Resolver) importSource(path, dir string) (*types.Package, error) {
	if pkg, ok := r.srcCache[path]; ok {
		return pkg, nil
	}
	files, err := ParseDir(r.fset, dir)
	if err != nil {
		return nil, err
	}
	cfg := types.Config{Importer: r}
	pkg, err := cfg.Check(path, r.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking fixture %s: %w", path, err)
	}
	r.srcCache[path] = pkg
	return pkg, nil
}

// ParseDir parses every non-test .go file of a directory in lexical order.
func ParseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") && !e.IsDir() {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return parseFiles(fset, dir, names)
}

// parseFiles parses the named files (relative to dir when not absolute).
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// CheckedPackage is a parsed and type-checked package ready for analysis.
type CheckedPackage struct {
	Fset  *token.FileSet
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Check parses the named files and type-checks them as the package at the
// given import path, resolving imports through the resolver.
func Check(fset *token.FileSet, path, dir string, goFiles []string, r *Resolver) (*CheckedPackage, error) {
	files, err := parseFiles(fset, dir, goFiles)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := types.Config{Importer: r}
	pkg, err := cfg.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &CheckedPackage{Fset: fset, Path: path, Files: files, Pkg: pkg, Info: info}, nil
}

// Analyze runs the analyzer suite over one checked package.
func (cp *CheckedPackage) Analyze(as []*Analyzer) ([]Diagnostic, error) {
	return Run(as, cp.Fset, cp.Files, cp.Path, cp.Pkg, cp.Info)
}
