// Package flatquery is the noalloc fixture for the flat-index serve path:
// the pointer-free BK traversal idioms the real query path uses — pooled
// scratch structs, LIFO stacks appended through struct fields, arena
// subslicing — must pass the analyzer clean, while the alloc-forcing
// shortcuts they replaced (fresh scratch per query, make'd stacks, locals
// with no preallocated root, boxed trace values) are flagged.
package flatquery

import "sync"

type match struct {
	hash uint64
	dist int
	ids  []int64
}

// scratch is the per-query buffer set: recycled through a pool so the
// steady state appends into storage that predates the call.
type scratch struct {
	stack []uint32
	out   []match
}

// flatTree mirrors the flat BK layout: pointer-free nodes, child spans as
// index ranges, IDs in one arena.
type flatTree struct {
	hashes     []uint64
	childStart []uint32
	dists      []uint8
	idStart    []uint32
	ids        []int64
}

func distance(a, b uint64) int {
	n := 0
	for x := a ^ b; x != 0; x &= x - 1 {
		n++
	}
	return n
}

//memes:noalloc
func (f *flatTree) appendRadius(q uint64, radius int, s *scratch) {
	if len(f.hashes) == 0 || radius < 0 {
		return
	}
	s.stack = append(s.stack[:0], 0) // ok: field-rooted append reuses pooled capacity
	for len(s.stack) > 0 {
		n := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		d := distance(q, f.hashes[n])
		if d <= radius {
			// ok: struct literal into a field-rooted append; the IDs slice
			// is a subslice of the arena, not a fresh backing array.
			s.out = append(s.out, match{hash: f.hashes[n], dist: d, ids: f.ids[f.idStart[n]:f.idStart[n+1]]})
		}
		lo, hi := d-radius, d+radius
		for c := f.childStart[n]; c < f.childStart[n+1]; c++ {
			if cd := int(f.dists[c]); cd >= lo && cd <= hi {
				s.stack = append(s.stack, c) // ok: field-rooted
			}
		}
	}
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

//memes:noalloc
func query(f *flatTree, q uint64, radius int) int {
	s := pool.Get().(*scratch) // ok: pointer-shaped assertion, no box
	s.out = s.out[:0]
	f.appendRadius(q, radius, s)
	n := len(s.out)
	pool.Put(s) // ok: pointers box without allocating
	return n
}

//memes:noalloc
func queryFresh(f *flatTree, q uint64, radius int) []match {
	s := &scratch{} // want "&composite-literal inside //memes:noalloc function queryFresh escapes"
	f.appendRadius(q, radius, s)
	return s.out
}

//memes:noalloc
func queryGrow(f *flatTree, q uint64) []uint32 {
	stack := make([]uint32, 1, 64) // want "make inside //memes:noalloc function queryGrow allocates"
	stack[0] = 0
	return stack
}

//memes:noalloc
func queryLocalStack(f *flatTree) int {
	var stack []uint32
	stack = append(stack, 0) // want "append to a slice not rooted"
	return len(stack)
}

func record(v any) { _ = v }

//memes:noalloc
func queryTrace(q uint64) {
	record(q) // want "boxes the value on the heap"
}

// radius is the cold-path wrapper pattern: unannotated, so its fresh
// scratch is legitimate — one allocation per call by design.
func radius(f *flatTree, q uint64, r int) []match {
	var s scratch
	f.appendRadius(q, r, &s)
	return s.out
}

var _ = []any{query, queryFresh, queryGrow, queryLocalStack, queryTrace, radius}
