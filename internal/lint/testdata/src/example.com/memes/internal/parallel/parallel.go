// Package parallel is a fixture stub of the real worker-pool package. It is
// out of ctxflow scope, so its naked go statement must not be reported.
package parallel

import "context"

func For(n, workers int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func ForCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	For(n, workers, fn)
	return ctx.Err()
}

func Map[R any](n, workers int, fn func(i int) R) []R {
	out := make([]R, n)
	For(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

func MapCtx[R any](ctx context.Context, n, workers int, fn func(i int) R) ([]R, error) {
	return Map(n, workers, fn), ctx.Err()
}

func MapErr(n, workers int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

func MapErrCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return MapErr(n, workers, fn)
}

func MapChunks[R any](n, workers int, fn func(lo, hi int) []R) []R {
	return fn(0, n)
}

func MapChunksCtx[R any](ctx context.Context, n, workers int, fn func(lo, hi int) []R) ([]R, error) {
	return fn(0, n), ctx.Err()
}

// run exists to host a naked go statement inside the excluded package.
func run(fn func()) {
	done := make(chan struct{})
	go func() { fn(); close(done) }()
	<-done
}
