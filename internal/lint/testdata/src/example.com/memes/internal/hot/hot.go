// Package hot is the noalloc fixture: only functions annotated
// //memes:noalloc are checked, and within them every alloc-forcing construct
// is reported while preallocated-capacity patterns are not.
package hot

import "fmt"

type buffer struct {
	scratch []byte
}

//memes:noalloc
func appendField(b *buffer, v byte) {
	b.scratch = append(b.scratch, v) // ok: field-rooted append reuses capacity
}

//memes:noalloc
func appendParam(dst []byte, v byte) []byte {
	return append(dst, v) // ok: parameter-rooted append
}

//memes:noalloc
func stackScratch(vals []int) int {
	var buf [8]int
	tmp := buf[:0]
	for _, v := range vals {
		tmp = append(tmp, v) // ok: rooted in a stack array
	}
	return len(tmp)
}

//memes:noalloc
func badAppend(v int) []int {
	var local []int
	local = append(local, v) // want "append to a slice not rooted"
	return local
}

//memes:noalloc
func grows(n int) []int {
	return make([]int, n) // want "make inside //memes:noalloc function grows allocates"
}

//memes:noalloc
func news() *int {
	return new(int) // want "new inside //memes:noalloc function news allocates"
}

//memes:noalloc
func formats(err error) string {
	return fmt.Sprintf("hot: %v", err) // want "fmt.Sprintf inside //memes:noalloc function formats allocates"
}

//memes:noalloc
func closes(n int) func() int {
	return func() int { return n } // want "closure inside //memes:noalloc function closes"
}

//memes:noalloc
func spawns(ch chan int) {
	go send(ch) // want "go statement inside //memes:noalloc function spawns"
}

func send(ch chan int) { ch <- 1 }

//memes:noalloc
func concats(a, b string) string {
	return a + b // want "string concatenation inside //memes:noalloc function concats"
}

//memes:noalloc
func literal() []int {
	return []int{1, 2, 3} // want "slice/map literal inside //memes:noalloc function literal"
}

type node struct{ v int }

//memes:noalloc
func escapes(v int) *node {
	return &node{v: v} // want "&composite-literal inside //memes:noalloc function escapes"
}

func sink(v any) { _ = v }

//memes:noalloc
func boxes(v int) {
	sink(v) // want "boxes the value on the heap"
}

//memes:noalloc
func boxesPtr(v *int) {
	sink(v) // ok: pointer-shaped values box without allocating
}

func unannotated(n int) []int {
	return make([]int, n) // ok: not annotated, so not checked
}
