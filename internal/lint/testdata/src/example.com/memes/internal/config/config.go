// Package config is the detorder scope-negative fixture: it is outside the
// deterministic scopes, so its map-order and clock reads are not reported.
package config

import "time"

func First(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

func Stamp() time.Time {
	return time.Now()
}
