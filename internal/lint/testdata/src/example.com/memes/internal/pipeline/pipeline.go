// Package pipeline is the detorder fixture: it sits inside the deterministic
// scope (suffix internal/pipeline), so map-order and clock/rand dependence
// must be reported unless provably order-independent or annotated.
package pipeline

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

func leakOrder(counts map[string]int) []string {
	var out []string
	for k, v := range counts { // want "range over map counts"
		if v > 0 {
			out = append(out, k)
		}
	}
	return out
}

func collectAndSort(counts map[string]int) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts { // ok: appended slice is sorted after the loop
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func commutative(weights map[int]float64) (float64, int) {
	var total float64
	n := 0
	for _, w := range weights { // ok: accumulation commutes
		total += w
		n++
	}
	return total, n
}

func firstKey(m map[int]int) int {
	for k := range m { // want "range over map m"
		return k
	}
	return 0
}

func annotated(m map[int]int) int {
	best := 0
	//memes:detorder max is order-independent; assignment shape defeats the heuristic
	for k := range m {
		if k > best {
			best = k
		}
	}
	return best
}

func stamp() time.Time {
	return time.Now() // want "time.Now in deterministic package"
}

//memes:nondet timing stats only; never influences output
func stampOK() (time.Time, time.Duration) {
	t0 := time.Now()
	return t0, time.Since(t0)
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in deterministic package"
}

func roll() int {
	return rand.Intn(6) // want "math/rand.Intn in deterministic package"
}

func syncRange(m *sync.Map) int {
	n := 0
	m.Range(func(k, v any) bool { // want "sync.Map.Range in deterministic package"
		n++
		return true
	})
	return n
}
