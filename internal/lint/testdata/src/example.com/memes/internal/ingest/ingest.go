// Package ingest is the detorder fixture for the streaming-ingest scope:
// the real internal/ingest re-clusters and journals accepted posts, so its
// output must be a pure function of ingest order — map iteration and clock
// reads are reportable exactly as in internal/pipeline.
package ingest

import (
	"sort"
	"time"
)

func drainPoolLeaky(pool map[int64]uint64) []uint64 {
	var out []uint64
	for _, h := range pool { // want "range over map pool"
		out = append(out, h)
	}
	return out
}

func drainPoolSorted(pool map[int64]uint64) []int64 {
	ids := make([]int64, 0, len(pool))
	for id := range pool { // ok: appended slice is sorted after the loop
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func pendingTotal(pending map[int]int) int {
	n := 0
	for _, c := range pending { // ok: accumulation commutes
		n += c
	}
	return n
}

func stampReceipt() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

//memes:nondet journal mtime is operational metadata, not part of the artifact
func journalAge(mtime time.Time) time.Duration {
	return time.Since(mtime)
}
