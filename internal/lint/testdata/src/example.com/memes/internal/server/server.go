// Package server is the jsonwire fixture: structs reaching encoding/json
// (directly or transitively through fields) must tag every exported field
// with an explicit snake_case name; structs never serialized are exempt.
package server

import (
	"bytes"
	"encoding/json"
	"net/http"
)

type matchResponse struct {
	ClusterID int64       `json:"cluster_id"`
	Medoid    string      `json:"medoid"`
	Missing   int         // want "field matchResponse.Missing is serialized by encoding/json but has no json tag"
	BadName   int         `json:"BadName"` // want `field matchResponse.BadName has json name "BadName"`
	Skipped   int         `json:"-"`
	Nested    nestedStats `json:"nested"`
	internal  int
}

type nestedStats struct {
	Count int // want "field nestedStats.Count is serialized by encoding/json but has no json tag"
}

type notWire struct {
	Plain int // ok: never serialized, tags would promise a wire format that does not exist
}

func encode(v matchResponse) ([]byte, error) {
	return json.Marshal(v)
}

func decode(data []byte) (matchResponse, error) {
	var v matchResponse
	err := json.Unmarshal(data, &v)
	return v, err
}

var _ = notWire{}

// Hand-rolled response writes: the envelope check fires on http.Error and
// on encoders attached straight to a ResponseWriter, everywhere except the
// sanctioned writeJSON helper.

func handleBad(w http.ResponseWriter) {
	http.Error(w, "boom", 500)                  // want "http.Error writes a bare text body outside the JSON error envelope"
	json.NewEncoder(w).Encode(map[string]any{}) // want "json.NewEncoder over an http.ResponseWriter bypasses writeJSON"
}

func writeJSON(w http.ResponseWriter, v any) {
	json.NewEncoder(w).Encode(v) // ok: the one sanctioned encoder site
}

func encodeElsewhere(v matchResponse) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil { // ok: not a ResponseWriter
		return nil, err
	}
	return buf.Bytes(), nil
}
