// Package server is the jsonwire fixture: structs reaching encoding/json
// (directly or transitively through fields) must tag every exported field
// with an explicit snake_case name; structs never serialized are exempt.
package server

import "encoding/json"

type matchResponse struct {
	ClusterID int64       `json:"cluster_id"`
	Medoid    string      `json:"medoid"`
	Missing   int         // want "field matchResponse.Missing is serialized by encoding/json but has no json tag"
	BadName   int         `json:"BadName"` // want `field matchResponse.BadName has json name "BadName"`
	Skipped   int         `json:"-"`
	Nested    nestedStats `json:"nested"`
	internal  int
}

type nestedStats struct {
	Count int // want "field nestedStats.Count is serialized by encoding/json but has no json tag"
}

type notWire struct {
	Plain int // ok: never serialized, tags would promise a wire format that does not exist
}

func encode(v matchResponse) ([]byte, error) {
	return json.Marshal(v)
}

func decode(data []byte) (matchResponse, error) {
	var v matchResponse
	err := json.Unmarshal(data, &v)
	return v, err
}

var _ = notWire{}
