// Package query is the ctxflow fixture: it is inside ctxflow scope, so bare
// parallel primitives, naked go statements, and dropped contexts are
// reported, while threaded contexts, annotated goroutines, and context-free
// wrappers are not.
package query

import (
	"context"

	"example.com/memes/internal/parallel"
)

func bareMap(n int) []int {
	return parallel.Map(n, 0, func(i int) int { return i }) // want "parallel.Map spawns uncancellable goroutines"
}

func bareFor(n int) {
	parallel.For(n, 0, func(i int) {}) // want "parallel.For spawns uncancellable goroutines"
}

func nakedGo(ch chan int) {
	go func() { ch <- 1 }() // want "naked go statement outside internal/parallel"
}

func ownedGo(ch chan int) {
	//memes:goroutine joined by the fixture's Close handshake
	go func() { ch <- 1 }()
}

func dropsCtx(ctx context.Context, n int) error {
	return parallel.ForCtx(context.Background(), n, 0, func(i int) {}) // want "context.Background/TODO while the enclosing function has a context parameter"
}

func threadsCtx(ctx context.Context, n int) error {
	return parallel.ForCtx(ctx, n, 0, func(i int) {}) // ok: caller's context threaded
}

func wrapper(n int) error {
	// ok: context-free wrapper has no context to thread
	return parallel.ForCtx(context.Background(), n, 0, func(i int) {})
}
