// Package faults is the detorder fixture for the fault-injection scope: the
// real internal/faults promises reproducible activation decisions (seeded
// splitmix64, after=/times= hit counters), so ambient randomness and clock
// reads in firing logic are reportable exactly as in internal/pipeline —
// a chaos run that cannot be replayed bit-for-bit tests nothing.
package faults

import (
	"sort"
	"time"
)

func armedNamesLeaky(reg map[string]int) []string {
	var out []string
	for name := range reg { // want "range over map reg"
		out = append(out, name)
	}
	return out
}

func armedNamesSorted(reg map[string]int) []string {
	out := make([]string, 0, len(reg))
	for name := range reg { // ok: appended slice is sorted after the loop
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func totalHits(reg map[string]int) int {
	n := 0
	for _, hits := range reg { // ok: accumulation commutes
		n += hits
	}
	return n
}

func seedFromClock() uint64 {
	return uint64(time.Now().UnixNano()) // want "time.Now"
}

//memes:nondet latency injection measures real elapsed time by design
func latencyOverrun(start time.Time, want time.Duration) time.Duration {
	return time.Since(start) - want
}
