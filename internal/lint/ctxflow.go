package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces the cancellation contract of the query path: concurrency
// must flow through the cancellable ...Ctx primitives of internal/parallel
// so no goroutine can outlive a cancelled request.
//
//   - Naked go statements are violations everywhere except internal/parallel
//     (the worker-pool implementation), cmd/, and examples/. A deliberately
//     owned goroutine (joined on shutdown) is annotated
//     //memes:goroutine <reason>.
//   - Calls to the bare parallel.For/Map/MapErr/MapChunks wrappers are
//     violations: callers either hold a context (thread it through the Ctx
//     variant) or are themselves context-free wrappers (delegate to their
//     own ...Ctx variant with context.Background(), which keeps the bare
//     parallel call count at exactly one per primitive, inside
//     internal/parallel).
//   - Passing context.Background()/context.TODO() to a parallel ...Ctx
//     primitive from a function that already has a context parameter drops
//     cancellation on the floor and is a violation.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "requires query-path concurrency to use cancellable internal/parallel Ctx primitives",
	Run:  runCtxFlow,
}

// bareParallelFuncs are the context-free internal/parallel entry points.
var bareParallelFuncs = map[string]bool{
	"For": true, "Map": true, "MapErr": true, "MapChunks": true,
}

func runCtxFlow(pass *Pass) error {
	if !inCtxFlowScope(pass.Path) {
		return nil
	}
	dirs := indexDirectives(pass.Fset, pass.Files)
	enclosingFuncs(pass.Files, func(decl *ast.FuncDecl) {
		hasCtx := funcHasCtxParam(pass, decl)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !dirs.at(n.Pos(), "goroutine") {
					pass.Reportf(n.Pos(), "naked go statement outside internal/parallel: goroutines on the query path must run under a parallel.*Ctx primitive (or carry //memes:goroutine <reason> if ownership is joined elsewhere)")
				}
			case *ast.CallExpr:
				checkParallelCall(pass, n, hasCtx)
			}
			return true
		})
	})
	return nil
}

// checkParallelCall vets one call for the two parallel-package violations.
func checkParallelCall(pass *Pass, call *ast.CallExpr, hasCtx bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || !pathMatches(funcPkgPath(fn), "internal/parallel") {
		return
	}
	name := fn.Name()
	if bareParallelFuncs[name] {
		pass.Reportf(call.Pos(), "parallel.%s spawns uncancellable goroutines: use parallel.%sCtx and thread a context (context-free exported wrappers belong next to their ...Ctx variant)", name, name)
		return
	}
	if strings.HasSuffix(name, "Ctx") && hasCtx && len(call.Args) > 0 {
		if isContextBackgroundOrTODO(pass, call.Args[0]) {
			pass.Reportf(call.Args[0].Pos(), "parallel.%s called with context.Background/TODO while the enclosing function has a context parameter: thread the caller's context", name)
		}
	}
}

// funcHasCtxParam reports whether the declaration has a context.Context
// parameter (including the receiver position being irrelevant here).
func funcHasCtxParam(pass *Pass, decl *ast.FuncDecl) bool {
	if decl.Type.Params == nil {
		return false
	}
	for _, field := range decl.Type.Params.List {
		if isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isContextBackgroundOrTODO reports whether the expression is a direct
// context.Background() or context.TODO() call.
func isContextBackgroundOrTODO(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass.TypesInfo, call)
	return fn != nil && funcPkgPath(fn) == "context" && (fn.Name() == "Background" || fn.Name() == "TODO")
}
