package lint

import "testing"

func TestDetOrder(t *testing.T) {
	RunAnalyzerTest(t, DetOrder, "example.com/memes/internal/pipeline")
}

func TestDetOrderOutOfScope(t *testing.T) {
	RunAnalyzerTest(t, DetOrder, "example.com/memes/internal/config")
}
