package lint

import "testing"

func TestDetOrder(t *testing.T) {
	RunAnalyzerTest(t, DetOrder, "example.com/memes/internal/pipeline")
}

func TestDetOrderIngest(t *testing.T) {
	RunAnalyzerTest(t, DetOrder, "example.com/memes/internal/ingest")
}

func TestDetOrderFaults(t *testing.T) {
	RunAnalyzerTest(t, DetOrder, "example.com/memes/internal/faults")
}

func TestDetOrderOutOfScope(t *testing.T) {
	RunAnalyzerTest(t, DetOrder, "example.com/memes/internal/config")
}

// TestScopeGating pins the package sets the analyzers police: streaming
// ingest joined the deterministic scope in the same PR that created it, and
// ctxflow covers it like any other library package.
func TestScopeGating(t *testing.T) {
	for _, tc := range []struct {
		path string
		det  bool
		ctx  bool
	}{
		{"github.com/memes-pipeline/memes/internal/ingest", true, true},
		{"example.com/memes/internal/ingest", true, true},
		{"github.com/memes-pipeline/memes/internal/faults", true, true},
		{"example.com/memes/internal/faults", true, true},
		{"github.com/memes-pipeline/memes/internal/pipeline", true, true},
		{"github.com/memes-pipeline/memes", true, true},
		{"github.com/memes-pipeline/memes/internal/server", false, true},
		{"github.com/memes-pipeline/memes/internal/parallel", false, false},
		{"github.com/memes-pipeline/memes/cmd/memeserve", false, false},
		{"github.com/memes-pipeline/memes/internal/ingestion", false, true}, // suffix match is segment-exact
	} {
		if got := inDeterministicScope(tc.path); got != tc.det {
			t.Errorf("inDeterministicScope(%q) = %v, want %v", tc.path, got, tc.det)
		}
		if got := inCtxFlowScope(tc.path); got != tc.ctx {
			t.Errorf("inCtxFlowScope(%q) = %v, want %v", tc.path, got, tc.ctx)
		}
	}
}
