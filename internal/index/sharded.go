package index

import (
	"context"
	"math/bits"

	"github.com/memes-pipeline/memes/internal/parallel"
	"github.com/memes-pipeline/memes/internal/phash"
)

// ShardedBK partitions hashes across per-shard BK-trees by a multiplicative
// hash of the stored key, and fans radius queries out across the shards on
// the internal/parallel worker pool. Every distinct hash lives in exactly
// one shard, so per-shard results concatenate into the exact global match
// set with no cross-shard merging.
//
// Sharding buys two things over a single tree: queries exploit multiple
// cores (each shard is searched independently), and each shard's tree is
// shallower, so the triangle-inequality pruning discards candidates earlier.
// Like the other strategies it is exact — the match set is identical to a
// linear scan.
//
// ShardedBK is not safe for concurrent mutation; concurrent queries after
// all inserts are complete are safe.
type ShardedBK struct {
	shards  []*phash.BKTree
	shift   uint // 64 - log2(len(shards)); maps a mixed hash to its shard
	size    int
	workers int // per-query fan-out bound; 0 = GOMAXPROCS (see SetWorkers)
}

// defaultShards is the shard count used when none is given: enough to keep
// every core of a typical serving box busy on one query without slicing the
// trees so thin that per-shard pruning stops paying.
const defaultShards = 16

// NewShardedBK returns an empty sharded index with the given shard count,
// rounded up to a power of two; n <= 0 selects the default. The shard count
// only shapes the cost profile — query results are identical for any value.
func NewShardedBK(n int) *ShardedBK {
	if n <= 0 {
		n = defaultShards
	}
	// Round up to a power of two so shard selection is a shift, not a mod.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	s := &ShardedBK{
		shards: make([]*phash.BKTree, pow),
		shift:  uint(64 - bits.TrailingZeros(uint(pow))),
	}
	for i := range s.shards {
		s.shards[i] = phash.NewBKTree()
	}
	return s
}

// shardOf maps a hash to its shard. The multiplicative mix (Fibonacci
// hashing) spreads the near-duplicate hashes a meme corpus is full of across
// shards even though they differ in only a few bits.
func (s *ShardedBK) shardOf(h phash.Hash) int {
	if s.shift >= 64 {
		return 0 // single shard
	}
	return int((uint64(h) * 0x9E3779B97F4A7C15) >> s.shift)
}

// NumShards returns the shard count (a power of two).
func (s *ShardedBK) NumShards() int { return len(s.shards) }

// SetWorkers bounds the per-query fan-out (0 = GOMAXPROCS), implementing
// WorkerBound so the pipeline's Config.Workers governs this index like
// every other stage. With workers == 1 queries run fully sequentially — no
// goroutines are spawned. Results are identical for any value.
func (s *ShardedBK) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	s.workers = n
}

// Len returns the number of (hash, id) pairs inserted.
func (s *ShardedBK) Len() int { return s.size }

// Insert adds a hash with an associated item identifier to its shard.
func (s *ShardedBK) Insert(h phash.Hash, id int64) {
	s.size++
	s.shards[s.shardOf(h)].Insert(h, id)
}

// Seal compiles every shard's pointer tree into its flat array form (see
// phash.FlatBK). Queries after Seal traverse the contiguous arrays; Insert
// panics. Shard assignment and per-shard result order are unchanged, so
// sealed query output is bitwise identical.
func (s *ShardedBK) Seal() {
	for _, sh := range s.shards {
		sh.Seal()
	}
}

// RadiusScratch answers a radius query through caller-owned scratch,
// walking the shards sequentially and accumulating into one result buffer.
// The concatenation order is shard order — identical to RadiusCtx — so the
// scratch path serves the same bytes as the allocating path. Sequential
// per-shard search trades the fan-out parallelism for a zero-allocation
// steady state; Associate-style callers recover parallelism across posts
// instead of within one query.
//
//memes:noalloc
func (s *ShardedBK) RadiusScratch(q phash.Hash, radius int, sc *phash.Scratch) []phash.Match {
	sc.Reset()
	if s.size == 0 || radius < 0 {
		return sc.Out()
	}
	for _, sh := range s.shards {
		sh.AppendRadius(q, radius, sc)
	}
	return sc.Out()
}

// Radius returns all stored hashes within Hamming distance radius of q. It
// is RadiusCtx without cancellation.
func (s *ShardedBK) Radius(q phash.Hash, radius int) []phash.Match {
	out, _ := s.RadiusCtx(context.Background(), q, radius)
	return out
}

// RadiusCtx returns all stored hashes within Hamming distance radius of q,
// honouring ctx cancellation. The per-shard queries run concurrently on the
// shared worker pool; results are concatenated in shard order, so the output
// is deterministic. On cancellation the partial result is discarded and
// ctx.Err() is returned; no goroutine outlives the call.
func (s *ShardedBK) RadiusCtx(ctx context.Context, q phash.Hash, radius int) ([]phash.Match, error) {
	if s.size == 0 || radius < 0 {
		return nil, ctx.Err()
	}
	parts, err := parallel.MapCtx(ctx, len(s.shards), s.workers, func(i int) []phash.Match {
		return s.shards[i].Radius(q, radius)
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil, nil
	}
	out := make([]phash.Match, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Nearest returns the stored hash closest to q. It is NearestCtx without
// cancellation.
func (s *ShardedBK) Nearest(q phash.Hash) (phash.Match, bool) {
	m, ok, _ := s.NearestCtx(context.Background(), q)
	return m, ok
}

// NearestCtx returns the stored hash closest to q, honouring ctx
// cancellation. Each shard reports its own nearest; ties between shards at
// the same distance are broken by the lowest hash value, so the result is
// deterministic.
func (s *ShardedBK) NearestCtx(ctx context.Context, q phash.Hash) (phash.Match, bool, error) {
	if s.size == 0 {
		return phash.Match{}, false, ctx.Err()
	}
	type res struct {
		m  phash.Match
		ok bool
	}
	parts, err := parallel.MapCtx(ctx, len(s.shards), s.workers, func(i int) res {
		m, ok := s.shards[i].Nearest(q)
		return res{m: m, ok: ok}
	})
	if err != nil {
		return phash.Match{}, false, err
	}
	best := phash.Match{Distance: phash.MaxDistance + 1}
	found := false
	for _, r := range parts {
		if !r.ok {
			continue
		}
		if !found || r.m.Distance < best.Distance ||
			(r.m.Distance == best.Distance && r.m.Hash < best.Hash) {
			best = r.m
			found = true
		}
	}
	return best, found, nil
}

// Walk visits every distinct stored hash in shard order. Returning false
// from fn stops the walk early.
func (s *ShardedBK) Walk(fn func(h phash.Hash, ids []int64) bool) {
	for _, sh := range s.shards {
		stop := false
		sh.Walk(func(h phash.Hash, ids []int64) bool {
			if !fn(h, ids) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}
