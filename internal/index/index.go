// Package index defines the pluggable medoid-index layer of the serve path:
// the MedoidIndex interface every Step 6 search structure implements, and a
// registry of named strategies the pipeline configuration selects among.
//
// The paper runs Step 6 — associating every post image with a fixed set of
// annotated cluster medoids — on a GPU-backed pairwise comparison engine.
// This repository replaces it with exact nearest-neighbour indexes over
// 64-bit perceptual hashes; all registered strategies return identical match
// sets for identical inserts, so swapping strategies changes only the cost
// profile, never the pipeline output. The index is rebuilt from medoid
// hashes whenever an engine is constructed or loaded from a snapshot, which
// keeps persisted engines strategy-agnostic.
package index

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/memes-pipeline/memes/internal/phash"
)

// MedoidIndex is an exact radius/nearest-neighbour index over 64-bit
// perceptual hashes with the Hamming distance as metric. Implementations
// need not support concurrent mutation, but concurrent queries after all
// inserts are complete must be safe — that is the build-once / query-many
// contract the engine relies on.
type MedoidIndex interface {
	// Insert adds a hash with an associated item identifier. Duplicate
	// hashes are merged: a radius or nearest query returns one match per
	// distinct hash carrying every ID inserted for it.
	Insert(h phash.Hash, id int64)
	// Radius returns all stored hashes within Hamming distance radius of q,
	// together with their item IDs. Results may be returned in any order;
	// the match set (hashes, distances, ID multiset) must equal what a
	// linear scan produces.
	Radius(q phash.Hash, radius int) []phash.Match
	// Nearest returns the stored hash closest to q. The boolean is false
	// when the index is empty.
	Nearest(q phash.Hash) (phash.Match, bool)
	// Len returns the number of (hash, id) pairs inserted.
	Len() int
	// Walk visits every distinct stored hash with its IDs in unspecified
	// order. Returning false from fn stops the walk early.
	Walk(fn func(h phash.Hash, ids []int64) bool)
}

// WorkerBound is implemented by indexes whose queries fan work out
// internally (ShardedBK, MultiIndex). The pipeline calls SetWorkers with its
// configured worker bound right after construction, so one Config.Workers
// knob governs every stage including per-query index parallelism; n == 0
// means GOMAXPROCS, n == 1 means fully sequential queries. Implementations
// must serve identical results for any value.
type WorkerBound interface {
	SetWorkers(n int)
}

// CtxQuerier is implemented by indexes whose radius queries spawn internal
// concurrency and can therefore honour cancellation (ShardedBK, MultiIndex).
// RadiusCtx must return the same match set as Radius when ctx is never
// cancelled, and (nil, ctx.Err()) once it is; no goroutine may outlive the
// call. Query paths type-assert for this interface and fall back to the
// plain Radius for purely sequential indexes (BKTree), which cannot block
// on anything cancellable.
type CtxQuerier interface {
	RadiusCtx(ctx context.Context, q phash.Hash, radius int) ([]phash.Match, error)
}

// Sealer is implemented by indexes that can compile themselves into an
// immutable, query-optimised form once all inserts are done (BKTree and
// ShardedBK flatten their pointer trees into contiguous arrays). The
// pipeline calls Seal after the last Insert; sealing must not change any
// query result — bitwise-identical output is part of the contract. Insert
// after Seal may panic.
type Sealer interface {
	Seal()
}

// ScratchQuerier is implemented by indexes that can answer radius queries
// through caller-owned scratch, allocating nothing in steady state. The
// returned slice aliases s and is valid until the next query through the
// same scratch. RadiusScratch must return the same matches in the same
// order as Radius.
type ScratchQuerier interface {
	RadiusScratch(q phash.Hash, radius int, s *phash.Scratch) []phash.Match
}

// Strategy names a registered MedoidIndex implementation. The zero value
// selects the default strategy.
type Strategy string

// The built-in strategies.
const (
	// BKTree is a Burkhard-Keller tree: one shared metric tree, no
	// per-query parallelism. The default.
	BKTree Strategy = "bktree"
	// MultiIndex is multi-index hashing: banded exact lookup tables with
	// distance-1 band probing, falling back to a parallel linear scan for
	// large radii.
	MultiIndex Strategy = "multiindex"
	// Sharded partitions hashes across per-shard BK-trees and fans radius
	// queries out across the shards in parallel.
	Sharded Strategy = "sharded"
)

// Default is the strategy used when none is configured.
const Default = BKTree

// Every built-in implementation must satisfy the interface; the two indexes
// with internal query fan-out must also be worker-bounded and cancellable.
var (
	_ MedoidIndex = (*phash.BKTree)(nil)
	_ MedoidIndex = (*phash.MultiIndex)(nil)
	_ MedoidIndex = (*ShardedBK)(nil)
	_ WorkerBound = (*phash.MultiIndex)(nil)
	_ WorkerBound = (*ShardedBK)(nil)
	_ CtxQuerier  = (*phash.MultiIndex)(nil)
	_ CtxQuerier  = (*ShardedBK)(nil)

	// The tree-backed strategies additionally seal into flat arrays and
	// serve the zero-allocation scratch query path.
	_ Sealer         = (*phash.BKTree)(nil)
	_ Sealer         = (*ShardedBK)(nil)
	_ ScratchQuerier = (*phash.BKTree)(nil)
	_ ScratchQuerier = (*ShardedBK)(nil)
)

var (
	mu        sync.RWMutex
	factories = map[Strategy]func() MedoidIndex{}
)

func init() {
	MustRegister(BKTree, func() MedoidIndex { return phash.NewBKTree() })
	MustRegister(MultiIndex, func() MedoidIndex { return phash.NewMultiIndex() })
	MustRegister(Sharded, func() MedoidIndex { return NewShardedBK(0) })
}

// Register adds a named strategy. It fails on an empty name or a duplicate
// registration, so strategies cannot silently shadow each other.
func Register(s Strategy, factory func() MedoidIndex) error {
	if s == "" {
		return fmt.Errorf("index: cannot register empty strategy name")
	}
	if factory == nil {
		return fmt.Errorf("index: nil factory for strategy %q", s)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := factories[s]; dup {
		return fmt.Errorf("index: strategy %q already registered", s)
	}
	factories[s] = factory
	return nil
}

// MustRegister is Register that panics on error; for init-time registration.
func MustRegister(s Strategy, factory func() MedoidIndex) {
	if err := Register(s, factory); err != nil {
		panic(err)
	}
}

// New constructs an empty index for the strategy; the empty strategy yields
// the Default.
func New(s Strategy) (MedoidIndex, error) {
	if s == "" {
		s = Default
	}
	mu.RLock()
	factory := factories[s]
	mu.RUnlock()
	if factory == nil {
		return nil, fmt.Errorf("index: unknown strategy %q (registered: %v)", s, Strategies())
	}
	return factory(), nil
}

// Validate reports whether the strategy is registered; the empty strategy is
// valid and means Default.
func (s Strategy) Validate() error {
	if s == "" {
		return nil
	}
	mu.RLock()
	_, ok := factories[s]
	mu.RUnlock()
	if !ok {
		return fmt.Errorf("index: unknown strategy %q (registered: %v)", s, Strategies())
	}
	return nil
}

// Strategies lists every registered strategy in sorted order, for CLIs,
// benchmarks, and error messages.
func Strategies() []Strategy {
	mu.RLock()
	out := make([]Strategy, 0, len(factories))
	for s := range factories {
		out = append(out, s)
	}
	mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
