package index

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/memes-pipeline/memes/internal/phash"
)

// canonical reduces a radius result to its canonical form — distinct hash →
// sorted ID list — so implementations are compared on the match *set*, not
// on ordering or duplicate-merging choices.
func canonical(t *testing.T, q phash.Hash, radius int, ms []phash.Match) map[phash.Hash][]int64 {
	t.Helper()
	out := make(map[phash.Hash][]int64, len(ms))
	for _, m := range ms {
		if got := phash.Distance(q, m.Hash); m.Distance != got {
			t.Fatalf("match %v carries distance %d, true distance %d", m.Hash, m.Distance, got)
		}
		if m.Distance > radius {
			t.Fatalf("match %v at distance %d exceeds radius %d", m.Hash, m.Distance, radius)
		}
		out[m.Hash] = append(out[m.Hash], m.IDs...)
	}
	for h := range out {
		ids := out[h]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	return out
}

// linearScan is the reference implementation every strategy must agree with.
func linearScan(hashes []phash.Hash, ids []int64, q phash.Hash, radius int) map[phash.Hash][]int64 {
	out := make(map[phash.Hash][]int64)
	for i, h := range hashes {
		if phash.Distance(h, q) <= radius {
			out[h] = append(out[h], ids[i])
		}
	}
	for h := range out {
		l := out[h]
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}
	return out
}

// corpus synthesises a hash set that looks like the pipeline's medoids:
// mostly random hashes, plus tight near-duplicate families, plus exact
// duplicates carrying several IDs.
func corpus(rng *rand.Rand, n int) ([]phash.Hash, []int64) {
	var hashes []phash.Hash
	var ids []int64
	add := func(h phash.Hash) {
		hashes = append(hashes, h)
		ids = append(ids, int64(len(ids)))
	}
	for i := 0; i < n; i++ {
		add(phash.Hash(rng.Uint64()))
	}
	// Near-duplicate families around a few seeds.
	for f := 0; f < 3 && len(hashes) > 0; f++ {
		base := hashes[rng.Intn(len(hashes))]
		for i := 0; i < 10; i++ {
			h := base
			for _, bit := range rng.Perm(64)[:rng.Intn(6)] {
				h ^= 1 << uint(bit)
			}
			add(h)
		}
	}
	// Exact duplicates: same hash, distinct IDs.
	for i := 0; i < 5 && len(hashes) > 0; i++ {
		add(hashes[rng.Intn(len(hashes))])
	}
	return hashes, ids
}

// checkEquivalence inserts the corpus into every registered strategy and
// asserts Radius agrees with the linear scan for the given query and radius.
func checkEquivalence(t *testing.T, hashes []phash.Hash, ids []int64, q phash.Hash, radius int) {
	t.Helper()
	want := linearScan(hashes, ids, q, radius)
	for _, s := range Strategies() {
		idx, err := New(s)
		if err != nil {
			t.Fatalf("New(%q): %v", s, err)
		}
		for i, h := range hashes {
			idx.Insert(h, ids[i])
		}
		if idx.Len() != len(hashes) {
			t.Fatalf("%s: Len = %d, want %d", s, idx.Len(), len(hashes))
		}
		raw := idx.Radius(q, radius)
		got := canonical(t, q, radius, raw)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Radius(%v, %d) diverges from linear scan: got %d hashes, want %d",
				s, q, radius, len(got), len(want))
		}
		checkSealedEquivalence(t, s, idx, q, radius, raw)
	}
}

// checkSealedEquivalence seals the index (when the strategy supports it) and
// asserts the flat form serves the exact same bytes — same matches, same
// order — through both the allocating Radius and the scratch path. This is
// the compilation invariant the zero-copy snapshot path rests on.
func checkSealedEquivalence(t *testing.T, s Strategy, idx MedoidIndex, q phash.Hash, radius int, want []phash.Match) {
	t.Helper()
	sealer, ok := idx.(Sealer)
	if !ok {
		return
	}
	sealer.Seal()
	if got := idx.Radius(q, radius); !matchesEqual(got, want) {
		t.Errorf("%s: sealed Radius(%v, %d) is not bitwise identical to unsealed", s, q, radius)
	}
	if sq, ok := idx.(ScratchQuerier); ok {
		var sc phash.Scratch
		if got := sq.RadiusScratch(q, radius, &sc); !matchesEqual(got, want) {
			t.Errorf("%s: RadiusScratch(%v, %d) is not bitwise identical to Radius", s, q, radius)
		}
	}
}

// matchesEqual compares two radius results including order, treating nil and
// empty as equal (the scratch path returns an empty reused buffer where the
// allocating path returns nil).
func matchesEqual(a, b []phash.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Hash != b[i].Hash || a[i].Distance != b[i].Distance || !reflect.DeepEqual(a[i].IDs, b[i].IDs) {
			return false
		}
	}
	return true
}

// TestRadiusEquivalenceProperty is the refactor's correctness boundary: for
// random hash sets and radii, every registered strategy returns exactly the
// linear-scan match set.
func TestRadiusEquivalenceProperty(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		hashes, ids := corpus(rng, 80+rng.Intn(200))
		for trial := 0; trial < 8; trial++ {
			q := hashes[rng.Intn(len(hashes))]
			if trial%2 == 0 {
				for _, bit := range rng.Perm(64)[:rng.Intn(12)] {
					q ^= 1 << uint(bit)
				}
			}
			// Cover the operating point (8), the exactness boundaries of
			// multi-index probing, and extreme radii.
			radius := []int{0, 1, 3, 7, 8, 12, 31, 64}[rng.Intn(8)]
			checkEquivalence(t, hashes, ids, q, radius)
		}
	}
}

// TestNearestEquivalence asserts every strategy's Nearest returns the same
// deterministic winner: the minimum distance of a linear scan, ties broken
// by the lowest hash value — so Nearest agrees across strategies and runs.
func TestNearestEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	hashes, ids := corpus(rng, 150)
	for _, s := range Strategies() {
		idx, err := New(s)
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hashes {
			idx.Insert(h, ids[i])
		}
		checkNearest := func(label string) {
			trialRng := rand.New(rand.NewSource(42 ^ int64(len(hashes))))
			for trial := 0; trial < 40; trial++ {
				// Alternate far-off random queries with perturbed stored hashes
				// (the latter make same-distance ties likely in the
				// near-duplicate families).
				q := phash.Hash(trialRng.Uint64())
				if trial%2 == 0 {
					q = hashes[trialRng.Intn(len(hashes))]
					for _, bit := range trialRng.Perm(64)[:1+trialRng.Intn(4)] {
						q ^= 1 << uint(bit)
					}
				}
				m, ok := idx.Nearest(q)
				if !ok {
					t.Fatalf("%s/%s: Nearest returned not found on non-empty index", s, label)
				}
				bestDist := phash.MaxDistance + 1
				var bestHash phash.Hash
				for _, h := range hashes {
					if d := phash.Distance(h, q); d < bestDist || (d == bestDist && h < bestHash) {
						bestDist, bestHash = d, h
					}
				}
				if m.Distance != bestDist || m.Hash != bestHash {
					t.Fatalf("%s/%s: Nearest = (%v, %d), linear scan says (%v, %d)",
						s, label, m.Hash, m.Distance, bestHash, bestDist)
				}
			}
		}
		checkNearest("unsealed")
		// The sealed form must elect the identical deterministic winner.
		if sealer, ok := idx.(Sealer); ok {
			sealer.Seal()
			checkNearest("sealed")
		}
	}
}

// TestWalkVisitsEveryDistinctHash asserts Walk coverage and early stop for
// every strategy.
func TestWalkVisitsEveryDistinctHash(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	hashes, ids := corpus(rng, 60)
	distinct := make(map[phash.Hash]int)
	for _, h := range hashes {
		distinct[h]++
	}
	for _, s := range Strategies() {
		idx, err := New(s)
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hashes {
			idx.Insert(h, ids[i])
		}
		checkWalk := func(label string) {
			seen := make(map[phash.Hash]int)
			idx.Walk(func(h phash.Hash, ids []int64) bool {
				seen[h] += len(ids)
				return true
			})
			if len(seen) != len(distinct) {
				t.Fatalf("%s/%s: walk visited %d distinct hashes, want %d", s, label, len(seen), len(distinct))
			}
			for h, n := range distinct {
				if seen[h] != n {
					t.Fatalf("%s/%s: walk saw %d IDs for %v, want %d", s, label, seen[h], h, n)
				}
			}
			stops := 0
			idx.Walk(func(phash.Hash, []int64) bool {
				stops++
				return stops < 3
			})
			if stops != 3 {
				t.Fatalf("%s/%s: early stop visited %d, want 3", s, label, stops)
			}
		}
		checkWalk("unsealed")
		// The sealed form must cover the identical distinct-hash set.
		if sealer, ok := idx.(Sealer); ok {
			sealer.Seal()
			checkWalk("sealed")
		}
	}
}

// TestEmptyAndNegativeRadius pins down the edge-case contract shared by all
// strategies.
func TestEmptyAndNegativeRadius(t *testing.T) {
	for _, s := range Strategies() {
		idx, err := New(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := idx.Radius(phash.Hash(1), 8); len(got) != 0 {
			t.Fatalf("%s: empty index returned %d matches", s, len(got))
		}
		if _, ok := idx.Nearest(phash.Hash(1)); ok {
			t.Fatalf("%s: empty index has a nearest", s)
		}
		idx.Insert(phash.Hash(1), 1)
		if got := idx.Radius(phash.Hash(1), -1); len(got) != 0 {
			t.Fatalf("%s: negative radius returned %d matches", s, len(got))
		}
	}
}

func TestRegistry(t *testing.T) {
	if _, err := New("nope"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if err := Strategy("nope").Validate(); err == nil {
		t.Fatal("unknown strategy validated")
	}
	if err := Strategy("").Validate(); err != nil {
		t.Fatalf("empty strategy should validate as default: %v", err)
	}
	idx, err := New("")
	if err != nil || idx == nil {
		t.Fatalf("New(\"\") = (%v, %v), want default index", idx, err)
	}
	if err := Register("", func() MedoidIndex { return phash.NewBKTree() }); err == nil {
		t.Fatal("empty registration accepted")
	}
	if err := Register(BKTree, func() MedoidIndex { return phash.NewBKTree() }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := Register("test-only", nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	want := []Strategy{BKTree, MultiIndex, Sharded}
	got := Strategies()
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in strategy %q missing from %v", w, got)
		}
	}
}

func TestShardedShardCount(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, defaultShards}, {-3, defaultShards}, {1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32},
	} {
		if got := NewShardedBK(tc.in).NumShards(); got != tc.want {
			t.Errorf("NewShardedBK(%d).NumShards() = %d, want %d", tc.in, got, tc.want)
		}
	}
	// A single-shard index must still be exact.
	rng := rand.New(rand.NewSource(3))
	hashes, ids := corpus(rng, 50)
	one := NewShardedBK(1)
	for i, h := range hashes {
		one.Insert(h, ids[i])
	}
	q := hashes[0]
	got := canonical(t, q, 8, one.Radius(q, 8))
	if want := linearScan(hashes, ids, q, 8); !reflect.DeepEqual(got, want) {
		t.Fatal("single-shard index diverges from linear scan")
	}
}

// TestShardedRadiusDeterministic asserts repeated queries return the exact
// same slice content — the concatenation order is fixed by shard order, not
// by goroutine scheduling.
func TestShardedRadiusDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	hashes, ids := corpus(rng, 300)
	idx := NewShardedBK(0)
	for i, h := range hashes {
		idx.Insert(h, ids[i])
	}
	q := hashes[7]
	base := idx.Radius(q, 16)
	for i := 0; i < 5; i++ {
		if got := idx.Radius(q, 16); len(got) != len(base) {
			t.Fatalf("run %d: %d matches, first run had %d", i, len(got), len(base))
		}
	}
}

// FuzzRadiusEquivalence drives the same property as the seeded test from
// the fuzzer, now across both tree forms: any (seed, query, radius) triple
// must see every strategy agree with the linear scan, and the sealed flat
// form of each strategy must serve bitwise-identical Radius output, the same
// Nearest winner, and the same Walk coverage as its pointer form.
func FuzzRadiusEquivalence(f *testing.F) {
	f.Add(int64(1), uint64(0x55352b0b8d8b5b53), 8)
	f.Add(int64(2), uint64(0), 0)
	f.Add(int64(3), uint64(0xffffffffffffffff), 64)
	f.Fuzz(func(t *testing.T, seed int64, query uint64, radius int) {
		if radius < -1 || radius > 64 {
			radius %= 65
		}
		rng := rand.New(rand.NewSource(seed))
		hashes, ids := corpus(rng, 40+int(uint64(seed)%64))
		q := phash.Hash(query)
		want := linearScan(hashes, ids, q, radius)
		for _, s := range Strategies() {
			idx, err := New(s)
			if err != nil {
				t.Fatal(err)
			}
			for i, h := range hashes {
				idx.Insert(h, ids[i])
			}
			raw := idx.Radius(q, radius)
			got := canonical(t, q, radius, raw)
			if radius < 0 {
				if len(got) != 0 {
					t.Fatalf("%s: negative radius returned matches", s)
				}
			} else if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: Radius(%x, %d) diverges from linear scan", s, query, radius)
			}
			pointerNearest, pointerOK := idx.Nearest(q)
			pointerWalk := walkSet(idx)

			sealer, ok := idx.(Sealer)
			if !ok {
				continue
			}
			sealer.Seal()
			if sealedRaw := idx.Radius(q, radius); !matchesEqual(sealedRaw, raw) {
				t.Fatalf("%s: sealed Radius(%x, %d) not bitwise identical to pointer form", s, query, radius)
			}
			if sq, ok := idx.(ScratchQuerier); ok {
				var sc phash.Scratch
				if scratchRaw := sq.RadiusScratch(q, radius, &sc); !matchesEqual(scratchRaw, raw) {
					t.Fatalf("%s: RadiusScratch(%x, %d) not bitwise identical to pointer form", s, query, radius)
				}
			}
			sealedNearest, sealedOK := idx.Nearest(q)
			if pointerOK != sealedOK || pointerNearest.Hash != sealedNearest.Hash || pointerNearest.Distance != sealedNearest.Distance {
				t.Fatalf("%s: sealed Nearest(%x) = (%v,%v), pointer form = (%v,%v)",
					s, query, sealedNearest, sealedOK, pointerNearest, pointerOK)
			}
			if sealedWalk := walkSet(idx); !reflect.DeepEqual(sealedWalk, pointerWalk) {
				t.Fatalf("%s: sealed Walk covers %d hashes, pointer form %d", s, len(sealedWalk), len(pointerWalk))
			}
		}
	})
}

// walkSet canonicalises Walk output to distinct hash → sorted IDs.
func walkSet(idx MedoidIndex) map[phash.Hash][]int64 {
	out := make(map[phash.Hash][]int64)
	idx.Walk(func(h phash.Hash, ids []int64) bool {
		out[h] = append(out[h], ids...)
		return true
	})
	for h := range out {
		l := out[h]
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}
	return out
}
