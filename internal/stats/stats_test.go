package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanMedianVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Mean(xs) != 3 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if Median(xs) != 3 {
		t.Fatalf("median = %v", Median(xs))
	}
	if !almostEqual(Variance(xs), 2, 1e-12) {
		t.Fatalf("variance = %v", Variance(xs))
	}
	if !almostEqual(StdDev(xs), math.Sqrt(2), 1e-12) {
		t.Fatalf("stddev = %v", StdDev(xs))
	}
	if Mean(nil) != 0 || Median(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-slice statistics should be zero")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if Quantile(xs, 0) != 10 {
		t.Fatalf("q0 = %v", Quantile(xs, 0))
	}
	if Quantile(xs, 1) != 40 {
		t.Fatalf("q1 = %v", Quantile(xs, 1))
	}
	if !almostEqual(Quantile(xs, 0.5), 25, 1e-12) {
		t.Fatalf("q0.5 = %v", Quantile(xs, 0.5))
	}
	// Clamping out-of-range q.
	if Quantile(xs, -5) != 10 || Quantile(xs, 7) != 40 {
		t.Fatal("quantile should clamp q to [0,1]")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("quantile of empty slice should be 0")
	}
}

func TestDescribe(t *testing.T) {
	if _, err := Describe(nil); err == nil {
		t.Fatal("expected error for empty sample")
	}
	s, err := Describe([]float64{4, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("summary string should not be empty")
	}
}

func TestCDF(t *testing.T) {
	if _, err := NewCDF(nil); err == nil {
		t.Fatal("expected error for empty CDF")
	}
	c, err := NewCDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d", c.Len())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("CDF(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	xs, ys := c.Points()
	if len(xs) != 3 || len(ys) != 3 {
		t.Fatalf("points should collapse duplicates: %v %v", xs, ys)
	}
	if ys[len(ys)-1] != 1 {
		t.Fatal("last CDF point must be 1")
	}
	if c.Quantile(0.5) != 2 {
		t.Fatalf("CDF quantile = %v", c.Quantile(0.5))
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		prev := -1.0
		for x := -40.0; x <= 40; x += 1.3 {
			v := c.At(x)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKSTestIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	res, err := KSTest(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic != 0 {
		t.Fatalf("KS statistic for identical samples should be 0, got %v", res.Statistic)
	}
	if res.Significant {
		t.Fatal("identical samples should not be significantly different")
	}
}

func TestKSTestDifferentDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 3 // strongly shifted
	}
	res, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant {
		t.Fatalf("shifted distributions should be significant, p=%v", res.PValue)
	}
	if res.Statistic < 0.5 {
		t.Fatalf("expected large KS statistic, got %v", res.Statistic)
	}
}

func TestKSTestSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 300)
	b := make([]float64, 300)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	res, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant {
		t.Fatalf("samples from the same distribution flagged significant, p=%v", res.PValue)
	}
}

func TestKSTestEmpty(t *testing.T) {
	if _, err := KSTest(nil, []float64{1}); err == nil {
		t.Fatal("expected error for empty sample")
	}
	if _, err := KSTest([]float64{1}, nil); err == nil {
		t.Fatal("expected error for empty sample")
	}
}

func TestKolmogorovQBounds(t *testing.T) {
	if kolmogorovQ(0) != 1 || kolmogorovQ(-1) != 1 {
		t.Fatal("Q at non-positive lambda should be 1")
	}
	if q := kolmogorovQ(10); q > 1e-10 {
		t.Fatalf("Q at large lambda should vanish, got %v", q)
	}
	// Monotone decreasing.
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		q := kolmogorovQ(l)
		if q > prev+1e-12 {
			t.Fatalf("Q not monotone at lambda=%v", l)
		}
		prev = q
	}
}

func TestFleissKappaPerfectAgreement(t *testing.T) {
	// 5 subjects, 3 raters, all raters agree on category 0 or 1.
	ratings := [][]int{
		{3, 0}, {3, 0}, {0, 3}, {0, 3}, {3, 0},
	}
	k, err := FleissKappa(ratings)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(k, 1, 1e-12) {
		t.Fatalf("perfect agreement kappa = %v, want 1", k)
	}
}

func TestFleissKappaKnownValue(t *testing.T) {
	// The canonical example from Fleiss (1971) / Wikipedia: 10 subjects,
	// 14 raters, 5 categories; kappa = 0.210.
	ratings := [][]int{
		{0, 0, 0, 0, 14},
		{0, 2, 6, 4, 2},
		{0, 0, 3, 5, 6},
		{0, 3, 9, 2, 0},
		{2, 2, 8, 1, 1},
		{7, 7, 0, 0, 0},
		{3, 2, 6, 3, 0},
		{2, 5, 3, 2, 2},
		{6, 5, 2, 1, 0},
		{0, 2, 2, 3, 7},
	}
	k, err := FleissKappa(ratings)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(k, 0.210, 0.005) {
		t.Fatalf("kappa = %v, want ~0.210", k)
	}
}

func TestFleissKappaErrors(t *testing.T) {
	if _, err := FleissKappa(nil); err == nil {
		t.Fatal("expected error for empty matrix")
	}
	if _, err := FleissKappa([][]int{{}}); err == nil {
		t.Fatal("expected error for zero categories")
	}
	if _, err := FleissKappa([][]int{{1, 0}}); err == nil {
		t.Fatal("expected error for single rater")
	}
	if _, err := FleissKappa([][]int{{2, 1}, {1, 1}}); err == nil {
		t.Fatal("expected error for inconsistent rater counts")
	}
	if _, err := FleissKappa([][]int{{2, 1}, {4, -1}}); err == nil {
		t.Fatal("expected error for negative counts")
	}
	if _, err := FleissKappa([][]int{{2, 1}, {1, 2, 0}}); err == nil {
		t.Fatal("expected error for ragged matrix")
	}
}

func TestFleissKappaDegenerateSingleCategory(t *testing.T) {
	ratings := [][]int{{3}, {3}, {3}}
	k, err := FleissKappa(ratings)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("single-category kappa = %v, want 1", k)
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{nil, nil, 1},
		{[]string{"x"}, nil, 0},
		{nil, []string{"x"}, 0},
		{[]string{"a", "b"}, []string{"a", "b"}, 1},
		{[]string{"a", "b"}, []string{"b", "c"}, 1.0 / 3.0},
		{[]string{"a"}, []string{"b"}, 0},
		{[]string{"a", "a", "b"}, []string{"a", "b", "b"}, 1}, // duplicates ignored
	}
	for _, tc := range cases {
		if got := Jaccard(tc.a, tc.b); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Jaccard(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaccardProperties(t *testing.T) {
	f := func(a, b []string) bool {
		v := Jaccard(a, b)
		if v < 0 || v > 1 {
			return false
		}
		return almostEqual(v, Jaccard(b, a), 1e-12) // symmetry
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	if _, _, err := Histogram(nil, 5); err == nil {
		t.Fatal("expected error for empty sample")
	}
	if _, _, err := Histogram([]float64{1}, 0); err == nil {
		t.Fatal("expected error for zero bins")
	}
	edges, counts, err := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 6 || len(counts) != 5 {
		t.Fatalf("unexpected bin shapes: %v %v", edges, counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram lost observations: %d", total)
	}
	// Constant sample should not panic (degenerate width handling).
	_, counts, err = Histogram([]float64{5, 5, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Fatal("constant-sample histogram lost observations")
	}
}

func TestPearsonCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := PearsonCorrelation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Fatalf("perfect positive correlation = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = PearsonCorrelation(xs, neg)
	if !almostEqual(r, -1, 1e-12) {
		t.Fatalf("perfect negative correlation = %v", r)
	}
	if _, err := PearsonCorrelation(xs, xs[:3]); err == nil {
		t.Fatal("expected error for unequal lengths")
	}
	if _, err := PearsonCorrelation([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("expected error for zero-variance sample")
	}
}
